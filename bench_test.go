// Package repro benchmarks every table and figure of the paper's evaluation
// plus the ablations called out in DESIGN.md. Each benchmark measures the
// computational kernel behind one reported quantity (a sweep point of
// Fig. 4, a fitting-cost cell of Tables I/III/IV, one simulator invocation,
// …) at a scale small enough for testing.B iteration counts. The full-size
// experiments are produced by cmd/paperbench; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package repro

import (
	"sync"
	"testing"

	"repro/internal/basis"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/linalg"
	"repro/internal/mc"
)

// opampFix lazily samples a shared OpAmp dataset: 700 training points (the
// LS baseline needs K ≥ M = 631) and the offset metric, which has the most
// pronounced sparse structure.
var opampFix struct {
	once  sync.Once
	dict  *basis.Basis
	train *mc.Dataset
	f     []float64
}

func opampData(b *testing.B) (*basis.Basis, *mc.Dataset, []float64) {
	opampFix.once.Do(func() {
		amp, err := circuit.NewOpAmp()
		if err != nil {
			b.Fatal(err)
		}
		ds, err := mc.Sample(amp, 700, 1, mc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		opampFix.dict = basis.Linear(amp.Dim())
		opampFix.train = ds
		f, err := ds.Metric("offset")
		if err != nil {
			b.Fatal(err)
		}
		opampFix.f = f
	})
	return opampFix.dict, opampFix.train, opampFix.f
}

// BenchmarkFig4SweepPointOMP measures one (K, error) point of the Fig. 4
// curves: a cross-validated OMP fit at K=150 ≪ M=631.
func BenchmarkFig4SweepPointOMP(b *testing.B) {
	dict, train, f := opampData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.FitSparse(&core.OMP{}, dict, train.Points[:150], f[:150], 4, 25); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Fit measures the "fitting cost" row of Table I per solver:
// LS on the over-determined 700-sample system, the sparse solvers (with
// cross-validation) on 300 samples.
func BenchmarkTable1Fit(b *testing.B) {
	dict, train, f := opampData(b)
	b.Run("LS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exp.FitLS(dict, train.Points, f); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, spec := range exp.SparseSolvers() {
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exp.FitSparse(spec.Fitter, dict, train.Points[:300], f[:300], 4, 40); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// quadFix lazily samples a quadratic-screened OpAmp dataset: top-30
// parameters, M = 496 quadratic dictionary.
var quadFix struct {
	once  sync.Once
	dict  *basis.Basis
	train *mc.Dataset
	f     []float64
}

func quadData(b *testing.B) (*basis.Basis, *mc.Dataset, []float64) {
	quadFix.once.Do(func() {
		syn, err := circuit.NewSynthetic(5, 30, 2, 12, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		ds, err := mc.Sample(syn, 600, 2, mc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		quadFix.dict = basis.Quadratic(syn.Dim())
		quadFix.train = ds
		f, err := ds.Metric("f")
		if err != nil {
			b.Fatal(err)
		}
		quadFix.f = f
	})
	return quadFix.dict, quadFix.train, quadFix.f
}

// BenchmarkTable2QuadraticError measures the Table II kernel: one
// cross-validated quadratic fit per solver on a sparse quadratic response
// (M=496, K=200).
func BenchmarkTable2QuadraticError(b *testing.B) {
	dict, train, f := quadData(b)
	for _, spec := range exp.SparseSolvers() {
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exp.FitSparse(spec.Fitter, dict, train.Points[:200], f[:200], 4, 30); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3QuadraticCost measures the Table III cost split: the LS
// baseline on the over-determined quadratic system (K=600 ≥ M=496) vs the
// OMP fit at K=200.
func BenchmarkTable3QuadraticCost(b *testing.B) {
	dict, train, f := quadData(b)
	b.Run("LS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exp.FitLS(dict, train.Points, f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("OMP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exp.FitSparse(&core.OMP{}, dict, train.Points[:200], f[:200], 4, 30); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// sramFix lazily builds a small SRAM testbench and dataset.
var sramFix struct {
	once  sync.Once
	sram  *circuit.SRAM
	dict  *basis.Basis
	train *mc.Dataset
	f     []float64
}

func sramData(b *testing.B) (*circuit.SRAM, *basis.Basis, *mc.Dataset, []float64) {
	sramFix.once.Do(func() {
		s, err := circuit.NewSRAM(circuit.SRAMConfig{Rows: 8, Cols: 6})
		if err != nil {
			b.Fatal(err)
		}
		ds, err := mc.Sample(s, 100, 3, mc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		sramFix.sram = s
		sramFix.dict = basis.Linear(s.Dim())
		sramFix.train = ds
		f, err := ds.Metric("read_delay")
		if err != nil {
			b.Fatal(err)
		}
		sramFix.f = f
	})
	return sramFix.sram, sramFix.dict, sramFix.train, sramFix.f
}

// BenchmarkTable4Simulation measures the dominant cost of Table IV: one
// transistor-level transient simulation of the SRAM read path.
func BenchmarkTable4Simulation(b *testing.B) {
	sram, _, _, _ := sramData(b)
	dy := make([]float64, sram.Dim())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sram.Evaluate(dy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Fit measures the Table IV fitting-cost row for the sparse
// solvers on the SRAM dataset.
func BenchmarkTable4Fit(b *testing.B) {
	_, dict, train, f := sramData(b)
	for _, spec := range exp.SparseSolvers() {
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exp.FitSparse(spec.Fitter, dict, train.Points, f, 4, 25); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6Profile measures extracting the sorted coefficient-magnitude
// series of Fig. 6 from a fitted model.
func BenchmarkFig6Profile(b *testing.B) {
	_, dict, train, f := sramData(b)
	d := basis.NewDenseDesign(dict, train.Points)
	model, err := (&core.OMP{}).Fit(d, f, 20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.Fig6Series(model)
	}
}

// --- Ablations (DESIGN.md) -------------------------------------------------

// naiveOMPFit re-solves the active-set least squares from scratch with a
// fresh QR at every iteration — the baseline the incremental Cholesky update
// inside core.OMP is compared against.
func naiveOMPFit(d basis.Design, f []float64, lambda int) (*core.Model, error) {
	k, m := d.Rows(), d.Cols()
	res := append([]float64(nil), f...)
	xi := make([]float64, m)
	used := make([]bool, m)
	var support []int
	var coef []float64
	for len(support) < lambda {
		d.MulTransVec(xi, res)
		best, bestAbs := -1, 0.0
		for j, v := range xi {
			if used[j] {
				continue
			}
			if v < 0 {
				v = -v
			}
			if best == -1 || v > bestAbs {
				best, bestAbs = j, v
			}
		}
		used[best] = true
		support = append(support, best)
		// From-scratch refit.
		g := linalg.NewMatrix(k, len(support))
		col := make([]float64, k)
		for i, idx := range support {
			d.Column(col, idx)
			g.SetCol(i, col)
		}
		var err error
		coef, err = linalg.SolveLeastSquares(g, f)
		if err != nil {
			return nil, err
		}
		pred := g.MulVec(nil, coef)
		for i := range res {
			res[i] = f[i] - pred[i]
		}
	}
	return &core.Model{M: m, Support: support, Coef: coef}, nil
}

// BenchmarkAblationOMPRefit compares the incremental-Cholesky OMP against
// the naive refit-from-scratch variant at λ=40.
func BenchmarkAblationOMPRefit(b *testing.B) {
	dict, train, f := opampData(b)
	d := basis.NewDenseDesign(dict, train.Points[:300])
	fs := f[:300]
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (&core.OMP{}).Fit(d, fs, 40); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive-refit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := naiveOMPFit(d, fs, 40); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationLazyVsDense compares the two design-matrix
// representations on the inner-product kernel Gᵀ·x (eq. 14) that dominates
// every solver iteration.
func BenchmarkAblationLazyVsDense(b *testing.B) {
	dict, train, _ := quadData(b)
	pts := train.Points[:300]
	x := make([]float64, 300)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	b.Run("dense", func(b *testing.B) {
		d := basis.NewDenseDesign(dict, pts)
		dst := make([]float64, dict.Size())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.MulTransVec(dst, x)
		}
	})
	b.Run("lazy", func(b *testing.B) {
		d := basis.NewLazyDesign(dict, pts)
		dst := make([]float64, dict.Size())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.MulTransVec(dst, x)
		}
	})
}

// BenchmarkAblationCrossValFolds measures the fold-count trade-off of
// Section IV-C: more folds cost proportionally more fitting time.
func BenchmarkAblationCrossValFolds(b *testing.B) {
	dict, train, f := opampData(b)
	d := basis.NewDenseDesign(dict, train.Points[:200])
	fs := f[:200]
	for _, folds := range []int{2, 4, 10} {
		b.Run(map[int]string{2: "Q2", 4: "Q4", 10: "Q10"}[folds], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.CrossValidate(&core.OMP{}, d, fs, folds, 20); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLARLasso compares plain LARS against the lasso-modified
// path (drops + refactorizations).
func BenchmarkAblationLARLasso(b *testing.B) {
	dict, train, f := opampData(b)
	d := basis.NewDenseDesign(dict, train.Points[:300])
	fs := f[:300]
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (&core.LAR{}).FitPath(d, fs, 30); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lasso", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (&core.LAR{Lasso: true}).FitPath(d, fs, 30); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSolverZoo compares every sparse solver (including the
// extensions beyond the paper's three) on the same cross-validated fit.
func BenchmarkAblationSolverZoo(b *testing.B) {
	dict, train, f := opampData(b)
	pts, fs := train.Points[:300], f[:300]
	solvers := []core.PathFitter{
		&core.OMP{}, &core.STAR{}, &core.LAR{}, &core.LAR{Lasso: true},
		&core.CD{}, &core.StOMP{},
	}
	names := []string{"OMP", "STAR", "LAR", "LAR-lasso", "CD", "StOMP"}
	for i, s := range solvers {
		b.Run(names[i], func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				if _, err := exp.FitSparse(s, dict, pts, fs, 4, 30); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBICvsCV compares the two λ-selection strategies: one
// path fit + information criterion vs Q-fold cross-validation.
func BenchmarkAblationBICvsCV(b *testing.B) {
	dict, train, f := opampData(b)
	d := basis.NewDenseDesign(dict, train.Points[:300])
	fs := f[:300]
	b.Run("BIC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SelectIC(&core.OMP{}, d, fs, 30, core.BIC); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CV4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.CrossValidate(&core.OMP{}, d, fs, 4, 30); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSpiceOpAmpSimulation measures the per-sample cost of the
// transistor-level OpAmp testbench (one DC + AC sweep), the dominant cost of
// the table1spice extension experiment.
func BenchmarkSpiceOpAmpSimulation(b *testing.B) {
	amp, err := circuit.NewSpiceOpAmp()
	if err != nil {
		b.Fatal(err)
	}
	dy := make([]float64, amp.Dim())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := amp.Evaluate(dy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGeneratedDesignParallel measures the parallel
// row-sharded Gᵀ·x kernel of the memory-bounded generated design against
// the stored-points lazy design at matched sizes.
func BenchmarkAblationGeneratedDesignParallel(b *testing.B) {
	const k, dim = 400, 500
	dict := basis.Linear(dim)
	gen := basis.NewGeneratedDesign(dict, k, 9)
	pts := make([][]float64, k)
	for i := range pts {
		pts[i] = gen.Point(nil, i)
	}
	lazy := basis.NewLazyDesign(dict, pts)
	x := make([]float64, k)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	dst := make([]float64, dict.Size())
	b.Run("generated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gen.MulTransVec(dst, x)
		}
	})
	b.Run("lazy-stored", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lazy.MulTransVec(dst, x)
		}
	})
}
