GO ?= go

# VERSION is stamped into the binaries (rsmd_build_info, /healthz) through
# the obs.Version ldflag; override with `make build VERSION=v1.2.3`.
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS = -X repro/internal/obs.Version=$(VERSION)

.PHONY: all build test race vet fmt-check bench bench-smoke bench-json chaos crash-smoke obs trace-smoke fuzz-smoke pipeline-smoke refit-smoke cluster-smoke loadbench ci

all: build

build:
	$(GO) build -ldflags '$(LDFLAGS)' ./...

test:
	$(GO) test ./...

# Race-detect the concurrent surfaces: the serving daemon's handlers and
# worker pools, the model registry, batched prediction, and the sampling
# engine.
race:
	$(GO) test -race ./internal/server/... ./internal/registry/... ./internal/cluster/... ./internal/core/... ./internal/mc/... ./internal/pipeline/... ./internal/journal/... ./internal/obs/... ./rsm/...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The serving hot-path and fit-path baselines (see internal/core/bench_test.go
# and internal/server/bench_test.go).
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./internal/core/ ./internal/server/

# One iteration of every benchmark: catches benchmarks that no longer compile
# or crash without paying full measurement time. Part of make ci.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./internal/core/ ./internal/server/

# Short fuzz passes over the daemon's untrusted parse surfaces: the
# envelope parser (upload endpoint) and the SPICE netlist parser (pipeline
# endpoint). Long enough to exercise the mutator beyond the seed corpus,
# short enough for CI. Part of make ci.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzReadEnvelope$$' -fuzztime=5s ./internal/core/
	$(GO) test -run='^$$' -fuzz='^FuzzReadCheckpoint$$' -fuzztime=5s ./internal/core/
	$(GO) test -run='^$$' -fuzz='^FuzzParseNetlist$$' -fuzztime=5s ./internal/spice/
	$(GO) test -run='^$$' -fuzz='^FuzzReplayJournal$$' -fuzztime=5s ./internal/journal/
	$(GO) test -run='^$$' -fuzz='^FuzzBuildTree$$' -fuzztime=5s ./internal/obs/trace/

# Machine-readable perf baseline, committed as $(BENCH_JSON): the solver
# engine benches (fit path + correlation sweep), the serving engine's
# cold/cached/coalesced predict regimes, and the netlist-in model-out
# pipeline loop, so regressions diff in review.
BENCH_JSON ?= BENCH_9.json
bench-json:
	@{ $(GO) test -run=NONE -bench='BenchmarkFitPath|BenchmarkCorrelateSweep|BenchmarkRefineWarmVsCold' -benchmem ./internal/core/; \
	   $(GO) test -run=NONE -bench='BenchmarkPredictServed' -benchmem ./internal/server/; \
	   $(GO) test -run=NONE -bench='BenchmarkPipelineEndToEnd' -benchmem ./internal/pipeline/; } \
	| awk 'BEGIN{print "["; n=0} \
		/^Benchmark/{if(n++)printf ",\n"; name=$$1; sub(/-[0-9]+$$/,"",name); \
		printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, $$2, $$3, $$5, $$7} \
		END{print "\n]"}' > $(BENCH_JSON)
	@cat $(BENCH_JSON)

# Fault-injection suite: drives the daemon through injected solver panics,
# mid-write registry crashes, stalled jobs and saturation (internal/server
# chaos_test.go, cmd/rsmd drain tests) under the race detector.
chaos:
	$(GO) test -race -run 'TestChaos|TestDraining|TestDaemon' ./internal/server/ ./cmd/rsmd/

# Crash/recovery suite: kills the daemon with fit and pipeline jobs in
# flight, then proves the next boot replays the job journal — in-flight
# jobs re-run to done under their original IDs, canceled and quarantined
# outcomes stick, idempotent resubmits dedup across the restart, and a
# full disk degrades submits to 503 while predict keeps serving. Under the
# race detector; part of make ci.
crash-smoke:
	$(GO) test -race -run 'TestCrash|TestChaosJournal' ./internal/server/

# Tracing smoke: the hierarchical-span layer end to end under the race
# detector — span-tree assembly (property tests), the tail-sampled store's
# concurrent hammer, the trace/event HTTP endpoints, exemplar resolution
# and SSE job tailing through the public client. Part of make ci.
trace-smoke:
	$(GO) test -race ./internal/obs/trace/
	$(GO) test -race -run 'TestTracing|TestHTTPRequestTraced|TestTraceList|TestFitJobTrace|TestPipelineJobTrace|TestJobEvents|TestFitExemplar' ./internal/server/
	$(GO) test -race -run 'TestClientWatchJob' ./rsm/

# Observability smoke check: boots the serving stack in-process, drives a
# fit + predictions through it, scrapes /metrics in Prometheus text format
# and validates the exposition (cumulative le buckets, TYPE metadata, +Inf
# terminators) — failing on any malformed output.
obs:
	$(GO) run ./cmd/obscheck

# End-to-end pipeline smoke: the netlist-in, model-out acceptance loop
# (POST /v1/pipelines with the committed rc_lowpass deck + spec through to
# served predictions) under the race detector. Part of make ci.
pipeline-smoke:
	$(GO) test -race -run 'TestPipeline' ./internal/server/
	$(GO) test -race ./internal/pipeline/

# Incremental-refit smoke: checkpoint round-trips and warm continuation in
# the solver engine, checkpoint persistence in the registry, and the
# POST /v1/models/{name}/refine loop — submit, publish gate, provenance,
# metrics, crash replay — under the race detector. Part of make ci.
refit-smoke:
	$(GO) test -race -run 'TestCheckpoint|TestWarmStart|TestCrossValidateScrubs' ./internal/core/
	$(GO) test -race -run 'TestCheckpoint|TestDeleteRemovesCheckpoints' ./internal/registry/
	$(GO) test -race -run 'TestRefine|TestCrashRecoveryRefineReplay' ./internal/server/
	$(GO) test -race -run 'TestClientRefineRoundTrip' ./rsm/

# Horizontal-serving smoke: the hash-ring property tests, the multi-node
# routing/replication/read-your-writes/chaos suites (in-process 3-node
# harness + the daemon's flag surface), the client redirect regressions —
# all under the race detector — then a short rsmload run that spawns a
# real 3-process ring, kills a shard under load, and fails on any error
# from a live shard's models or any accepted job left without a terminal
# state. Part of make ci.
cluster-smoke:
	$(GO) test -race -run 'TestRing|TestPeer|TestCluster|TestChaosCluster|TestDaemonCluster' ./internal/cluster/ ./internal/server/ ./cmd/rsmd/
	$(GO) test -race -run 'TestClientFollowsClusterRedirects|TestClientClusterPredictAtLeastAndDelete' ./rsm/
	$(GO) run ./cmd/rsmload -spawn 3 -duration 2s -conc 4 -rate 20 -models 9 -chaos -baseline=false -out /dev/null

# Full load benchmark, committed as BENCH_10.json: single-node baseline,
# 3-shard closed- and open-loop phases, and the one-shard-kill chaos
# window with goodput and lost-job accounting. The cpus field records the
# host's core count — the cluster-vs-single ratio only shows horizontal
# capacity on multi-core hosts.
loadbench:
	$(GO) run ./cmd/rsmload -spawn 3 -duration 5s -conc 8 -rate 40 -models 12 -chaos -out BENCH_10.json

ci: vet fmt-check build test race chaos crash-smoke obs trace-smoke bench-smoke fuzz-smoke pipeline-smoke refit-smoke cluster-smoke
