package core

import (
	"context"
	"fmt"

	"repro/internal/basis"
	"repro/internal/stats"
)

// subsetDesign exposes a row subset of an underlying design without copying
// it, by scattering/gathering through the row index map. It lets the
// cross-validation folds reuse lazy paper-scale designs.
type subsetDesign struct {
	d    basis.Design
	rows []int
}

// Rows returns the subset size.
func (s *subsetDesign) Rows() int { return len(s.rows) }

// Cols returns M of the inner design.
func (s *subsetDesign) Cols() int { return s.d.Cols() }

// Column gathers the subset rows of the inner design's column m.
func (s *subsetDesign) Column(dst []float64, m int) []float64 {
	full := s.d.Column(nil, m)
	if dst == nil {
		dst = make([]float64, len(s.rows))
	}
	for i, r := range s.rows {
		dst[i] = full[r]
	}
	return dst
}

// VisitRows streams the inner design's rows, renumbering to subset indices
// and skipping rows outside the subset. One inner pass regardless of the
// subset size.
func (s *subsetDesign) VisitRows(fn func(k int, row []float64)) {
	pos := make(map[int]int, len(s.rows))
	for i, r := range s.rows {
		pos[r] = i
	}
	s.d.VisitRows(func(k int, row []float64) {
		if i, ok := pos[k]; ok {
			fn(i, row)
		}
	})
}

// MulTransVec scatters x into full-length coordinates and delegates.
func (s *subsetDesign) MulTransVec(dst, x []float64) []float64 {
	if len(x) != len(s.rows) {
		panic(fmt.Sprintf("core: subset MulTransVec input length %d, want %d", len(x), len(s.rows)))
	}
	full := make([]float64, s.d.Rows())
	for i, r := range s.rows {
		full[r] = x[i]
	}
	return s.d.MulTransVec(dst, full)
}

// Subset returns a view of d restricted to the given rows.
func Subset(d basis.Design, rows []int) basis.Design {
	return &subsetDesign{d: d, rows: rows}
}

// gather copies f at the given rows.
func gather(f []float64, rows []int) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = f[r]
	}
	return out
}

// CVResult reports a cross-validated sparse fit (Section IV-C, Fig. 2).
type CVResult struct {
	// ErrCurve[λ-1] is the cross-validation error ε(λ) averaged over folds.
	ErrCurve []float64
	// FoldErr[q][λ-1] is ε_q(λ) for fold q.
	FoldErr [][]float64
	// BestLambda is the sparsity minimizing ErrCurve.
	BestLambda int
	// Model is the final model: the solver re-run on the full data set with
	// λ = BestLambda.
	Model *Model
}

// CrossValidate selects the sparsity level λ by Q-fold cross-validation and
// returns the model refit on all data with the chosen λ. Folds are
// interleaved (sample k goes to fold k mod Q); shuffle the samples
// beforehand when they are not already exchangeable.
func CrossValidate(fitter PathFitter, d basis.Design, f []float64, folds, maxLambda int) (*CVResult, error) {
	return CrossValidateCtx(context.Background(), fitter, d, f, folds, maxLambda)
}

// CrossValidateCtx is CrossValidate under a context: cancellation is checked
// between folds and, for ContextFitter solvers, inside each fold's path fit,
// so an expired job deadline abandons the cross-validation mid-fold.
func CrossValidateCtx(ctx context.Context, fitter PathFitter, d basis.Design, f []float64, folds, maxLambda int) (*CVResult, error) {
	if err := checkProblem(d, f, maxLambda); err != nil {
		return nil, err
	}
	k := d.Rows()
	if folds < 2 {
		return nil, fmt.Errorf("core: cross-validation needs ≥ 2 folds, got %d", folds)
	}
	if folds > k {
		return nil, fmt.Errorf("core: %d folds exceed %d samples", folds, k)
	}

	result := &CVResult{
		ErrCurve: make([]float64, maxLambda),
		FoldErr:  make([][]float64, folds),
	}
	counts := make([]int, maxLambda)
	// One engine for the whole cross-validation: every fold fit and the final
	// refit run sequentially, so they share a single set of correlation and
	// residual buffers instead of allocating Q+1 of them.
	eng := NewEngine(FitWorkersFromContext(ctx))
	for q := 0; q < folds; q++ {
		var trainRows, testRows []int
		for i := 0; i < k; i++ {
			if i%folds == q {
				testRows = append(testRows, i)
			} else {
				trainRows = append(trainRows, i)
			}
		}
		trainD := Subset(d, trainRows)
		testD := Subset(d, testRows)
		trainF := gather(f, trainRows)
		testF := gather(f, testRows)

		// Fold fits run on row subsets, so an exact checkpoint does not apply
		// (its rows are the full data set) and a capture plan must not race
		// across folds — scrub both. A warm start survives: replay is valid
		// on any data and the folds are the bulk of a refine's speedup.
		foldCtx := WithFitStage(WithCheckpointPlan(WithResumeCheckpoint(ctx, nil), nil), fmt.Sprintf("cv-fold-%d", q))
		path, err := fitPathWithEngine(foldCtx, eng, fitter, trainD, trainF, maxLambda)
		if err != nil {
			return nil, fmt.Errorf("core: cross-validation fold %d: %w", q, err)
		}
		// Score every path model in ONE streaming pass over the held-out
		// rows: each row is evaluated once and dotted with every model's
		// sparse coefficients. Per-model Predict calls would materialize
		// each support column separately — O(λ²) column evaluations per
		// fold, which is prohibitive on regenerating designs.
		preds := make([][]float64, path.Len())
		for i := range preds {
			preds[i] = make([]float64, len(testRows))
		}
		testD.VisitRows(func(k int, row []float64) {
			for mi, model := range path.Models {
				s := 0.0
				for i, idx := range model.Support {
					s += model.Coef[i] * row[idx]
				}
				preds[mi][k] = s
			}
		})
		foldErr := make([]float64, maxLambda)
		for lam := 1; lam <= maxLambda; lam++ {
			// Paths may terminate early; reuse the last available model.
			idx := lam - 1
			if idx >= path.Len() {
				idx = path.Len() - 1
			}
			foldErr[lam-1] = stats.RelativeRMSError(preds[idx], testF)
		}
		result.FoldErr[q] = foldErr
		for i, e := range foldErr {
			result.ErrCurve[i] += e
			counts[i]++
		}
	}
	best, bestErr := 0, 0.0
	for i := range result.ErrCurve {
		result.ErrCurve[i] /= float64(counts[i])
		if i == 0 || result.ErrCurve[i] < bestErr {
			best, bestErr = i+1, result.ErrCurve[i]
		}
	}
	result.BestLambda = best

	// Refit on the full data set. The path is fit to maxLambda rather than
	// BestLambda because batch solvers (StOMP, CD) admit several bases per
	// step: capping admission at BestLambda could truncate a batch, whereas
	// indexing the full path returns the same model the folds scored.
	path, err := fitPathWithEngine(WithFitStage(ctx, "final"), eng, fitter, d, f, maxLambda)
	if err != nil {
		return nil, fmt.Errorf("core: final refit: %w", err)
	}
	idx := best - 1
	if idx >= path.Len() {
		idx = path.Len() - 1
	}
	result.Model = path.Models[idx]
	return result, nil
}
