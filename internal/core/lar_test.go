package core

import (
	"math"
	"testing"

	"repro/internal/basis"
	"repro/internal/linalg"
	"repro/internal/stats"
)

func TestLARRecoversSparseSupport(t *testing.T) {
	support := []int{5, 22, 61}
	coefs := []float64{3, -2, 1.2}
	_, d, f, _ := synthProblem(50, 80, 100, false, support, coefs, 0)
	path, err := (&LAR{}).FitPath(d, f, 3)
	if err != nil {
		t.Fatal(err)
	}
	model := path.At(3)
	sorted := model.SortedSupport()
	want := []int{5, 22, 61}
	for i := range want {
		if sorted[i] != want[i] {
			t.Fatalf("support = %v, want %v", sorted, want)
		}
	}
}

func TestLAREquiangularProperty(t *testing.T) {
	// Along the LARS path the active basis vectors keep equal absolute
	// correlation with the residual. Check right after each recorded step.
	_, d, f, _ := synthProblem(51, 30, 60, false, []int{1, 9, 17, 25}, []float64{2, 1.5, -1, 0.5}, 0.01)
	path, err := (&LAR{}).FitPath(d, f, 4)
	if err != nil {
		t.Fatal(err)
	}
	norms := make([]float64, d.Cols())
	col := make([]float64, d.Rows())
	for j := range norms {
		d.Column(col, j)
		norms[j] = linalg.Norm2(col)
	}
	for step, model := range path.Models {
		res := linalg.Sub(nil, f, model.Predict(d))
		corr := d.MulTransVec(nil, res)
		var active []float64
		for _, idx := range model.Support {
			active = append(active, math.Abs(corr[idx]/norms[idx]))
		}
		for i := 1; i < len(active); i++ {
			if math.Abs(active[i]-active[0]) > 1e-8*(1+active[0]) {
				t.Errorf("step %d: active correlations differ: %v", step, active)
			}
		}
		// Inactive correlations never exceed the active level.
		maxInactive := 0.0
		activeSet := make(map[int]bool)
		for _, idx := range model.Support {
			activeSet[idx] = true
		}
		for j := range corr {
			if !activeSet[j] {
				if a := math.Abs(corr[j] / norms[j]); a > maxInactive {
					maxInactive = a
				}
			}
		}
		if len(active) > 0 && maxInactive > active[0]+1e-8*(1+active[0]) {
			t.Errorf("step %d: inactive correlation %g exceeds active %g", step, maxInactive, active[0])
		}
	}
}

func TestLARShrinkage(t *testing.T) {
	// LAR path coefficients are shrunken toward zero relative to the LS
	// refit on the same support — the L1 bias.
	_, d, f, _ := synthProblem(52, 40, 70, false, []int{3, 12}, []float64{2, -3}, 0.05)
	plain, err := (&LAR{}).Fit(d, f, 2)
	if err != nil {
		t.Fatal(err)
	}
	refit, err := (&LAR{Refit: true}).Fit(d, f, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Coef {
		if math.Abs(plain.Coef[i]) > math.Abs(refit.Coef[i])+1e-9 {
			t.Errorf("coef %d not shrunken: LAR %g vs refit %g", i, plain.Coef[i], refit.Coef[i])
		}
	}
}

func TestLARRefitMatchesOMPOnSameSupport(t *testing.T) {
	_, d, f, _ := synthProblem(53, 50, 90, false, []int{7, 19, 40}, []float64{1, 2, -1}, 0)
	lar, err := (&LAR{Refit: true}).Fit(d, f, 3)
	if err != nil {
		t.Fatal(err)
	}
	omp, err := (&OMP{}).Fit(d, f, 3)
	if err != nil {
		t.Fatal(err)
	}
	ld, od := lar.Dense(), omp.Dense()
	for i := range ld {
		if math.Abs(ld[i]-od[i]) > 1e-7 {
			t.Errorf("α[%d]: LAR-refit %g vs OMP %g", i, ld[i], od[i])
		}
	}
}

func TestLARFullPathApproachesLS(t *testing.T) {
	// Running LARS until all columns are active ends at the LS solution.
	_, d, f, _ := synthProblem(54, 6, 50, false, []int{1, 4}, []float64{1, -2}, 0.2)
	m := d.Cols()
	path, err := (&LAR{}).FitPath(d, f, m)
	if err != nil {
		t.Fatal(err)
	}
	last := path.Models[path.Len()-1]
	ls, err := LS{}.Fit(d, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	ld, sd := last.Dense(), ls.Dense()
	for i := range ld {
		if math.Abs(ld[i]-sd[i]) > 1e-6*(1+math.Abs(sd[i])) {
			t.Errorf("α[%d]: LAR-full %g vs LS %g", i, ld[i], sd[i])
		}
	}
}

func TestLassoPathSignConsistency(t *testing.T) {
	// With the lasso modification, every active coefficient has the same
	// sign as its correlation with the residual at entry; no recorded model
	// may contain a coefficient that crossed zero.
	_, d, f, _ := synthProblem(55, 30, 45, false, []int{2, 8, 15, 21}, []float64{2, -1.5, 1, -0.5}, 0.3)
	path, err := (&LAR{Lasso: true}).FitPath(d, f, 8)
	if err != nil {
		t.Fatal(err)
	}
	for step, model := range path.Models {
		for i, c := range model.Coef {
			if c == 0 && len(model.Support) > 0 {
				t.Errorf("step %d: zero coefficient for active basis %d", step, model.Support[i])
			}
		}
	}
}

func TestLARSkipsDuplicateColumns(t *testing.T) {
	g := linalg.NewMatrixFrom([][]float64{
		{1, 1, 0.2},
		{2, 2, 0.9},
		{3, 3, -0.5},
		{4, 4, 0.1},
	})
	d := basis.DenseDesignFromMatrix(g)
	f := []float64{1.1, 2.3, 2.8, 4.2}
	path, err := (&LAR{}).FitPath(d, f, 3)
	if err != nil {
		t.Fatal(err)
	}
	final := path.Models[path.Len()-1]
	if final.NNZ() > 2 {
		t.Errorf("NNZ = %d, want ≤ 2 with a duplicate column", final.NNZ())
	}
}

func TestLARZeroColumnExcluded(t *testing.T) {
	g := linalg.NewMatrixFrom([][]float64{
		{0, 1, 0.5},
		{0, 2, -0.3},
		{0, 1, 0.8},
	})
	d := basis.DenseDesignFromMatrix(g)
	f := []float64{1, 2, 1}
	path, err := (&LAR{}).FitPath(d, f, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range path.Models {
		for _, s := range m.Support {
			if s == 0 {
				t.Fatal("zero column was selected")
			}
		}
	}
}

func TestLARGeneralization(t *testing.T) {
	support := []int{4, 13, 31}
	coefs := []float64{2, 1, -1.5}
	_, dTrain, fTrain, _ := synthProblem(56, 40, 120, false, support, coefs, 0.05)
	_, dTest, fTest, _ := synthProblem(57, 40, 1500, false, support, coefs, 0)
	model, err := (&LAR{Refit: true}).Fit(dTrain, fTrain, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.RelativeRMSError(model.Predict(dTest), fTest); e > 0.05 {
		t.Errorf("LAR test error %g too large", e)
	}
}
