package core

import (
	"context"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/basis"
)

func TestCheckProblem(t *testing.T) {
	_, d, f, _ := synthProblem(301, 5, 12, false, []int{1}, []float64{1}, 0)
	nanF := append([]float64(nil), f...)
	nanF[3] = math.NaN()
	infF := append([]float64(nil), f...)
	infF[7] = math.Inf(-1)

	cases := []struct {
		name      string
		d         basis.Design
		f         []float64
		maxLambda int
		wantErr   string
	}{
		{"valid", d, f, 3, ""},
		{"row-mismatch", d, f[:5], 3, "rows but response has"},
		{"empty", basis.NewDenseDesign(basis.Linear(5), nil), nil, 3, "empty sample set"},
		{"lambda-zero", d, f, 0, "maxLambda must be"},
		{"lambda-negative", d, f, -2, "maxLambda must be"},
		{"nan-response", d, nanF, 3, "NaN"},
		{"inf-response", d, infF, 3, "-Inf"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkProblem(tc.d, tc.f, tc.maxLambda)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("checkProblem: unexpected error %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("checkProblem: want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("checkProblem: error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestResolveFitWorkers(t *testing.T) {
	if got := ResolveFitWorkers(3); got != 3 {
		t.Fatalf("ResolveFitWorkers(3) = %d", got)
	}
	auto := runtime.GOMAXPROCS(0)
	if got := ResolveFitWorkers(0); got != auto {
		t.Fatalf("ResolveFitWorkers(0) = %d, want GOMAXPROCS %d", got, auto)
	}
	if got := ResolveFitWorkers(-5); got != auto {
		t.Fatalf("ResolveFitWorkers(-5) = %d, want GOMAXPROCS %d", got, auto)
	}
}

func TestWithFitWorkersRoundTrip(t *testing.T) {
	if got := FitWorkersFromContext(context.Background()); got != 0 {
		t.Fatalf("unset context: workers = %d, want 0", got)
	}
	if got := FitWorkersFromContext(nil); got != 0 {
		t.Fatalf("nil context: workers = %d, want 0", got)
	}
	ctx := WithFitWorkers(context.Background(), 4)
	if got := FitWorkersFromContext(ctx); got != 4 {
		t.Fatalf("workers = %d, want 4", got)
	}
	fc := NewFitContext(ctx)
	if got := fc.engine().Workers(); got != 4 {
		t.Fatalf("engine workers = %d, want 4", got)
	}
}

// TestCorrelatorParallelBitIdentical forces multi-worker sweeps on a design
// above the parallel threshold and requires bit-exact agreement with the
// design's own serial MulTransVec: the column-sharded kernel must not change
// summation order, so worker count can never perturb solver paths.
func TestCorrelatorParallelBitIdentical(t *testing.T) {
	// Quadratic basis in 30 dims → M=496; K=70 puts K·M ≈ 34.7k above
	// correlateParallelMin so the parallel path actually engages.
	_, d, f, _ := synthProblem(302, 30, 70, true, []int{2, 40, 100}, []float64{1, -2, 0.5}, 0.1)
	if d.Rows()*d.Cols() < correlateParallelMin {
		t.Fatalf("test design too small to engage the parallel sweep: %d", d.Rows()*d.Cols())
	}
	want := d.MulTransVec(nil, f)
	for _, workers := range []int{1, 2, 3, 4, 7, 16} {
		c := newCorrelator(d, workers)
		if workers > 1 && c.cm == nil {
			t.Fatalf("workers=%d: correlator did not materialize column-major storage", workers)
		}
		got, err := c.Apply(nil, f)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("workers=%d: correlation[%d] = %.17g, want %.17g (must be bit-identical)",
					workers, j, got[j], want[j])
			}
		}
	}
}

// TestCorrelatorAdoptsColMajor verifies a design already in column-major form
// is used in place rather than copied.
func TestCorrelatorAdoptsColMajor(t *testing.T) {
	_, d, _, _ := synthProblem(303, 5, 12, false, []int{1}, []float64{1}, 0)
	cm := basis.NewColMajor(d)
	c := newCorrelator(cm, 4)
	if c.cm != cm {
		t.Fatal("correlator did not adopt the ColMajor design in place")
	}
}

// TestCorrelatorSmallStaysSerial verifies tiny designs skip both the
// column-major copy and the goroutine fork.
func TestCorrelatorSmallStaysSerial(t *testing.T) {
	_, d, _, _ := synthProblem(304, 5, 12, false, []int{1}, []float64{1}, 0)
	if c := newCorrelator(d, 8); c.cm != nil {
		t.Fatal("small design should not be materialized column-major")
	}
}

// TestSolverPathsWorkerIndependent runs every solver with forced parallel
// workers on a problem large enough to engage the parallel sweep and demands
// the exact path produced by the serial fit.
func TestSolverPathsWorkerIndependent(t *testing.T) {
	_, d, f, _ := synthProblem(305, 30, 80, true, []int{3, 55, 200, 310}, []float64{2, -1, 1.5, 0.7}, 0.05)
	ctx := WithFitWorkers(context.Background(), 4)
	for _, fitter := range equivalenceSolvers() {
		cf := fitter.(ContextFitter)
		serial, err := fitter.FitPath(d, f, equivalenceMaxLambda)
		if err != nil {
			t.Fatalf("%s serial: %v", solverLabel(fitter), err)
		}
		par, err := cf.FitPathCtx(NewFitContext(ctx), d, f, equivalenceMaxLambda)
		if err != nil {
			t.Fatalf("%s parallel: %v", solverLabel(fitter), err)
		}
		if par.Len() != serial.Len() {
			t.Fatalf("%s: parallel path length %d, serial %d", solverLabel(fitter), par.Len(), serial.Len())
		}
		for s := range serial.Models {
			sm, pm := serial.Models[s], par.Models[s]
			if len(sm.Support) != len(pm.Support) {
				t.Fatalf("%s step %d: support sizes differ", solverLabel(fitter), s)
			}
			for j := range sm.Support {
				if sm.Support[j] != pm.Support[j] {
					t.Errorf("%s step %d: support[%d] %d != %d", solverLabel(fitter), s, j, pm.Support[j], sm.Support[j])
				}
				if sm.Coef[j] != pm.Coef[j] {
					t.Errorf("%s step %d: coef[%d] %.17g != %.17g (must be bit-identical)",
						solverLabel(fitter), s, j, pm.Coef[j], sm.Coef[j])
				}
			}
		}
	}
}

// TestEngineReuseAcrossFits verifies a shared engine's scratch buffers are
// reused (not reallocated) across sequential fits, the allocation contract
// CrossValidateCtx relies on.
func TestEngineReuseAcrossFits(t *testing.T) {
	_, d, f, _ := synthProblem(306, 8, 40, false, []int{2, 5}, []float64{1, -1}, 0.01)
	eng := NewEngine(1)
	xi := eng.xiBuf(d.Cols())
	res := eng.resBuf(d.Rows())
	for range 3 {
		if _, err := fitPathWithEngine(context.Background(), eng, &OMP{}, d, f, 4); err != nil {
			t.Fatal(err)
		}
	}
	if &eng.xi[0] != &xi[0] || &eng.res[0] != &res[0] {
		t.Fatal("engine scratch buffers were reallocated across fits of identical shape")
	}
}
