package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/basis"
	"repro/internal/linalg"
)

// OMP is the orthogonal matching pursuit solver of Algorithm 1: at each
// iteration it selects the basis vector most correlated with the current
// residual (eq. 18) and then re-solves the least-squares coefficients of
// *all* selected bases (Step 6, eq. 22) — the re-fit that distinguishes it
// from STAR.
//
// The active-set least-squares problem is solved through a growable Cholesky
// factorization of the active Gram matrix, so each iteration costs one
// Gᵀ·res product plus O(p²) for the triangular solves.
type OMP struct {
	// Tol stops the path early once the relative residual
	// ‖res‖/‖F‖ falls below it. Zero means no early stop.
	Tol float64
	// Refit is unused for OMP (coefficients are always re-fit); it exists
	// so OMP and LAR share configuration shape in the experiment harness.
	Refit bool
}

// Name implements PathFitter.
func (o *OMP) Name() string { return "OMP" }

// Fit runs Algorithm 1 for a fixed sparsity budget λ and returns the final
// model.
func (o *OMP) Fit(d basis.Design, f []float64, lambda int) (*Model, error) {
	path, err := o.FitPath(d, f, lambda)
	if err != nil {
		return nil, err
	}
	return path.Models[len(path.Models)-1], nil
}

// FitPath implements PathFitter: it records the nested models produced after
// each OMP iteration.
func (o *OMP) FitPath(d basis.Design, f []float64, maxLambda int) (*Path, error) {
	return o.FitPathCtx(nil, d, f, maxLambda)
}

// FitPathCtx implements ContextFitter: the selection loop polls fc between
// iterations so job deadlines and cancellations stop the fit promptly.
func (o *OMP) FitPathCtx(fc *FitContext, d basis.Design, f []float64, maxLambda int) (*Path, error) {
	if err := checkProblem(d, f, maxLambda); err != nil {
		return nil, err
	}
	k, m := d.Rows(), d.Cols()
	if maxLambda > k {
		// Selecting more bases than samples would make the LS step
		// underdetermined; Algorithm 1 implicitly requires λ ≤ K.
		maxLambda = k
	}
	if maxLambda > m {
		maxLambda = m
	}

	fNorm := linalg.Norm2(f)
	res := linalg.Clone(f) // Step 2: Res = F
	xi := make([]float64, m)
	excluded := make([]bool, m)

	chol := linalg.NewCholesky()         // factor of the active Gram matrix
	var support []int                    // Ω, in selection order
	var cols []([]float64)               // materialized active columns G_i
	gtf := make([]float64, 0, maxLambda) // Gᵀ_Ω·F restricted to the support
	path := &Path{}

	for len(support) < maxLambda {
		if err := fc.Err(); err != nil {
			return nil, fmt.Errorf("core: OMP fit stopped: %w", err)
		}
		// Step 3: ξ_m = (1/K)·G_mᵀ·Res for every m.
		d.MulTransVec(xi, res)
		// (The 1/K factor does not change the argmax; skip it.)
		if len(support) == 0 {
			// Res == F here, so a NaN/Inf design entry surfaces in ξ; catch it
			// once up front instead of silently never selecting that column.
			if err := checkFiniteVec("design correlation", xi); err != nil {
				return nil, err
			}
		}

		// Step 4: pick the most correlated admissible basis vector. Columns
		// that proved linearly dependent on the active set are excluded.
		var newCol []float64
		selected := -1
		for {
			s := argmaxAbsExcluding(xi, excluded)
			if s != -1 && math.Abs(xi[s]) <= degenEps*(1+fNorm) {
				s = -1 // residual uncorrelated with every remaining basis
			}
			if s == -1 {
				// Dictionary exhausted.
				if len(support) == 0 {
					return nil, errDegenerate("OMP", "could not select any basis vector")
				}
				return path, nil
			}
			c := d.Column(nil, s)
			cross := make([]float64, len(support))
			for i, col := range cols {
				cross[i] = linalg.Dot(col, c)
			}
			err := chol.Append(cross, linalg.Dot(c, c))
			if err == nil {
				selected, newCol = s, c
				gtf = append(gtf, linalg.Dot(c, f))
				break
			}
			if errors.Is(err, linalg.ErrNotPositiveDefinite) {
				excluded[s] = true // dependent column, try the next best
				continue
			}
			return nil, fmt.Errorf("core: OMP Gram update: %w", err)
		}
		// Step 5: Ω ← Ω ∪ {s}.
		support = append(support, selected)
		cols = append(cols, newCol)
		excluded[selected] = true // never reselect

		// Step 6: re-solve all active coefficients (eq. 22).
		coef, err := chol.Solve(gtf)
		if err != nil {
			return nil, fmt.Errorf("core: OMP coefficient solve: %w", err)
		}

		// Step 7: Res = F − Σ αᵢ·Gᵢ (eq. 23).
		copy(res, f)
		for i, col := range cols {
			linalg.Axpy(-coef[i], col, res)
		}

		model := &Model{M: m, Support: append([]int(nil), support...), Coef: coef}
		path.Models = append(path.Models, model)
		path.Residual = append(path.Residual, linalg.Norm2(res))
		fc.Observe(selected, len(support), path.Residual[len(path.Residual)-1])

		if o.Tol > 0 && fNorm > 0 && linalg.Norm2(res) <= o.Tol*fNorm {
			break
		}
	}
	return path, nil
}

var _ ContextFitter = (*OMP)(nil)
