package core

import (
	"repro/internal/basis"
)

// OMP is the orthogonal matching pursuit solver of Algorithm 1: at each
// iteration it selects the basis vector most correlated with the current
// residual (eq. 18) and then re-solves the least-squares coefficients of
// *all* selected bases (Step 6, eq. 22) — the re-fit that distinguishes it
// from STAR.
//
// The whole inner machinery — correlation sweep, active-set bookkeeping,
// growable-Cholesky Gram factor, residual maintenance — lives in the shared
// engine (ActiveSet); this file keeps only OMP's rule: take the single best
// admissible column, then re-fit everything.
type OMP struct {
	// Tol stops the path early once the relative residual
	// ‖res‖/‖F‖ falls below it. Zero means no early stop.
	Tol float64
}

// Name implements PathFitter.
func (o *OMP) Name() string { return "OMP" }

// Fit runs Algorithm 1 for a fixed sparsity budget λ and returns the final
// model.
func (o *OMP) Fit(d basis.Design, f []float64, lambda int) (*Model, error) {
	path, err := o.FitPath(d, f, lambda)
	if err != nil {
		return nil, err
	}
	return path.Models[len(path.Models)-1], nil
}

// FitPath implements PathFitter: it records the nested models produced after
// each OMP iteration.
func (o *OMP) FitPath(d basis.Design, f []float64, maxLambda int) (*Path, error) {
	return o.FitPathCtx(nil, d, f, maxLambda)
}

// FitPathCtx implements ContextFitter: the selection loop polls fc between
// iterations so job deadlines and cancellations stop the fit promptly.
func (o *OMP) FitPathCtx(fc *FitContext, d basis.Design, f []float64, maxLambda int) (*Path, error) {
	as, err := newActiveSet(fc, d, f, maxLambda, activeSetConfig{
		solver: "OMP", clampRows: true, gram: true,
	})
	if err != nil {
		return nil, err
	}
	path := &Path{}
	// Continuation: an exact checkpoint resumes the interrupted path
	// bit-identically (folding any appended samples into the Gram factor);
	// otherwise a warm-start model replays its support without sweeps.
	if ck, err := fc.resumeFor("OMP"); err != nil {
		return nil, err
	} else if ck != nil {
		if err := as.restore(ck, path); err != nil {
			return nil, err
		}
	} else if err := warmReplay(fc, as, path); err != nil {
		return nil, err
	}
	for as.Size() < as.MaxLambda() {
		if err := as.Err(); err != nil {
			return nil, err
		}
		// Step 3: ξ_m = (1/K)·G_mᵀ·Res for every m. (The 1/K factor does not
		// change the argmax; skip it.)
		xi, err := as.CorrelateResidual()
		if err != nil {
			return nil, err
		}
		// Step 4/5: admit the most correlated admissible basis vector;
		// columns that prove linearly dependent on the active set are
		// excluded by TryAppend and the next best is tried.
		selected := -1
		for {
			s := as.SelectMostCorrelated(xi)
			if s == -1 {
				// Dictionary exhausted.
				if as.Size() == 0 {
					return nil, as.errDegenerateNoSelection()
				}
				captureCheckpoint(fc, as, path, nil)
				return path, nil
			}
			ok, err := as.TryAppend(s)
			if err != nil {
				return nil, err
			}
			if ok {
				selected = s
				break
			}
		}
		// Step 6: re-solve all active coefficients (eq. 22).
		coef, err := as.RefitActive()
		if err != nil {
			return nil, err
		}
		// Step 7: Res = F − Σ αᵢ·Gᵢ (eq. 23).
		as.RecomputeResidual(coef)

		as.Record(path, coef, selected)
		if checkpointAfter(fc, as, path, nil) {
			return path, nil
		}
		if as.BelowTol(o.Tol) {
			break
		}
	}
	captureCheckpoint(fc, as, path, nil)
	return path, nil
}

var _ ContextFitter = (*OMP)(nil)
