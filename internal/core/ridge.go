package core

import (
	"fmt"

	"repro/internal/basis"
	"repro/internal/linalg"
)

// Ridge solves L2-regularized least squares,
//
//	minimize ‖G·α − F‖₂² + µ·‖α‖₂²,
//
// through the dual (kernel) form α = Gᵀ·(G·Gᵀ + µI)⁻¹·F, which factors a
// K×K system instead of M×M and therefore works on underdetermined problems
// (K < M) at any dictionary size. Ridge is the classical dense-shrinkage
// baseline: unlike the L0/L1 solvers it keeps *every* coefficient non-zero,
// which is exactly why it cannot exploit the paper's sparsity — it exists
// here to quantify that gap.
type Ridge struct {
	// Mu is the regularization strength (> 0).
	Mu float64
}

// Name identifies the solver in reports.
func (r *Ridge) Name() string { return "Ridge" }

// Fit solves the ridge problem. The returned model has full support, so use
// it only at moderate M.
func (r *Ridge) Fit(d basis.Design, f []float64, _ int) (*Model, error) {
	if err := checkProblem(d, f, 1); err != nil {
		return nil, err
	}
	if r.Mu <= 0 {
		return nil, fmt.Errorf("core: ridge needs µ > 0, got %g", r.Mu)
	}
	k, m := d.Rows(), d.Cols()
	// Build the K×K kernel matrix G·Gᵀ by accumulating column outer
	// products: G·Gᵀ = Σ_m G_m·G_mᵀ.
	kern := linalg.NewMatrix(k, k)
	col := make([]float64, k)
	for j := 0; j < m; j++ {
		d.Column(col, j)
		for a := 0; a < k; a++ {
			va := col[a]
			if va == 0 {
				continue
			}
			row := kern.Row(a)
			for b := 0; b < k; b++ {
				row[b] += va * col[b]
			}
		}
	}
	for i := 0; i < k; i++ {
		kern.Set(i, i, kern.At(i, i)+r.Mu)
	}
	// LU rather than Cholesky: for K > M the kernel is µI plus a rank-M
	// matrix, and at small µ the strict positive-definiteness test would
	// reject a system that partial-pivoted elimination solves fine.
	w, err := linalg.SolveSquare(kern, f)
	if err != nil {
		return nil, fmt.Errorf("core: ridge kernel solve: %w", err)
	}
	// α = Gᵀ·w.
	alpha := d.MulTransVec(nil, w)
	support := make([]int, m)
	for i := range support {
		support[i] = i
	}
	return &Model{M: m, Support: support, Coef: alpha}, nil
}
