package core

import (
	"fmt"

	"repro/internal/basis"
	"repro/internal/linalg"
)

// LS is the classical least-squares response surface fit [21]: it solves the
// over-determined system G·α = F (eq. 6) for every coefficient at once and
// therefore requires at least as many sampling points as basis functions
// (K ≥ M). It is the baseline all sparse solvers are compared against in
// Section V.
type LS struct{}

// Name identifies the solver in reports.
func (LS) Name() string { return "LS" }

// Fit solves the full least-squares problem. The returned model has every
// basis function in its support.
func (LS) Fit(d basis.Design, f []float64, _ int) (*Model, error) {
	if err := checkProblem(d, f, 1); err != nil {
		return nil, err
	}
	k, m := d.Rows(), d.Cols()
	if k < m {
		return nil, fmt.Errorf("core: LS needs K ≥ M, got K=%d, M=%d (use a sparse solver for underdetermined systems)", k, m)
	}
	var g *linalg.Matrix
	if dd, ok := d.(*basis.DenseDesign); ok {
		g = dd.Matrix()
	} else {
		g = linalg.NewMatrix(k, m)
		col := make([]float64, k)
		for j := 0; j < m; j++ {
			d.Column(col, j)
			g.SetCol(j, col)
		}
	}
	coef, err := linalg.SolveLeastSquares(g, f)
	if err != nil {
		return nil, fmt.Errorf("core: LS fit: %w", err)
	}
	support := make([]int, m)
	for i := range support {
		support[i] = i
	}
	return &Model{M: m, Support: support, Coef: coef}, nil
}
