package core

import (
	"math"
	"testing"

	"repro/internal/basis"
	"repro/internal/rng"
)

// randomModelAndPoints builds a quadratic-basis model with nnz random
// support terms and n standard-normal points.
func randomModelAndPoints(dim, nnz, n int, seed int64) (*Model, *basis.Basis, [][]float64) {
	b := basis.Quadratic(dim)
	src := rng.New(seed)
	support := src.Perm(b.Size())[:nnz]
	coef := make([]float64, nnz)
	for i := range coef {
		coef[i] = src.Norm()
	}
	m := &Model{M: b.Size(), Support: support, Coef: coef}
	points := make([][]float64, n)
	for k := range points {
		points[k] = src.NormVec(nil, dim)
	}
	return m, b, points
}

func TestPredictBatchMatchesPredictPoint(t *testing.T) {
	m, b, points := randomModelAndPoints(8, 12, 257, 7)
	for _, workers := range []int{0, 1, 3, 16} {
		got := m.PredictBatch(b, nil, points, workers)
		if len(got) != len(points) {
			t.Fatalf("workers=%d: %d values for %d points", workers, len(got), len(points))
		}
		for k, y := range points {
			want := m.PredictPoint(b, y)
			if math.Abs(got[k]-want) > 1e-12*math.Max(1, math.Abs(want)) {
				t.Fatalf("workers=%d point %d: %g, want %g", workers, k, got[k], want)
			}
		}
	}
}

func TestPredictBatchEmptyAndDst(t *testing.T) {
	m, b, points := randomModelAndPoints(4, 3, 10, 1)
	if got := m.PredictBatch(b, nil, nil, 4); len(got) != 0 {
		t.Fatalf("empty batch returned %d values", len(got))
	}
	dst := make([]float64, len(points))
	out := m.PredictBatch(b, dst, points, 2)
	if &out[0] != &dst[0] {
		t.Fatal("PredictBatch did not reuse dst")
	}
}

func TestSolverByName(t *testing.T) {
	for _, name := range []string{"omp", "LAR", "lasso", "star", "cd", "stomp"} {
		s, err := SolverByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		} else if s.Name() == "" {
			t.Errorf("%s: empty solver name", name)
		}
	}
	if _, err := SolverByName("newton"); err == nil {
		t.Error("expected error for unknown solver")
	}
}
