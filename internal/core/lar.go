package core

import (
	"fmt"
	"math"

	"repro/internal/basis"
	"repro/internal/linalg"
)

// LAR is the least angle regression solver of the DAC'09 paper [2] (Efron,
// Hastie, Johnstone & Tibshirani [16]). It relaxes the L0 constraint of
// eq. (11) into an L1 penalty and walks the piecewise-linear solution path:
// at each breakpoint the coefficient vector moves along the equiangular
// direction of the active basis vectors until an inactive vector reaches the
// same absolute correlation with the residual.
//
// Columns are normalized to unit Euclidean norm internally (the basis
// functions are orthonormal in expectation, but their Monte Carlo basis
// vectors are not), and coefficients are rescaled back on output. The
// normalization, correlation sweeps, Gram factor and drop/refactorization all
// come from the shared engine (ActiveSet with cfg.normalize); this file keeps
// LAR's own step rule — the equiangular direction, the breakpoint step γ and
// the lasso sign-crossing drop.
type LAR struct {
	// Lasso enables the lasso modification: a coefficient whose sign would
	// flip is removed from the active set at the crossing point, yielding
	// the exact L1-penalized path rather than plain LARS.
	Lasso bool
	// Refit re-solves an unpenalized least-squares fit on each model's
	// support, removing the L1 shrinkage from the reported coefficients.
	Refit bool
	// Tol stops the path early once the relative residual falls below it.
	Tol float64
}

// Name implements PathFitter.
func (l *LAR) Name() string { return "LAR" }

// Fit runs LAR until lambda basis functions are active.
func (l *LAR) Fit(d basis.Design, f []float64, lambda int) (*Model, error) {
	path, err := l.FitPath(d, f, lambda)
	if err != nil {
		return nil, err
	}
	return path.Models[len(path.Models)-1], nil
}

// FitPath implements PathFitter.
func (l *LAR) FitPath(d basis.Design, f []float64, maxLambda int) (*Path, error) {
	return l.FitPathCtx(nil, d, f, maxLambda)
}

// FitPathCtx implements ContextFitter: the path walk polls fc at every
// breakpoint so cancellation stops the fit promptly.
func (l *LAR) FitPathCtx(fc *FitContext, d basis.Design, f []float64, maxLambda int) (*Path, error) {
	as, err := newActiveSet(fc, d, f, maxLambda, activeSetConfig{
		solver: "LAR", clampRows: true, normalize: true, gram: true,
	})
	if err != nil {
		return nil, err
	}
	beta := make([]float64, as.m) // coefficients in normalized-column space
	a := make([]float64, as.m)    // G_jᵀ·u sweep scratch
	u := make([]float64, as.k)    // unit equiangular vector
	path := &Path{}

	record := func(sel int) {
		coef := make([]float64, as.Size())
		for i, idx := range as.support {
			coef[i] = beta[idx] / as.norms[idx] // undo normalization
		}
		if l.Refit {
			if refit, err := refitOnSupport(d, f, as.support); err == nil {
				coef = refit
			}
		}
		as.Record(path, coef, sel)
	}

	// Continuation: beta lives in normalized-column space, so a checkpoint
	// stores it gathered over the support and resume scatters it back. LAR
	// rejects appended samples (restore: normalization makes every column —
	// and so the whole path geometry — dependent on the sample set) and
	// ignores warm starts for the same reason.
	if ck, err := fc.resumeFor("LAR"); err != nil {
		return nil, err
	} else if ck != nil {
		if err := as.restore(ck, path); err != nil {
			return nil, err
		}
		for i, idx := range ck.Support {
			beta[idx] = ck.Beta[i]
		}
	}
	capture := func(ck *FitCheckpoint) {
		ck.Beta = make([]float64, len(as.support))
		for i, idx := range as.support {
			ck.Beta[i] = beta[idx]
		}
	}

	const eps = 1e-12
	for as.Size() < as.MaxLambda() {
		if err := as.Err(); err != nil {
			return nil, err
		}
		// Correlations with the current residual (normalized columns).
		c, err := as.CorrelateResidual()
		if err != nil {
			return nil, err
		}
		// Highest correlation among inactive, admissible columns.
		sel := as.SelectMostCorrelated(c)
		if sel == -1 {
			break // dictionary exhausted or residual uncorrelated
		}
		selAbs := math.Abs(c[sel])
		// Append the new column to the active factorization; a dependent
		// column is excluded by TryAppend and the breakpoint re-runs.
		ok, err := as.TryAppend(sel)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}

		// Equiangular direction: solve (G_AᵀG_A)·v = s_A.
		signs := make([]float64, as.Size())
		for i, idx := range as.support {
			if c[idx] >= 0 {
				signs[i] = 1
			} else {
				signs[i] = -1
			}
		}
		v, err := as.SolveGram(signs)
		if err != nil {
			return nil, fmt.Errorf("core: LAR equiangular solve: %w", err)
		}
		sv := linalg.Dot(signs, v)
		if sv <= 0 {
			return nil, errDegenerate("LAR", "equiangular normalization failed (rank-deficient active set)")
		}
		aa := 1 / math.Sqrt(sv) // A_A in Efron et al. notation
		// u = A_A · G_A · v (unit equiangular vector).
		for i := range u {
			u[i] = 0
		}
		for i, col := range as.cols {
			linalg.Axpy(aa*v[i], col, u)
		}
		// a_j = G_jᵀ·u for every j (normalized).
		if _, err := as.Correlate(a, u); err != nil {
			return nil, err
		}

		// C = current common absolute correlation of the active set.
		bigC := selAbs
		gammaMax := bigC / aa // distance to the full least-squares point
		gamma := gammaMax
		for j := range c {
			if as.active[j] || as.excluded[j] {
				continue
			}
			if g := (bigC - c[j]) / (aa - a[j]); g > eps && g < gamma {
				gamma = g
			}
			if g := (bigC + c[j]) / (aa + a[j]); g > eps && g < gamma {
				gamma = g
			}
		}

		// Lasso modification: stop at the first sign crossing and drop that
		// variable (Efron et al., Section 3.1).
		dropIdx := -1
		if l.Lasso {
			for i, idx := range as.support {
				step := aa * v[i] // Δβ_idx per unit γ
				if step == 0 {
					continue
				}
				if g := -beta[idx] / step; g > eps && g < gamma {
					gamma = g
					dropIdx = i
				}
			}
		}

		// Advance the path: β_A += γ·A_A·v, residual −= γ·u.
		for i, idx := range as.support {
			beta[idx] += gamma * aa * v[i]
		}
		linalg.Axpy(-gamma, u, as.res)

		if dropIdx >= 0 {
			beta[as.support[dropIdx]] = 0
			if err := as.Drop(dropIdx); err != nil {
				return nil, err
			}
			continue // a drop does not produce a new path model
		}

		record(sel)
		if checkpointAfter(fc, as, path, capture) {
			return path, nil
		}
		if as.BelowTol(l.Tol) {
			break
		}
	}
	if len(path.Models) == 0 {
		return nil, as.errDegenerateNoSelection()
	}
	captureCheckpoint(fc, as, path, capture)
	return path, nil
}

// refitOnSupport solves the unpenalized least-squares problem restricted to
// the given support columns.
func refitOnSupport(d basis.Design, f []float64, support []int) ([]float64, error) {
	k := d.Rows()
	g := linalg.NewMatrix(k, len(support))
	col := make([]float64, k)
	for i, idx := range support {
		d.Column(col, idx)
		g.SetCol(i, col)
	}
	return linalg.SolveLeastSquares(g, f)
}

var _ ContextFitter = (*LAR)(nil)
