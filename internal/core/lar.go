package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/basis"
	"repro/internal/linalg"
)

// LAR is the least angle regression solver of the DAC'09 paper [2] (Efron,
// Hastie, Johnstone & Tibshirani [16]). It relaxes the L0 constraint of
// eq. (11) into an L1 penalty and walks the piecewise-linear solution path:
// at each breakpoint the coefficient vector moves along the equiangular
// direction of the active basis vectors until an inactive vector reaches the
// same absolute correlation with the residual.
//
// Columns are normalized to unit Euclidean norm internally (the basis
// functions are orthonormal in expectation, but their Monte Carlo basis
// vectors are not), and coefficients are rescaled back on output.
type LAR struct {
	// Lasso enables the lasso modification: a coefficient whose sign would
	// flip is removed from the active set at the crossing point, yielding
	// the exact L1-penalized path rather than plain LARS.
	Lasso bool
	// Refit re-solves an unpenalized least-squares fit on each model's
	// support, removing the L1 shrinkage from the reported coefficients.
	Refit bool
	// Tol stops the path early once the relative residual falls below it.
	Tol float64
}

// Name implements PathFitter.
func (l *LAR) Name() string { return "LAR" }

// Fit runs LAR until lambda basis functions are active.
func (l *LAR) Fit(d basis.Design, f []float64, lambda int) (*Model, error) {
	path, err := l.FitPath(d, f, lambda)
	if err != nil {
		return nil, err
	}
	return path.Models[len(path.Models)-1], nil
}

// larState carries the active set of the path walk.
type larState struct {
	support []int       // active basis indices, in entry order
	cols    [][]float64 // normalized active columns
	chol    *linalg.Cholesky
}

// rebuild refactorizes the active Gram matrix from scratch (used after a
// lasso drop, which removes a column from the middle of the factor).
func (st *larState) rebuild() error {
	st.chol = linalg.NewCholesky()
	for i, c := range st.cols {
		cross := make([]float64, i)
		for j := 0; j < i; j++ {
			cross[j] = linalg.Dot(st.cols[j], c)
		}
		if err := st.chol.Append(cross, linalg.Dot(c, c)); err != nil {
			return err
		}
	}
	return nil
}

// FitPath implements PathFitter.
func (l *LAR) FitPath(d basis.Design, f []float64, maxLambda int) (*Path, error) {
	return l.FitPathCtx(nil, d, f, maxLambda)
}

// FitPathCtx implements ContextFitter: the path walk polls fc at every
// breakpoint so cancellation stops the fit promptly.
func (l *LAR) FitPathCtx(fc *FitContext, d basis.Design, f []float64, maxLambda int) (*Path, error) {
	if err := checkProblem(d, f, maxLambda); err != nil {
		return nil, err
	}
	k, m := d.Rows(), d.Cols()
	if maxLambda > m {
		maxLambda = m
	}
	if maxLambda > k {
		maxLambda = k
	}

	// Column norms for internal normalization; zero-norm columns can never
	// be selected. One row-streaming pass — a per-column loop would cost M
	// full column materializations, which is prohibitive on lazy/generated
	// designs.
	norms := basis.SquaredColumnNorms(d, nil)
	colBuf := make([]float64, k)
	excluded := make([]bool, m)
	for j, n := range norms {
		if n <= 0 {
			excluded[j] = true
			norms[j] = 1 // avoid division by zero; column is excluded anyway
		} else {
			norms[j] = math.Sqrt(n)
		}
	}

	fNorm := linalg.Norm2(f)
	res := linalg.Clone(f)
	beta := make([]float64, m) // coefficients in normalized-column space
	active := make([]bool, m)
	st := &larState{chol: linalg.NewCholesky()}
	c := make([]float64, m)
	a := make([]float64, m)
	path := &Path{}

	record := func() {
		support := append([]int(nil), st.support...)
		coef := make([]float64, len(support))
		for i, idx := range support {
			coef[i] = beta[idx] / norms[idx] // undo normalization
		}
		model := &Model{M: m, Support: support, Coef: coef}
		if l.Refit {
			if refit, err := refitOnSupport(d, f, support); err == nil {
				model.Coef = refit
			}
		}
		path.Models = append(path.Models, model)
		path.Residual = append(path.Residual, linalg.Norm2(res))
	}

	const eps = 1e-12
	for len(st.support) < maxLambda {
		if err := fc.Err(); err != nil {
			return nil, fmt.Errorf("core: LAR fit stopped: %w", err)
		}
		// Correlations with the current residual (normalized columns).
		d.MulTransVec(c, res)
		for j := range c {
			c[j] /= norms[j]
		}
		if len(st.support) == 0 {
			// Res == F on the first breakpoint: a NaN/Inf design or response
			// entry shows up here, before it can corrupt the path state.
			if err := checkFiniteVec("design correlation", c); err != nil {
				return nil, err
			}
		}
		// Highest correlation among inactive, admissible columns.
		sel := -1
		selAbs := 0.0
		for j := range c {
			if active[j] || excluded[j] {
				continue
			}
			if abs := math.Abs(c[j]); sel == -1 || abs > selAbs {
				sel, selAbs = j, abs
			}
		}
		if sel == -1 || selAbs <= eps*(1+fNorm) {
			break // dictionary exhausted or residual uncorrelated
		}
		// Append the new column to the active factorization.
		d.Column(colBuf, sel)
		newCol := make([]float64, k)
		for i := range colBuf {
			newCol[i] = colBuf[i] / norms[sel]
		}
		cross := make([]float64, len(st.cols))
		for i, col := range st.cols {
			cross[i] = linalg.Dot(col, newCol)
		}
		if err := st.chol.Append(cross, linalg.Dot(newCol, newCol)); err != nil {
			if errors.Is(err, linalg.ErrNotPositiveDefinite) {
				excluded[sel] = true
				continue
			}
			return nil, fmt.Errorf("core: LAR Gram update: %w", err)
		}
		st.support = append(st.support, sel)
		st.cols = append(st.cols, newCol)
		active[sel] = true

		// Equiangular direction: solve (G_AᵀG_A)·v = s_A.
		signs := make([]float64, len(st.support))
		for i, idx := range st.support {
			if c[idx] >= 0 {
				signs[i] = 1
			} else {
				signs[i] = -1
			}
		}
		v, err := st.chol.Solve(signs)
		if err != nil {
			return nil, fmt.Errorf("core: LAR equiangular solve: %w", err)
		}
		sv := linalg.Dot(signs, v)
		if sv <= 0 {
			return nil, errDegenerate("LAR", "equiangular normalization failed (rank-deficient active set)")
		}
		aa := 1 / math.Sqrt(sv) // A_A in Efron et al. notation
		// u = A_A · G_A · v (unit equiangular vector).
		u := make([]float64, k)
		for i, col := range st.cols {
			linalg.Axpy(aa*v[i], col, u)
		}
		// a_j = G_jᵀ·u for every j (normalized).
		d.MulTransVec(a, u)
		for j := range a {
			a[j] /= norms[j]
		}

		// C = current common absolute correlation of the active set.
		bigC := selAbs
		gammaMax := bigC / aa // distance to the full least-squares point
		gamma := gammaMax
		for j := range c {
			if active[j] || excluded[j] {
				continue
			}
			if g := (bigC - c[j]) / (aa - a[j]); g > eps && g < gamma {
				gamma = g
			}
			if g := (bigC + c[j]) / (aa + a[j]); g > eps && g < gamma {
				gamma = g
			}
		}

		// Lasso modification: stop at the first sign crossing and drop that
		// variable (Efron et al., Section 3.1).
		dropIdx := -1
		if l.Lasso {
			for i, idx := range st.support {
				step := aa * v[i] // Δβ_idx per unit γ
				if step == 0 {
					continue
				}
				if g := -beta[idx] / step; g > eps && g < gamma {
					gamma = g
					dropIdx = i
				}
			}
		}

		// Advance the path: β_A += γ·A_A·v, residual −= γ·u.
		for i, idx := range st.support {
			beta[idx] += gamma * aa * v[i]
		}
		linalg.Axpy(-gamma, u, res)

		if dropIdx >= 0 {
			idx := st.support[dropIdx]
			beta[idx] = 0
			active[idx] = false
			st.support = append(st.support[:dropIdx], st.support[dropIdx+1:]...)
			st.cols = append(st.cols[:dropIdx], st.cols[dropIdx+1:]...)
			if err := st.rebuild(); err != nil {
				return nil, fmt.Errorf("core: LAR refactorization after drop: %w", err)
			}
			continue // a drop does not produce a new path model
		}

		record()
		fc.Observe(sel, len(st.support), path.Residual[len(path.Residual)-1])
		if l.Tol > 0 && fNorm > 0 && linalg.Norm2(res) <= l.Tol*fNorm {
			break
		}
	}
	if len(path.Models) == 0 {
		return nil, errDegenerate("LAR", "could not select any basis vector")
	}
	return path, nil
}

// refitOnSupport solves the unpenalized least-squares problem restricted to
// the given support columns.
func refitOnSupport(d basis.Design, f []float64, support []int) ([]float64, error) {
	k := d.Rows()
	g := linalg.NewMatrix(k, len(support))
	col := make([]float64, k)
	for i, idx := range support {
		d.Column(col, idx)
		g.SetCol(i, col)
	}
	return linalg.SolveLeastSquares(g, f)
}

var _ ContextFitter = (*LAR)(nil)
