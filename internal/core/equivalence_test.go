package core

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/basis"
)

// The solver-equivalence suite pins every solver's exact path behavior on
// seeded synthetic problems: the fixtures in testdata/solver_golden.json were
// captured from the pre-engine implementations (PR 3 state), so any refactor
// of the shared active-set machinery must reproduce the identical supports
// (bit-for-bit, including selection order) and coefficients within 1e-10.
//
// Regenerate with:
//
//	go test ./internal/core/ -run TestSolverEquivalence -update-golden
//
// but only when a behavior change is intended and understood.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/solver_golden.json from the current solvers")

const goldenPath = "testdata/solver_golden.json"

// goldenStep is one recorded path step: the active support in selection
// order and the aligned coefficients.
type goldenStep struct {
	Support  []int     `json:"support"`
	Coef     []float64 `json:"coef"`
	Residual float64   `json:"residual"`
}

type goldenFixture struct {
	Problem string       `json:"problem"`
	Solver  string       `json:"solver"`
	Steps   []goldenStep `json:"steps"`
}

// equivalenceProblem is one seeded synthetic regression problem.
type equivalenceProblem struct {
	d basis.Design
	f []float64
}

// equivalenceProblems are the seeded synthetic problems the suite runs. The
// shapes cover the regimes that exercise different engine paths: noiseless
// exact recovery, noisy underdetermined selection, and a quadratic dictionary
// with correlated columns.
func equivalenceProblems() map[string]equivalenceProblem {
	out := make(map[string]equivalenceProblem)
	_, d1, f1, _ := synthProblem(201, 60, 90, false, []int{3, 17, 42, 51}, []float64{2, -1.5, 0.8, 3.2}, 0)
	out["linear-noiseless"] = equivalenceProblem{d1, f1}
	_, d2, f2, _ := synthProblem(202, 80, 70, false, []int{5, 19, 33, 60, 71}, []float64{1.2, -2, 0.5, 0.9, -1.4}, 0.05)
	out["linear-noisy"] = equivalenceProblem{d2, f2}
	_, d3, f3, _ := synthProblem(203, 10, 60, true, []int{2, 7, 23, 40}, []float64{1.5, -0.75, 2.2, 0.6}, 0.02)
	out["quad-noisy"] = equivalenceProblem{d3, f3}
	return out
}

// equivalenceSolvers returns the solver set under golden pinning, in a fixed
// order so regenerated fixtures diff cleanly.
func equivalenceSolvers() []PathFitter {
	return []PathFitter{
		&OMP{},
		&STAR{},
		&LAR{},
		&LAR{Lasso: true, Refit: true},
		&StOMP{},
		&CD{Refit: true},
	}
}

func solverLabel(f PathFitter) string {
	if l, ok := f.(*LAR); ok && l.Lasso {
		return "LASSO"
	}
	return f.Name()
}

const equivalenceMaxLambda = 8

// runEquivalenceFixtures fits every (problem, solver) pair and returns the
// recorded paths.
func runEquivalenceFixtures(t *testing.T) []goldenFixture {
	t.Helper()
	problems := equivalenceProblems()
	names := []string{"linear-noiseless", "linear-noisy", "quad-noisy"}
	var out []goldenFixture
	for _, pname := range names {
		p := problems[pname]
		for _, fitter := range equivalenceSolvers() {
			path, err := fitter.FitPath(p.d, p.f, equivalenceMaxLambda)
			if err != nil {
				t.Fatalf("%s on %s: %v", solverLabel(fitter), pname, err)
			}
			fx := goldenFixture{Problem: pname, Solver: solverLabel(fitter)}
			for i, m := range path.Models {
				fx.Steps = append(fx.Steps, goldenStep{
					Support:  append([]int(nil), m.Support...),
					Coef:     append([]float64(nil), m.Coef...),
					Residual: path.Residual[i],
				})
			}
			out = append(out, fx)
		}
	}
	return out
}

func TestSolverEquivalenceGolden(t *testing.T) {
	got := runEquivalenceFixtures(t)

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d fixtures", goldenPath, len(got))
		return
	}

	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixtures (run with -update-golden to create): %v", err)
	}
	var want []goldenFixture
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("fixture count changed: got %d, want %d", len(got), len(want))
	}
	const tol = 1e-10
	for i, wf := range want {
		gf := got[i]
		label := wf.Solver + "/" + wf.Problem
		if gf.Solver != wf.Solver || gf.Problem != wf.Problem {
			t.Fatalf("fixture %d is %s/%s, want %s", i, gf.Solver, gf.Problem, label)
		}
		if len(gf.Steps) != len(wf.Steps) {
			t.Errorf("%s: path length %d, want %d", label, len(gf.Steps), len(wf.Steps))
			continue
		}
		for s, ws := range wf.Steps {
			gs := gf.Steps[s]
			if len(gs.Support) != len(ws.Support) {
				t.Errorf("%s step %d: support size %d, want %d", label, s, len(gs.Support), len(ws.Support))
				continue
			}
			for j := range ws.Support {
				if gs.Support[j] != ws.Support[j] {
					t.Errorf("%s step %d: support[%d] = %d, want %d (selection order must be identical)",
						label, s, j, gs.Support[j], ws.Support[j])
				}
				if math.Abs(gs.Coef[j]-ws.Coef[j]) > tol {
					t.Errorf("%s step %d: coef[%d] = %.17g, want %.17g (Δ=%g)",
						label, s, j, gs.Coef[j], ws.Coef[j], math.Abs(gs.Coef[j]-ws.Coef[j]))
				}
			}
			if math.Abs(gs.Residual-ws.Residual) > tol*(1+ws.Residual) {
				t.Errorf("%s step %d: residual %.17g, want %.17g", label, s, gs.Residual, ws.Residual)
			}
		}
	}
}
