package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// CheckpointVersion is the current serialized fit-checkpoint format version.
const CheckpointVersion = 1

// FitCheckpoint is the engine's fit state as a first-class serializable
// artifact: everything a solver needs to continue a path fit exactly where
// it stopped — the selected support in admission order, the packed Cholesky
// factor of the active Gram matrix, the residual, the Gᵀ_Ω·F right-hand
// side, the recorded path prefix, and the per-solver continuation extras
// (LAR's normalized-space coefficients, STAR's running stack, StOMP's stage
// counter, CD's sparse α and grid position).
//
// Two consumption modes exist. *Exact resume* (WithResumeCheckpoint) on the
// same K samples reproduces the uninterrupted fit bit-for-bit: float64
// values survive JSON round-trips exactly (Go emits the shortest uniquely
// decodable representation), materialized columns are re-derived from the
// design deterministically, and the factor round-trips through its packed
// triangle. Resume on a *grown* sample set (rows [0,K) unchanged, new rows
// appended) is supported by the Gram-maintaining solvers, which fold each
// new row into the factor as a rank-one update instead of refactorizing.
// For data that changed in any other way the checkpoint is invalid; use
// warm-start replay (WithWarmStart) instead.
type FitCheckpoint struct {
	// Version is the checkpoint format version (CheckpointVersion).
	Version int `json:"version"`
	// Solver names the path fitter that produced the state; resume under a
	// different solver is rejected.
	Solver string `json:"solver"`
	// K and M are the sample count and dictionary size of the fit.
	K int `json:"k"`
	M int `json:"m"`
	// MaxLambda is the (pre-clamp) sparsity budget of the interrupted fit.
	MaxLambda int `json:"max_lambda"`
	// Support is the active set in admission order.
	Support []int `json:"support"`
	// Excluded lists columns ruled out as degenerate (zero-norm or linearly
	// dependent on the active set).
	Excluded []int `json:"excluded,omitempty"`
	// Residual is res = F − G_Ω·α at the checkpoint (length K).
	Residual []float64 `json:"residual"`
	// GTF is Gᵀ_Ω·F aligned with Support (Gram solvers only).
	GTF []float64 `json:"gtf,omitempty"`
	// CholL is the packed lower triangle of the active Gram factor
	// (len(Support)·(len(Support)+1)/2 entries, Gram solvers only).
	CholL []float64 `json:"chol_l,omitempty"`
	// Models and ResNorms are the recorded path prefix: the models emitted
	// before the checkpoint and their residual norms.
	Models   []*Model  `json:"models,omitempty"`
	ResNorms []float64 `json:"res_norms,omitempty"`

	// Beta is LAR's coefficient vector in normalized-column space, aligned
	// with Support.
	Beta []float64 `json:"beta,omitempty"`
	// Coef is STAR's running coefficient stack, aligned with Support.
	Coef []float64 `json:"coef,omitempty"`
	// Stage is StOMP's completed-stage counter.
	Stage int `json:"stage,omitempty"`
	// AlphaIdx/AlphaVal are CD's sparse coefficient vector.
	AlphaIdx []int     `json:"alpha_idx,omitempty"`
	AlphaVal []float64 `json:"alpha_val,omitempty"`
	// Mu is CD's penalty-grid position at the checkpoint; LastNNZ its
	// last recorded sparsity level.
	Mu      float64 `json:"mu,omitempty"`
	LastNNZ int     `json:"last_nnz,omitempty"`
}

// Validate checks the checkpoint's internal consistency so that corrupt
// bytes surface as errors at load time, never as panics or NaN fits inside
// a solver. It is deliberately exhaustive: every slice length and index the
// resume path will touch is checked here.
func (ck *FitCheckpoint) Validate() error {
	if ck.Version <= 0 || ck.Version > CheckpointVersion {
		return fmt.Errorf("core: checkpoint version %d unsupported (max %d)", ck.Version, CheckpointVersion)
	}
	if ck.Solver == "" {
		return fmt.Errorf("core: checkpoint names no solver")
	}
	if ck.K <= 0 || ck.M <= 0 {
		return fmt.Errorf("core: checkpoint K=%d M=%d invalid", ck.K, ck.M)
	}
	if ck.MaxLambda < 1 {
		return fmt.Errorf("core: checkpoint maxLambda %d invalid", ck.MaxLambda)
	}
	if len(ck.Residual) != ck.K {
		return fmt.Errorf("core: checkpoint residual has %d entries, want K=%d", len(ck.Residual), ck.K)
	}
	if err := checkFiniteVec("checkpoint residual", ck.Residual); err != nil {
		return err
	}
	seen := make(map[int]bool, len(ck.Support))
	for _, j := range ck.Support {
		if j < 0 || j >= ck.M {
			return fmt.Errorf("core: checkpoint support index %d outside [0, %d)", j, ck.M)
		}
		if seen[j] {
			return fmt.Errorf("core: checkpoint duplicate support index %d", j)
		}
		seen[j] = true
	}
	for _, j := range ck.Excluded {
		if j < 0 || j >= ck.M {
			return fmt.Errorf("core: checkpoint excluded index %d outside [0, %d)", j, ck.M)
		}
	}
	n := len(ck.Support)
	if ck.GTF != nil && len(ck.GTF) != n {
		return fmt.Errorf("core: checkpoint gtf has %d entries, want %d", len(ck.GTF), n)
	}
	if ck.CholL != nil {
		if len(ck.CholL) != n*(n+1)/2 {
			return fmt.Errorf("core: checkpoint factor has %d entries, want %d for support %d", len(ck.CholL), n*(n+1)/2, n)
		}
		if err := checkFiniteVec("checkpoint factor", ck.CholL); err != nil {
			return err
		}
	}
	if len(ck.ResNorms) != len(ck.Models) {
		return fmt.Errorf("core: checkpoint has %d residual norms for %d models", len(ck.ResNorms), len(ck.Models))
	}
	for i, m := range ck.Models {
		if m == nil {
			return fmt.Errorf("core: checkpoint model %d is null", i)
		}
		if err := validateModel(m); err != nil {
			return fmt.Errorf("core: checkpoint model %d: %w", i, err)
		}
		if m.M != ck.M {
			return fmt.Errorf("core: checkpoint model %d dictionary %d, want %d", i, m.M, ck.M)
		}
		// Recorded models are not bounded by len(Support): CD tracks its
		// active columns in AlphaIdx instead. Support-nesting, where resume
		// relies on it, is checked by prefixModels at restore time.
	}
	if ck.Beta != nil && len(ck.Beta) != n {
		return fmt.Errorf("core: checkpoint beta has %d entries, want %d", len(ck.Beta), n)
	}
	if ck.Coef != nil && len(ck.Coef) != n {
		return fmt.Errorf("core: checkpoint coef has %d entries, want %d", len(ck.Coef), n)
	}
	if ck.Stage < 0 {
		return fmt.Errorf("core: checkpoint stage %d negative", ck.Stage)
	}
	if len(ck.AlphaIdx) != len(ck.AlphaVal) {
		return fmt.Errorf("core: checkpoint alpha has %d indices for %d values", len(ck.AlphaIdx), len(ck.AlphaVal))
	}
	aseen := make(map[int]bool, len(ck.AlphaIdx))
	for i, j := range ck.AlphaIdx {
		if j < 0 || j >= ck.M {
			return fmt.Errorf("core: checkpoint alpha index %d outside [0, %d)", j, ck.M)
		}
		if aseen[j] {
			return fmt.Errorf("core: checkpoint duplicate alpha index %d", j)
		}
		aseen[j] = true
		if v := ck.AlphaVal[i]; math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: checkpoint alpha value %d is %v: %w", i, v, ErrNonFinite)
		}
	}
	if math.IsNaN(ck.Mu) || math.IsInf(ck.Mu, 0) || ck.Mu < 0 {
		return fmt.Errorf("core: checkpoint grid penalty %v invalid", ck.Mu)
	}
	if ck.LastNNZ < 0 || ck.LastNNZ > ck.M {
		return fmt.Errorf("core: checkpoint last-nnz %d outside [0, %d]", ck.LastNNZ, ck.M)
	}
	for _, v := range ck.GTF {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: checkpoint gtf entry is %v: %w", v, ErrNonFinite)
		}
	}
	for _, v := range ck.Beta {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: checkpoint beta entry is %v: %w", v, ErrNonFinite)
		}
	}
	for _, v := range ck.Coef {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: checkpoint coef entry is %v: %w", v, ErrNonFinite)
		}
	}
	return nil
}

// prefixModels reports whether every recorded model's support is a prefix
// of the checkpoint support — the invariant of strictly-growing solvers
// (OMP, StOMP, STAR, LAR without drops) that row-append resume relies on
// to refresh prefix coefficients through the leading Gram factor.
func (ck *FitCheckpoint) prefixModels() bool {
	for _, m := range ck.Models {
		if len(m.Support) > len(ck.Support) {
			return false
		}
		for i, idx := range m.Support {
			if ck.Support[i] != idx {
				return false
			}
		}
	}
	return true
}

// WriteCheckpoint serializes the checkpoint in the current versioned
// format, validating first so unwritable state never reaches disk.
func WriteCheckpoint(w io.Writer, ck *FitCheckpoint) error {
	if ck == nil {
		return fmt.Errorf("core: nil checkpoint")
	}
	if err := ck.Validate(); err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(ck)
}

// ReadCheckpoint parses and validates a serialized fit checkpoint. Corrupt
// or truncated input returns an error, never a panic — the registry
// quarantines such files, and FuzzReadCheckpoint pins the contract.
func ReadCheckpoint(r io.Reader) (*FitCheckpoint, error) {
	var ck FitCheckpoint
	if err := json.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("core: decode checkpoint: %w", err)
	}
	if err := ck.Validate(); err != nil {
		return nil, err
	}
	return &ck, nil
}
