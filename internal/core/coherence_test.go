package core

import (
	"math"
	"testing"

	"repro/internal/basis"
	"repro/internal/linalg"
)

func TestCoherenceOrthogonalColumns(t *testing.T) {
	g := linalg.NewMatrixFrom([][]float64{
		{1, 0, 0},
		{0, 1, 0},
		{0, 0, 1},
	})
	if c := Coherence(basis.DenseDesignFromMatrix(g)); c != 0 {
		t.Errorf("coherence of orthogonal columns = %g, want 0", c)
	}
}

func TestCoherenceDuplicateColumns(t *testing.T) {
	g := linalg.NewMatrixFrom([][]float64{
		{1, 2, 0.3},
		{2, 4, -0.1},
		{3, 6, 0.5},
	})
	if c := Coherence(basis.DenseDesignFromMatrix(g)); math.Abs(c-1) > 1e-12 {
		t.Errorf("coherence with duplicated column = %g, want 1", c)
	}
}

func TestCoherenceKnownAngle(t *testing.T) {
	// Two unit columns at 60°: coherence = cos 60° = 0.5.
	g := linalg.NewMatrixFrom([][]float64{
		{1, 0.5},
		{0, math.Sqrt(3) / 2},
	})
	if c := Coherence(basis.DenseDesignFromMatrix(g)); math.Abs(c-0.5) > 1e-12 {
		t.Errorf("coherence = %g, want 0.5", c)
	}
}

func TestCoherenceDecreasesWithSamples(t *testing.T) {
	// More Monte Carlo samples → basis vectors closer to orthogonal →
	// lower coherence. This is why K = O(P·log M) works (Section IV-B).
	_, dSmall, _, _ := synthProblem(100, 30, 40, false, []int{0}, []float64{1}, 0)
	_, dLarge, _, _ := synthProblem(100, 30, 640, false, []int{0}, []float64{1}, 0)
	cs, cl := Coherence(dSmall), Coherence(dLarge)
	if cl >= cs {
		t.Errorf("coherence did not shrink with samples: K=40 → %g, K=640 → %g", cs, cl)
	}
	if cl > 0.3 {
		t.Errorf("coherence at K=640 is %g, expected well below 0.3", cl)
	}
}

func TestCoherenceSingleColumn(t *testing.T) {
	g := linalg.NewMatrixFrom([][]float64{{1}, {2}})
	if c := Coherence(basis.DenseDesignFromMatrix(g)); c != 0 {
		t.Errorf("single column coherence = %g, want 0", c)
	}
}

func TestGramConditionIdentity(t *testing.T) {
	g := linalg.NewMatrixFrom([][]float64{
		{1, 0},
		{0, 1},
		{0, 0},
	})
	cond, err := GramConditionEstimate(basis.DenseDesignFromMatrix(g), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cond-1) > 1e-9 {
		t.Errorf("condition of orthonormal support = %g, want 1", cond)
	}
}

func TestGramConditionNearlyDependent(t *testing.T) {
	// Two nearly parallel columns: condition number blows up.
	eps := 1e-4
	g := linalg.NewMatrixFrom([][]float64{
		{1, 1},
		{0, eps},
	})
	cond, err := GramConditionEstimate(basis.DenseDesignFromMatrix(g), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if cond < 1e6 {
		t.Errorf("condition = %g, want ≫ 1e6 for nearly parallel columns", cond)
	}
}

func TestGramConditionEmptySupport(t *testing.T) {
	g := linalg.NewMatrixFrom([][]float64{{1}})
	cond, err := GramConditionEstimate(basis.DenseDesignFromMatrix(g), nil)
	if err != nil || cond != 1 {
		t.Errorf("empty support: cond=%g err=%v, want 1, nil", cond, err)
	}
}

func TestGramConditionSingular(t *testing.T) {
	g := linalg.NewMatrixFrom([][]float64{
		{1, 1},
		{2, 2},
	})
	cond, err := GramConditionEstimate(basis.DenseDesignFromMatrix(g), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(cond, 1) {
		t.Errorf("condition of singular support = %g, want +Inf", cond)
	}
}
