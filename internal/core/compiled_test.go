package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/basis"
	"repro/internal/hermite"
	"repro/internal/rng"
)

// naivePredict evaluates the model at y the slowest defensible way: every
// support term's Hermite factors are recomputed from scratch with their own
// one-off table, no sharing across terms or points. It is the oracle the
// compiled/batched paths are property-tested against.
func naivePredict(m *Model, b *basis.Basis, y []float64) float64 {
	s := 0.0
	for i, idx := range m.Support {
		p := 1.0
		for _, vp := range b.Terms[idx] {
			vals := hermite.Eval1DUpTo(nil, vp.Pow, y[vp.Var])
			p *= vals[vp.Pow]
		}
		s += m.Coef[i] * p
	}
	return s
}

// randomBasis draws one of the describable dictionary shapes.
func randomBasis(src *rng.Source, dim int) *basis.Basis {
	switch src.Intn(3) {
	case 0:
		return basis.Linear(dim)
	case 1:
		return basis.Quadratic(dim)
	default:
		return basis.TotalDegree(dim, 2+src.Intn(2)) // degree 2 or 3
	}
}

// TestCompiledPredictorProperty is the property-based agreement suite: for
// random sparse models over random dictionaries and random points, the
// compiled predictor and PredictBatch at 1..8 workers must agree with the
// naive per-term Hermite oracle to 1e-12 relative. Run under -race (make
// race), it also exercises the pooled-scratch sharing across workers.
func TestCompiledPredictorProperty(t *testing.T) {
	src := rng.New(20260806)
	for trial := 0; trial < 40; trial++ {
		dim := 1 + src.Intn(9)
		b := randomBasis(src, dim)
		nnz := src.Intn(minInt(b.Size(), 12) + 1) // 0..12 terms, constant-only allowed
		support := src.Perm(b.Size())[:nnz]
		coef := make([]float64, nnz)
		for i := range coef {
			coef[i] = src.Norm()
		}
		m := &Model{M: b.Size(), Support: support, Coef: coef}
		n := 1 + src.Intn(33)
		points := make([][]float64, n)
		for k := range points {
			points[k] = src.NormVec(nil, dim)
		}
		want := make([]float64, n)
		for k, y := range points {
			want[k] = naivePredict(m, b, y)
		}

		cp, err := m.Compile(b)
		if err != nil {
			t.Fatalf("trial %d: Compile: %v", trial, err)
		}
		check := func(label string, got []float64) {
			t.Helper()
			for k := range got {
				if diff := math.Abs(got[k] - want[k]); diff > 1e-12*math.Max(1, math.Abs(want[k])) {
					t.Fatalf("trial %d (%s, dim=%d M=%d nnz=%d) point %d: %g, want %g (diff %g)",
						trial, label, dim, b.Size(), nnz, k, got[k], want[k], diff)
				}
			}
		}
		for workers := 1; workers <= 8; workers++ {
			got, err := cp.Predict(nil, points, workers)
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			check("compiled", got)
			check("batch", m.PredictBatch(b, nil, points, workers))
		}
	}
}

// TestCompiledPredictorConcurrentUse hammers one compiled predictor from
// many goroutines at once — the serving cache-hit shape — so the race
// detector can see the scratch pool and read-only tables under contention.
func TestCompiledPredictorConcurrentUse(t *testing.T) {
	m, b, points := randomModelAndPoints(12, 15, 64, 5)
	cp, err := m.Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cp.Predict(nil, points, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				got, err := cp.Predict(nil, points, 1+g%4)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				for k := range got {
					if got[k] != want[k] {
						t.Errorf("goroutine %d point %d: %g, want %g", g, k, got[k], want[k])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCompiledPredictorErrors covers the non-panicking error contract.
func TestCompiledPredictorErrors(t *testing.T) {
	m, b, points := randomModelAndPoints(4, 3, 4, 9)
	if _, err := m.Compile(basis.Linear(2)); err == nil {
		t.Error("Compile accepted a mismatched basis")
	}
	cp, err := m.Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Predict(make([]float64, 1), points, 2); err == nil {
		t.Error("Predict accepted a short dst")
	}
	if _, err := cp.Predict(nil, [][]float64{{1, 2}}, 1); err == nil {
		t.Error("Predict accepted a dimension-mismatched point")
	}
	if got, err := cp.Predict(nil, nil, 4); err != nil || len(got) != 0 {
		t.Errorf("empty batch: %v, %d values", err, len(got))
	}
	if cp.Dim() != 4 || cp.NNZ() != 3 {
		t.Errorf("Dim/NNZ = %d/%d, want 4/3", cp.Dim(), cp.NNZ())
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
