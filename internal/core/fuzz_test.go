package core

import (
	"bytes"
	"testing"

	"repro/internal/basis"
)

// FuzzReadEnvelope drives the envelope parser — the daemon's untrusted
// upload surface and the registry's crash-recovery read path — with
// arbitrary bytes. The invariants: ReadEnvelope must never panic (malformed
// input is an error, not a crash), an accepted envelope must re-validate,
// and it must survive a write/read round trip unchanged in its model
// structure. Seeds cover the current versioned format, the legacy
// {m,support,coef} layout, truncations of a valid envelope, and structured
// corruptions (bad version, dangling support, dimension-mismatched basis).
func FuzzReadEnvelope(f *testing.F) {
	valid := func() []byte {
		b := basis.Quadratic(3)
		env := &Envelope{
			Model: &Model{M: b.Size(), Support: []int{0, 2, 7}, Coef: []float64{1.5, -0.25, 3}},
			Basis: b.Desc,
			Prov:  Provenance{Solver: "OMP", Lambda: 3, CVError: 0.01, Folds: 4, Samples: 500, Metric: "gain"},
		}
		var buf bytes.Buffer
		if err := WriteEnvelope(&buf, env); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}()

	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                                                                           // truncated mid-object
	f.Add([]byte(`{"m":4,"support":[1,3],"coef":[2,-3]}`))                                                                // legacy layout
	f.Add([]byte(`{"m":4,"support":[],"coef":[]}`))                                                                       // legacy empty model
	f.Add([]byte(`{"version":99,"m":1,"support":[],"coef":[]}`))                                                          // future version
	f.Add([]byte(`{"version":-7,"m":1,"support":[0],"coef":[1]}`))                                                        // negative version
	f.Add([]byte(`{"m":2,"support":[5],"coef":[1]}`))                                                                     // support out of range
	f.Add([]byte(`{"m":2,"support":[1,1],"coef":[1,2]}`))                                                                 // duplicate support
	f.Add([]byte(`{"m":2,"support":[0],"coef":[1,2,3]}`))                                                                 // support/coef mismatch
	f.Add([]byte(`{"m":0,"support":[],"coef":[]}`))                                                                       // empty dictionary
	f.Add([]byte(`{"m":-1,"support":[],"coef":[]}`))                                                                      // negative dictionary
	f.Add([]byte(`{"version":1,"m":3,"support":[],"coef":[],"basis":{"kind":"linear","dim":9}}`))                         // size mismatch
	f.Add([]byte(`{"version":1,"m":4,"support":[],"coef":[],"basis":{"kind":"warp","dim":3}}`))                           // unknown kind
	f.Add([]byte(`{"version":1,"m":1,"support":[],"coef":[],"basis":{"kind":"total-degree","dim":1000000,"degree":50}}`)) // overflowing size
	f.Add([]byte(`{"m":1e309,"support":[],"coef":[]}`))                                                                   // out-of-range number
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := ReadEnvelope(bytes.NewReader(data))
		if err != nil {
			return // rejected input is the expected outcome; it must just not panic
		}
		if err := env.Validate(); err != nil {
			t.Fatalf("accepted envelope fails Validate: %v\ninput: %q", err, data)
		}
		var buf bytes.Buffer
		if err := WriteEnvelope(&buf, env); err != nil {
			t.Fatalf("accepted envelope fails to re-serialize: %v\ninput: %q", err, data)
		}
		back, err := ReadEnvelope(&buf)
		if err != nil {
			t.Fatalf("round trip fails to parse: %v\nre-serialized: %q", err, buf.Bytes())
		}
		if back.Model.M != env.Model.M ||
			len(back.Model.Support) != len(env.Model.Support) ||
			len(back.Model.Coef) != len(env.Model.Coef) ||
			back.Basis != env.Basis {
			t.Fatalf("round trip changed the model: %+v -> %+v", env, back)
		}
	})
}
