package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/basis"
	"repro/internal/linalg"
)

// StOMP is stagewise orthogonal matching pursuit (Donoho et al.): instead of
// selecting the single most-correlated basis vector per iteration like OMP,
// it admits *every* basis vector whose correlation with the residual exceeds
// a threshold proportional to the residual's noise level, then re-fits all
// active coefficients by least squares.
//
// With only a handful of stages, StOMP reaches sparsity levels that cost OMP
// one full Gᵀ·res pass per basis function — the relevant regime is the
// paper's M ≈ 10⁵…10⁶ dictionaries, where those passes dominate. The price
// is coarser selection: bases enter in batches, so the path is piecewise
// (recorded per stage) rather than per-basis.
type StOMP struct {
	// Threshold is the admission multiplier t in t·σ_res (default 2.5, the
	// range Donoho et al. recommend is 2–3).
	Threshold float64
	// MaxStages bounds the number of stages (default 10).
	MaxStages int
	// Tol stops once the relative residual falls below it.
	Tol float64
}

// Name implements PathFitter.
func (s *StOMP) Name() string { return "StOMP" }

func (s *StOMP) threshold() float64 {
	if s.Threshold > 0 {
		return s.Threshold
	}
	return 2.5
}

func (s *StOMP) stages() int {
	if s.MaxStages > 0 {
		return s.MaxStages
	}
	return 10
}

// Fit runs StOMP until at most lambda bases are active.
func (s *StOMP) Fit(d basis.Design, f []float64, lambda int) (*Model, error) {
	path, err := s.FitPath(d, f, lambda)
	if err != nil {
		return nil, err
	}
	return path.Models[len(path.Models)-1], nil
}

// FitPath implements PathFitter. Unlike OMP's strictly-nested path, each
// recorded model corresponds to one stage; intermediate sparsity levels
// reuse the stage model that covers them.
func (s *StOMP) FitPath(d basis.Design, f []float64, maxLambda int) (*Path, error) {
	return s.FitPathCtx(nil, d, f, maxLambda)
}

// FitPathCtx implements ContextFitter: fc is polled per stage and per
// admission candidate (a stage can admit hundreds of columns).
func (s *StOMP) FitPathCtx(fc *FitContext, d basis.Design, f []float64, maxLambda int) (*Path, error) {
	if err := checkProblem(d, f, maxLambda); err != nil {
		return nil, err
	}
	k, m := d.Rows(), d.Cols()
	if maxLambda > k {
		maxLambda = k
	}
	if maxLambda > m {
		maxLambda = m
	}
	fNorm := linalg.Norm2(f)
	res := linalg.Clone(f)
	xi := make([]float64, m)
	active := make([]bool, m)
	excluded := make([]bool, m)

	chol := linalg.NewCholesky()
	var support []int
	var cols [][]float64
	var gtf []float64
	path := &Path{}

	for stage := 0; stage < s.stages() && len(support) < maxLambda; stage++ {
		if err := fc.Err(); err != nil {
			return nil, fmt.Errorf("core: StOMP fit stopped: %w", err)
		}
		d.MulTransVec(xi, res)
		if stage == 0 {
			if err := checkFiniteVec("design correlation", xi); err != nil {
				return nil, err
			}
		}
		// Admission threshold: t·σ where σ = ‖res‖/√K estimates the
		// residual noise scale (correlations of pure-noise columns are
		// ≈ σ·√K ⇒ compare |ξ|/K against t·σ/√K, i.e. |ξ| against t·σ·√K).
		sigma := linalg.Norm2(res) / math.Sqrt(float64(k))
		thresh := s.threshold() * sigma * math.Sqrt(float64(k))
		var cands []stompCand
		for j := range xi {
			if active[j] || excluded[j] {
				continue
			}
			if a := math.Abs(xi[j]); a > thresh {
				cands = append(cands, stompCand{j, a})
			}
		}
		fallback := len(cands) == 0
		if fallback {
			// Fall back to the single best column so progress is guaranteed
			// (matching OMP's behaviour when the stage admits nothing).
			best := argmaxAbsExcludingBoth(xi, active, excluded)
			if best == -1 {
				break
			}
			cands = append(cands, stompCand{best, math.Abs(xi[best])})
		}
		// Strongest first so the λ cap keeps the best candidates.
		sortCandsDesc(cands)
		admitted := 0
		for _, c := range cands {
			if len(support) >= maxLambda {
				break
			}
			if err := fc.Err(); err != nil {
				return nil, fmt.Errorf("core: StOMP fit stopped: %w", err)
			}
			col := d.Column(nil, c.j)
			cross := make([]float64, len(cols))
			for i, existing := range cols {
				cross[i] = linalg.Dot(existing, col)
			}
			if err := chol.Append(cross, linalg.Dot(col, col)); err != nil {
				if errors.Is(err, linalg.ErrNotPositiveDefinite) {
					excluded[c.j] = true
					continue
				}
				return nil, fmt.Errorf("core: StOMP Gram update: %w", err)
			}
			support = append(support, c.j)
			cols = append(cols, col)
			gtf = append(gtf, linalg.Dot(col, f))
			active[c.j] = true
			admitted++
		}
		if admitted == 0 {
			break
		}
		coef, err := chol.Solve(gtf)
		if err != nil {
			return nil, fmt.Errorf("core: StOMP coefficient solve: %w", err)
		}
		prevRes := linalg.Norm2(res)
		copy(res, f)
		for i, col := range cols {
			linalg.Axpy(-coef[i], col, res)
		}
		curRes := linalg.Norm2(res)
		// A fallback-only stage that barely reduces the residual is fitting
		// noise: no remaining basis carries signal, so terminate.
		if fallback && curRes > 0.9*prevRes {
			break
		}
		model := &Model{M: m, Support: append([]int(nil), support...), Coef: coef}
		path.Models = append(path.Models, model)
		path.Residual = append(path.Residual, curRes)
		fc.Observe(-1, len(support), curRes) // batch admission: no single basis
		if s.Tol > 0 && fNorm > 0 && curRes <= s.Tol*fNorm {
			break
		}
	}
	if len(path.Models) == 0 {
		return nil, errDegenerate("StOMP", "could not select any basis vector")
	}
	return path, nil
}

// argmaxAbsExcludingBoth returns the index with largest |v| that is neither
// active nor excluded.
func argmaxAbsExcludingBoth(v []float64, active, excluded []bool) int {
	best, bestAbs := -1, 0.0
	for j, x := range v {
		if active[j] || excluded[j] {
			continue
		}
		a := math.Abs(x)
		if best == -1 || a > bestAbs {
			best, bestAbs = j, a
		}
	}
	return best
}

// stompCand is one admission candidate of a StOMP stage.
type stompCand struct {
	j   int
	abs float64
}

// sortCandsDesc sorts candidates by descending correlation (insertion sort;
// candidate lists are short).
func sortCandsDesc(c []stompCand) {
	for i := 1; i < len(c); i++ {
		for k := i; k > 0 && c[k].abs > c[k-1].abs; k-- {
			c[k], c[k-1] = c[k-1], c[k]
		}
	}
}

var _ ContextFitter = (*StOMP)(nil)
