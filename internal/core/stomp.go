package core

import (
	"math"

	"repro/internal/basis"
	"repro/internal/linalg"
)

// StOMP is stagewise orthogonal matching pursuit (Donoho et al.): instead of
// selecting the single most-correlated basis vector per iteration like OMP,
// it admits *every* basis vector whose correlation with the residual exceeds
// a threshold proportional to the residual's noise level, then re-fits all
// active coefficients by least squares.
//
// With only a handful of stages, StOMP reaches sparsity levels that cost OMP
// one full Gᵀ·res pass per basis function — the relevant regime is the
// paper's M ≈ 10⁵…10⁶ dictionaries, where those passes dominate. The price
// is coarser selection: bases enter in batches, so the path is piecewise
// (recorded per stage) rather than per-basis.
//
// As an engine strategy, StOMP shares OMP's whole substrate and differs only
// in its admission rule: thresholded batches instead of the single argmax.
type StOMP struct {
	// Threshold is the admission multiplier t in t·σ_res (default 2.5, the
	// range Donoho et al. recommend is 2–3).
	Threshold float64
	// MaxStages bounds the number of stages (default 10).
	MaxStages int
	// Tol stops once the relative residual falls below it.
	Tol float64
}

// Name implements PathFitter.
func (s *StOMP) Name() string { return "StOMP" }

func (s *StOMP) threshold() float64 {
	if s.Threshold > 0 {
		return s.Threshold
	}
	return 2.5
}

func (s *StOMP) stages() int {
	if s.MaxStages > 0 {
		return s.MaxStages
	}
	return 10
}

// Fit runs StOMP until at most lambda bases are active.
func (s *StOMP) Fit(d basis.Design, f []float64, lambda int) (*Model, error) {
	path, err := s.FitPath(d, f, lambda)
	if err != nil {
		return nil, err
	}
	return path.Models[len(path.Models)-1], nil
}

// FitPath implements PathFitter. Unlike OMP's strictly-nested path, each
// recorded model corresponds to one stage; intermediate sparsity levels
// reuse the stage model that covers them.
func (s *StOMP) FitPath(d basis.Design, f []float64, maxLambda int) (*Path, error) {
	return s.FitPathCtx(nil, d, f, maxLambda)
}

// FitPathCtx implements ContextFitter: fc is polled per stage and per
// admission candidate (a stage can admit hundreds of columns).
func (s *StOMP) FitPathCtx(fc *FitContext, d basis.Design, f []float64, maxLambda int) (*Path, error) {
	as, err := newActiveSet(fc, d, f, maxLambda, activeSetConfig{
		solver: "StOMP", clampRows: true, gram: true,
	})
	if err != nil {
		return nil, err
	}
	path := &Path{}
	// Continuation: the stage counter is StOMP's only extra beyond the
	// engine state — resuming restarts the loop at the stage after the
	// checkpointed one. Without a checkpoint, a warm-start model's support
	// is replayed first (sweep-free), then staged selection continues.
	startStage := 0
	if ck, err := fc.resumeFor("StOMP"); err != nil {
		return nil, err
	} else if ck != nil {
		if err := as.restore(ck, path); err != nil {
			return nil, err
		}
		startStage = ck.Stage
	} else if err := warmReplay(fc, as, path); err != nil {
		return nil, err
	}
	completed := startStage
	capture := func(ck *FitCheckpoint) { ck.Stage = completed }
	for stage := startStage; stage < s.stages() && as.Size() < as.MaxLambda(); stage++ {
		if err := as.Err(); err != nil {
			return nil, err
		}
		xi, err := as.CorrelateResidual()
		if err != nil {
			return nil, err
		}
		// Admission threshold: t·σ where σ = ‖res‖/√K estimates the
		// residual noise scale (correlations of pure-noise columns are
		// ≈ σ·√K ⇒ compare |ξ|/K against t·σ/√K, i.e. |ξ| against t·σ·√K).
		sigma := linalg.Norm2(as.res) / math.Sqrt(float64(as.k))
		thresh := s.threshold() * sigma * math.Sqrt(float64(as.k))
		var cands []stompCand
		for j, v := range xi {
			if as.active[j] || as.excluded[j] {
				continue
			}
			if a := math.Abs(v); a > thresh {
				cands = append(cands, stompCand{j, a})
			}
		}
		fallback := len(cands) == 0
		if fallback {
			// Fall back to the single best column so progress is guaranteed
			// (matching OMP's behaviour when the stage admits nothing).
			best := as.SelectMostCorrelated(xi)
			if best == -1 {
				break
			}
			cands = append(cands, stompCand{best, math.Abs(xi[best])})
		}
		// Strongest first so the λ cap keeps the best candidates.
		sortCandsDesc(cands)
		admitted := 0
		for _, c := range cands {
			if as.Size() >= as.MaxLambda() {
				break
			}
			if err := as.Err(); err != nil {
				return nil, err
			}
			ok, err := as.TryAppend(c.j)
			if err != nil {
				return nil, err
			}
			if ok {
				admitted++
			}
		}
		if admitted == 0 {
			break
		}
		coef, err := as.RefitActive()
		if err != nil {
			return nil, err
		}
		prevRes := linalg.Norm2(as.res)
		as.RecomputeResidual(coef)
		curRes := linalg.Norm2(as.res)
		// A fallback-only stage that barely reduces the residual is fitting
		// noise: no remaining basis carries signal, so terminate.
		if fallback && curRes > 0.9*prevRes {
			break
		}
		as.Record(path, coef, -1) // batch admission: no single basis
		completed = stage + 1
		if checkpointAfter(fc, as, path, capture) {
			return path, nil
		}
		if s.Tol > 0 && curRes <= s.Tol*as.fNorm && as.fNorm > 0 {
			break
		}
	}
	if len(path.Models) == 0 {
		return nil, as.errDegenerateNoSelection()
	}
	captureCheckpoint(fc, as, path, capture)
	return path, nil
}

// stompCand is one admission candidate of a StOMP stage.
type stompCand struct {
	j   int
	abs float64
}

// sortCandsDesc sorts candidates by descending correlation (insertion sort;
// candidate lists are short).
func sortCandsDesc(c []stompCand) {
	for i := 1; i < len(c); i++ {
		for k := i; k > 0 && c[k].abs > c[k-1].abs; k-- {
			c[k], c[k-1] = c[k-1], c[k]
		}
	}
}

var _ ContextFitter = (*StOMP)(nil)
