package core

import (
	"math"

	"repro/internal/basis"
	"repro/internal/linalg"
)

// Coherence returns the mutual coherence of the design matrix: the largest
// absolute normalized inner product between two distinct columns,
//
//	µ(G) = max_{i≠j} |G_iᵀG_j| / (‖G_i‖·‖G_j‖).
//
// Mutual coherence is the standard compressed-sensing well-conditionedness
// measure behind the paper's Section IV-B recovery guarantee (Tropp &
// Gilbert): low coherence means random sampling kept the basis vectors
// nearly orthogonal, so OMP can identify the true support from K ≪ M
// samples. It costs O(K·M²) — use it as a diagnostic, not in solver loops.
func Coherence(d basis.Design) float64 {
	m := d.Cols()
	if m < 2 {
		return 0
	}
	cols := make([][]float64, m)
	norms := make([]float64, m)
	for j := 0; j < m; j++ {
		cols[j] = d.Column(nil, j)
		norms[j] = linalg.Norm2(cols[j])
	}
	max := 0.0
	for i := 0; i < m; i++ {
		if norms[i] == 0 {
			continue
		}
		for j := i + 1; j < m; j++ {
			if norms[j] == 0 {
				continue
			}
			c := math.Abs(linalg.Dot(cols[i], cols[j])) / (norms[i] * norms[j])
			if c > max {
				max = c
			}
		}
	}
	return max
}

// GramConditionEstimate returns the 2-norm condition number of the
// normalized Gram matrix of the given support columns, estimated by power
// iteration on the Gram and its inverse (via Cholesky). It measures how
// well-posed the active-set least-squares problem of Algorithm 1 Step 6 is.
func GramConditionEstimate(d basis.Design, support []int) (float64, error) {
	p := len(support)
	if p == 0 {
		return 1, nil
	}
	cols := make([][]float64, p)
	for i, idx := range support {
		c := d.Column(nil, idx)
		n := linalg.Norm2(c)
		if n > 0 {
			linalg.Scale(1/n, c)
		}
		cols[i] = c
	}
	gram := linalg.NewMatrix(p, p)
	for i := 0; i < p; i++ {
		for j := i; j < p; j++ {
			v := linalg.Dot(cols[i], cols[j])
			gram.Set(i, j, v)
			gram.Set(j, i, v)
		}
	}
	chol, err := linalg.CholeskyFactor(gram)
	if err != nil {
		return math.Inf(1), nil // singular active set
	}
	// Power iteration for λ_max and, via solves, λ_min.
	x := make([]float64, p)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(p))
	}
	lmax := 0.0
	for it := 0; it < 100; it++ {
		y := gram.MulVec(nil, x)
		n := linalg.Norm2(y)
		if n == 0 {
			break
		}
		linalg.Scale(1/n, y)
		copy(x, y)
		lmax = n
	}
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(p))
	}
	linvMax := 0.0
	for it := 0; it < 100; it++ {
		y, err := chol.Solve(x)
		if err != nil {
			return math.Inf(1), nil
		}
		n := linalg.Norm2(y)
		if n == 0 {
			break
		}
		linalg.Scale(1/n, y)
		copy(x, y)
		linvMax = n
	}
	if linvMax == 0 {
		return math.Inf(1), nil
	}
	return lmax * linvMax, nil
}
