package core

import (
	"math"
	"testing"
)

func TestCrossValidationFoldsPartition(t *testing.T) {
	// Fig. 2 reproduction: Q-fold CV must put every sample in exactly one
	// test fold and Q−1 training folds. We verify through the fold geometry
	// used by CrossValidate (interleaved assignment).
	const k, q = 23, 4
	seen := make([]int, k)
	for fold := 0; fold < q; fold++ {
		for i := 0; i < k; i++ {
			if i%q == fold {
				seen[i]++
			}
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("sample %d appears in %d test folds, want 1", i, c)
		}
	}
}

func TestCrossValidationFindsTrueSparsity(t *testing.T) {
	// Noisy 3-sparse signal: the CV error curve should bottom out at or near
	// λ=3 and the final model must contain the true support.
	support := []int{4, 15, 33}
	coefs := []float64{2, -1.5, 1}
	_, d, f, _ := synthProblem(70, 40, 160, false, support, coefs, 0.05)

	res, err := CrossValidate(&OMP{}, d, f, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestLambda < 3 || res.BestLambda > 6 {
		t.Errorf("BestLambda = %d, want ≈3 (curve %v)", res.BestLambda, res.ErrCurve)
	}
	got := make(map[int]bool)
	for _, s := range res.Model.Support {
		got[s] = true
	}
	for _, s := range support {
		if !got[s] {
			t.Errorf("true basis %d missing from CV model support %v", s, res.Model.Support)
		}
	}
}

func TestCrossValidationErrCurveShape(t *testing.T) {
	// With strong noise the error curve must eventually rise again
	// (over-fitting past the true sparsity) — the trade-off of Section III.
	support := []int{2, 9}
	coefs := []float64{3, -2}
	_, d, f, _ := synthProblem(71, 30, 90, false, support, coefs, 0.4)
	res, err := CrossValidate(&OMP{}, d, f, 4, 25)
	if err != nil {
		t.Fatal(err)
	}
	minErr, maxLaterErr := math.Inf(1), 0.0
	minAt := 0
	for i, e := range res.ErrCurve {
		if e < minErr {
			minErr, minAt = e, i
		}
	}
	for i := minAt + 1; i < len(res.ErrCurve); i++ {
		if res.ErrCurve[i] > maxLaterErr {
			maxLaterErr = res.ErrCurve[i]
		}
	}
	if maxLaterErr <= minErr {
		t.Errorf("CV curve never rises after its minimum (min %g, later max %g): over-fitting undetected", minErr, maxLaterErr)
	}
}

func TestCrossValidationFoldErrDimensions(t *testing.T) {
	_, d, f, _ := synthProblem(72, 10, 40, false, []int{1}, []float64{1}, 0.1)
	res, err := CrossValidate(&OMP{}, d, f, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldErr) != 5 {
		t.Fatalf("FoldErr has %d folds, want 5", len(res.FoldErr))
	}
	for q, fe := range res.FoldErr {
		if len(fe) != 6 {
			t.Errorf("fold %d has %d λ entries, want 6", q, len(fe))
		}
	}
	// ErrCurve must be the fold average.
	for lam := 0; lam < 6; lam++ {
		sum := 0.0
		for q := 0; q < 5; q++ {
			sum += res.FoldErr[q][lam]
		}
		if math.Abs(res.ErrCurve[lam]-sum/5) > 1e-12 {
			t.Errorf("ErrCurve[%d] = %g, want fold mean %g", lam, res.ErrCurve[lam], sum/5)
		}
	}
}

func TestCrossValidationInputValidation(t *testing.T) {
	_, d, f, _ := synthProblem(73, 5, 12, false, []int{0}, []float64{1}, 0)
	if _, err := CrossValidate(&OMP{}, d, f, 1, 3); err == nil {
		t.Error("folds < 2 must error")
	}
	if _, err := CrossValidate(&OMP{}, d, f, 13, 3); err == nil {
		t.Error("folds > samples must error")
	}
	if _, err := CrossValidate(&OMP{}, d, f, 4, 0); err == nil {
		t.Error("maxLambda < 1 must error")
	}
}

func TestCrossValidationWorksWithAllPathFitters(t *testing.T) {
	support := []int{3, 11}
	coefs := []float64{2, -1}
	_, d, f, _ := synthProblem(74, 25, 100, false, support, coefs, 0.05)
	for _, fitter := range []PathFitter{&OMP{}, &STAR{}, &LAR{}, &LAR{Lasso: true, Refit: true}} {
		res, err := CrossValidate(fitter, d, f, 4, 8)
		if err != nil {
			t.Errorf("%s: %v", fitter.Name(), err)
			continue
		}
		got := make(map[int]bool)
		for _, s := range res.Model.Support {
			got[s] = true
		}
		if !got[3] || !got[11] {
			t.Errorf("%s: CV model support %v misses the true support", fitter.Name(), res.Model.Support)
		}
	}
}
