package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/basis"
	"repro/internal/linalg"
)

// This file is the shared active-set solver engine. All path solvers (OMP,
// STAR, LAR, StOMP, CD) are strategy layers over the same inner machinery of
// Algorithm 1: the Gᵀ·res correlation sweep (eq. 18), active-set bookkeeping
// with degenerate-column exclusion, the growable-Cholesky least-squares
// refit of the active Gram matrix (eq. 22), residual maintenance, and the
// FitContext cancellation/telemetry hooks. Efron et al.'s LAR formulation
// and Tropp & Gilbert's OMP analysis both factor their solvers exactly this
// way — selection and step rules over a common equiangular/active-set
// substrate — so the engine implements the substrate once and each solver
// file keeps only its rule.

// correlateParallelMin is the K·M product below which the correlation sweep
// stays serial: forking goroutines costs ~µs while a small sweep completes
// in less, so tiny fits must not pay scheduler overhead.
const correlateParallelMin = 1 << 15

// colMajorizeMax is the K·M product above which the engine refuses to
// materialize a column-major copy of the design (8·colMajorizeMax bytes —
// 256 MB — of extra resident memory). Beyond it the sweep falls back to the
// design's own MulTransVec, which for lazy/generated paper-scale designs is
// already streaming (and, for GeneratedDesign, internally parallel).
const colMajorizeMax = 32 << 20

// fitWorkersCtxKey carries the requested correlation worker count in a
// context (see WithFitWorkers).
type fitWorkersCtxKey struct{}

// WithFitWorkers requests that solver fits run under ctx use n goroutines
// for the engine's parallel correlation sweep. n ≤ 0 means automatic
// (GOMAXPROCS). The serving daemon threads its -fit-workers flag through
// this; CLI fits default to automatic.
func WithFitWorkers(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, fitWorkersCtxKey{}, n)
}

// FitWorkersFromContext returns the worker count requested via
// WithFitWorkers, or 0 (automatic) when unset.
func FitWorkersFromContext(ctx context.Context) int {
	if ctx == nil {
		return 0
	}
	n, _ := ctx.Value(fitWorkersCtxKey{}).(int)
	return n
}

// ResolveFitWorkers maps a configured worker count to the effective one:
// n ≤ 0 selects GOMAXPROCS. It is exported so the serving layer can report
// the effective parallelism in its metrics.
func ResolveFitWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Engine owns the reusable allocation state of the active-set solvers: the
// correlation scratch (length M), the residual buffer (length K), a column
// buffer, and the worker count of the parallel sweep. One engine serves one
// fit at a time; CrossValidateCtx allocates a single engine and reuses it
// across every fold fit and the final refit, so a Q-fold cross-validation
// performs one set of large allocations instead of Q+1.
type Engine struct {
	workers int // requested; 0 = GOMAXPROCS

	xi     []float64
	res    []float64
	colBuf []float64
}

// NewEngine returns an engine whose correlation sweeps use the given worker
// count (0 = automatic).
func NewEngine(workers int) *Engine {
	return &Engine{workers: workers}
}

// Workers returns the effective worker count of this engine's sweeps.
func (e *Engine) Workers() int { return ResolveFitWorkers(e.workers) }

// grow returns a slice of length n, reusing buf's backing array when large
// enough.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func (e *Engine) xiBuf(m int) []float64 {
	e.xi = grow(e.xi, m)
	return e.xi
}

func (e *Engine) resBuf(k int) []float64 {
	e.res = grow(e.res, k)
	return e.res
}

func (e *Engine) columnBuf(k int) []float64 {
	e.colBuf = grow(e.colBuf, k)
	return e.colBuf
}

// Correlator is the engine's Gᵀ·x kernel — the dominant cost of every path
// iteration (eq. 18). When the design is (or can affordably be copied into)
// column-major blocked storage, the sweep shards contiguous column ranges
// across workers goroutines; each worker computes plain per-column dot
// products into its disjoint slice of dst, so the parallel sweep is
// bit-identical to the serial one. Below correlateParallelMin, or when the
// design stays in its own representation, the sweep runs serially through
// the design's MulTransVec.
type Correlator struct {
	d       basis.Design
	cm      *basis.ColMajor
	workers int
	checked bool // first-sweep NaN/Inf validation done
}

// newCorrelator builds the kernel for d. workers is the effective goroutine
// count (≥ 1).
func newCorrelator(d basis.Design, workers int) *Correlator {
	c := &Correlator{d: d, workers: workers}
	if cm, ok := d.(*basis.ColMajor); ok {
		c.cm = cm
		return c
	}
	size := d.Rows() * d.Cols()
	if workers > 1 && size >= correlateParallelMin && size <= colMajorizeMax {
		// One row-streaming materialization pass, amortized over the λ (or
		// λ·folds) sweeps of the path fit it serves.
		c.cm = basis.NewColMajor(d)
	}
	return c
}

// Apply computes dst = Gᵀ·x (allocating dst when nil). The first sweep of a
// correlator's life validates the result for NaN/Inf: x is the raw response
// there, so a non-finite design or response entry surfaces immediately
// instead of silently corrupting the path.
func (c *Correlator) Apply(dst, x []float64) ([]float64, error) {
	m := c.d.Cols()
	if dst == nil {
		dst = make([]float64, m)
	}
	if c.cm != nil && c.workers > 1 && c.d.Rows()*m >= correlateParallelMin {
		c.applyParallel(dst, x)
	} else if c.cm != nil {
		c.cm.MulTransVec(dst, x)
	} else {
		c.d.MulTransVec(dst, x)
	}
	if !c.checked {
		c.checked = true
		if err := checkFiniteVec("design correlation", dst); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// applyParallel shards the column range across the worker pool. Shards are
// contiguous column blocks writing disjoint dst ranges; per-column summation
// order is unchanged, so the result is bit-identical to the serial sweep
// regardless of worker count.
func (c *Correlator) applyParallel(dst, x []float64) {
	m := c.cm.Cols()
	workers := c.workers
	if workers > m {
		workers = m
	}
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			c.cm.MulTransVecRange(dst, x, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// activeSetConfig selects the engine features a solver strategy needs.
type activeSetConfig struct {
	// solver labels errors and cancellation messages.
	solver string
	// clampRows additionally caps maxLambda at K (solvers whose
	// least-squares refit needs λ ≤ K: OMP, StOMP, LAR, CD).
	clampRows bool
	// normalize scales every column to unit Euclidean norm inside the
	// engine (LAR); zero-norm columns are excluded up front.
	normalize bool
	// gram maintains the growable Cholesky factor of the active Gram
	// matrix and the Gᵀ_Ω·F right-hand side (OMP, StOMP, LAR). STAR never
	// re-fits, so it skips the factor entirely.
	gram bool
}

// ActiveSet is the engine's mutable fit state: the residual, the selected
// support with its materialized columns, the growable Cholesky factor of
// the active Gram matrix, cached column norms, and the cancellation +
// telemetry hooks. Solver strategies drive it through a small verb set —
// correlate, select, append, refit, recompute, drop — and keep only their
// selection/step rule locally.
type ActiveSet struct {
	cfg activeSetConfig
	d   basis.Design
	fc  *FitContext
	eng *Engine

	corr *Correlator
	k, m int

	f     []float64
	fNorm float64
	res   []float64
	xi    []float64

	// norms[j] is ‖G_j‖₂ when cfg.normalize, nil otherwise.
	norms []float64

	maxLambda int
	support   []int
	cols      [][]float64
	gtf       []float64 // Gᵀ_Ω·F aligned with support (gram only)
	active    []bool
	excluded  []bool
	chol      *linalg.Cholesky
}

// newActiveSet validates the problem (the engine's single validator — see
// checkProblem) and assembles the fit state. It is the one entry point every
// solver strategy goes through.
func newActiveSet(fc *FitContext, d basis.Design, f []float64, maxLambda int, cfg activeSetConfig) (*ActiveSet, error) {
	if err := checkProblem(d, f, maxLambda); err != nil {
		return nil, err
	}
	eng := fc.engine()
	k, m := d.Rows(), d.Cols()
	if maxLambda > m {
		maxLambda = m
	}
	if cfg.clampRows && maxLambda > k {
		// Selecting more bases than samples would make the LS re-fit
		// underdetermined; Algorithm 1 implicitly requires λ ≤ K.
		maxLambda = k
	}
	as := &ActiveSet{
		cfg: cfg, d: d, fc: fc, eng: eng,
		corr: newCorrelator(d, eng.Workers()),
		k:    k, m: m,
		f:     f,
		fNorm: linalg.Norm2(f),
		res:   eng.resBuf(k),
		xi:    eng.xiBuf(m),

		maxLambda: maxLambda,
		active:    make([]bool, m),
		excluded:  make([]bool, m),
	}
	copy(as.res, f)
	if cfg.gram {
		as.chol = linalg.NewCholesky()
	}
	if cfg.normalize {
		// One row-streaming pass — a per-column loop would cost M full
		// column materializations, prohibitive on lazy/generated designs.
		as.norms = basis.SquaredColumnNorms(d, nil)
		for j, n := range as.norms {
			if n <= 0 {
				as.excluded[j] = true
				as.norms[j] = 1 // avoid division by zero; column is excluded anyway
			} else {
				as.norms[j] = math.Sqrt(n)
			}
		}
	}
	return as, nil
}

// Size returns the active-set cardinality |Ω|.
func (as *ActiveSet) Size() int { return len(as.support) }

// MaxLambda returns the clamped sparsity budget.
func (as *ActiveSet) MaxLambda() int { return as.maxLambda }

// Err polls the fit's cancellation hook, wrapping the cause with the solver
// name. Solvers call it at the top of every path iteration.
func (as *ActiveSet) Err() error {
	if err := as.fc.Err(); err != nil {
		return fmt.Errorf("core: %s fit stopped: %w", as.cfg.solver, err)
	}
	return nil
}

// Correlate computes dst = Gᵀ·x through the parallel kernel, dividing by the
// column norms when the set is normalized. Passing nil dst uses (and
// returns) the engine's correlation scratch xi.
func (as *ActiveSet) Correlate(dst, x []float64) ([]float64, error) {
	if dst == nil {
		dst = as.xi
	}
	dst, err := as.corr.Apply(dst, x)
	if err != nil {
		return dst, err
	}
	if as.norms != nil {
		for j := range dst {
			dst[j] /= as.norms[j]
		}
	}
	return dst, nil
}

// CorrelateResidual refreshes the correlation scratch xi = Gᵀ·res — Step 3
// of Algorithm 1 — and returns it.
func (as *ActiveSet) CorrelateResidual() ([]float64, error) {
	return as.Correlate(as.xi, as.res)
}

// SelectMostCorrelated returns the admissible column (neither active nor
// excluded) with the largest |xi| — Step 4's selection rule — or -1 when the
// dictionary is exhausted or the best correlation is degenerate (below
// degenEps relative to ‖F‖, i.e. floating-point noise).
func (as *ActiveSet) SelectMostCorrelated(xi []float64) int {
	best, bestAbs := -1, 0.0
	for j, v := range xi {
		if as.active[j] || as.excluded[j] {
			continue
		}
		a := math.Abs(v)
		if best == -1 || a > bestAbs {
			best, bestAbs = j, a
		}
	}
	if best != -1 && bestAbs <= degenEps*(1+as.fNorm) {
		return -1
	}
	return best
}

// column materializes column j (normalized when the set is), always into a
// fresh slice safe to retain.
func (as *ActiveSet) column(j int) []float64 {
	col := as.d.Column(nil, j)
	if as.norms != nil {
		inv := 1 / as.norms[j]
		for i := range col {
			col[i] *= inv
		}
	}
	return col
}

// TryAppend attempts Step 5: grow the active set by column j, extending the
// Cholesky factor of the Gram matrix by the new row. A column linearly
// dependent on the active set (non-positive-definite update) is excluded
// and reported as ok=false so the caller can try its next candidate; other
// factorization failures abort the fit.
func (as *ActiveSet) TryAppend(j int) (bool, error) {
	col := as.column(j)
	cross := make([]float64, len(as.cols))
	for i, existing := range as.cols {
		cross[i] = linalg.Dot(existing, col)
	}
	if err := as.chol.Append(cross, linalg.Dot(col, col)); err != nil {
		if errors.Is(err, linalg.ErrNotPositiveDefinite) {
			as.excluded[j] = true // dependent column; caller tries the next best
			return false, nil
		}
		return false, fmt.Errorf("core: %s Gram update: %w", as.cfg.solver, err)
	}
	as.support = append(as.support, j)
	as.cols = append(as.cols, col)
	as.gtf = append(as.gtf, linalg.Dot(col, as.f))
	as.active[j] = true
	return true, nil
}

// AppendFree grows the active set without Gram bookkeeping — the matching-
// pursuit variant (STAR) that never re-fits. It returns the materialized
// column in a transient buffer valid until the next engine call.
func (as *ActiveSet) AppendFree(j int) []float64 {
	col := as.eng.columnBuf(as.k)
	as.d.Column(col, j)
	as.support = append(as.support, j)
	as.active[j] = true
	return col
}

// RefitActive solves Step 6 (eq. 22): the least-squares coefficients of all
// active columns, through the Cholesky factor.
func (as *ActiveSet) RefitActive() ([]float64, error) {
	coef, err := as.chol.Solve(as.gtf)
	if err != nil {
		return nil, fmt.Errorf("core: %s coefficient solve: %w", as.cfg.solver, err)
	}
	return coef, nil
}

// SolveGram solves (G_ΩᵀG_Ω)·x = rhs against the active Gram factor (LAR's
// equiangular direction system).
func (as *ActiveSet) SolveGram(rhs []float64) ([]float64, error) {
	return as.chol.Solve(rhs)
}

// RecomputeResidual rebuilds Step 7 (eq. 23): res = F − Σ coefᵢ·G_i over the
// active columns.
func (as *ActiveSet) RecomputeResidual(coef []float64) {
	copy(as.res, as.f)
	for i, col := range as.cols {
		linalg.Axpy(-coef[i], col, as.res)
	}
}

// Drop removes support member i (LAR's lasso modification) through the
// factor's rank-one downdate: deleting row/column i of the Gram matrix
// perturbs only the trailing block, which linalg.Cholesky.Drop repairs in
// O((λ−i)²) — against the O(K·λ² + λ³) dot-product refactorization this
// used to run on every lasso sign crossing.
func (as *ActiveSet) Drop(i int) error {
	idx := as.support[i]
	as.active[idx] = false
	as.support = append(as.support[:i], as.support[i+1:]...)
	as.cols = append(as.cols[:i], as.cols[i+1:]...)
	if as.gtf != nil {
		as.gtf = append(as.gtf[:i], as.gtf[i+1:]...)
	}
	as.chol.Drop(i)
	return nil
}

// Record appends one path step: a model over the current support with the
// given coefficients (stored as passed; pass an owned slice), the residual
// norm, and one telemetry event. selected is the chosen basis index, or -1
// for batch admissions.
func (as *ActiveSet) Record(path *Path, coef []float64, selected int) {
	model := &Model{
		M:       as.m,
		Support: append([]int(nil), as.support...),
		Coef:    coef,
	}
	path.Models = append(path.Models, model)
	resNorm := linalg.Norm2(as.res)
	path.Residual = append(path.Residual, resNorm)
	as.fc.Observe(selected, len(as.support), resNorm)
}

// BelowTol reports whether the relative residual has crossed the solver's
// early-stop threshold (tol ≤ 0 never stops).
func (as *ActiveSet) BelowTol(tol float64) bool {
	return tol > 0 && as.fNorm > 0 && linalg.Norm2(as.res) <= tol*as.fNorm
}

// errDegenerateNoSelection is the shared "could not select any basis vector"
// failure every greedy solver reports on a fully degenerate problem.
func (as *ActiveSet) errDegenerateNoSelection() error {
	return errDegenerate(as.cfg.solver, "could not select any basis vector")
}

// checkProblem is the engine's single input validator, shared by every
// fitter (sparse strategies, LS, Ridge, SelectIC, CrossValidate).
func checkProblem(d basis.Design, f []float64, maxLambda int) error {
	if d.Rows() != len(f) {
		return fmt.Errorf("core: design has %d rows but response has %d entries", d.Rows(), len(f))
	}
	if d.Rows() == 0 {
		return fmt.Errorf("core: empty sample set")
	}
	if maxLambda < 1 {
		return fmt.Errorf("core: maxLambda must be ≥ 1, got %d", maxLambda)
	}
	if err := checkFiniteVec("response", f); err != nil {
		return err
	}
	return nil
}
