package core

import (
	"context"
	"fmt"
	"testing"
)

// collectEvents runs one path fit under an observer and returns the events.
func collectEvents(t *testing.T, fitter PathFitter, maxLambda int) []FitEvent {
	t.Helper()
	support := []int{3, 17, 42}
	coefs := []float64{2.0, -1.5, 0.8}
	_, d, f, _ := synthProblem(7, 50, 40, false, support, coefs, 0)
	var events []FitEvent
	ctx := WithFitObserver(context.Background(), func(ev FitEvent) { events = append(events, ev) })
	if _, err := FitPathContext(ctx, fitter, d, f, maxLambda); err != nil {
		t.Fatalf("%s: %v", fitter.Name(), err)
	}
	return events
}

// TestObserverEventsPerIteration checks the telemetry contract on every
// solver: one event per recorded path step, 1-based consecutive iteration
// numbers, a growing active set, and (for greedy solvers) the selected
// basis index.
func TestObserverEventsPerIteration(t *testing.T) {
	for _, fitter := range []PathFitter{&OMP{}, &LAR{}, &LAR{Lasso: true}, &STAR{}, &StOMP{}, &CD{}} {
		t.Run(fitter.Name(), func(t *testing.T) {
			events := collectEvents(t, fitter, 3)
			if len(events) == 0 {
				t.Fatal("no events observed")
			}
			lastActive := 0
			for i, ev := range events {
				if ev.Iter != i+1 {
					t.Errorf("event %d has iter %d, want %d", i, ev.Iter, i+1)
				}
				if ev.Active < lastActive {
					t.Errorf("event %d active-set size %d shrank below %d", i, ev.Active, lastActive)
				}
				lastActive = ev.Active
				if ev.Residual < 0 {
					t.Errorf("event %d has negative residual %g", i, ev.Residual)
				}
				if ev.Elapsed < 0 {
					t.Errorf("event %d has negative elapsed %v", i, ev.Elapsed)
				}
				if ev.Stage != "" {
					t.Errorf("event %d carries stage %q without WithFitStage", i, ev.Stage)
				}
			}
			switch fitter.(type) {
			case *OMP, *LAR, *STAR:
				for i, ev := range events {
					if ev.Basis < 0 {
						t.Errorf("greedy solver event %d has no basis index", i)
					}
				}
			default: // batch solvers report Basis = -1
				for i, ev := range events {
					if ev.Basis != -1 {
						t.Errorf("batch solver event %d has basis %d, want -1", i, ev.Basis)
					}
				}
			}
		})
	}
}

// TestObserverResidualDecreasesForOMP checks the per-iteration residual is
// the actual path residual: OMP's re-fit guarantees it is non-increasing.
func TestObserverResidualDecreasesForOMP(t *testing.T) {
	events := collectEvents(t, &OMP{}, 3)
	for i := 1; i < len(events); i++ {
		if events[i].Residual > events[i-1].Residual+1e-12 {
			t.Fatalf("residual rose from %g to %g at iteration %d",
				events[i-1].Residual, events[i].Residual, events[i].Iter)
		}
	}
}

// TestObserverStagesThroughCrossValidation checks that CrossValidateCtx
// labels fold fits and the final refit so a job timeline can tell them
// apart, and that the final stage is present with per-iteration events.
func TestObserverStagesThroughCrossValidation(t *testing.T) {
	support := []int{3, 17, 42}
	coefs := []float64{2.0, -1.5, 0.8}
	_, d, f, _ := synthProblem(11, 50, 40, false, support, coefs, 0)
	var events []FitEvent
	ctx := WithFitObserver(context.Background(), func(ev FitEvent) { events = append(events, ev) })
	cv, err := CrossValidateCtx(ctx, &OMP{}, d, f, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cv.BestLambda != 3 {
		t.Fatalf("BestLambda = %d, want 3", cv.BestLambda)
	}
	stages := make(map[string]int)
	for _, ev := range events {
		stages[ev.Stage]++
	}
	for q := 0; q < 4; q++ {
		if stages[fmt.Sprintf("cv-fold-%d", q)] == 0 {
			t.Errorf("no events from fold %d (stages: %v)", q, stages)
		}
	}
	if stages["final"] < cv.BestLambda {
		t.Errorf("final refit produced %d events, want ≥ %d", stages["final"], cv.BestLambda)
	}
	// Iteration numbers restart per stage fit.
	seenFinalFirst := false
	for _, ev := range events {
		if ev.Stage == "final" && ev.Iter == 1 {
			seenFinalFirst = true
		}
	}
	if !seenFinalFirst {
		t.Error("final stage never restarted iteration numbering at 1")
	}
}

// TestObserverNilSafety: path fits without an observer (and with a nil
// FitContext) must be unaffected.
func TestObserverNilSafety(t *testing.T) {
	var fc *FitContext
	fc.Observe(0, 1, 0.5) // must not panic

	support := []int{3}
	coefs := []float64{2.0}
	_, d, f, _ := synthProblem(13, 20, 30, false, support, coefs, 0)
	if _, err := (&OMP{}).FitPath(d, f, 1); err != nil {
		t.Fatal(err)
	}
	// A context without an observer exercises the no-op path.
	if _, err := FitPathContext(context.Background(), &OMP{}, d, f, 1); err != nil {
		t.Fatal(err)
	}
}
