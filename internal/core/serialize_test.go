package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/basis"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	b := basis.Quadratic(4) // M = 15
	env := &Envelope{
		Model: &Model{M: b.Size(), Support: []int{0, 3, 11}, Coef: []float64{1, -0.5, 0.25}},
		Basis: b.Desc,
		Prov: Provenance{
			Solver: "OMP", Lambda: 3, CVError: 0.012, Folds: 4, Samples: 200, Metric: "gain",
		},
	}
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, env); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"version":1`) {
		t.Fatalf("envelope is not versioned: %s", buf.String())
	}
	back, err := ReadEnvelope(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Basis != env.Basis {
		t.Errorf("basis descriptor changed: %+v -> %+v", env.Basis, back.Basis)
	}
	if back.Prov != env.Prov {
		t.Errorf("provenance changed: %+v -> %+v", env.Prov, back.Prov)
	}
	if back.Model.M != env.Model.M || len(back.Model.Support) != 3 {
		t.Fatalf("model changed: %+v", back.Model)
	}
	// The descriptor must be enough to re-evaluate the model.
	rb, err := back.Basis.Build()
	if err != nil {
		t.Fatal(err)
	}
	y := []float64{0.5, -1, 0.25, 2}
	if got, want := back.Model.PredictPoint(rb, y), env.Model.PredictPoint(b, y); got != want {
		t.Fatalf("rebuilt prediction %g, want %g", got, want)
	}
}

func TestReadEnvelopeAcceptsLegacyForm(t *testing.T) {
	legacy := `{"m":10,"support":[2,7],"coef":[1.5,-2]}`
	env, err := ReadEnvelope(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if !env.Basis.IsZero() {
		t.Errorf("legacy model should have zero descriptor, got %+v", env.Basis)
	}
	if env.Model.M != 10 || len(env.Model.Support) != 2 {
		t.Fatalf("legacy model mangled: %+v", env.Model)
	}
	// WriteJSON (the legacy writer) must still round-trip through the new
	// reader.
	var buf bytes.Buffer
	if err := env.Model.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "version") {
		t.Fatalf("WriteJSON should emit the legacy layout, got %s", buf.String())
	}
	if _, err := ReadModelJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestEnvelopeRejectsInconsistent(t *testing.T) {
	cases := map[string]string{
		"basis/model size mismatch": `{"version":1,"m":10,"support":[1],"coef":[2],"basis":{"kind":"linear","dim":4}}`,
		"unknown basis kind":        `{"version":1,"m":5,"support":[],"coef":[],"basis":{"kind":"fourier","dim":4}}`,
		"future version":            `{"version":99,"m":5,"support":[],"coef":[]}`,
		"corrupt support":           `{"version":1,"m":5,"support":[9],"coef":[1],"basis":{"kind":"linear","dim":4}}`,
	}
	for name, in := range cases {
		if _, err := ReadEnvelope(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteEnvelopeValidates(t *testing.T) {
	env := &Envelope{
		Model: &Model{M: 3, Support: []int{0, 0}, Coef: []float64{1, 2}},
	}
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, env); err == nil {
		t.Fatal("expected duplicate-support error")
	}
}
