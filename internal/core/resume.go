package core

import (
	"fmt"

	"repro/internal/linalg"
)

// This file is the engine side of incremental refit: capturing an
// ActiveSet's state into a FitCheckpoint, restoring it exactly (including
// folding appended samples into the Gram factor as rank-one updates), and
// warm-replaying a previous model's support on new data. The per-solver
// files call these through three hooks — restore-or-replay before the path
// loop, checkpointAfter inside it, captureCheckpoint at every successful
// return — so each solver keeps only its own continuation extras.

// checkpointState captures the engine's common fit state. Solver-specific
// extras (LAR's beta, STAR's stack, StOMP's stage, CD's α) are layered on
// by the caller.
func (as *ActiveSet) checkpointState(path *Path) *FitCheckpoint {
	ck := &FitCheckpoint{
		Version:   CheckpointVersion,
		Solver:    as.cfg.solver,
		K:         as.k,
		M:         as.m,
		MaxLambda: as.maxLambda,
		Support:   append([]int(nil), as.support...),
		Residual:  append([]float64(nil), as.res...),
		Models:    append([]*Model(nil), path.Models...),
		ResNorms:  append([]float64(nil), path.Residual...),
	}
	for j, ex := range as.excluded {
		if ex {
			ck.Excluded = append(ck.Excluded, j)
		}
	}
	if as.cfg.gram {
		ck.GTF = append([]float64(nil), as.gtf...)
		ck.CholL = as.chol.Packed()
	}
	return ck
}

// captureCheckpoint fills the armed CheckpointPlan (if any) with the
// current state — called at every successful path return so After == 0
// plans capture the natural end of the fit. extra, when non-nil, stamps
// solver-specific continuation fields.
func captureCheckpoint(fc *FitContext, as *ActiveSet, path *Path, extra func(*FitCheckpoint)) {
	if fc == nil || fc.plan == nil {
		return
	}
	ck := as.checkpointState(path)
	if extra != nil {
		extra(ck)
	}
	fc.plan.CK = ck
}

// checkpointAfter implements CheckpointPlan.After: once the path holds that
// many recorded models, it captures the state and returns true, telling the
// solver to stop as if interrupted.
func checkpointAfter(fc *FitContext, as *ActiveSet, path *Path, extra func(*FitCheckpoint)) bool {
	if fc == nil || fc.plan == nil || fc.plan.After <= 0 || len(path.Models) < fc.plan.After {
		return false
	}
	captureCheckpoint(fc, as, path, extra)
	return true
}

// restore rebuilds the active set from an exact checkpoint taken by the
// same solver: the support is re-materialized from the design in admission
// order, the Gram factor round-trips through its packed triangle, and the
// residual/right-hand side are restored verbatim, so continuing the path
// is bit-identical to never having stopped.
//
// When the design has grown (len(f) > ck.K with rows [0, ck.K) unchanged —
// the streaming-refit contract), Gram-maintaining solvers fold each new
// row into the factor as a rank-one update, add its contribution to
// Gᵀ_Ω·F, refresh every recorded prefix model's coefficients through the
// leading sub-factor, and recompute the residual — the AppendRows path
// that makes warm refits cheap. Normalizing solvers (LAR) reject grown
// designs: appended rows change the column norms the whole path was
// measured in.
func (as *ActiveSet) restore(ck *FitCheckpoint, path *Path) error {
	if ck.M != as.m {
		return fmt.Errorf("core: %s resume: checkpoint dictionary %d, design has %d", as.cfg.solver, ck.M, as.m)
	}
	if ck.K > as.k {
		return fmt.Errorf("core: %s resume: checkpoint has %d samples, design only %d", as.cfg.solver, ck.K, as.k)
	}
	appended := as.k - ck.K
	if appended > 0 {
		if !as.cfg.gram || as.cfg.normalize {
			return fmt.Errorf("core: %s resume: solver cannot fold %d appended samples into a checkpointed fit", as.cfg.solver, appended)
		}
		if !ck.prefixModels() {
			return fmt.Errorf("core: %s resume: checkpoint path is not support-nested; cannot refresh prefix models", as.cfg.solver)
		}
	}
	if as.cfg.gram && (ck.GTF == nil || ck.CholL == nil) {
		return fmt.Errorf("core: %s resume: checkpoint carries no Gram state", as.cfg.solver)
	}
	for _, j := range ck.Excluded {
		as.excluded[j] = true
	}
	for _, j := range ck.Support {
		as.support = append(as.support, j)
		as.active[j] = true
		if as.cfg.gram {
			// Materialized columns serve RecomputeResidual, the equiangular
			// direction and the Gram row updates. STAR maintains no columns —
			// its step rule only ever touches the newest one.
			as.cols = append(as.cols, as.column(j))
		}
	}
	if as.cfg.gram {
		chol, err := linalg.CholeskyFromPacked(len(ck.Support), ck.CholL)
		if err != nil {
			return fmt.Errorf("core: %s resume: %w", as.cfg.solver, err)
		}
		as.chol = chol
		as.gtf = append(as.gtf[:0], ck.GTF...)
	}
	path.Models = append(path.Models, ck.Models...)
	path.Residual = append(path.Residual, ck.ResNorms...)

	if appended == 0 {
		copy(as.res, ck.Residual)
		return nil
	}

	// AppendRows: fold each new sample into the factor and right-hand side
	// as a rank-one update — O(Δk·λ²) against the O(K·λ²) refactorization —
	// then refresh the recorded path prefix on the enlarged data.
	n := len(as.support)
	v := make([]float64, n)
	for r := ck.K; r < as.k; r++ {
		for i, col := range as.cols {
			v[i] = col[r]
		}
		as.chol.Update(v)
		for i, col := range as.cols {
			as.gtf[i] += col[r] * as.f[r]
		}
	}
	for mi, m := range path.Models {
		li := len(m.Support)
		coef, err := as.chol.SolveLeading(li, as.gtf[:li])
		if err != nil {
			return fmt.Errorf("core: %s resume: prefix refit %d: %w", as.cfg.solver, li, err)
		}
		path.Models[mi] = &Model{M: as.m, Support: append([]int(nil), m.Support...), Coef: coef}
		path.Residual[mi] = as.prefixResidualNorm(li, coef)
	}
	if n > 0 {
		coef, err := as.RefitActive()
		if err != nil {
			return err
		}
		as.RecomputeResidual(coef)
	} else {
		copy(as.res, as.f)
	}
	return nil
}

// prefixResidualNorm computes ‖F − Σ_{i<li} coefᵢ·G_i‖₂ for a refreshed
// prefix model, using the scratch residual buffer transiently.
func (as *ActiveSet) prefixResidualNorm(li int, coef []float64) float64 {
	buf := append([]float64(nil), as.f...)
	for i := 0; i < li; i++ {
		linalg.Axpy(-coef[i], as.cols[i], buf)
	}
	return linalg.Norm2(buf)
}

// warmReplay re-admits a previous model's support in its original
// selection order — Gram append, coefficient refit, residual update and a
// recorded path model per step, but *no* correlation sweeps, which are the
// dominant cost of cold selection (O(K·M) per admitted basis). Valid on
// any data: the replay measures the inherited support against the current
// samples, so the resulting error curve is honest. Indices that are out of
// range, already active, or linearly dependent on the replayed prefix are
// skipped. Only Gram-maintaining solvers call this.
func warmReplay(fc *FitContext, as *ActiveSet, path *Path) error {
	ws := fc.warmStart()
	if ws == nil {
		return nil
	}
	if ws.M != as.m {
		return fmt.Errorf("core: %s warm start: model dictionary %d, design has %d", as.cfg.solver, ws.M, as.m)
	}
	for _, idx := range ws.Support {
		if as.Size() >= as.MaxLambda() {
			break
		}
		if err := as.Err(); err != nil {
			return err
		}
		if idx < 0 || idx >= as.m || as.active[idx] || as.excluded[idx] {
			continue
		}
		ok, err := as.TryAppend(idx)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		coef, err := as.RefitActive()
		if err != nil {
			return err
		}
		as.RecomputeResidual(coef)
		as.Record(path, coef, idx)
	}
	return nil
}
