package core

import (
	"fmt"
	"math"

	"repro/internal/basis"
	"repro/internal/linalg"
)

// CD solves the L1-relaxed problem by cyclic coordinate descent with soft
// thresholding (the "shooting" algorithm for the lasso):
//
//	minimize (1/2K)·‖G·α − F‖₂² + μ·‖α‖₁
//
// It walks a geometric grid of penalties from μ_max (all coefficients zero)
// downward with warm starts, recording a model each time the active-set size
// grows, which yields an (approximately nested) Path compatible with
// cross-validation. CD is an independent cross-check of the LAR solver: on
// the same μ the two must agree, which TestCDMatchesLassoLAR asserts.
//
// CD keeps its own working set (dense α, warm starts across the μ grid don't
// fit the ActiveSet's strictly growing support), but its full-dictionary
// correlation sweeps — the per-sweep Gᵀ·res scan and the μ_max computation —
// run through the engine's shared Correlator kernel, so CD picks up the
// parallel column-sharded sweep like every other solver.
type CD struct {
	// L2 adds an elastic-net ridge term (µ₂/2K)·‖α‖₂² to the objective:
	// the soft-threshold denominator becomes z_j + µ₂/K, which stabilizes
	// selection among strongly correlated basis vectors (groups enter
	// together instead of one arbitrary member). Zero gives the plain lasso.
	L2 float64
	// MaxSweeps bounds the coordinate sweeps per grid point (default 500).
	MaxSweeps int
	// Tol is the relative coordinate-update convergence threshold
	// (default 1e-9).
	Tol float64
	// GridPerDecade sets the μ grid density (default 25 points/decade).
	GridPerDecade int
	// Decades is the μ range below μ_max to explore (default 4).
	Decades int
	// Refit re-solves unpenalized least squares on each recorded support.
	Refit bool
}

// Name implements PathFitter.
func (c *CD) Name() string { return "CD" }

func (c *CD) sweeps() int {
	if c.MaxSweeps > 0 {
		return c.MaxSweeps
	}
	return 500
}

func (c *CD) tol() float64 {
	if c.Tol > 0 {
		return c.Tol
	}
	return 1e-9
}

func (c *CD) grid() float64 {
	per := c.GridPerDecade
	if per <= 0 {
		per = 25
	}
	return math.Pow(10, -1/float64(per))
}

func (c *CD) decades() int {
	if c.Decades > 0 {
		return c.Decades
	}
	return 4
}

// Fit runs the path until lambda active coefficients and returns the final
// model.
func (c *CD) Fit(d basis.Design, f []float64, lambda int) (*Model, error) {
	path, err := c.FitPath(d, f, lambda)
	if err != nil {
		return nil, err
	}
	return path.Models[len(path.Models)-1], nil
}

// FitLambda solves one lasso problem at a fixed penalty μ and returns the
// model (no path).
func (c *CD) FitLambda(d basis.Design, f []float64, mu float64) (*Model, error) {
	if err := checkProblem(d, f, 1); err != nil {
		return nil, err
	}
	if mu < 0 {
		return nil, fmt.Errorf("core: CD penalty μ=%g must be non-negative", mu)
	}
	st := newCDState(d, f, ResolveFitWorkers(0))
	st.l2 = c.L2 / float64(d.Rows())
	if err := st.solve(nil, mu, c.sweeps(), c.tol()); err != nil {
		return nil, err
	}
	return st.model(d, f, c.Refit), nil
}

// FitPath implements PathFitter.
func (c *CD) FitPath(d basis.Design, f []float64, maxLambda int) (*Path, error) {
	return c.FitPathCtx(nil, d, f, maxLambda)
}

// FitPathCtx implements ContextFitter: fc is polled once per coordinate
// sweep, the unit of work on the μ grid.
func (c *CD) FitPathCtx(fc *FitContext, d basis.Design, f []float64, maxLambda int) (*Path, error) {
	if err := checkProblem(d, f, maxLambda); err != nil {
		return nil, err
	}
	k := d.Rows()
	if maxLambda > k {
		maxLambda = k
	}
	if maxLambda > d.Cols() {
		maxLambda = d.Cols()
	}
	st := newCDState(d, f, fc.engine().Workers())
	st.l2 = c.L2 / float64(d.Rows())
	// μ_max: the smallest penalty at which every coefficient is zero. The
	// correlator's first sweep validates the result for NaN/Inf, so a
	// non-finite design or response entry surfaces here.
	corr, err := st.corr.Apply(nil, f)
	if err != nil {
		return nil, err
	}
	muMax := 0.0
	for j, v := range corr {
		if st.z[j] == 0 {
			continue
		}
		if a := math.Abs(v) / float64(k); a > muMax {
			muMax = a
		}
	}
	if muMax == 0 {
		return nil, errDegenerate("CD", "response is uncorrelated with every basis vector")
	}
	path := &Path{}
	muMin := muMax * math.Pow(10, -float64(c.decades()))
	lastNNZ := 0
	// Continuation: CD keeps its own working set, so it serializes the sparse
	// α, the residual and the grid position directly instead of the engine's
	// Gram state. Resume restarts the grid at the point after the checkpointed
	// one — the stored Mu is the accumulated product, so the continued grid is
	// bit-identical to the uninterrupted one. Appended samples are rejected
	// (the whole μ grid is scaled by 1/K) and warm starts are ignored: CD's
	// grid descent is already warm-started by construction.
	startMu := muMax * c.grid()
	doneMu := muMax
	if ck, err := fc.resumeFor("CD"); err != nil {
		return nil, err
	} else if ck != nil {
		if ck.M != d.Cols() {
			return nil, fmt.Errorf("core: CD resume: checkpoint dictionary %d, design has %d", ck.M, d.Cols())
		}
		if ck.K != k {
			return nil, fmt.Errorf("core: CD resume: checkpoint has %d samples, design has %d; grid resume needs identical data", ck.K, k)
		}
		for i, j := range ck.AlphaIdx {
			st.alpha[j] = ck.AlphaVal[i]
		}
		copy(st.res, ck.Residual)
		path.Models = append(path.Models, ck.Models...)
		path.Residual = append(path.Residual, ck.ResNorms...)
		lastNNZ = ck.LastNNZ
		doneMu = ck.Mu
		startMu = ck.Mu * c.grid()
	}
	capture := func() *FitCheckpoint {
		ck := &FitCheckpoint{
			Version:   CheckpointVersion,
			Solver:    "CD",
			K:         k,
			M:         d.Cols(),
			MaxLambda: maxLambda,
			Residual:  linalg.Clone(st.res),
			Models:    append([]*Model(nil), path.Models...),
			ResNorms:  append([]float64(nil), path.Residual...),
			Mu:        doneMu,
			LastNNZ:   lastNNZ,
		}
		for j, a := range st.alpha {
			if a != 0 {
				ck.AlphaIdx = append(ck.AlphaIdx, j)
				ck.AlphaVal = append(ck.AlphaVal, a)
			}
		}
		return ck
	}
	for mu := startMu; mu > muMin; mu *= c.grid() {
		if err := st.solve(fc, mu, c.sweeps(), c.tol()); err != nil {
			return nil, err
		}
		nnz := st.nnz()
		if nnz > maxLambda {
			break
		}
		doneMu = mu
		if nnz > lastNNZ {
			// Record one model per new sparsity level (duplicate the current
			// model when the active set grows by more than one).
			m := st.model(d, f, c.Refit)
			for lastNNZ < nnz {
				path.Models = append(path.Models, m)
				path.Residual = append(path.Residual, linalg.Norm2(st.res))
				lastNNZ++
			}
			fc.Observe(-1, nnz, linalg.Norm2(st.res)) // grid step: no single basis
			if fc != nil && fc.plan != nil && fc.plan.After > 0 && len(path.Models) >= fc.plan.After {
				fc.plan.CK = capture()
				return path, nil
			}
		}
	}
	if len(path.Models) == 0 {
		return nil, errDegenerate("CD", "selected no basis vectors; increase Decades")
	}
	if fc != nil && fc.plan != nil {
		fc.plan.CK = capture()
	}
	return path, nil
}

// cdState is the reusable coordinate-descent working set.
type cdState struct {
	d     basis.Design
	corr  *Correlator // engine sweep kernel for the full-dictionary Gᵀ·x scans
	k     int
	l2    float64 // elastic-net ridge term, already scaled by 1/K
	alpha []float64
	res   []float64 // F − G·α
	z     []float64 // (1/K)·‖G_j‖²
	// cols caches materialized columns for the coordinates that have ever
	// been active or updated, bounding repeated Column calls on lazy designs.
	cols map[int][]float64
}

func newCDState(d basis.Design, f []float64, workers int) *cdState {
	k := d.Rows()
	st := &cdState{
		d:     d,
		corr:  newCorrelator(d, workers),
		k:     k,
		alpha: make([]float64, d.Cols()),
		res:   linalg.Clone(f),
		z:     make([]float64, d.Cols()),
		cols:  make(map[int][]float64),
	}
	basis.SquaredColumnNorms(d, st.z)
	for j := range st.z {
		st.z[j] /= float64(k)
	}
	return st
}

func (st *cdState) column(j int) []float64 {
	if c, ok := st.cols[j]; ok {
		return c
	}
	c := st.d.Column(nil, j)
	st.cols[j] = c
	return c
}

// solve runs cyclic coordinate descent at penalty mu from the current warm
// start, polling fc once per sweep.
func (st *cdState) solve(fc *FitContext, mu float64, maxSweeps int, tol float64) error {
	m := len(st.alpha)
	kf := float64(st.k)
	corr := make([]float64, m)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if err := fc.Err(); err != nil {
			return fmt.Errorf("core: CD fit stopped: %w", err)
		}
		maxDelta := 0.0
		// A full sweep re-scans every coordinate; the correlation vector is
		// recomputed in one engine-kernel pass, then coordinates update
		// against the live residual.
		if _, err := st.corr.Apply(corr, st.res); err != nil {
			return err
		}
		for j := 0; j < m; j++ {
			if st.z[j] == 0 {
				continue
			}
			var rho float64
			if st.alpha[j] != 0 || math.Abs(corr[j])/kf > mu {
				col := st.column(j)
				rho = linalg.Dot(col, st.res)/kf + st.z[j]*st.alpha[j]
			} else {
				// Inactive and below threshold: stays zero.
				continue
			}
			var next float64
			den := st.z[j] + st.l2
			switch {
			case rho > mu:
				next = (rho - mu) / den
			case rho < -mu:
				next = (rho + mu) / den
			default:
				next = 0
			}
			if next != st.alpha[j] {
				delta := st.alpha[j] - next
				linalg.Axpy(delta, st.column(j), st.res)
				st.alpha[j] = next
				if a := math.Abs(delta) * math.Sqrt(st.z[j]); a > maxDelta {
					maxDelta = a
				}
			}
		}
		if maxDelta <= tol*(1+linalg.NormInf(st.alpha)) {
			return nil
		}
	}
	return nil
}

func (st *cdState) nnz() int {
	n := 0
	for _, a := range st.alpha {
		if a != 0 {
			n++
		}
	}
	return n
}

func (st *cdState) model(d basis.Design, f []float64, refit bool) *Model {
	var support []int
	var coef []float64
	for j, a := range st.alpha {
		if a != 0 {
			support = append(support, j)
			coef = append(coef, a)
		}
	}
	m := &Model{M: len(st.alpha), Support: support, Coef: coef}
	if refit && len(support) > 0 {
		if rc, err := refitOnSupport(d, f, support); err == nil {
			m.Coef = rc
		}
	}
	return m
}

var _ ContextFitter = (*CD)(nil)
