package core

import (
	"testing"

	"repro/internal/basis"
	"repro/internal/rng"
)

// The serving hot path is batched model evaluation: rsmd's predict endpoint
// fans a batch across workers that reuse per-worker Hermite scratch tables
// restricted to the support's variables. These benchmarks pin the baseline
// for later perf PRs: the naive single-point loop (PredictPoint re-derives
// every Hermite value per term) against PredictBatch, serial and at
// GOMAXPROCS workers.
//
// Two support shapes matter. "scattered" draws the support uniformly over
// the dictionary, so its terms touch most variables — the worst case for
// scratch reuse. "concentrated" confines the support to a few dominant
// variables, which is what the paper's fitted models actually look like
// (a handful of devices dominate each metric) and where the shared table
// pays off.
//
// Workload: quadratic basis over 50 variables (M = 1326), 20 non-zero
// coefficients, 1000-point batch — the shape of a busy predict request.

const (
	benchDim   = 50
	benchNNZ   = 20
	benchBatch = 1000
)

// concentratedModel builds a model whose support only references the first
// few variables.
func concentratedModel(dim, maxVar, nnz int, seed int64) (*Model, *basis.Basis) {
	b := basis.Quadratic(dim)
	src := rng.New(seed)
	var eligible []int
	for idx, t := range b.Terms {
		ok := true
		for _, vp := range t {
			if vp.Var >= maxVar {
				ok = false
				break
			}
		}
		if ok && t.Degree() > 0 {
			eligible = append(eligible, idx)
		}
	}
	perm := src.Perm(len(eligible))[:nnz]
	support := make([]int, nnz)
	coef := make([]float64, nnz)
	for i, p := range perm {
		support[i] = eligible[p]
		coef[i] = src.Norm()
	}
	return &Model{M: b.Size(), Support: support, Coef: coef}, b
}

func benchPoints(dim, n int, seed int64) [][]float64 {
	src := rng.New(seed)
	points := make([][]float64, n)
	for k := range points {
		points[k] = src.NormVec(nil, dim)
	}
	return points
}

// Fit-path benchmarks pin the solver engine at paper scale: a quadratic
// Hermite dictionary over 99 variables (M = 5050) against K = 500 Monte
// Carlo samples — the underdetermined regime of eq. (11) where the Gᵀ·res
// correlation sweep dominates every path iteration. The fixed sparsity
// budget keeps one benchmark iteration at λ sweeps, so ns/op tracks the
// engine's sweep cost across PRs.

const (
	fitBenchDim    = 99 // quadratic dictionary: M = 5050
	fitBenchK      = 500
	fitBenchLambda = 20
)

// fitBenchProblem builds the K×M benchmark problem once per process.
func fitBenchProblem(b *testing.B) (basis.Design, []float64) {
	b.Helper()
	dict := basis.Quadratic(fitBenchDim)
	src := rng.New(77)
	points := make([][]float64, fitBenchK)
	for k := range points {
		points[k] = src.NormVec(nil, fitBenchDim)
	}
	// Sparse ground truth over 12 scattered bases plus mild noise.
	support := src.Perm(dict.Size())[:12]
	coef := src.NormVec(nil, 12)
	d := basis.NewDenseDesign(dict, points)
	truth := &Model{M: dict.Size(), Support: support, Coef: coef}
	f := truth.Predict(d)
	for i := range f {
		f[i] += 0.01 * src.Norm()
	}
	return d, f
}

func benchFitPath(b *testing.B, fitter PathFitter) {
	d, f := fitBenchProblem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fitter.FitPath(d, f, fitBenchLambda); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitPathOMP(b *testing.B)  { benchFitPath(b, &OMP{}) }
func BenchmarkFitPathLAR(b *testing.B)  { benchFitPath(b, &LAR{}) }
func BenchmarkFitPathSTAR(b *testing.B) { benchFitPath(b, &STAR{}) }

// BenchmarkCorrelateSweep isolates the engine's Gᵀ·x kernel on the same
// K×M problem: the serial column-major sweep against the goroutine-sharded
// parallel one (GOMAXPROCS workers). On a single-core host the two coincide;
// the parallel gain shows on ≥2 cores.
func BenchmarkCorrelateSweep(b *testing.B) {
	d, f := fitBenchProblem(b)
	cm := basis.NewColMajor(d)
	dst := make([]float64, cm.Cols())
	b.Run("serial", func(b *testing.B) {
		c := newCorrelator(cm, 1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.Apply(dst, f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		c := newCorrelator(cm, ResolveFitWorkers(0))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.Apply(dst, f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkPredictHotPath(b *testing.B) {
	scattered, dict, _ := randomModelAndPoints(benchDim, benchNNZ, 1, 42)
	concentrated, _ := concentratedModel(benchDim, 8, benchNNZ, 42)
	points := benchPoints(benchDim, benchBatch, 43)
	out := make([]float64, benchBatch)

	shapes := []struct {
		name  string
		model *Model
	}{
		{"scattered", scattered},
		{"concentrated", concentrated},
	}
	for _, shape := range shapes {
		m := shape.model
		b.Run("single-point/"+shape.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for k, y := range points {
					out[k] = m.PredictPoint(dict, y)
				}
			}
		})
		b.Run("batch-serial/"+shape.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.PredictBatch(dict, out, points, 1)
			}
		})
		b.Run("batch-parallel/"+shape.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.PredictBatch(dict, out, points, 0)
			}
		})
	}
}
