package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/basis"
)

func TestModelGradientFiniteDifference(t *testing.T) {
	b := basis.Quadratic(5)
	m := &Model{
		M:       b.Size(),
		Support: []int{0, 2, 7, 12},
		Coef:    []float64{1.5, -2, 0.7, 1.1},
	}
	r := rand.New(rand.NewSource(44))
	const h = 1e-6
	y := make([]float64, 5)
	for trial := 0; trial < 20; trial++ {
		for i := range y {
			y[i] = r.NormFloat64()
		}
		grad := m.Gradient(b, nil, y)
		for v := 0; v < 5; v++ {
			yp := append([]float64(nil), y...)
			ym := append([]float64(nil), y...)
			yp[v] += h
			ym[v] -= h
			fd := (m.PredictPoint(b, yp) - m.PredictPoint(b, ym)) / (2 * h)
			if math.Abs(grad[v]-fd) > 1e-5*(1+math.Abs(fd)) {
				t.Errorf("∂f/∂y%d = %g, finite difference %g", v, grad[v], fd)
			}
		}
	}
}

func TestModelGradientLinearModel(t *testing.T) {
	// For a linear model the gradient is the coefficient vector everywhere.
	b := basis.Linear(4)
	m := &Model{M: b.Size(), Support: []int{1, 3}, Coef: []float64{2, -0.5}}
	grad := m.Gradient(b, nil, []float64{9, 9, 9, 9})
	want := []float64{2, 0, -0.5, 0}
	for i := range want {
		if math.Abs(grad[i]-want[i]) > 1e-14 {
			t.Errorf("grad[%d] = %g, want %g", i, grad[i], want[i])
		}
	}
}

func TestModelGradientValidation(t *testing.T) {
	b := basis.Linear(3)
	m := &Model{M: 99}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Gradient(b, nil, []float64{1, 2, 3})
}
