package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// modelJSON is the stable on-disk form of a fitted model.
type modelJSON struct {
	// M is the dictionary size the model was fit against.
	M int `json:"m"`
	// Support and Coef are the sparse coefficients, aligned.
	Support []int     `json:"support"`
	Coef    []float64 `json:"coef"`
}

// WriteJSON serializes the model so it can be reused without refitting
// (e.g. by a yield flow running long after the expensive sampling).
func (m *Model) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(modelJSON{M: m.M, Support: m.Support, Coef: m.Coef})
}

// ReadModelJSON parses a model written by WriteJSON and validates its
// internal consistency.
func ReadModelJSON(r io.Reader) (*Model, error) {
	var mj modelJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&mj); err != nil {
		return nil, fmt.Errorf("core: decode model: %w", err)
	}
	if len(mj.Support) != len(mj.Coef) {
		return nil, fmt.Errorf("core: model has %d support entries but %d coefficients", len(mj.Support), len(mj.Coef))
	}
	if mj.M <= 0 {
		return nil, fmt.Errorf("core: model dictionary size %d invalid", mj.M)
	}
	seen := make(map[int]bool, len(mj.Support))
	for _, s := range mj.Support {
		if s < 0 || s >= mj.M {
			return nil, fmt.Errorf("core: support index %d outside [0, %d)", s, mj.M)
		}
		if seen[s] {
			return nil, fmt.Errorf("core: duplicate support index %d", s)
		}
		seen[s] = true
	}
	return &Model{M: mj.M, Support: mj.Support, Coef: mj.Coef}, nil
}
