package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/basis"
)

// EnvelopeVersion is the current on-disk model format version.
const EnvelopeVersion = 1

// Provenance records how a model was fit — enough to audit a stored model
// and to reproduce the fit. All fields are optional.
type Provenance struct {
	// Solver names the path fitter (OMP, LAR, …).
	Solver string `json:"solver,omitempty"`
	// Lambda is the selected sparsity level ‖α‖₀.
	Lambda int `json:"lambda,omitempty"`
	// CVError is the cross-validation relative RMS error at Lambda.
	CVError float64 `json:"cv_error,omitempty"`
	// Folds is the cross-validation fold count (0 when λ was fixed).
	Folds int `json:"folds,omitempty"`
	// Samples is the training sample count K.
	Samples int `json:"samples,omitempty"`
	// Metric names the modeled response column.
	Metric string `json:"metric,omitempty"`
	// Source names the producer ("pipeline" for server-side netlist jobs,
	// empty for uploaded models).
	Source string `json:"source,omitempty"`
	// Pipeline carries end-to-end pipeline provenance when Source is
	// "pipeline". A pointer keeps Provenance comparable (and the
	// WriteEnvelope emptiness guard meaningful).
	Pipeline *PipelineProvenance `json:"pipeline,omitempty"`
	// Refine links a model version produced by incremental refit to its
	// parent version. Nil for models fit from scratch.
	Refine *RefineProvenance `json:"refine,omitempty"`
}

// RefineProvenance records how a refined model version relates to the
// version it continued from: which parent, at what error, how many samples
// arrived, and whether the fit was warm-continued or fell back to cold.
type RefineProvenance struct {
	// ParentVersion is the registry version the refit continued from.
	ParentVersion int `json:"parent_version"`
	// ParentCVError is the parent's cross-validation error — the publish
	// gate the refined model had to beat.
	ParentCVError float64 `json:"parent_cv_error,omitempty"`
	// AppendedSamples is how many new samples the refit folded in.
	AppendedSamples int `json:"appended_samples,omitempty"`
	// Warm reports whether the fit reused the parent's checkpointed state
	// (false = the solver does not support continuation and refit cold).
	Warm bool `json:"warm,omitempty"`
}

// PipelineProvenance records how a server-side pipeline job produced a
// model: the exact netlist, the measured response, the sampling mode, and
// the simulate-vs-fit cost split (the paper's Table III breakdown).
type PipelineProvenance struct {
	// NetlistSHA256 is the hex SHA-256 of the submitted netlist text.
	NetlistSHA256 string `json:"netlist_sha256,omitempty"`
	// Measure describes the extracted response (e.g. "tran_delay(out)").
	Measure string `json:"measure,omitempty"`
	// Mode is the sampling mode: "mc" or "adaptive".
	Mode string `json:"mode,omitempty"`
	// Rounds is the adaptive-loop round count (0 for plain MC).
	Rounds int `json:"rounds,omitempty"`
	// Converged reports whether adaptive sampling stopped by its accuracy
	// criterion rather than the budget.
	Converged bool `json:"converged,omitempty"`
	// SimSeconds and FitSeconds split the job's wall-clock cost.
	SimSeconds float64 `json:"sim_seconds,omitempty"`
	FitSeconds float64 `json:"fit_seconds,omitempty"`
	// Trials lists the per-solver cross-validation errors of the selection
	// stage, keyed by solver name.
	Trials map[string]float64 `json:"trials,omitempty"`
	// RecoveryAttempt, when > 0, marks a model produced by a crash-recovery
	// re-run: the job had been started that many times by previous daemon
	// processes before the run that published this model.
	RecoveryAttempt int `json:"recovery_attempt,omitempty"`
}

// Envelope is the versioned serialized form of a fitted model: the sparse
// coefficients plus the basis descriptor needed to re-evaluate it and the
// fit provenance. It is the unit stored by the model registry and shipped
// over the rsmd wire protocol.
type Envelope struct {
	// Model is the fitted sparse model.
	Model *Model
	// Basis describes the dictionary the model was fit against. Zero for
	// legacy files that predate the envelope (such models cannot be
	// re-evaluated without out-of-band basis knowledge).
	Basis basis.Descriptor
	// Prov is the optional fit provenance.
	Prov Provenance
}

// envelopeJSON is the on-disk form. Version 0 (absent) is the legacy
// model-only layout {m, support, coef}; version 1 adds basis + provenance.
type envelopeJSON struct {
	Version int               `json:"version,omitempty"`
	M       int               `json:"m"`
	Support []int             `json:"support"`
	Coef    []float64         `json:"coef"`
	Basis   *basis.Descriptor `json:"basis,omitempty"`
	Prov    *Provenance       `json:"provenance,omitempty"`
}

// Validate checks the envelope's internal consistency: a well-formed model,
// and (when a basis descriptor is present) agreement between the model's
// dictionary size and the size implied by the descriptor.
func (e *Envelope) Validate() error {
	if e.Model == nil {
		return fmt.Errorf("core: envelope has no model")
	}
	if err := validateModel(e.Model); err != nil {
		return err
	}
	if !e.Basis.IsZero() {
		if err := e.Basis.Validate(); err != nil {
			return err
		}
		if sz := e.Basis.Size(); sz != e.Model.M {
			return fmt.Errorf("core: basis %s has %d functions but model dictionary is %d", e.Basis, sz, e.Model.M)
		}
	}
	return nil
}

// WriteEnvelope serializes the envelope in the current versioned format.
func WriteEnvelope(w io.Writer, e *Envelope) error {
	if err := e.Validate(); err != nil {
		return err
	}
	ej := envelopeJSON{
		Version: EnvelopeVersion,
		M:       e.Model.M,
		Support: e.Model.Support,
		Coef:    e.Model.Coef,
	}
	if !e.Basis.IsZero() {
		d := e.Basis
		ej.Basis = &d
	}
	if e.Prov != (Provenance{}) {
		p := e.Prov
		ej.Prov = &p
	}
	return json.NewEncoder(w).Encode(ej)
}

// ReadEnvelope parses a serialized model in either the current versioned
// format or the legacy un-versioned {m, support, coef} form, validating its
// internal consistency.
func ReadEnvelope(r io.Reader) (*Envelope, error) {
	var ej envelopeJSON
	if err := json.NewDecoder(r).Decode(&ej); err != nil {
		return nil, fmt.Errorf("core: decode model: %w", err)
	}
	if ej.Version > EnvelopeVersion {
		return nil, fmt.Errorf("core: model format version %d is newer than supported %d", ej.Version, EnvelopeVersion)
	}
	e := &Envelope{Model: &Model{M: ej.M, Support: ej.Support, Coef: ej.Coef}}
	if e.Model.Support == nil {
		e.Model.Support = []int{}
	}
	if e.Model.Coef == nil {
		e.Model.Coef = []float64{}
	}
	if ej.Basis != nil {
		e.Basis = *ej.Basis
	}
	if ej.Prov != nil {
		e.Prov = *ej.Prov
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

// WriteJSON serializes the model so it can be reused without refitting
// (e.g. by a yield flow running long after the expensive sampling). It emits
// the legacy model-only layout; prefer WriteEnvelope, which also records the
// basis descriptor and provenance.
func (m *Model) WriteJSON(w io.Writer) error {
	if err := validateModel(m); err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(envelopeJSON{M: m.M, Support: m.Support, Coef: m.Coef})
}

// ReadModelJSON parses a model written by WriteJSON or WriteEnvelope and
// validates its internal consistency, discarding any basis/provenance
// metadata.
func ReadModelJSON(r io.Reader) (*Model, error) {
	e, err := ReadEnvelope(r)
	if err != nil {
		return nil, err
	}
	return e.Model, nil
}

// validateModel checks the sparse coefficient structure.
func validateModel(m *Model) error {
	if len(m.Support) != len(m.Coef) {
		return fmt.Errorf("core: model has %d support entries but %d coefficients", len(m.Support), len(m.Coef))
	}
	if m.M <= 0 {
		return fmt.Errorf("core: model dictionary size %d invalid", m.M)
	}
	seen := make(map[int]bool, len(m.Support))
	for _, s := range m.Support {
		if s < 0 || s >= m.M {
			return fmt.Errorf("core: support index %d outside [0, %d)", s, m.M)
		}
		if seen[s] {
			return fmt.Errorf("core: duplicate support index %d", s)
		}
		seen[s] = true
	}
	return nil
}
