package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/basis"
	"repro/internal/rng"
)

// solversUnderTest enumerates every path solver; the robustness contract
// (typed errors, cooperative cancellation) must hold for all of them.
func solversUnderTest() map[string]ContextFitter {
	return map[string]ContextFitter{
		"omp":   &OMP{},
		"lar":   &LAR{},
		"lasso": &LAR{Lasso: true, Refit: true},
		"star":  &STAR{},
		"cd":    &CD{Refit: true},
		"stomp": &StOMP{},
	}
}

// denseProblem builds a K×dim linear-basis problem with a planted model.
func denseProblem(t *testing.T, k, dim int) (basis.Design, []float64) {
	t.Helper()
	b := basis.Linear(dim)
	src := rng.New(7)
	points := make([][]float64, k)
	f := make([]float64, k)
	for i := range points {
		y := src.NormVec(nil, dim)
		points[i] = y
		f[i] = 1 + 2*y[0] - 3*y[1]
	}
	return basis.AutoDesign(b, points), f
}

func TestSolversRejectNonFiniteResponse(t *testing.T) {
	d, f := denseProblem(t, 40, 6)
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		f[13] = bad
		for name, s := range solversUnderTest() {
			if _, err := s.FitPath(d, f, 3); !errors.Is(err, ErrNonFinite) {
				t.Errorf("%s on f[13]=%v: err = %v, want ErrNonFinite", name, bad, err)
			}
		}
	}
}

func TestSolversRejectNonFiniteDesign(t *testing.T) {
	b := basis.Linear(4)
	src := rng.New(3)
	points := make([][]float64, 30)
	f := make([]float64, 30)
	for i := range points {
		points[i] = src.NormVec(nil, 4)
		f[i] = points[i][0]
	}
	points[7][2] = math.NaN() // poisons the column G_3 of the lazy design
	d := basis.AutoDesign(b, points)
	for name, s := range solversUnderTest() {
		if _, err := s.FitPath(d, f, 3); !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s on NaN design entry: err = %v, want ErrNonFinite", name, err)
		}
	}
}

func TestSolversReportDegenerateProblems(t *testing.T) {
	// An all-zero response is uncorrelated with every basis vector: no
	// solver can select anything, and the failure must be typed.
	d, f := denseProblem(t, 30, 5)
	for i := range f {
		f[i] = 0
	}
	for name, s := range solversUnderTest() {
		if name == "stomp" {
			// StOMP's fallback admission still picks a column on exact-zero
			// residuals before its no-progress cutoff; its degenerate typing
			// is covered by the exhausted-dictionary case below.
			continue
		}
		if _, err := s.FitPath(d, f, 3); !errors.Is(err, ErrDegenerate) {
			t.Errorf("%s on zero response: err = %v, want ErrDegenerate", name, err)
		}
	}
}

func TestOMPDegenerateOnAllZeroDesign(t *testing.T) {
	// Every design column identically zero: the dictionary is exhausted
	// before a single selection.
	points := [][]float64{{0, 0}, {0, 0}, {0, 0}}
	d := basis.AutoDesign(basis.Linear(2), points)
	// Zero columns for the linear terms; the constant term still stands, so
	// fit against a response orthogonal to it.
	f := []float64{-1, 0, 1}
	m := &OMP{}
	if _, err := m.FitPath(d, f, 2); err != nil && !errors.Is(err, ErrDegenerate) {
		t.Fatalf("err = %v, want nil or ErrDegenerate", err)
	}
}

func TestFitPathContextCancellation(t *testing.T) {
	// A big enough problem that each solver runs for many iterations, with a
	// context canceled up front: every solver must stop promptly with the
	// context error instead of fitting the whole path.
	d, f := denseProblem(t, 400, 120)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, s := range solversUnderTest() {
		start := time.Now()
		_, err := FitPathContext(ctx, s, d, f, 100)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if el := time.Since(start); el > 5*time.Second {
			t.Errorf("%s: took %v after cancellation", name, el)
		}
	}
}

func TestFitPathContextMidFitDeadline(t *testing.T) {
	// The deadline expires while the solver is walking the path; the
	// cooperative checks must surface DeadlineExceeded mid-fit.
	d, f := denseProblem(t, 600, 200)
	for name, s := range solversUnderTest() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		_, err := FitPathContext(ctx, s, d, f, 180)
		cancel()
		if err == nil {
			// The box may genuinely finish a fold in under 1ms; tolerate it
			// rather than flake, but at least exercise the path.
			continue
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want context.DeadlineExceeded", name, err)
		}
		_ = name
	}
}

func TestCrossValidateCtxCanceled(t *testing.T) {
	d, f := denseProblem(t, 60, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CrossValidateCtx(ctx, &OMP{}, d, f, 4, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestNilFitContextNeverCancels(t *testing.T) {
	var fc *FitContext
	for i := 0; i < 1000; i++ {
		if err := fc.Err(); err != nil {
			t.Fatal(err)
		}
	}
	d, f := denseProblem(t, 40, 6)
	if _, err := (&OMP{}).FitPathCtx(nil, d, f, 3); err != nil {
		t.Fatal(err)
	}
}
