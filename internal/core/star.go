package core

import (
	"fmt"
	"math"

	"repro/internal/basis"
	"repro/internal/linalg"
)

// STAR is the statistical regression solver of DAC'08 [1], implemented as
// described in Section V of the paper: it applies the same inner-product
// selection criterion as OMP, but "directly uses the inner product in (18)
// to determine the model coefficient of the selected basis function at each
// iteration step" — i.e. matching pursuit without the least-squares re-fit.
//
// Because the coefficient of the selected basis is the plain estimator
// ξ_s = (1/K)·G_sᵀ·Res, earlier coefficients are never revisited, which is
// exactly the weakness the paper's OMP addresses (and the source of STAR's
// larger modeling error in Figs. 4 and Tables II/IV).
type STAR struct {
	// Tol stops the path early once the relative residual falls below it.
	Tol float64
}

// Name implements PathFitter.
func (s *STAR) Name() string { return "STAR" }

// Fit runs STAR for a fixed sparsity budget λ.
func (s *STAR) Fit(d basis.Design, f []float64, lambda int) (*Model, error) {
	path, err := s.FitPath(d, f, lambda)
	if err != nil {
		return nil, err
	}
	return path.Models[len(path.Models)-1], nil
}

// FitPath implements PathFitter.
func (s *STAR) FitPath(d basis.Design, f []float64, maxLambda int) (*Path, error) {
	return s.FitPathCtx(nil, d, f, maxLambda)
}

// FitPathCtx implements ContextFitter.
func (s *STAR) FitPathCtx(fc *FitContext, d basis.Design, f []float64, maxLambda int) (*Path, error) {
	if err := checkProblem(d, f, maxLambda); err != nil {
		return nil, err
	}
	k, m := d.Rows(), d.Cols()
	if maxLambda > m {
		maxLambda = m
	}
	fNorm := linalg.Norm2(f)
	res := linalg.Clone(f)
	xi := make([]float64, m)
	used := make([]bool, m)
	col := make([]float64, k)

	var support []int
	var coef []float64
	path := &Path{}

	for len(support) < maxLambda {
		if err := fc.Err(); err != nil {
			return nil, fmt.Errorf("core: STAR fit stopped: %w", err)
		}
		d.MulTransVec(xi, res)
		if len(support) == 0 {
			if err := checkFiniteVec("design correlation", xi); err != nil {
				return nil, err
			}
		}
		sel := argmaxAbsExcluding(xi, used)
		if sel != -1 && math.Abs(xi[sel]) <= degenEps*(1+fNorm) {
			sel = -1 // residual uncorrelated with every remaining basis
		}
		if sel == -1 {
			if len(support) == 0 {
				return nil, errDegenerate("STAR", "could not select any basis vector")
			}
			return path, nil
		}
		used[sel] = true
		// Coefficient straight from the inner-product estimator (eq. 18):
		// α_s = (1/K)·G_sᵀ·Res.
		alpha := xi[sel] / float64(k)
		d.Column(col, sel)
		linalg.Axpy(-alpha, col, res)

		support = append(support, sel)
		coef = append(coef, alpha)
		model := &Model{
			M:       m,
			Support: append([]int(nil), support...),
			Coef:    append([]float64(nil), coef...),
		}
		path.Models = append(path.Models, model)
		path.Residual = append(path.Residual, linalg.Norm2(res))
		fc.Observe(sel, len(support), path.Residual[len(path.Residual)-1])

		if s.Tol > 0 && fNorm > 0 && linalg.Norm2(res) <= s.Tol*fNorm {
			break
		}
	}
	return path, nil
}

var _ ContextFitter = (*STAR)(nil)
