package core

import (
	"repro/internal/basis"
	"repro/internal/linalg"
)

// STAR is the statistical regression solver of DAC'08 [1], implemented as
// described in Section V of the paper: it applies the same inner-product
// selection criterion as OMP, but "directly uses the inner product in (18)
// to determine the model coefficient of the selected basis function at each
// iteration step" — i.e. matching pursuit without the least-squares re-fit.
//
// Because the coefficient of the selected basis is the plain estimator
// ξ_s = (1/K)·G_sᵀ·Res, earlier coefficients are never revisited, which is
// exactly the weakness the paper's OMP addresses (and the source of STAR's
// larger modeling error in Figs. 4 and Tables II/IV).
//
// As an engine strategy, STAR is the degenerate case: correlate + select
// from the shared ActiveSet, no Gram factor, and a one-column residual
// update as its step rule.
type STAR struct {
	// Tol stops the path early once the relative residual falls below it.
	Tol float64
}

// Name implements PathFitter.
func (s *STAR) Name() string { return "STAR" }

// Fit runs STAR for a fixed sparsity budget λ.
func (s *STAR) Fit(d basis.Design, f []float64, lambda int) (*Model, error) {
	path, err := s.FitPath(d, f, lambda)
	if err != nil {
		return nil, err
	}
	return path.Models[len(path.Models)-1], nil
}

// FitPath implements PathFitter.
func (s *STAR) FitPath(d basis.Design, f []float64, maxLambda int) (*Path, error) {
	return s.FitPathCtx(nil, d, f, maxLambda)
}

// FitPathCtx implements ContextFitter.
func (s *STAR) FitPathCtx(fc *FitContext, d basis.Design, f []float64, maxLambda int) (*Path, error) {
	as, err := newActiveSet(fc, d, f, maxLambda, activeSetConfig{solver: "STAR"})
	if err != nil {
		return nil, err
	}
	var coef []float64
	path := &Path{}
	// STAR's continuation extra is its running coefficient stack — the
	// inner-product estimates are never revisited, so the stack plus the
	// residual is the entire fit state. Appended samples are rejected by
	// restore (no Gram factor to fold them into) and warm starts are
	// meaningless here: replaying a support without sweeps would need a
	// residual-driven coefficient anyway.
	if ck, err := fc.resumeFor("STAR"); err != nil {
		return nil, err
	} else if ck != nil {
		if err := as.restore(ck, path); err != nil {
			return nil, err
		}
		coef = append(coef, ck.Coef...)
	}
	capture := func(ck *FitCheckpoint) {
		ck.Coef = append([]float64(nil), coef...)
	}
	for as.Size() < as.MaxLambda() {
		if err := as.Err(); err != nil {
			return nil, err
		}
		xi, err := as.CorrelateResidual()
		if err != nil {
			return nil, err
		}
		sel := as.SelectMostCorrelated(xi)
		if sel == -1 {
			if as.Size() == 0 {
				return nil, as.errDegenerateNoSelection()
			}
			captureCheckpoint(fc, as, path, capture)
			return path, nil // residual uncorrelated with every remaining basis
		}
		// Coefficient straight from the inner-product estimator (eq. 18):
		// α_s = (1/K)·G_sᵀ·Res — no re-fit, so no Gram bookkeeping.
		alpha := xi[sel] / float64(as.k)
		col := as.AppendFree(sel)
		linalg.Axpy(-alpha, col, as.res)

		coef = append(coef, alpha)
		as.Record(path, append([]float64(nil), coef...), sel)
		if checkpointAfter(fc, as, path, capture) {
			return path, nil
		}
		if as.BelowTol(s.Tol) {
			break
		}
	}
	captureCheckpoint(fc, as, path, capture)
	return path, nil
}

var _ ContextFitter = (*STAR)(nil)
