package core

import (
	"fmt"
	"math"

	"repro/internal/basis"
	"repro/internal/linalg"
)

// Criterion is an information criterion for sparsity selection — a cheaper
// alternative to cross-validation that needs only one path fit.
type Criterion int

// Supported criteria.
const (
	// BIC is the Bayesian information criterion K·ln(RSS/K) + p·ln(K).
	BIC Criterion = iota
	// AIC is the Akaike information criterion K·ln(RSS/K) + 2p.
	AIC
)

// String names the criterion.
func (c Criterion) String() string {
	switch c {
	case BIC:
		return "BIC"
	case AIC:
		return "AIC"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// SelectResult reports an information-criterion sparsity selection.
type SelectResult struct {
	// Scores[λ-1] is the criterion value of the λ-sparse path model.
	Scores []float64
	// BestLambda minimizes the criterion.
	BestLambda int
	// Model is the selected path model.
	Model *Model
}

// SelectIC fits one solver path and picks the sparsity minimizing the given
// information criterion. Compared to CrossValidate it trains on all data and
// fits only once, at the cost of relying on the asymptotic penalty rather
// than held-out measurement; on small sample sets CV is the safer choice
// (which is why the paper uses it), but BIC gives a fast, deterministic
// alternative when samples are very expensive.
func SelectIC(fitter PathFitter, d basis.Design, f []float64, maxLambda int, crit Criterion) (*SelectResult, error) {
	if err := checkProblem(d, f, maxLambda); err != nil {
		return nil, err
	}
	path, err := fitter.FitPath(d, f, maxLambda)
	if err != nil {
		return nil, err
	}
	k := float64(d.Rows())
	res := &SelectResult{Scores: make([]float64, path.Len())}
	best, bestScore := 0, math.Inf(1)
	for i, m := range path.Models {
		var rss float64
		if i < len(path.Residual) {
			rss = path.Residual[i] * path.Residual[i]
		} else {
			r := linalg.Sub(nil, m.Predict(d), f)
			rss = linalg.Dot(r, r)
		}
		if rss < 1e-300 {
			rss = 1e-300 // guard the logarithm on exact fits
		}
		p := float64(m.NNZ())
		var score float64
		switch crit {
		case BIC:
			score = k*math.Log(rss/k) + p*math.Log(k)
		case AIC:
			score = k*math.Log(rss/k) + 2*p
		default:
			return nil, fmt.Errorf("core: unknown criterion %v", crit)
		}
		res.Scores[i] = score
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	res.BestLambda = best + 1
	res.Model = path.Models[best]
	return res, nil
}
