package core

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestStOMPRecoversSparseSupport(t *testing.T) {
	support := []int{6, 23, 48, 71}
	coefs := []float64{3, -2, 1.5, 1}
	_, d, f, alpha := synthProblem(90, 80, 120, false, support, coefs, 0)
	model, err := (&StOMP{}).Fit(d, f, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, s := range model.Support {
		got[s] = true
	}
	for _, s := range support {
		if !got[s] {
			t.Errorf("true basis %d missing from %v", s, model.Support)
		}
	}
	dense := model.Dense()
	for _, s := range support {
		if math.Abs(dense[s]-alpha[s]) > 0.05 {
			t.Errorf("α[%d] = %g, want %g", s, dense[s], alpha[s])
		}
	}
}

func TestStOMPFewerStagesThanOMPIterations(t *testing.T) {
	// The point of StOMP: a 10-sparse recovery takes OMP 10 Gᵀ·res passes
	// but StOMP only a few stages.
	support := []int{2, 9, 17, 25, 33, 41, 49, 57, 65, 73}
	coefs := make([]float64, 10)
	for i := range coefs {
		coefs[i] = 1 + float64(i%3)
	}
	_, d, f, _ := synthProblem(91, 80, 200, false, support, coefs, 0.01)
	path, err := (&StOMP{}).FitPath(d, f, 20)
	if err != nil {
		t.Fatal(err)
	}
	if path.Len() > 5 {
		t.Errorf("StOMP used %d stages for a 10-sparse signal, want ≤ 5", path.Len())
	}
	final := path.Models[path.Len()-1]
	got := map[int]bool{}
	for _, s := range final.Support {
		got[s] = true
	}
	for _, s := range support {
		if !got[s] {
			t.Errorf("true basis %d missing", s)
		}
	}
}

func TestStOMPResidualDecreases(t *testing.T) {
	_, d, f, _ := synthProblem(92, 40, 90, false, []int{3, 12, 22}, []float64{2, -1, 1}, 0.1)
	path, err := (&StOMP{}).FitPath(d, f, 15)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < path.Len(); i++ {
		if path.Residual[i] > path.Residual[i-1]+1e-12 {
			t.Errorf("residual rose at stage %d", i)
		}
	}
}

func TestStOMPRespectsLambdaCap(t *testing.T) {
	_, d, f, _ := synthProblem(93, 50, 80, false, []int{1, 5, 9, 13}, []float64{1, 1, 1, 1}, 0.3)
	model, err := (&StOMP{Threshold: 0.5}).Fit(d, f, 6) // low threshold admits many
	if err != nil {
		t.Fatal(err)
	}
	if model.NNZ() > 6 {
		t.Errorf("NNZ = %d exceeds λ=6", model.NNZ())
	}
}

func TestStOMPGeneralizationComparableToOMP(t *testing.T) {
	support := []int{4, 18, 39}
	coefs := []float64{2, -1.5, 1}
	_, dTrain, fTrain, _ := synthProblem(94, 60, 150, false, support, coefs, 0.05)
	_, dTest, fTest, _ := synthProblem(95, 60, 1500, false, support, coefs, 0)
	st, err := (&StOMP{}).Fit(dTrain, fTrain, 10)
	if err != nil {
		t.Fatal(err)
	}
	om, err := (&OMP{}).Fit(dTrain, fTrain, 3)
	if err != nil {
		t.Fatal(err)
	}
	eSt := stats.RelativeRMSError(st.Predict(dTest), fTest)
	eOm := stats.RelativeRMSError(om.Predict(dTest), fTest)
	if eSt > 3*eOm+0.02 {
		t.Errorf("StOMP error %g much worse than OMP %g", eSt, eOm)
	}
}

func TestStOMPInCrossValidation(t *testing.T) {
	_, d, f, _ := synthProblem(96, 30, 100, false, []int{2, 11}, []float64{2, -1}, 0.05)
	res, err := CrossValidate(&StOMP{}, d, f, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, s := range res.Model.Support {
		got[s] = true
	}
	if !got[2] || !got[11] {
		t.Errorf("CV-StOMP support %v misses the truth", res.Model.Support)
	}
}

func TestStOMPValidation(t *testing.T) {
	_, d, f, _ := synthProblem(97, 10, 20, false, []int{0}, []float64{1}, 0)
	if _, err := (&StOMP{}).FitPath(d, f, 0); err == nil {
		t.Error("maxLambda=0 must error")
	}
}
