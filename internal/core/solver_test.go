package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/basis"
	"repro/internal/linalg"
	"repro/internal/stats"
)

func TestSTARCoefficientIsInnerProduct(t *testing.T) {
	// STAR's first coefficient must equal ρ_s = (1/K)·G_sᵀ·F exactly
	// (eq. 14/18), with s the most correlated basis vector.
	_, d, f, _ := synthProblem(60, 20, 40, false, []int{5}, []float64{2}, 0.1)
	path, err := (&STAR{}).FitPath(d, f, 1)
	if err != nil {
		t.Fatal(err)
	}
	model := path.Models[0]
	s := model.Support[0]
	col := d.Column(nil, s)
	rho := linalg.Dot(col, f) / float64(d.Rows())
	if math.Abs(model.Coef[0]-rho) > 1e-12 {
		t.Errorf("STAR coef = %g, want inner product %g", model.Coef[0], rho)
	}
}

func TestSTARAndOMPSameSelectionCriterion(t *testing.T) {
	// Both pick the basis with the largest |Gᵀ·F| at step 1.
	_, d, f, _ := synthProblem(61, 25, 50, false, []int{3, 12}, []float64{3, 1}, 0.05)
	ompPath, err := (&OMP{}).FitPath(d, f, 1)
	if err != nil {
		t.Fatal(err)
	}
	starPath, err := (&STAR{}).FitPath(d, f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ompPath.Models[0].Support[0] != starPath.Models[0].Support[0] {
		t.Errorf("first selection differs: OMP %d vs STAR %d",
			ompPath.Models[0].Support[0], starPath.Models[0].Support[0])
	}
}

func TestSTARDoesNotRefit(t *testing.T) {
	// Once selected, a STAR coefficient only changes if the basis is
	// reselected; without reselection the first coefficient stays fixed
	// along the path.
	_, d, f, _ := synthProblem(62, 30, 60, false, []int{2, 9, 18}, []float64{2, -1, 1}, 0.1)
	path, err := (&STAR{}).FitPath(d, f, 3)
	if err != nil {
		t.Fatal(err)
	}
	first := path.Models[0].Support[0]
	c0 := path.Models[0].Coef[0]
	for step := 1; step < path.Len(); step++ {
		if got := path.Models[step].Coefficient(first); math.Abs(got-c0) > 1e-12 {
			// STAR never reselects in our implementation (used flag), so the
			// coefficient must be frozen.
			t.Errorf("step %d rewrote STAR coefficient: %g → %g", step, c0, got)
		}
	}
}

func TestLSExactOnDeterminedSystem(t *testing.T) {
	_, d, f, alpha := synthProblem(63, 10, 80, false, []int{0, 4, 9}, []float64{1, 2, 3}, 0)
	model, err := LS{}.Fit(d, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := model.Dense()
	for i := range alpha {
		if math.Abs(got[i]-alpha[i]) > 1e-8 {
			t.Errorf("α[%d] = %g, want %g", i, got[i], alpha[i])
		}
	}
	if model.NNZ() != d.Cols() {
		t.Errorf("LS support %d, want full %d", model.NNZ(), d.Cols())
	}
}

func TestLSRejectsUnderdetermined(t *testing.T) {
	_, d, f, _ := synthProblem(64, 50, 20, false, []int{1}, []float64{1}, 0)
	if _, err := (LS{}).Fit(d, f, 0); err == nil {
		t.Fatal("LS must reject K < M")
	}
}

func TestLSOverfitsWhereOMPDoesNot(t *testing.T) {
	// The paper's central claim: with K barely above M, LS overfits noisy
	// data while OMP with small λ generalizes. Compare held-out errors.
	support := []int{2, 7}
	coefs := []float64{1.5, -2}
	_, dTrain, fTrain, _ := synthProblem(65, 40, 45, false, support, coefs, 0.3)
	_, dTest, fTest, _ := synthProblem(66, 40, 2000, false, support, coefs, 0)

	lsModel, err := LS{}.Fit(dTrain, fTrain, 0)
	if err != nil {
		t.Fatal(err)
	}
	ompModel, err := (&OMP{}).Fit(dTrain, fTrain, 2)
	if err != nil {
		t.Fatal(err)
	}
	lsErr := stats.RelativeRMSError(lsModel.Predict(dTest), fTest)
	ompErr := stats.RelativeRMSError(ompModel.Predict(dTest), fTest)
	if ompErr >= lsErr {
		t.Errorf("OMP (%g) should generalize better than near-square LS (%g)", ompErr, lsErr)
	}
}

func TestModelDenseAndCoefficient(t *testing.T) {
	m := &Model{M: 6, Support: []int{4, 1}, Coef: []float64{2.5, -1}}
	dense := m.Dense()
	want := []float64{0, -1, 0, 0, 2.5, 0}
	for i := range want {
		if dense[i] != want[i] {
			t.Errorf("Dense[%d] = %g, want %g", i, dense[i], want[i])
		}
	}
	if m.Coefficient(4) != 2.5 || m.Coefficient(0) != 0 {
		t.Error("Coefficient lookup wrong")
	}
	if m.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", m.NNZ())
	}
}

func TestModelPredictPoint(t *testing.T) {
	b := basis.Linear(3)
	m := &Model{M: b.Size(), Support: []int{0, 2}, Coef: []float64{1.5, 2}}
	// f(y) = 1.5·1 + 2·y₁.
	got := m.PredictPoint(b, []float64{9, 0.5, -3})
	if math.Abs(got-2.5) > 1e-14 {
		t.Errorf("PredictPoint = %g, want 2.5", got)
	}
}

func TestModelPredictPointBasisMismatchPanics(t *testing.T) {
	b := basis.Linear(3)
	m := &Model{M: 99}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.PredictPoint(b, []float64{1, 2, 3})
}

func TestPathAt(t *testing.T) {
	p := &Path{Models: []*Model{{M: 1}, {M: 2}}}
	if p.At(2).M != 2 {
		t.Error("At(2) wrong model")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range λ")
		}
	}()
	p.At(3)
}

func TestSubsetDesign(t *testing.T) {
	_, d, f, _ := synthProblem(67, 5, 10, false, []int{1}, []float64{1}, 0)
	sub := Subset(d, []int{1, 3, 5})
	if sub.Rows() != 3 || sub.Cols() != d.Cols() {
		t.Fatalf("subset dims %dx%d", sub.Rows(), sub.Cols())
	}
	col := sub.Column(nil, 2)
	full := d.Column(nil, 2)
	for i, r := range []int{1, 3, 5} {
		if col[i] != full[r] {
			t.Errorf("subset column[%d] = %g, want %g", i, col[i], full[r])
		}
	}
	// MulTransVec: subset with x equals full design with scattered x.
	x := []float64{0.5, -1, 2}
	got := sub.MulTransVec(nil, x)
	scattered := make([]float64, d.Rows())
	scattered[1], scattered[3], scattered[5] = 0.5, -1, 2
	want := d.MulTransVec(nil, scattered)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-14 {
			t.Errorf("subset MulTransVec[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	_ = f
}

func TestSubsetVisitRows(t *testing.T) {
	_, d, _, _ := synthProblem(120, 5, 10, false, []int{1}, []float64{1}, 0)
	sub := Subset(d, []int{1, 4, 7})
	var got []int
	sub.VisitRows(func(k int, row []float64) {
		got = append(got, k)
		full := d.Column(nil, 2)
		// Column 2 of the subset row must equal the full design's value at
		// the mapped row.
		mapped := []int{1, 4, 7}[k]
		if row[2] != full[mapped] {
			t.Fatalf("subset row %d col 2 = %g, want %g", k, row[2], full[mapped])
		}
	})
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("visited %v, want [0 1 2]", got)
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	m := &Model{M: 100, Support: []int{3, 77, 12}, Coef: []float64{1.5, -2, 0.25}}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModelJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.M != m.M || len(back.Support) != 3 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	for i := range m.Support {
		if back.Support[i] != m.Support[i] || back.Coef[i] != m.Coef[i] {
			t.Fatalf("entry %d changed", i)
		}
	}
}

func TestReadModelJSONRejectsCorrupt(t *testing.T) {
	cases := map[string]string{
		"mismatched lengths": `{"m":5,"support":[1,2],"coef":[1]}`,
		"bad index":          `{"m":5,"support":[9],"coef":[1]}`,
		"duplicate index":    `{"m":5,"support":[1,1],"coef":[1,2]}`,
		"bad M":              `{"m":0,"support":[],"coef":[]}`,
		"not json":           `nope`,
	}
	for name, in := range cases {
		if _, err := ReadModelJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
