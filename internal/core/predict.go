package core

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/basis"
	"repro/internal/hermite"
)

// PredictBatch evaluates the model at many input points, writing the values
// into dst (allocated when nil). It is the serving-path counterpart of
// PredictPoint: instead of evaluating each support term independently per
// point, it assembles the compact sub-basis spanned by the support (λ terms
// instead of M) and shards the points across workers goroutines, each
// reusing a per-worker Hermite evaluator and row scratch buffer. workers ≤ 0
// uses GOMAXPROCS.
func (m *Model) PredictBatch(b *basis.Basis, dst []float64, points [][]float64, workers int) []float64 {
	if b.Size() != m.M {
		panic(fmt.Sprintf("core: basis size %d does not match model dictionary %d", b.Size(), m.M))
	}
	if dst == nil {
		dst = make([]float64, len(points))
	}
	if len(dst) != len(points) {
		panic(fmt.Sprintf("core: PredictBatch dst length %d, want %d", len(dst), len(points)))
	}
	if len(points) == 0 {
		return dst
	}
	// Restrict evaluation to the support: only λ = NNZ terms are evaluated,
	// and the per-worker Hermite value table is filled only for the
	// variables those terms actually reference — each point costs
	// O(used·maxOrder + λ) instead of O(Dim·maxOrder + M).
	terms := make([]hermite.Term, len(m.Support))
	for i, idx := range m.Support {
		terms[i] = b.Terms[idx]
	}
	sub := newSupportEval(b.Dim, terms)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	if workers <= 1 {
		m.predictRange(sub, dst, points, 0, len(points))
		return dst
	}
	var wg sync.WaitGroup
	chunk := (len(points) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(points) {
			hi = len(points)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			m.predictRange(sub, dst, points, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return dst
}

// supportEval is the shared, read-only description of a model's support:
// the selected terms, the set of variables they touch and the Hermite order
// needed per table slot. Workers allocate their own scratch over it.
type supportEval struct {
	dim      int
	terms    []hermite.Term
	used     []int // variables referenced by at least one term, ascending
	maxOrder int
}

func newSupportEval(dim int, terms []hermite.Term) *supportEval {
	se := &supportEval{dim: dim, terms: terms}
	touched := make([]bool, dim)
	for _, t := range terms {
		for _, vp := range t {
			touched[vp.Var] = true
			if vp.Pow > se.maxOrder {
				se.maxOrder = vp.Pow
			}
		}
	}
	for v, ok := range touched {
		if ok {
			se.used = append(se.used, v)
		}
	}
	return se
}

// predictRange evaluates points [lo, hi) with one per-worker Hermite value
// table — the unit of work PredictBatch hands each worker. The table
// herm[v·stride+p] = H̃ₚ(y[v]) is rebuilt per point but only for the
// variables the support references, so each term costs only lookups and
// multiplies.
func (m *Model) predictRange(se *supportEval, dst []float64, points [][]float64, lo, hi int) {
	stride := se.maxOrder + 1
	herm := make([]float64, se.dim*stride)
	for k := lo; k < hi; k++ {
		y := points[k]
		for _, v := range se.used {
			hermite.Eval1DUpTo(herm[v*stride:(v+1)*stride], se.maxOrder, y[v])
		}
		s := 0.0
		for i, t := range se.terms {
			p := 1.0
			for _, vp := range t {
				p *= herm[vp.Var*stride+vp.Pow]
			}
			s += m.Coef[i] * p
		}
		dst[k] = s
	}
}

// SolverByName returns the path fitter registered under the given
// case-insensitive name: omp, lar, lasso, star, cd or stomp. It is the
// shared factory behind cmd/rsmfit's -solver flag and rsmd fit requests.
func SolverByName(name string) (PathFitter, error) {
	switch strings.ToLower(name) {
	case "omp":
		return &OMP{}, nil
	case "lar":
		return &LAR{}, nil
	case "lasso":
		return &LAR{Lasso: true, Refit: true}, nil
	case "star":
		return &STAR{}, nil
	case "cd":
		return &CD{Refit: true}, nil
	case "stomp":
		return &StOMP{}, nil
	default:
		return nil, fmt.Errorf("core: unknown solver %q (want omp|lar|lasso|star|cd|stomp)", name)
	}
}
