package core

import (
	"fmt"
	"strings"

	"repro/internal/basis"
)

// PredictBatch evaluates the model at many input points, writing the values
// into dst (allocated when nil). It is the one-shot convenience over
// Model.Compile: the support is lowered into a CompiledPredictor (λ = NNZ
// terms instead of M, Hermite tables only over the variables the support
// references) and the points are sharded across workers goroutines.
// workers ≤ 0 uses GOMAXPROCS. Callers evaluating the same model repeatedly
// should Compile once and reuse the predictor instead. It panics on a
// mismatched basis, dst or point dimension — programmer errors on this API.
func (m *Model) PredictBatch(b *basis.Basis, dst []float64, points [][]float64, workers int) []float64 {
	cp, err := m.Compile(b)
	if err != nil {
		panic(err.Error())
	}
	out, err := cp.Predict(dst, points, workers)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// SolverByName returns the path fitter registered under the given
// case-insensitive name: omp, lar, lasso, star, cd or stomp. It is the
// shared factory behind cmd/rsmfit's -solver flag and rsmd fit requests.
func SolverByName(name string) (PathFitter, error) {
	switch strings.ToLower(name) {
	case "omp":
		return &OMP{}, nil
	case "lar":
		return &LAR{}, nil
	case "lasso":
		return &LAR{Lasso: true, Refit: true}, nil
	case "star":
		return &STAR{}, nil
	case "cd":
		return &CD{Refit: true}, nil
	case "stomp":
		return &StOMP{}, nil
	default:
		return nil, fmt.Errorf("core: unknown solver %q (want omp|lar|lasso|star|cd|stomp)", name)
	}
}
