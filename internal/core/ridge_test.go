package core

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/stats"
)

func TestRidgeSmallMuMatchesLS(t *testing.T) {
	_, d, f, _ := synthProblem(110, 8, 60, false, []int{1, 4}, []float64{2, -1}, 0.1)
	ridge, err := (&Ridge{Mu: 1e-10}).Fit(d, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := LS{}.Fit(d, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	rd, ld := ridge.Dense(), ls.Dense()
	for i := range rd {
		if math.Abs(rd[i]-ld[i]) > 1e-5*(1+math.Abs(ld[i])) {
			t.Errorf("α[%d]: ridge %g vs LS %g", i, rd[i], ld[i])
		}
	}
}

func TestRidgeWorksUnderdetermined(t *testing.T) {
	// K=40 < M=101: LS fails, ridge succeeds via the dual form.
	_, d, f, _ := synthProblem(111, 100, 40, false, []int{3, 50}, []float64{2, -1}, 0.01)
	if _, err := (LS{}).Fit(d, f, 0); err == nil {
		t.Fatal("LS should reject K < M")
	}
	model, err := (&Ridge{Mu: 1}).Fit(d, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if model.NNZ() != d.Cols() {
		t.Errorf("ridge support %d, want full %d", model.NNZ(), d.Cols())
	}
	// Training prediction must be decent (ridge interpolates smoothly).
	pred := model.Predict(d)
	if e := stats.RelativeRMSError(pred, f); e > 0.5 {
		t.Errorf("ridge training error %g too large", e)
	}
}

func TestRidgeShrinkageMonotone(t *testing.T) {
	_, d, f, _ := synthProblem(112, 10, 50, false, []int{2}, []float64{3}, 0.1)
	var prev float64 = math.Inf(1)
	for _, mu := range []float64{0.1, 1, 10, 100} {
		model, err := (&Ridge{Mu: mu}).Fit(d, f, 0)
		if err != nil {
			t.Fatal(err)
		}
		norm := linalg.Norm2(model.Dense())
		if norm >= prev {
			t.Errorf("µ=%g: ‖α‖ = %g did not shrink (prev %g)", mu, norm, prev)
		}
		prev = norm
	}
}

func TestRidgeDualPrimalEquivalence(t *testing.T) {
	// For K ≥ M the dual solution must equal the primal normal-equations
	// solution (GᵀG + µI)⁻¹GᵀF.
	_, d, f, _ := synthProblem(113, 6, 40, false, []int{1, 3}, []float64{1, 2}, 0.2)
	const mu = 0.7
	model, err := (&Ridge{Mu: mu}).Fit(d, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Primal: build GᵀG + µI directly.
	m := d.Cols()
	k := d.Rows()
	g := linalg.NewMatrix(k, m)
	col := make([]float64, k)
	for j := 0; j < m; j++ {
		d.Column(col, j)
		g.SetCol(j, col)
	}
	gtg := g.Gram()
	for i := 0; i < m; i++ {
		gtg.Set(i, i, gtg.At(i, i)+mu)
	}
	chol, err := linalg.CholeskyFactor(gtg)
	if err != nil {
		t.Fatal(err)
	}
	primal, err := chol.Solve(g.MulTransVec(nil, f))
	if err != nil {
		t.Fatal(err)
	}
	dual := model.Dense()
	for i := range primal {
		if math.Abs(primal[i]-dual[i]) > 1e-8*(1+math.Abs(primal[i])) {
			t.Errorf("α[%d]: primal %g vs dual %g", i, primal[i], dual[i])
		}
	}
}

func TestRidgeCannotExploitSparsity(t *testing.T) {
	// The gap the sparse solvers close: on K ≪ M with a sparse truth, OMP
	// generalizes far better than ridge.
	support := []int{5, 21}
	coefs := []float64{2, -1.5}
	_, dTrain, fTrain, _ := synthProblem(114, 80, 60, false, support, coefs, 0.02)
	_, dTest, fTest, _ := synthProblem(115, 80, 1000, false, support, coefs, 0)
	ridge, err := (&Ridge{Mu: 1}).Fit(dTrain, fTrain, 0)
	if err != nil {
		t.Fatal(err)
	}
	omp, err := (&OMP{}).Fit(dTrain, fTrain, 2)
	if err != nil {
		t.Fatal(err)
	}
	eR := stats.RelativeRMSError(ridge.Predict(dTest), fTest)
	eO := stats.RelativeRMSError(omp.Predict(dTest), fTest)
	if eO*3 > eR {
		t.Errorf("OMP error %g should be ≪ ridge error %g on sparse truth", eO, eR)
	}
}

func TestRidgeValidation(t *testing.T) {
	_, d, f, _ := synthProblem(116, 5, 10, false, []int{0}, []float64{1}, 0)
	if _, err := (&Ridge{Mu: 0}).Fit(d, f, 0); err == nil {
		t.Error("µ=0 must error")
	}
	if _, err := (&Ridge{Mu: -1}).Fit(d, f, 0); err == nil {
		t.Error("negative µ must error")
	}
}
