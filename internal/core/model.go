// Package core implements the paper's contribution: solving the sparse
// L0-regularized regression problem
//
//	minimize ‖G·α − F‖₂²  subject to  ‖α‖₀ ≤ λ            (eq. 11)
//
// over the underdetermined design matrices produced by internal/basis.
// Four solvers are provided, matching the paper's Section V comparison:
//
//   - OMP  — orthogonal matching pursuit (Algorithm 1, the proposed method)
//   - STAR — statistical regression (DAC'08 [1]): same selection criterion,
//     coefficients taken directly from the inner products
//   - LAR  — least angle regression (DAC'09 [2], Efron et al. [16]): the
//     L1 relaxation of eq. (11)
//   - LS   — classical least-squares fitting (the over-determined baseline)
//
// The sparsity level λ is selected by Q-fold cross-validation (Section IV-C)
// via CrossValidate.
package core

import (
	"fmt"
	"sort"

	"repro/internal/basis"
	"repro/internal/linalg"
)

// Model is a fitted sparse response surface model: a set of selected basis
// indices and their coefficients. All unselected coefficients are zero
// (Step 9 of Algorithm 1).
type Model struct {
	// M is the total number of basis functions in the dictionary.
	M int
	// Support holds the selected basis indices, in selection order.
	Support []int
	// Coef holds the coefficients aligned with Support.
	Coef []float64
}

// NNZ returns the number of non-zero coefficients ‖α‖₀.
func (m *Model) NNZ() int { return len(m.Support) }

// Dense expands the model into the full-length coefficient vector α ∈ ℝᴹ.
func (m *Model) Dense() []float64 {
	alpha := make([]float64, m.M)
	for i, idx := range m.Support {
		alpha[idx] = m.Coef[i]
	}
	return alpha
}

// Coefficient returns α_m (0 when basis m is not selected).
func (m *Model) Coefficient(idx int) float64 {
	for i, s := range m.Support {
		if s == idx {
			return m.Coef[i]
		}
	}
	return 0
}

// Predict evaluates the model at every sampling point of d, i.e. G·α
// restricted to the support. Only the selected columns are materialized, so
// prediction is cheap even for lazy paper-scale designs.
func (m *Model) Predict(d basis.Design) []float64 {
	out := make([]float64, d.Rows())
	col := make([]float64, d.Rows())
	for i, idx := range m.Support {
		d.Column(col, idx)
		linalg.Axpy(m.Coef[i], col, out)
	}
	return out
}

// PredictPoint evaluates the model at a single input point using the basis
// the model was trained with.
func (m *Model) PredictPoint(b *basis.Basis, y []float64) float64 {
	if b.Size() != m.M {
		panic(fmt.Sprintf("core: basis size %d does not match model dictionary %d", b.Size(), m.M))
	}
	s := 0.0
	for i, idx := range m.Support {
		s += m.Coef[i] * b.Eval(idx, y)
	}
	return s
}

// SortedSupport returns the support indices in ascending order (selection
// order is preserved in Support itself).
func (m *Model) SortedSupport() []int {
	s := append([]int(nil), m.Support...)
	sort.Ints(s)
	return s
}

// Path is a nested sequence of models produced by a greedy or path solver:
// Models[i] uses exactly i+1 basis functions. Residual[i] is the training
// residual ‖G·α − F‖₂ after step i+1.
type Path struct {
	Models   []*Model
	Residual []float64
}

// Len returns the number of steps in the path.
func (p *Path) Len() int { return len(p.Models) }

// At returns the model with the given sparsity λ (1-based). It panics when
// the path is shorter than λ.
func (p *Path) At(lambda int) *Model {
	if lambda < 1 || lambda > len(p.Models) {
		panic(fmt.Sprintf("core: path has %d steps, requested λ=%d", len(p.Models), lambda))
	}
	return p.Models[lambda-1]
}

// PathFitter is implemented by the sparse solvers (OMP, STAR, LAR): it fits
// the whole nested path of models with sparsity 1…maxLambda in one run, which
// is what cross-validation consumes.
type PathFitter interface {
	// FitPath fits models of increasing sparsity on (d, f) until maxLambda
	// basis functions are selected or the solver cannot make progress.
	FitPath(d basis.Design, f []float64, maxLambda int) (*Path, error)
	// Name identifies the solver in reports.
	Name() string
}

// Gradient evaluates ∇f(y) of the fitted model at a point using the exact
// Hermite derivative identity H̃ₙ' = √n·H̃ₙ₋₁. dst is allocated when nil.
// The gradient drives sensitivity analysis and worst-case corner search on
// the fitted response surface.
func (m *Model) Gradient(b *basis.Basis, dst, y []float64) []float64 {
	if b.Size() != m.M {
		panic(fmt.Sprintf("core: basis size %d does not match model dictionary %d", b.Size(), m.M))
	}
	if len(y) != b.Dim {
		panic(fmt.Sprintf("core: Gradient point dimension %d, want %d", len(y), b.Dim))
	}
	if dst == nil {
		dst = make([]float64, b.Dim)
	}
	for i := range dst {
		dst[i] = 0
	}
	tg := make([]float64, b.Dim)
	for i, idx := range m.Support {
		term := b.Terms[idx]
		if len(term) == 0 {
			continue
		}
		for j := range tg {
			tg[j] = 0
		}
		term.EvalGrad(tg, y)
		linalg.Axpy(m.Coef[i], tg, dst)
	}
	return dst
}
