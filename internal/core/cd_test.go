package core

import (
	"math"
	"testing"

	"repro/internal/basis"
	"repro/internal/linalg"
)

func TestCDRecoversSparseSupport(t *testing.T) {
	support := []int{4, 19, 55}
	coefs := []float64{3, -2, 1.5}
	_, d, f, _ := synthProblem(80, 70, 120, false, support, coefs, 0.01)
	model, err := (&CD{Refit: true}).Fit(d, f, 3)
	if err != nil {
		t.Fatal(err)
	}
	sorted := model.SortedSupport()
	if len(sorted) != 3 {
		t.Fatalf("support %v, want 3 entries", sorted)
	}
	for i, s := range support {
		if sorted[i] != s {
			t.Fatalf("support %v, want %v", sorted, support)
		}
	}
	for i, idx := range model.Support {
		var want float64
		for j, s := range support {
			if s == idx {
				want = coefs[j]
			}
		}
		if math.Abs(model.Coef[i]-want) > 0.05 {
			t.Errorf("coef %d = %g, want ≈ %g", idx, model.Coef[i], want)
		}
	}
}

func TestCDMatchesLassoLAR(t *testing.T) {
	// The coordinate-descent lasso and the lasso-modified LAR solve the same
	// convex problem: with matched penalty/path position their supports must
	// agree, and refit coefficients must match closely.
	support := []int{2, 11, 27}
	coefs := []float64{2, -1.2, 0.8}
	_, d, f, _ := synthProblem(81, 40, 90, false, support, coefs, 0.05)
	cd, err := (&CD{Refit: true}).Fit(d, f, 3)
	if err != nil {
		t.Fatal(err)
	}
	lar, err := (&LAR{Lasso: true, Refit: true}).Fit(d, f, 3)
	if err != nil {
		t.Fatal(err)
	}
	cs, ls := cd.SortedSupport(), lar.SortedSupport()
	if len(cs) != len(ls) {
		t.Fatalf("support sizes differ: CD %v vs LAR %v", cs, ls)
	}
	for i := range cs {
		if cs[i] != ls[i] {
			t.Fatalf("supports differ: CD %v vs LAR %v", cs, ls)
		}
	}
	for _, idx := range cs {
		a, b := cd.Coefficient(idx), lar.Coefficient(idx)
		if math.Abs(a-b) > 1e-6*(1+math.Abs(b)) {
			t.Errorf("coef %d: CD %g vs LAR %g", idx, a, b)
		}
	}
}

func TestCDFitLambdaKKT(t *testing.T) {
	// KKT conditions of the lasso: for active j, (1/K)G_jᵀres = μ·sign(α_j);
	// for inactive j, |(1/K)G_jᵀres| ≤ μ.
	_, d, f, _ := synthProblem(82, 30, 60, false, []int{3, 14}, []float64{2, -1}, 0.1)
	const mu = 0.05
	model, err := (&CD{}).FitLambda(d, f, mu)
	if err != nil {
		t.Fatal(err)
	}
	res := make([]float64, d.Rows())
	copy(res, f)
	pred := model.Predict(d)
	for i := range res {
		res[i] -= pred[i]
	}
	corr := d.MulTransVec(nil, res)
	k := float64(d.Rows())
	active := map[int]float64{}
	for i, idx := range model.Support {
		active[idx] = model.Coef[i]
	}
	for j := range corr {
		c := corr[j] / k
		if a, ok := active[j]; ok {
			want := mu
			if a < 0 {
				want = -mu
			}
			if math.Abs(c-want) > 1e-6 {
				t.Errorf("active KKT violated at %d: corr %g, want %g", j, c, want)
			}
		} else if math.Abs(c) > mu+1e-6 {
			t.Errorf("inactive KKT violated at %d: |corr| %g > μ", j, math.Abs(c))
		}
	}
}

func TestCDShrinkageTowardZero(t *testing.T) {
	_, d, f, _ := synthProblem(83, 25, 60, false, []int{5, 12}, []float64{2, -1.5}, 0.05)
	plain, err := (&CD{}).Fit(d, f, 2)
	if err != nil {
		t.Fatal(err)
	}
	refit, err := (&CD{Refit: true}).Fit(d, f, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Coef {
		if math.Abs(plain.Coef[i]) > math.Abs(refit.Coef[i])+1e-9 {
			t.Errorf("lasso coef %d not shrunken: %g vs refit %g", i, plain.Coef[i], refit.Coef[i])
		}
	}
}

func TestCDPathInCrossValidation(t *testing.T) {
	support := []int{1, 8}
	coefs := []float64{2, -1}
	_, d, f, _ := synthProblem(84, 20, 80, false, support, coefs, 0.05)
	res, err := CrossValidate(&CD{Refit: true}, d, f, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, s := range res.Model.Support {
		got[s] = true
	}
	if !got[1] || !got[8] {
		t.Errorf("CV-CD support %v misses the truth", res.Model.Support)
	}
}

func TestCDValidation(t *testing.T) {
	_, d, f, _ := synthProblem(85, 10, 20, false, []int{0}, []float64{1}, 0)
	if _, err := (&CD{}).FitLambda(d, f, -1); err == nil {
		t.Error("negative μ must error")
	}
	if _, err := (&CD{}).FitPath(d, f, 0); err == nil {
		t.Error("maxLambda=0 must error")
	}
	// Zero response: no basis correlates.
	zero := make([]float64, d.Rows())
	if _, err := (&CD{}).FitPath(d, zero, 3); err == nil {
		t.Error("zero response must error")
	}
}

func TestSelectBICFindsTrueSparsity(t *testing.T) {
	support := []int{3, 17, 31}
	coefs := []float64{2, -1.5, 1}
	_, d, f, _ := synthProblem(86, 40, 150, false, support, coefs, 0.05)
	res, err := SelectIC(&OMP{}, d, f, 15, BIC)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestLambda < 3 || res.BestLambda > 5 {
		t.Errorf("BIC chose λ=%d, want ≈3 (scores %v)", res.BestLambda, res.Scores)
	}
	got := map[int]bool{}
	for _, s := range res.Model.Support {
		got[s] = true
	}
	for _, s := range support {
		if !got[s] {
			t.Errorf("true basis %d missing from BIC model", s)
		}
	}
}

func TestSelectAICAtLeastTrueSparsity(t *testing.T) {
	// AIC penalizes less than BIC, so it selects at least as many bases.
	support := []int{2, 9}
	coefs := []float64{3, -2}
	_, d, f, _ := synthProblem(87, 30, 120, false, support, coefs, 0.1)
	bic, err := SelectIC(&OMP{}, d, f, 15, BIC)
	if err != nil {
		t.Fatal(err)
	}
	aic, err := SelectIC(&OMP{}, d, f, 15, AIC)
	if err != nil {
		t.Fatal(err)
	}
	if aic.BestLambda < bic.BestLambda {
		t.Errorf("AIC λ=%d < BIC λ=%d", aic.BestLambda, bic.BestLambda)
	}
}

func TestSelectICAgreesWithCV(t *testing.T) {
	// On a well-posed problem, BIC and CV should land on similar sparsity
	// and the same leading support.
	support := []int{4, 12, 21}
	coefs := []float64{2, 1.2, -0.9}
	_, d, f, _ := synthProblem(88, 30, 140, false, support, coefs, 0.05)
	ic, err := SelectIC(&OMP{}, d, f, 12, BIC)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := CrossValidate(&OMP{}, d, f, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if diff := ic.BestLambda - cv.BestLambda; diff < -2 || diff > 2 {
		t.Errorf("BIC λ=%d far from CV λ=%d", ic.BestLambda, cv.BestLambda)
	}
}

func TestCriterionString(t *testing.T) {
	if BIC.String() != "BIC" || AIC.String() != "AIC" {
		t.Error("criterion names wrong")
	}
	if Criterion(9).String() != "Criterion(9)" {
		t.Error("unknown criterion formatting wrong")
	}
}

func TestCDElasticNetGroupsCorrelatedColumns(t *testing.T) {
	// Two nearly identical columns carry the signal. The plain lasso picks
	// one arbitrarily; the elastic net splits the weight across both.
	k := 60
	r := make([][]float64, k)
	base := make([]float64, k)
	f := make([]float64, k)
	rng := newDeterministicRand(130)
	for i := 0; i < k; i++ {
		base[i] = rng()
		r[i] = []float64{base[i] + 0.01*rng(), base[i] + 0.01*rng(), rng()}
		f[i] = 2 * base[i]
	}
	d := basis.DenseDesignFromMatrix(linalg.NewMatrixFrom(r))
	const mu = 0.02
	lasso, err := (&CD{}).FitLambda(d, f, mu)
	if err != nil {
		t.Fatal(err)
	}
	enet, err := (&CD{L2: 50}).FitLambda(d, f, mu)
	if err != nil {
		t.Fatal(err)
	}
	// Elastic net must put comparable weight on both twins.
	c0, c1 := enet.Coefficient(0), enet.Coefficient(1)
	if c0 == 0 || c1 == 0 {
		t.Fatalf("elastic net dropped a twin: %g, %g", c0, c1)
	}
	ratio := c0 / c1
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("elastic net weights unbalanced: %g vs %g", c0, c1)
	}
	// The plain lasso concentrates far more asymmetrically.
	l0, l1 := lasso.Coefficient(0), lasso.Coefficient(1)
	lr := math.Abs(l0-l1) / (math.Abs(l0) + math.Abs(l1) + 1e-12)
	er := math.Abs(c0-c1) / (math.Abs(c0) + math.Abs(c1))
	if er > lr {
		t.Errorf("elastic net (%g) less balanced than lasso (%g)", er, lr)
	}
}

// newDeterministicRand returns a tiny deterministic float stream for test
// fixtures without importing math/rand here.
func newDeterministicRand(seed uint64) func() float64 {
	state := seed
	return func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(int64(state>>11))/float64(1<<52) - 1
	}
}
