package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/basis"
	"repro/internal/hermite"
)

// CompiledPredictor is a fitted model bound to its basis and pre-lowered
// into the flat evaluation form the serving hot path wants: the support's
// terms are resolved once into (slot, order) factor lists over a compact
// variable remap, so evaluating a point touches only the variables the
// support references and never walks the M-sized dictionary again. The
// per-point Hermite value table lives in a sync.Pool, so steady-state
// prediction — the cache-hit path of the rsmd serving layer — allocates
// nothing beyond the result slice.
//
// A CompiledPredictor is immutable after Compile and safe for concurrent
// use by any number of goroutines.
type CompiledPredictor struct {
	dim  int       // input dimension the basis expects
	coef []float64 // support coefficients, copied (detached from the Model)

	// used maps compact slot → original variable index (ascending). Only
	// these variables get Hermite tables.
	used []int
	// factors is the flattened factor list of every support term; term i
	// spans factors[offs[i]:offs[i+1]]. A term with no factors is the
	// constant basis function (product = 1).
	factors []compiledFactor
	offs    []int32

	maxOrder int // highest Hermite order any factor needs
	stride   int // maxOrder+1, the per-variable table width

	scratch sync.Pool // *[]float64 of len(used)*stride
}

// compiledFactor is one H̃_pow(y[used[slot]]) lookup of a term product.
type compiledFactor struct {
	slot int32 // compact variable slot (index into used)
	pow  int32 // Hermite order
}

// Compile lowers the model against the basis it was fit on. It fails when
// the basis does not match the model's dictionary size; the returned
// predictor is independent of later mutations to m.
func (m *Model) Compile(b *basis.Basis) (*CompiledPredictor, error) {
	if b.Size() != m.M {
		return nil, fmt.Errorf("core: basis size %d does not match model dictionary %d", b.Size(), m.M)
	}
	if err := validateModel(m); err != nil {
		return nil, err
	}
	cp := &CompiledPredictor{
		dim:  b.Dim,
		coef: append([]float64(nil), m.Coef...),
		offs: make([]int32, 1, len(m.Support)+1),
	}
	// First pass: find the touched variables and the highest order.
	touched := make([]bool, b.Dim)
	for _, idx := range m.Support {
		for _, vp := range b.Terms[idx] {
			touched[vp.Var] = true
			if vp.Pow > cp.maxOrder {
				cp.maxOrder = vp.Pow
			}
		}
	}
	slot := make([]int32, b.Dim)
	for v, ok := range touched {
		if ok {
			slot[v] = int32(len(cp.used))
			cp.used = append(cp.used, v)
		}
	}
	// Second pass: flatten every term into compact (slot, pow) factors.
	for _, idx := range m.Support {
		for _, vp := range b.Terms[idx] {
			cp.factors = append(cp.factors, compiledFactor{slot: slot[vp.Var], pow: int32(vp.Pow)})
		}
		cp.offs = append(cp.offs, int32(len(cp.factors)))
	}
	cp.stride = cp.maxOrder + 1
	tableLen := len(cp.used) * cp.stride
	cp.scratch.New = func() any {
		s := make([]float64, tableLen)
		return &s
	}
	return cp, nil
}

// Dim returns the input dimension the predictor expects per point.
func (cp *CompiledPredictor) Dim() int { return cp.dim }

// NNZ returns the number of support terms the predictor evaluates.
func (cp *CompiledPredictor) NNZ() int { return len(cp.coef) }

// Predict evaluates every point into dst (allocated when nil), sharding the
// batch across workers goroutines (≤ 0 means GOMAXPROCS) that each reuse a
// pooled Hermite value table. It fails on a dimension-mismatched point or a
// dst of the wrong length; on success it returns dst.
func (cp *CompiledPredictor) Predict(dst []float64, points [][]float64, workers int) ([]float64, error) {
	if dst == nil {
		dst = make([]float64, len(points))
	}
	if len(dst) != len(points) {
		return nil, fmt.Errorf("core: predict dst length %d, want %d", len(dst), len(points))
	}
	for i, p := range points {
		if len(p) != cp.dim {
			return nil, fmt.Errorf("point %d has dimension %d, want %d", i, len(p), cp.dim)
		}
	}
	if len(points) == 0 {
		return dst, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	if workers <= 1 {
		cp.predictRange(dst, points, 0, len(points))
		return dst, nil
	}
	var wg sync.WaitGroup
	chunk := (len(points) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(points) {
			hi = len(points)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			cp.predictRange(dst, points, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return dst, nil
}

// predictRange evaluates points [lo, hi) with one pooled Hermite table —
// the unit of work Predict hands each worker. The table
// herm[slot·stride+p] = H̃ₚ(y[used[slot]]) is refilled per point but spans
// only the support's variables, so each term costs lookups and multiplies.
func (cp *CompiledPredictor) predictRange(dst []float64, points [][]float64, lo, hi int) {
	hp := cp.scratch.Get().(*[]float64)
	herm := *hp
	stride := cp.stride
	for k := lo; k < hi; k++ {
		y := points[k]
		for j, v := range cp.used {
			hermite.Eval1DUpTo(herm[j*stride:(j+1)*stride], cp.maxOrder, y[v])
		}
		s := 0.0
		for i, c := range cp.coef {
			p := 1.0
			for _, f := range cp.factors[cp.offs[i]:cp.offs[i+1]] {
				p *= herm[int(f.slot)*stride+int(f.pow)]
			}
			s += c * p
		}
		dst[k] = s
	}
	cp.scratch.Put(hp)
}
