package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/basis"
)

// Typed solver failures. Callers branch on these with errors.Is: the serving
// layer maps ErrDegenerate and ErrNonFinite to client errors (the dataset is
// at fault) while other failures stay internal. Before these existed the
// degenerate paths — rank-deficient active sets, all-zero responses, NaN
// measurements — were a mix of ad-hoc errors and panics deep in the linear
// algebra, and one bad fit request could take the whole daemon down.
var (
	// ErrDegenerate marks problems on which the solver cannot select any
	// basis: rank-deficient active sets, responses uncorrelated with the
	// whole dictionary, or exhausted dictionaries.
	ErrDegenerate = errors.New("degenerate problem: no admissible basis vector")
	// ErrNonFinite marks NaN or ±Inf values in the response vector or the
	// design matrix.
	ErrNonFinite = errors.New("non-finite value (NaN or Inf) in input")
)

// degenEps is the relative correlation floor below which greedy solvers
// treat a candidate basis as uncorrelated with the residual: selecting such a
// column fits floating-point noise and, on an all-zero response, used to
// admit arbitrary columns with zero coefficients.
const degenEps = 1e-12

// errDegenerate wraps ErrDegenerate with solver context.
func errDegenerate(solver, detail string) error {
	return fmt.Errorf("core: %s: %s: %w", solver, detail, ErrDegenerate)
}

// checkFiniteVec returns ErrNonFinite when v contains NaN or ±Inf. label
// names the vector in the error ("response", "correlation", …).
func checkFiniteVec(label string, v []float64) error {
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("core: %s entry %d is %v: %w", label, i, x, ErrNonFinite)
		}
	}
	return nil
}

// FitEvent is one solver path iteration, as reported to a FitObserver. It
// is the paper-faithful telemetry unit: OMP/LAR/STAR walk the dictionary
// one basis selection at a time (Efron et al. 2004; Li DAC'09), so each
// event names the chosen basis, the active-set size and the residual norm
// after the step. Batch solvers (StOMP stages, CD grid points) admit
// several bases per step and report Basis = -1.
type FitEvent struct {
	// Stage labels which fit produced the event when a higher-level driver
	// runs several (cross-validation folds, the final refit); "" otherwise.
	Stage string
	// Iter is the 1-based iteration number within one path fit.
	Iter int
	// Basis is the selected basis index, or -1 for batch steps.
	Basis int
	// Active is the active-set size after the iteration.
	Active int
	// Residual is ‖res‖₂ after the iteration.
	Residual float64
	// Elapsed is the wall-clock time since the path fit started.
	Elapsed time.Duration
	// Workers is the effective goroutine count of the engine's parallel
	// correlation sweep for this fit (1 = serial).
	Workers int
}

// FitObserver receives per-iteration solver telemetry. Observers are called
// synchronously from the solver goroutine and must be fast; anything
// expensive belongs behind a channel or a mutex-guarded append.
type FitObserver func(FitEvent)

// observerKey/stageKey carry fit telemetry configuration in a context.
type obsCtxKey int

const (
	observerCtxKey obsCtxKey = iota
	stageCtxKey
	checkpointPlanCtxKey
	resumeCtxKey
	warmStartCtxKey
)

// WithFitObserver arranges for solver path fits run under ctx (through
// FitPathContext, CrossValidateCtx, or any ContextFitter) to report each
// iteration to obs.
func WithFitObserver(ctx context.Context, obs FitObserver) context.Context {
	return context.WithValue(ctx, observerCtxKey, obs)
}

// WithFitStage labels events emitted under ctx with a stage name.
// CrossValidateCtx uses it to distinguish fold fits from the final refit.
func WithFitStage(ctx context.Context, stage string) context.Context {
	return context.WithValue(ctx, stageCtxKey, stage)
}

// CheckpointPlan asks a path fit run under WithCheckpointPlan to capture
// its engine state into CK. With After > 0 the fit stops as soon as that
// many path models have been recorded — simulating an interruption — and
// captures the state at that point; with After == 0 the fit runs to its
// natural end and captures the final state (what the serving layer persists
// alongside a published model for later refinement). If the path finishes
// before reaching After, the final state is captured anyway.
type CheckpointPlan struct {
	// After is the recorded-model count at which to stop and capture
	// (0 = capture at the natural end without stopping).
	After int
	// CK receives the captured checkpoint.
	CK *FitCheckpoint
}

// WithCheckpointPlan arranges for solver path fits run under ctx to capture
// a FitCheckpoint per plan. A nil plan clears any inherited plan (used by
// CrossValidateCtx so fold fits don't race over the final refit's capture).
func WithCheckpointPlan(ctx context.Context, plan *CheckpointPlan) context.Context {
	return context.WithValue(ctx, checkpointPlanCtxKey, plan)
}

// WithResumeCheckpoint arranges for the next path fit run under ctx to
// resume from ck instead of starting cold. The fit must use ck's solver and
// a design whose leading ck.K rows are unchanged; Gram-maintaining solvers
// additionally accept appended rows (folded in as rank-one factor updates).
// A nil ck clears any inherited checkpoint.
func WithResumeCheckpoint(ctx context.Context, ck *FitCheckpoint) context.Context {
	return context.WithValue(ctx, resumeCtxKey, ck)
}

// WithWarmStart seeds path fits run under ctx with a previously fitted
// model: solvers that support it (OMP, StOMP) re-admit the model's support
// in its original selection order without correlation sweeps — re-fitting
// coefficients on the current data — and only then continue normal
// selection. Unlike WithResumeCheckpoint this is valid on *any* data (CV
// fold subsets, grown sample sets); solvers without replay support ignore
// it and fit cold. A nil model clears any inherited warm start.
func WithWarmStart(ctx context.Context, m *Model) context.Context {
	return context.WithValue(ctx, warmStartCtxKey, m)
}

// FitContext threads cancellation from a context.Context into solver inner
// loops. Solvers call Err at the top of each path iteration (and sweep);
// the poll is amortized over checkStride calls so it stays cheap even when
// sprinkled into tight loops. A nil *FitContext never cancels, which is the
// zero-overhead path used by the context-free FitPath entry points.
//
// A FitContext also carries the optional telemetry observer (see
// WithFitObserver): solvers report each completed path iteration through
// Observe, which is a nil check when no observer is armed.
type FitContext struct {
	ctx context.Context
	n   uint

	// eng is the solver engine serving this fit: correlation scratch,
	// residual buffer and parallel-sweep worker count. It is created
	// lazily on first use; CrossValidateCtx pre-attaches one shared
	// engine so all fold fits reuse a single allocation.
	eng     *Engine
	workers int // requested sweep workers from WithFitWorkers (0 = auto)

	observer FitObserver
	stage    string
	start    time.Time
	iter     int

	// plan/resume/warm carry the incremental-refit configuration from
	// WithCheckpointPlan / WithResumeCheckpoint / WithWarmStart.
	plan   *CheckpointPlan
	resume *FitCheckpoint
	warm   *Model
}

// checkStride is how many Err calls are skipped between context polls. Solver
// iterations each cost at least one O(K·M) pass, so even a stride of 1 would
// be invisible; 8 keeps the hook harmless inside tighter per-candidate loops.
const checkStride = 8

// NewFitContext wraps ctx for solver consumption. A nil ctx behaves like
// context.Background().
func NewFitContext(ctx context.Context) *FitContext {
	if ctx == nil {
		return nil
	}
	fc := &FitContext{ctx: ctx, workers: FitWorkersFromContext(ctx)}
	if obs, ok := ctx.Value(observerCtxKey).(FitObserver); ok && obs != nil {
		fc.observer = obs
		fc.start = time.Now()
		fc.stage, _ = ctx.Value(stageCtxKey).(string)
	}
	if p, ok := ctx.Value(checkpointPlanCtxKey).(*CheckpointPlan); ok && p != nil {
		fc.plan = p
	}
	if ck, ok := ctx.Value(resumeCtxKey).(*FitCheckpoint); ok && ck != nil {
		fc.resume = ck
	}
	if m, ok := ctx.Value(warmStartCtxKey).(*Model); ok && m != nil {
		fc.warm = m
	}
	return fc
}

// resumeFor returns the checkpoint to resume from for the named solver, or
// nil, and errors when a checkpoint is armed for a *different* solver —
// silently fitting cold there would hide a wiring bug in the caller.
func (fc *FitContext) resumeFor(solver string) (*FitCheckpoint, error) {
	if fc == nil || fc.resume == nil {
		return nil, nil
	}
	if fc.resume.Solver != solver {
		return nil, fmt.Errorf("core: %s fit cannot resume a %s checkpoint", solver, fc.resume.Solver)
	}
	return fc.resume, nil
}

// warmStart returns the warm-start model armed on the context, if any.
func (fc *FitContext) warmStart() *Model {
	if fc == nil {
		return nil
	}
	return fc.warm
}

// engine returns the fit's solver engine, creating one on first use. A nil
// FitContext (the context-free FitPath entry points) gets a fresh automatic
// engine per call.
func (fc *FitContext) engine() *Engine {
	if fc == nil {
		return NewEngine(0)
	}
	if fc.eng == nil {
		fc.eng = NewEngine(fc.workers)
	}
	return fc.eng
}

// Observe reports one completed path iteration to the armed observer:
// basis is the selected dictionary index (-1 for batch admissions), active
// the active-set size and residual ‖res‖₂ after the step. It is safe on a
// nil receiver and free when no observer is armed.
func (fc *FitContext) Observe(basis, active int, residual float64) {
	if fc == nil || fc.observer == nil {
		return
	}
	fc.iter++
	fc.observer(FitEvent{
		Stage:    fc.stage,
		Iter:     fc.iter,
		Basis:    basis,
		Active:   active,
		Residual: residual,
		Elapsed:  time.Since(fc.start),
		Workers:  fc.engine().Workers(),
	})
}

// Err polls the underlying context every few calls and returns its error once
// canceled or past its deadline. It is safe on a nil receiver.
func (fc *FitContext) Err() error {
	if fc == nil {
		return nil
	}
	fc.n++
	if fc.n != 1 && fc.n%checkStride != 0 {
		return nil
	}
	return fc.ctx.Err()
}

// ContextFitter is implemented by solvers whose path fit cooperatively checks
// a FitContext, so a canceled HTTP request or an expired job deadline stops
// the fit mid-path instead of after it.
type ContextFitter interface {
	PathFitter
	// FitPathCtx is FitPath with cooperative cancellation. fc may be nil.
	FitPathCtx(fc *FitContext, d basis.Design, f []float64, maxLambda int) (*Path, error)
}

// FitPathContext runs fitter's path fit under ctx. Solvers implementing
// ContextFitter are canceled cooperatively mid-fit; for foreign fitters the
// context is only checked up front.
func FitPathContext(ctx context.Context, fitter PathFitter, d basis.Design, f []float64, maxLambda int) (*Path, error) {
	return fitPathWithEngine(ctx, nil, fitter, d, f, maxLambda)
}

// fitPathWithEngine is FitPathContext with an optional pre-built engine,
// letting a sequential driver (CrossValidateCtx) share one engine's scratch
// buffers across many path fits. A nil eng falls back to lazy per-fit
// creation.
func fitPathWithEngine(ctx context.Context, eng *Engine, fitter PathFitter, d basis.Design, f []float64, maxLambda int) (*Path, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cf, ok := fitter.(ContextFitter); ok {
		fc := NewFitContext(ctx)
		if fc != nil && eng != nil {
			fc.eng = eng
		}
		return cf.FitPathCtx(fc, d, f, maxLambda)
	}
	return fitter.FitPath(d, f, maxLambda)
}
