package core

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/basis"
	"repro/internal/rng"
)

// The checkpoint suite pins the incremental-refit contract: interrupting a
// path fit, serializing its state and resuming must reproduce the
// uninterrupted path — across every solver, through a JSON round trip, and
// under -race. The tolerance is 1e-12: restore is verbatim state plus the
// same arithmetic, so the paths should in fact be bit-identical, and the
// tolerance only exists to keep the assertion honest about its claim.

const ckTol = 1e-12

// comparePaths asserts got reproduces want: identical supports in identical
// order, coefficients and residual norms within ckTol.
func comparePaths(t *testing.T, label string, got, want *Path) {
	t.Helper()
	if len(got.Models) != len(want.Models) {
		t.Fatalf("%s: path length %d, want %d", label, len(got.Models), len(want.Models))
	}
	for s, wm := range want.Models {
		gm := got.Models[s]
		if len(gm.Support) != len(wm.Support) {
			t.Fatalf("%s step %d: support size %d, want %d", label, s, len(gm.Support), len(wm.Support))
		}
		for j := range wm.Support {
			if gm.Support[j] != wm.Support[j] {
				t.Errorf("%s step %d: support[%d] = %d, want %d", label, s, j, gm.Support[j], wm.Support[j])
			}
			if d := math.Abs(gm.Coef[j] - wm.Coef[j]); d > ckTol {
				t.Errorf("%s step %d: coef[%d] = %.17g, want %.17g (Δ=%g)", label, s, j, gm.Coef[j], wm.Coef[j], d)
			}
		}
		if d := math.Abs(got.Residual[s] - want.Residual[s]); d > ckTol*(1+want.Residual[s]) {
			t.Errorf("%s step %d: residual %.17g, want %.17g", label, s, got.Residual[s], want.Residual[s])
		}
	}
}

// roundTripCheckpoint pushes the checkpoint through its serialized form,
// exactly as the registry stores it.
func roundTripCheckpoint(t *testing.T, ck *FitCheckpoint) *FitCheckpoint {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatalf("write checkpoint: %v", err)
	}
	back, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	return back
}

// TestCheckpointResumeMatchesUninterrupted is the core property test: for
// every solver on every equivalence problem, a fit stopped after two path
// models, serialized, and resumed must walk the exact same path as a fit
// that was never interrupted.
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	problems := equivalenceProblems()
	for _, pname := range []string{"linear-noiseless", "linear-noisy", "quad-noisy"} {
		p := problems[pname]
		for _, fitter := range equivalenceSolvers() {
			label := solverLabel(fitter) + "/" + pname
			want, err := fitter.FitPath(p.d, p.f, equivalenceMaxLambda)
			if err != nil {
				t.Fatalf("%s cold: %v", label, err)
			}

			plan := &CheckpointPlan{After: 2}
			partial, err := FitPathContext(WithCheckpointPlan(context.Background(), plan), fitter, p.d, p.f, equivalenceMaxLambda)
			if err != nil {
				t.Fatalf("%s interrupted: %v", label, err)
			}
			if plan.CK == nil {
				t.Fatalf("%s: no checkpoint captured", label)
			}
			if len(partial.Models) > len(want.Models) {
				t.Fatalf("%s: interrupted path longer (%d) than full path (%d)", label, len(partial.Models), len(want.Models))
			}

			ck := roundTripCheckpoint(t, plan.CK)
			got, err := FitPathContext(WithResumeCheckpoint(context.Background(), ck), fitter, p.d, p.f, equivalenceMaxLambda)
			if err != nil {
				t.Fatalf("%s resume: %v", label, err)
			}
			comparePaths(t, label, got, want)
		}
	}
}

// TestCheckpointResumeRejectsWrongSolver pins the wiring guard: a checkpoint
// armed for a different solver is an error, not a silent cold fit.
func TestCheckpointResumeRejectsWrongSolver(t *testing.T) {
	p := equivalenceProblems()["linear-noiseless"]
	plan := &CheckpointPlan{After: 1}
	if _, err := FitPathContext(WithCheckpointPlan(context.Background(), plan), &OMP{}, p.d, p.f, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := FitPathContext(WithResumeCheckpoint(context.Background(), plan.CK), &STAR{}, p.d, p.f, 4); err == nil {
		t.Fatal("STAR accepted an OMP checkpoint")
	}
	if _, err := FitPathContext(WithResumeCheckpoint(context.Background(), plan.CK), &CD{}, p.d, p.f, 4); err == nil {
		t.Fatal("CD accepted an OMP checkpoint")
	}
}

// appendProblem builds a noiseless synthetic problem of kAll rows whose
// leading kParent rows form the parent data set — the append-only contract
// of streaming refit.
func appendProblem(t *testing.T, kParent, kAll int) (parentD basis.Design, parentF []float64, allD basis.Design, allF []float64) {
	t.Helper()
	_, d, f, _ := synthProblem(301, 40, kAll, false, []int{2, 9, 17, 30}, []float64{2.5, -1.25, 0.75, 1.5}, 0)
	rows := make([]int, kParent)
	for i := range rows {
		rows[i] = i
	}
	return Subset(d, rows), f[:kParent], d, f
}

// TestCheckpointAppendRowsMatchesColdRefit validates the rank-one AppendRows
// fold: resuming a natural-end checkpoint on a grown sample set must leave
// every recorded prefix model equal to an unpenalized least-squares refit of
// its support on the enlarged data — the same answer a from-scratch
// refactorization would give, without paying for one.
func TestCheckpointAppendRowsMatchesColdRefit(t *testing.T) {
	parentD, parentF, allD, allF := appendProblem(t, 60, 75)
	for _, fitter := range []ContextFitter{&OMP{}, &StOMP{}} {
		label := fitter.Name()
		plan := &CheckpointPlan{} // After == 0: capture at the natural end
		if _, err := FitPathContext(WithCheckpointPlan(context.Background(), plan), fitter, parentD, parentF, 4); err != nil {
			t.Fatalf("%s parent fit: %v", label, err)
		}
		ck := roundTripCheckpoint(t, plan.CK)

		got, err := FitPathContext(WithResumeCheckpoint(context.Background(), ck), fitter, allD, allF, 4)
		if err != nil {
			t.Fatalf("%s grown resume: %v", label, err)
		}
		if len(got.Models) < len(ck.Models) {
			t.Fatalf("%s: resumed path lost prefix models (%d < %d)", label, len(got.Models), len(ck.Models))
		}
		for s := range ck.Models {
			m := got.Models[s]
			refit, err := refitOnSupport(allD, allF, m.Support)
			if err != nil {
				t.Fatalf("%s step %d refit: %v", label, s, err)
			}
			for j := range refit {
				if d := math.Abs(m.Coef[j] - refit[j]); d > 1e-8 {
					t.Errorf("%s step %d: coef[%d] = %.17g, refit says %.17g (Δ=%g)", label, s, j, m.Coef[j], refit[j], d)
				}
			}
		}
	}
}

// TestCheckpointAppendRowsRejectedWhereInvalid pins the refusal paths: LAR's
// normalization and CD's 1/K-scaled grid make appended samples invalid, and
// shrunk designs are invalid everywhere.
func TestCheckpointAppendRowsRejectedWhereInvalid(t *testing.T) {
	parentD, parentF, allD, allF := appendProblem(t, 60, 75)
	for _, fitter := range []ContextFitter{&LAR{}, &CD{}, &STAR{}} {
		plan := &CheckpointPlan{}
		if _, err := FitPathContext(WithCheckpointPlan(context.Background(), plan), fitter, parentD, parentF, 4); err != nil {
			t.Fatalf("%s parent fit: %v", fitter.Name(), err)
		}
		if _, err := FitPathContext(WithResumeCheckpoint(context.Background(), plan.CK), fitter, allD, allF, 4); err == nil {
			t.Errorf("%s accepted a grown design on resume", fitter.Name())
		}
	}
	// Shrunk design: fewer rows than the checkpoint — invalid for everyone.
	plan := &CheckpointPlan{}
	if _, err := FitPathContext(WithCheckpointPlan(context.Background(), plan), &OMP{}, allD, allF, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := FitPathContext(WithResumeCheckpoint(context.Background(), plan.CK), &OMP{}, parentD, parentF, 4); err == nil {
		t.Error("OMP accepted a shrunk design on resume")
	}
}

// TestWarmStartReplaySpeedsSelection pins warm replay's semantics: the
// warm-started fit must record the replayed support in its inherited order
// with honestly refit coefficients, then continue normal selection.
func TestWarmStartReplay(t *testing.T) {
	_, parentF, allD, allF := appendProblem(t, 60, 75)
	_ = parentF
	cold, err := (&OMP{}).FitPath(allD, allF, 4)
	if err != nil {
		t.Fatal(err)
	}
	warm := cold.Models[len(cold.Models)-1]

	got, err := FitPathContext(WithWarmStart(context.Background(), warm), &OMP{}, allD, allF, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Models) == 0 {
		t.Fatal("warm replay recorded no models")
	}
	last := got.Models[len(got.Models)-1]
	if len(last.Support) != len(warm.Support) {
		t.Fatalf("warm replay support size %d, want %d", len(last.Support), len(warm.Support))
	}
	for j, idx := range warm.Support {
		if last.Support[j] != idx {
			t.Errorf("warm replay support[%d] = %d, want %d (inherited order)", j, last.Support[j], idx)
		}
		if d := math.Abs(last.Coef[j] - warm.Coef[j]); d > ckTol {
			t.Errorf("warm replay coef[%d] = %.17g, want %.17g", j, last.Coef[j], warm.Coef[j])
		}
	}

	// A warm start whose dictionary does not match is an error.
	bad := &Model{M: warm.M + 1, Support: []int{0}, Coef: []float64{1}}
	if _, err := FitPathContext(WithWarmStart(context.Background(), bad), &OMP{}, allD, allF, 4); err == nil {
		t.Error("warm start with mismatched dictionary accepted")
	}
	// Out-of-range or stale support entries are skipped, not fatal.
	stale := &Model{M: warm.M, Support: []int{warm.Support[0], warm.M - 1}, Coef: []float64{1, 1}}
	if _, err := FitPathContext(WithWarmStart(context.Background(), stale), &OMP{}, allD, allF, 4); err != nil {
		t.Errorf("warm start with skippable support failed: %v", err)
	}
}

// TestCrossValidateScrubsCheckpointState pins the fold hygiene rule: fold
// fits run on row subsets, so CV under an armed resume checkpoint must not
// fail (folds scrub it) and must still capture the *final* refit's state.
func TestCrossValidateScrubsCheckpointState(t *testing.T) {
	_, _, allD, allF := appendProblem(t, 60, 75)
	plan := &CheckpointPlan{}
	ctx := WithCheckpointPlan(context.Background(), plan)
	cv, err := CrossValidateCtx(ctx, &OMP{}, allD, allF, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.CK == nil {
		t.Fatal("CV did not capture the final refit's checkpoint")
	}
	if plan.CK.K != len(allF) {
		t.Fatalf("captured checkpoint has K=%d, want the full %d (a fold fit raced the capture)", plan.CK.K, len(allF))
	}
	// Resuming CV with the captured checkpoint must work: folds scrub the
	// checkpoint (their row subsets would violate it) while the final refit
	// consumes it.
	rctx := WithResumeCheckpoint(WithWarmStart(context.Background(), cv.Model), plan.CK)
	cv2, err := CrossValidateCtx(rctx, &OMP{}, allD, allF, 3, 4)
	if err != nil {
		t.Fatalf("CV under resume checkpoint: %v", err)
	}
	if cv2.Model == nil {
		t.Fatal("warm CV returned no model")
	}
}

// FuzzReadCheckpoint drives the checkpoint parser — the registry's
// crash-recovery read surface — with arbitrary bytes. Invariants: never
// panic, an accepted checkpoint re-validates, and it survives a write/read
// round trip.
func FuzzReadCheckpoint(f *testing.F) {
	valid := func() []byte {
		p := equivalenceProblems()["linear-noiseless"]
		plan := &CheckpointPlan{After: 2}
		if _, err := FitPathContext(WithCheckpointPlan(context.Background(), plan), &OMP{}, p.d, p.f, 4); err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteCheckpoint(&buf, plan.CK); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}()

	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                                                   // truncated mid-object
	f.Add([]byte(`{"version":1,"solver":"OMP","k":2,"m":3,"max_lambda":1,"residual":[1,2]}`))     // minimal valid
	f.Add([]byte(`{"version":99,"solver":"OMP","k":2,"m":3,"max_lambda":1,"residual":[1,2]}`))    // future version
	f.Add([]byte(`{"version":0,"solver":"OMP","k":2,"m":3,"max_lambda":1,"residual":[1,2]}`))     // zero version
	f.Add([]byte(`{"version":1,"solver":"","k":2,"m":3,"max_lambda":1,"residual":[1,2]}`))        // nameless solver
	f.Add([]byte(`{"version":1,"solver":"OMP","k":2,"m":3,"max_lambda":1,"residual":[1]}`))       // residual/K mismatch
	f.Add([]byte(`{"version":1,"solver":"OMP","k":2,"m":3,"max_lambda":1,"residual":[1,1e999]}`)) // overflowing residual
	f.Add([]byte(`{"version":1,"solver":"OMP","k":2,"m":3,"max_lambda":1,"residual":[1,2],` +
		`"support":[1,1]}`)) // duplicate support
	f.Add([]byte(`{"version":1,"solver":"OMP","k":2,"m":3,"max_lambda":1,"residual":[1,2],` +
		`"support":[7]}`)) // support out of range
	f.Add([]byte(`{"version":1,"solver":"OMP","k":2,"m":3,"max_lambda":1,"residual":[1,2],` +
		`"support":[0],"gtf":[1,2]}`)) // gtf/support mismatch
	f.Add([]byte(`{"version":1,"solver":"OMP","k":2,"m":3,"max_lambda":1,"residual":[1,2],` +
		`"support":[0,2],"gtf":[1,2],"chol_l":[1,0]}`)) // short factor
	f.Add([]byte(`{"version":1,"solver":"OMP","k":2,"m":3,"max_lambda":1,"residual":[1,2],` +
		`"models":[{"m":3,"support":[0],"coef":[1]}]}`)) // models without res_norms
	f.Add([]byte(`{"version":1,"solver":"OMP","k":2,"m":3,"max_lambda":1,"residual":[1,2],` +
		`"models":[null],"res_norms":[1]}`)) // null model
	f.Add([]byte(`{"version":1,"solver":"CD","k":2,"m":3,"max_lambda":1,"residual":[1,2],` +
		`"alpha_idx":[0,0],"alpha_val":[1,2]}`)) // duplicate alpha index
	f.Add([]byte(`{"version":1,"solver":"CD","k":2,"m":3,"max_lambda":1,"residual":[1,2],` +
		`"alpha_idx":[1],"alpha_val":[1,2]}`)) // alpha idx/val mismatch
	f.Add([]byte(`{"version":1,"solver":"CD","k":2,"m":3,"max_lambda":1,"residual":[1,2],"mu":-1}`)) // negative grid
	f.Add([]byte(`{"version":1,"solver":"StOMP","k":2,"m":3,"max_lambda":1,"residual":[1,2],` +
		`"stage":-3}`)) // negative stage
	f.Add([]byte(`{"version":1,"solver":"OMP","k":-5,"m":3,"max_lambda":1,"residual":[]}`)) // negative K
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return // rejected input is the expected outcome; it must just not panic
		}
		if err := ck.Validate(); err != nil {
			t.Fatalf("accepted checkpoint fails Validate: %v\ninput: %q", err, data)
		}
		var buf bytes.Buffer
		if err := WriteCheckpoint(&buf, ck); err != nil {
			t.Fatalf("accepted checkpoint fails to re-serialize: %v\ninput: %q", err, data)
		}
		back, err := ReadCheckpoint(&buf)
		if err != nil {
			t.Fatalf("round trip fails to parse: %v\nre-serialized: %q", err, buf.Bytes())
		}
		if back.Solver != ck.Solver || back.K != ck.K || back.M != ck.M ||
			len(back.Support) != len(ck.Support) || len(back.Models) != len(ck.Models) {
			t.Fatalf("round trip changed the checkpoint: %+v -> %+v", ck, back)
		}
	})
}

// BenchmarkRefineWarmVsCold measures the tentpole speedup at paper scale:
// K = 500 parent samples, 20% appended (600 total), M = 5050 quadratic
// dictionary. "cold" is a full cross-validated fit on the enlarged data;
// "warm" is the refine path — fold fits warm-replay the parent support
// (no correlation sweeps for inherited bases) and the final refit resumes
// the parent checkpoint, folding the appended rows in as rank-one updates.
// The acceptance bar is warm ≤ 50% of cold.
func BenchmarkRefineWarmVsCold(b *testing.B) {
	const (
		kParent = fitBenchK
		kAll    = fitBenchK * 6 / 5 // +20%
		folds   = 5
	)
	dict := basis.Quadratic(fitBenchDim)
	src := rng.New(77)
	points := make([][]float64, kAll)
	for k := range points {
		points[k] = src.NormVec(nil, fitBenchDim)
	}
	support := src.Perm(dict.Size())[:12]
	coef := src.NormVec(nil, 12)
	allD := basis.NewDenseDesign(dict, points)
	truth := &Model{M: dict.Size(), Support: support, Coef: coef}
	allF := truth.Predict(allD)
	for i := range allF {
		allF[i] += 0.01 * src.Norm()
	}
	rows := make([]int, kParent)
	for i := range rows {
		rows[i] = i
	}
	parentD := Subset(allD, rows)
	parentF := allF[:kParent]

	// Parent fit (setup, untimed): cross-validated model + final-fit
	// checkpoint, exactly what the registry stores beside a published model.
	plan := &CheckpointPlan{}
	parent, err := CrossValidateCtx(WithCheckpointPlan(context.Background(), plan), &OMP{}, parentD, parentF, folds, fitBenchLambda)
	if err != nil {
		b.Fatal(err)
	}
	if plan.CK == nil {
		b.Fatal("parent fit captured no checkpoint")
	}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := CrossValidateCtx(context.Background(), &OMP{}, allD, allF, folds, fitBenchLambda); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		ctx := WithResumeCheckpoint(WithWarmStart(context.Background(), parent.Model), plan.CK)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := CrossValidateCtx(ctx, &OMP{}, allD, allF, folds, fitBenchLambda); err != nil {
				b.Fatal(err)
			}
		}
	})
}
