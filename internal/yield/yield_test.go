package yield

import (
	"math"
	"testing"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
)

// gaussianModel builds f = mean + c1·y0 + c2·y1 over a linear basis: a
// Gaussian response with known mean and sigma.
func gaussianModel(mean, c1, c2 float64) (*basis.Basis, *core.Model) {
	b := basis.Linear(5)
	m := &core.Model{M: b.Size(), Support: []int{0, 1, 2}, Coef: []float64{mean, c1, c2}}
	return b, m
}

func TestModelMomentsClosedForm(t *testing.T) {
	b, m := gaussianModel(3.0, 0.6, -0.8)
	if got := ModelMean(m, b); got != 3.0 {
		t.Errorf("mean = %g, want 3", got)
	}
	// Var = 0.6² + 0.8² = 1.0.
	if got := ModelVariance(m, b); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("variance = %g, want 1", got)
	}
	if got := ModelStd(m, b); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("std = %g, want 1", got)
	}
}

func TestModelMomentsQuadraticTerms(t *testing.T) {
	// Quadratic Hermite terms are zero-mean unit-variance too, so the same
	// formulas hold for nonlinear models.
	b := basis.Quadratic(3)
	var quadIdx int
	for i, term := range b.Terms {
		if term.Degree() == 2 {
			quadIdx = i
			break
		}
	}
	m := &core.Model{M: b.Size(), Support: []int{0, quadIdx}, Coef: []float64{5, 2}}
	if got := ModelMean(m, b); got != 5 {
		t.Errorf("mean = %g, want 5", got)
	}
	if got := ModelVariance(m, b); math.Abs(got-4) > 1e-12 {
		t.Errorf("variance = %g, want 4", got)
	}
	// Cross-check against Monte Carlo.
	a, err := NewAnalyzer(b, map[string]*core.Model{"f": m})
	if err != nil {
		t.Fatal(err)
	}
	samples := a.Sample(rng.New(1), 200000)["f"]
	if mc := stats.Mean(samples); math.Abs(mc-5) > 0.02 {
		t.Errorf("MC mean %g, want 5", mc)
	}
	if mc := stats.Variance(samples); math.Abs(mc-4) > 0.08 {
		t.Errorf("MC variance %g, want 4", mc)
	}
}

func TestModelMeanNoConstant(t *testing.T) {
	b := basis.Linear(3)
	m := &core.Model{M: b.Size(), Support: []int{1}, Coef: []float64{2}}
	if got := ModelMean(m, b); got != 0 {
		t.Errorf("mean = %g, want 0 without constant term", got)
	}
}

func TestModelMomentsBasisMismatchPanics(t *testing.T) {
	b := basis.Linear(3)
	m := &core.Model{M: 99}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ModelMean(m, b)
}

func TestYieldMatchesGaussianCDF(t *testing.T) {
	// f ~ N(0, 1): spec f ≤ 1.2816 (the 90% quantile) must yield ≈ 0.9.
	b, m := gaussianModel(0, 1, 0)
	a, err := NewAnalyzer(b, map[string]*core.Model{"f": m})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Yield(rng.New(2), 200000, map[string]Spec{
		"f": {Low: math.Inf(-1), High: 1.2816},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Yield-0.9) > 0.005 {
		t.Errorf("yield = %g, want 0.90", res.Yield)
	}
	if math.Abs(res.Marginal["f"]-res.Yield) > 1e-12 {
		t.Error("single-spec marginal must equal joint yield")
	}
}

func TestJointYieldBelowMarginals(t *testing.T) {
	// Two independent metrics: joint yield = product of marginals.
	b := basis.Linear(4)
	m1 := &core.Model{M: b.Size(), Support: []int{1}, Coef: []float64{1}} // depends on y0
	m2 := &core.Model{M: b.Size(), Support: []int{2}, Coef: []float64{1}} // depends on y1
	a, err := NewAnalyzer(b, map[string]*core.Model{"p": m1, "q": m2})
	if err != nil {
		t.Fatal(err)
	}
	specs := map[string]Spec{
		"p": {Low: math.Inf(-1), High: 0}, // 50%
		"q": {Low: math.Inf(-1), High: 0}, // 50%
	}
	res, err := a.Yield(rng.New(3), 200000, specs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Yield-0.25) > 0.01 {
		t.Errorf("joint yield %g, want 0.25", res.Yield)
	}
	for name, p := range res.Marginal {
		if math.Abs(p-0.5) > 0.01 {
			t.Errorf("marginal %s = %g, want 0.5", name, p)
		}
	}
}

func TestQuantiles(t *testing.T) {
	b, m := gaussianModel(0, 1, 0)
	a, err := NewAnalyzer(b, map[string]*core.Model{"f": m})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := a.Quantiles(rng.New(4), 200000, "f", []float64{0.5, 0.9772})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qs[0]) > 0.02 {
		t.Errorf("median %g, want 0", qs[0])
	}
	if math.Abs(qs[1]-2) > 0.05 {
		t.Errorf("97.72%% quantile %g, want 2 (2σ)", qs[1])
	}
}

func TestAnalyzerValidation(t *testing.T) {
	b := basis.Linear(2)
	if _, err := NewAnalyzer(b, nil); err == nil {
		t.Error("empty model set must error")
	}
	if _, err := NewAnalyzer(b, map[string]*core.Model{"f": {M: 7}}); err == nil {
		t.Error("dictionary mismatch must error")
	}
	a, err := NewAnalyzer(b, map[string]*core.Model{"f": {M: b.Size()}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Yield(rng.New(1), 0, map[string]Spec{"f": {}}); err == nil {
		t.Error("n=0 must error")
	}
	if _, err := a.Yield(rng.New(1), 10, map[string]Spec{"g": {}}); err == nil {
		t.Error("unknown metric spec must error")
	}
	if _, err := a.Yield(rng.New(1), 10, nil); err == nil {
		t.Error("no specs must error")
	}
	if _, err := a.Quantiles(rng.New(1), 10, "g", []float64{0.5}); err == nil {
		t.Error("unknown metric must error")
	}
}

func TestSpecPass(t *testing.T) {
	s := Spec{Low: -1, High: 2}
	for v, want := range map[float64]bool{-2: false, -1: true, 0: true, 2: true, 3: false} {
		if s.Pass(v) != want {
			t.Errorf("Pass(%g) = %v", v, !want)
		}
	}
}

// TestEndToEndYieldFromFit ties the whole flow together: fit a sparse model
// with OMP from samples of a known Gaussian response, then verify that the
// predicted yield matches the analytic value.
func TestEndToEndYieldFromFit(t *testing.T) {
	b := basis.Linear(30)
	truth := &core.Model{M: b.Size(), Support: []int{0, 3, 10}, Coef: []float64{1.0, 0.8, -0.6}}
	src := rng.New(5)
	const k = 200
	pts := make([][]float64, k)
	f := make([]float64, k)
	for i := range pts {
		pts[i] = src.NormVec(nil, 30)
		f[i] = truth.PredictPoint(b, pts[i])
	}
	d := basis.NewDenseDesign(b, pts)
	model, err := (&core.OMP{}).Fit(d, f, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic: f ~ N(1, 1). Spec f ≥ 0 → Φ(1) ≈ 0.8413.
	a, err := NewAnalyzer(b, map[string]*core.Model{"f": model})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Yield(rng.New(6), 100000, map[string]Spec{"f": {Low: 0, High: math.Inf(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Yield-0.8413) > 0.01 {
		t.Errorf("yield %g, want Φ(1) ≈ 0.8413", res.Yield)
	}
	if math.Abs(ModelMean(model, b)-1) > 1e-6 || math.Abs(ModelStd(model, b)-1) > 1e-6 {
		t.Errorf("fitted moments (%g, %g), want (1, 1)", ModelMean(model, b), ModelStd(model, b))
	}
}

func TestWorstCaseCornerLinearModel(t *testing.T) {
	// f = 1 + 0.6·y0 − 0.8·y1: the 3σ worst-case maximum is along
	// (0.6, −0.8)/1 scaled by 3, value 1 + 3·1 = 4.
	b, m := gaussianModel(1, 0.6, -0.8)
	corner, val := WorstCaseCorner(m, b, 3, true, 5)
	if math.Abs(val-4) > 1e-10 {
		t.Errorf("max corner value %g, want 4", val)
	}
	if math.Abs(corner[0]-1.8) > 1e-10 || math.Abs(corner[1]+2.4) > 1e-10 {
		t.Errorf("corner %v, want [1.8 -2.4 0 0 0]", corner)
	}
	_, lo := WorstCaseCorner(m, b, 3, false, 5)
	if math.Abs(lo-(-2)) > 1e-10 {
		t.Errorf("min corner value %g, want -2", lo)
	}
}

func TestWorstCaseCornerQuadratic(t *testing.T) {
	// f = H̃₂(y0)·c: maximum on the 2σ sphere is at y0 = ±2 with value
	// c·(4−1)/√2; the iteration must land on the sphere.
	b := basis.Quadratic(3)
	var quadIdx int
	for i, term := range b.Terms {
		if term.Degree() == 2 && len(term) == 1 && term[0].Var == 0 {
			quadIdx = i
		}
	}
	m := &core.Model{M: b.Size(), Support: []int{quadIdx}, Coef: []float64{2}}
	corner, val := WorstCaseCorner(m, b, 2, true, 50)
	want := 2 * (4 - 1) / math.Sqrt2
	if math.Abs(val-want) > 1e-6 {
		t.Errorf("max value %g, want %g", val, want)
	}
	r := 0.0
	for _, v := range corner {
		r += v * v
	}
	if math.Abs(math.Sqrt(r)-2) > 1e-9 {
		t.Errorf("corner radius %g, want 2", math.Sqrt(r))
	}
}

func TestWorstCaseCornerPanicsOnBadRadius(t *testing.T) {
	b, m := gaussianModel(0, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WorstCaseCorner(m, b, 0, true, 3)
}

func TestSobolTotalAdditiveModel(t *testing.T) {
	// f = 3 + 2·y0 − 1·y2: variance 5, S0 = 4/5, S2 = 1/5, others 0.
	b := basis.Linear(4)
	m := &core.Model{M: b.Size(), Support: []int{0, 1, 3}, Coef: []float64{3, 2, -1}}
	s := SobolTotal(m, b)
	want := []float64{0.8, 0, 0.2, 0}
	for i := range want {
		if math.Abs(s[i]-want[i]) > 1e-12 {
			t.Errorf("S%d = %g, want %g", i, s[i], want[i])
		}
	}
}

func TestSobolTotalInteraction(t *testing.T) {
	// f = y0·y1: the cross term charges both variables fully.
	b := basis.Quadratic(3)
	var crossIdx int
	for i, term := range b.Terms {
		if len(term) == 2 && term[0].Var == 0 && term[1].Var == 1 {
			crossIdx = i
		}
	}
	m := &core.Model{M: b.Size(), Support: []int{crossIdx}, Coef: []float64{2}}
	s := SobolTotal(m, b)
	if s[0] != 1 || s[1] != 1 || s[2] != 0 {
		t.Errorf("Sobol = %v, want [1 1 0]", s)
	}
}

func TestSobolTotalZeroVariance(t *testing.T) {
	b := basis.Linear(2)
	m := &core.Model{M: b.Size(), Support: []int{0}, Coef: []float64{5}}
	s := SobolTotal(m, b)
	if s[0] != 0 || s[1] != 0 {
		t.Errorf("constant model Sobol = %v, want zeros", s)
	}
}
