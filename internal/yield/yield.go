// Package yield turns fitted response surface models into the quantities
// the paper's introduction motivates them with: performance distributions,
// quantiles and parametric yield. Once a sparse model is extracted from a
// few hundred transistor-level simulations, millions of virtual Monte Carlo
// samples cost only polynomial evaluations — this package is that payoff.
//
// For orthonormal Hermite models two moments come out in closed form:
// E[f] is the constant-term coefficient and Var[f] = Σ α_m² over the
// non-constant terms, directly from eq. (2)'s orthonormality.
package yield

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
)

// ModelMean returns the exact mean of a fitted orthonormal-Hermite model
// under ΔY ~ N(0, I): the coefficient of the constant basis function.
func ModelMean(m *core.Model, b *basis.Basis) float64 {
	if b.Size() != m.M {
		panic(fmt.Sprintf("yield: basis size %d does not match model dictionary %d", b.Size(), m.M))
	}
	for i, idx := range m.Support {
		if b.Terms[idx].Degree() == 0 {
			return m.Coef[i]
		}
	}
	return 0
}

// ModelVariance returns the exact variance of the model under ΔY ~ N(0, I):
// the sum of squared non-constant coefficients (orthonormality of eq. (2)).
func ModelVariance(m *core.Model, b *basis.Basis) float64 {
	if b.Size() != m.M {
		panic(fmt.Sprintf("yield: basis size %d does not match model dictionary %d", b.Size(), m.M))
	}
	v := 0.0
	for i, idx := range m.Support {
		if b.Terms[idx].Degree() == 0 {
			continue
		}
		v += m.Coef[i] * m.Coef[i]
	}
	return v
}

// ModelStd returns the exact standard deviation of the model.
func ModelStd(m *core.Model, b *basis.Basis) float64 {
	return math.Sqrt(ModelVariance(m, b))
}

// Spec is an acceptance window for one metric. Use ±Inf for one-sided specs.
type Spec struct {
	Low, High float64
}

// Pass reports whether v satisfies the spec.
func (s Spec) Pass(v float64) bool { return v >= s.Low && v <= s.High }

// Analyzer evaluates a set of per-metric models over a shared variation
// space for distribution and yield estimation.
type Analyzer struct {
	// B is the shared basis (all models must use it).
	B *basis.Basis
	// Models maps metric name to its fitted model.
	Models map[string]*core.Model
}

// NewAnalyzer validates and wraps the models.
func NewAnalyzer(b *basis.Basis, models map[string]*core.Model) (*Analyzer, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("yield: no models")
	}
	for name, m := range models {
		if m.M != b.Size() {
			return nil, fmt.Errorf("yield: model %q has dictionary %d, basis has %d", name, m.M, b.Size())
		}
	}
	return &Analyzer{B: b, Models: models}, nil
}

// Sample draws n virtual Monte Carlo samples of every metric.
func (a *Analyzer) Sample(src *rng.Source, n int) map[string][]float64 {
	out := make(map[string][]float64, len(a.Models))
	for name := range a.Models {
		out[name] = make([]float64, n)
	}
	dy := make([]float64, a.B.Dim)
	row := make([]float64, a.B.Size())
	ev := a.B.NewEvaluator()
	for k := 0; k < n; k++ {
		src.NormVec(dy, a.B.Dim)
		ev.EvalRow(row, dy)
		for name, m := range a.Models {
			s := 0.0
			for i, idx := range m.Support {
				s += m.Coef[i] * row[idx]
			}
			out[name][k] = s
		}
	}
	return out
}

// Result is a yield estimate.
type Result struct {
	// Yield is the joint pass probability over all specs.
	Yield float64
	// Marginal is the per-metric pass probability.
	Marginal map[string]float64
	// N is the virtual sample count used.
	N int
}

// Yield estimates the parametric yield for the given specs by virtual Monte
// Carlo with n samples. Metrics without a spec are ignored; a spec for an
// unknown metric is an error.
func (a *Analyzer) Yield(src *rng.Source, n int, specs map[string]Spec) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("yield: sample count %d must be positive", n)
	}
	for name := range specs {
		if _, ok := a.Models[name]; !ok {
			return nil, fmt.Errorf("yield: spec for unknown metric %q", name)
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("yield: no specs")
	}
	samples := a.Sample(src, n)
	passAll := 0
	passOne := make(map[string]int, len(specs))
	for k := 0; k < n; k++ {
		all := true
		for name, spec := range specs {
			if spec.Pass(samples[name][k]) {
				passOne[name]++
			} else {
				all = false
			}
		}
		if all {
			passAll++
		}
	}
	res := &Result{
		Yield:    float64(passAll) / float64(n),
		Marginal: make(map[string]float64, len(specs)),
		N:        n,
	}
	for name := range specs {
		res.Marginal[name] = float64(passOne[name]) / float64(n)
	}
	return res, nil
}

// Quantiles estimates the given quantiles of one metric from n virtual
// samples.
func (a *Analyzer) Quantiles(src *rng.Source, n int, metric string, ps []float64) ([]float64, error) {
	m, ok := a.Models[metric]
	if !ok {
		return nil, fmt.Errorf("yield: unknown metric %q", metric)
	}
	_ = m
	samples := a.Sample(src, n)[metric]
	sort.Float64s(samples)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = stats.Quantile(samples, p)
	}
	return out, nil
}

// WorstCaseCorner searches the sphere ‖ΔY‖ = radius (in sigma units) for the
// factor corner extremizing the model, by projected gradient ascent/descent.
// For a linear model the result is exact (the gradient direction); for
// nonlinear models a few iterations converge to a local extremum. It returns
// the corner and the model value there — the "worst-case corner" analysis
// classical RSM flows run after fitting.
func WorstCaseCorner(m *core.Model, b *basis.Basis, radius float64, maximize bool, iters int) ([]float64, float64) {
	if radius <= 0 {
		panic(fmt.Sprintf("yield: corner radius %g must be positive", radius))
	}
	if iters < 1 {
		iters = 1
	}
	n := b.Dim
	y := make([]float64, n)
	grad := make([]float64, n)
	// Initial direction: the gradient at the origin (or an arbitrary axis
	// when it vanishes).
	m.Gradient(b, grad, y)
	if norm := norm2(grad); norm == 0 {
		grad[0] = 1
	}
	project(y, grad, radius, maximize)
	for it := 0; it < iters; it++ {
		m.Gradient(b, grad, y)
		if norm2(grad) == 0 {
			break
		}
		project(y, grad, radius, maximize)
	}
	return y, m.PredictPoint(b, y)
}

// project sets y to ±radius·g/‖g‖.
func project(y, g []float64, radius float64, maximize bool) {
	n := norm2(g)
	s := radius / n
	if !maximize {
		s = -s
	}
	for i := range y {
		y[i] = s * g[i]
	}
}

func norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// SobolTotal returns the total Sobol sensitivity index of every input
// variable: the fraction of the model's variance attributable to terms
// touching that variable. For an orthonormal Hermite expansion the indices
// are exact sums of squared coefficients — no sampling needed. Variables
// the model never references get exactly 0; the indices of a purely
// additive model sum to 1 (interaction terms are counted once per variable
// they touch, so the sum can exceed 1 in general).
func SobolTotal(m *core.Model, b *basis.Basis) []float64 {
	if b.Size() != m.M {
		panic(fmt.Sprintf("yield: basis size %d does not match model dictionary %d", b.Size(), m.M))
	}
	totalVar := ModelVariance(m, b)
	out := make([]float64, b.Dim)
	if totalVar == 0 {
		return out
	}
	for i, idx := range m.Support {
		term := b.Terms[idx]
		if term.Degree() == 0 {
			continue
		}
		c2 := m.Coef[i] * m.Coef[i]
		for _, vp := range term {
			out[vp.Var] += c2 / totalVar
		}
	}
	return out
}
