package stats

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/rng"
)

func randSPD(r *rand.Rand, n int) *linalg.Matrix {
	g := linalg.NewMatrix(n+3, n)
	for i := range g.Data {
		g.Data[i] = r.NormFloat64()
	}
	return g.Gram()
}

func TestSymEigenDiagonal(t *testing.T) {
	a := linalg.NewMatrixFrom([][]float64{{3, 0}, {0, 1}})
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Errorf("vals = %v, want [3 1]", vals)
	}
	// Eigenvectors of a diagonal matrix are the coordinate axes.
	if math.Abs(math.Abs(vecs.At(0, 0))-1) > 1e-12 {
		t.Errorf("first eigenvector %v not axis-aligned", vecs.Col(nil, 0))
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := linalg.NewMatrixFrom([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Errorf("vals = %v, want [3 1]", vals)
	}
	// Check A·v = λ·v for the dominant pair.
	v0 := vecs.Col(nil, 0)
	av := a.MulVec(nil, v0)
	for i := range av {
		if math.Abs(av[i]-3*v0[i]) > 1e-10 {
			t.Errorf("A·v ≠ λ·v at %d: %g vs %g", i, av[i], 3*v0[i])
		}
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a := randSPD(r, 8)
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	// Descending order.
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Fatalf("eigenvalues not descending: %v", vals)
		}
	}
	// Orthonormal columns.
	vtv := vecs.T().Mul(vecs)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(vtv.At(i, j)-want) > 1e-9 {
				t.Fatalf("VᵀV(%d,%d) = %g, want %g", i, j, vtv.At(i, j), want)
			}
		}
	}
	// Reconstruction A = V·Λ·Vᵀ.
	lam := linalg.NewMatrix(8, 8)
	for i, v := range vals {
		lam.Set(i, i, v)
	}
	rec := vecs.Mul(lam).Mul(vecs.T())
	for i := range a.Data {
		if math.Abs(rec.Data[i]-a.Data[i]) > 1e-8*(1+math.Abs(a.Data[i])) {
			t.Fatalf("reconstruction differs at %d: %g vs %g", i, rec.Data[i], a.Data[i])
		}
	}
}

func TestSymEigenNonSquare(t *testing.T) {
	if _, _, err := SymEigen(linalg.NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestPCARoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	sigma := randSPD(r, 6)
	pca, err := NewPCA(sigma, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if pca.Components() != 6 {
		t.Fatalf("Components = %d, want 6 for full-rank covariance", pca.Components())
	}
	dy := make([]float64, 6)
	for i := range dy {
		dy[i] = r.NormFloat64()
	}
	dx := pca.ToParams(nil, dy)
	back := pca.ToFactors(nil, dx)
	for i := range dy {
		if math.Abs(back[i]-dy[i]) > 1e-8 {
			t.Errorf("round trip factor %d: %g vs %g", i, back[i], dy[i])
		}
	}
}

func TestPCAFactorsAreStandardNormal(t *testing.T) {
	// Samples drawn from N(0, Σ) must map to unit-variance uncorrelated
	// factors — the property eq. (2) of the paper relies on.
	r := rand.New(rand.NewSource(11))
	sigma := linalg.NewMatrixFrom([][]float64{
		{2.0, 0.9, 0.2},
		{0.9, 1.5, -0.4},
		{0.2, -0.4, 0.8},
	})
	pca, err := NewPCA(sigma, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := rng.NewMVNormal(sigma)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(12)
	const n = 60000
	d := pca.Components()
	sums := make([]float64, d)
	sq := linalg.NewMatrix(d, d)
	dx := make([]float64, 3)
	dy := make([]float64, d)
	for k := 0; k < n; k++ {
		mv.Sample(src, dx)
		pca.ToFactors(dy, dx)
		for i := 0; i < d; i++ {
			sums[i] += dy[i]
			for j := 0; j < d; j++ {
				sq.Set(i, j, sq.At(i, j)+dy[i]*dy[j])
			}
		}
	}
	for i := 0; i < d; i++ {
		if m := sums[i] / n; math.Abs(m) > 0.02 {
			t.Errorf("factor %d mean %g, want ~0", i, m)
		}
		for j := 0; j < d; j++ {
			got := sq.At(i, j) / n
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(got-want) > 0.03 {
				t.Errorf("factor cov(%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
	_ = r
}

func TestPCAVarianceFractionTruncates(t *testing.T) {
	// Strongly anisotropic covariance: one dominant direction.
	sigma := linalg.NewMatrixFrom([][]float64{
		{100, 0, 0},
		{0, 1, 0},
		{0, 0, 0.5},
	})
	pca, err := NewPCA(sigma, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if pca.Components() != 1 {
		t.Errorf("Components = %d, want 1 (dominant axis carries 98.5%% of variance)", pca.Components())
	}
}

func TestPCARejectsBadFraction(t *testing.T) {
	sigma := linalg.Eye(2)
	for _, f := range []float64{0, -0.5, 1.5} {
		if _, err := NewPCA(sigma, f); err == nil {
			t.Errorf("fraction %g should be rejected", f)
		}
	}
}

func TestCovarianceMatrix(t *testing.T) {
	// Perfectly correlated columns.
	data := linalg.NewMatrixFrom([][]float64{
		{1, 2}, {2, 4}, {3, 6}, {4, 8},
	})
	cov := CovarianceMatrix(data)
	// var(x) = 5/3, var(y) = 20/3, cov = 10/3.
	if math.Abs(cov.At(0, 0)-5.0/3) > 1e-12 {
		t.Errorf("var(x) = %g, want %g", cov.At(0, 0), 5.0/3)
	}
	if math.Abs(cov.At(1, 1)-20.0/3) > 1e-12 {
		t.Errorf("var(y) = %g, want %g", cov.At(1, 1), 20.0/3)
	}
	if math.Abs(cov.At(0, 1)-10.0/3) > 1e-12 || cov.At(0, 1) != cov.At(1, 0) {
		t.Errorf("cov(x,y) = %g, want %g", cov.At(0, 1), 10.0/3)
	}
}
