package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
)

// SymEigen computes the eigendecomposition of the symmetric matrix a using
// the cyclic Jacobi method. It returns the eigenvalues in descending order
// and the corresponding orthonormal eigenvectors as the columns of v.
func SymEigen(a *linalg.Matrix) (values []float64, v *linalg.Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("stats: SymEigen needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	w := a.Clone()
	v = linalg.Eye(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off <= 1e-30*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/columns p and q of w.
				for k := 0; k < n; k++ {
					akp, akq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*akp-s*akq)
					w.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*apk-s*aqk)
					w.Set(q, k, s*apk+c*aqk)
				}
				// Accumulate the rotation into v.
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	values = make([]float64, n)
	for i := range values {
		values[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] > values[idx[b]] })
	sortedVals := make([]float64, n)
	sortedVecs := linalg.NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, nil
}

// PCA holds a principal component analysis of a covariance matrix: the
// orthogonal transform mapping correlated, jointly-normal process parameters
// ΔX onto independent standard-normal factors ΔY, per Section II of the
// paper.
type PCA struct {
	// Values are the eigenvalues (variances along principal axes), descending.
	Values []float64
	// Vectors hold the principal directions as columns.
	Vectors *linalg.Matrix
	// kept is the number of retained components.
	kept int
}

// NewPCA performs PCA on the covariance matrix sigma, retaining components
// until fraction of the total variance is covered (fraction in (0, 1]; use 1
// to retain every component with positive variance).
func NewPCA(sigma *linalg.Matrix, fraction float64) (*PCA, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("stats: PCA variance fraction %g outside (0,1]", fraction)
	}
	vals, vecs, err := SymEigen(sigma)
	if err != nil {
		return nil, err
	}
	total := 0.0
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("stats: covariance has no positive variance")
	}
	kept, acc := 0, 0.0
	for _, v := range vals {
		if v <= 1e-12*total {
			break
		}
		kept++
		acc += v
		if acc/total >= fraction {
			break
		}
	}
	return &PCA{Values: vals, Vectors: vecs, kept: kept}, nil
}

// Components returns the number of retained independent factors.
func (p *PCA) Components() int { return p.kept }

// ToParams maps independent standard-normal factors dy (length Components)
// to correlated parameter deltas ΔX = V·diag(√λ)·ΔY. dst is allocated when
// nil.
func (p *PCA) ToParams(dst, dy []float64) []float64 {
	if len(dy) != p.kept {
		panic(fmt.Sprintf("stats: PCA.ToParams input length %d, want %d", len(dy), p.kept))
	}
	n := p.Vectors.Rows
	if dst == nil {
		dst = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		s := 0.0
		row := p.Vectors.Row(i)
		for j := 0; j < p.kept; j++ {
			s += row[j] * math.Sqrt(p.Values[j]) * dy[j]
		}
		dst[i] = s
	}
	return dst
}

// ToFactors maps parameter deltas ΔX back to factor scores
// ΔY = diag(1/√λ)·Vᵀ·ΔX (the pseudo-inverse of ToParams).
func (p *PCA) ToFactors(dst, dx []float64) []float64 {
	if len(dx) != p.Vectors.Rows {
		panic(fmt.Sprintf("stats: PCA.ToFactors input length %d, want %d", len(dx), p.Vectors.Rows))
	}
	if dst == nil {
		dst = make([]float64, p.kept)
	}
	for j := 0; j < p.kept; j++ {
		s := 0.0
		for i := 0; i < p.Vectors.Rows; i++ {
			s += p.Vectors.At(i, j) * dx[i]
		}
		dst[j] = s / math.Sqrt(p.Values[j])
	}
	return dst
}

// CovarianceMatrix estimates the sample covariance of data, where each row
// of data is one observation.
func CovarianceMatrix(data *linalg.Matrix) *linalg.Matrix {
	n, d := data.Rows, data.Cols
	means := make([]float64, d)
	for i := 0; i < n; i++ {
		row := data.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(n)
	}
	cov := linalg.NewMatrix(d, d)
	for i := 0; i < n; i++ {
		row := data.Row(i)
		for a := 0; a < d; a++ {
			da := row[a] - means[a]
			if da == 0 {
				continue
			}
			crow := cov.Row(a)
			for b := 0; b < d; b++ {
				crow[b] += da * (row[b] - means[b])
			}
		}
	}
	den := float64(n - 1)
	if n < 2 {
		den = 1
	}
	for i := range cov.Data {
		cov.Data[i] /= den
	}
	return cov
}
