// Package stats provides the statistical primitives for the variability
// modeling flow: sample moments, covariance/correlation estimation, a
// symmetric eigensolver, principal component analysis (the PCA step of the
// paper's Section II), and the relative modeling-error metric used across
// all experiments.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x (0 for empty x).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the unbiased sample variance of x (0 for fewer than two
// points).
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x)-1)
}

// StdDev returns the unbiased sample standard deviation of x.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// Quantile returns the p-quantile of x (linear interpolation between order
// statistics). It panics for empty x or p outside [0, 1].
func Quantile(x []float64, p float64) float64 {
	if len(x) == 0 {
		panic("stats: Quantile of empty data")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: Quantile p=%g outside [0,1]", p))
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Correlation returns the Pearson correlation of x and y.
func Correlation(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: Correlation length mismatch %d vs %d", len(x), len(y)))
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// RelativeRMSError is the modeling-error metric of the paper's Section V:
// the root-mean-square prediction residual normalized by the RMS magnitude
// of the true values. pred and truth must have equal nonzero length.
func RelativeRMSError(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		panic(fmt.Sprintf("stats: RelativeRMSError lengths %d vs %d", len(pred), len(truth)))
	}
	var num, den float64
	for i := range pred {
		d := pred[i] - truth[i]
		num += d * d
		den += truth[i] * truth[i]
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(num / den)
}

// BootstrapCI estimates a percentile confidence interval for a statistic of
// paired prediction/truth samples by resampling with replacement. It is used
// to put error bars on the modeling-error numbers reported in EXPERIMENTS.md
// — a point estimate from a few hundred held-out samples carries sampling
// noise that the paper's tables leave implicit.
//
// stat receives resampled (pred, truth) slices and returns the statistic
// (e.g. RelativeRMSError); level is the two-sided confidence level in (0,1);
// rounds is the number of bootstrap resamples.
func BootstrapCI(pred, truth []float64, stat func(pred, truth []float64) float64,
	level float64, rounds int, seed int64) (lo, hi float64) {
	if len(pred) != len(truth) || len(pred) == 0 {
		panic(fmt.Sprintf("stats: BootstrapCI lengths %d vs %d", len(pred), len(truth)))
	}
	if level <= 0 || level >= 1 {
		panic(fmt.Sprintf("stats: BootstrapCI level %g outside (0,1)", level))
	}
	if rounds < 10 {
		rounds = 10
	}
	n := len(pred)
	rp := make([]float64, n)
	rt := make([]float64, n)
	vals := make([]float64, rounds)
	state := uint64(seed)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			j := int(next() % uint64(n))
			rp[i], rt[i] = pred[j], truth[j]
		}
		vals[r] = stat(rp, rt)
	}
	alpha := (1 - level) / 2
	return Quantile(vals, alpha), Quantile(vals, 1-alpha)
}
