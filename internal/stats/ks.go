package stats

import (
	"fmt"
	"math"
	"sort"
)

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic: the
// maximum absolute difference between the empirical CDFs of a and b. It is
// the distribution-level accuracy measure used to validate that a fitted
// response surface model reproduces the simulator's performance
// distribution, not just its pointwise values.
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: KSStatistic of empty sample")
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var i, j int
	maxDiff := 0.0
	for i < len(sa) && j < len(sb) {
		// Step past the smallest value in both samples at once so ties do
		// not create spurious CDF differences.
		v := sa[i]
		if sb[j] < v {
			v = sb[j]
		}
		for i < len(sa) && sa[i] == v {
			i++
		}
		for j < len(sb) && sb[j] == v {
			j++
		}
		d := math.Abs(float64(i)/float64(len(sa)) - float64(j)/float64(len(sb)))
		if d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff
}

// KSCriticalValue returns the approximate critical value of the two-sample
// KS statistic at significance alpha (supported: 0.1, 0.05, 0.01), using the
// large-sample formula c(α)·√((n+m)/(n·m)).
func KSCriticalValue(n, m int, alpha float64) (float64, error) {
	var c float64
	switch alpha {
	case 0.10:
		c = 1.22
	case 0.05:
		c = 1.36
	case 0.01:
		c = 1.63
	default:
		return 0, fmt.Errorf("stats: unsupported KS significance %g (use 0.1, 0.05 or 0.01)", alpha)
	}
	if n < 1 || m < 1 {
		return 0, fmt.Errorf("stats: KS critical value needs positive sample sizes")
	}
	return c * math.Sqrt(float64(n+m)/float64(n*m)), nil
}
