package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestKSIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic(a, a); d != 0 {
		t.Errorf("KS of identical samples = %g, want 0", d)
	}
}

func TestKSDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if d := KSStatistic(a, b); math.Abs(d-1) > 1e-12 {
		t.Errorf("KS of disjoint samples = %g, want 1", d)
	}
}

func TestKSSameDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const n = 20000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64()
	}
	d := KSStatistic(a, b)
	crit, err := KSCriticalValue(n, n, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if d > crit {
		t.Errorf("KS %g exceeds 1%% critical value %g for equal distributions", d, crit)
	}
}

func TestKSShiftedDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	const n = 5000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64() + 0.5
	}
	d := KSStatistic(a, b)
	crit, _ := KSCriticalValue(n, n, 0.01)
	if d <= crit {
		t.Errorf("KS %g did not detect a 0.5σ shift (critical %g)", d, crit)
	}
	// Analytic KS distance of two normals shifted by 0.5σ is
	// 2Φ(0.25)−1 ≈ 0.197.
	if math.Abs(d-0.197) > 0.03 {
		t.Errorf("KS %g, want ≈ 0.197", d)
	}
}

func TestKSPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KSStatistic(nil, []float64{1})
}

func TestKSCriticalValueValidation(t *testing.T) {
	if _, err := KSCriticalValue(10, 10, 0.2); err == nil {
		t.Error("unsupported alpha must error")
	}
	if _, err := KSCriticalValue(0, 10, 0.05); err == nil {
		t.Error("zero sample size must error")
	}
	v, err := KSCriticalValue(100, 100, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.36 * math.Sqrt(200.0/10000.0)
	if math.Abs(v-want) > 1e-12 {
		t.Errorf("critical = %g, want %g", v, want)
	}
}
