package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(x); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := Variance(x); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %g, want %g", got, 32.0/7)
	}
	if got := StdDev(x); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %g", got)
	}
}

func TestMeanVarianceEdgeCases(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of one point should be 0")
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{4, 1, 3, 2}
	if got := Quantile(x, 0); got != 1 {
		t.Errorf("Q(0) = %g, want 1", got)
	}
	if got := Quantile(x, 1); got != 4 {
		t.Errorf("Q(1) = %g, want 4", got)
	}
	if got := Quantile(x, 0.5); got != 2.5 {
		t.Errorf("Q(0.5) = %g, want 2.5", got)
	}
	// The input must not be reordered.
	if x[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"empty", func() { Quantile(nil, 0.5) }},
		{"p<0", func() { Quantile([]float64{1}, -0.1) }},
		{"p>1", func() { Quantile([]float64{1}, 1.1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.f()
		})
	}
}

func TestCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if got := Correlation(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("Correlation = %g, want 1", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Correlation(x, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("Correlation = %g, want -1", got)
	}
	if got := Correlation(x, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("Correlation with constant = %g, want 0", got)
	}
}

func TestRelativeRMSError(t *testing.T) {
	truth := []float64{1, 2, 2}
	if got := RelativeRMSError(truth, truth); got != 0 {
		t.Errorf("exact prediction error = %g, want 0", got)
	}
	pred := []float64{1.1, 2.2, 2.2}
	want := math.Sqrt(0.01+0.04+0.04) / math.Sqrt(1+4+4)
	if got := RelativeRMSError(pred, truth); math.Abs(got-want) > 1e-12 {
		t.Errorf("error = %g, want %g", got, want)
	}
	if !math.IsInf(RelativeRMSError([]float64{1}, []float64{0}), 1) {
		t.Error("nonzero prediction of zero truth should be +Inf")
	}
	if RelativeRMSError([]float64{0}, []float64{0}) != 0 {
		t.Error("zero prediction of zero truth should be 0")
	}
}

// Property: relative error is scale invariant.
func TestRelativeRMSErrorScaleInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		pred := make([]float64, n)
		truth := make([]float64, n)
		for i := range pred {
			pred[i] = rng.NormFloat64()
			truth[i] = rng.NormFloat64() + 2 // keep away from 0
		}
		e1 := RelativeRMSError(pred, truth)
		c := 1 + math.Abs(rng.NormFloat64())
		scaledPred := make([]float64, n)
		scaledTruth := make([]float64, n)
		for i := range pred {
			scaledPred[i] = c * pred[i]
			scaledTruth[i] = c * truth[i]
		}
		e2 := RelativeRMSError(scaledPred, scaledTruth)
		return math.Abs(e1-e2) < 1e-10*(1+e1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBootstrapCICoversTruth(t *testing.T) {
	// Known setup: truth N(2, 0.5), predictions = truth + N(0, 0.1·2).
	// The relative RMS error is ≈ 0.1; the 95% CI must straddle it.
	rng := rand.New(rand.NewSource(55))
	const n = 400
	pred := make([]float64, n)
	truth := make([]float64, n)
	for i := range truth {
		truth[i] = 2 + 0.5*rng.NormFloat64()
		pred[i] = truth[i] + 0.2*rng.NormFloat64()
	}
	point := RelativeRMSError(pred, truth)
	lo, hi := BootstrapCI(pred, truth, RelativeRMSError, 0.95, 500, 1)
	if !(lo < point && point < hi) {
		t.Errorf("CI [%g, %g] does not contain the point estimate %g", lo, hi, point)
	}
	if hi-lo <= 0 || hi-lo > point {
		t.Errorf("CI width %g implausible for point %g", hi-lo, point)
	}
	// Deterministic in the seed.
	lo2, hi2 := BootstrapCI(pred, truth, RelativeRMSError, 0.95, 500, 1)
	if lo != lo2 || hi != hi2 {
		t.Error("BootstrapCI not deterministic for equal seeds")
	}
}

func TestBootstrapCIPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":     func() { BootstrapCI(nil, nil, RelativeRMSError, 0.95, 100, 1) },
		"bad level": func() { BootstrapCI([]float64{1}, []float64{1}, RelativeRMSError, 1.5, 100, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		})
	}
}
