package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/core"
)

// This file is the registry's replication surface: everything the cluster
// sync layer (internal/cluster) needs to mirror one node's store onto
// another. The contract rests on two invariants the store already keeps:
// versions are immutable once written, and version numbers are never reused
// (Put continues past quarantined, deleted, and tombstoned versions). A
// (name, version) pair therefore identifies exactly one envelope for all
// time, which makes pull-based sync conflict-free — no vector clocks, no
// last-writer-wins: a replica simply fetches the versions it lacks.
//
// Deletes propagate as tombstones: Delete records the highest removed
// version in dir/tombstones.json, ApplyTombstone replays that on a replica,
// and Put on the origin resumes numbering past the tombstone so a
// re-published name can never collide with a version some replica still
// holds.

// tombstonesFile is the store-relative path of the persisted tombstone map.
const tombstonesFile = "tombstones.json"

// loadTombstones reads dir/tombstones.json into memory. A missing file is a
// store that never deleted anything; a corrupt one is quarantined like any
// damaged store file (losing tombstones re-exposes deleted versions to
// sync, which is recoverable — refusing to boot is not).
func (r *Registry) loadTombstones() error {
	path := filepath.Join(r.dir, tombstonesFile)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("registry: read tombstones: %w", err)
	}
	ts := make(map[string]int)
	if err := json.Unmarshal(data, &ts); err != nil {
		if qErr := quarantine(r.dir, path); qErr != nil {
			return fmt.Errorf("registry: quarantine %s (unreadable: %v): %w", path, err, qErr)
		}
		r.log.Warn("registry: quarantined damaged tombstones file into corrupt/",
			"path", path, "error", err.Error())
		return nil
	}
	for name, v := range ts {
		if ValidateName(name) == nil && v >= 1 {
			r.tombstones[name] = v
		}
	}
	return nil
}

// saveTombstonesLocked persists the tombstone map atomically. Caller holds
// r.mu. In-memory registries keep tombstones only for the process lifetime.
func (r *Registry) saveTombstonesLocked() error {
	if r.dir == "" {
		return nil
	}
	blob, err := json.Marshal(r.tombstones)
	if err != nil {
		return fmt.Errorf("registry: encode tombstones: %w", err)
	}
	return persistAtomic(r.dir, tombstonesFile, append(blob, '\n'))
}

// Tombstones returns a copy of the delete markers: model name → highest
// version a delete covered.
func (r *Registry) Tombstones() map[string]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int, len(r.tombstones))
	for name, v := range r.tombstones {
		out[name] = v
	}
	return out
}

// ApplyTombstone replays a peer's delete: every local version of name up to
// and including version is removed (files, checkpoints, cache) and the
// tombstone recorded so sync never re-fetches them. Versions published
// after the delete (greater than the tombstone) survive — a delete and a
// re-publish that race across nodes converge on the re-published versions.
// Applying a tombstone at or below the existing one is a no-op.
func (r *Registry) ApplyTombstone(name string, version int) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	if version < 1 {
		return fmt.Errorf("registry: tombstone version %d invalid", version)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	prev := r.tombstones[name]
	if version <= prev {
		return nil
	}
	r.tombstones[name] = version
	if err := r.saveTombstonesLocked(); err != nil {
		if prev > 0 {
			r.tombstones[name] = prev
		} else {
			delete(r.tombstones, name)
		}
		return err
	}
	versions := r.models[name]
	var dead, live []*Entry
	for _, e := range versions {
		if e.Version <= version {
			dead = append(dead, e)
		} else {
			live = append(live, e)
		}
	}
	if r.dir != "" {
		for _, e := range dead {
			path := filepath.Join(r.dir, entryFile(name, e.Version))
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("registry: remove %s: %w", path, err)
			}
		}
	}
	if err := r.dropCheckpoints(name, dead); err != nil {
		return err
	}
	if len(live) == 0 {
		delete(r.models, name)
	} else {
		r.models[name] = live
	}
	return nil
}

// PutReplica stores env under an exact (name, version) slot, as pulled from
// a peer during sync. Unlike Put it never allocates a version number: the
// version travels with the envelope. Storing a version that already exists
// locally, or one a tombstone covers, is a silent no-op — sync is
// idempotent and at-least-once by construction.
func (r *Registry) PutReplica(name string, version int, env *core.Envelope, createdAt time.Time) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	if version < 1 {
		return fmt.Errorf("registry: replica version %d invalid", version)
	}
	if err := env.Validate(); err != nil {
		return err
	}
	if env.Basis.IsZero() {
		return fmt.Errorf("registry: replica of %s@v%d has no basis descriptor", name, version)
	}
	if createdAt.IsZero() {
		createdAt = time.Now()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if version <= r.tombstones[name] {
		return nil
	}
	for _, e := range r.models[name] {
		if e.Version == version {
			return nil
		}
	}
	e := &Entry{Name: name, Version: version, Envelope: env, CreatedAt: createdAt}
	if r.dir != "" {
		var buf bytes.Buffer
		if err := core.WriteEnvelope(&buf, env); err != nil {
			return err
		}
		if err := persistAtomic(r.dir, entryFile(name, version), buf.Bytes()); err != nil {
			return err
		}
	}
	r.models[name] = append(r.models[name], e)
	sort.Slice(r.models[name], func(i, j int) bool {
		return r.models[name][i].Version < r.models[name][j].Version
	})
	if r.onPut != nil {
		r.onPut(name, version)
	}
	return nil
}

// VersionRecord is one line of a sync manifest: a stored model version and
// whether a refit checkpoint accompanies it.
type VersionRecord struct {
	Name          string    `json:"name"`
	Version       int       `json:"version"`
	CreatedAt     time.Time `json:"created_at"`
	HasCheckpoint bool      `json:"has_checkpoint,omitempty"`
}

// VersionsAll returns every stored (name, version) pair, sorted by name
// then version — the registry half of a GET /v1/sync manifest.
func (r *Registry) VersionsAll() []VersionRecord {
	r.mu.RLock()
	var out []VersionRecord
	for name, versions := range r.models {
		for _, e := range versions {
			out = append(out, VersionRecord{
				Name: name, Version: e.Version, CreatedAt: e.CreatedAt,
			})
		}
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version < out[j].Version
	})
	for i := range out {
		out[i].HasCheckpoint = r.HasCheckpoint(out[i].Name, out[i].Version)
	}
	return out
}

// EnvelopeBytes serializes the stored envelope of name@version for transfer
// to a replica.
func (r *Registry) EnvelopeBytes(name string, version int) ([]byte, bool) {
	e, ok := r.GetVersion(name, version)
	if !ok {
		return nil, false
	}
	var buf bytes.Buffer
	if err := core.WriteEnvelope(&buf, e.Envelope); err != nil {
		return nil, false
	}
	return buf.Bytes(), true
}
