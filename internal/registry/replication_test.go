package registry

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestPutReplicaExactVersionIdempotent(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-order arrival: v3 before v1.
	if err := r.PutReplica("gain", 3, testEnvelope(4, 3), time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := r.PutReplica("gain", 1, testEnvelope(4, 1), time.Now()); err != nil {
		t.Fatal(err)
	}
	latest, ok := r.Get("gain")
	if !ok || latest.Version != 3 || latest.Model().Coef[0] != 3 {
		t.Fatalf("latest = %+v", latest)
	}
	if v1, ok := r.GetVersion("gain", 1); !ok || v1.Model().Coef[0] != 1 {
		t.Fatalf("v1 = %+v", v1)
	}
	// Re-storing an existing version is a no-op, even with different bytes:
	// versions are immutable, so the first write wins (they should be
	// identical in practice).
	if err := r.PutReplica("gain", 3, testEnvelope(4, 99), time.Now()); err != nil {
		t.Fatal(err)
	}
	if e, _ := r.GetVersion("gain", 3); e.Model().Coef[0] != 3 {
		t.Fatalf("replica re-put overwrote immutable version: coef %v", e.Model().Coef[0])
	}
	// A replica put lands on disk like any other version.
	if _, err := os.Stat(filepath.Join(dir, "gain@v3.json")); err != nil {
		t.Fatalf("replica version not persisted: %v", err)
	}
	// Rejects nonsense.
	if err := r.PutReplica("gain", 0, testEnvelope(4, 1), time.Now()); err == nil {
		t.Error("version 0 accepted")
	}
	if err := r.PutReplica("../evil", 1, testEnvelope(4, 1), time.Now()); err == nil {
		t.Error("path-traversal name accepted")
	}
}

func TestPutReplicaFiresOnPut(t *testing.T) {
	r := New()
	var gotName string
	var gotVersion int
	r.OnPut(func(name string, version int) { gotName, gotVersion = name, version })
	if err := r.PutReplica("gain", 2, testEnvelope(4, 2), time.Now()); err != nil {
		t.Fatal(err)
	}
	if gotName != "gain" || gotVersion != 2 {
		t.Fatalf("OnPut saw %s@v%d, want gain@v2", gotName, gotVersion)
	}
}

func TestDeleteTombstonePreventsVersionReuse(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 3; v++ {
		if _, err := r.Put("gain", testEnvelope(4, float64(v))); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Delete("gain"); err != nil {
		t.Fatal(err)
	}
	// Republishing must continue past the tombstone, not restart at v1 —
	// replicas may still hold v1..v3.
	e, err := r.Put("gain", testEnvelope(4, 44))
	if err != nil {
		t.Fatal(err)
	}
	if e.Version != 4 {
		t.Fatalf("republished version %d, want 4 (tombstone at 3)", e.Version)
	}
	// The tombstone survives a reopen.
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ts := r2.Tombstones(); ts["gain"] != 3 {
		t.Fatalf("tombstones after reopen = %v, want gain:3", ts)
	}
	if latest, ok := r2.Get("gain"); !ok || latest.Version != 4 {
		t.Fatalf("after reopen latest = %+v, want v4", latest)
	}
}

func TestApplyTombstoneRemovesCoveredVersions(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 2; v++ {
		if _, err := r.Put("gain", testEnvelope(4, float64(v))); err != nil {
			t.Fatal(err)
		}
	}
	// A version published after the delete (on another node) survives.
	if err := r.PutReplica("gain", 5, testEnvelope(4, 5), time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyTombstone("gain", 2); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.GetVersion("gain", 1); ok {
		t.Error("v1 survived tombstone at 2")
	}
	if _, ok := r.GetVersion("gain", 2); ok {
		t.Error("v2 survived tombstone at 2")
	}
	if latest, ok := r.Get("gain"); !ok || latest.Version != 5 {
		t.Fatalf("latest = %+v, want v5 to survive", latest)
	}
	if _, err := os.Stat(filepath.Join(dir, "gain@v1.json")); !os.IsNotExist(err) {
		t.Error("tombstoned version file still on disk")
	}
	// Sync can never resurrect a covered version.
	if err := r.PutReplica("gain", 2, testEnvelope(4, 2), time.Now()); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.GetVersion("gain", 2); ok {
		t.Error("PutReplica resurrected a tombstoned version")
	}
	// Lower/equal tombstones are no-ops.
	if err := r.ApplyTombstone("gain", 1); err != nil {
		t.Fatal(err)
	}
	if ts := r.Tombstones(); ts["gain"] != 2 {
		t.Fatalf("tombstone regressed: %v", ts)
	}
}

func TestApplyTombstoneWholeName(t *testing.T) {
	r := New()
	if _, err := r.Put("gain", testEnvelope(4, 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyTombstone("gain", 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("gain"); ok {
		t.Error("name should be gone after full tombstone")
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d", r.Len())
	}
	// Tombstoning a name never seen locally still records the marker, so a
	// later sync won't pull the dead versions.
	if err := r.ApplyTombstone("phase", 7); err != nil {
		t.Fatal(err)
	}
	if ts := r.Tombstones(); ts["phase"] != 7 {
		t.Fatalf("tombstones = %v", ts)
	}
}

func TestVersionsAllManifest(t *testing.T) {
	r := New()
	if _, err := r.Put("b", testEnvelope(4, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("a", testEnvelope(4, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("a", testEnvelope(4, 2)); err != nil {
		t.Fatal(err)
	}
	recs := r.VersionsAll()
	want := []struct {
		name    string
		version int
	}{{"a", 1}, {"a", 2}, {"b", 1}}
	if len(recs) != len(want) {
		t.Fatalf("manifest has %d records, want %d", len(recs), len(want))
	}
	for i, w := range want {
		if recs[i].Name != w.name || recs[i].Version != w.version {
			t.Fatalf("manifest[%d] = %s@v%d, want %s@v%d",
				i, recs[i].Name, recs[i].Version, w.name, w.version)
		}
		if recs[i].HasCheckpoint {
			t.Fatalf("manifest[%d] claims a checkpoint that does not exist", i)
		}
		if recs[i].CreatedAt.IsZero() {
			t.Fatalf("manifest[%d] has zero CreatedAt", i)
		}
	}
}

func TestEnvelopeBytesRoundTrip(t *testing.T) {
	src := New()
	if _, err := src.Put("gain", testEnvelope(4, 7)); err != nil {
		t.Fatal(err)
	}
	blob, ok := src.EnvelopeBytes("gain", 1)
	if !ok || len(blob) == 0 {
		t.Fatal("no envelope bytes")
	}
	if _, ok := src.EnvelopeBytes("gain", 9); ok {
		t.Error("bytes for missing version")
	}
}

func TestCheckpointBlobSyncRoundTrip(t *testing.T) {
	src := New()
	if _, err := src.Put("gain", testEnvelope(2, 1)); err != nil {
		t.Fatal(err)
	}
	ck := testCheckpoint("gain", 1)
	if err := src.PutCheckpoint(ck); err != nil {
		t.Fatal(err)
	}
	if !src.HasCheckpoint("gain", 1) {
		t.Fatal("HasCheckpoint misses stored checkpoint")
	}
	if src.HasCheckpoint("gain", 2) {
		t.Fatal("HasCheckpoint invents a checkpoint")
	}
	blob, ok := src.CheckpointBlob("gain", 1)
	if !ok {
		t.Fatal("no checkpoint blob")
	}

	dst := New()
	if err := dst.PutReplica("gain", 1, testEnvelope(2, 1), time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := dst.PutCheckpointBlob(blob); err != nil {
		t.Fatal(err)
	}
	got, ok := dst.Checkpoint("gain", 1)
	if !ok || got.ModelVersion != 1 || got.State == nil {
		t.Fatalf("synced checkpoint = %+v", got)
	}
	// A torn blob is rejected before touching the store.
	if err := dst.PutCheckpointBlob(blob[:len(blob)/2]); err == nil {
		t.Error("torn checkpoint blob accepted")
	}
}

func TestHasCheckpointLazyDiskProbe(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("gain", testEnvelope(2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.PutCheckpoint(testCheckpoint("gain", 1)); err != nil {
		t.Fatal(err)
	}
	// A reopened registry has nothing cached; HasCheckpoint must see the
	// file without loading it.
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.HasCheckpoint("gain", 1) {
		t.Fatal("HasCheckpoint misses on-disk checkpoint after reopen")
	}
}
