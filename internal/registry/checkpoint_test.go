package registry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// testCheckpoint builds a minimal valid checkpoint for name@version.
func testCheckpoint(name string, version int) *Checkpoint {
	return &Checkpoint{
		Version:      CheckpointFormatVersion,
		Name:         name,
		ModelVersion: version,
		Solver:       "OMP",
		Folds:        4,
		MaxLambda:    2,
		Metric:       "gain",
		Points:       [][]float64{{0.5, -1.5}, {2, 0.25}},
		Values:       []float64{1.25, -0.75},
		State: &core.FitCheckpoint{
			Version:   core.CheckpointVersion,
			Solver:    "OMP",
			K:         2,
			M:         3,
			MaxLambda: 2,
			Support:   []int{1},
			Residual:  []float64{0.1, -0.2},
			GTF:       []float64{1},
			CholL:     []float64{1.5},
		},
		CreatedAt: time.Now().UTC(),
	}
}

func TestCheckpointRoundTripInMemory(t *testing.T) {
	r := New()
	ck := testCheckpoint("gain", 1)
	if err := r.PutCheckpoint(ck); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Checkpoint("gain", 1)
	if !ok {
		t.Fatal("checkpoint not found after put")
	}
	if got.Solver != "OMP" || got.State.K != 2 || len(got.Points) != 2 {
		t.Fatalf("checkpoint mangled: %+v", got)
	}
	if _, ok := r.Checkpoint("gain", 2); ok {
		t.Fatal("found checkpoint for version that was never stored")
	}
	if n := r.CheckpointBytes("gain", 1); n <= 0 {
		t.Fatalf("CheckpointBytes = %d, want > 0", n)
	}
	if n := r.CheckpointBytes("gain", 9); n != 0 {
		t.Fatalf("CheckpointBytes for missing version = %d, want 0", n)
	}
}

func TestCheckpointPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.PutCheckpoint(testCheckpoint("delay", 3)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "checkpoints", "delay@v3.json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}

	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := r2.Checkpoint("delay", 3)
	if !ok {
		t.Fatal("checkpoint not lazily loaded after reopen")
	}
	if got.Name != "delay" || got.ModelVersion != 3 || got.State.Solver != "OMP" {
		t.Fatalf("reloaded checkpoint mangled: %+v", got)
	}
}

func TestCheckpointQuarantinesCorrupt(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ckDir := filepath.Join(dir, "checkpoints")
	if err := os.MkdirAll(ckDir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(ckDir, "gain@v1.json")
	if err := os.WriteFile(path, []byte(`{"version":1,"name":"gain","model_ver`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Checkpoint("gain", 1); ok {
		t.Fatal("corrupt checkpoint was accepted")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt checkpoint still at live path")
	}
	if _, err := os.Stat(filepath.Join(ckDir, "corrupt", "gain@v1.json")); err != nil {
		t.Fatalf("corrupt checkpoint not quarantined: %v", err)
	}

	// A file whose contents claim a different identity is corruption too.
	lying := testCheckpoint("gain", 2)
	if err := r.PutCheckpoint(lying); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(ckDir, "gain@v2.json")
	blob, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(ckDir, "gain@v5.json"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Checkpoint("gain", 5); ok {
		t.Fatal("checkpoint with mismatched identity was accepted")
	}
}

func TestCheckpointValidateRejects(t *testing.T) {
	r := New()
	cases := map[string]func(*Checkpoint){
		"nil state":      func(c *Checkpoint) { c.State = nil },
		"bad name":       func(c *Checkpoint) { c.Name = "../evil" },
		"bad version":    func(c *Checkpoint) { c.ModelVersion = 0 },
		"solver clash":   func(c *Checkpoint) { c.Solver = "LAR" },
		"row mismatch":   func(c *Checkpoint) { c.Values = c.Values[:1] },
		"ragged points":  func(c *Checkpoint) { c.Points[1] = c.Points[1][:1] },
		"bad maxlambda":  func(c *Checkpoint) { c.MaxLambda = 0 },
		"future format":  func(c *Checkpoint) { c.Version = CheckpointFormatVersion + 1 },
		"corrupt state":  func(c *Checkpoint) { c.State.Residual = c.State.Residual[:1] },
		"nonfinite data": func(c *Checkpoint) { c.Values[0] = c.Values[0] / 0 * 0 },
	}
	for label, mutate := range cases {
		ck := testCheckpoint("gain", 1)
		mutate(ck)
		if err := r.PutCheckpoint(ck); err == nil {
			t.Errorf("%s: PutCheckpoint accepted invalid checkpoint", label)
		}
	}
	if err := r.PutCheckpoint(nil); err == nil {
		t.Error("PutCheckpoint accepted nil")
	}
}

func TestDeleteRemovesCheckpoints(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("gain", testEnvelope(4, 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.PutCheckpoint(testCheckpoint("gain", 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("gain"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Checkpoint("gain", 1); ok {
		t.Fatal("checkpoint survived model deletion")
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoints", "gain@v1.json")); !os.IsNotExist(err) {
		t.Fatal("checkpoint file survived model deletion")
	}
}

func TestCheckpointStaleTempSwept(t *testing.T) {
	dir := t.TempDir()
	ckDir := filepath.Join(dir, "checkpoints")
	if err := os.MkdirAll(ckDir, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(ckDir, "gain@v1.json.tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stale checkpoint temp file not swept at open")
	}
}

func TestCheckpointValueAccepted(t *testing.T) {
	// Sanity: the fixture itself must be valid, or every rejection test
	// above passes vacuously.
	if err := testCheckpoint("gain", 1).Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(checkpointKey("gain", 1), "gain@v1") {
		t.Fatalf("unexpected checkpoint key %q", checkpointKey("gain", 1))
	}
}
