package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/faultinject"
)

// testEnvelope builds a valid envelope over a linear basis of dim
// variables, with a coefficient marking the version for identity checks.
func testEnvelope(dim int, mark float64) *core.Envelope {
	b := basis.Linear(dim)
	return &core.Envelope{
		Model: &core.Model{M: b.Size(), Support: []int{1}, Coef: []float64{mark}},
		Basis: b.Desc,
		Prov:  core.Provenance{Solver: "OMP", Lambda: 1, Samples: 100},
	}
}

func TestRegistryVersioning(t *testing.T) {
	r := New()
	for v := 1; v <= 3; v++ {
		e, err := r.Put("gain", testEnvelope(4, float64(v)))
		if err != nil {
			t.Fatal(err)
		}
		if e.Version != v {
			t.Fatalf("version %d, want %d", e.Version, v)
		}
	}
	latest, ok := r.Get("gain")
	if !ok || latest.Version != 3 || latest.Model().Coef[0] != 3 {
		t.Fatalf("latest = %+v", latest)
	}
	v1, ok := r.GetVersion("gain", 1)
	if !ok || v1.Model().Coef[0] != 1 {
		t.Fatalf("v1 = %+v", v1)
	}
	if _, ok := r.GetVersion("gain", 4); ok {
		t.Fatal("version 4 should not exist")
	}
	if _, ok := r.Get("phase"); ok {
		t.Fatal("unknown name should miss")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRegistryRejects(t *testing.T) {
	r := New()
	if _, err := r.Put("../evil", testEnvelope(4, 1)); err == nil {
		t.Error("path-traversal name accepted")
	}
	if _, err := r.Put("", testEnvelope(4, 1)); err == nil {
		t.Error("empty name accepted")
	}
	// Basis-less envelope (legacy form) cannot be served.
	env := testEnvelope(4, 1)
	env.Basis = basis.Descriptor{}
	if _, err := r.Put("legacy", env); err == nil {
		t.Error("basis-less envelope accepted")
	}
	// Inconsistent descriptor/model sizes.
	env = testEnvelope(4, 1)
	env.Basis.Dim = 9
	if _, err := r.Put("skewed", env); err == nil {
		t.Error("size-mismatched envelope accepted")
	}
}

func TestRegistryPersistenceReload(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 2; v++ {
		if _, err := r.Put("gain", testEnvelope(4, float64(v))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Put("delay", testEnvelope(7, 10)); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reloaded %d names, want 2", re.Len())
	}
	gain, ok := re.Get("gain")
	if !ok || gain.Version != 2 || gain.Model().Coef[0] != 2 {
		t.Fatalf("reloaded gain = %+v", gain)
	}
	if gain.Envelope.Prov.Solver != "OMP" {
		t.Errorf("provenance lost on reload: %+v", gain.Envelope.Prov)
	}
	b, err := gain.Basis()
	if err != nil || b.Dim != 4 {
		t.Fatalf("reloaded basis dim %v, err %v", b, err)
	}
	// New versions continue the sequence after reload.
	e, err := re.Put("gain", testEnvelope(4, 3))
	if err != nil || e.Version != 3 {
		t.Fatalf("post-reload Put: %+v, %v", e, err)
	}

	if err := re.Delete("gain"); err != nil {
		t.Fatal(err)
	}
	if err := re.Delete("gain"); err == nil {
		t.Fatal("double delete should fail")
	}
	re2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := re2.Get("gain"); ok {
		t.Fatal("deleted model survived reload")
	}
	if _, ok := re2.Get("delay"); !ok {
		t.Fatal("unrelated model lost")
	}
}

// TestRegistryConcurrentHammer drives parallel writers, readers and listers
// at the registry; run with -race to check the locking.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := New()
	const (
		names      = 4
		perName    = 8
		readers    = 8
		iterations = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < names; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("model-%d", w)
			for v := 1; v <= perName; v++ {
				if _, err := r.Put(name, testEnvelope(3+w, float64(v))); err != nil {
					t.Errorf("put %s: %v", name, err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				name := fmt.Sprintf("model-%d", i%names)
				if e, ok := r.Get(name); ok {
					// Versions are dense and monotonically published.
					if e.Version < 1 || e.Version > perName {
						t.Errorf("impossible version %d", e.Version)
						return
					}
					if _, err := e.Basis(); err != nil {
						t.Errorf("basis: %v", err)
						return
					}
				}
				for _, e := range r.List() {
					if e.Name == "" {
						t.Error("empty name in listing")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != names {
		t.Fatalf("Len = %d, want %d", r.Len(), names)
	}
	for w := 0; w < names; w++ {
		e, ok := r.Get(fmt.Sprintf("model-%d", w))
		if !ok || e.Version != perName {
			t.Fatalf("model-%d final version %v", w, e)
		}
	}
}

// TestRegistryQuarantinesCorruptFiles simulates a crash mid-write: a
// truncated envelope under a live name must be quarantined at Open, not
// block the boot, and its version slot must never be reused.
func TestRegistryQuarantinesCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 3; v++ {
		if _, err := r.Put("gain", testEnvelope(4, float64(v))); err != nil {
			t.Fatal(err)
		}
	}
	// Truncate v2 to simulate a torn write, and plant unparseable junk as a
	// second model's only version.
	if err := os.WriteFile(filepath.Join(dir, "gain@v2.json"), []byte(`{"model":{"m":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk@v1.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("Open with corrupt files must not fail: %v", err)
	}
	if re.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (junk has no healthy versions)", re.Len())
	}
	if _, ok := re.Get("junk"); ok {
		t.Fatal("fully corrupt model served")
	}
	latest, ok := re.Get("gain")
	if !ok || latest.Version != 3 {
		t.Fatalf("latest gain %+v", latest)
	}
	if _, ok := re.GetVersion("gain", 2); ok {
		t.Fatal("quarantined version still served")
	}
	if v1, ok := re.GetVersion("gain", 1); !ok || v1.Model().Coef[0] != 1 {
		t.Fatalf("healthy v1 lost: %+v", v1)
	}
	// The damaged files moved into corrupt/ for inspection.
	for _, base := range []string{"gain@v2.json", "junk@v1.json"} {
		if _, err := os.Stat(filepath.Join(dir, "corrupt", base)); err != nil {
			t.Errorf("%s not quarantined: %v", base, err)
		}
		if _, err := os.Stat(filepath.Join(dir, base)); !os.IsNotExist(err) {
			t.Errorf("%s still in the live store", base)
		}
	}
	// Version numbering continues past the quarantined slot.
	e, err := re.Put("gain", testEnvelope(4, 9))
	if err != nil || e.Version != 4 {
		t.Fatalf("post-quarantine Put: %+v, %v", e, err)
	}
}

// TestRegistryAtomicWrite checks the persistence invariant directly: after
// an injected failure between temp write and rename, the live name is
// untouched and no temp debris survives a reopen.
func TestRegistryAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("gain", testEnvelope(4, 1)); err != nil {
		t.Fatal(err)
	}

	faultinject.Arm("registry.write", faultinject.Fault{Err: faultinject.ErrInjected, Count: 1})
	t.Cleanup(faultinject.Reset)
	if _, err := r.Put("gain", testEnvelope(4, 2)); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Put under write fault: %v", err)
	}
	// The failed version must not exist under its live name, in memory or on
	// disk, and v1 must be intact.
	if e, _ := r.Get("gain"); e.Version != 1 {
		t.Fatalf("failed Put published version %d", e.Version)
	}
	if _, err := os.Stat(filepath.Join(dir, "gain@v2.json")); !os.IsNotExist(err) {
		t.Fatal("torn write reached the live name")
	}

	// Leave simulated crash debris and reopen: it is swept, and the next Put
	// succeeds with the same version number.
	if err := os.WriteFile(filepath.Join(dir, "gain@v2.json.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gain@v2.json.tmp")); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived reopen")
	}
	e, err := re.Put("gain", testEnvelope(4, 2))
	if err != nil || e.Version != 2 {
		t.Fatalf("Put after recovery: %+v, %v", e, err)
	}
	if env, err := loadEnvelopeFile(filepath.Join(dir, "gain@v2.json")); err != nil || env.Model.Coef[0] != 2 {
		t.Fatalf("persisted v2 unreadable: %v", err)
	}
}
