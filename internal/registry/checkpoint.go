package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
)

// CheckpointFormatVersion is the on-disk version of the registry's
// checkpoint wrapper (the embedded solver state carries its own
// core.CheckpointVersion).
const CheckpointFormatVersion = 1

// Checkpoint is the refit companion of a stored model version: the solver's
// serialized fit state plus the training data it was measured on, which is
// everything POST /v1/models/{name}/refine needs to continue the fit when
// new samples arrive. It is stored beside the model envelopes under
// dir/checkpoints/name@vN.json with the same crash-safety guarantees
// (atomic write, quarantine on corrupt load).
type Checkpoint struct {
	// Version is the wrapper format version.
	Version int `json:"version"`
	// Name and ModelVersion identify the registry entry this state belongs
	// to — a checkpoint without a live parent version is unusable.
	Name         string `json:"name"`
	ModelVersion int    `json:"model_version"`
	// Solver, Folds, MaxLambda and Metric reproduce the fit request: a
	// refine re-runs cross-validation under the same configuration. Solver is
	// the engine name of the state (always equal to State.Solver); Fitter is
	// the request's solver token, which can name a variant sharing an engine
	// ("lasso" runs the LAR engine) — refine rebuilds the fitter from it.
	Solver    string `json:"solver"`
	Fitter    string `json:"fitter,omitempty"`
	Folds     int    `json:"folds,omitempty"`
	MaxLambda int    `json:"max_lambda"`
	Metric    string `json:"metric,omitempty"`
	// Points and Values are the training samples the state was fit on,
	// row-aligned with State.Residual. Refine appends new samples to these.
	Points [][]float64 `json:"points"`
	Values []float64   `json:"values"`
	// State is the solver's serialized fit state.
	State *core.FitCheckpoint `json:"state"`
	// CreatedAt is the capture time.
	CreatedAt time.Time `json:"created_at"`
}

// Validate checks the wrapper's internal consistency, including the
// embedded solver state and the row alignment between the stored samples
// and the checkpointed residual.
func (c *Checkpoint) Validate() error {
	if c.Version <= 0 || c.Version > CheckpointFormatVersion {
		return fmt.Errorf("registry: checkpoint format version %d unsupported (max %d)", c.Version, CheckpointFormatVersion)
	}
	if err := ValidateName(c.Name); err != nil {
		return err
	}
	if c.ModelVersion < 1 {
		return fmt.Errorf("registry: checkpoint model version %d invalid", c.ModelVersion)
	}
	if c.State == nil {
		return fmt.Errorf("registry: checkpoint for %s@v%d carries no solver state", c.Name, c.ModelVersion)
	}
	if err := c.State.Validate(); err != nil {
		return err
	}
	if c.Solver != c.State.Solver {
		return fmt.Errorf("registry: checkpoint names solver %q but state is %q", c.Solver, c.State.Solver)
	}
	if len(c.Points) != c.State.K || len(c.Values) != c.State.K {
		return fmt.Errorf("registry: checkpoint has %d points / %d values for K=%d state",
			len(c.Points), len(c.Values), c.State.K)
	}
	if c.MaxLambda < 1 {
		return fmt.Errorf("registry: checkpoint maxLambda %d invalid", c.MaxLambda)
	}
	dim := -1
	for i, p := range c.Points {
		if dim == -1 {
			dim = len(p)
		}
		if len(p) != dim || dim == 0 {
			return fmt.Errorf("registry: checkpoint point %d has %d coordinates, want %d", i, len(p), dim)
		}
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("registry: checkpoint point %d is non-finite", i)
			}
		}
	}
	for i, v := range c.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("registry: checkpoint value %d is non-finite", i)
		}
	}
	return nil
}

// checkpointsDir is the store subdirectory holding fit checkpoints.
func (r *Registry) checkpointsDir() string { return filepath.Join(r.dir, "checkpoints") }

// checkpointKey indexes the in-memory checkpoint cache.
func checkpointKey(name string, version int) string { return entryFile(name, version) }

// PutCheckpoint stores ck as the refit state of model c.Name@c.ModelVersion,
// replacing any previous checkpoint for that version. Persistent registries
// write it atomically under dir/checkpoints/ before it becomes visible.
func (r *Registry) PutCheckpoint(ck *Checkpoint) error {
	if ck == nil {
		return fmt.Errorf("registry: nil checkpoint")
	}
	if err := ck.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dir != "" {
		blob, err := json.Marshal(ck)
		if err != nil {
			return fmt.Errorf("registry: encode checkpoint: %w", err)
		}
		if err := os.MkdirAll(r.checkpointsDir(), 0o755); err != nil {
			return fmt.Errorf("registry: create checkpoints dir: %w", err)
		}
		if err := persistAtomic(r.checkpointsDir(), entryFile(ck.Name, ck.ModelVersion), append(blob, '\n')); err != nil {
			return err
		}
	}
	if r.checkpoints == nil {
		r.checkpoints = make(map[string]*Checkpoint)
	}
	r.checkpoints[checkpointKey(ck.Name, ck.ModelVersion)] = ck
	return nil
}

// Checkpoint returns the stored refit state of name@version, if any.
// Persistent registries load checkpoint files lazily — they can be large
// (the full training set plus the factor), and most model versions are
// never refined — and quarantine corrupt files into checkpoints/corrupt/
// on first touch instead of failing forever.
func (r *Registry) Checkpoint(name string, version int) (*Checkpoint, bool) {
	key := checkpointKey(name, version)
	r.mu.RLock()
	ck, ok := r.checkpoints[key]
	r.mu.RUnlock()
	if ok {
		return ck, true
	}
	if r.dir == "" || ValidateName(name) != nil || version < 1 {
		return nil, false
	}
	path := filepath.Join(r.checkpointsDir(), entryFile(name, version))
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	loaded, err := readCheckpointBlob(data)
	if err == nil && (loaded.Name != name || loaded.ModelVersion != version) {
		err = fmt.Errorf("file claims %s@v%d", loaded.Name, loaded.ModelVersion)
	}
	if err != nil {
		if qErr := quarantine(r.checkpointsDir(), path); qErr == nil {
			r.log.Warn("registry: quarantined damaged checkpoint into checkpoints/corrupt/",
				"path", path, "error", err.Error())
		}
		return nil, false
	}
	r.mu.Lock()
	if r.checkpoints == nil {
		r.checkpoints = make(map[string]*Checkpoint)
	}
	// A concurrent loader may have won the race; either copy is identical.
	r.checkpoints[key] = loaded
	r.mu.Unlock()
	return loaded, true
}

// readCheckpointBlob parses and validates a serialized checkpoint wrapper.
func readCheckpointBlob(data []byte) (*Checkpoint, error) {
	var ck Checkpoint
	if err := json.NewDecoder(bytes.NewReader(data)).Decode(&ck); err != nil {
		return nil, fmt.Errorf("registry: decode checkpoint: %w", err)
	}
	if err := ck.Validate(); err != nil {
		return nil, err
	}
	return &ck, nil
}

// CheckpointBytes reports the serialized size of the checkpoint stored for
// name@version (0 when none) — the metrics layer's checkpoint size gauge.
func (r *Registry) CheckpointBytes(name string, version int) int {
	ck, ok := r.Checkpoint(name, version)
	if !ok {
		return 0
	}
	blob, err := json.Marshal(ck)
	if err != nil {
		return 0
	}
	return len(blob) + 1
}

// HasCheckpoint reports whether a refit checkpoint is stored for
// name@version, without loading it (checkpoints can be large; the sync
// manifest only needs existence).
func (r *Registry) HasCheckpoint(name string, version int) bool {
	r.mu.RLock()
	_, ok := r.checkpoints[checkpointKey(name, version)]
	r.mu.RUnlock()
	if ok {
		return true
	}
	if r.dir == "" || ValidateName(name) != nil || version < 1 {
		return false
	}
	_, err := os.Stat(filepath.Join(r.checkpointsDir(), entryFile(name, version)))
	return err == nil
}

// CheckpointBlob returns the serialized checkpoint of name@version for
// transfer to a replica, going through the validating load path so a
// damaged file is quarantined rather than propagated.
func (r *Registry) CheckpointBlob(name string, version int) ([]byte, bool) {
	ck, ok := r.Checkpoint(name, version)
	if !ok {
		return nil, false
	}
	blob, err := json.Marshal(ck)
	if err != nil {
		return nil, false
	}
	return append(blob, '\n'), true
}

// PutCheckpointBlob stores a serialized checkpoint pulled from a peer. The
// blob is decoded and fully validated before it is persisted, so a torn or
// hostile sync payload can never land on disk.
func (r *Registry) PutCheckpointBlob(data []byte) error {
	ck, err := readCheckpointBlob(data)
	if err != nil {
		return err
	}
	return r.PutCheckpoint(ck)
}

// dropCheckpoints removes every checkpoint of name from the cache and disk.
// Caller holds r.mu.
func (r *Registry) dropCheckpoints(name string, versions []*Entry) error {
	for _, e := range versions {
		delete(r.checkpoints, checkpointKey(name, e.Version))
		if r.dir != "" {
			path := filepath.Join(r.checkpointsDir(), entryFile(name, e.Version))
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("registry: remove %s: %w", path, err)
			}
		}
	}
	return nil
}
