// Package registry is the model store behind the rsmd serving daemon: a
// concurrency-safe, versioned map from model name to fitted-model envelopes
// (sparse coefficients + basis descriptor + fit provenance), optionally
// persisted as one JSON file per version under a directory so a restarted
// daemon comes back with its models.
//
// Entries are immutable once stored; publishing a new model under an
// existing name allocates the next version and leaves prior versions
// readable. The registry lazily reconstructs each entry's Basis from its
// descriptor on first use and caches it, so the serving hot path never
// rebuilds dictionaries.
//
// Persistence is crash-safe: versions are written with the
// write-temp→fsync→rename sequence, so an interrupted write can never leave
// a truncated file under a live name, and files that are nevertheless
// damaged (torn by an older daemon, bit-rotted, hand-edited) are quarantined
// into the store's corrupt/ subdirectory at startup instead of preventing
// boot.
package registry

import (
	"bytes"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/faultinject"
)

// nameRE constrains model names to filesystem- and URL-safe tokens.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ValidateName reports whether name is usable as a model name.
func ValidateName(name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("registry: invalid model name %q (want [A-Za-z0-9][A-Za-z0-9._-]{0,63})", name)
	}
	return nil
}

// Entry is one immutable stored model version.
type Entry struct {
	// Name is the model's registry name.
	Name string
	// Version is the 1-based version number within the name.
	Version int
	// Envelope holds the model, basis descriptor and provenance.
	Envelope *core.Envelope
	// CreatedAt is the time the version was stored.
	CreatedAt time.Time

	buildOnce sync.Once
	basis     *basis.Basis
	buildErr  error
}

// Basis reconstructs (once) and returns the dictionary the model was fit
// against.
func (e *Entry) Basis() (*basis.Basis, error) {
	e.buildOnce.Do(func() {
		e.basis, e.buildErr = e.Envelope.Basis.Build()
	})
	return e.basis, e.buildErr
}

// Model is a shorthand for the stored sparse model.
func (e *Entry) Model() *core.Model { return e.Envelope.Model }

// Registry is the versioned model store. The zero value is not usable; call
// Open (persistent) or New (in-memory).
type Registry struct {
	dir string
	log *slog.Logger

	mu          sync.RWMutex
	models      map[string][]*Entry // versions in ascending order
	checkpoints map[string]*Checkpoint
	// tombstones records, per deleted name, the highest version the delete
	// covered. Version numbers never fall back below a tombstone (Put resumes
	// past it), which is what makes cross-node replication of deletes
	// conflict-free: a version number uniquely identifies one envelope for
	// all time.
	tombstones map[string]int
	onPut      func(name string, version int)
}

// OnPut registers a hook invoked after every successful Put with the new
// entry's name and version, while the registry lock is still held — so by
// the time any Get can observe the new version, the hook has already run.
// The serving layer uses it to invalidate per-model derived state (compiled
// predictors). The hook must not call back into the registry.
func (r *Registry) OnPut(fn func(name string, version int)) {
	r.mu.Lock()
	r.onPut = fn
	r.mu.Unlock()
}

// New returns an in-memory registry with no persistence.
func New() *Registry {
	return &Registry{
		models:     make(map[string][]*Entry),
		tombstones: make(map[string]int),
		log:        slog.Default(),
	}
}

// Open returns a registry persisted under dir (created when missing),
// loading every model version already stored there. An empty dir means
// in-memory only. Crash-recovery incidents are logged to slog.Default();
// OpenWith accepts an explicit logger.
func Open(dir string) (*Registry, error) { return OpenWith(dir, nil) }

// OpenWith is Open with an explicit structured logger (nil means
// slog.Default()) so the daemon's recovery log lines carry its configured
// handler, level and format.
//
// Crash recovery: stale "*.json.tmp" files (debris of a write interrupted
// before its atomic rename) are deleted, and envelope files that fail to
// read, parse, or validate are quarantined into dir/corrupt/ — each with a
// log line — instead of refusing to boot. A store with one damaged version
// therefore still serves every healthy model.
func OpenWith(dir string, logger *slog.Logger) (*Registry, error) {
	r := New()
	if logger != nil {
		r.log = logger
	}
	if dir == "" {
		return r, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: create store dir: %w", err)
	}
	r.dir = dir
	for _, pattern := range []string{
		filepath.Join(dir, "*.json.tmp"),
		filepath.Join(dir, "checkpoints", "*.json.tmp"),
	} {
		if stale, err := filepath.Glob(pattern); err == nil {
			for _, path := range stale {
				if err := os.Remove(path); err == nil {
					r.log.Warn("registry: removed stale temp file (interrupted write)", "path", path)
				}
			}
		}
	}
	if err := r.loadTombstones(); err != nil {
		return nil, err
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("registry: scan store dir: %w", err)
	}
	for _, path := range names {
		name, version, ok := parseEntryFile(filepath.Base(path))
		if !ok {
			continue // foreign file; leave it alone
		}
		env, loadErr := loadEnvelopeFile(path)
		if loadErr != nil {
			if qErr := quarantine(dir, path); qErr != nil {
				return nil, fmt.Errorf("registry: quarantine %s (unreadable: %v): %w", path, loadErr, qErr)
			}
			r.log.Warn("registry: quarantined damaged store file into corrupt/",
				"path", path, "error", loadErr.Error())
			continue
		}
		info, err := os.Stat(path)
		created := time.Now()
		if err == nil {
			created = info.ModTime()
		}
		r.models[name] = append(r.models[name], &Entry{
			Name: name, Version: version, Envelope: env, CreatedAt: created,
		})
	}
	for _, versions := range r.models {
		sort.Slice(versions, func(i, j int) bool { return versions[i].Version < versions[j].Version })
	}
	return r, nil
}

// loadEnvelopeFile reads and validates one persisted envelope.
func loadEnvelopeFile(path string) (*core.Envelope, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	env, err := core.ReadEnvelope(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if env.Basis.IsZero() {
		return nil, fmt.Errorf("no basis descriptor")
	}
	return env, nil
}

// quarantine moves a damaged store file into dir/corrupt/ so it stops
// shadowing its version slot but stays available for inspection.
func quarantine(dir, path string) error {
	cdir := filepath.Join(dir, "corrupt")
	if err := os.MkdirAll(cdir, 0o755); err != nil {
		return err
	}
	return os.Rename(path, filepath.Join(cdir, filepath.Base(path)))
}

// entryFile renders the per-version file name, e.g. "gain@v3.json".
func entryFile(name string, version int) string {
	return fmt.Sprintf("%s@v%d.json", name, version)
}

// parseEntryFile inverts entryFile.
func parseEntryFile(base string) (name string, version int, ok bool) {
	base = strings.TrimSuffix(base, ".json")
	i := strings.LastIndex(base, "@v")
	if i <= 0 {
		return "", 0, false
	}
	v, err := strconv.Atoi(base[i+2:])
	if err != nil || v < 1 {
		return "", 0, false
	}
	name = base[:i]
	if ValidateName(name) != nil {
		return "", 0, false
	}
	return name, v, true
}

// Put stores env as the next version of name and returns the new entry.
// The envelope must validate and carry a basis descriptor — a model without
// one cannot be served.
func (r *Registry) Put(name string, env *core.Envelope) (*Entry, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if env.Basis.IsZero() {
		return nil, fmt.Errorf("registry: model %q has no basis descriptor; re-serialize it with the versioned envelope", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Version numbers continue from the highest loaded version OR the
	// tombstone left by a delete: quarantined or deleted versions leave gaps
	// that must never be reused, or a stale file in corrupt/ (or a replica
	// that synced the old version) could be confused with a live one.
	next := r.tombstones[name] + 1
	if vs := r.models[name]; len(vs) > 0 && vs[len(vs)-1].Version >= next {
		next = vs[len(vs)-1].Version + 1
	}
	e := &Entry{
		Name:      name,
		Version:   next,
		Envelope:  env,
		CreatedAt: time.Now(),
	}
	if r.dir != "" {
		var buf bytes.Buffer
		if err := core.WriteEnvelope(&buf, env); err != nil {
			return nil, err
		}
		if err := persistAtomic(r.dir, entryFile(name, e.Version), buf.Bytes()); err != nil {
			return nil, err
		}
	}
	r.models[name] = append(r.models[name], e)
	if r.onPut != nil {
		r.onPut(name, e.Version)
	}
	return e, nil
}

// persistAtomic writes data as dir/base via the write-temp→fsync→rename
// sequence, so a crash at any point leaves either the complete file or only
// removable ".tmp" debris — never a truncated envelope under the live name.
func persistAtomic(dir, base string, data []byte) error {
	path := filepath.Join(dir, base)
	tmp := path + ".tmp"
	fail := func(stage string, err error) error {
		os.Remove(tmp)
		return fmt.Errorf("registry: persist %s (%s): %w", path, stage, err)
	}
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fail("create temp", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fail("write", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fail("fsync", err)
	}
	if err := f.Close(); err != nil {
		return fail("close", err)
	}
	// Chaos hook: a failure here models a crash between temp write and
	// rename — the caller sees an error and the live name stays untouched.
	if err := faultinject.Fire("registry.write"); err != nil {
		return fail("rename", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fail("rename", err)
	}
	// Persist the rename itself; best-effort, as not all filesystems
	// support fsync on directories.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Get returns the latest version of name.
func (r *Registry) Get(name string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	versions := r.models[name]
	if len(versions) == 0 {
		return nil, false
	}
	return versions[len(versions)-1], true
}

// GetVersion returns a specific version of name. Version numbers may be
// sparse when damaged versions were quarantined at startup.
func (r *Registry) GetVersion(name string, version int) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.models[name] {
		if e.Version == version {
			return e, true
		}
	}
	return nil, false
}

// List returns the latest version of every model, sorted by name.
func (r *Registry) List() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Entry, 0, len(r.models))
	for _, versions := range r.models {
		out = append(out, versions[len(versions)-1])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of distinct model names.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}

// Delete removes every version of name, including persisted files, and
// records a tombstone at the highest removed version so the name's version
// counter never falls back (replicas propagate the delete by tombstone
// version — see ApplyTombstone). Deleting an unknown name is an error.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	versions := r.models[name]
	if len(versions) == 0 {
		return fmt.Errorf("registry: unknown model %q", name)
	}
	latest := versions[len(versions)-1].Version
	if prev := r.tombstones[name]; latest > prev {
		r.tombstones[name] = latest
		if err := r.saveTombstonesLocked(); err != nil {
			if prev > 0 {
				r.tombstones[name] = prev
			} else {
				delete(r.tombstones, name)
			}
			return err
		}
	}
	if r.dir != "" {
		for _, e := range versions {
			path := filepath.Join(r.dir, entryFile(name, e.Version))
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("registry: remove %s: %w", path, err)
			}
		}
	}
	if err := r.dropCheckpoints(name, versions); err != nil {
		return err
	}
	delete(r.models, name)
	return nil
}
