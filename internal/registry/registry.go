// Package registry is the model store behind the rsmd serving daemon: a
// concurrency-safe, versioned map from model name to fitted-model envelopes
// (sparse coefficients + basis descriptor + fit provenance), optionally
// persisted as one JSON file per version under a directory so a restarted
// daemon comes back with its models.
//
// Entries are immutable once stored; publishing a new model under an
// existing name allocates the next version and leaves prior versions
// readable. The registry lazily reconstructs each entry's Basis from its
// descriptor on first use and caches it, so the serving hot path never
// rebuilds dictionaries.
package registry

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/basis"
	"repro/internal/core"
)

// nameRE constrains model names to filesystem- and URL-safe tokens.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ValidateName reports whether name is usable as a model name.
func ValidateName(name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("registry: invalid model name %q (want [A-Za-z0-9][A-Za-z0-9._-]{0,63})", name)
	}
	return nil
}

// Entry is one immutable stored model version.
type Entry struct {
	// Name is the model's registry name.
	Name string
	// Version is the 1-based version number within the name.
	Version int
	// Envelope holds the model, basis descriptor and provenance.
	Envelope *core.Envelope
	// CreatedAt is the time the version was stored.
	CreatedAt time.Time

	buildOnce sync.Once
	basis     *basis.Basis
	buildErr  error
}

// Basis reconstructs (once) and returns the dictionary the model was fit
// against.
func (e *Entry) Basis() (*basis.Basis, error) {
	e.buildOnce.Do(func() {
		e.basis, e.buildErr = e.Envelope.Basis.Build()
	})
	return e.basis, e.buildErr
}

// Model is a shorthand for the stored sparse model.
func (e *Entry) Model() *core.Model { return e.Envelope.Model }

// Registry is the versioned model store. The zero value is not usable; call
// Open (persistent) or New (in-memory).
type Registry struct {
	dir string

	mu     sync.RWMutex
	models map[string][]*Entry // versions in ascending order
}

// New returns an in-memory registry with no persistence.
func New() *Registry { return &Registry{models: make(map[string][]*Entry)} }

// Open returns a registry persisted under dir (created when missing),
// loading every model version already stored there. An empty dir means
// in-memory only.
func Open(dir string) (*Registry, error) {
	r := New()
	if dir == "" {
		return r, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: create store dir: %w", err)
	}
	r.dir = dir
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("registry: scan store dir: %w", err)
	}
	for _, path := range names {
		name, version, ok := parseEntryFile(filepath.Base(path))
		if !ok {
			continue // foreign file; leave it alone
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("registry: read %s: %w", path, err)
		}
		env, err := core.ReadEnvelope(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("registry: load %s: %w", path, err)
		}
		if env.Basis.IsZero() {
			return nil, fmt.Errorf("registry: %s has no basis descriptor", path)
		}
		info, err := os.Stat(path)
		created := time.Now()
		if err == nil {
			created = info.ModTime()
		}
		r.models[name] = append(r.models[name], &Entry{
			Name: name, Version: version, Envelope: env, CreatedAt: created,
		})
	}
	for _, versions := range r.models {
		sort.Slice(versions, func(i, j int) bool { return versions[i].Version < versions[j].Version })
	}
	return r, nil
}

// entryFile renders the per-version file name, e.g. "gain@v3.json".
func entryFile(name string, version int) string {
	return fmt.Sprintf("%s@v%d.json", name, version)
}

// parseEntryFile inverts entryFile.
func parseEntryFile(base string) (name string, version int, ok bool) {
	base = strings.TrimSuffix(base, ".json")
	i := strings.LastIndex(base, "@v")
	if i <= 0 {
		return "", 0, false
	}
	v, err := strconv.Atoi(base[i+2:])
	if err != nil || v < 1 {
		return "", 0, false
	}
	name = base[:i]
	if ValidateName(name) != nil {
		return "", 0, false
	}
	return name, v, true
}

// Put stores env as the next version of name and returns the new entry.
// The envelope must validate and carry a basis descriptor — a model without
// one cannot be served.
func (r *Registry) Put(name string, env *core.Envelope) (*Entry, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if env.Basis.IsZero() {
		return nil, fmt.Errorf("registry: model %q has no basis descriptor; re-serialize it with the versioned envelope", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := &Entry{
		Name:      name,
		Version:   len(r.models[name]) + 1,
		Envelope:  env,
		CreatedAt: time.Now(),
	}
	if r.dir != "" {
		var buf bytes.Buffer
		if err := core.WriteEnvelope(&buf, env); err != nil {
			return nil, err
		}
		path := filepath.Join(r.dir, entryFile(name, e.Version))
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			return nil, fmt.Errorf("registry: persist %s: %w", path, err)
		}
	}
	r.models[name] = append(r.models[name], e)
	return e, nil
}

// Get returns the latest version of name.
func (r *Registry) Get(name string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	versions := r.models[name]
	if len(versions) == 0 {
		return nil, false
	}
	return versions[len(versions)-1], true
}

// GetVersion returns a specific version of name.
func (r *Registry) GetVersion(name string, version int) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	versions := r.models[name]
	if version < 1 || version > len(versions) {
		return nil, false
	}
	return versions[version-1], true
}

// List returns the latest version of every model, sorted by name.
func (r *Registry) List() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Entry, 0, len(r.models))
	for _, versions := range r.models {
		out = append(out, versions[len(versions)-1])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of distinct model names.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}

// Delete removes every version of name, including persisted files. Deleting
// an unknown name is an error.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	versions := r.models[name]
	if len(versions) == 0 {
		return fmt.Errorf("registry: unknown model %q", name)
	}
	if r.dir != "" {
		for _, e := range versions {
			path := filepath.Join(r.dir, entryFile(name, e.Version))
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("registry: remove %s: %w", path, err)
			}
		}
	}
	delete(r.models, name)
	return nil
}
