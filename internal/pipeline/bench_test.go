package pipeline

import (
	"context"
	"os"
	"testing"

	"repro/internal/registry"
)

// BenchmarkPipelineEndToEnd measures the whole netlist-in, model-out loop
// on the small RC deck: parse, variation build, 64 AC simulations, two
// cross-validated solver fits, and registry publication.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	deck, err := os.ReadFile("../../examples/netlists/rc_lowpass.cir")
	if err != nil {
		b.Fatal(err)
	}
	spec := rcSpec()
	reg := registry.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), Request{
			Name: "bench-rc", Netlist: string(deck), Spec: spec,
		}, Options{Registry: reg})
		if err != nil {
			b.Fatal(err)
		}
		if res.Entry == nil {
			b.Fatal("no entry")
		}
	}
}
