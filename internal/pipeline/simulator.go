package pipeline

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/faultinject"
	"repro/internal/spice"
	"repro/internal/variation"
)

// cardVar binds one varying device of the spec to its netlist card.
type cardVar struct {
	card  int // index into nl.Cards
	kinds []variation.ParamKind
}

// Simulator adapts a parsed netlist plus a variation space to the
// circuit.Simulator interface the sampling engines drive: each Evaluate
// rebuilds the deck with the factor vector's parameter deltas applied
// (VT additive, Beta/R/C relative — the SpiceOpAmp idiom) and extracts the
// spec's measure from a fresh analysis. Evaluations are independent, so
// one Simulator is safe for the sampling worker pool.
type Simulator struct {
	nl      *spice.Netlist
	space   *variation.Space
	vars    []cardVar // aligned with the space's device indices
	measure Measure
	an      spice.Analysis
	freqIdx int // .ac sweep index for ac_gain_db

	// ctx gates fault injection and lets an armed delay at pipeline.sim be
	// cut short by job cancellation; Background outside a pipeline run.
	ctx context.Context
}

// NewSimulator validates the spec against the netlist — device names,
// parameter kinds per card type, the measured node, the required analysis —
// and builds the variation space. The spec must already pass Validate.
func NewSimulator(nl *spice.Netlist, spec *Spec) (*Simulator, error) {
	vs, err := spec.variationSpec()
	if err != nil {
		return nil, err
	}
	space, err := variation.Build(vs)
	if err != nil {
		return nil, err
	}
	s := &Simulator{nl: nl, space: space, measure: spec.Measure, ctx: context.Background()}

	for _, dv := range spec.Variation.Devices {
		ci := -1
		for i := range nl.Cards {
			if strings.EqualFold(nl.Cards[i].Name, dv.Device) {
				ci = i
				break
			}
		}
		if ci < 0 {
			return nil, fmt.Errorf("pipeline: variation device %q not in netlist", dv.Device)
		}
		cv := cardVar{card: ci}
		for _, p := range dv.Params {
			k, err := variation.ParseKind(p)
			if err != nil {
				return nil, err
			}
			if err := kindAllowed(nl.Cards[ci].Kind, k); err != nil {
				return nil, fmt.Errorf("pipeline: device %s: %w", dv.Device, err)
			}
			cv.kinds = append(cv.kinds, k)
		}
		s.vars = append(s.vars, cv)
	}

	if !nodeExists(nl.Circuit, spec.Measure.Node) {
		return nil, fmt.Errorf("pipeline: measure node %q not in netlist", spec.Measure.Node)
	}
	kind := analysisKind(spec.Measure.Kind)
	found := false
	for _, an := range nl.Analyses {
		if an.Kind == kind {
			s.an = an
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("pipeline: measure %s needs a .%s analysis in the netlist", spec.Measure.Kind, kind)
	}
	if spec.Measure.Kind == MeasureACGainDB {
		best, bestDist := -1, math.Inf(1)
		for i, f := range s.an.Freqs {
			if d := math.Abs(math.Log(f / spec.Measure.Freq)); d < bestDist {
				best, bestDist = i, d
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("pipeline: .ac analysis has no sweep points")
		}
		s.freqIdx = best
	}
	return s, nil
}

// kindAllowed checks a parameter kind against the card type it perturbs.
func kindAllowed(card byte, k variation.ParamKind) error {
	ok := false
	switch card {
	case 'R':
		ok = k == variation.RWire
	case 'C':
		ok = k == variation.CWire
	case 'M':
		ok = k == variation.VTH || k == variation.Beta
	}
	if !ok {
		return fmt.Errorf("parameter %s does not apply to a %c card", k, card)
	}
	return nil
}

// analysisKind maps a measure kind to the netlist analysis it requires.
func analysisKind(measure string) string {
	switch measure {
	case MeasureTranDelay:
		return "tran"
	case MeasureACGainDB, MeasureACUnityGain:
		return "ac"
	default:
		return "dc"
	}
}

// nodeExists reports whether the circuit already has the named node
// (without Node's create-on-demand side effect).
func nodeExists(c *spice.Circuit, name string) bool {
	if name == "0" || name == "gnd" {
		return true
	}
	for i := 0; i < c.NumNodes(); i++ {
		if c.NodeName(spice.NodeID(i)) == name {
			return true
		}
	}
	return false
}

// Dim implements circuit.Simulator.
func (s *Simulator) Dim() int { return s.space.Dim() }

// Metrics implements circuit.Simulator.
func (s *Simulator) Metrics() []string { return []string{s.measure.String()} }

// Space exposes the built variation space (for diagnostics and tests).
func (s *Simulator) Space() *variation.Space { return s.space }

// Evaluate implements circuit.Simulator: rebuild the deck with the factor
// vector applied and extract the measure.
func (s *Simulator) Evaluate(dy []float64) ([]float64, error) {
	// Chaos hook: injected errors fail the sampling stage, injected delays
	// stall it against the job deadline; an armed delay respects s.ctx so
	// cancellation is prompt.
	if err := faultinject.FireCtx(s.ctx, "pipeline.sim"); err != nil {
		return nil, err
	}
	c, err := s.nl.BuildCircuit(func(i int, card *spice.DeviceCard) {
		for vi := range s.vars {
			if s.vars[vi].card != i {
				continue
			}
			for _, k := range s.vars[vi].kinds {
				d := s.space.Delta(vi, k, dy)
				switch k {
				case variation.VTH:
					card.MOS.VT += d
				case variation.Beta:
					card.MOS.Beta *= 1 + d
				case variation.RWire, variation.CWire:
					card.Value *= 1 + d
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	v, err := s.extract(c)
	if err != nil {
		return nil, err
	}
	return []float64{v}, nil
}

// extract runs the measure's analysis on a built circuit.
func (s *Simulator) extract(c *spice.Circuit) (float64, error) {
	node := c.Node(s.measure.Node)
	switch s.measure.Kind {
	case MeasureTranDelay:
		tr, err := c.TransientMethod(s.an.Stop, s.an.Step, s.an.Method)
		if err != nil {
			return 0, err
		}
		return tr.CrossingTime(node, s.measure.Threshold, s.measure.Edge == "rise", s.measure.After)
	case MeasureACGainDB, MeasureACUnityGain:
		if err := c.SetACMagnitude(s.an.ACSource, s.an.ACMag); err != nil {
			return 0, err
		}
		res, err := c.AC(s.an.Freqs)
		if err != nil {
			return 0, err
		}
		if s.measure.Kind == MeasureACUnityGain {
			return res.UnityGainFreq(node)
		}
		return res.MagDB(node, s.freqIdx), nil
	case MeasureDCVoltage:
		sol, err := c.DC()
		if err != nil {
			return 0, err
		}
		return sol.Voltage(node), nil
	}
	return 0, fmt.Errorf("pipeline: unknown measure kind %q", s.measure.Kind)
}
