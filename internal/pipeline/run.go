package pipeline

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/mc"
	"repro/internal/obs/trace"
	"repro/internal/registry"
	"repro/internal/spice"
)

// Request is one pipeline run: a netlist, a spec, and the registry name to
// publish the fitted model under.
type Request struct {
	// Name is the registry name for the published model.
	Name string
	// Netlist is the SPICE deck text.
	Netlist string
	// Spec configures variation, measurement, sampling and fitting.
	Spec Spec
}

// Options wires a run into its host.
type Options struct {
	// Registry receives the published model; required.
	Registry *registry.Registry
	// SimWorkers is the simulator worker-pool size (0 = GOMAXPROCS).
	SimWorkers int
	// Observer, when set, receives one StageEvent per completed stage (and
	// one with Err set for the failing stage). Called from the run
	// goroutine.
	Observer func(StageEvent)
	// FitObserver receives per-iteration solver telemetry from the sample
	// (adaptive) and fit stages; event stages are prefixed with the solver
	// name ("lar/cv-fold-1", "adaptive/final", …).
	FitObserver core.FitObserver
	// FitWorkers is the solver engine's correlation-sweep goroutine count
	// (0 = GOMAXPROCS), threaded to core.WithFitWorkers.
	FitWorkers int
	// RecoveryAttempt, when > 0, marks this run as a crash-recovery re-run
	// (the Nth time the host re-enqueued the job after an unclean
	// shutdown); it is recorded in the published model's provenance.
	RecoveryAttempt int
}

// StageEvent reports one stage's outcome and cost split.
type StageEvent struct {
	// Stage is one of the Stage* constants.
	Stage string
	// Err is non-nil when the stage failed (terminal for the run).
	Err error
	// Seconds is the stage's wall-clock duration.
	Seconds float64
	// SimSeconds and FitSeconds split the stage cost between simulator
	// and regression work (sample and fit stages).
	SimSeconds float64
	FitSeconds float64
	// Samples is the cumulative simulated sample count after the stage.
	Samples int
	// Detail is a short human-readable annotation ("dim=7 m=36", "winner
	// lar cv=1.2%", …).
	Detail string
}

// Trial records one solver's cross-validation outcome in the fit stage.
type Trial struct {
	Solver  string  `json:"solver"`
	Lambda  int     `json:"lambda"`
	CVError float64 `json:"cv_error"`
	Seconds float64 `json:"seconds"`
}

// Result is the outcome of a successful run.
type Result struct {
	// Entry is the published registry entry (Name, Version, Envelope).
	Entry *registry.Entry
	// Solver, Lambda and CVError describe the CV winner.
	Solver  string
	Lambda  int
	CVError float64
	// Trials lists every solver tried, winner included.
	Trials []Trial
	// Samples is the total simulated sample count; Rounds and Converged
	// describe the adaptive loop (zero/false for plain MC).
	Samples   int
	Rounds    int
	Converged bool
	// Dim is the variation-space factor count; Metric names the response.
	Dim    int
	Metric string
	// SimSeconds and FitSeconds are the run's total cost split.
	SimSeconds float64
	FitSeconds float64
}

// Run executes the full netlist-in, model-out loop. Cancellation via ctx is
// honored inside the sampling worker pool and the solver inner loops; a
// canceled run returns ctx's error and publishes nothing.
func Run(ctx context.Context, req Request, opts Options) (*Result, error) {
	if opts.Registry == nil {
		return nil, fmt.Errorf("pipeline: no registry")
	}
	if err := req.Spec.Validate(); err != nil {
		return nil, err
	}
	emit := opts.Observer
	if emit == nil {
		emit = func(StageEvent) {}
	}
	ctx = core.WithFitWorkers(ctx, opts.FitWorkers)
	stageStart := time.Now()
	// Each stage runs under its own child span of the job trace (when one
	// rides on ctx); stageCtx carries it into the stage's inner calls so
	// solver trials and CV folds nest beneath the stage.
	stageCtx := ctx
	var stageSpan *trace.Span
	beginStage := func(stage string) {
		stageCtx, stageSpan = trace.Start(ctx, "stage."+stage)
	}
	fail := func(stage string, err error) (*Result, error) {
		emit(StageEvent{Stage: stage, Err: err, Seconds: time.Since(stageStart).Seconds()})
		stageSpan.EndErr(err)
		return nil, err
	}
	done := func(ev StageEvent) {
		ev.Seconds = time.Since(stageStart).Seconds()
		emit(ev)
		if ev.Samples > 0 {
			stageSpan.SetAttr("samples", ev.Samples)
		}
		if ev.Detail != "" {
			stageSpan.SetAttr("detail", ev.Detail)
		}
		stageSpan.End()
		stageStart = time.Now()
	}

	// Stage 1: parse the netlist.
	beginStage(StageParse)
	nl, err := spice.ParseNetlist(strings.NewReader(req.Netlist))
	if err != nil {
		return fail(StageParse, err)
	}
	done(StageEvent{Stage: StageParse, Detail: fmt.Sprintf("%d cards, %d analyses", len(nl.Cards), len(nl.Analyses))})

	// Stage 2: validate the spec against the deck and build the variation
	// space and the Hermite dictionary.
	beginStage(StageSpace)
	sim, err := NewSimulator(nl, &req.Spec)
	if err != nil {
		return fail(StageSpace, err)
	}
	sim.ctx = ctx
	b, err := buildBasis(req.Spec.Fit.Degree, sim.Dim())
	if err != nil {
		return fail(StageSpace, err)
	}
	res := &Result{Dim: sim.Dim(), Metric: sim.Metrics()[0]}
	done(StageEvent{Stage: StageSpace, Detail: fmt.Sprintf("dim=%d m=%d", sim.Dim(), len(b.Terms))})

	// Stage 3: sample. Both modes share one virtual sample stream, so the
	// fit stage regenerates the points from (seed, K) instead of storing
	// them.
	beginStage(StageSample)
	sp := req.Spec.Sampling
	var f []float64
	switch sp.Mode {
	case ModeAdaptive:
		fitter, err := core.SolverByName(req.Spec.Fit.Solvers[0])
		if err != nil {
			return fail(StageSample, err)
		}
		adaptiveSpans := trace.NewSpanSet(stageCtx)
		ar, err := exp.AdaptiveFitCtx(observed(stageCtx, opts, "adaptive", adaptiveSpans), sim, b, fitter, exp.AdaptiveConfig{
			InitialK: sp.Samples, MaxK: sp.MaxSamples,
			TargetErr: sp.TargetErr, RelImprove: sp.RelImprove,
			Folds: req.Spec.Fit.Folds, MaxLambda: req.Spec.Fit.MaxLambda,
			Seed: sp.Seed, Workers: opts.SimWorkers,
		})
		adaptiveSpans.Close()
		if err != nil {
			return fail(StageSample, err)
		}
		f = ar.Responses
		res.Samples, res.Rounds, res.Converged = ar.K, len(ar.Rounds), ar.Converged
		res.SimSeconds += ar.SimTime.Seconds()
		res.FitSeconds += ar.FitTime.Seconds()
		// The adaptive loop's last round is already a full CV of the first
		// solver on the final sample set; reuse it as that solver's trial.
		last := ar.Rounds[len(ar.Rounds)-1]
		res.Trials = append(res.Trials, Trial{
			Solver: fitter.Name(), Lambda: last.Lambda, CVError: last.CVError,
			Seconds: ar.FitTime.Seconds(),
		})
		res.Solver, res.Lambda, res.CVError = fitter.Name(), last.Lambda, last.CVError
		done(StageEvent{
			Stage: StageSample, SimSeconds: ar.SimTime.Seconds(), FitSeconds: ar.FitTime.Seconds(),
			Samples: ar.K,
			Detail:  fmt.Sprintf("adaptive %d rounds, K=%d, converged=%t", len(ar.Rounds), ar.K, ar.Converged),
		})
	default: // ModeMC
		vals, simDur, err := mc.SampleVirtualRangeCtx(stageCtx, sim, 0, sp.Samples, sp.Seed, mc.Options{Workers: opts.SimWorkers})
		if err != nil {
			return fail(StageSample, err)
		}
		f = make([]float64, len(vals))
		for i, v := range vals {
			f[i] = v[0]
		}
		res.Samples = sp.Samples
		res.SimSeconds += simDur.Seconds()
		done(StageEvent{
			Stage: StageSample, SimSeconds: simDur.Seconds(), Samples: sp.Samples,
			Detail: fmt.Sprintf("mc K=%d", sp.Samples),
		})
	}

	// Stage 4: cross-validated solver selection over the shared design.
	beginStage(StageFit)
	// cvTrial runs one solver's cross-validation under its own child span
	// of the fit stage, with each CV fold and the final refit as
	// grandchildren — the deepest level of the job trace.
	cvTrial := func(fitter core.PathFitter, design basis.Design) (*core.CVResult, error) {
		trialCtx, trialSpan := trace.Start(stageCtx, "solver."+fitter.Name())
		foldSpans := trace.NewSpanSet(trialCtx)
		cv, err := core.CrossValidateCtx(observed(trialCtx, opts, fitter.Name(), foldSpans), fitter, design, f, req.Spec.Fit.Folds, req.Spec.Fit.MaxLambda)
		foldSpans.Close()
		if err == nil {
			trialSpan.SetAttr("lambda", cv.BestLambda)
			trialSpan.SetAttr("cv_error", cv.ErrCurve[cv.BestLambda-1])
		}
		trialSpan.EndErr(err)
		return cv, err
	}
	design := core.Subset(basis.NewGeneratedDesign(b, res.Samples, sp.Seed), seq(res.Samples))
	var winner *core.Model
	for _, name := range req.Spec.Fit.Solvers {
		if sp.Mode == ModeAdaptive && name == req.Spec.Fit.Solvers[0] {
			continue // already cross-validated by the adaptive loop
		}
		fitter, err := core.SolverByName(name)
		if err != nil {
			return fail(StageFit, err)
		}
		t0 := time.Now()
		cv, err := cvTrial(fitter, design)
		if err != nil {
			return fail(StageFit, fmt.Errorf("solver %s: %w", name, err))
		}
		sec := time.Since(t0).Seconds()
		res.FitSeconds += sec
		e := cv.ErrCurve[cv.BestLambda-1]
		res.Trials = append(res.Trials, Trial{Solver: fitter.Name(), Lambda: cv.BestLambda, CVError: e, Seconds: sec})
		if res.Solver == "" || e < res.CVError {
			res.Solver, res.Lambda, res.CVError = fitter.Name(), cv.BestLambda, e
			winner = cv.Model
		}
	}
	if winner == nil {
		// The adaptive first solver won; refit it on all samples to get the
		// model (the adaptive result's model is already exactly this, but
		// re-deriving it here keeps the winner path uniform and cheap).
		fitter, _ := core.SolverByName(res.Solver)
		cv, err := cvTrial(fitter, design)
		if err != nil {
			return fail(StageFit, err)
		}
		winner = cv.Model
		res.Lambda, res.CVError = cv.BestLambda, cv.ErrCurve[cv.BestLambda-1]
	}
	done(StageEvent{
		Stage: StageFit, FitSeconds: res.FitSeconds, Samples: res.Samples,
		Detail: fmt.Sprintf("winner %s λ=%d cv=%.3g (%d trials)", res.Solver, res.Lambda, res.CVError, len(res.Trials)),
	})

	// Stage 5: publish with pipeline provenance.
	beginStage(StagePublish)
	sum := sha256.Sum256([]byte(req.Netlist))
	trialErrs := make(map[string]float64, len(res.Trials))
	for _, t := range res.Trials {
		trialErrs[t.Solver] = t.CVError
	}
	env := &core.Envelope{
		Model: winner,
		Basis: b.Desc,
		Prov: core.Provenance{
			Solver: res.Solver, Lambda: res.Lambda, CVError: res.CVError,
			Folds: req.Spec.Fit.Folds, Samples: res.Samples, Metric: res.Metric,
			Source: "pipeline",
			Pipeline: &core.PipelineProvenance{
				NetlistSHA256:   hex.EncodeToString(sum[:]),
				Measure:         req.Spec.Measure.String(),
				Mode:            sp.Mode,
				Rounds:          res.Rounds,
				Converged:       res.Converged,
				SimSeconds:      res.SimSeconds,
				FitSeconds:      res.FitSeconds,
				Trials:          trialErrs,
				RecoveryAttempt: opts.RecoveryAttempt,
			},
		},
	}
	entry, err := opts.Registry.Put(req.Name, env)
	if err != nil {
		return fail(StagePublish, err)
	}
	res.Entry = entry
	done(StageEvent{Stage: StagePublish, Detail: fmt.Sprintf("%s@v%d nnz=%d", entry.Name, entry.Version, winner.NNZ())})
	return res, nil
}

// observed threads the run's fit observer into a stage context, prefixing
// event stages with the solver label so one job timeline can interleave
// several solvers unambiguously. The SpanSet additionally turns the raw
// (unprefixed) stage labels into child spans of ctx's span — one per CV
// fold, one for the final refit — with the last iteration's counters as
// attrs.
func observed(ctx context.Context, opts Options, label string, spans *trace.SpanSet) context.Context {
	obs := opts.FitObserver
	if obs == nil && spans == nil {
		return ctx
	}
	return core.WithFitObserver(ctx, func(ev core.FitEvent) {
		stage := ev.Stage
		if stage == "" {
			stage = label
		}
		spans.Observe(stage, trace.Int("iter", ev.Iter),
			trace.Int("active", ev.Active), trace.Float("residual", ev.Residual))
		if obs == nil {
			return
		}
		if ev.Stage == "" {
			ev.Stage = label
		} else {
			ev.Stage = label + "/" + ev.Stage
		}
		obs(ev)
	})
}

// seq returns [0, 1, …, n-1].
func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
