// Package pipeline implements the end-to-end netlist-in, model-out loop of
// the paper as one cancellable server-side job: parse a SPICE netlist,
// build the process-variation space, sample/simulate the circuit under
// variation, fit a sparse response-surface model with cross-validated
// solver selection, and publish the winner to the model registry.
//
// Each stage delegates to an existing layer — internal/spice for parsing
// and simulation, internal/variation for the factor model, internal/mc and
// internal/exp for sampling, internal/core for the regression solvers, and
// internal/registry for publication — so the package is orchestration, not
// new numerics. Cost accounting (simulation seconds vs fit seconds, sample
// counts) mirrors the paper's Table III breakdown and is surfaced per
// stage.
package pipeline

import (
	"fmt"
	"strings"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/variation"
)

// Stage names, in execution order.
const (
	StageParse   = "parse"
	StageSpace   = "space"
	StageSample  = "sample"
	StageFit     = "fit"
	StagePublish = "publish"
)

// Stages lists the pipeline stages in execution order.
var Stages = []string{StageParse, StageSpace, StageSample, StageFit, StagePublish}

// Spec is the user-facing pipeline configuration: which devices vary and
// how, what to measure, how to sample, and how to fit. It is the JSON body
// companion of the netlist in POST /v1/pipelines.
type Spec struct {
	// Variation declares the varying devices and the statistics of their
	// parameter deviations.
	Variation VariationSpec `json:"variation"`
	// Measure defines the scalar circuit response to model.
	Measure Measure `json:"measure"`
	// Sampling configures the Monte Carlo / adaptive sampling loop.
	Sampling Sampling `json:"sampling,omitempty"`
	// Fit configures the regression stage.
	Fit FitSpec `json:"fit,omitempty"`
}

// DeviceVar declares one varying device of the netlist.
type DeviceVar struct {
	// Device names the netlist card (case-insensitive), e.g. "M1" or "R2".
	Device string `json:"device"`
	// Params lists the varying parameter kinds: "vth", "beta" for MOSFETs,
	// "rwire" for resistors, "cwire" for capacitors.
	Params []string `json:"params"`
	// W, L are the device dimensions in µm (needed when PelgromA is set).
	W float64 `json:"w,omitempty"`
	L float64 `json:"l,omitempty"`
	// X, Y is the layout position in µm (needed with spatial correlation).
	X float64 `json:"x,omitempty"`
	Y float64 `json:"y,omitempty"`
}

// VariationSpec is the JSON form of variation.Spec with parameter kinds
// keyed by name.
type VariationSpec struct {
	Devices []DeviceVar `json:"devices"`
	// InterDieSigma, PelgromA and SpatialSigma are keyed by parameter kind
	// name ("vth", "beta", "rwire", "cwire"), case-insensitively.
	InterDieSigma map[string]float64 `json:"inter_die_sigma,omitempty"`
	PelgromA      map[string]float64 `json:"pelgrom_a,omitempty"`
	SpatialSigma  map[string]float64 `json:"spatial_sigma,omitempty"`
	GridNX        int                `json:"grid_nx,omitempty"`
	GridNY        int                `json:"grid_ny,omitempty"`
	DieW          float64            `json:"die_w,omitempty"`
	DieH          float64            `json:"die_h,omitempty"`
}

// Measure kinds.
const (
	MeasureTranDelay   = "tran_delay"         // .tran crossing time of a node
	MeasureACGainDB    = "ac_gain_db"         // .ac magnitude in dB at Freq
	MeasureACUnityGain = "ac_unity_gain_freq" // .ac unity-gain frequency
	MeasureDCVoltage   = "dc_voltage"         // DC operating-point voltage
)

// Measure defines the scalar response extracted from each simulation.
type Measure struct {
	// Kind selects the extraction: tran_delay, ac_gain_db,
	// ac_unity_gain_freq or dc_voltage.
	Kind string `json:"kind"`
	// Node is the observed node name.
	Node string `json:"node"`
	// Threshold is the crossing level for tran_delay.
	Threshold float64 `json:"threshold,omitempty"`
	// Edge is "rise" (default) or "fall" for tran_delay.
	Edge string `json:"edge,omitempty"`
	// After is the earliest crossing time considered (tran_delay).
	After float64 `json:"after,omitempty"`
	// Freq picks the .ac sweep point for ac_gain_db (nearest match).
	Freq float64 `json:"freq,omitempty"`
}

// String renders the measure as a compact provenance label.
func (m Measure) String() string {
	switch m.Kind {
	case MeasureACGainDB:
		return fmt.Sprintf("%s(%s@%g)", m.Kind, m.Node, m.Freq)
	default:
		return fmt.Sprintf("%s(%s)", m.Kind, m.Node)
	}
}

// Sampling modes.
const (
	ModeMC       = "mc"
	ModeAdaptive = "adaptive"
)

// Sampling configures the simulation budget.
type Sampling struct {
	// Mode is "mc" (fixed sample count, default) or "adaptive" (grow until
	// the cross-validation error plateaus, capped by MaxSamples).
	Mode string `json:"mode,omitempty"`
	// Samples is the fixed MC sample count (default 256); in adaptive mode
	// it is the initial batch size.
	Samples int `json:"samples,omitempty"`
	// MaxSamples caps the adaptive budget (default 4·Samples).
	MaxSamples int `json:"max_samples,omitempty"`
	// Seed drives the virtual sample stream (default 1).
	Seed int64 `json:"seed,omitempty"`
	// TargetErr stops adaptive sampling early once the CV error falls
	// below it (0 disables).
	TargetErr float64 `json:"target_err,omitempty"`
	// RelImprove is the adaptive stopping threshold (default 0.1).
	RelImprove float64 `json:"rel_improve,omitempty"`
}

// FitSpec configures the regression stage.
type FitSpec struct {
	// Degree of the Hermite dictionary (default 2).
	Degree int `json:"degree,omitempty"`
	// Folds is the cross-validation fold count (default 4).
	Folds int `json:"folds,omitempty"`
	// MaxLambda bounds the selected sparsity (default 50).
	MaxLambda int `json:"max_lambda,omitempty"`
	// Solvers are the candidates for CV selection (default omp, lar).
	Solvers []string `json:"solvers,omitempty"`
}

// withDefaults fills the documented defaults in place.
func (s *Spec) withDefaults() {
	if s.Sampling.Mode == "" {
		s.Sampling.Mode = ModeMC
	}
	if s.Sampling.Samples <= 0 {
		s.Sampling.Samples = 256
	}
	if s.Sampling.MaxSamples <= 0 {
		s.Sampling.MaxSamples = 4 * s.Sampling.Samples
	}
	if s.Sampling.Seed == 0 {
		s.Sampling.Seed = 1
	}
	if s.Measure.Edge == "" {
		s.Measure.Edge = "rise"
	}
	if s.Fit.Degree == 0 {
		s.Fit.Degree = 2
	}
	if s.Fit.Folds == 0 {
		s.Fit.Folds = 4
	}
	if s.Fit.MaxLambda == 0 {
		s.Fit.MaxLambda = 50
	}
	if len(s.Fit.Solvers) == 0 {
		s.Fit.Solvers = []string{"omp", "lar"}
	}
}

// Validate rejects cheaply detectable bad specs before any simulation;
// netlist-dependent validation (device names, nodes, analyses) happens in
// NewSimulator. It also normalizes defaults.
func (s *Spec) Validate() error {
	s.withDefaults()
	if len(s.Variation.Devices) == 0 {
		return fmt.Errorf("pipeline: variation.devices is empty")
	}
	for _, d := range s.Variation.Devices {
		if d.Device == "" {
			return fmt.Errorf("pipeline: variation device with empty name")
		}
		if len(d.Params) == 0 {
			return fmt.Errorf("pipeline: device %s lists no params", d.Device)
		}
		for _, p := range d.Params {
			if _, err := variation.ParseKind(p); err != nil {
				return fmt.Errorf("pipeline: device %s: %w", d.Device, err)
			}
		}
	}
	for _, m := range []map[string]float64{s.Variation.InterDieSigma, s.Variation.PelgromA, s.Variation.SpatialSigma} {
		for k := range m {
			if _, err := variation.ParseKind(k); err != nil {
				return fmt.Errorf("pipeline: %w", err)
			}
		}
	}
	switch s.Measure.Kind {
	case MeasureTranDelay, MeasureACGainDB, MeasureACUnityGain, MeasureDCVoltage:
	case "":
		return fmt.Errorf("pipeline: measure.kind is required")
	default:
		return fmt.Errorf("pipeline: unknown measure kind %q (want %s, %s, %s or %s)",
			s.Measure.Kind, MeasureTranDelay, MeasureACGainDB, MeasureACUnityGain, MeasureDCVoltage)
	}
	if s.Measure.Node == "" {
		return fmt.Errorf("pipeline: measure.node is required")
	}
	switch s.Measure.Edge {
	case "rise", "fall":
	default:
		return fmt.Errorf("pipeline: measure.edge %q (want rise or fall)", s.Measure.Edge)
	}
	if s.Measure.Kind == MeasureACGainDB && s.Measure.Freq <= 0 {
		return fmt.Errorf("pipeline: measure.freq must be positive for %s", MeasureACGainDB)
	}
	switch s.Sampling.Mode {
	case ModeMC, ModeAdaptive:
	default:
		return fmt.Errorf("pipeline: sampling.mode %q (want %s or %s)", s.Sampling.Mode, ModeMC, ModeAdaptive)
	}
	if s.Sampling.MaxSamples < s.Sampling.Samples {
		return fmt.Errorf("pipeline: sampling.max_samples=%d below samples=%d", s.Sampling.MaxSamples, s.Sampling.Samples)
	}
	if s.Fit.Degree < 1 || s.Fit.Degree > 6 {
		return fmt.Errorf("pipeline: fit.degree=%d (want 1..6)", s.Fit.Degree)
	}
	if s.Fit.Folds < 2 {
		return fmt.Errorf("pipeline: fit.folds=%d, need ≥ 2", s.Fit.Folds)
	}
	if s.Fit.MaxLambda < 1 {
		return fmt.Errorf("pipeline: fit.max_lambda=%d, need ≥ 1", s.Fit.MaxLambda)
	}
	seen := map[string]bool{}
	for _, name := range s.Fit.Solvers {
		if _, err := core.SolverByName(name); err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
		lower := strings.ToLower(name)
		if seen[lower] {
			return fmt.Errorf("pipeline: duplicate solver %q", name)
		}
		seen[lower] = true
	}
	return nil
}

// variationSpec lowers the JSON form to a variation.Spec. DeviceVar order
// is preserved, so device index i in the built Space corresponds to
// Variation.Devices[i].
func (s *Spec) variationSpec() (variation.Spec, error) {
	vs := variation.Spec{
		GridNX: s.Variation.GridNX, GridNY: s.Variation.GridNY,
		DieW: s.Variation.DieW, DieH: s.Variation.DieH,
	}
	lower := func(m map[string]float64) (map[variation.ParamKind]float64, error) {
		if len(m) == 0 {
			return nil, nil
		}
		out := make(map[variation.ParamKind]float64, len(m))
		for name, v := range m {
			k, err := variation.ParseKind(name)
			if err != nil {
				return nil, err
			}
			out[k] = v
		}
		return out, nil
	}
	var err error
	if vs.InterDieSigma, err = lower(s.Variation.InterDieSigma); err != nil {
		return vs, err
	}
	if vs.PelgromA, err = lower(s.Variation.PelgromA); err != nil {
		return vs, err
	}
	if vs.SpatialSigma, err = lower(s.Variation.SpatialSigma); err != nil {
		return vs, err
	}
	for _, d := range s.Variation.Devices {
		dev := variation.Device{Name: d.Device, W: d.W, L: d.L, X: d.X, Y: d.Y}
		for _, p := range d.Params {
			k, err := variation.ParseKind(p)
			if err != nil {
				return vs, err
			}
			dev.Kinds = append(dev.Kinds, k)
		}
		vs.Devices = append(vs.Devices, dev)
	}
	return vs, nil
}

// buildBasis constructs the Hermite dictionary for the fit stage, guarding
// against combinatorial blow-ups the same way the server's fit path does.
func buildBasis(degree, dim int) (*basis.Basis, error) {
	switch {
	case degree == 1:
		return basis.Linear(dim), nil
	case degree == 2:
		return basis.Quadratic(dim), nil
	case degree >= 3 && degree <= 6:
		d := basis.Descriptor{Kind: basis.KindTotalDegree, Dim: dim, Degree: degree}
		if sz := d.Size(); sz < 0 || sz > 1<<26 {
			return nil, fmt.Errorf("pipeline: degree-%d dictionary over %d variables is too large", degree, dim)
		}
		return d.Build()
	default:
		return nil, fmt.Errorf("pipeline: unsupported degree %d (want 1..6)", degree)
	}
}
