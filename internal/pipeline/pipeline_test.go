package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/registry"
	"repro/internal/spice"
)

// readDeck loads a committed example netlist.
func readDeck(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile("../../examples/netlists/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// rcSpec is the rc_lowpass pipeline spec used across tests: R and C vary
// globally and locally; the response is the gain at the 1 kHz corner.
func rcSpec() Spec {
	return Spec{
		Variation: VariationSpec{
			Devices: []DeviceVar{
				{Device: "R1", Params: []string{"rwire"}, W: 1, L: 1},
				{Device: "C1", Params: []string{"cwire"}, W: 1, L: 1},
			},
			InterDieSigma: map[string]float64{"rwire": 0.05, "cwire": 0.05},
			PelgromA:      map[string]float64{"rwire": 0.02, "cwire": 0.02},
		},
		Measure:  Measure{Kind: MeasureACGainDB, Node: "out", Freq: 1000},
		Sampling: Sampling{Mode: ModeMC, Samples: 64, Seed: 7},
		Fit:      FitSpec{Degree: 2, Solvers: []string{"omp", "lar"}},
	}
}

func TestSpecValidate(t *testing.T) {
	good := rcSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	bad := []func(*Spec){
		func(s *Spec) { s.Variation.Devices = nil },
		func(s *Spec) { s.Variation.Devices[0].Params = []string{"vth-ish"} },
		func(s *Spec) { s.Variation.InterDieSigma = map[string]float64{"nope": 1} },
		func(s *Spec) { s.Measure.Kind = "eye_diagram" },
		func(s *Spec) { s.Measure.Node = "" },
		func(s *Spec) { s.Measure.Edge = "sideways" },
		func(s *Spec) { s.Measure.Freq = 0 },
		func(s *Spec) { s.Sampling.Mode = "exhaustive" },
		func(s *Spec) { s.Sampling.MaxSamples = 8; s.Sampling.Samples = 64 },
		func(s *Spec) { s.Fit.Degree = 9 },
		func(s *Spec) { s.Fit.Folds = 1 },
		func(s *Spec) { s.Fit.Solvers = []string{"omp", "OMP"} },
		func(s *Spec) { s.Fit.Solvers = []string{"sgd"} },
	}
	for i, mut := range bad {
		s := rcSpec()
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestSimulatorRCLowpass(t *testing.T) {
	nl, err := spice.ParseNetlist(strings.NewReader(readDeck(t, "rc_lowpass.cir")))
	if err != nil {
		t.Fatal(err)
	}
	spec := rcSpec()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(nl, &spec)
	if err != nil {
		t.Fatal(err)
	}
	// 2 global + 2 local factors.
	if sim.Dim() != 4 {
		t.Fatalf("dim = %d, want 4", sim.Dim())
	}
	// Nominal circuit: |H| at the 1 kHz corner is 1/√2 ≈ -3.01 dB.
	v, err := sim.Evaluate(make([]float64, sim.Dim()))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[0]-(-3.0103)) > 0.05 {
		t.Errorf("nominal gain = %.4f dB, want ≈ -3.01", v[0])
	}
	// A +1σ global R shift moves the corner down; gain at 1 kHz drops.
	dy := make([]float64, sim.Dim())
	dy[0] = 1 // first factor is global/RWIRE (deterministic factor order)
	vp, err := sim.Evaluate(dy)
	if err != nil {
		t.Fatal(err)
	}
	if vp[0] >= v[0] {
		t.Errorf("gain with +R shift %.4f not below nominal %.4f", vp[0], v[0])
	}
}

func TestSimulatorSpecErrors(t *testing.T) {
	nl, err := spice.ParseNetlist(strings.NewReader(readDeck(t, "rc_lowpass.cir")))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"unknown device", func(s *Spec) { s.Variation.Devices[0].Device = "R9" }},
		{"kind/card mismatch", func(s *Spec) { s.Variation.Devices[0].Params = []string{"vth"} }},
		{"unknown node", func(s *Spec) { s.Measure.Node = "vout" }},
		{"missing analysis", func(s *Spec) { s.Measure = Measure{Kind: MeasureTranDelay, Node: "out", Threshold: 0.5} }},
	}
	for _, tc := range cases {
		s := rcSpec()
		tc.mut(&s)
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: spec-level validation rejected: %v", tc.name, err)
		}
		if _, err := NewSimulator(nl, &s); err == nil {
			t.Errorf("%s: NewSimulator accepted bad spec", tc.name)
		}
	}
}

func TestRunMC(t *testing.T) {
	reg := registry.New()
	var events []StageEvent
	res, err := Run(context.Background(), Request{
		Name: "rc-gain", Netlist: readDeck(t, "rc_lowpass.cir"), Spec: rcSpec(),
	}, Options{Registry: reg, Observer: func(ev StageEvent) { events = append(events, ev) }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Entry == nil || res.Entry.Name != "rc-gain" || res.Entry.Version != 1 {
		t.Fatalf("bad entry: %+v", res.Entry)
	}
	if res.Samples != 64 || res.Dim != 4 {
		t.Errorf("samples=%d dim=%d, want 64/4", res.Samples, res.Dim)
	}
	if res.SimSeconds <= 0 {
		t.Errorf("SimSeconds = %g, want > 0", res.SimSeconds)
	}
	if len(res.Trials) != 2 {
		t.Errorf("trials = %+v, want 2", res.Trials)
	}
	// The low-order response should fit tightly.
	if res.CVError > 0.05 {
		t.Errorf("cv error %.3f, want < 5%%", res.CVError)
	}
	var stages []string
	for _, ev := range events {
		if ev.Err != nil {
			t.Errorf("stage %s failed: %v", ev.Stage, ev.Err)
		}
		stages = append(stages, ev.Stage)
	}
	want := strings.Join(Stages, ",")
	if got := strings.Join(stages, ","); got != want {
		t.Errorf("stage order %s, want %s", got, want)
	}
	// Provenance carries the pipeline record.
	prov := res.Entry.Envelope.Prov
	if prov.Source != "pipeline" || prov.Pipeline == nil {
		t.Fatalf("provenance missing pipeline record: %+v", prov)
	}
	if prov.Pipeline.Mode != ModeMC || prov.Pipeline.NetlistSHA256 == "" || len(prov.Pipeline.Trials) != 2 {
		t.Errorf("bad pipeline provenance: %+v", prov.Pipeline)
	}
}

func TestRunAdaptive(t *testing.T) {
	if testing.Short() {
		t.Skip("transient sampling loop")
	}
	spec := Spec{}
	if err := json.Unmarshal([]byte(readDeck(t, "sram_readslice_pipeline.json")), &spec); err != nil {
		t.Fatal(err)
	}
	spec.Sampling.Samples, spec.Sampling.MaxSamples = 16, 64
	reg := registry.New()
	res, err := Run(context.Background(), Request{
		Name: "sram-read-delay", Netlist: readDeck(t, "sram_readslice.cir"), Spec: spec,
	}, Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 1 || res.Samples < 16 {
		t.Errorf("rounds=%d samples=%d", res.Rounds, res.Samples)
	}
	if res.Entry == nil || reg.Len() != 1 {
		t.Fatalf("model not published")
	}
	if res.Metric != "tran_delay(bl)" {
		t.Errorf("metric = %q", res.Metric)
	}
}

func TestRunCancelDuringSampling(t *testing.T) {
	// An armed delay at pipeline.sim holds every simulator call; cancel must
	// cut through it promptly and publish nothing.
	if err := faultinject.Configure("pipeline.sim=delay:10s"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	reg := registry.New()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Run(ctx, Request{
		Name: "rc-gain", Netlist: readDeck(t, "rc_lowpass.cir"), Spec: rcSpec(),
	}, Options{Registry: reg, SimWorkers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation took %s", d)
	}
	if reg.Len() != 0 {
		t.Errorf("canceled run published %d models", reg.Len())
	}
}

func TestRunSimulatorFault(t *testing.T) {
	if err := faultinject.Configure("pipeline.sim=error:flaky simulator"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	reg := registry.New()
	var failed StageEvent
	_, err := Run(context.Background(), Request{
		Name: "rc-gain", Netlist: readDeck(t, "rc_lowpass.cir"), Spec: rcSpec(),
	}, Options{Registry: reg, Observer: func(ev StageEvent) {
		if ev.Err != nil {
			failed = ev
		}
	}})
	if err == nil || !strings.Contains(err.Error(), "flaky simulator") {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if failed.Stage != StageSample {
		t.Errorf("failing stage = %q, want %q", failed.Stage, StageSample)
	}
	if reg.Len() != 0 {
		t.Errorf("failed run published %d models", reg.Len())
	}
}

func TestRunParseErrorCarriesLine(t *testing.T) {
	_, err := Run(context.Background(), Request{
		Name: "x", Netlist: "V1 in 0 DC 1\nR1 in out oops\n", Spec: rcSpec(),
	}, Options{Registry: registry.New()})
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want parse error naming line 2", err)
	}
}
