package exp

import (
	"testing"

	"repro/internal/basis"
	"repro/internal/circuit"
	"repro/internal/core"
)

func TestAdaptiveFitConvergesOnSparseTruth(t *testing.T) {
	sim, err := circuit.NewSynthetic(80, 60, 1, 4, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	b := basis.Linear(sim.Dim())
	res, err := AdaptiveFit(sim, b, &core.OMP{}, AdaptiveConfig{
		Metric:   0,
		InitialK: 40,
		MaxK:     640,
		Folds:    4,
		Seed:     81,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) < 2 {
		t.Fatalf("only %d rounds", len(res.Rounds))
	}
	if !res.Converged {
		t.Error("expected convergence before the budget")
	}
	// The model must recover the true support.
	truth := sim.TrueModel()
	got := map[int]bool{}
	for _, s := range res.Model.Support {
		got[s] = true
	}
	for _, s := range truth.Support {
		if !got[s] {
			t.Errorf("true basis %d missing from adaptive model", s)
		}
	}
	// Error must be non-increasing-ish across rounds (allow tiny noise).
	first, last := res.Rounds[0].CVError, res.Rounds[len(res.Rounds)-1].CVError
	if last > first {
		t.Errorf("CV error rose across rounds: %g → %g", first, last)
	}
	// Budget accounting: K grows geometrically from InitialK.
	if res.K > 640 || res.K < 40 {
		t.Errorf("total K = %d outside [40, 640]", res.K)
	}
}

func TestAdaptiveFitTargetError(t *testing.T) {
	sim, err := circuit.NewSynthetic(82, 30, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := basis.Linear(sim.Dim())
	res, err := AdaptiveFit(sim, b, &core.OMP{}, AdaptiveConfig{
		Metric:    0,
		InitialK:  48,
		MaxK:      400,
		TargetErr: 0.05,
		Seed:      83,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("noiseless 2-sparse problem should hit the target error")
	}
	if res.K != 48 {
		t.Errorf("expected the first round to suffice, used K=%d", res.K)
	}
}

func TestAdaptiveFitValidation(t *testing.T) {
	sim, err := circuit.NewSynthetic(84, 10, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := basis.Linear(sim.Dim())
	if _, err := AdaptiveFit(sim, basis.Linear(5), &core.OMP{}, AdaptiveConfig{MaxK: 100}); err == nil {
		t.Error("basis/simulator dimension mismatch must error")
	}
	if _, err := AdaptiveFit(sim, b, &core.OMP{}, AdaptiveConfig{Metric: 3, MaxK: 100}); err == nil {
		t.Error("bad metric index must error")
	}
	if _, err := AdaptiveFit(sim, b, &core.OMP{}, AdaptiveConfig{InitialK: 200, MaxK: 100}); err == nil {
		t.Error("MaxK < InitialK must error")
	}
}
