package exp

import (
	"strings"
	"testing"
)

func TestAsciiPlotBasic(t *testing.T) {
	series := []Series{
		{Name: "OMP", Mark: 'O', Points: []Point{{K: 100, Err: 0.10}, {K: 600, Err: 0.02}}},
		{Name: "LS", Mark: 'L', Points: []Point{{K: 700, Err: 0.20}}},
	}
	out := AsciiPlot("title", series, 40, 8)
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "O") || !strings.Contains(out, "L") {
		t.Error("missing series marks")
	}
	if !strings.Contains(out, "[O]=OMP") || !strings.Contains(out, "[L]=LS") {
		t.Error("missing legend")
	}
	if !strings.Contains(out, "K = 100 … 700") {
		t.Errorf("missing x range:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + 8 grid rows + axis + legend = 11.
	if len(lines) != 11 {
		t.Errorf("got %d lines, want 11:\n%s", len(lines), out)
	}
	// The highest error (20%) must appear on the top grid row.
	if !strings.Contains(lines[1], "L") {
		t.Errorf("max-error point not on top row:\n%s", out)
	}
}

func TestAsciiPlotEmpty(t *testing.T) {
	out := AsciiPlot("t", nil, 40, 8)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty plot output: %q", out)
	}
}

func TestAsciiPlotClampsTinyDims(t *testing.T) {
	series := []Series{{Name: "x", Mark: 'x', Points: []Point{{K: 1, Err: 0.5}}}}
	out := AsciiPlot("t", series, 1, 1)
	if len(out) == 0 {
		t.Fatal("no output")
	}
}

func TestRunSpiceCostSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment")
	}
	cfg := SpiceCostConfig{LSK: 60, SparseK: 24, TestN: 30, Folds: 4, MaxLambda: 10, Seed: 9}
	res, err := RunSpiceCost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dim != 52 {
		t.Errorf("Dim = %d, want 52", res.Dim)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.SimCost <= 0 {
			t.Errorf("%s: simulation cost not recorded", r.Solver)
		}
		if r.Err <= 0 || r.Err > 1.5 {
			t.Errorf("%s: error %g implausible", r.Solver, r.Err)
		}
	}
	// The cost structure of the paper: simulation dominates fitting.
	for _, r := range res.Rows {
		if r.Solver == "OMP" && r.SimCost < r.FitCost {
			t.Errorf("OMP: simulation (%v) should dominate fitting (%v) on the transistor-level bench", r.SimCost, r.FitCost)
		}
	}
}

func TestRunSpiceCostRejectsUnderdeterminedLS(t *testing.T) {
	cfg := SpiceCostConfig{LSK: 10, SparseK: 5, TestN: 5, Folds: 2, MaxLambda: 3, Seed: 1}
	if _, err := RunSpiceCost(cfg); err == nil {
		t.Error("LSK < M must error")
	}
}

func TestAsciiHist(t *testing.T) {
	samples := []float64{0, 0.1, 0.1, 0.2, 0.9, 1.0}
	out := AsciiHist("h", samples, 5, 20)
	if !strings.Contains(out, "h\n") || !strings.Contains(out, "█") {
		t.Errorf("histogram malformed:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title + 5 bins
		t.Errorf("got %d lines, want 6:\n%s", len(lines), out)
	}
	if AsciiHist("e", nil, 5, 20) != "e\n(no data)\n" {
		t.Error("empty histogram wrong")
	}
	// Constant samples must not divide by zero.
	if out := AsciiHist("c", []float64{2, 2, 2}, 4, 20); !strings.Contains(out, "3") {
		t.Errorf("constant histogram:\n%s", out)
	}
}
