package exp

import (
	"fmt"
	"time"

	"repro/internal/basis"
	"repro/internal/circuit"
	"repro/internal/mc"
)

// SpiceCostConfig parameterizes the transistor-level cost experiment: the
// Table I comparison repeated with the spice-backed OpAmp, whose per-sample
// cost is a real DC + AC simulation. Unlike the analytic OpAmp (where our
// substituted evaluator makes sampling artificially cheap), this testbench
// reproduces the paper's cost *structure* — simulation dominates and total
// cost scales with the sample count — without re-pricing.
type SpiceCostConfig struct {
	LSK, SparseK     int
	TestN            int
	Folds, MaxLambda int
	Seed             int64
	Logf             func(string, ...any)
}

// DefaultSpiceCostConfig keeps the experiment to roughly a minute: the
// spice OpAmp has 52 factors, so LS needs K ≥ 53.
func DefaultSpiceCostConfig() SpiceCostConfig {
	return SpiceCostConfig{LSK: 160, SparseK: 40, TestN: 120, Folds: 4, MaxLambda: 16, Seed: 5}
}

// SpiceCostResult mirrors Table1Result for the transistor-level testbench.
type SpiceCostResult struct {
	Dim  int
	Rows []CostRow
}

// RunSpiceCost runs the Table I cost comparison on the transistor-level
// OpAmp.
func RunSpiceCost(cfg SpiceCostConfig) (*SpiceCostResult, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = discard
	}
	amp, err := circuit.NewSpiceOpAmp()
	if err != nil {
		return nil, err
	}
	b := basis.Linear(amp.Dim())
	if cfg.LSK < b.Size() {
		return nil, fmt.Errorf("exp: spice cost LS needs K ≥ %d, got %d", b.Size(), cfg.LSK)
	}
	logf("spicecost: simulating %d training + %d testing samples (DC+AC each)", cfg.LSK, cfg.TestN)
	train, err := mc.Sample(amp, cfg.LSK, cfg.Seed, mc.Options{})
	if err != nil {
		return nil, err
	}
	logf("spicecost: training simulation took %s", FormatDuration(train.SimTime))
	test, err := mc.Sample(amp, cfg.TestN, cfg.Seed+1, mc.Options{})
	if err != nil {
		return nil, err
	}
	perSample := train.SimTime / time.Duration(train.Len())

	res := &SpiceCostResult{Dim: amp.Dim()}
	for _, spec := range DefaultSolvers() {
		k := cfg.SparseK
		if spec.Fitter == nil {
			k = cfg.LSK
		}
		var fitTotal time.Duration
		var errSum float64
		lambda := 0
		for mi := range amp.Metrics() {
			f := train.MetricColumn(mi)[:k]
			var fit FitResult
			var err error
			if spec.Fitter == nil {
				fit, err = FitLS(b, train.Points[:k], f)
			} else {
				fit, err = FitSparse(spec.Fitter, b, train.Points[:k], f, cfg.Folds, cfg.MaxLambda)
			}
			if err != nil {
				return nil, fmt.Errorf("spicecost %s metric %d: %w", spec.Name, mi, err)
			}
			fitTotal += fit.FitTime
			errSum += TestError(fit.Model, b, test.Points, test.MetricColumn(mi))
			if fit.Lambda > lambda {
				lambda = fit.Lambda
			}
		}
		row := CostRow{
			Solver:  spec.Name,
			K:       k,
			SimCost: perSample * time.Duration(k),
			FitCost: fitTotal,
			Err:     errSum / float64(len(amp.Metrics())),
			Lambda:  lambda,
		}
		res.Rows = append(res.Rows, row)
		logf("spicecost %-4s K=%-4d sim=%s fit=%s err=%.2f%%", row.Solver, row.K,
			FormatDuration(row.SimCost), FormatDuration(row.FitCost), 100*row.Err)
	}
	return res, nil
}
