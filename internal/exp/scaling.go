package exp

import (
	"fmt"
	"math"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/rng"
)

// ScalingConfig parameterizes the empirical verification of the paper's
// Section IV-B scaling claim: with P non-zeros among M coefficients and a
// well-conditioned random design, OMP recovers the true support with high
// probability from K = O(P·log M) samples. The experiment measures, for each
// dictionary size M, the smallest K at which the recovery rate over repeated
// random trials reaches a target.
type ScalingConfig struct {
	// Ms are the dictionary sizes to sweep (linear bases over M−1 factors).
	Ms []int
	// P is the fixed true sparsity.
	P int
	// Trials per (M, K) point.
	Trials int
	// Target recovery rate in [0, 1].
	Target float64
	// Seed drives all randomness.
	Seed int64
	Logf func(string, ...any)
}

// DefaultScalingConfig sweeps M over two orders of magnitude.
func DefaultScalingConfig() ScalingConfig {
	return ScalingConfig{
		Ms:     []int{64, 128, 256, 512, 1024, 2048},
		P:      8,
		Trials: 20,
		Target: 0.9,
		Seed:   6,
	}
}

// ScalingPoint is one sweep result.
type ScalingPoint struct {
	M int
	// MinK is the smallest tested K reaching the target recovery rate.
	MinK int
	// Rate is the recovery rate measured at MinK.
	Rate float64
	// KOverPLogM is MinK / (P·ln M), which the theory predicts to be
	// roughly constant across M.
	KOverPLogM float64
}

// RunScaling measures the minimal sample count for reliable OMP support
// recovery as a function of dictionary size.
func RunScaling(cfg ScalingConfig) ([]ScalingPoint, error) {
	if cfg.P < 1 || cfg.Target <= 0 || cfg.Target > 1 || cfg.Trials < 1 {
		return nil, fmt.Errorf("exp: invalid scaling config %+v", cfg)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = discard
	}
	src := rng.New(cfg.Seed)
	var out []ScalingPoint
	for _, m := range cfg.Ms {
		if m <= cfg.P+1 {
			return nil, fmt.Errorf("exp: dictionary size %d too small for P=%d", m, cfg.P)
		}
		plogm := float64(cfg.P) * math.Log(float64(m))
		// Sweep K upward in steps of ~P/2 from a small start.
		found := false
		var point ScalingPoint
		for k := cfg.P + 2; k <= 8*int(plogm); k += (cfg.P + 1) / 2 {
			succ := 0
			for trial := 0; trial < cfg.Trials; trial++ {
				if scalingTrialRecovers(src.Split(), m, cfg.P, k) {
					succ++
				}
			}
			rate := float64(succ) / float64(cfg.Trials)
			if rate >= cfg.Target {
				point = ScalingPoint{M: m, MinK: k, Rate: rate, KOverPLogM: float64(k) / plogm}
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("exp: no K ≤ %d reached %.0f%% recovery at M=%d", 8*int(plogm), 100*cfg.Target, m)
		}
		logf("scaling M=%-5d minK=%-4d rate=%.2f K/(P·lnM)=%.2f", point.M, point.MinK, point.Rate, point.KOverPLogM)
		out = append(out, point)
	}
	return out, nil
}

// scalingTrialRecovers runs one noiseless recovery trial: draw a random
// P-sparse coefficient vector over a linear Hermite basis, sample K points,
// and check exact support recovery by OMP.
func scalingTrialRecovers(src *rng.Source, m, p, k int) bool {
	dim := m - 1
	b := basis.Linear(dim)
	perm := src.Perm(b.Size())
	support := perm[:p]
	coefs := make([]float64, p)
	for i := range coefs {
		c := 0.5 + src.Float64()
		if src.Float64() < 0.5 {
			c = -c
		}
		coefs[i] = c
	}
	truth := &core.Model{M: b.Size(), Support: append([]int(nil), support...), Coef: coefs}
	pts := make([][]float64, k)
	f := make([]float64, k)
	for i := range pts {
		pts[i] = src.NormVec(nil, dim)
		f[i] = truth.PredictPoint(b, pts[i])
	}
	d := basis.NewDenseDesign(b, pts)
	model, err := (&core.OMP{}).Fit(d, f, p)
	if err != nil {
		return false
	}
	got := make(map[int]bool, p)
	for _, s := range model.Support {
		got[s] = true
	}
	for _, s := range support {
		if !got[s] {
			return false
		}
	}
	return true
}
