package exp

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve for AsciiPlot.
type Series struct {
	Name   string
	Mark   byte
	Points []Point
}

// AsciiPlot renders error-vs-K curves as a fixed-size character plot, the
// terminal rendition of Fig. 4. The y axis is the error (percent), the x
// axis the training sample count.
func AsciiPlot(title string, series []Series, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	maxY := 0.0
	for _, s := range series {
		for _, p := range s.Points {
			x := float64(p.K)
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			if p.Err > maxY {
				maxY = p.Err
			}
		}
	}
	if math.IsInf(minX, 1) || maxY == 0 {
		return title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		for _, p := range s.Points {
			col := int(float64(width-1) * (float64(p.K) - minX) / (maxX - minX))
			row := height - 1 - int(float64(height-1)*p.Err/maxY)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = s.Mark
		}
	}
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	for i, line := range grid {
		yVal := maxY * float64(height-1-i) / float64(height-1)
		fmt.Fprintf(&sb, "%6.2f%% |%s|\n", 100*yVal, string(line))
	}
	fmt.Fprintf(&sb, "        %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(&sb, "        K = %d … %d   ", int(minX), int(maxX))
	for _, s := range series {
		fmt.Fprintf(&sb, "[%c]=%s ", s.Mark, s.Name)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// AsciiHist renders a horizontal-bar histogram of samples with the given
// number of bins — the terminal rendition of a performance distribution.
func AsciiHist(title string, samples []float64, bins, width int) string {
	if len(samples) == 0 {
		return title + "\n(no data)\n"
	}
	if bins < 2 {
		bins = 10
	}
	if width < 10 {
		width = 40
	}
	min, max := samples[0], samples[0]
	for _, v := range samples {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max == min {
		max = min + 1
	}
	counts := make([]int, bins)
	for _, v := range samples {
		b := int(float64(bins) * (v - min) / (max - min))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	for b := 0; b < bins; b++ {
		lo := min + (max-min)*float64(b)/float64(bins)
		bar := ""
		if peak > 0 {
			bar = strings.Repeat("█", counts[b]*width/peak)
		}
		fmt.Fprintf(&sb, "%11.3g |%-*s| %d\n", lo, width, bar, counts[b])
	}
	return sb.String()
}
