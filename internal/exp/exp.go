// Package exp is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section V). It glues the Monte Carlo
// engine, the Hermite bases and the sparse solvers together, measures the
// simulation-vs-fitting cost split the paper's cost tables report, and
// formats results as aligned text tables.
package exp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/stats"
)

// SolverSpec names one of the compared solvers. A nil Fitter denotes the LS
// baseline, which is fit without cross-validation on an over-determined
// dataset.
type SolverSpec struct {
	Name   string
	Fitter core.PathFitter
}

// DefaultSolvers returns the paper's comparison set: LS, STAR, LAR, OMP.
func DefaultSolvers() []SolverSpec {
	return []SolverSpec{
		{Name: "LS"},
		{Name: "STAR", Fitter: &core.STAR{}},
		{Name: "LAR", Fitter: &core.LAR{}},
		{Name: "OMP", Fitter: &core.OMP{}},
	}
}

// SparseSolvers returns only the underdetermined-capable solvers.
func SparseSolvers() []SolverSpec {
	all := DefaultSolvers()
	return all[1:]
}

// FitResult reports one model fit.
type FitResult struct {
	Model *core.Model
	// FitTime is the wall-clock fitting cost (the "fitting cost" rows of
	// Tables I/III/IV).
	FitTime time.Duration
	// Lambda is the cross-validated sparsity (0 for LS).
	Lambda int
}

// NewDesign picks the dense representation when the full matrix is
// affordable and the lazy one otherwise.
func NewDesign(b *basis.Basis, pts [][]float64) basis.Design {
	const denseLimit = 48 << 20 // 48M float64 ≈ 384 MB
	if len(pts)*b.Size() <= denseLimit {
		return basis.NewDenseDesign(b, pts)
	}
	return basis.NewLazyDesign(b, pts)
}

// FitLS runs the least-squares baseline.
func FitLS(b *basis.Basis, pts [][]float64, f []float64) (FitResult, error) {
	return FitLSDesign(NewDesign(b, pts), f)
}

// FitLSDesign is FitLS over a pre-built design (e.g. a memory-bounded
// generated design).
func FitLSDesign(d basis.Design, f []float64) (FitResult, error) {
	start := time.Now()
	model, err := core.LS{}.Fit(d, f, 0)
	if err != nil {
		return FitResult{}, fmt.Errorf("exp: LS fit: %w", err)
	}
	return FitResult{Model: model, FitTime: time.Since(start)}, nil
}

// FitSparse runs a sparse solver with Q-fold cross-validated λ selection
// (Section IV-C).
func FitSparse(fitter core.PathFitter, b *basis.Basis, pts [][]float64, f []float64, folds, maxLambda int) (FitResult, error) {
	return FitSparseDesign(fitter, NewDesign(b, pts), f, folds, maxLambda)
}

// FitSparseDesign is FitSparse over a pre-built design.
func FitSparseDesign(fitter core.PathFitter, d basis.Design, f []float64, folds, maxLambda int) (FitResult, error) {
	start := time.Now()
	if maxLambda > d.Rows()/2 {
		maxLambda = d.Rows() / 2
	}
	if maxLambda < 1 {
		maxLambda = 1
	}
	cv, err := core.CrossValidate(fitter, d, f, folds, maxLambda)
	if err != nil {
		return FitResult{}, fmt.Errorf("exp: %s fit: %w", fitter.Name(), err)
	}
	return FitResult{Model: cv.Model, FitTime: time.Since(start), Lambda: cv.BestLambda}, nil
}

// TestError evaluates a model's relative RMS error on held-out samples —
// the modeling-error metric of all Section V comparisons.
func TestError(model *core.Model, b *basis.Basis, pts [][]float64, f []float64) float64 {
	d := basis.NewLazyDesign(b, pts)
	return stats.RelativeRMSError(model.Predict(d), f)
}

// CostRow is one row of the cost tables (Tables I, III, IV).
type CostRow struct {
	Solver  string
	K       int
	SimCost time.Duration
	FitCost time.Duration
	Err     float64
	Lambda  int
}

// Total returns the end-to-end modeling cost.
func (r CostRow) Total() time.Duration { return r.SimCost + r.FitCost }

// Point is one (K, error) sweep sample of Fig. 4.
type Point struct {
	K   int
	Err float64
}

// Fig6Series returns the model's coefficient magnitudes sorted descending —
// the sparsity profile plotted in Fig. 6 (padded with zeros up to M).
func Fig6Series(model *core.Model) []float64 {
	out := make([]float64, model.M)
	for i, c := range model.Coef {
		if c < 0 {
			c = -c
		}
		out[i] = c
	}
	// Only the first NNZ entries are nonzero; sort those descending and the
	// remaining M−NNZ entries stay at exactly zero.
	sort.Sort(sort.Reverse(sort.Float64Slice(out[:model.NNZ()])))
	return out
}

// Table is an aligned text table for terminal output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// FormatDuration renders a duration with 3 significant digits for tables.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1e3)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// CostTable renders cost rows in the layout of the paper's cost tables.
func CostTable(title string, rows []CostRow) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"", "LS", "STAR", "LAR", "OMP"},
	}
	byName := map[string]CostRow{}
	order := []string{"LS", "STAR", "LAR", "OMP"}
	for _, r := range rows {
		byName[r.Solver] = r
	}
	line := func(label string, f func(CostRow) string) {
		cells := []string{label}
		for _, n := range order {
			if r, ok := byName[n]; ok {
				cells = append(cells, f(r))
			} else {
				cells = append(cells, "-")
			}
		}
		t.AddRow(cells...)
	}
	line("modeling error", func(r CostRow) string { return fmt.Sprintf("%.2f%%", 100*r.Err) })
	line("# training samples", func(r CostRow) string { return fmt.Sprintf("%d", r.K) })
	line("simulation cost", func(r CostRow) string { return FormatDuration(r.SimCost) })
	line("fitting cost", func(r CostRow) string { return FormatDuration(r.FitCost) })
	line("total cost", func(r CostRow) string { return FormatDuration(r.Total()) })
	line("selected bases λ", func(r CostRow) string {
		if r.Lambda == 0 {
			return "all"
		}
		return fmt.Sprintf("%d", r.Lambda)
	})
	return t
}

// CostTableProjected renders the cost rows plus a projected-total line that
// re-prices each sample at the paper's per-sample Spectre cost. Our
// substituted simulator is orders of magnitude cheaper than the authors'
// transistor-level runs, so the *measured* totals understate how strongly
// sample count dominates; the projection recovers the paper's cost
// structure (simulation ≫ fitting) and hence its speedup ratios.
func CostTableProjected(title string, rows []CostRow, paperPerSample time.Duration) *Table {
	t := CostTable(title, rows)
	byName := map[string]CostRow{}
	for _, r := range rows {
		byName[r.Solver] = r
	}
	cells := []string{fmt.Sprintf("projected total @%s/sample", FormatDuration(paperPerSample))}
	for _, n := range []string{"LS", "STAR", "LAR", "OMP"} {
		r, ok := byName[n]
		if !ok {
			cells = append(cells, "-")
			continue
		}
		proj := time.Duration(r.K)*paperPerSample + r.FitCost
		cells = append(cells, FormatDuration(proj))
	}
	t.AddRow(cells...)
	return t
}
