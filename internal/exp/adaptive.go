package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/basis"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/mc"
)

// AdaptiveConfig controls AdaptiveFit, which answers the practical question
// the paper leaves to the designer: *how many simulations are enough?* It
// samples in growing batches and stops when the cross-validation error stops
// improving, so the expensive simulator runs only as often as the target
// accuracy requires.
type AdaptiveConfig struct {
	// Metric is the simulator output column to model.
	Metric int
	// InitialK is the first batch size (default 2·folds, min 32).
	InitialK int
	// MaxK caps the total sample budget.
	MaxK int
	// GrowFactor multiplies the sample count per round (default 2).
	GrowFactor float64
	// RelImprove is the stopping threshold: stop when a round improves the
	// CV error by less than this fraction (default 0.1).
	RelImprove float64
	// TargetErr stops early once the CV error falls below it (0 disables).
	TargetErr float64
	// Folds and MaxLambda configure the inner cross-validation.
	Folds, MaxLambda int
	// Seed drives sampling.
	Seed int64
	// Workers is the simulator worker pool size (0 = GOMAXPROCS).
	Workers int
	Logf    func(string, ...any)
}

// AdaptiveRound records one batch of the adaptive loop.
type AdaptiveRound struct {
	K       int
	CVError float64
	Lambda  int
}

// AdaptiveResult is the outcome of AdaptiveFit.
type AdaptiveResult struct {
	// Model is the final cross-validated model.
	Model *core.Model
	// Rounds documents the error trajectory.
	Rounds []AdaptiveRound
	// K is the total number of simulator calls spent.
	K int
	// Converged reports whether the loop stopped by the improvement/target
	// criterion rather than the MaxK budget.
	Converged bool
	// Responses holds the simulated metric values for virtual sample indices
	// [0, K) of the cfg.Seed stream, so callers can refit other solvers on
	// the same data without re-simulating.
	Responses []float64
	// SimTime and FitTime split the wall-clock cost between the simulator
	// and the regression/cross-validation — the paper's Table III breakdown.
	SimTime, FitTime time.Duration
}

// AdaptiveFit grows the training set geometrically until the
// cross-validation error plateaus (or reaches TargetErr), reusing all
// previously simulated samples at every round.
func AdaptiveFit(sim circuit.Simulator, b *basis.Basis, fitter core.PathFitter, cfg AdaptiveConfig) (*AdaptiveResult, error) {
	return AdaptiveFitCtx(context.Background(), sim, b, fitter, cfg)
}

// AdaptiveFitCtx is AdaptiveFit with cancellation: ctx flows into the
// simulator worker pool (stopping mid-batch) and the cross-validation
// folds, so a canceled pipeline job abandons the loop within one sample
// per worker.
func AdaptiveFitCtx(ctx context.Context, sim circuit.Simulator, b *basis.Basis, fitter core.PathFitter, cfg AdaptiveConfig) (*AdaptiveResult, error) {
	if b.Dim != sim.Dim() {
		return nil, fmt.Errorf("exp: basis dimension %d does not match simulator %d", b.Dim, sim.Dim())
	}
	if cfg.Metric < 0 || cfg.Metric >= len(sim.Metrics()) {
		return nil, fmt.Errorf("exp: metric index %d out of range", cfg.Metric)
	}
	if cfg.Folds < 2 {
		cfg.Folds = 4
	}
	if cfg.MaxLambda < 1 {
		cfg.MaxLambda = 50
	}
	if cfg.InitialK <= 0 {
		cfg.InitialK = 8 * cfg.Folds
		if cfg.InitialK < 32 {
			cfg.InitialK = 32
		}
	}
	if cfg.MaxK < cfg.InitialK {
		return nil, fmt.Errorf("exp: MaxK=%d below InitialK=%d", cfg.MaxK, cfg.InitialK)
	}
	if cfg.GrowFactor <= 1 {
		cfg.GrowFactor = 2
	}
	if cfg.RelImprove <= 0 {
		cfg.RelImprove = 0.1
	}
	logf := cfg.Logf
	if logf == nil {
		logf = discard
	}

	res := &AdaptiveResult{}
	// All rounds share one virtual sample stream, so earlier simulations are
	// reused verbatim when the set grows.
	design := basis.NewGeneratedDesign(b, cfg.MaxK, cfg.Seed)
	var f []float64
	prevErr := 0.0
	k := cfg.InitialK
	for {
		if k > cfg.MaxK {
			k = cfg.MaxK
		}
		// Simulate only the new points.
		vals, simDur, err := mc.SampleVirtualRangeCtx(ctx, sim, len(f), k, cfg.Seed, mc.Options{Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		res.SimTime += simDur
		for _, v := range vals {
			f = append(f, v[cfg.Metric])
		}

		rows := make([]int, k)
		for i := range rows {
			rows[i] = i
		}
		fitStart := time.Now()
		// Rounds after the first warm-start from the previous round's model:
		// Gram-maintaining solvers replay its support sweep-free before
		// extending the path on the grown sample set, so each round pays
		// roughly for the path it adds, not the path it already walked.
		fitCtx := ctx
		if res.Model != nil {
			fitCtx = core.WithWarmStart(ctx, res.Model)
		}
		cv, err := core.CrossValidateCtx(fitCtx, fitter, core.Subset(design, rows), f, cfg.Folds, cfg.MaxLambda)
		res.FitTime += time.Since(fitStart)
		if err != nil {
			return nil, fmt.Errorf("exp: adaptive round at K=%d: %w", k, err)
		}
		e := cv.ErrCurve[cv.BestLambda-1]
		res.Rounds = append(res.Rounds, AdaptiveRound{K: k, CVError: e, Lambda: cv.BestLambda})
		res.Model = cv.Model
		res.K = k
		res.Responses = f
		logf("adaptive K=%-5d cv-error=%.3f%% λ=%d", k, 100*e, cv.BestLambda)

		if cfg.TargetErr > 0 && e <= cfg.TargetErr {
			res.Converged = true
			return res, nil
		}
		if len(res.Rounds) > 1 {
			if prevErr > 0 && (prevErr-e)/prevErr < cfg.RelImprove {
				res.Converged = true
				return res, nil
			}
		}
		prevErr = e
		if k == cfg.MaxK {
			return res, nil // budget exhausted
		}
		k = int(float64(k) * cfg.GrowFactor)
	}
}
