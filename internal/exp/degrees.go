package exp

import (
	"fmt"

	"repro/internal/basis"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/mc"
)

// DegreeSweepConfig parameterizes the model-order ablation: the paper's
// motivation section argues linear models stop sufficing as variation grows
// ("strong nonlinearity") — this experiment quantifies that by fitting
// linear, quadratic and cubic Hermite models of the same metric on the same
// samples and comparing held-out error.
type DegreeSweepConfig struct {
	// Degrees to fit (default 1, 2).
	Degrees []int
	// TopP screens the most important variables before building the
	// higher-degree dictionaries (as in Table II's flow).
	TopP int
	// K and TestN are the training and testing sample counts.
	K, TestN         int
	Folds, MaxLambda int
	Seed             int64
	Logf             func(string, ...any)
}

// DefaultDegreeSweepConfig covers degrees 1–3 over the screened OpAmp.
func DefaultDegreeSweepConfig() DegreeSweepConfig {
	return DegreeSweepConfig{
		Degrees: []int{1, 2, 3},
		TopP:    20, K: 500, TestN: 1500,
		Folds: 4, MaxLambda: 80, Seed: 14,
	}
}

// DegreeResult is one (metric, degree) cell of the sweep.
type DegreeResult struct {
	Metric string
	Degree int
	M      int
	Err    float64
	Lambda int
}

// RunDegreeSweep fits each metric of the analytic OpAmp at every requested
// polynomial degree with cross-validated OMP.
func RunDegreeSweep(cfg DegreeSweepConfig) ([]DegreeResult, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = discard
	}
	if len(cfg.Degrees) == 0 {
		cfg.Degrees = []int{1, 2}
	}
	for _, d := range cfg.Degrees {
		if d < 1 || d > 4 {
			return nil, fmt.Errorf("exp: degree %d outside [1, 4]", d)
		}
	}
	amp, err := circuit.NewOpAmp()
	if err != nil {
		return nil, err
	}
	// Screening pass, as in RunQuad: rank variables with a linear OMP fit.
	linB := basis.Linear(amp.Dim())
	screen, err := mc.Sample(amp, 400, cfg.Seed, mc.Options{})
	if err != nil {
		return nil, err
	}
	importance := make([]float64, amp.Dim())
	for mi := range amp.Metrics() {
		fit, err := FitSparse(&core.OMP{}, linB, screen.Points, screen.MetricColumn(mi), cfg.Folds, 40)
		if err != nil {
			return nil, fmt.Errorf("degree sweep screening: %w", err)
		}
		for i, idx := range fit.Model.Support {
			if idx == 0 {
				continue
			}
			v := fit.Model.Coef[i]
			importance[idx-1] += v * v
		}
	}
	keep := topIndices(importance, cfg.TopP)
	red := &reducedSim{inner: amp, keep: keep}
	logf("degrees: screened to %d variables", len(keep))

	train, err := mc.Sample(red, cfg.K, cfg.Seed+1, mc.Options{})
	if err != nil {
		return nil, err
	}
	test, err := mc.Sample(red, cfg.TestN, cfg.Seed+2, mc.Options{})
	if err != nil {
		return nil, err
	}

	var out []DegreeResult
	for _, deg := range cfg.Degrees {
		b := basis.TotalDegree(len(keep), deg)
		for mi, metric := range amp.Metrics() {
			fit, err := FitSparse(&core.OMP{}, b, train.Points, train.MetricColumn(mi), cfg.Folds, cfg.MaxLambda)
			if err != nil {
				return nil, fmt.Errorf("degree %d metric %s: %w", deg, metric, err)
			}
			e := TestError(fit.Model, b, test.Points, test.MetricColumn(mi))
			out = append(out, DegreeResult{
				Metric: metric, Degree: deg, M: b.Size(), Err: e, Lambda: fit.Lambda,
			})
			logf("degrees %-9s d=%d M=%-6d err=%.3f%% λ=%d", metric, deg, b.Size(), 100*e, fit.Lambda)
		}
	}
	return out, nil
}

// topIndices returns the indices of the p largest weights, sorted ascending.
func topIndices(w []float64, p int) []int {
	if p > len(w) {
		p = len(w)
	}
	idx := make([]int, len(w))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort is fine at these sizes.
	for i := 0; i < p; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if w[idx[j]] > w[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	out := append([]int(nil), idx[:p]...)
	// Ascending for the reduced simulator's factor mapping.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
