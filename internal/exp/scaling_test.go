package exp

import (
	"testing"
)

func TestRunScalingLogTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment")
	}
	cfg := ScalingConfig{
		Ms:     []int{64, 256, 1024},
		P:      5,
		Trials: 10,
		Target: 0.9,
		Seed:   7,
	}
	pts, err := RunScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	// The theoretical claim: K grows like log M, i.e. K/(P·ln M) stays
	// roughly constant. A 16× growth in M must NOT require anywhere near a
	// 16× growth in K.
	growthK := float64(pts[2].MinK) / float64(pts[0].MinK)
	growthM := float64(pts[2].M) / float64(pts[0].M)
	if growthK > growthM/2 {
		t.Errorf("K grew %.1f× for a %.0f× growth in M — not logarithmic", growthK, growthM)
	}
	for _, p := range pts {
		if p.KOverPLogM <= 0 || p.KOverPLogM > 10 {
			t.Errorf("M=%d: K/(P·lnM) = %.2f implausible", p.M, p.KOverPLogM)
		}
		if p.Rate < cfg.Target {
			t.Errorf("M=%d: rate %.2f below target", p.M, p.Rate)
		}
	}
}

func TestRunScalingValidation(t *testing.T) {
	if _, err := RunScaling(ScalingConfig{Ms: []int{10}, P: 0, Trials: 1, Target: 0.9}); err == nil {
		t.Error("P=0 must error")
	}
	if _, err := RunScaling(ScalingConfig{Ms: []int{5}, P: 8, Trials: 1, Target: 0.9}); err == nil {
		t.Error("M ≤ P must error")
	}
}
