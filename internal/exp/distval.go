package exp

import (
	"fmt"

	"repro/internal/basis"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/stats"
)

// DistValidation compares the performance distribution predicted by a
// fitted model against the distribution of fresh simulator samples using the
// two-sample Kolmogorov–Smirnov statistic — the "predict performance
// distributions" use case of the paper's introduction, validated end to end.
type DistValidation struct {
	// KS is the two-sample statistic between model predictions and fresh
	// simulator outputs at the same sampling points… evaluated on disjoint
	// point sets, so it measures distributional agreement.
	KS float64
	// Critical is the 1% critical value for the sample sizes used.
	Critical float64
	// Pass reports KS ≤ Critical.
	Pass bool
}

// ValidateDistribution draws n fresh simulator samples and n independent
// virtual model samples and compares their distributions.
func ValidateDistribution(sim circuit.Simulator, metric int, model *core.Model, b *basis.Basis, n int, seed int64) (*DistValidation, error) {
	if n < 10 {
		return nil, fmt.Errorf("exp: distribution validation needs ≥ 10 samples, got %d", n)
	}
	real, err := mc.Sample(sim, n, seed, mc.Options{})
	if err != nil {
		return nil, err
	}
	virtual, err := mc.Sample(sim, n, seed+1, mc.Options{})
	if err != nil {
		return nil, err
	}
	// Model predictions at independent points (the simulator outputs of the
	// second set are discarded; only its input points are reused).
	d := basis.NewLazyDesign(b, virtual.Points)
	pred := model.Predict(d)
	ks := stats.KSStatistic(real.MetricColumn(metric), pred)
	crit, err := stats.KSCriticalValue(n, n, 0.01)
	if err != nil {
		return nil, err
	}
	return &DistValidation{KS: ks, Critical: crit, Pass: ks <= crit}, nil
}
