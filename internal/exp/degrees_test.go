package exp

import (
	"testing"
)

func TestTopIndices(t *testing.T) {
	w := []float64{0.1, 5, 0.3, 2, 4}
	got := topIndices(w, 3)
	want := []int{1, 3, 4}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topIndices = %v, want %v", got, want)
		}
	}
	if n := len(topIndices(w, 99)); n != 5 {
		t.Errorf("over-long p returned %d", n)
	}
}

func TestRunDegreeSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment")
	}
	cfg := DegreeSweepConfig{
		Degrees: []int{1, 2},
		TopP:    8, K: 200, TestN: 400,
		Folds: 4, MaxLambda: 30, Seed: 15,
	}
	res, err := RunDegreeSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 8 { // 2 degrees × 4 metrics
		t.Fatalf("got %d results, want 8", len(res))
	}
	// Quadratic must not be much worse than linear on any metric, and must
	// improve at least one metric noticeably (the OpAmp's gain/power have
	// genuine curvature).
	byMetric := map[string]map[int]float64{}
	for _, r := range res {
		if byMetric[r.Metric] == nil {
			byMetric[r.Metric] = map[int]float64{}
		}
		byMetric[r.Metric][r.Degree] = r.Err
	}
	improved := false
	for metric, errs := range byMetric {
		if errs[2] > 1.6*errs[1]+0.01 {
			t.Errorf("%s: quadratic error %g much worse than linear %g", metric, errs[2], errs[1])
		}
		if errs[2] < 0.8*errs[1] {
			improved = true
		}
	}
	if !improved {
		t.Error("quadratic never beat linear — nonlinearity not captured")
	}
}

func TestRunDegreeSweepValidation(t *testing.T) {
	if _, err := RunDegreeSweep(DegreeSweepConfig{Degrees: []int{9}}); err == nil {
		t.Error("degree 9 must error")
	}
}
