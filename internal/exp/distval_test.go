package exp

import (
	"testing"

	"repro/internal/basis"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/mc"
)

func TestValidateDistributionOpAmpOffset(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment")
	}
	amp, err := circuit.NewOpAmp()
	if err != nil {
		t.Fatal(err)
	}
	b := basis.Linear(amp.Dim())
	train, err := mc.Sample(amp, 300, 31, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := train.Metric("offset")
	if err != nil {
		t.Fatal(err)
	}
	d := basis.NewLazyDesign(b, train.Points)
	cv, err := core.CrossValidate(&core.OMP{}, d, f, 4, 25)
	if err != nil {
		t.Fatal(err)
	}
	// The fitted model must reproduce the simulator's offset distribution.
	val, err := ValidateDistribution(amp, 3, cv.Model, b, 1500, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !val.Pass {
		t.Errorf("offset distribution mismatch: KS %.4f > critical %.4f", val.KS, val.Critical)
	}
}

func TestValidateDistributionDetectsBadModel(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment")
	}
	amp, err := circuit.NewOpAmp()
	if err != nil {
		t.Fatal(err)
	}
	b := basis.Linear(amp.Dim())
	// A deliberately wrong model: constant zero offset.
	bad := &core.Model{M: b.Size()}
	val, err := ValidateDistribution(amp, 3, bad, b, 800, 33)
	if err != nil {
		t.Fatal(err)
	}
	if val.Pass {
		t.Error("constant model should fail distribution validation")
	}
}

func TestValidateDistributionValidation(t *testing.T) {
	syn, err := circuit.NewSynthetic(1, 5, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := basis.Linear(5)
	if _, err := ValidateDistribution(syn, 0, &core.Model{M: b.Size()}, b, 5, 1); err == nil {
		t.Error("tiny n must error")
	}
}
