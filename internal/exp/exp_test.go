package exp

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/basis"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/mc"
)

func TestFig6Series(t *testing.T) {
	m := &core.Model{M: 10, Support: []int{3, 7, 1}, Coef: []float64{-2, 0.5, 1}}
	s := Fig6Series(m)
	if len(s) != 10 {
		t.Fatalf("series length %d, want M=10", len(s))
	}
	want := []float64{2, 1, 0.5}
	for i, w := range want {
		if s[i] != w {
			t.Errorf("series[%d] = %g, want %g", i, s[i], w)
		}
	}
	for i := 3; i < 10; i++ {
		if s[i] != 0 {
			t.Errorf("series[%d] = %g, want 0", i, s[i])
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	out := tab.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "a") || !strings.Contains(out, "1") {
		t.Errorf("table output malformed:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, rule, row
		t.Errorf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{1500 * time.Millisecond, "1.50s"},
		{2500 * time.Microsecond, "2.50ms"},
		{42 * time.Microsecond, "42µs"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestCostTableLayout(t *testing.T) {
	rows := []CostRow{
		{Solver: "LS", K: 1200, SimCost: time.Second, FitCost: time.Millisecond, Err: 0.05},
		{Solver: "OMP", K: 600, SimCost: time.Second / 2, FitCost: 2 * time.Millisecond, Err: 0.02, Lambda: 40},
	}
	out := CostTable("Table I", rows).String()
	for _, want := range []string{"Table I", "LS", "OMP", "5.00%", "2.00%", "1200", "600", "all", "40", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("cost table missing %q:\n%s", want, out)
		}
	}
}

func TestCostRowTotal(t *testing.T) {
	r := CostRow{SimCost: time.Second, FitCost: time.Millisecond}
	if r.Total() != time.Second+time.Millisecond {
		t.Error("Total mismatch")
	}
}

func TestRunFig4Small(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment")
	}
	cfg := Fig4Config{
		SparseK:   []int{150, 300},
		LSK:       []int{700},
		TestN:     400,
		Folds:     4,
		MaxLambda: 25,
		Seed:      11,
	}
	res, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) != 4 {
		t.Fatalf("metrics: %v", res.Metrics)
	}
	for _, metric := range res.Metrics {
		curves := res.Curves[metric]
		for _, solver := range []string{"STAR", "LAR", "OMP"} {
			pts := curves[solver]
			if len(pts) != 2 {
				t.Fatalf("%s/%s has %d points, want 2", metric, solver, len(pts))
			}
			for _, p := range pts {
				if math.IsNaN(p.Err) || p.Err < 0 {
					t.Errorf("%s/%s K=%d error %g invalid", metric, solver, p.K, p.Err)
				}
			}
		}
		if len(curves["LS"]) != 1 {
			t.Fatalf("%s/LS has %d points, want 1", metric, len(curves["LS"]))
		}
		// The paper's core claim at this sample budget: sparse solvers with
		// K=300 ≪ M=631 must beat or match nothing-else; OMP must be more
		// accurate than STAR on at least most metrics — checked in
		// aggregate below.
	}
	// Aggregate shape check: mean OMP error (K=300) ≤ mean STAR error.
	var omp, star float64
	for _, metric := range res.Metrics {
		omp += res.Curves[metric]["OMP"][1].Err
		star += res.Curves[metric]["STAR"][1].Err
	}
	if omp > star {
		t.Errorf("mean OMP error %g exceeds STAR %g at K=300", omp/4, star/4)
	}
	// Error decreases with K for OMP on average.
	var k1, k2 float64
	for _, metric := range res.Metrics {
		k1 += res.Curves[metric]["OMP"][0].Err
		k2 += res.Curves[metric]["OMP"][1].Err
	}
	if k2 > k1 {
		t.Errorf("OMP error did not improve with more samples: %g → %g", k1/4, k2/4)
	}
}

func TestRunTable4Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment")
	}
	cfg := Table4Config{
		Circuit: circuit.SRAMConfig{Rows: 4, Cols: 3},
		LSK:     110, SparseK: 60,
		TestN: 60, Folds: 4, MaxLambda: 20,
		Seed: 12,
	}
	res, err := RunTable4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dim != cfg.Circuit.Dim() || res.M != res.Dim+1 {
		t.Fatalf("dims %d/%d", res.Dim, res.M)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	if res.OMPModel == nil {
		t.Fatal("missing OMP model for Fig. 6")
	}
	// The sparse structure of Fig. 6: far fewer selected bases than M.
	if res.OMPModel.NNZ() >= res.M/4 {
		t.Errorf("OMP selected %d of %d bases — not sparse", res.OMPModel.NNZ(), res.M)
	}
	for _, r := range res.Rows {
		if math.IsNaN(r.Err) || r.Err <= 0 || r.Err > 1.5 {
			t.Errorf("%s error %g implausible", r.Solver, r.Err)
		}
	}
}

func TestRunQuadTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment")
	}
	cfg := QuadConfig{
		TopP: 12, ScreenK: 250, LSK: 250, SparseK: 150,
		TestN: 400, Folds: 4, MaxLambda: 40, Seed: 13,
	}
	res, err := RunQuad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantM := 1 + 12 + 12*13/2
	if res.M != wantM {
		t.Fatalf("M = %d, want %d", res.M, wantM)
	}
	// LS requires K ≥ M = 91: 250 suffices, so all four rows present.
	if len(res.Rows) != 4 {
		t.Fatalf("got %d cost rows, want 4", len(res.Rows))
	}
	for metric, bySolver := range res.Err {
		for solver, e := range bySolver {
			if math.IsNaN(e) || e < 0 {
				t.Errorf("%s/%s error %g", metric, solver, e)
			}
		}
	}
	for _, metric := range []string{"gain", "bandwidth", "power", "offset"} {
		if res.SelectedBases[metric] < 1 {
			t.Errorf("OMP selected no bases for %s", metric)
		}
	}
}

func TestRunTable4Virtual(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment")
	}
	cfg := Table4Config{
		Circuit: circuit.SRAMConfig{Rows: 4, Cols: 3},
		LSK:     110, SparseK: 60,
		TestN: 60, Folds: 4, MaxLambda: 20,
		Seed:    12,
		Virtual: true,
	}
	res, err := RunTable4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// LS is skipped in virtual mode; the three sparse solvers remain.
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3 (no LS)", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Solver == "LS" {
			t.Error("LS must be skipped in virtual mode")
		}
		if r.Err <= 0 || r.Err > 1.5 {
			t.Errorf("%s error %g implausible", r.Solver, r.Err)
		}
	}
	if res.OMPModel == nil || res.OMPModel.NNZ() == 0 {
		t.Fatal("missing OMP model")
	}
}

func TestCostTableProjected(t *testing.T) {
	rows := []CostRow{
		{Solver: "LS", K: 1200, SimCost: time.Millisecond, FitCost: time.Second, Err: 0.05},
		{Solver: "OMP", K: 600, SimCost: time.Millisecond, FitCost: time.Second / 2, Err: 0.03, Lambda: 20},
	}
	out := CostTableProjected("T", rows, 10*time.Second).String()
	// Projected LS total: 1200×10s + 1s = 12001s; OMP: 600×10s + 0.5s.
	if !strings.Contains(out, "projected total") {
		t.Fatalf("missing projected row:\n%s", out)
	}
	if !strings.Contains(out, "12001.00s") || !strings.Contains(out, "6000.50s") {
		t.Errorf("projected totals wrong:\n%s", out)
	}
}

// TestRingOscillatorDenseNegativeControl demonstrates where the paper's
// sparsity assumption weakens: the RO period depends on every stage, so
// cross-validated OMP selects a large fraction of the dictionary (unlike the
// SRAM delay, where λ ≪ M).
func TestRingOscillatorDenseNegativeControl(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment")
	}
	ro, err := circuit.NewRingOscillator(5)
	if err != nil {
		t.Fatal(err)
	}
	b := basis.Linear(ro.Dim()) // M = 25
	train, err := mc.Sample(ro, 150, 21, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := train.Metric("period")
	if err != nil {
		t.Fatal(err)
	}
	d := basis.NewDenseDesign(b, train.Points)
	cv, err := core.CrossValidate(&core.OMP{}, d, f, 4, b.Size())
	if err != nil {
		t.Fatal(err)
	}
	// Every stage transistor influences the period: CV should keep at least
	// a third of the dictionary (the SRAM counterpart keeps ≪ 25%).
	if cv.BestLambda < b.Size()/3 {
		t.Errorf("RO model λ=%d of M=%d — expected a dense selection", cv.BestLambda, b.Size())
	}
	// And the model should still predict well.
	test, err := mc.Sample(ro, 100, 22, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fTest, _ := test.Metric("period")
	e := TestError(cv.Model, b, test.Points, fTest)
	if e > 0.1 {
		t.Errorf("RO model error %g too large", e)
	}
}
