package exp

import (
	"fmt"
	"time"

	"repro/internal/basis"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/mc"
	"repro/internal/stats"
)

// Table4Config parameterizes the SRAM read-path experiment (Table IV and
// Fig. 6): linear modeling of the read delay over the full variation space.
type Table4Config struct {
	// Circuit sizes the cell array (use circuit.PaperSRAMConfig for the
	// 21310-variable paper scale).
	Circuit circuit.SRAMConfig
	// LSK and SparseK are the training sizes; LS needs K ≥ Dim+1.
	LSK, SparseK     int
	TestN            int
	Folds, MaxLambda int
	Seed             int64
	// Virtual regenerates sampling points from the seed instead of storing
	// them (mc.SampleVirtual + basis.NewGeneratedDesign): memory stays
	// O(K + M) so the paper-scale configuration (25 000 × 21 310 points ≈
	// 4 GB stored) fits in ordinary RAM. LS is skipped in this mode — the
	// dense factorization it needs is exactly what the mode avoids.
	Virtual bool
	Logf    func(string, ...any)
}

// DefaultTable4Config is the scaled default (1058 variables) documented in
// EXPERIMENTS.md.
func DefaultTable4Config() Table4Config {
	return Table4Config{
		Circuit: circuit.DefaultSRAMConfig(),
		LSK:     1200, SparseK: 300,
		TestN: 300, Folds: 4, MaxLambda: 60,
		Seed: 4,
	}
}

// Table4Result holds the Table IV rows and the OMP model whose coefficient
// profile is Fig. 6.
type Table4Result struct {
	// Dim is the variation-space dimensionality (21310 at paper scale).
	Dim int
	// M is the linear dictionary size (Dim+1; 21311 in the paper).
	M    int
	Rows []CostRow
	// OMPModel is the cross-validated OMP delay model.
	OMPModel *core.Model
}

// RunTable4 regenerates Table IV (and the model behind Fig. 6).
func RunTable4(cfg Table4Config) (*Table4Result, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = discard
	}
	sram, err := circuit.NewSRAM(cfg.Circuit)
	if err != nil {
		return nil, err
	}
	b := basis.Linear(sram.Dim())
	logf("table4: SRAM %dx%d cells, %d variables, M=%d", cfg.Circuit.Rows, cfg.Circuit.Cols, sram.Dim(), b.Size())

	maxK := cfg.LSK
	if cfg.SparseK > maxK {
		maxK = cfg.SparseK
	}
	if cfg.Virtual && cfg.SparseK > cfg.LSK {
		maxK = cfg.SparseK
	}
	var (
		trainDesign basis.Design
		testDesign  basis.Design
		fAll        []float64
		fTestAll    []float64
		perSample   time.Duration
	)
	if cfg.Virtual {
		maxK = cfg.SparseK // LS is skipped in virtual mode
		logf("table4: simulating %d training + %d testing points (virtual, memory-bounded)", maxK, cfg.TestN)
		vals, simTime, err := mc.SampleVirtual(sram, maxK, cfg.Seed, mc.Options{})
		if err != nil {
			return nil, err
		}
		logf("table4: training simulation took %s", FormatDuration(simTime))
		fAll = make([]float64, maxK)
		for k, v := range vals {
			fAll[k] = v[0]
		}
		testVals, _, err := mc.SampleVirtual(sram, cfg.TestN, cfg.Seed+1, mc.Options{})
		if err != nil {
			return nil, err
		}
		fTestAll = make([]float64, cfg.TestN)
		for k, v := range testVals {
			fTestAll[k] = v[0]
		}
		trainDesign = basis.NewGeneratedDesign(b, maxK, cfg.Seed)
		testDesign = basis.NewGeneratedDesign(b, cfg.TestN, cfg.Seed+1)
		perSample = simTime / time.Duration(maxK)
	} else {
		logf("table4: simulating %d training + %d testing points (transistor-level)", maxK, cfg.TestN)
		train, err := mc.Sample(sram, maxK, cfg.Seed, mc.Options{})
		if err != nil {
			return nil, err
		}
		logf("table4: training simulation took %s", FormatDuration(train.SimTime))
		test, err := mc.Sample(sram, cfg.TestN, cfg.Seed+1, mc.Options{})
		if err != nil {
			return nil, err
		}
		perSample = train.SimTime / time.Duration(train.Len())
		fAll = train.MetricColumn(0)
		fTestAll = test.MetricColumn(0)
		trainDesign = NewDesign(b, train.Points)
		testDesign = basis.NewLazyDesign(b, test.Points)
	}

	res := &Table4Result{Dim: sram.Dim(), M: b.Size()}
	for _, spec := range DefaultSolvers() {
		k := cfg.SparseK
		if spec.Fitter == nil {
			k = cfg.LSK
			if cfg.Virtual {
				logf("table4: skipping LS in virtual mode")
				continue
			}
			if k < b.Size() {
				logf("table4: skipping LS (K=%d < M=%d)", k, b.Size())
				continue
			}
		}
		rows := make([]int, k)
		for i := range rows {
			rows[i] = i
		}
		sub := core.Subset(trainDesign, rows)
		var fit FitResult
		var err error
		if spec.Fitter == nil {
			fit, err = FitLSDesign(sub, fAll[:k])
		} else {
			fit, err = FitSparseDesign(spec.Fitter, sub, fAll[:k], cfg.Folds, cfg.MaxLambda)
		}
		if err != nil {
			return nil, fmt.Errorf("table4 %s: %w", spec.Name, err)
		}
		e := stats.RelativeRMSError(fit.Model.Predict(testDesign), fTestAll)
		res.Rows = append(res.Rows, CostRow{
			Solver:  spec.Name,
			K:       k,
			SimCost: perSample * time.Duration(k),
			FitCost: fit.FitTime,
			Err:     e,
			Lambda:  fit.Lambda,
		})
		if spec.Name == "OMP" {
			res.OMPModel = fit.Model
		}
		logf("table4 %-4s K=%-5d err=%.2f%% fit=%s λ=%d", spec.Name, k, 100*e, FormatDuration(fit.FitTime), fit.Lambda)
	}
	return res, nil
}
