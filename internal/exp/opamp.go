package exp

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/basis"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/mc"
)

// discard is the default progress sink.
func discard(string, ...any) {}

// Fig4Config parameterizes the Fig. 4 sweep: linear OpAmp modeling error vs
// number of training samples for all four solvers and four metrics.
type Fig4Config struct {
	// SparseK are the training sizes for STAR/LAR/OMP (underdetermined).
	SparseK []int
	// LSK are the training sizes for the LS baseline (need K ≥ M = 631).
	LSK []int
	// TestN is the held-out validation sample count.
	TestN int
	// Folds and MaxLambda control cross-validation.
	Folds, MaxLambda int
	// Seed makes the experiment reproducible.
	Seed int64
	// Logf receives progress lines (nil to silence).
	Logf func(string, ...any)
}

// DefaultFig4Config mirrors the paper's sweep at tractable size.
func DefaultFig4Config() Fig4Config {
	return Fig4Config{
		SparseK:   []int{100, 200, 300, 400, 500, 600},
		LSK:       []int{700, 900, 1200},
		TestN:     2000,
		Folds:     4,
		MaxLambda: 60,
		Seed:      1,
	}
}

// Fig4Result holds the sweep curves: Curves[metric][solver] are (K, error)
// points.
type Fig4Result struct {
	Metrics []string
	Curves  map[string]map[string][]Point
}

// RunFig4 regenerates Fig. 4(a)–(d).
func RunFig4(cfg Fig4Config) (*Fig4Result, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = discard
	}
	amp, err := circuit.NewOpAmp()
	if err != nil {
		return nil, err
	}
	b := basis.Linear(amp.Dim())
	maxK := 0
	for _, k := range append(append([]int{}, cfg.SparseK...), cfg.LSK...) {
		if k > maxK {
			maxK = k
		}
	}
	logf("fig4: sampling %d training + %d testing points", maxK, cfg.TestN)
	train, err := mc.Sample(amp, maxK, cfg.Seed, mc.Options{})
	if err != nil {
		return nil, err
	}
	test, err := mc.Sample(amp, cfg.TestN, cfg.Seed+1, mc.Options{})
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{Metrics: amp.Metrics(), Curves: map[string]map[string][]Point{}}
	for _, m := range res.Metrics {
		res.Curves[m] = map[string][]Point{}
	}
	for mi, metric := range amp.Metrics() {
		fAll := train.MetricColumn(mi)
		fTest := test.MetricColumn(mi)
		for _, spec := range DefaultSolvers() {
			ks := cfg.SparseK
			if spec.Fitter == nil {
				ks = cfg.LSK
			}
			for _, k := range ks {
				pts := train.Points[:k]
				f := fAll[:k]
				var fit FitResult
				var err error
				if spec.Fitter == nil {
					fit, err = FitLS(b, pts, f)
				} else {
					fit, err = FitSparse(spec.Fitter, b, pts, f, cfg.Folds, cfg.MaxLambda)
				}
				if err != nil {
					return nil, fmt.Errorf("fig4 %s/%s K=%d: %w", metric, spec.Name, k, err)
				}
				e := TestError(fit.Model, b, test.Points, fTest)
				res.Curves[metric][spec.Name] = append(res.Curves[metric][spec.Name], Point{K: k, Err: e})
				logf("fig4 %-9s %-4s K=%-5d err=%.3f%% λ=%d", metric, spec.Name, k, 100*e, fit.Lambda)
			}
		}
	}
	return res, nil
}

// Table1Config parameterizes the linear OpAmp cost comparison (Table I).
type Table1Config struct {
	LSK, SparseK     int
	TestN            int
	Folds, MaxLambda int
	Seed             int64
	Logf             func(string, ...any)
}

// DefaultTable1Config mirrors Table I: LS at 1200 samples, sparse at 600.
func DefaultTable1Config() Table1Config {
	return Table1Config{LSK: 1200, SparseK: 600, TestN: 2000, Folds: 4, MaxLambda: 60, Seed: 2}
}

// Table1Result holds per-solver cost rows; errors are averaged over the four
// metrics.
type Table1Result struct {
	Rows []CostRow
}

// RunTable1 regenerates Table I.
func RunTable1(cfg Table1Config) (*Table1Result, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = discard
	}
	amp, err := circuit.NewOpAmp()
	if err != nil {
		return nil, err
	}
	b := basis.Linear(amp.Dim())
	logf("table1: sampling %d training + %d testing points", cfg.LSK, cfg.TestN)
	train, err := mc.Sample(amp, cfg.LSK, cfg.Seed, mc.Options{})
	if err != nil {
		return nil, err
	}
	test, err := mc.Sample(amp, cfg.TestN, cfg.Seed+1, mc.Options{})
	if err != nil {
		return nil, err
	}
	perSample := train.SimTime / time.Duration(train.Len())

	var rows []CostRow
	for _, spec := range DefaultSolvers() {
		k := cfg.SparseK
		if spec.Fitter == nil {
			k = cfg.LSK
		}
		var fitTotal time.Duration
		var errSum float64
		lambda := 0
		for mi := range amp.Metrics() {
			f := train.MetricColumn(mi)[:k]
			var fit FitResult
			var err error
			if spec.Fitter == nil {
				fit, err = FitLS(b, train.Points[:k], f)
			} else {
				fit, err = FitSparse(spec.Fitter, b, train.Points[:k], f, cfg.Folds, cfg.MaxLambda)
			}
			if err != nil {
				return nil, fmt.Errorf("table1 %s metric %d: %w", spec.Name, mi, err)
			}
			fitTotal += fit.FitTime
			errSum += TestError(fit.Model, b, test.Points, test.MetricColumn(mi))
			if fit.Lambda > lambda {
				lambda = fit.Lambda
			}
		}
		row := CostRow{
			Solver:  spec.Name,
			K:       k,
			SimCost: perSample * time.Duration(k),
			FitCost: fitTotal,
			Err:     errSum / float64(len(amp.Metrics())),
			Lambda:  lambda,
		}
		rows = append(rows, row)
		logf("table1 %-4s K=%-5d sim=%s fit=%s err=%.2f%%", row.Solver, row.K,
			FormatDuration(row.SimCost), FormatDuration(row.FitCost), 100*row.Err)
	}
	return &Table1Result{Rows: rows}, nil
}

// QuadConfig parameterizes the quadratic OpAmp experiment (Tables II+III):
// screen the most important parameters with a linear fit, build a quadratic
// basis over them, and compare all four solvers.
type QuadConfig struct {
	// TopP is the number of screened parameters (paper: 200 → M = 20301;
	// scaled default: 50 → M = 1326).
	TopP int
	// ScreenK is the sample count for the screening linear fit.
	ScreenK int
	// LSK and SparseK are the quadratic training sizes.
	LSK, SparseK     int
	TestN            int
	Folds, MaxLambda int
	Seed             int64
	Logf             func(string, ...any)
}

// DefaultQuadConfig is the scaled default documented in EXPERIMENTS.md.
func DefaultQuadConfig() QuadConfig {
	return QuadConfig{
		TopP: 50, ScreenK: 600, LSK: 1600, SparseK: 400,
		TestN: 2000, Folds: 4, MaxLambda: 120, Seed: 3,
	}
}

// PaperQuadConfig uses the paper's sizes (hours of CPU).
func PaperQuadConfig() QuadConfig {
	return QuadConfig{
		TopP: 200, ScreenK: 600, LSK: 25000, SparseK: 1000,
		TestN: 5000, Folds: 4, MaxLambda: 150, Seed: 3,
	}
}

// QuadResult holds Tables II and III: per-metric errors and per-solver costs.
type QuadResult struct {
	// M is the quadratic dictionary size.
	M int
	// Err[metric][solver] is the relative RMS modeling error (Table II).
	Err map[string]map[string]float64
	// Rows are the aggregate cost rows (Table III); fitting cost sums the
	// four metrics, matching the paper's accounting.
	Rows []CostRow
	// SelectedBases[metric] is OMP's cross-validated λ, reported in the
	// paper's text ("88 basis functions for gain, …").
	SelectedBases map[string]int
}

// RunQuad regenerates Tables II and III.
func RunQuad(cfg QuadConfig) (*QuadResult, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = discard
	}
	amp, err := circuit.NewOpAmp()
	if err != nil {
		return nil, err
	}
	linB := basis.Linear(amp.Dim())

	// Screening pass: rank parameters by |linear coefficient| summed over
	// metrics (Section V-A2 ranks by linear model coefficient magnitude).
	logf("quad: screening with %d samples", cfg.ScreenK)
	screen, err := mc.Sample(amp, cfg.ScreenK, cfg.Seed, mc.Options{})
	if err != nil {
		return nil, err
	}
	importance := make([]float64, amp.Dim())
	for mi := range amp.Metrics() {
		f := screen.MetricColumn(mi)
		fit, err := FitSparse(&core.OMP{}, linB, screen.Points, f, cfg.Folds, cfg.MaxLambda)
		if err != nil {
			return nil, fmt.Errorf("quad screening metric %d: %w", mi, err)
		}
		norm := 0.0
		for _, c := range fit.Model.Coef {
			norm += c * c
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			norm = 1
		}
		for i, idx := range fit.Model.Support {
			if idx == 0 {
				continue // constant term has no variable
			}
			v := math.Abs(fit.Model.Coef[i]) / norm
			importance[idx-1] += v // linear term m maps to variable m-1
		}
	}
	type ranked struct {
		v int
		w float64
	}
	rank := make([]ranked, amp.Dim())
	for i := range rank {
		rank[i] = ranked{v: i, w: importance[i]}
	}
	sort.Slice(rank, func(a, b int) bool { return rank[a].w > rank[b].w })
	if cfg.TopP > len(rank) {
		cfg.TopP = len(rank)
	}
	keep := make([]int, cfg.TopP)
	for i := range keep {
		keep[i] = rank[i].v
	}
	sort.Ints(keep)
	logf("quad: kept top %d parameters", len(keep))

	// Reduced simulator view: evaluate the full OpAmp but expose only the
	// screened factors as model inputs; unscreened factors are fixed at 0
	// (their influence is what the quadratic model deliberately ignores).
	red := &reducedSim{inner: amp, keep: keep}
	quadB := basis.Quadratic(len(keep))

	maxTrain := cfg.LSK
	if cfg.SparseK > maxTrain {
		maxTrain = cfg.SparseK
	}
	logf("quad: sampling %d training + %d testing points (M=%d)", maxTrain, cfg.TestN, quadB.Size())
	train, err := mc.Sample(red, maxTrain, cfg.Seed+1, mc.Options{})
	if err != nil {
		return nil, err
	}
	test, err := mc.Sample(red, cfg.TestN, cfg.Seed+2, mc.Options{})
	if err != nil {
		return nil, err
	}
	perSample := train.SimTime / time.Duration(train.Len())

	res := &QuadResult{
		M:             quadB.Size(),
		Err:           map[string]map[string]float64{},
		SelectedBases: map[string]int{},
	}
	for _, m := range amp.Metrics() {
		res.Err[m] = map[string]float64{}
	}
	for _, spec := range DefaultSolvers() {
		k := cfg.SparseK
		if spec.Fitter == nil {
			k = cfg.LSK
			if k < quadB.Size() {
				logf("quad: skipping LS (K=%d < M=%d)", k, quadB.Size())
				continue
			}
		}
		var fitTotal time.Duration
		var errSum float64
		lambda := 0
		for mi, metric := range amp.Metrics() {
			f := train.MetricColumn(mi)[:k]
			var fit FitResult
			var err error
			if spec.Fitter == nil {
				fit, err = FitLS(quadB, train.Points[:k], f)
			} else {
				fit, err = FitSparse(spec.Fitter, quadB, train.Points[:k], f, cfg.Folds, cfg.MaxLambda)
			}
			if err != nil {
				return nil, fmt.Errorf("quad %s/%s: %w", spec.Name, metric, err)
			}
			e := TestError(fit.Model, quadB, test.Points, test.MetricColumn(mi))
			res.Err[metric][spec.Name] = e
			fitTotal += fit.FitTime
			errSum += e
			if fit.Lambda > lambda {
				lambda = fit.Lambda
			}
			if spec.Name == "OMP" {
				res.SelectedBases[metric] = fit.Lambda
			}
			logf("quad %-9s %-4s err=%.3f%% λ=%d", metric, spec.Name, 100*e, fit.Lambda)
		}
		res.Rows = append(res.Rows, CostRow{
			Solver:  spec.Name,
			K:       k,
			SimCost: perSample * time.Duration(k),
			FitCost: fitTotal,
			Err:     errSum / float64(len(amp.Metrics())),
			Lambda:  lambda,
		})
	}
	return res, nil
}

// reducedSim exposes a factor subset of an inner simulator.
type reducedSim struct {
	inner circuit.Simulator
	keep  []int
}

// Dim implements circuit.Simulator.
func (r *reducedSim) Dim() int { return len(r.keep) }

// Metrics implements circuit.Simulator.
func (r *reducedSim) Metrics() []string { return r.inner.Metrics() }

// Evaluate implements circuit.Simulator by scattering the reduced factors
// into the full factor vector.
func (r *reducedSim) Evaluate(dy []float64) ([]float64, error) {
	full := make([]float64, r.inner.Dim())
	for i, idx := range r.keep {
		full[idx] = dy[i]
	}
	return r.inner.Evaluate(full)
}
