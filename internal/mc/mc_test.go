package mc

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/rng"
)

func synthSim(t *testing.T) *circuit.Synthetic {
	t.Helper()
	s, err := circuit.NewSynthetic(3, 12, 1, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSampleDeterministicPoints(t *testing.T) {
	sim := synthSim(t)
	a, err := Sample(sim, 20, 42, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sample(sim, 20, 42, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Points {
		for i := range a.Points[k] {
			if a.Points[k][i] != b.Points[k][i] {
				t.Fatalf("points differ at sample %d", k)
			}
		}
	}
}

func TestSampleParallelMatchesSerial(t *testing.T) {
	// Noiseless simulator: values must be identical regardless of workers.
	sim := synthSim(t)
	a, err := Sample(sim, 30, 7, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sample(sim, 30, 7, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Values {
		if a.Values[k][0] != b.Values[k][0] {
			t.Fatalf("values differ at sample %d: %g vs %g", k, a.Values[k][0], b.Values[k][0])
		}
	}
}

func TestSampleRecordsMetricsAndTime(t *testing.T) {
	sim := synthSim(t)
	d, err := Sample(sim, 5, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 5 {
		t.Fatalf("Len = %d", d.Len())
	}
	if len(d.Metrics) != 1 || d.Metrics[0] != "f" {
		t.Errorf("Metrics = %v", d.Metrics)
	}
	if d.SimTime <= 0 {
		t.Error("SimTime not recorded")
	}
}

func TestMetricLookup(t *testing.T) {
	sim := synthSim(t)
	d, err := Sample(sim, 8, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	col, err := d.Metric("f")
	if err != nil {
		t.Fatal(err)
	}
	byIdx := d.MetricColumn(0)
	for k := range col {
		if col[k] != byIdx[k] || col[k] != d.Values[k][0] {
			t.Fatalf("metric extraction mismatch at %d", k)
		}
	}
	if _, err := d.Metric("nope"); err == nil {
		t.Error("unknown metric must error")
	}
}

func TestSplit(t *testing.T) {
	sim := synthSim(t)
	d, err := Sample(sim, 10, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := d.Split(7)
	if a.Len() != 7 || b.Len() != 3 {
		t.Fatalf("split sizes %d/%d", a.Len(), b.Len())
	}
	if &a.Points[0][0] != &d.Points[0][0] {
		t.Error("Split should not copy data")
	}
}

func TestSplitPanics(t *testing.T) {
	d := &Dataset{}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Split(1)
}

func TestSampleValidation(t *testing.T) {
	sim := synthSim(t)
	if _, err := Sample(sim, 0, 1, Options{}); err == nil {
		t.Error("n=0 must error")
	}
}

func TestLatinHypercubeOption(t *testing.T) {
	sim := synthSim(t)
	d, err := Sample(sim, 16, 4, Options{LatinHypercube: true})
	if err != nil {
		t.Fatal(err)
	}
	// Stratification: first dimension values, mapped through Φ, must occupy
	// distinct 1/16 bins.
	bins := make(map[int]bool)
	for _, p := range d.Points {
		u := 0.5 * math.Erfc(-p[0]/math.Sqrt2)
		bins[int(u*16)] = true
	}
	if len(bins) != 16 {
		t.Errorf("LHS produced %d distinct bins, want 16", len(bins))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	sim := synthSim(t)
	d, err := Sample(sim, 6, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip length %d, want %d", back.Len(), d.Len())
	}
	for k := range d.Points {
		for i := range d.Points[k] {
			if back.Points[k][i] != d.Points[k][i] {
				t.Fatalf("point (%d,%d) changed in round trip", k, i)
			}
		}
		if back.Values[k][0] != d.Values[k][0] {
			t.Fatalf("value %d changed in round trip", k)
		}
	}
	if back.Metrics[0] != "f" {
		t.Errorf("metrics lost: %v", back.Metrics)
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("y0,f\n1.0\n")); err == nil {
		t.Error("short row must error")
	}
	if _, err := ReadCSV(strings.NewReader("y0,f\nx,1\n")); err == nil {
		t.Error("non-numeric field must error")
	}
}

func TestSampleVirtualMatchesGeneratedDesign(t *testing.T) {
	// The virtual sampler and the generated design must see identical
	// points: fitting on (GeneratedDesign, SampleVirtual responses) must
	// recover the synthetic truth exactly.
	sim, err := circuit.NewSynthetic(50, 15, 1, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n, seed = 60, 123
	values, simTime, err := SampleVirtual(sim, n, seed, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if simTime <= 0 {
		t.Error("sim time not recorded")
	}
	f := make([]float64, n)
	for k, v := range values {
		f[k] = v[0]
	}
	// Re-evaluate at regenerated points to prove point identity.
	pt := make([]float64, 15)
	for k := 0; k < n; k++ {
		rng.RowPoint(pt, seed, k, 15)
		want, err := sim.Evaluate(pt)
		if err != nil {
			t.Fatal(err)
		}
		if want[0] != f[k] {
			t.Fatalf("sample %d: regenerated point gives %g, stored %g", k, want[0], f[k])
		}
	}
}

func TestSampleVirtualValidation(t *testing.T) {
	sim := synthSim(t)
	if _, _, err := SampleVirtual(sim, 0, 1, Options{}); err == nil {
		t.Error("n=0 must error")
	}
}

func TestSampleErrorPropagation(t *testing.T) {
	// A simulator that fails mid-batch must surface the error from Sample.
	sim := failingSim{failAt: 3}
	if _, err := Sample(sim, 10, 1, Options{Workers: 2}); err == nil {
		t.Error("expected error from failing simulator")
	}
	if _, _, err := SampleVirtual(sim, 10, 1, Options{Workers: 2}); err == nil {
		t.Error("expected error from failing simulator (virtual)")
	}
}

// failingSim errors on every evaluation.
type failingSim struct{ failAt int }

func (f failingSim) Dim() int          { return 2 }
func (f failingSim) Metrics() []string { return []string{"x"} }
func (f failingSim) Evaluate(dy []float64) ([]float64, error) {
	return nil, errSim
}

var errSim = errors.New("boom")

func TestHaltonOption(t *testing.T) {
	sim := synthSim(t)
	d, err := Sample(sim, 32, 6, Options{Halton: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 32 {
		t.Fatalf("Len = %d", d.Len())
	}
	if _, err := Sample(sim, 8, 6, Options{Halton: true, LatinHypercube: true}); err == nil {
		t.Error("mutually exclusive options must error")
	}
}
