// Package mc is the Monte Carlo sampling engine: it draws factor vectors
// from the standard normal distribution (the pdf(ΔY) of the paper's eq. 12),
// evaluates a circuit simulator at each point — in parallel, since the
// simulator dominates total cost — and packages the results as training and
// testing datasets for the regression solvers.
package mc

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/rng"
)

// Dataset is a set of sampling points with simulated responses.
type Dataset struct {
	// Points[k] is the factor vector ΔY of sample k.
	Points [][]float64
	// Values[k][j] is metric j at sample k.
	Values [][]float64
	// Metrics names the response columns.
	Metrics []string
	// SimTime is the wall-clock time spent inside the simulator.
	SimTime time.Duration
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Points) }

// Metric extracts the response column with the given name.
func (d *Dataset) Metric(name string) ([]float64, error) {
	for j, m := range d.Metrics {
		if m == name {
			out := make([]float64, d.Len())
			for k, row := range d.Values {
				out[k] = row[j]
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("mc: dataset has no metric %q (have %v)", name, d.Metrics)
}

// MetricColumn extracts response column j.
func (d *Dataset) MetricColumn(j int) []float64 {
	out := make([]float64, d.Len())
	for k, row := range d.Values {
		out[k] = row[j]
	}
	return out
}

// Split partitions the dataset into the first n samples and the rest.
func (d *Dataset) Split(n int) (*Dataset, *Dataset) {
	if n < 0 || n > d.Len() {
		panic(fmt.Sprintf("mc: Split(%d) of %d samples", n, d.Len()))
	}
	a := &Dataset{Points: d.Points[:n], Values: d.Values[:n], Metrics: d.Metrics}
	b := &Dataset{Points: d.Points[n:], Values: d.Values[n:], Metrics: d.Metrics}
	return a, b
}

// Options configures sampling.
type Options struct {
	// Workers is the parallel simulator worker count (0 = GOMAXPROCS).
	Workers int
	// LatinHypercube stratifies the marginals instead of plain iid draws.
	LatinHypercube bool
	// Halton draws a randomized quasi-Monte Carlo design instead of iid
	// points (mutually exclusive with LatinHypercube).
	Halton bool
}

// Sample draws n points and evaluates sim at each. The draw is deterministic
// in seed; evaluation order does not affect the result.
func Sample(sim circuit.Simulator, n int, seed int64, opt Options) (*Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mc: sample count %d must be positive", n)
	}
	src := rng.New(seed)
	dim := sim.Dim()
	points := make([][]float64, n)
	switch {
	case opt.LatinHypercube && opt.Halton:
		return nil, fmt.Errorf("mc: LatinHypercube and Halton are mutually exclusive")
	case opt.LatinHypercube:
		points = rng.LatinHypercube(src, n, dim)
	case opt.Halton:
		points = rng.Halton(src, n, dim)
	default:
		for i := range points {
			points[i] = src.NormVec(nil, dim)
		}
	}
	values := make([][]float64, n)
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if firstErr != nil || next >= n {
					mu.Unlock()
					return
				}
				k := next
				next++
				mu.Unlock()
				v, err := sim.Evaluate(points[k])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("mc: sample %d: %w", k, err)
					}
					mu.Unlock()
					return
				}
				values[k] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return &Dataset{
		Points:  points,
		Values:  values,
		Metrics: sim.Metrics(),
		SimTime: time.Since(start),
	}, nil
}

// WriteCSV serializes the dataset: header y0..y{N-1},metric..., one row per
// sample.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	dim := 0
	if d.Len() > 0 {
		dim = len(d.Points[0])
	}
	header := make([]string, 0, dim+len(d.Metrics))
	for i := 0; i < dim; i++ {
		header = append(header, fmt.Sprintf("y%d", i))
	}
	header = append(header, d.Metrics...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("mc: write header: %w", err)
	}
	row := make([]string, len(header))
	for k := 0; k < d.Len(); k++ {
		for i, v := range d.Points[k] {
			row[i] = strconv.FormatFloat(v, 'g', 17, 64)
		}
		for j, v := range d.Values[k] {
			row[dim+j] = strconv.FormatFloat(v, 'g', 17, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("mc: write row %d: %w", k, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset produced by WriteCSV. Columns named y<i> are
// factors; the remainder are metrics.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("mc: read header: %w", err)
	}
	dim := 0
	for dim < len(header) {
		if header[dim] != fmt.Sprintf("y%d", dim) {
			break
		}
		dim++
	}
	d := &Dataset{Metrics: append([]string(nil), header[dim:]...)}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("mc: read line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("mc: line %d has %d fields, want %d", line, len(rec), len(header))
		}
		pt := make([]float64, dim)
		vals := make([]float64, len(header)-dim)
		for i, s := range rec {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("mc: line %d field %d: %w", line, i, err)
			}
			if i < dim {
				pt[i] = v
			} else {
				vals[i-dim] = v
			}
		}
		d.Points = append(d.Points, pt)
		d.Values = append(d.Values, vals)
	}
	return d, nil
}

// SampleVirtual evaluates sim at n deterministically regenerable sampling
// points (rng.RowPoint with the given seed) and returns only the responses.
// Pair it with basis.NewGeneratedDesign(b, n, seed): the design re-derives
// the same points on demand, so the 4 GB of stored points a paper-scale run
// would otherwise need (K = 25 000 × N = 21 310) never exist.
func SampleVirtual(sim circuit.Simulator, n int, seed int64, opt Options) ([][]float64, time.Duration, error) {
	if n <= 0 {
		return nil, 0, fmt.Errorf("mc: sample count %d must be positive", n)
	}
	return SampleVirtualRange(sim, 0, n, seed, opt)
}

// SampleVirtualRange evaluates sim at the virtual sampling points with
// indices [from, to) of the stream identified by seed. It lets callers grow
// a virtual dataset incrementally — earlier indices keep their values, so
// adaptive sampling loops never re-simulate.
func SampleVirtualRange(sim circuit.Simulator, from, to int, seed int64, opt Options) ([][]float64, time.Duration, error) {
	return SampleVirtualRangeCtx(context.Background(), sim, from, to, seed, opt)
}

// SampleVirtualRangeCtx is SampleVirtualRange with cancellation: each worker
// checks ctx before every simulator evaluation, so cancellation stops the
// pool within one in-flight sample per worker and returns ctx.Err().
func SampleVirtualRangeCtx(ctx context.Context, sim circuit.Simulator, from, to int, seed int64, opt Options) ([][]float64, time.Duration, error) {
	if from < 0 || to <= from {
		return nil, 0, fmt.Errorf("mc: invalid virtual range [%d, %d)", from, to)
	}
	n := to - from
	dim := sim.Dim()
	values := make([][]float64, n)
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pt := make([]float64, dim)
			for {
				if err := ctx.Err(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				if firstErr != nil || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				rng.RowPoint(pt, seed, from+i, dim)
				v, err := sim.Evaluate(pt)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("mc: sample %d: %w", from+i, err)
					}
					mu.Unlock()
					return
				}
				values[i] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, 0, firstErr
	}
	return values, time.Since(start), nil
}
