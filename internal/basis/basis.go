// Package basis assembles the multi-dimensional orthonormal Hermite bases of
// the paper's Section II into design matrices for the regression solvers.
//
// Two representations of the K×M design matrix G (eq. (8)) are provided:
// a dense one for moderate sizes, and a lazy one that re-evaluates basis
// rows on demand so that the huge bases of the paper (M up to 10⁶) never
// have to be materialized. Both satisfy the Design interface the solvers in
// internal/core are written against.
package basis

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/hermite"
	"repro/internal/linalg"
	"repro/internal/rng"
)

// Basis is an ordered set of multi-dimensional Hermite basis functions over
// Dim independent standard-normal variables.
type Basis struct {
	// Dim is the number of input variables N.
	Dim int
	// Terms are the basis functions g₁…g_M in order.
	Terms []hermite.Term
	// Desc records how a systematically generated basis was constructed so
	// it can be serialized and rebuilt elsewhere. Zero for explicit term
	// lists built with New.
	Desc Descriptor

	maxOrder int
}

// New builds a Basis from an explicit term list over dim variables.
func New(dim int, terms []hermite.Term) *Basis {
	b := &Basis{Dim: dim, Terms: terms}
	for _, t := range terms {
		for _, vp := range t {
			if vp.Var < 0 || vp.Var >= dim {
				panic(fmt.Sprintf("basis: term %v references variable outside [0,%d)", t, dim))
			}
			if vp.Pow > b.maxOrder {
				b.maxOrder = vp.Pow
			}
		}
	}
	return b
}

// Linear returns the degree-1 basis over n variables (M = n+1).
func Linear(n int) *Basis {
	b := New(n, hermite.LinearTerms(n))
	b.Desc = Descriptor{Kind: KindLinear, Dim: n}
	return b
}

// Quadratic returns the total-degree-2 basis over n variables
// (M = 1 + n + n(n+1)/2).
func Quadratic(n int) *Basis {
	b := New(n, hermite.QuadraticTerms(n))
	b.Desc = Descriptor{Kind: KindQuadratic, Dim: n}
	return b
}

// TotalDegree returns the total-degree-deg basis over n variables.
func TotalDegree(n, deg int) *Basis {
	b := New(n, hermite.TotalDegreeTerms(n, deg))
	b.Desc = Descriptor{Kind: KindTotalDegree, Dim: n, Degree: deg}
	return b
}

// AutoDesign builds the design matrix view for the sampled points, choosing
// dense storage for moderate sizes and lazy re-evaluation beyond it (the
// paper-scale regime where G must never be materialized).
func AutoDesign(b *Basis, points [][]float64) Design {
	const denseLimit = 48 << 20
	if len(points)*b.Size() <= denseLimit {
		return NewDenseDesign(b, points)
	}
	return NewLazyDesign(b, points)
}

// Size returns the number of basis functions M.
func (b *Basis) Size() int { return len(b.Terms) }

// EvalRow evaluates every basis function at the point y, writing the M
// values into dst (allocated when nil). It allocates a fresh Hermite table
// per call; hot loops should hold an Evaluator instead.
func (b *Basis) EvalRow(dst, y []float64) []float64 {
	return b.NewEvaluator().EvalRow(dst, y)
}

// Evaluator amortizes the per-variable Hermite value table across repeated
// row evaluations. It is not safe for concurrent use; create one per
// goroutine.
type Evaluator struct {
	b    *Basis
	herm []float64
}

// NewEvaluator returns a reusable row evaluator.
func (b *Basis) NewEvaluator() *Evaluator {
	return &Evaluator{b: b, herm: make([]float64, b.Dim*(b.maxOrder+1))}
}

// EvalRow evaluates every basis function at y into dst (allocated when nil).
// The table herm[v·(maxOrder+1)+p] = H̃ₚ(y[v]) is built once per call so each
// term costs only lookups and multiplies.
func (e *Evaluator) EvalRow(dst, y []float64) []float64 {
	b := e.b
	if len(y) != b.Dim {
		panic(fmt.Sprintf("basis: EvalRow point dimension %d, want %d", len(y), b.Dim))
	}
	if dst == nil {
		dst = make([]float64, len(b.Terms))
	}
	stride := b.maxOrder + 1
	for v := 0; v < b.Dim; v++ {
		hermite.Eval1DUpTo(e.herm[v*stride:(v+1)*stride], b.maxOrder, y[v])
	}
	for i, t := range b.Terms {
		p := 1.0
		for _, vp := range t {
			p *= e.herm[vp.Var*stride+vp.Pow]
		}
		dst[i] = p
	}
	return dst
}

// Eval evaluates the single basis function m at y.
func (b *Basis) Eval(m int, y []float64) float64 {
	return b.Terms[m].Eval(y)
}

// Design is the solver-facing view of the K×M design matrix G of eq. (8).
// Implementations may store G densely or evaluate it on the fly.
type Design interface {
	// Rows returns the number of sampling points K.
	Rows() int
	// Cols returns the number of basis functions M.
	Cols() int
	// Column writes basis vector G_m (eq. (7)) into dst (allocated when
	// nil) and returns it.
	Column(dst []float64, m int) []float64
	// MulTransVec computes dst = Gᵀ·x, the inner products of every basis
	// vector with x (the kernel of eqs. (14) and (18)). dst is allocated
	// when nil.
	MulTransVec(dst, x []float64) []float64
	// VisitRows streams the evaluated basis rows in order: fn is called once
	// per sampling point with the row index and the M basis values. The row
	// buffer is reused between calls — copy it if it must outlive fn. This
	// is the per-row primitive solvers use for whole-matrix passes (e.g.
	// column norms) that would otherwise cost M column materializations.
	VisitRows(fn func(k int, row []float64))
}

// SquaredColumnNorms accumulates Σ_k G[k][j]² into dst (allocated when nil)
// with a single row-streaming pass over the design.
func SquaredColumnNorms(d Design, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, d.Cols())
	}
	for j := range dst {
		dst[j] = 0
	}
	d.VisitRows(func(_ int, row []float64) {
		for j, v := range row {
			dst[j] += v * v
		}
	})
	return dst
}

// DenseDesign stores G explicitly. Best when K·M is small enough to hold in
// memory; column access and transpose products are simple passes over it.
type DenseDesign struct {
	g *linalg.Matrix
}

// NewDenseDesign evaluates the basis at all points and stores the result.
func NewDenseDesign(b *Basis, points [][]float64) *DenseDesign {
	g := linalg.NewMatrix(len(points), b.Size())
	for k, y := range points {
		b.EvalRow(g.Row(k), y)
	}
	return &DenseDesign{g: g}
}

// DenseDesignFromMatrix wraps an existing matrix (rows = samples, cols =
// basis functions) as a Design. The matrix is used directly, not copied.
func DenseDesignFromMatrix(g *linalg.Matrix) *DenseDesign { return &DenseDesign{g: g} }

// Rows returns K.
func (d *DenseDesign) Rows() int { return d.g.Rows }

// Cols returns M.
func (d *DenseDesign) Cols() int { return d.g.Cols }

// Column copies basis vector m.
func (d *DenseDesign) Column(dst []float64, m int) []float64 { return d.g.Col(dst, m) }

// MulTransVec computes Gᵀ·x.
func (d *DenseDesign) MulTransVec(dst, x []float64) []float64 {
	return d.g.MulTransVec(dst, x)
}

// Matrix exposes the underlying dense matrix (for the LS solver, which
// factors G directly).
func (d *DenseDesign) Matrix() *linalg.Matrix { return d.g }

// VisitRows streams the stored rows.
func (d *DenseDesign) VisitRows(fn func(k int, row []float64)) {
	for k := 0; k < d.g.Rows; k++ {
		fn(k, d.g.Row(k))
	}
}

// LazyDesign evaluates rows of G on demand from the stored sampling points.
// Memory is O(K·N + M) instead of O(K·M); every MulTransVec re-evaluates the
// basis, trading time for space exactly as needed for the paper-scale
// experiments (M ≈ 2·10⁴…10⁶).
type LazyDesign struct {
	basis  *Basis
	points [][]float64
}

// NewLazyDesign wraps the basis and sampling points without materializing G.
func NewLazyDesign(b *Basis, points [][]float64) *LazyDesign {
	for i, p := range points {
		if len(p) != b.Dim {
			panic(fmt.Sprintf("basis: point %d has dimension %d, want %d", i, len(p), b.Dim))
		}
	}
	return &LazyDesign{basis: b, points: points}
}

// Rows returns K.
func (d *LazyDesign) Rows() int { return len(d.points) }

// Cols returns M.
func (d *LazyDesign) Cols() int { return d.basis.Size() }

// Column evaluates basis function m at every sampling point.
func (d *LazyDesign) Column(dst []float64, m int) []float64 {
	if dst == nil {
		dst = make([]float64, len(d.points))
	}
	t := d.basis.Terms[m]
	for k, y := range d.points {
		dst[k] = t.Eval(y)
	}
	return dst
}

// VisitRows evaluates and streams one basis row per sampling point.
func (d *LazyDesign) VisitRows(fn func(k int, row []float64)) {
	ev := d.basis.NewEvaluator()
	row := make([]float64, d.basis.Size())
	for k, y := range d.points {
		ev.EvalRow(row, y)
		fn(k, row)
	}
}

// MulTransVec computes Gᵀ·x by streaming one evaluated row at a time.
func (d *LazyDesign) MulTransVec(dst, x []float64) []float64 {
	if len(x) != len(d.points) {
		panic(fmt.Sprintf("basis: MulTransVec input length %d, want %d", len(x), len(d.points)))
	}
	m := d.basis.Size()
	if dst == nil {
		dst = make([]float64, m)
	}
	for j := range dst {
		dst[j] = 0
	}
	ev := d.basis.NewEvaluator()
	row := make([]float64, m)
	for k, y := range d.points {
		if x[k] == 0 {
			continue
		}
		ev.EvalRow(row, y)
		linalg.Axpy(x[k], row, dst)
	}
	return dst
}

var (
	_ Design = (*DenseDesign)(nil)
	_ Design = (*LazyDesign)(nil)
)

// QuadraticForm is a fitted quadratic model rewritten in raw polynomial
// coordinates: f(y) = Const + bᵀy + yᵀA·y with A symmetric. It undoes the
// Hermite normalization (H̃₂(x) = (x²−1)/√2), exposing the "quadratic
// coefficient matrix" of the paper's introduction for downstream tools.
type QuadraticForm struct {
	// Const is the constant offset.
	Const float64
	// Linear[i] is the coefficient of yᵢ.
	Linear []float64
	// Quad maps (i,j) with i ≤ j to the coefficient of yᵢ·yⱼ. Only non-zero
	// entries are stored, preserving the model's sparsity.
	Quad map[[2]int]float64
}

// ToQuadraticForm converts the sparse coefficients (aligned with b.Terms;
// support[k] indexes b.Terms, coef[k] is its coefficient) of a degree ≤ 2
// model into raw polynomial coordinates. It returns an error when a term of
// degree > 2 is present.
func ToQuadraticForm(b *Basis, support []int, coef []float64) (*QuadraticForm, error) {
	q := &QuadraticForm{
		Linear: make([]float64, b.Dim),
		Quad:   make(map[[2]int]float64),
	}
	sqrt2 := math.Sqrt2
	for k, idx := range support {
		t := b.Terms[idx]
		c := coef[k]
		switch t.Degree() {
		case 0:
			q.Const += c
		case 1:
			q.Linear[t[0].Var] += c
		case 2:
			if len(t) == 1 {
				// c·H̃₂(yᵢ) = c·(yᵢ²−1)/√2.
				i := t[0].Var
				q.Quad[[2]int{i, i}] += c / sqrt2
				q.Const -= c / sqrt2
			} else {
				// c·yᵢ·yⱼ (i < j by construction).
				i, j := t[0].Var, t[1].Var
				if i > j {
					i, j = j, i
				}
				q.Quad[[2]int{i, j}] += c
			}
		default:
			return nil, fmt.Errorf("basis: term %v has degree %d > 2", t, t.Degree())
		}
	}
	return q, nil
}

// Eval evaluates the quadratic form at y.
func (q *QuadraticForm) Eval(y []float64) float64 {
	v := q.Const
	for i, b := range q.Linear {
		v += b * y[i]
	}
	for ij, c := range q.Quad {
		v += c * y[ij[0]] * y[ij[1]]
	}
	return v
}

// GeneratedDesign regenerates its sampling points deterministically from a
// seed on every access instead of storing them: memory is O(M) regardless of
// K·N, which is what makes the paper's largest configurations (K = 25 000
// samples over N = 21 310 variables ⇒ 4 GB of stored points) tractable. The
// trade-off is recomputing N normal variates per row access. Use
// mc.SampleVirtual with the same seed to obtain matching responses.
type GeneratedDesign struct {
	basis *Basis
	k     int
	seed  int64
}

// NewGeneratedDesign creates a k-row virtual design over the basis.
func NewGeneratedDesign(b *Basis, k int, seed int64) *GeneratedDesign {
	if k <= 0 {
		panic(fmt.Sprintf("basis: GeneratedDesign needs positive rows, got %d", k))
	}
	return &GeneratedDesign{basis: b, k: k, seed: seed}
}

// Rows returns K.
func (d *GeneratedDesign) Rows() int { return d.k }

// Cols returns M.
func (d *GeneratedDesign) Cols() int { return d.basis.Size() }

// Point regenerates sampling point k into dst (allocated when nil).
func (d *GeneratedDesign) Point(dst []float64, k int) []float64 {
	return rng.RowPoint(dst, d.seed, k, d.basis.Dim)
}

// Column evaluates basis function m at every regenerated point, sharding
// the row regeneration across GOMAXPROCS goroutines.
func (d *GeneratedDesign) Column(dst []float64, m int) []float64 {
	if dst == nil {
		dst = make([]float64, d.k)
	}
	t := d.basis.Terms[m]
	workers := runtime.GOMAXPROCS(0)
	if workers > d.k {
		workers = d.k
	}
	if workers <= 1 {
		y := make([]float64, d.basis.Dim)
		for k := 0; k < d.k; k++ {
			rng.RowPoint(y, d.seed, k, d.basis.Dim)
			dst[k] = t.Eval(y)
		}
		return dst
	}
	var wg sync.WaitGroup
	chunk := (d.k + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > d.k {
			hi = d.k
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			y := make([]float64, d.basis.Dim)
			for k := lo; k < hi; k++ {
				rng.RowPoint(y, d.seed, k, d.basis.Dim)
				dst[k] = t.Eval(y)
			}
		}(lo, hi)
	}
	wg.Wait()
	return dst
}

// MulTransVec computes Gᵀ·x by streaming regenerated rows. Rows are
// independent, so the pass is sharded across GOMAXPROCS goroutines with
// per-worker accumulators — the dominant kernel of paper-scale fits.
func (d *GeneratedDesign) MulTransVec(dst, x []float64) []float64 {
	if len(x) != d.k {
		panic(fmt.Sprintf("basis: MulTransVec input length %d, want %d", len(x), d.k))
	}
	m := d.basis.Size()
	if dst == nil {
		dst = make([]float64, m)
	}
	for j := range dst {
		dst[j] = 0
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > d.k {
		workers = d.k
	}
	if workers <= 1 {
		d.accumRows(dst, x, 0, d.k)
		return dst
	}
	partial := make([][]float64, workers)
	var wg sync.WaitGroup
	chunk := (d.k + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > d.k {
			hi = d.k
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := make([]float64, m)
			d.accumRows(acc, x, lo, hi)
			partial[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()
	for _, acc := range partial {
		if acc != nil {
			linalg.Axpy(1, acc, dst)
		}
	}
	return dst
}

// VisitRows regenerates and streams one basis row per sampling point.
func (d *GeneratedDesign) VisitRows(fn func(k int, row []float64)) {
	ev := d.basis.NewEvaluator()
	row := make([]float64, d.basis.Size())
	y := make([]float64, d.basis.Dim)
	for k := 0; k < d.k; k++ {
		rng.RowPoint(y, d.seed, k, d.basis.Dim)
		ev.EvalRow(row, y)
		fn(k, row)
	}
}

// accumRows accumulates Σ x[k]·row(k) over rows [lo, hi) into dst.
func (d *GeneratedDesign) accumRows(dst, x []float64, lo, hi int) {
	ev := d.basis.NewEvaluator()
	row := make([]float64, d.basis.Size())
	y := make([]float64, d.basis.Dim)
	for k := lo; k < hi; k++ {
		if x[k] == 0 {
			continue
		}
		rng.RowPoint(y, d.seed, k, d.basis.Dim)
		ev.EvalRow(row, y)
		linalg.Axpy(x[k], row, dst)
	}
}

var _ Design = (*GeneratedDesign)(nil)
