package basis

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestGeneratedDesignMatchesLazy(t *testing.T) {
	// A GeneratedDesign must behave exactly like a LazyDesign built from the
	// explicitly regenerated points.
	const k, dim, seed = 17, 6, 99
	b := Quadratic(dim)
	gen := NewGeneratedDesign(b, k, seed)
	pts := make([][]float64, k)
	for i := range pts {
		pts[i] = rng.RowPoint(nil, seed, i, dim)
	}
	lazy := NewLazyDesign(b, pts)

	if gen.Rows() != lazy.Rows() || gen.Cols() != lazy.Cols() {
		t.Fatalf("dims differ")
	}
	x := make([]float64, k)
	for i := range x {
		x[i] = float64(i) - 8
	}
	a := gen.MulTransVec(nil, x)
	bb := lazy.MulTransVec(nil, x)
	for i := range a {
		if math.Abs(a[i]-bb[i]) > 1e-12*(1+math.Abs(bb[i])) {
			t.Fatalf("MulTransVec differs at %d: %g vs %g", i, a[i], bb[i])
		}
	}
	for m := 0; m < gen.Cols(); m += 5 {
		ca := gen.Column(nil, m)
		cb := lazy.Column(nil, m)
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("Column(%d)[%d] differs", m, i)
			}
		}
	}
}

func TestGeneratedDesignDeterministic(t *testing.T) {
	b := Linear(4)
	g1 := NewGeneratedDesign(b, 10, 7)
	g2 := NewGeneratedDesign(b, 10, 7)
	c1 := g1.Column(nil, 2)
	c2 := g2.Column(nil, 2)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("same seed produced different designs")
		}
	}
	g3 := NewGeneratedDesign(b, 10, 8)
	c3 := g3.Column(nil, 2)
	same := true
	for i := range c1 {
		if c1[i] != c3[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical designs")
	}
}

func TestGeneratedDesignPointAccess(t *testing.T) {
	b := Linear(3)
	g := NewGeneratedDesign(b, 5, 11)
	p := g.Point(nil, 2)
	want := rng.RowPoint(nil, 11, 2, 3)
	for i := range p {
		if p[i] != want[i] {
			t.Fatal("Point does not match rng.RowPoint")
		}
	}
}

func TestGeneratedDesignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGeneratedDesign(Linear(2), 0, 1)
}
