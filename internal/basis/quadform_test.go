package basis

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hermite"
)

func TestToQuadraticFormMatchesHermiteEvaluation(t *testing.T) {
	// A model over Quadratic(4): pick one of each term kind and verify the
	// raw polynomial evaluates identically to the Hermite expansion.
	b := Quadratic(4)
	var constIdx, linIdx, pureIdx, crossIdx int
	for i, term := range b.Terms {
		switch {
		case term.Degree() == 0:
			constIdx = i
		case term.Degree() == 1 && term[0].Var == 2:
			linIdx = i
		case term.Degree() == 2 && len(term) == 1 && term[0].Var == 1:
			pureIdx = i
		case term.Degree() == 2 && len(term) == 2 && term[0].Var == 0 && term[1].Var == 3:
			crossIdx = i
		}
	}
	support := []int{constIdx, linIdx, pureIdx, crossIdx}
	coef := []float64{2.5, -1.2, 0.8, 1.5}
	q, err := ToQuadraticForm(b, support, coef)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(41))
	y := make([]float64, 4)
	for trial := 0; trial < 50; trial++ {
		for i := range y {
			y[i] = r.NormFloat64()
		}
		want := 0.0
		for i, idx := range support {
			want += coef[i] * b.Eval(idx, y)
		}
		got := q.Eval(y)
		if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("trial %d: quadratic form %g, Hermite %g", trial, got, want)
		}
	}
	// Structural checks: H̃₂ contributes 1/√2 to y² and −1/√2 to the const.
	if v := q.Quad[[2]int{1, 1}]; math.Abs(v-0.8/math.Sqrt2) > 1e-14 {
		t.Errorf("y₁² coefficient %g, want %g", v, 0.8/math.Sqrt2)
	}
	if math.Abs(q.Const-(2.5-0.8/math.Sqrt2)) > 1e-14 {
		t.Errorf("const %g, want %g", q.Const, 2.5-0.8/math.Sqrt2)
	}
	if v := q.Quad[[2]int{0, 3}]; v != 1.5 {
		t.Errorf("cross coefficient %g, want 1.5", v)
	}
	if q.Linear[2] != -1.2 {
		t.Errorf("linear coefficient %g, want -1.2", q.Linear[2])
	}
}

func TestToQuadraticFormRejectsCubic(t *testing.T) {
	b := New(2, []hermite.Term{{{Var: 0, Pow: 3}}})
	if _, err := ToQuadraticForm(b, []int{0}, []float64{1}); err == nil {
		t.Fatal("degree-3 term must error")
	}
}

func TestToQuadraticFormSparsityPreserved(t *testing.T) {
	b := Quadratic(50) // M = 1326
	support := []int{0, 5, 100}
	coef := []float64{1, 2, 3}
	q, err := ToQuadraticForm(b, support, coef)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Quad) > 2 {
		t.Errorf("quadratic map has %d entries for a 3-term model", len(q.Quad))
	}
}
