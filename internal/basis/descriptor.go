package basis

import "fmt"

// Descriptor is a compact, serializable recipe for reconstructing a Basis.
// It is what the versioned model envelope (internal/core) and the model
// registry (internal/registry) persist alongside the sparse coefficients so
// that a stored model can be re-evaluated later — and by other processes —
// without out-of-band knowledge of the dictionary it was fit against.
//
// Only the systematically generated dictionaries are describable; a Basis
// assembled from an explicit term list via New has a zero Descriptor and
// cannot be serialized.
type Descriptor struct {
	// Kind names the generator: "linear", "quadratic" or "total-degree".
	Kind string `json:"kind"`
	// Dim is the number of input variables N.
	Dim int `json:"dim"`
	// Degree is the total degree for "total-degree" dictionaries; it is
	// implied (1, 2) and omitted for the other kinds.
	Degree int `json:"degree,omitempty"`
}

// Descriptor kinds.
const (
	KindLinear      = "linear"
	KindQuadratic   = "quadratic"
	KindTotalDegree = "total-degree"
)

// IsZero reports whether the descriptor is unset (an undescribable basis).
func (d Descriptor) IsZero() bool { return d == Descriptor{} }

// Validate checks that the descriptor names a constructible dictionary.
func (d Descriptor) Validate() error {
	if d.Dim <= 0 {
		return fmt.Errorf("basis: descriptor dimension %d must be positive", d.Dim)
	}
	switch d.Kind {
	case KindLinear, KindQuadratic:
		return nil
	case KindTotalDegree:
		if d.Degree < 1 {
			return fmt.Errorf("basis: total-degree descriptor needs degree ≥ 1, got %d", d.Degree)
		}
		return nil
	default:
		return fmt.Errorf("basis: unknown descriptor kind %q", d.Kind)
	}
}

// Size returns the dictionary size M implied by the descriptor without
// building the term list: n+1 (linear), 1+n+n(n+1)/2 (quadratic) or
// C(n+d, d) (total degree). It returns -1 when the count overflows int,
// and 0 for an invalid descriptor.
func (d Descriptor) Size() int {
	if d.Validate() != nil {
		return 0
	}
	n := d.Dim
	switch d.Kind {
	case KindLinear:
		return n + 1
	case KindQuadratic:
		return 1 + n + n*(n+1)/2
	default:
		return binomial(n+d.Degree, d.Degree)
	}
}

// Build reconstructs the basis the descriptor names.
func (d Descriptor) Build() (*Basis, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	switch d.Kind {
	case KindLinear:
		return Linear(d.Dim), nil
	case KindQuadratic:
		return Quadratic(d.Dim), nil
	default:
		return TotalDegree(d.Dim, d.Degree), nil
	}
}

// String renders the descriptor for logs and error messages.
func (d Descriptor) String() string {
	if d.IsZero() {
		return "basis<unknown>"
	}
	if d.Kind == KindTotalDegree {
		return fmt.Sprintf("%s(dim=%d, degree=%d)", d.Kind, d.Dim, d.Degree)
	}
	return fmt.Sprintf("%s(dim=%d)", d.Kind, d.Dim)
}

// binomial computes C(n, k) with overflow detection (-1 on overflow).
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 1; i <= k; i++ {
		// c = c * (n-k+i) / i, exactly divisible at each step.
		f := n - k + i
		if c > (1<<62)/f {
			return -1
		}
		c = c * f / i
	}
	return c
}
