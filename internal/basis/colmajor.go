package basis

import (
	"fmt"

	"repro/internal/linalg"
)

// colMajorBlock is how many columns share one backing slice in a ColMajor
// design. Blocked storage keeps any single allocation below
// colMajorBlock·K·8 bytes, so paper-scale dictionaries never ask the
// allocator for one monolithic K·M array, while each column stays fully
// contiguous — the property the correlation kernel's per-column dot products
// need to run at memory bandwidth.
const colMajorBlock = 256

// ColMajor stores a design matrix column-major in fixed-width column blocks.
// It is the cache-friendly substrate of the solver engine's Gᵀ·res sweep:
// row-major storage (DenseDesign) walks M-strided memory when a kernel
// consumes one column at a time, whereas here every column is one contiguous
// slice, so a column-sharded parallel sweep touches disjoint cache lines and
// needs no per-worker accumulators.
//
// Summation order per column is ascending row index — identical to the
// row-streaming MulTransVec implementations — so switching a solver to
// ColMajor storage changes performance, not results.
type ColMajor struct {
	rows, cols int
	blocks     [][]float64 // blocks[b] holds columns [b·colMajorBlock, …) column-contiguous
}

// NewColMajor materializes any design into column-major blocked storage with
// a single row-streaming pass. The copy costs one VisitRows sweep and K·M
// floats of memory; callers gate it on problem size (see core's engine
// policy) since a path fit amortizes the pass over its many correlation
// sweeps but a lazy paper-scale design must never be materialized.
func NewColMajor(d Design) *ColMajor {
	k, m := d.Rows(), d.Cols()
	c := &ColMajor{rows: k, cols: m}
	nblocks := (m + colMajorBlock - 1) / colMajorBlock
	c.blocks = make([][]float64, nblocks)
	for b := range c.blocks {
		c.blocks[b] = make([]float64, c.blockWidth(b)*k)
	}
	d.VisitRows(func(row int, vals []float64) {
		for j, v := range vals {
			c.blocks[j/colMajorBlock][(j%colMajorBlock)*k+row] = v
		}
	})
	return c
}

// blockWidth returns the number of columns stored in block b.
func (c *ColMajor) blockWidth(b int) int {
	w := c.cols - b*colMajorBlock
	if w > colMajorBlock {
		w = colMajorBlock
	}
	return w
}

// Rows returns K.
func (c *ColMajor) Rows() int { return c.rows }

// Cols returns M.
func (c *ColMajor) Cols() int { return c.cols }

// ColSlice returns the contiguous backing slice of column j without copying.
// The slice is read-only from the caller's perspective.
func (c *ColMajor) ColSlice(j int) []float64 {
	if j < 0 || j >= c.cols {
		panic(fmt.Sprintf("basis: ColSlice column %d outside [0,%d)", j, c.cols))
	}
	off := (j % colMajorBlock) * c.rows
	return c.blocks[j/colMajorBlock][off : off+c.rows]
}

// Column copies basis vector j into dst (allocated when nil).
func (c *ColMajor) Column(dst []float64, j int) []float64 {
	if dst == nil {
		dst = make([]float64, c.rows)
	}
	copy(dst, c.ColSlice(j))
	return dst
}

// MulTransVec computes dst = Gᵀ·x column by column: each dst[j] is one
// contiguous dot product. This is the serial form of the engine's
// correlation kernel.
func (c *ColMajor) MulTransVec(dst, x []float64) []float64 {
	if len(x) != c.rows {
		panic(fmt.Sprintf("basis: MulTransVec input length %d, want %d", len(x), c.rows))
	}
	if dst == nil {
		dst = make([]float64, c.cols)
	}
	c.MulTransVecRange(dst, x, 0, c.cols)
	return dst
}

// MulTransVecRange computes dst[j] = G_jᵀ·x for j in [lo, hi). It is the
// shard unit of the parallel correlation sweep: disjoint column ranges write
// disjoint dst entries, so workers need no synchronization beyond the final
// join.
func (c *ColMajor) MulTransVecRange(dst, x []float64, lo, hi int) {
	for j := lo; j < hi; j++ {
		dst[j] = linalg.Dot(c.ColSlice(j), x)
	}
}

// VisitRows streams the rows in order, assembling each from the column
// blocks. Row access is the slow direction of this layout; it exists to
// satisfy the Design contract (column-norm passes, subset views), not for
// hot loops.
func (c *ColMajor) VisitRows(fn func(k int, row []float64)) {
	row := make([]float64, c.cols)
	for k := 0; k < c.rows; k++ {
		for b, blk := range c.blocks {
			w := c.blockWidth(b)
			base := b * colMajorBlock
			for j := 0; j < w; j++ {
				row[base+j] = blk[j*c.rows+k]
			}
		}
		fn(k, row)
	}
}

var _ Design = (*ColMajor)(nil)
