package basis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hermite"
)

func randPoints(r *rand.Rand, k, n int) [][]float64 {
	pts := make([][]float64, k)
	for i := range pts {
		pts[i] = make([]float64, n)
		for j := range pts[i] {
			pts[i][j] = r.NormFloat64()
		}
	}
	return pts
}

func TestBasisSizes(t *testing.T) {
	if got := Linear(630).Size(); got != 631 {
		t.Errorf("Linear(630) size %d, want 631 (paper OpAmp)", got)
	}
	if got := Quadratic(200).Size(); got != 20301 {
		t.Errorf("Quadratic(200) size %d, want 20301 (paper Table II)", got)
	}
}

func TestEvalRowMatchesTermEval(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	b := Quadratic(7)
	y := make([]float64, 7)
	for i := range y {
		y[i] = r.NormFloat64()
	}
	row := b.EvalRow(nil, y)
	for m, term := range b.Terms {
		want := term.Eval(y)
		if math.Abs(row[m]-want) > 1e-13*(1+math.Abs(want)) {
			t.Errorf("EvalRow[%d] = %g, want %g (%v)", m, row[m], want, term)
		}
	}
}

func TestNewRejectsOutOfRangeVariable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, []hermite.Term{{{Var: 5, Pow: 1}}})
}

func TestDenseAndLazyAgree(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	b := Quadratic(5)
	pts := randPoints(r, 12, 5)
	dense := NewDenseDesign(b, pts)
	lazy := NewLazyDesign(b, pts)

	if dense.Rows() != lazy.Rows() || dense.Cols() != lazy.Cols() {
		t.Fatalf("dims differ: dense %dx%d lazy %dx%d", dense.Rows(), dense.Cols(), lazy.Rows(), lazy.Cols())
	}
	x := make([]float64, 12)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	gd := dense.MulTransVec(nil, x)
	gl := lazy.MulTransVec(nil, x)
	for i := range gd {
		if math.Abs(gd[i]-gl[i]) > 1e-11*(1+math.Abs(gd[i])) {
			t.Errorf("MulTransVec[%d]: dense %g lazy %g", i, gd[i], gl[i])
		}
	}
	for m := 0; m < dense.Cols(); m += 3 {
		cd := dense.Column(nil, m)
		cl := lazy.Column(nil, m)
		for k := range cd {
			if math.Abs(cd[k]-cl[k]) > 1e-13 {
				t.Errorf("Column(%d)[%d]: dense %g lazy %g", m, k, cd[k], cl[k])
			}
		}
	}
}

func TestColumnMatchesDesignMatrixDefinition(t *testing.T) {
	// eq. (7): G_m[k] = g_m(ΔY⁽ᵏ⁾).
	r := rand.New(rand.NewSource(22))
	b := Linear(4)
	pts := randPoints(r, 6, 4)
	d := NewDenseDesign(b, pts)
	for m := 0; m < b.Size(); m++ {
		col := d.Column(nil, m)
		for k, y := range pts {
			want := b.Eval(m, y)
			if col[k] != want {
				t.Errorf("G_%d[%d] = %g, want %g", m, k, col[k], want)
			}
		}
	}
}

func TestLazyDesignDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLazyDesign(Linear(3), [][]float64{{1, 2}})
}

// Property: for any basis vector column, Gᵀ·e_k reproduces row k of G.
func TestMulTransVecUnitVectors(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		kN := 3 + r.Intn(6)
		b := Quadratic(n)
		pts := randPoints(r, kN, n)
		lazy := NewLazyDesign(b, pts)
		k := r.Intn(kN)
		e := make([]float64, kN)
		e[k] = 1
		got := lazy.MulTransVec(nil, e)
		want := b.EvalRow(nil, pts[k])
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGramOfOrthonormalBasisApproachesIdentity(t *testing.T) {
	// With many Monte Carlo samples the empirical Gram matrix (1/K)·GᵀG of an
	// orthonormal basis approaches the identity — the property that makes
	// the inner-product estimator (14) consistent.
	r := rand.New(rand.NewSource(23))
	b := Quadratic(3)
	pts := randPoints(r, 60000, 3)
	d := NewDenseDesign(b, pts)
	gram := d.Matrix().Gram()
	k := float64(d.Rows())
	for i := 0; i < b.Size(); i++ {
		for j := 0; j < b.Size(); j++ {
			got := gram.At(i, j) / k
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(got-want) > 0.05 {
				t.Errorf("(1/K)GᵀG(%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestVisitRowsAllDesigns(t *testing.T) {
	r := rand.New(rand.NewSource(70))
	b := Quadratic(4)
	pts := randPoints(r, 9, 4)
	dense := NewDenseDesign(b, pts)
	lazy := NewLazyDesign(b, pts)
	want := make([][]float64, 9)
	for k, y := range pts {
		want[k] = b.EvalRow(nil, y)
	}
	check := func(name string, d Design) {
		visited := 0
		d.VisitRows(func(k int, row []float64) {
			if k != visited {
				t.Fatalf("%s: rows out of order: got %d, want %d", name, k, visited)
			}
			for j := range row {
				if math.Abs(row[j]-want[k][j]) > 1e-13*(1+math.Abs(want[k][j])) {
					t.Fatalf("%s: row %d col %d = %g, want %g", name, k, j, row[j], want[k][j])
				}
			}
			visited++
		})
		if visited != 9 {
			t.Fatalf("%s: visited %d rows, want 9", name, visited)
		}
	}
	check("dense", dense)
	check("lazy", lazy)
}

func TestSquaredColumnNormsMatchesColumns(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	b := Quadratic(5)
	pts := randPoints(r, 14, 5)
	d := NewDenseDesign(b, pts)
	norms := SquaredColumnNorms(d, nil)
	col := make([]float64, 14)
	for j := 0; j < d.Cols(); j++ {
		d.Column(col, j)
		want := 0.0
		for _, v := range col {
			want += v * v
		}
		if math.Abs(norms[j]-want) > 1e-11*(1+want) {
			t.Fatalf("norms[%d] = %g, want %g", j, norms[j], want)
		}
	}
}

func TestGeneratedDesignVisitRows(t *testing.T) {
	b := Linear(3)
	g := NewGeneratedDesign(b, 6, 42)
	count := 0
	g.VisitRows(func(k int, row []float64) {
		pt := g.Point(nil, k)
		want := b.EvalRow(nil, pt)
		for j := range row {
			if row[j] != want[j] {
				t.Fatalf("row %d mismatch", k)
			}
		}
		count++
	})
	if count != 6 {
		t.Fatalf("visited %d rows", count)
	}
}
