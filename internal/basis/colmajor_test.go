package basis

import (
	"math"
	"math/rand"
	"testing"
)

// randomDense builds a dense design over a quadratic basis with seeded
// normal points.
func randomDense(t *testing.T, dim, k int, seed int64) (*Basis, *DenseDesign) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	b := Quadratic(dim)
	pts := make([][]float64, k)
	for i := range pts {
		pts[i] = make([]float64, dim)
		for j := range pts[i] {
			pts[i][j] = r.NormFloat64()
		}
	}
	return b, NewDenseDesign(b, pts)
}

func TestColMajorMatchesDense(t *testing.T) {
	// dim=30 gives M=496, which spans two 256-column blocks — the block
	// boundary is the interesting case for ColSlice offsets.
	_, d := randomDense(t, 30, 37, 7)
	cm := NewColMajor(d)
	if cm.Rows() != d.Rows() || cm.Cols() != d.Cols() {
		t.Fatalf("dims %dx%d, want %dx%d", cm.Rows(), cm.Cols(), d.Rows(), d.Cols())
	}
	for _, j := range []int{0, 1, 255, 256, 257, cm.Cols() - 1} {
		want := d.Column(nil, j)
		got := cm.ColSlice(j)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("column %d row %d: %g, want %g", j, i, got[i], want[i])
			}
		}
		if copied := cm.Column(nil, j); copied[len(copied)-1] != want[len(want)-1] {
			t.Fatalf("Column copy mismatch at %d", j)
		}
	}
}

func TestColMajorMulTransVecBitIdentical(t *testing.T) {
	// The engine relies on ColMajor's per-column ascending-row summation
	// matching the row-streaming implementations bit for bit, so that
	// swapping storage never perturbs solver selections.
	_, d := randomDense(t, 30, 41, 11)
	cm := NewColMajor(d)
	r := rand.New(rand.NewSource(13))
	x := make([]float64, d.Rows())
	for i := range x {
		x[i] = r.NormFloat64()
	}
	want := d.MulTransVec(nil, x)
	got := cm.MulTransVec(nil, x)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("MulTransVec[%d] = %.17g, want %.17g", j, got[j], want[j])
		}
	}
	// Range form over an arbitrary split must agree with the full sweep.
	ranged := make([]float64, cm.Cols())
	cm.MulTransVecRange(ranged, x, 0, 100)
	cm.MulTransVecRange(ranged, x, 100, cm.Cols())
	for j := range want {
		if ranged[j] != want[j] {
			t.Fatalf("MulTransVecRange[%d] = %.17g, want %.17g", j, ranged[j], want[j])
		}
	}
}

func TestColMajorVisitRows(t *testing.T) {
	_, d := randomDense(t, 30, 9, 17)
	cm := NewColMajor(d)
	visited := 0
	cm.VisitRows(func(k int, row []float64) {
		visited++
		for _, j := range []int{0, 300, cm.Cols() - 1} {
			want := d.Column(nil, j)[k]
			if math.Abs(row[j]-want) != 0 {
				t.Fatalf("row %d col %d: %g, want %g", k, j, row[j], want)
			}
		}
	})
	if visited != d.Rows() {
		t.Fatalf("visited %d rows, want %d", visited, d.Rows())
	}
}

func TestColMajorColSliceBoundsPanic(t *testing.T) {
	_, d := randomDense(t, 5, 4, 19)
	cm := NewColMajor(d)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range column")
		}
	}()
	cm.ColSlice(cm.Cols())
}
