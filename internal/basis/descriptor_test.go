package basis

import "testing"

func TestDescriptorRoundTrip(t *testing.T) {
	cases := []*Basis{Linear(7), Quadratic(5), TotalDegree(4, 3)}
	for _, b := range cases {
		d := b.Desc
		if d.IsZero() {
			t.Fatalf("%s: constructor did not record a descriptor", d)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if got := d.Size(); got != b.Size() {
			t.Errorf("%s: Size() = %d, want %d", d, got, b.Size())
		}
		rebuilt, err := d.Build()
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if rebuilt.Size() != b.Size() || rebuilt.Dim != b.Dim {
			t.Fatalf("%s: rebuilt (dim=%d, M=%d), want (dim=%d, M=%d)",
				d, rebuilt.Dim, rebuilt.Size(), b.Dim, b.Size())
		}
		// Term-by-term agreement: evaluating both at a fixed point must give
		// identical rows.
		y := make([]float64, b.Dim)
		for i := range y {
			y[i] = 0.3 * float64(i+1)
		}
		want := b.EvalRow(nil, y)
		got := rebuilt.EvalRow(nil, y)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s: rebuilt basis disagrees at term %d: %g vs %g", d, i, got[i], want[i])
			}
		}
	}
}

func TestDescriptorExplicitBasisIsZero(t *testing.T) {
	b := New(3, Linear(3).Terms)
	if !b.Desc.IsZero() {
		t.Fatalf("explicit basis has descriptor %v, want zero", b.Desc)
	}
}

func TestDescriptorValidateRejects(t *testing.T) {
	bad := []Descriptor{
		{},
		{Kind: "linear", Dim: 0},
		{Kind: "hexagonal", Dim: 3},
		{Kind: KindTotalDegree, Dim: 3, Degree: 0},
		{Kind: KindLinear, Dim: -1},
	}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("%+v: expected validation error", d)
		}
		if _, err := d.Build(); err == nil {
			t.Errorf("%+v: expected build error", d)
		}
	}
}

func TestDescriptorSizeOverflow(t *testing.T) {
	d := Descriptor{Kind: KindTotalDegree, Dim: 1000, Degree: 6}
	if sz := d.Size(); sz <= 0 {
		t.Fatalf("C(1006,6) should fit in int, got %d", sz)
	}
	huge := Descriptor{Kind: KindTotalDegree, Dim: 1 << 40, Degree: 6}
	if sz := huge.Size(); sz != -1 {
		t.Fatalf("expected overflow sentinel -1, got %d", sz)
	}
}
