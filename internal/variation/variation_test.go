package variation

import (
	"math"
	"strings"
	"testing"

	"repro/internal/linalg"
	"repro/internal/rng"
	"repro/internal/stats"
)

func twoDeviceSpec() Spec {
	return Spec{
		Devices: []Device{
			{Name: "M1", W: 1, L: 0.06, X: 10, Y: 10, Kinds: []ParamKind{VTH, Beta}},
			{Name: "M2", W: 4, L: 0.06, X: 90, Y: 90, Kinds: []ParamKind{VTH}},
		},
		InterDieSigma: map[ParamKind]float64{VTH: 0.02},
		PelgromA:      map[ParamKind]float64{VTH: 0.005, Beta: 0.01},
	}
}

func TestBuildFactorLayout(t *testing.T) {
	s, err := Build(twoDeviceSpec())
	if err != nil {
		t.Fatal(err)
	}
	// 1 global VTH + local VTH(M1) + local Beta(M1) + local VTH(M2) = 4.
	if s.Dim() != 4 {
		t.Fatalf("Dim = %d, want 4", s.Dim())
	}
	if !strings.HasPrefix(s.FactorName(0), "global/VTH") {
		t.Errorf("factor 0 = %q, want global/VTH", s.FactorName(0))
	}
}

func TestPelgromScaling(t *testing.T) {
	s, err := Build(twoDeviceSpec())
	if err != nil {
		t.Fatal(err)
	}
	// M2 has 4× the area of M1, so its local VTH sigma is half of M1's.
	// Total sigma includes the shared global part: σ² = σ_g² + σ_loc².
	sg := 0.02
	loc1 := 0.005 / math.Sqrt(1*0.06)
	loc2 := 0.005 / math.Sqrt(4*0.06)
	want1 := math.Sqrt(sg*sg + loc1*loc1)
	want2 := math.Sqrt(sg*sg + loc2*loc2)
	if got := s.Sigma(0, VTH); math.Abs(got-want1) > 1e-12 {
		t.Errorf("σ(M1,VTH) = %g, want %g", got, want1)
	}
	if got := s.Sigma(1, VTH); math.Abs(got-want2) > 1e-12 {
		t.Errorf("σ(M2,VTH) = %g, want %g", got, want2)
	}
	if loc2 >= loc1 {
		t.Error("larger device must have smaller mismatch")
	}
}

func TestGlobalFactorShared(t *testing.T) {
	s, err := Build(twoDeviceSpec())
	if err != nil {
		t.Fatal(err)
	}
	dy := make([]float64, s.Dim())
	dy[0] = 1 // one sigma of the global VTH factor
	d1 := s.Delta(0, VTH, dy)
	d2 := s.Delta(1, VTH, dy)
	if math.Abs(d1-0.02) > 1e-15 || math.Abs(d2-0.02) > 1e-15 {
		t.Errorf("global shift not shared: %g vs %g, want 0.02 each", d1, d2)
	}
	// The Beta of M1 has no global component.
	if got := s.Delta(0, Beta, dy); got != 0 {
		t.Errorf("Beta delta %g from a VTH global factor", got)
	}
}

func TestLocalFactorsIndependent(t *testing.T) {
	s, err := Build(twoDeviceSpec())
	if err != nil {
		t.Fatal(err)
	}
	f1 := s.FactorsOf(0, VTH)
	f2 := s.FactorsOf(1, VTH)
	// They share exactly the global factor.
	shared := 0
	for _, a := range f1 {
		for _, b := range f2 {
			if a == b {
				shared++
			}
		}
	}
	if shared != 1 {
		t.Errorf("devices share %d factors, want 1 (the global)", shared)
	}
}

func TestEmpiricalSigma(t *testing.T) {
	s, err := Build(twoDeviceSpec())
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(77)
	const n = 200000
	var sum, sq float64
	dy := make([]float64, s.Dim())
	for i := 0; i < n; i++ {
		src.NormVec(dy, s.Dim())
		v := s.Delta(0, VTH, dy)
		sum += v
		sq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sq/n - mean*mean)
	want := s.Sigma(0, VTH)
	if math.Abs(mean) > 5e-4 {
		t.Errorf("empirical mean %g, want 0", mean)
	}
	if math.Abs(sd-want)/want > 0.02 {
		t.Errorf("empirical sigma %g, want %g", sd, want)
	}
}

func TestSpatialCorrelationDecaysWithDistance(t *testing.T) {
	spec := Spec{
		Devices: []Device{
			{Name: "A", W: 1, L: 1, X: 10, Y: 10, Kinds: []ParamKind{VTH}},
			{Name: "B", W: 1, L: 1, X: 12, Y: 10, Kinds: []ParamKind{VTH}},   // near A
			{Name: "C", W: 1, L: 1, X: 190, Y: 190, Kinds: []ParamKind{VTH}}, // far corner
		},
		SpatialSigma: map[ParamKind]float64{VTH: 0.01},
		GridNX:       3, GridNY: 3,
		DieW: 200, DieH: 200,
	}
	s, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(78)
	const n = 100000
	var ab, ac, aa, bb, cc float64
	dy := make([]float64, s.Dim())
	for i := 0; i < n; i++ {
		src.NormVec(dy, s.Dim())
		va := s.Delta(0, VTH, dy)
		vb := s.Delta(1, VTH, dy)
		vc := s.Delta(2, VTH, dy)
		ab += va * vb
		ac += va * vc
		aa += va * va
		bb += vb * vb
		cc += vc * vc
	}
	corrAB := ab / math.Sqrt(aa*bb)
	corrAC := ac / math.Sqrt(aa*cc)
	if corrAB < 0.8 {
		t.Errorf("neighbors correlation %g, want high", corrAB)
	}
	if math.Abs(corrAC) > 0.1 {
		t.Errorf("far devices correlation %g, want ≈0", corrAC)
	}
	// The marginal variance must be σ² regardless of position.
	if sd := math.Sqrt(aa / n); math.Abs(sd-0.01)/0.01 > 0.03 {
		t.Errorf("marginal sigma %g, want 0.01", sd)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Spec{}); err == nil {
		t.Error("empty spec must error")
	}
	if _, err := Build(Spec{
		Devices:      []Device{{Name: "A", Kinds: []ParamKind{VTH}}},
		SpatialSigma: map[ParamKind]float64{VTH: 1},
	}); err == nil {
		t.Error("spatial sigma without grid must error")
	}
	if _, err := Build(Spec{
		Devices:  []Device{{Name: "A", W: 0, L: 0, Kinds: []ParamKind{VTH}}},
		PelgromA: map[ParamKind]float64{VTH: 1},
	}); err == nil {
		t.Error("mismatch with zero area must error")
	}
	if _, err := Build(Spec{
		Devices: []Device{{Name: "A", Kinds: []ParamKind{VTH}}},
	}); err == nil {
		t.Error("spec without any randomness must error")
	}
}

func TestParamKindString(t *testing.T) {
	if VTH.String() != "VTH" || Beta.String() != "BETA" {
		t.Error("ParamKind names wrong")
	}
	if ParamKind(99).String() != "ParamKind(99)" {
		t.Error("unknown kind formatting wrong")
	}
}

func TestDeltaLengthMismatchPanics(t *testing.T) {
	s, err := Build(twoDeviceSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Delta(0, VTH, make([]float64, 1))
}

func TestImpliedCovarianceMatchesMonteCarlo(t *testing.T) {
	s, err := Build(twoDeviceSpec())
	if err != nil {
		t.Fatal(err)
	}
	params, cov := s.ImpliedCovariance()
	if len(params) != 3 { // M1/VTH, M1/Beta, M2/VTH
		t.Fatalf("got %d params, want 3", len(params))
	}
	src := rng.New(90)
	const n = 150000
	emp := make([][]float64, len(params))
	for i := range emp {
		emp[i] = make([]float64, len(params))
	}
	dy := make([]float64, s.Dim())
	dx := make([]float64, len(params))
	for k := 0; k < n; k++ {
		src.NormVec(dy, s.Dim())
		for i, pr := range params {
			dx[i] = s.Delta(pr.Device, pr.Kind, dy)
		}
		for i := range dx {
			for j := range dx {
				emp[i][j] += dx[i] * dx[j]
			}
		}
	}
	for i := range emp {
		for j := range emp {
			got := emp[i][j] / n
			want := cov[i][j]
			scale := math.Sqrt(cov[i][i]*cov[j][j]) + 1e-12
			if math.Abs(got-want) > 0.03*scale {
				t.Errorf("cov(%d,%d) = %g, implied %g", i, j, got, want)
			}
		}
	}
}

func TestImpliedCovariancePCAEquivalence(t *testing.T) {
	// Diagonalizing the implied covariance with PCA must reproduce the same
	// joint distribution: the PCA factor model's covariance equals Σ.
	s, err := Build(twoDeviceSpec())
	if err != nil {
		t.Fatal(err)
	}
	params, cov := s.ImpliedCovariance()
	p := len(params)
	sigma := linalg.NewMatrix(p, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			sigma.Set(i, j, cov[i][j])
		}
	}
	pca, err := stats.NewPCA(sigma, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct Σ from the PCA factors: V·Λ·Vᵀ restricted to the kept
	// components (ToParams of unit factor vectors).
	rec := linalg.NewMatrix(p, p)
	for f := 0; f < pca.Components(); f++ {
		e := make([]float64, pca.Components())
		e[f] = 1
		col := pca.ToParams(nil, e)
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				rec.Set(i, j, rec.At(i, j)+col[i]*col[j])
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if math.Abs(rec.At(i, j)-cov[i][j]) > 1e-10*(1+math.Abs(cov[i][j])) {
				t.Errorf("PCA reconstruction (%d,%d) = %g, want %g", i, j, rec.At(i, j), cov[i][j])
			}
		}
	}
}
