// Package variation models semiconductor process variation: the substitute
// for the commercial 65 nm PDK's foundry variation data used by the paper.
//
// Each device parameter deviation is composed of three jointly-normal
// contributions:
//
//   - an inter-die (global) component shared by every device on the die,
//   - a spatially-correlated intra-die component realized by a coarse grid
//     of region factors with bilinear interpolation, and
//   - a per-device local mismatch component following the Pelgrom model,
//     σ = A/√(W·L).
//
// The composition is expressed directly as a linear map from independent
// standard-normal factors ΔY onto device parameter deltas ΔX — the exact
// output format of the PCA preprocessing in the paper's Section II. For
// moderate dimensions the equivalent covariance matrix can be materialized
// and diagonalized with internal/stats.PCA to verify the equivalence.
package variation

import (
	"fmt"
	"math"
	"strings"
)

// ParamKind identifies a varying device parameter.
type ParamKind int

// Parameter kinds.
const (
	VTH   ParamKind = iota // threshold voltage shift (V)
	Beta                   // relative transconductance-factor shift (fraction)
	RWire                  // relative interconnect resistance shift (fraction)
	CWire                  // relative interconnect capacitance shift (fraction)
	numKinds
)

// String names the parameter kind.
func (k ParamKind) String() string {
	switch k {
	case VTH:
		return "VTH"
	case Beta:
		return "BETA"
	case RWire:
		return "RWIRE"
	case CWire:
		return "CWIRE"
	default:
		return fmt.Sprintf("ParamKind(%d)", int(k))
	}
}

// ParseKind resolves a parameter kind from its case-insensitive name
// ("vth", "beta", "rwire", "cwire") — the inverse of ParamKind.String.
func ParseKind(s string) (ParamKind, error) {
	for k := ParamKind(0); k < numKinds; k++ {
		if strings.EqualFold(s, k.String()) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("variation: unknown parameter kind %q (want vth, beta, rwire or cwire)", s)
}

// Device describes one varying element (a transistor or a wire segment).
type Device struct {
	// Name identifies the device in diagnostics.
	Name string
	// W, L are the device dimensions in µm (used by the Pelgrom model).
	W, L float64
	// X, Y is the layout position in µm (used by spatial correlation).
	X, Y float64
	// Kinds lists which parameters of this device vary.
	Kinds []ParamKind
}

// Spec configures a variation space.
type Spec struct {
	// Devices are the varying elements.
	Devices []Device
	// InterDieSigma is the standard deviation of the global (die-to-die)
	// component per parameter kind. Kinds with zero sigma have no global
	// factor.
	InterDieSigma map[ParamKind]float64
	// PelgromA is the local mismatch area coefficient per kind: the local
	// standard deviation of a device is A/√(W·L). Kinds with zero A have no
	// local factors.
	PelgromA map[ParamKind]float64
	// SpatialSigma is the standard deviation of the spatially-correlated
	// intra-die component per kind (zero disables it).
	SpatialSigma map[ParamKind]float64
	// GridNX, GridNY set the spatial factor grid (≥ 2 each when any
	// SpatialSigma is nonzero).
	GridNX, GridNY int
	// DieW, DieH are the die dimensions in µm for grid placement.
	DieW, DieH float64
}

// factorRef describes one additive contribution to a device parameter.
type factorRef struct {
	factor int     // index into ΔY
	weight float64 // contribution of one sigma of the factor
}

// Space is a built variation space: a sparse linear map from independent
// standard-normal factors ΔY to per-device parameter deltas.
type Space struct {
	spec Spec
	dim  int
	// contrib[d][k] lists the factors feeding parameter k of device d.
	contrib [][numKinds][]factorRef
	// names[f] documents factor f for reports.
	names []string
}

// Build compiles a Spec into a Space. The factor ordering is deterministic:
// global factors first, then spatial grid factors, then per-device local
// mismatch factors in device order.
func Build(spec Spec) (*Space, error) {
	if len(spec.Devices) == 0 {
		return nil, fmt.Errorf("variation: no devices in spec")
	}
	s := &Space{spec: spec, contrib: make([][numKinds][]factorRef, len(spec.Devices))}

	// Global inter-die factors.
	globalFactor := make(map[ParamKind]int)
	for k := ParamKind(0); k < numKinds; k++ {
		if spec.InterDieSigma[k] > 0 {
			globalFactor[k] = s.dim
			s.names = append(s.names, fmt.Sprintf("global/%s", k))
			s.dim++
		}
	}

	// Spatial grid factors.
	spatialBase := make(map[ParamKind]int)
	anySpatial := false
	for k := ParamKind(0); k < numKinds; k++ {
		if spec.SpatialSigma[k] > 0 {
			anySpatial = true
		}
	}
	if anySpatial {
		if spec.GridNX < 2 || spec.GridNY < 2 {
			return nil, fmt.Errorf("variation: spatial correlation needs GridNX, GridNY ≥ 2, got %dx%d", spec.GridNX, spec.GridNY)
		}
		if spec.DieW <= 0 || spec.DieH <= 0 {
			return nil, fmt.Errorf("variation: spatial correlation needs positive die dimensions")
		}
		for k := ParamKind(0); k < numKinds; k++ {
			if spec.SpatialSigma[k] > 0 {
				spatialBase[k] = s.dim
				for gy := 0; gy < spec.GridNY; gy++ {
					for gx := 0; gx < spec.GridNX; gx++ {
						s.names = append(s.names, fmt.Sprintf("spatial/%s[%d,%d]", k, gx, gy))
						s.dim++
					}
				}
			}
		}
	}

	// Wire contributions in place: assemble per-device refs.
	for di, dev := range spec.Devices {
		for _, k := range dev.Kinds {
			if k < 0 || k >= numKinds {
				return nil, fmt.Errorf("variation: device %s has invalid kind %d", dev.Name, k)
			}
			var refs []factorRef
			if sg := spec.InterDieSigma[k]; sg > 0 {
				refs = append(refs, factorRef{factor: globalFactor[k], weight: sg})
			}
			if sp := spec.SpatialSigma[k]; sp > 0 {
				w := bilinear(dev.X, dev.Y, spec)
				for _, bw := range w {
					refs = append(refs, factorRef{
						factor: spatialBase[k] + bw.cell,
						weight: sp * bw.w,
					})
				}
			}
			if a := spec.PelgromA[k]; a > 0 {
				if dev.W <= 0 || dev.L <= 0 {
					return nil, fmt.Errorf("variation: device %s needs positive W·L for mismatch", dev.Name)
				}
				sigma := a / math.Sqrt(dev.W*dev.L)
				refs = append(refs, factorRef{factor: s.dim, weight: sigma})
				s.names = append(s.names, fmt.Sprintf("local/%s/%s", dev.Name, k))
				s.dim++
			}
			s.contrib[di][k] = refs
		}
	}
	if s.dim == 0 {
		return nil, fmt.Errorf("variation: spec produces no random factors")
	}
	return s, nil
}

// cellWeight is one bilinear interpolation weight.
type cellWeight struct {
	cell int
	w    float64
}

// bilinear returns normalized grid weights for a position such that the
// variance of the interpolated field is 1 at every point (weights are
// L2-normalized), giving smooth spatial correlation between neighbors.
func bilinear(x, y float64, spec Spec) []cellWeight {
	nx, ny := spec.GridNX, spec.GridNY
	fx := clamp(x/spec.DieW, 0, 1) * float64(nx-1)
	fy := clamp(y/spec.DieH, 0, 1) * float64(ny-1)
	ix, iy := int(fx), int(fy)
	if ix >= nx-1 {
		ix = nx - 2
	}
	if iy >= ny-1 {
		iy = ny - 2
	}
	tx, ty := fx-float64(ix), fy-float64(iy)
	raw := []cellWeight{
		{cell: iy*nx + ix, w: (1 - tx) * (1 - ty)},
		{cell: iy*nx + ix + 1, w: tx * (1 - ty)},
		{cell: (iy+1)*nx + ix, w: (1 - tx) * ty},
		{cell: (iy+1)*nx + ix + 1, w: tx * ty},
	}
	// L2 normalization keeps the marginal variance exactly 1.
	norm := 0.0
	for _, c := range raw {
		norm += c.w * c.w
	}
	norm = math.Sqrt(norm)
	out := raw[:0]
	for _, c := range raw {
		if c.w != 0 {
			out = append(out, cellWeight{cell: c.cell, w: c.w / norm})
		}
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Dim returns the number of independent standard-normal factors N.
func (s *Space) Dim() int { return s.dim }

// FactorName documents factor f.
func (s *Space) FactorName(f int) string { return s.names[f] }

// NumDevices returns the device count.
func (s *Space) NumDevices() int { return len(s.spec.Devices) }

// Delta evaluates the parameter deviation of kind k for device d given the
// factor vector dy (length Dim).
func (s *Space) Delta(d int, k ParamKind, dy []float64) float64 {
	if len(dy) != s.dim {
		panic(fmt.Sprintf("variation: Delta factor vector length %d, want %d", len(dy), s.dim))
	}
	v := 0.0
	for _, r := range s.contrib[d][k] {
		v += r.weight * dy[r.factor]
	}
	return v
}

// Sigma returns the total standard deviation of parameter k of device d
// (the Euclidean norm of its factor weights).
func (s *Space) Sigma(d int, k ParamKind) float64 {
	v := 0.0
	for _, r := range s.contrib[d][k] {
		v += r.weight * r.weight
	}
	return math.Sqrt(v)
}

// FactorsOf lists the factor indices feeding parameter k of device d — the
// ground-truth sparsity structure the regression solvers are expected to
// discover.
func (s *Space) FactorsOf(d int, k ParamKind) []int {
	refs := s.contrib[d][k]
	out := make([]int, len(refs))
	for i, r := range refs {
		out[i] = r.factor
	}
	return out
}

// ParamRef names one (device, kind) entry of the parameter vector ΔX.
type ParamRef struct {
	Device int
	Kind   ParamKind
}

// Params enumerates every varying (device, kind) pair in deterministic
// order — the coordinate system of the implied covariance matrix.
func (s *Space) Params() []ParamRef {
	var out []ParamRef
	for d := range s.contrib {
		for k := ParamKind(0); k < numKinds; k++ {
			if len(s.contrib[d][k]) > 0 {
				out = append(out, ParamRef{Device: d, Kind: k})
			}
		}
	}
	return out
}

// ImpliedCovariance materializes the covariance matrix of the correlated
// parameter deltas ΔX the factor model implies: Σ = W·Wᵀ with W the sparse
// factor-weight matrix. This is the matrix the paper's flow would hand to
// PCA; diagonalizing it with stats.NewPCA recovers an equivalent independent
// factor model (verified in tests), which demonstrates that composing the
// factors directly — as this package does — is the same modeling step.
// The matrix is P×P over Params(); keep P moderate before calling.
func (s *Space) ImpliedCovariance() ([]ParamRef, [][]float64) {
	params := s.Params()
	p := len(params)
	cov := make([][]float64, p)
	for i := range cov {
		cov[i] = make([]float64, p)
	}
	for i := 0; i < p; i++ {
		ri := s.contrib[params[i].Device][params[i].Kind]
		for j := i; j < p; j++ {
			rj := s.contrib[params[j].Device][params[j].Kind]
			v := 0.0
			for _, a := range ri {
				for _, b := range rj {
					if a.factor == b.factor {
						v += a.weight * b.weight
					}
				}
			}
			cov[i][j] = v
			cov[j][i] = v
		}
	}
	return params, cov
}
