package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/pipeline"
	"repro/internal/registry"
)

// runJob is the worker-pool dispatch: fit, pipeline and refine jobs share
// one bounded queue and worker pool, so a single saturation policy governs
// them all.
func (s *Server) runJob(j *job) {
	switch j.kind {
	case JobKindPipeline:
		s.runPipeline(j)
	case JobKindRefine:
		s.runRefine(j)
	default:
		s.runFit(j)
	}
}

// handlePipelineSubmit validates and enqueues a netlist-in, model-out
// pipeline job. Spec-level validation (parameter kinds, measure shape,
// solver names) happens synchronously so obviously bad requests fail with
// 400; netlist-dependent validation (device names, nodes, analyses) happens
// in the worker's parse/space stages and lands the job in state failed.
func (s *Server) handlePipelineSubmit(w http.ResponseWriter, r *http.Request) {
	var req PipelineRequest
	raw, ok := decodeBodyRaw(w, r, &req)
	if !ok {
		return
	}
	if err := registry.ValidateName(req.Name); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// A pipeline publishes its model at the end, so the whole job runs on
	// the shard that owns the target name.
	if s.forwardOwned(w, r, "pipeline", req.Name, raw) {
		return
	}
	if req.Netlist == "" {
		writeErr(w, http.StatusBadRequest, "missing netlist")
		return
	}
	if err := req.Spec.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.TimeoutSeconds < 0 {
		writeErr(w, http.StatusBadRequest, "timeout_seconds=%g, need ≥ 0", req.TimeoutSeconds)
		return
	}
	idemKey, ok := idempotencyKey(w, r)
	if !ok {
		return
	}
	j, existing, err := s.jobs.submitPipeline(r.Context(), req, obs.RequestID(r.Context()), idemKey)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if existing {
		if j.kind != JobKindPipeline {
			writeErr(w, http.StatusConflict,
				"idempotency key %q was used by %s job %s", idemKey, j.kind, j.id)
			return
		}
		w.Header().Set(idemReplayedHeader, "true")
		writeJSON(w, http.StatusAccepted, PipelineResponse{JobID: j.id, State: j.status().State})
		return
	}
	s.metrics.countPipelineSubmitted()
	obs.Log(r.Context()).Info("pipeline job submitted",
		"job_id", j.id, "name", req.Name, "measure", req.Spec.Measure.String(),
		"mode", req.Spec.Sampling.Mode, "queue_depth", s.jobs.depth())
	writeJSON(w, http.StatusAccepted, PipelineResponse{JobID: j.id, State: JobPending})
}

// lookupPipelineJob resolves {id} to a pipeline job; fit job IDs 404 here
// so the two resources stay distinct even though they share an ID space.
func (s *Server) lookupPipelineJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	if s.redirectJob(w, r, id) {
		return nil, false
	}
	j, ok := s.jobs.get(id)
	if !ok || j.kind != JobKindPipeline {
		writeErr(w, http.StatusNotFound, "unknown pipeline %q", id)
		return nil, false
	}
	return j, true
}

// handlePipelineStatus reports a pipeline job's lifecycle, stage timeline
// and (when done) its result.
func (s *Server) handlePipelineStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupPipelineJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handlePipelineCancel cancels a pipeline job. A running job is
// interrupted through its context; the sampling worker pool and the solver
// inner loops both check it cooperatively, so cancellation stops simulator
// workers within one in-flight sample each and nothing is published.
func (s *Server) handlePipelineCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupPipelineJob(w, r)
	if !ok {
		return
	}
	j, _ = s.jobs.cancelJob(j.id, "canceled by client request")
	writeJSON(w, http.StatusOK, j.status())
}

// pipelineDeadline resolves the effective end-to-end deadline: the
// server-wide cap, tightened by the request's own timeout when smaller.
func (s *Server) pipelineDeadline(req *PipelineRequest) time.Duration {
	d := s.cfg.PipelineTimeout
	if req.TimeoutSeconds > 0 {
		if r := time.Duration(req.TimeoutSeconds * float64(time.Second)); r < d {
			d = r
		}
	}
	return d
}

// runPipeline executes one pipeline job end to end. Like runFit it must
// never let a failure escape the worker: panics anywhere in the pipeline
// (parser, simulator, solvers) are contained here, cancellation and
// deadline expiry land the job in canceled/timed_out, and everything else
// in failed.
func (s *Server) runPipeline(j *job) {
	if !j.begin() {
		return // canceled while queued
	}
	s.jobs.noteStarted(j)
	queueWait := j.started.Sub(j.submitted)
	s.metrics.observeQueueWait(queueWait)
	req := j.pipeReq
	logger := s.log.With("job_id", j.id, "request_id", j.requestID)
	logger.Info("pipeline job started",
		"name", req.Name, "measure", req.Spec.Measure.String(), "mode", req.Spec.Sampling.Mode,
		"recovery_attempt", j.attempt, "queue_wait_ms", float64(queueWait.Microseconds())/1000.0)
	s.metrics.pipelineActive(+1)
	defer s.metrics.pipelineActive(-1)
	ctx, cancelCtx := context.WithTimeout(j.ctx, s.pipelineDeadline(req))
	defer cancelCtx()
	// Re-attach the job span (j.ctx is rooted in Background); the pipeline
	// stages and solver trials open their own children under it.
	ctx = trace.ContextWithSpan(ctx, j.span)
	_, qwSpan := trace.Start(ctx, "queue.wait", trace.WithStart(j.submitted))
	qwSpan.End()

	finish := func(state, errMsg string, result *PipelineResult) {
		// Terminal metrics and the journal record ride on finishPipeline
		// via the queue's noteTerminal.
		if !j.finishPipeline(state, errMsg, result) {
			return
		}
		dur := j.finished.Sub(j.started)
		if state == JobDone {
			logger.Info("pipeline job done", "state", state, "duration_ms", float64(dur.Microseconds())/1000.0)
		} else {
			logger.Warn("pipeline job ended", "state", state, "error", errMsg,
				"duration_ms", float64(dur.Microseconds())/1000.0)
		}
	}
	fail := func(err error) {
		switch {
		case errors.Is(err, context.Canceled):
			finish(JobCanceled, err.Error(), nil)
		case errors.Is(err, context.DeadlineExceeded):
			finish(JobTimedOut, fmt.Sprintf("deadline %s exceeded: %v", s.pipelineDeadline(req), err), nil)
		default:
			finish(JobFailed, err.Error(), nil)
		}
	}
	defer func() {
		if rec := recover(); rec != nil {
			s.metrics.countPanic()
			logger.Error("pipeline panicked", "panic", rec, "stack", string(debug.Stack()))
			finish(JobFailed, fmt.Sprintf("internal: pipeline panicked: %v (incident logged)", rec), nil)
		}
	}()

	// Chaos hook: injected panics exercise the recovery above, injected
	// delays stall the job against its deadline.
	if err := faultinject.FireCtx(ctx, "server.pipeline"); err != nil {
		fail(err)
		return
	}
	if err := ctx.Err(); err != nil {
		fail(err)
		return
	}

	res, err := pipeline.Run(ctx, pipeline.Request{
		Name: req.Name, Netlist: req.Netlist, Spec: req.Spec,
	}, pipeline.Options{
		Registry:        s.registry,
		SimWorkers:      s.cfg.SimWorkers,
		FitWorkers:      s.cfg.FitParallel,
		FitObserver:     j.addEvent,
		RecoveryAttempt: j.attempt,
		Observer: func(ev pipeline.StageEvent) {
			info := PipelineStageInfo{
				Stage: ev.Stage, Seconds: ev.Seconds,
				SimSeconds: ev.SimSeconds, FitSeconds: ev.FitSeconds,
				Samples: ev.Samples, Detail: ev.Detail,
			}
			if ev.Err != nil {
				info.Error = ev.Err.Error()
				logger.Warn("pipeline stage failed", "stage", ev.Stage, "error", ev.Err,
					"seconds", ev.Seconds)
			} else {
				logger.Info("pipeline stage done", "stage", ev.Stage, "seconds", ev.Seconds,
					"sim_seconds", ev.SimSeconds, "fit_seconds", ev.FitSeconds,
					"samples", ev.Samples, "detail", ev.Detail)
				s.jobs.noteStage(j, ev.Stage)
			}
			j.addStage(info)
			s.metrics.observePipelineStage(ev.Stage, ev.Seconds, ev.Samples)
		},
	})
	if err != nil {
		fail(err)
		return
	}
	s.metrics.observeFit(time.Duration(res.FitSeconds*float64(time.Second)), finalIterations(j), j.traceID)
	finish(JobDone, "", &PipelineResult{
		Model:   modelInfo(res.Entry),
		Solver:  res.Solver,
		Lambda:  res.Lambda,
		CVError: res.CVError,
		Trials:  res.Trials,
		Samples: res.Samples, Rounds: res.Rounds, Converged: res.Converged,
		Dim: res.Dim, Metric: res.Metric,
		SimSeconds: res.SimSeconds, FitSeconds: res.FitSeconds,
	})
}
