package server

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/registry"
)

// clusterHarness runs an n-node rsmd shard ring in-process on real
// listeners — real ports, real cross-node HTTP, one faultinject namespace.
type clusterHarness struct {
	t     *testing.T
	urls  []string
	nodes []*harnessNode
}

// harnessNode is one ring member plus everything needed to kill and
// restart it on the same address (the crash/recovery tests' contract).
type harnessNode struct {
	url  string
	addr string
	dir  string // disk root for registry+journal; "" = in-memory, no journal
	srv  *Server
	cl   *cluster.Cluster
	hs   *http.Server
	ln   net.Listener
	done chan struct{}
}

// newClusterHarness reserves n listeners up front — every node must know
// the full peer list before any server exists — then boots each node.
// durable nodes persist registry and journal under per-node temp dirs, so
// a killed node can be restarted with its disk state intact.
func newClusterHarness(t *testing.T, n int, durable bool, cfg Config) *clusterHarness {
	t.Helper()
	h := &clusterHarness{t: t}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		node := &harnessNode{addr: ln.Addr().String(), url: "http://" + ln.Addr().String(), ln: ln}
		if durable {
			node.dir = t.TempDir()
		}
		h.nodes = append(h.nodes, node)
		h.urls = append(h.urls, node.url)
	}
	for i := range h.nodes {
		h.start(i, cfg)
	}
	t.Cleanup(func() {
		for i := range h.nodes {
			h.stop(i)
		}
	})
	return h
}

// start boots (or reboots) node i. The background replicator is disabled
// (negative sync interval): tests drive replication deterministically
// through syncAll.
func (h *clusterHarness) start(i int, cfg Config) {
	h.t.Helper()
	n := h.nodes[i]
	reg := registry.New()
	if n.dir != "" {
		var err error
		if reg, err = registry.Open(filepath.Join(n.dir, "models")); err != nil {
			h.t.Fatal(err)
		}
		cfg.JournalDir = filepath.Join(n.dir, "journal")
	}
	cl, err := cluster.New(reg, cluster.Config{
		Self: n.url, Peers: h.urls, SyncInterval: -1,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		h.t.Fatal(err)
	}
	cfg.Cluster = cl
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	srv, err := New(reg, cfg)
	if err != nil {
		h.t.Fatal(err)
	}
	if n.ln == nil {
		if n.ln, err = net.Listen("tcp", n.addr); err != nil {
			h.t.Fatalf("rebind %s: %v", n.addr, err)
		}
	}
	n.srv, n.cl, n.hs = srv, cl, &http.Server{Handler: srv}
	n.done = make(chan struct{})
	go func(hs *http.Server, ln net.Listener, done chan struct{}) {
		hs.Serve(ln) //nolint:errcheck // closed on kill
		close(done)
	}(n.hs, n.ln, n.done)
	n.ln = nil // consumed; a restart re-listens
}

// stop gracefully stops node i (no-op when already killed).
func (h *clusterHarness) stop(i int) {
	n := h.nodes[i]
	if n.hs == nil {
		return
	}
	n.hs.Close()
	<-n.done
	n.srv.Close()
	n.hs = nil
}

// kill simulates an unclean shard death mid-work: the listener drops and
// live jobs are canceled through an already-expired drain budget, leaving
// the journal exactly as a SIGKILL would — submitted/started, not
// finished.
func (h *clusterHarness) kill(i int) {
	h.t.Helper()
	n := h.nodes[i]
	n.hs.Close()
	<-n.done
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	_ = n.srv.Shutdown(ctx)
	cancel()
	n.hs = nil
}

// syncAll runs one manual replication round on every live shard, twice, so
// versions settle regardless of pull order. Dead peers degrade the round,
// they don't fail it.
func (h *clusterHarness) syncAll() {
	h.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for round := 0; round < 2; round++ {
		for _, n := range h.nodes {
			if n.hs == nil {
				continue
			}
			_ = n.cl.SyncOnce(ctx) // dead peers are expected in kill tests
		}
	}
}

// live returns a node that is still serving, for ring lookups.
func (h *clusterHarness) live() *harnessNode {
	for _, n := range h.nodes {
		if n.hs != nil {
			return n
		}
	}
	h.t.Fatal("no live node")
	return nil
}

// modelOwnedBy derives a model name the ring assigns to node i.
func (h *clusterHarness) modelOwnedBy(i int, prefix string) string {
	h.t.Helper()
	for k := 0; k < 10000; k++ {
		name := fmt.Sprintf("%s-%d", prefix, k)
		if _, url, _ := h.live().cl.Owner(name); url == h.nodes[i].url {
			return name
		}
	}
	h.t.Fatalf("no model name owned by node %d", i)
	return ""
}

// noRedirectGet fetches without following redirects, exposing the 307s the
// default client hides.
func noRedirectGet(t *testing.T, url string) *http.Response {
	t.Helper()
	c := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// predictWithMinVersion posts a predict pinned to a read-your-writes
// version floor and returns the raw response.
func predictWithMinVersion(t *testing.T, baseURL, name string, minVersion int) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/models/"+name+"/predict",
		strings.NewReader(`{"points":[[1,0,0],[0,1,0]]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if minVersion > 0 {
		req.Header.Set("X-RSM-Min-Version", fmt.Sprint(minVersion))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestClusterRoutingForwardsToOwner: model-keyed writes submitted to any
// node land on exactly the shard the ring assigns, and reads through any
// node reach them.
func TestClusterRoutingForwardsToOwner(t *testing.T) {
	h := newClusterHarness(t, 3, false, Config{})
	names := make([]string, 3)
	for i := range names {
		names[i] = h.modelOwnedBy(i, "route")
		uploadModel(t, h.nodes[0].url, names[i], 3)
	}
	for i, name := range names {
		for j, n := range h.nodes {
			_, stored := n.srv.registry.Get(name)
			if want := j == i; stored != want {
				t.Errorf("model %s on node %d: stored=%v, want %v (owner %d, pre-sync)", name, j, stored, want, i)
			}
		}
		// Reads route through any node.
		for _, n := range h.nodes {
			resp, err := http.Get(n.url + "/v1/models/" + name)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("info %s via %s: HTTP %d", name, n.url, resp.StatusCode)
			}
			if info := decode[ModelInfo](t, resp); info.Version != 1 {
				t.Fatalf("info %s: version %d, want 1", name, info.Version)
			}
		}
		resp := post(t, h.nodes[2].url+"/v1/models/"+name+"/predict", `{"points":[[1,0,0],[0,1,0]]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %s via node 2: HTTP %d", name, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// Node 0 proxied the two uploads it didn't own, and node 2 at least two
	// of the three predicts.
	if n := metricInt(t, h.nodes[0].url, "cluster", "forwards", "upload"); n != 2 {
		t.Errorf("node 0 upload forwards = %d, want 2", n)
	}
	if n := metricInt(t, h.nodes[2].url, "cluster", "forwards", "predict"); n < 2 {
		t.Errorf("node 2 predict forwards = %d, want >= 2", n)
	}
}

// TestClusterJobRoutingAndRedirect: a fit submitted through a non-owner
// carries the owning shard's node prefix in its job ID, and polls through
// any other node 307 home (followed transparently by default clients).
func TestClusterJobRoutingAndRedirect(t *testing.T) {
	h := newClusterHarness(t, 3, false, Config{})
	name := h.modelOwnedBy(1, "jobroute")
	id := submitChaosFit(t, h.nodes[0].url, name)
	wantPrefix := h.nodes[1].cl.SelfName() + "."
	if !strings.HasPrefix(id, wantPrefix) {
		t.Fatalf("job id %q lacks owner prefix %q", id, wantPrefix)
	}
	// Poll through node 2: the default client follows the 307 to node 1.
	st := waitTerminal(t, h.nodes[2].url, id, 30*time.Second)
	if st.State != JobDone {
		t.Fatalf("job %s state %s (%s), want done", id, st.State, st.Error)
	}
	// The redirect itself, observed raw.
	resp := noRedirectGet(t, h.nodes[2].url+"/v1/jobs/"+id)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("raw poll via node 2: HTTP %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != h.nodes[1].url+"/v1/jobs/"+id {
		t.Fatalf("Location %q, want %q", loc, h.nodes[1].url+"/v1/jobs/"+id)
	}
	if n := metricInt(t, h.nodes[2].url, "cluster", "redirects"); n < 1 {
		t.Errorf("node 2 redirects = %d, want >= 1", n)
	}
	// A prefix outside the ring falls through to the local 404, not a loop.
	resp, err := http.Get(h.nodes[0].url + "/v1/jobs/zz.job-000001")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown-prefix poll: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestClusterReadYourWrites: a client that pins the version its publish
// returned never reads back older state — the floor forwards to the owner
// until the replica catches up, then replica reads serve locally, even
// with the owner dead.
func TestClusterReadYourWrites(t *testing.T) {
	h := newClusterHarness(t, 3, false, Config{})
	owner := 1
	name := h.modelOwnedBy(owner, "ryw")
	proxy := h.nodes[2]
	uploadModel(t, proxy.url, name, 3) // forwarded to the owner

	// Before any sync the replica lacks v1: the floor must forward.
	resp := predictWithMinVersion(t, proxy.url, name, 1)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-sync pinned predict: HTTP %d", resp.StatusCode)
	}
	if pr := decode[PredictResponse](t, resp); pr.Version != 1 {
		t.Fatalf("pre-sync pinned predict version %d, want 1", pr.Version)
	}
	if n := metricInt(t, proxy.url, "cluster", "replica_reads"); n != 0 {
		t.Fatalf("replica_reads before sync = %d, want 0", n)
	}

	h.syncAll()

	// After sync the floor is satisfied locally.
	resp = predictWithMinVersion(t, proxy.url, name, 1)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-sync pinned predict: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()
	if n := metricInt(t, proxy.url, "cluster", "replica_reads"); n != 1 {
		t.Fatalf("replica_reads after sync = %d, want 1", n)
	}

	// Kill the owner: pinned reads keep serving from the replica; unpinned
	// reads (which must see the owner's latest) fail fast with Retry-After.
	h.kill(owner)
	resp = predictWithMinVersion(t, proxy.url, name, 1)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner-down pinned predict: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = predictWithMinVersion(t, proxy.url, name, 0)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("owner-down unpinned predict: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("owner-down 503 carries no Retry-After")
	}
}

// TestClusterDeletePropagates: a delete through any node lands on the
// owner, tombstones the name, and the next sync round removes the replicas
// instead of resurrecting the model; a re-publish resumes past the dead
// version numbers.
func TestClusterDeletePropagates(t *testing.T) {
	h := newClusterHarness(t, 3, false, Config{})
	owner := 0
	name := h.modelOwnedBy(owner, "del")
	uploadModel(t, h.nodes[1].url, name, 3)
	h.syncAll()
	for i, n := range h.nodes {
		if _, ok := n.srv.registry.GetVersion(name, 1); !ok {
			t.Fatalf("node %d lacks %s@v1 after sync", i, name)
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, h.nodes[2].url+"/v1/models/"+name, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete via node 2: HTTP %d", resp.StatusCode)
	}
	if dr := decode[DeleteResponse](t, resp); !dr.Deleted || dr.Name != name {
		t.Fatalf("delete response %+v", dr)
	}
	if _, ok := h.nodes[owner].srv.registry.Get(name); ok {
		t.Fatal("owner still stores the deleted model")
	}

	h.syncAll()
	for i, n := range h.nodes {
		if _, ok := n.srv.registry.Get(name); ok {
			t.Fatalf("node %d resurrected deleted model %s after sync", i, name)
		}
	}

	// Re-publish: version numbers resume past the tombstone, cluster-wide.
	uploadModel(t, h.nodes[2].url, name, 3)
	resp, err = http.Get(h.nodes[1].url + "/v1/models/" + name)
	if err != nil {
		t.Fatal(err)
	}
	if info := decode[ModelInfo](t, resp); info.Version != 2 {
		t.Fatalf("re-published version %d, want 2 (past tombstone)", info.Version)
	}
}

// TestChaosClusterShardKillIsolated is the cluster chaos contract: killing
// one shard mid-fit costs exactly that shard's models their availability —
// other shards keep serving through any node, the proxy answers 503 +
// Retry-After for the dead shard's models only, and the journaled fit
// replays to done when the shard comes back. Zero jobs lost, zero errors
// on non-owned shards.
func TestChaosClusterShardKillIsolated(t *testing.T) {
	armFaults(t, "server.fit=delay:60s")
	h := newClusterHarness(t, 3, true, Config{FitWorkers: 1, RequestTimeout: 5 * time.Second})
	victim := 2
	victimModel := h.modelOwnedBy(victim, "victim")
	survivorModel := h.modelOwnedBy(0, "survivor")
	uploadModel(t, h.nodes[0].url, victimModel, 3)
	uploadModel(t, h.nodes[0].url, survivorModel, 3)

	// A fit owned by the victim, submitted through node 0, stalled by the
	// injected 60s delay so the kill lands mid-run.
	fitName := h.modelOwnedBy(victim, "victimfit")
	id := submitChaosFit(t, h.nodes[0].url, fitName)
	if want := h.nodes[victim].cl.SelfName() + "."; !strings.HasPrefix(id, want) {
		t.Fatalf("fit routed to %q, want prefix %q", id, want)
	}
	waitRunning(t, h.nodes[0].url, id)

	h.kill(victim)

	// The dead shard's models 503 with Retry-After through the proxy...
	resp := post(t, h.nodes[0].url+"/v1/models/"+victimModel+"/predict", `{"points":[[1,0,0]]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dead-shard predict: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("dead-shard 503 carries no Retry-After")
	}
	resp.Body.Close()
	// ...while every live shard's models keep serving via every live node.
	for _, n := range []*harnessNode{h.nodes[0], h.nodes[1]} {
		assertPredicts(t, n.url, survivorModel)
		assertHealthy(t, n.url)
	}

	// Restart: the journal replays the in-flight fit under its original ID
	// and runs it to done; polls through node 0 follow the redirect home.
	faultinject.Reset()
	h.start(victim, Config{FitWorkers: 1, RequestTimeout: 5 * time.Second})
	st := waitTerminal(t, h.nodes[0].url, id, 30*time.Second)
	if st.State != JobDone {
		t.Fatalf("replayed fit %s state %s (%s), want done", id, st.State, st.Error)
	}
	if st.RecoveryAttempt == 0 {
		t.Error("replayed fit reports zero recovery attempts")
	}
	// Node 0 marked the victim down while it was dead; forwards resume once
	// the backoff window (capped at 5s) expires.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp := post(t, h.nodes[0].url+"/v1/models/"+victimModel+"/predict", `{"points":[[1,0,0]]}`)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("revived-shard predict still HTTP %d after backoff window", resp.StatusCode)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
