package server

import (
	"context"
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// trace is the outermost per-route middleware: it assigns or honors the
// X-Request-Id header, stamps it on the response and on a request-scoped
// slog.Logger carried in the context, records the route's latency and
// status in /metrics, and emits one access-log line per request (Debug for
// success, Warn for client errors, Error for server errors). Handlers and
// inner middleware retrieve the logger with obs.Log(r.Context()).
func (s *Server) trace(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := obs.SanitizeRequestID(r.Header.Get(obs.RequestIDHeader))
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set(obs.RequestIDHeader, id)

		logger := s.log.With("request_id", id, "route", route)
		ctx := r.Context()
		ctx, span := s.traces.StartRoot(ctx, route, trace.WithAttrs(
			trace.String("method", r.Method), trace.String("path", r.URL.Path),
			trace.String("request_id", id)))
		if span != nil {
			logger = logger.With("trace_id", span.TraceID())
		}
		ctx = obs.WithRequestID(obs.WithLogger(ctx, logger), id)
		r = r.WithContext(ctx)

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		elapsed := time.Since(start)
		s.metrics.observe(route, rec.status, elapsed, span.TraceID())
		span.SetAttr("status", rec.status)
		if rec.status >= 500 {
			span.SetStatus(trace.StatusError, http.StatusText(rec.status))
		}
		span.End()

		level := slogLevelForStatus(rec.status)
		if slow := s.traces.SlowThreshold(); slow > 0 && elapsed >= slow && level < slog.LevelWarn {
			// Slow-request escalation: surface the trace ID at Warn so the
			// dashboard → trace → log-line path works without Debug logs.
			level = slog.LevelWarn
		}
		logger.Log(ctx, level, "request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration_ms", float64(elapsed.Microseconds())/1000.0,
		)
	}
}

// slogLevelForStatus maps a response status to an access-log level.
func slogLevelForStatus(status int) slog.Level {
	switch {
	case status >= 500:
		return slog.LevelError
	case status >= 400:
		return slog.LevelWarn
	default:
		return slog.LevelDebug
	}
}

// protect wraps a handler in the per-route robustness envelope: a request
// deadline on the context (handlers and faultinject hooks observe it through
// r.Context()) and panic isolation. A recovered panic becomes a 500 with the
// stack logged and the incident counted in /metrics — never a crashed
// daemon. protect sits inside trace so the synthesized 500 is visible in the
// route's error counters and the panic log line carries the request ID.
func (s *Server) protect(route string, h http.HandlerFunc) http.HandlerFunc {
	return s.protectWith(route, h, true)
}

// protectStreaming is protect without the request deadline: long-lived
// streaming responses (SSE job tailing) must be allowed to outlive the
// RequestTimeout that bounds ordinary request/response handlers. Panic
// isolation still applies.
func (s *Server) protectStreaming(route string, h http.HandlerFunc) http.HandlerFunc {
	return s.protectWith(route, h, false)
}

func (s *Server) protectWith(route string, h http.HandlerFunc, deadline bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if deadline && s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler { //nolint:errorlint // sentinel, compared by identity
				panic(rec) // net/http's own abort protocol; not an incident
			}
			s.metrics.countPanic()
			obs.Log(r.Context()).Error("panic recovered",
				"where", route, "panic", rec, "stack", string(debug.Stack()))
			// Best-effort: if the handler already wrote a body this write
			// fails silently, but the connection still terminates cleanly.
			writeErr(w, http.StatusInternalServerError, "internal error: handler panicked (incident logged)")
		}()
		h(w, r)
	}
}

// shed rejects the request with 503 + Retry-After when the daemon is
// saturated, so interactive traffic fails fast instead of queuing behind a
// full fit backlog. Returns true when the request was shed.
func (s *Server) shed(w http.ResponseWriter) bool {
	if !s.jobs.saturated() {
		return false
	}
	s.metrics.countShed()
	w.Header().Set("Retry-After", "1")
	writeErr(w, http.StatusServiceUnavailable, "overloaded: fit queue saturated, retry shortly")
	return true
}
