package server

import (
	"context"
	"log"
	"net/http"
	"runtime/debug"
)

// protect wraps a handler in the per-route robustness envelope: a request
// deadline on the context (handlers and faultinject hooks observe it through
// r.Context()) and panic isolation. A recovered panic becomes a 500 with the
// stack logged and the incident counted in /metrics — never a crashed
// daemon. protect sits inside metrics.instrument so the synthesized 500 is
// visible in the route's error counters.
func (s *Server) protect(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler { //nolint:errorlint // sentinel, compared by identity
				panic(rec) // net/http's own abort protocol; not an incident
			}
			s.metrics.countPanic()
			log.Printf("server: panic serving %s: %v\n%s", route, rec, debug.Stack())
			// Best-effort: if the handler already wrote a body this write
			// fails silently, but the connection still terminates cleanly.
			writeErr(w, http.StatusInternalServerError, "internal error: handler panicked (incident logged)")
		}()
		h(w, r)
	}
}

// shed rejects the request with 503 + Retry-After when the daemon is
// saturated, so interactive traffic fails fast instead of queuing behind a
// full fit backlog. Returns true when the request was shed.
func (s *Server) shed(w http.ResponseWriter) bool {
	if !s.jobs.saturated() {
		return false
	}
	s.metrics.countShed()
	w.Header().Set("Retry-After", "1")
	writeErr(w, http.StatusServiceUnavailable, "overloaded: fit queue saturated, retry shortly")
	return true
}
