package server

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs/trace"
)

// microBatcher coalesces concurrent small predict requests for the same
// model version into one compiled-predictor evaluation. Callers enqueue
// their row group and block; the first arrival for a key opens a window
// timer, and the group flushes when the window elapses or the pending point
// count reaches maxPoints, whichever is first. The flush evaluates every
// still-live caller's rows in a single Predict call and demuxes the values
// back per caller.
//
// Deadlines and cancellation propagate per row group, not per batch: a
// caller whose context dies while queued (or while the batch is being
// evaluated) gets its context error, and only that caller — the other row
// groups in the same flush still receive their values. A single request
// already carrying ≥ maxPoints rows bypasses coalescing entirely; it has
// nothing to amortize.
type microBatcher struct {
	window    time.Duration
	maxPoints int
	workers   int                     // Predict fan-out per flush
	observe   func(calls, points int) // metrics hook, called once per executed flush

	mu      sync.Mutex
	pending map[string]*batchGroup
}

// batchCall is one caller's row group and its result slot. values/err are
// written exactly once by the flusher before done is closed; a caller that
// abandons the wait (context death) simply never reads them.
type batchCall struct {
	ctx    context.Context
	points [][]float64
	done   chan struct{}

	values    []float64
	coalesced int // callers evaluated together in the flush that served this
	err       error
}

// batchGroup accumulates the pending calls for one model version.
type batchGroup struct {
	key     string
	cp      *core.CompiledPredictor
	calls   []*batchCall
	points  int
	timer   *time.Timer
	flushed bool
}

// newMicroBatcher returns a batcher, or nil when window ≤ 0 (disabled —
// callers must treat a nil batcher as the direct path).
func newMicroBatcher(window time.Duration, maxPoints, workers int, observe func(calls, points int)) *microBatcher {
	if window <= 0 {
		return nil
	}
	if maxPoints < 1 {
		maxPoints = 1
	}
	return &microBatcher{
		window:    window,
		maxPoints: maxPoints,
		workers:   workers,
		observe:   observe,
		pending:   make(map[string]*batchGroup),
	}
}

// predict runs one caller's row group through the batcher, blocking until
// its flush completes or ctx dies. It returns the values aligned with
// points and the number of callers coalesced into the evaluation (1 when
// the group ran alone or bypassed coalescing).
func (b *microBatcher) predict(ctx context.Context, key string, cp *core.CompiledPredictor, points [][]float64) (values []float64, coalesced int, err error) {
	_, span := trace.Start(ctx, "predict.coalesce",
		trace.WithAttrs(trace.Int("points", len(points))))
	defer func() {
		span.SetAttr("coalesced", coalesced)
		span.EndErr(err)
	}()
	if len(points) >= b.maxPoints {
		values, err := cp.Predict(nil, points, b.workers)
		return values, 1, err
	}
	call := &batchCall{ctx: ctx, points: points, done: make(chan struct{})}

	b.mu.Lock()
	g := b.pending[key]
	if g == nil {
		g = &batchGroup{key: key, cp: cp}
		b.pending[key] = g
		g.timer = time.AfterFunc(b.window, func() { b.flush(g) })
	}
	g.calls = append(g.calls, call)
	g.points += len(points)
	if g.points >= b.maxPoints {
		// Size-triggered flush: run it on this caller's goroutine — it is
		// about to block on the result anyway.
		b.detachLocked(g)
		b.mu.Unlock()
		b.run(g)
	} else {
		b.mu.Unlock()
	}

	select {
	case <-call.done:
		return call.values, call.coalesced, call.err
	case <-ctx.Done():
		// Abandon the wait; the flusher will skip (or discard) this group.
		return nil, 0, ctx.Err()
	}
}

// detachLocked removes g from the pending map and claims the flush. The
// caller must hold b.mu and must call run(g) iff g was not yet flushed.
func (b *microBatcher) detachLocked(g *batchGroup) {
	if b.pending[g.key] == g {
		delete(b.pending, g.key)
	}
	g.flushed = true
	if g.timer != nil {
		g.timer.Stop()
	}
}

// flush is the window-timer path into run.
func (b *microBatcher) flush(g *batchGroup) {
	b.mu.Lock()
	if g.flushed {
		b.mu.Unlock()
		return
	}
	b.detachLocked(g)
	b.mu.Unlock()
	b.run(g)
}

// run executes one flushed group: dead callers get their context error, the
// live row groups are concatenated into a single evaluation, and the values
// are demuxed back per caller.
func (b *microBatcher) run(g *batchGroup) {
	live := g.calls[:0]
	for _, c := range g.calls {
		if err := c.ctx.Err(); err != nil {
			c.err = err
			close(c.done)
			continue
		}
		live = append(live, c)
	}
	if len(live) == 0 {
		return
	}
	total := 0
	for _, c := range live {
		total += len(c.points)
	}
	all := make([][]float64, 0, total)
	for _, c := range live {
		all = append(all, c.points...)
	}
	values, err := g.cp.Predict(nil, all, b.workers)
	if err == nil && b.observe != nil {
		b.observe(len(live), total)
	}
	off := 0
	for _, c := range live {
		n := len(c.points)
		switch {
		case err != nil:
			c.err = err
		case c.ctx.Err() != nil:
			// The caller's deadline expired while the batch evaluated; its
			// values are stale to it, and only it.
			c.err = c.ctx.Err()
		default:
			c.values = values[off : off+n : off+n]
			c.coalesced = len(live)
		}
		off += n
		close(c.done)
	}
}
