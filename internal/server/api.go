package server

import (
	"encoding/json"
	"time"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/pipeline"
)

// This file defines the rsmd wire protocol: the JSON request and response
// bodies of every /v1 endpoint. The rsm.Client speaks exactly these types.

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// UploadRequest publishes a pre-fitted model (POST /v1/models). Model is a
// serialized envelope as written by core.WriteEnvelope / rsmfit -out; it
// must carry a basis descriptor.
type UploadRequest struct {
	Name  string          `json:"name"`
	Model json.RawMessage `json:"model"`
}

// ModelInfo summarizes one stored model version (GET /v1/models,
// GET /v1/models/{name}, upload responses).
type ModelInfo struct {
	Name       string           `json:"name"`
	Version    int              `json:"version"`
	M          int              `json:"m"`
	NNZ        int              `json:"nnz"`
	Basis      basis.Descriptor `json:"basis"`
	Provenance core.Provenance  `json:"provenance,omitempty"`
	CreatedAt  time.Time        `json:"created_at"`
}

// ListResponse is the body of GET /v1/models.
type ListResponse struct {
	Models []ModelInfo `json:"models"`
}

// DeleteResponse acknowledges DELETE /v1/models/{name}: every stored
// version of the model was removed and a tombstone recorded, so cluster
// replicas converge to the removal instead of resurrecting it.
type DeleteResponse struct {
	Name    string `json:"name"`
	Deleted bool   `json:"deleted"`
}

// FitRequest submits an asynchronous fitting job (POST /v1/fit). The
// dataset is either inline CSV (the mcgen format: header y0..yN-1 then
// metric columns) or explicit Points plus a single response column Values.
type FitRequest struct {
	// Name registers the fitted model under this registry name.
	Name string `json:"name"`
	// Solver is omp|lar|lasso|star|cd|stomp (default omp).
	Solver string `json:"solver,omitempty"`
	// Degree of the Hermite dictionary: 1 (linear), 2 (quadratic) or
	// higher total degrees. Default 1.
	Degree int `json:"degree,omitempty"`
	// Folds is the cross-validation fold count (default 4).
	Folds int `json:"folds,omitempty"`
	// MaxLambda bounds the selected sparsity (default 50).
	MaxLambda int `json:"max_lambda,omitempty"`
	// CSV is the dataset in mcgen CSV form; Metric picks the response
	// column (default: the first metric column).
	CSV    string `json:"csv,omitempty"`
	Metric string `json:"metric,omitempty"`
	// Points/Values are the explicit-dataset alternative to CSV.
	Points [][]float64 `json:"points,omitempty"`
	Values []float64   `json:"values,omitempty"`
	// TimeoutSeconds caps this job's fit time; the effective deadline is
	// min(TimeoutSeconds, server FitTimeout). Zero means the server cap
	// alone. A job past its deadline lands in state timed_out.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// FitResponse acknowledges an accepted fit job (202).
type FitResponse struct {
	JobID string `json:"job_id"`
	State string `json:"state"`
}

// FitResult is the outcome of a completed fit job.
type FitResult struct {
	Model   ModelInfo `json:"model"`
	Lambda  int       `json:"lambda"`
	CVError float64   `json:"cv_error"`
	// FitSeconds is the wall-clock fitting time.
	FitSeconds float64 `json:"fit_seconds"`
}

// FitEventInfo is one solver telemetry event in a job's timeline: a path
// iteration (or batch admission) observed inside the fit. Stage labels the
// cross-validation phase ("cv-fold-N" or "final"); Basis is the dictionary
// index the greedy solvers chose, or -1 for batch solvers (StOMP, CD) that
// admit several bases per step.
type FitEventInfo struct {
	Stage          string  `json:"stage"`
	Iter           int     `json:"iter"`
	Basis          int     `json:"basis"`
	Active         int     `json:"active"`
	Residual       float64 `json:"residual"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// ParallelWorkers is the effective goroutine count of the engine's
	// correlation sweep for this fit (1 = serial).
	ParallelWorkers int `json:"parallel_workers,omitempty"`
}

// JobStatus reports a job's lifecycle (GET /v1/jobs/{id},
// GET /v1/pipelines/{id}). RequestID is the trace ID of the submitting
// request; Events is the solver telemetry timeline (populated once the job
// starts running, capped server-side). Kind distinguishes plain fit jobs
// from pipeline jobs; pipeline jobs additionally carry the per-stage
// timeline (Stages) and, when done, the pipeline result.
type JobStatus struct {
	ID        string     `json:"id"`
	Kind      string     `json:"kind,omitempty"` // "fit" | "pipeline" | "refine"
	RequestID string     `json:"request_id,omitempty"`
	TraceID   string     `json:"trace_id,omitempty"`
	State     string     `json:"state"` // pending | running | done | failed | canceled | timed_out
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
	// RecoveryAttempt counts how many times this job had already been
	// started by a previous daemon process before crash recovery re-ran it
	// (0 for a job on its first life).
	RecoveryAttempt int                 `json:"recovery_attempt,omitempty"`
	Result          *FitResult          `json:"result,omitempty"`
	Events          []FitEventInfo      `json:"events,omitempty"`
	Stages          []PipelineStageInfo `json:"stages,omitempty"`
	Pipeline        *PipelineResult     `json:"pipeline,omitempty"`
	Refine          *RefineResult       `json:"refine,omitempty"`
}

// RefineRequest submits an incremental refit of a stored model
// (POST /v1/models/{name}/refine): new samples are appended to the training
// set persisted in the model's fit checkpoint and the path fit is continued
// warm instead of restarted cold. The refined model is published as a new
// registry version only when its cross-validation error improves on the
// parent's; otherwise the job completes with outcome "rejected" and the
// parent stays the served version.
type RefineRequest struct {
	// Name is populated by the server from the URL path; a body value is
	// ignored. It rides in the struct so the journaled job payload is
	// self-contained across crash recovery.
	Name string `json:"name,omitempty"`
	// CSV carries the new samples in mcgen CSV form; Points/Values are the
	// explicit alternative. The response metric is pinned by the parent fit.
	CSV    string      `json:"csv,omitempty"`
	Points [][]float64 `json:"points,omitempty"`
	Values []float64   `json:"values,omitempty"`
	// Folds and MaxLambda default to the parent fit's settings.
	Folds     int `json:"folds,omitempty"`
	MaxLambda int `json:"max_lambda,omitempty"`
	// TimeoutSeconds caps this job's fit time like FitRequest's.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// RefineResponse acknowledges an accepted refine job (202).
type RefineResponse struct {
	JobID string `json:"job_id"`
	State string `json:"state"`
}

// RefineResult is the outcome of a completed refine job. Outcome "improved"
// means a new version was published (Model describes it); "rejected" means
// the refit's CV error did not beat the parent's and nothing was published
// (Model describes the still-served parent).
type RefineResult struct {
	Outcome string    `json:"outcome"` // "improved" | "rejected"
	Model   ModelInfo `json:"model"`
	// ParentVersion/ParentCVError identify the version the refit continued
	// from and the error bar it had to beat.
	ParentVersion int     `json:"parent_version"`
	ParentCVError float64 `json:"parent_cv_error"`
	// CVError and Lambda describe the refit candidate (whether published or
	// not); Samples counts the combined training set, AppendedSamples the new
	// rows this request contributed.
	CVError         float64 `json:"cv_error"`
	Lambda          int     `json:"lambda"`
	Samples         int     `json:"samples"`
	AppendedSamples int     `json:"appended_samples"`
	// Warm reports whether the fit continued from the parent's state (warm
	// replay and/or checkpoint resume) rather than refitting cold.
	Warm bool `json:"warm"`
	// FitSeconds is the wall-clock refit time; CheckpointBytes the size of
	// the new version's persisted fit checkpoint (0 when none was stored).
	FitSeconds      float64 `json:"fit_seconds"`
	CheckpointBytes int     `json:"checkpoint_bytes,omitempty"`
}

// PipelineRequest submits an asynchronous netlist-in, model-out pipeline
// job (POST /v1/pipelines): the SPICE deck text plus the pipeline spec
// (variation, measure, sampling, fit).
type PipelineRequest struct {
	// Name registers the fitted model under this registry name.
	Name string `json:"name"`
	// Netlist is the SPICE deck text.
	Netlist string `json:"netlist"`
	// Spec configures variation, measurement, sampling and fitting.
	Spec pipeline.Spec `json:"spec"`
	// TimeoutSeconds caps this job end to end; the effective deadline is
	// min(TimeoutSeconds, server PipelineTimeout).
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// PipelineResponse acknowledges an accepted pipeline job (202).
type PipelineResponse struct {
	JobID string `json:"job_id"`
	State string `json:"state"`
}

// PipelineStageInfo is one completed (or failed) stage in a pipeline job's
// timeline, with the stage's cost split: wall-clock seconds, and within
// them simulation vs regression seconds — the paper's cost-table view.
type PipelineStageInfo struct {
	Stage      string  `json:"stage"`
	Seconds    float64 `json:"seconds"`
	SimSeconds float64 `json:"sim_seconds,omitempty"`
	FitSeconds float64 `json:"fit_seconds,omitempty"`
	// Samples is the cumulative simulated sample count after the stage.
	Samples int    `json:"samples,omitempty"`
	Detail  string `json:"detail,omitempty"`
	Error   string `json:"error,omitempty"`
}

// PipelineResult is the outcome of a completed pipeline job.
type PipelineResult struct {
	Model   ModelInfo `json:"model"`
	Solver  string    `json:"solver"`
	Lambda  int       `json:"lambda"`
	CVError float64   `json:"cv_error"`
	// Trials lists every solver tried in the CV selection, winner included.
	Trials []pipeline.Trial `json:"trials,omitempty"`
	// Samples, Rounds and Converged describe the sampling loop.
	Samples   int  `json:"samples"`
	Rounds    int  `json:"rounds,omitempty"`
	Converged bool `json:"converged,omitempty"`
	// Dim is the variation-space factor count; Metric names the response.
	Dim    int    `json:"dim"`
	Metric string `json:"metric"`
	// SimSeconds and FitSeconds split the job's total cost.
	SimSeconds float64 `json:"sim_seconds"`
	FitSeconds float64 `json:"fit_seconds"`
}

// PredictRequest evaluates the model at a batch of points
// (POST /v1/models/{name}/predict).
type PredictRequest struct {
	Points [][]float64 `json:"points"`
}

// PredictResponse carries the batched model values, aligned with the
// request points. Coalesced reports how many concurrent requests the
// micro-batcher evaluated together with this one (1 = evaluated alone,
// which is always the case when batching is disabled).
type PredictResponse struct {
	Model     string    `json:"model"`
	Version   int       `json:"version"`
	Values    []float64 `json:"values"`
	Coalesced int       `json:"coalesced,omitempty"`
}

// YieldRequest estimates spec-threshold parametric yield and quantiles by
// virtual Monte Carlo over the stored model (POST /v1/models/{name}/yield).
// Low/High bound the acceptance window (nil = unbounded on that side); when
// both are nil no yield is computed and only moments/quantiles are
// returned.
type YieldRequest struct {
	Low       *float64  `json:"low,omitempty"`
	High      *float64  `json:"high,omitempty"`
	N         int       `json:"n,omitempty"`    // virtual samples (default 100000)
	Seed      int64     `json:"seed,omitempty"` // RNG seed (default 1)
	Quantiles []float64 `json:"quantiles,omitempty"`
}

// YieldResponse reports closed-form moments plus the requested Monte Carlo
// estimates. Quantiles is aligned with the request's Quantiles.
type YieldResponse struct {
	Model     string    `json:"model"`
	Version   int       `json:"version"`
	Mean      float64   `json:"mean"`
	Std       float64   `json:"std"`
	N         int       `json:"n"`
	Yield     *float64  `json:"yield,omitempty"`
	Quantiles []float64 `json:"quantiles,omitempty"`
}

// HealthResponse is the body of GET /healthz. Journal reports the durable
// job journal: "ok", "degraded" (appends failing, async submits shed) or
// "disabled" (no -journal-dir).
type HealthResponse struct {
	Status        string  `json:"status"`
	Version       string  `json:"version,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Models        int     `json:"models"`
	Journal       string  `json:"journal,omitempty"`
}

// JobEvent types: which leg of a job's live timeline an event belongs to.
const (
	// JobEventState marks a lifecycle transition (pending, running, done…).
	JobEventState = "state"
	// JobEventFit carries one solver telemetry event.
	JobEventFit = "fit"
	// JobEventStage carries one completed (or failed) pipeline stage.
	JobEventStage = "stage"
)

// JobEvent is one entry in a job's live event timeline
// (GET /v1/jobs/{id}/events, and the SSE stream with ?stream=1). Seq is a
// per-job monotonically increasing sequence number — SSE clients resume from
// it. Exactly one of State/Fit/Stage is populated, per Type.
type JobEvent struct {
	Seq   int                `json:"seq"`
	Type  string             `json:"type"` // "state" | "fit" | "stage"
	Time  time.Time          `json:"time"`
	State string             `json:"state,omitempty"`
	Error string             `json:"error,omitempty"`
	Fit   *FitEventInfo      `json:"fit,omitempty"`
	Stage *PipelineStageInfo `json:"stage,omitempty"`
}

// JobEventList is the non-streaming body of GET /v1/jobs/{id}/events: the
// retained timeline snapshot plus the job's current state.
type JobEventList struct {
	JobID  string     `json:"job_id"`
	State  string     `json:"state"`
	Events []JobEvent `json:"events"`
}

// TraceSummary is one trace in GET /v1/traces: the root span's identity and
// aggregate status, without the span tree.
type TraceSummary struct {
	TraceID         string    `json:"trace_id"`
	Name            string    `json:"name"`
	Status          string    `json:"status"`
	Start           time.Time `json:"start"`
	DurationSeconds float64   `json:"duration_seconds"`
	Spans           int       `json:"spans"`
	Dropped         int       `json:"dropped,omitempty"`
	Complete        bool      `json:"complete"`
}

// TraceListResponse is the body of GET /v1/traces.
type TraceListResponse struct {
	Traces []TraceSummary `json:"traces"`
}

// SpanNode is one span plus its children in an assembled trace tree
// (GET /v1/traces/{id}, GET /v1/jobs/{id}/trace).
type SpanNode struct {
	SpanID          string         `json:"span_id"`
	ParentID        string         `json:"parent_id,omitempty"`
	Name            string         `json:"name"`
	Start           time.Time      `json:"start"`
	DurationSeconds float64        `json:"duration_seconds"`
	Status          string         `json:"status"`
	Error           string         `json:"error,omitempty"`
	Attrs           map[string]any `json:"attrs,omitempty"`
	Children        []*SpanNode    `json:"children,omitempty"`
}

// TraceResponse is the assembled span tree of one trace.
type TraceResponse struct {
	TraceID         string    `json:"trace_id"`
	Name            string    `json:"name"`
	Status          string    `json:"status"`
	Start           time.Time `json:"start"`
	DurationSeconds float64   `json:"duration_seconds"`
	Complete        bool      `json:"complete"`
	Dropped         int       `json:"dropped,omitempty"`
	Spans           int       `json:"spans"`
	Depth           int       `json:"depth"`
	Root            *SpanNode `json:"root"`
}
