package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// getJSON drives a GET and decodes the body into T, asserting the status.
func getJSON[T any](t *testing.T, url string, wantStatus int) T {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET %s: HTTP %d (%s), want %d", url, resp.StatusCode, body, wantStatus)
	}
	return decode[T](t, resp)
}

// scrapeText fetches the Prometheus text exposition.
func scrapeText(t *testing.T, baseURL string) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestTracingDisabled(t *testing.T) {
	_, hs := newTestServer(t, Config{TraceStoreSize: -1})
	for _, path := range []string{"/v1/traces", "/v1/traces/deadbeef", "/v1/jobs/job-000001/trace"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s with tracing disabled: HTTP %d, want 404", path, resp.StatusCode)
		}
	}
	// The JSON metrics tree must report tracing off, not lie with zeros.
	metrics := getJSON[map[string]any](t, hs.URL+"/metrics", http.StatusOK)
	traces, ok := metrics["traces"].(map[string]any)
	if !ok {
		t.Fatalf("metrics tree has no traces block: %v", metrics["traces"])
	}
	if enabled, _ := traces["enabled"].(bool); enabled {
		t.Error("metrics traces.enabled = true with tracing disabled")
	}
}

func TestHTTPRequestTraced(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxBatch: 10})
	uploadModel(t, hs.URL, "lin", 3)
	resp := post(t, hs.URL+"/v1/models/lin/predict", `{"points":[[1,0,0]]}`)
	resp.Body.Close()

	list := getJSON[TraceListResponse](t, hs.URL+"/v1/traces?route=/predict", http.StatusOK)
	if len(list.Traces) != 1 {
		t.Fatalf("predict traces = %d, want 1 (all: %+v)", len(list.Traces),
			getJSON[TraceListResponse](t, hs.URL+"/v1/traces", http.StatusOK).Traces)
	}
	tr := list.Traces[0]
	if tr.Name != "POST /v1/models/{name}/predict" || tr.Status != "ok" || !tr.Complete {
		t.Errorf("predict trace %+v", tr)
	}
	full := getJSON[TraceResponse](t, hs.URL+"/v1/traces/"+tr.TraceID, http.StatusOK)
	if full.Root == nil || full.Root.Name != "POST /v1/models/{name}/predict" {
		t.Fatalf("trace root %+v", full.Root)
	}
	if full.Root.Attrs["status"] != float64(200) {
		t.Errorf("root attrs %v, want status=200", full.Root.Attrs)
	}
}

func TestTraceListFilterValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	for _, q := range []string{"limit=0", "limit=x", "min_duration=nope"} {
		resp, err := http.Get(hs.URL + "/v1/traces?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/traces?%s: HTTP %d, want 400", q, resp.StatusCode)
		}
	}
	// min_duration accepts both Go durations and bare seconds.
	for _, q := range []string{"min_duration=250ms", "min_duration=0.25"} {
		resp, err := http.Get(hs.URL + "/v1/traces?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET /v1/traces?%s: HTTP %d, want 200", q, resp.StatusCode)
		}
	}
}

// TestFitJobTraceDepth: an async fit job's trace nests request → job →
// fit → CV folds, at least four levels deep, reachable by job ID.
func TestFitJobTraceDepth(t *testing.T) {
	_, hs := newTestServer(t, Config{FitWorkers: 1})
	id := submitChaosFit(t, hs.URL, "traced")
	st := waitTerminal(t, hs.URL, id, 30*time.Second)
	if st.State != JobDone {
		t.Fatalf("fit job state %s (%q)", st.State, st.Error)
	}
	if st.TraceID == "" {
		t.Fatal("done job carries no trace_id")
	}

	full := getJSON[TraceResponse](t, hs.URL+"/v1/jobs/"+id+"/trace", http.StatusOK)
	if full.TraceID != st.TraceID {
		t.Errorf("job trace id %s, status trace id %s", full.TraceID, st.TraceID)
	}
	if !full.Complete {
		t.Error("terminal job's trace is not sealed")
	}
	if full.Depth < 4 {
		t.Fatalf("fit job trace depth %d, want ≥ 4:\n%s", full.Depth, renderTree(full.Root, ""))
	}
	for _, name := range []string{"POST /v1/fit", "job", "fit"} {
		if !treeContains(full.Root, name) {
			t.Errorf("trace tree missing span %q:\n%s", name, renderTree(full.Root, ""))
		}
	}
}

// TestPipelineJobTraceDepth is the tracing acceptance test: the committed
// rc_lowpass pipeline yields a trace nesting request → job → stage →
// solver trial → CV folds — at least four levels.
func TestPipelineJobTraceDepth(t *testing.T) {
	_, hs := newTestServer(t, Config{FitWorkers: 1})
	id := submitPipeline(t, hs.URL, pipelineBody(t, "traced-pipe", "rc_lowpass.cir", "rc_lowpass_pipeline.json"))
	st := waitPipelineTerminal(t, hs.URL, id, 60*time.Second)
	if st.State != JobDone {
		t.Fatalf("pipeline state %s (%q)", st.State, st.Error)
	}

	full := getJSON[TraceResponse](t, hs.URL+"/v1/jobs/"+id+"/trace", http.StatusOK)
	if full.Depth < 4 {
		t.Fatalf("pipeline trace depth %d, want ≥ 4:\n%s", full.Depth, renderTree(full.Root, ""))
	}
	for _, name := range []string{"job", "stage.parse", "stage.fit", "stage.publish"} {
		if !treeContains(full.Root, name) {
			t.Errorf("pipeline trace missing span %q:\n%s", name, renderTree(full.Root, ""))
		}
	}
	// The pinned job trace also appears in the list endpoint.
	list := getJSON[TraceListResponse](t, hs.URL+"/v1/traces?route=/v1/pipelines", http.StatusOK)
	var found bool
	for _, tr := range list.Traces {
		found = found || tr.TraceID == full.TraceID
	}
	if !found {
		t.Errorf("pipeline trace %s not in /v1/traces", full.TraceID)
	}
}

func treeContains(n *SpanNode, name string) bool {
	if n == nil {
		return false
	}
	if n.Name == name {
		return true
	}
	for _, c := range n.Children {
		if treeContains(c, name) {
			return true
		}
	}
	return false
}

func renderTree(n *SpanNode, indent string) string {
	if n == nil {
		return indent + "(nil)"
	}
	out := indent + n.Name + " [" + n.Status + "]\n"
	for _, c := range n.Children {
		out += renderTree(c, indent+"  ")
	}
	return out
}

// TestJobEventsSnapshot: the non-streaming events endpoint returns the
// job's full timeline — lifecycle states plus solver telemetry.
func TestJobEventsSnapshot(t *testing.T) {
	_, hs := newTestServer(t, Config{FitWorkers: 1})
	id := submitChaosFit(t, hs.URL, "events")
	waitTerminal(t, hs.URL, id, 30*time.Second)

	list := getJSON[JobEventList](t, hs.URL+"/v1/jobs/"+id+"/events", http.StatusOK)
	if list.JobID != id || list.State != JobDone {
		t.Fatalf("event list header %+v", list)
	}
	var states []string
	fits := 0
	lastSeq := -1
	for _, ev := range list.Events {
		if ev.Seq <= lastSeq {
			t.Fatalf("event sequence not increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case JobEventState:
			states = append(states, ev.State)
		case JobEventFit:
			fits++
			if ev.Fit == nil {
				t.Fatal("fit event without payload")
			}
		}
	}
	want := []string{JobPending, JobRunning, JobDone}
	if strings.Join(states, ",") != strings.Join(want, ",") {
		t.Errorf("lifecycle states %v, want %v", states, want)
	}
	if fits == 0 {
		t.Error("timeline carries no solver telemetry events")
	}

	resp, err := http.Get(hs.URL + "/v1/jobs/job-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("events for unknown job: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestJobEventsStream tails a live fit job over SSE: events arrive framed
// as id/event/data records while the job runs, and the stream closes on
// the terminal transition.
func TestJobEventsStream(t *testing.T) {
	armFaults(t, "server.fit=delay:200ms")
	_, hs := newTestServer(t, Config{FitWorkers: 1})
	id := submitChaosFit(t, hs.URL, "sse")

	resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/events?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}

	var states []string
	var sawFit bool
	sc := bufio.NewScanner(resp.Body)
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		case line == "" && data.Len() > 0:
			var ev JobEvent
			if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
				t.Fatalf("bad SSE payload %q: %v", data.String(), err)
			}
			data.Reset()
			switch ev.Type {
			case JobEventState:
				states = append(states, ev.State)
			case JobEventFit:
				sawFit = true
			}
		}
	}
	// The server closes the stream after the terminal event; the scanner
	// ending without a terminal state means the stream broke early.
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(states) == 0 || states[len(states)-1] != JobDone {
		t.Fatalf("streamed states %v, want trailing done", states)
	}
	if !sawFit {
		t.Error("stream carried no solver telemetry")
	}
}

// TestFitExemplarResolvesToStoredTrace closes the metrics → trace loop:
// the fit-duration histogram carries an exemplar whose trace_id is
// fetchable from /v1/traces.
func TestFitExemplarResolvesToStoredTrace(t *testing.T) {
	_, hs := newTestServer(t, Config{FitWorkers: 1})
	id := submitChaosFit(t, hs.URL, "exemplar")
	st := waitTerminal(t, hs.URL, id, 30*time.Second)
	if st.State != JobDone {
		t.Fatalf("fit state %s", st.State)
	}

	body := scrapeText(t, hs.URL)
	re := regexp.MustCompile(`(?m)^rsmd_fit_duration_seconds_bucket\{[^}]*\} \d+ # \{trace_id="([0-9a-f]+)"\} ([0-9.eE+-]+) ([0-9.]+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("no exemplar on rsmd_fit_duration_seconds_bucket:\n%s", grepLines(body, "rsmd_fit_duration_seconds_bucket"))
	}
	traceID := m[1]
	if traceID != st.TraceID {
		t.Errorf("exemplar trace_id %s, job trace_id %s", traceID, st.TraceID)
	}
	if v, err := strconv.ParseFloat(m[2], 64); err != nil || v < 0 {
		t.Errorf("exemplar value %q: %v", m[2], err)
	}
	if ts, err := strconv.ParseFloat(m[3], 64); err != nil || time.Since(time.Unix(int64(ts), 0)) > time.Hour {
		t.Errorf("exemplar timestamp %q not recent: %v", m[3], err)
	}

	full := getJSON[TraceResponse](t, hs.URL+"/v1/traces/"+traceID, http.StatusOK)
	if !treeContains(full.Root, "fit") {
		t.Errorf("exemplar trace %s has no fit span:\n%s", traceID, renderTree(full.Root, ""))
	}

	// Request-latency buckets carry exemplars too.
	if !regexp.MustCompile(`rsmd_http_request_duration_seconds_bucket\{[^}]*\} \d+ # \{trace_id="[0-9a-f]+"\}`).MatchString(body) {
		t.Error("no exemplar on any rsmd_http_request_duration_seconds_bucket line")
	}
	// And rsmd_build_info is present with a version label.
	if !regexp.MustCompile(`rsmd_build_info\{[^}]*version="[^"]+"[^}]*\} 1`).MatchString(body) {
		t.Errorf("rsmd_build_info missing or malformed:\n%s", grepLines(body, "rsmd_build_info"))
	}
}

func grepLines(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	if len(out) == 0 {
		return "(no matching lines)"
	}
	return strings.Join(out, "\n")
}
