package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/journal"
	"repro/internal/obs/trace"
)

// idemKeyHeader carries the client's submit-dedup token on POST /v1/fit
// and POST /v1/pipelines; idemReplayedHeader marks a 202 that returned an
// already-known job instead of enqueuing a new one.
const (
	idemKeyHeader      = "Idempotency-Key"
	idemReplayedHeader = "Idempotency-Replayed"
)

// maxIdemKeyLen bounds accepted keys so a hostile header cannot bloat the
// journal or the dedup map.
const maxIdemKeyLen = 128

// idempotencyKey extracts and validates the request's Idempotency-Key.
// Absent is fine (ok with key ""); a malformed key is a 400, because
// silently ignoring it would break the exactly-once contract the client
// thinks it has.
func idempotencyKey(w http.ResponseWriter, r *http.Request) (string, bool) {
	key := r.Header.Get(idemKeyHeader)
	if key == "" {
		return "", true
	}
	if len(key) > maxIdemKeyLen {
		writeErr(w, http.StatusBadRequest, "%s longer than %d bytes", idemKeyHeader, maxIdemKeyLen)
		return "", false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			writeErr(w, http.StatusBadRequest, "%s contains invalid byte %q", idemKeyHeader, c)
			return "", false
		}
	}
	return key, true
}

// recoverJournal rebuilds the job queue from the replayed journal state,
// before the workers start:
//
//   - terminal jobs are restored as queryable records (state, error and
//     identity — results are not journaled) without re-counting terminal
//     metrics;
//   - live jobs that already crashed the daemon RecoveryMaxAttempts times
//     are quarantined as failed — the poison-job guard — and that outcome
//     is journaled so it sticks;
//   - remaining live jobs are re-enqueued to run again, carrying their
//     recovery-attempt count into telemetry and provenance.
func (s *Server) recoverJournal(rp *journal.Replay) {
	// The whole replay is one pinned boot trace: each replayed job becomes
	// a child span recording the decision taken for it (restored /
	// quarantined / recovered), so a crash-recovery boot is inspectable in
	// /v1/traces like any request.
	rctx, replaySpan := s.traces.StartRoot(context.Background(), "journal.replay",
		trace.WithPin(), trace.WithAttrs(trace.Int("jobs", len(rp.Order))))
	defer replaySpan.End()
	for _, id := range rp.Order {
		js, ok := rp.Jobs[id]
		if !ok {
			continue // pruned by the terminal-retention bound
		}
		_, jobSpan := trace.Start(rctx, "replay.job",
			trace.WithAttrs(trace.String("job_id", id), trace.String("kind", js.Kind)))
		s.metrics.countJournal(func(c *journalCounters) { c.replayed++ })
		j := &job{
			id: js.ID, kind: js.Kind, requestID: js.RequestID, idemKey: js.IdemKey,
			attempt: js.Attempts, submitted: js.Submitted, started: js.Started,
		}
		if j.kind == "" {
			j.kind = JobKindFit
		}
		j.ctx, j.cancel = context.WithCancel(context.Background())
		switch {
		case js.Terminal:
			// A restored terminal job reports how many recovery re-runs it
			// took (starts beyond the first), not its raw start count — a
			// job that finished in its first life stays at 0 forever.
			if j.attempt > 0 {
				j.attempt--
			}
			j.state = js.State
			if !terminalState(j.state) {
				// A corrupt terminal record still retires the job; the state
				// string just gets normalized.
				j.state = JobFailed
			}
			j.err = js.Error
			j.finished = js.Finished
			j.cancel()
			s.jobs.restore(j, false)
			jobSpan.SetAttr("decision", "restored-terminal")
		case js.Attempts >= s.cfg.RecoveryMaxAttempts:
			s.quarantine(j, fmt.Sprintf(
				"quarantined: job crashed the daemon %d times (recovery limit %d)",
				js.Attempts, s.cfg.RecoveryMaxAttempts))
			jobSpan.SetAttr("decision", "quarantined")
		default:
			if err := decodeJobPayload(j, js.Payload); err != nil {
				s.quarantine(j, fmt.Sprintf("quarantined: journal payload unusable: %v", err))
				jobSpan.SetAttr("decision", "quarantined")
				jobSpan.EndErr(err)
				continue
			}
			j.state = JobPending
			// A recovered job's submitting request is long gone; give its
			// re-run a pinned root trace of its own so GET /v1/jobs/{id}/trace
			// still works across the crash.
			_, j.span = s.traces.StartRoot(context.Background(), "job",
				trace.WithPin(), trace.WithAttrs(
					trace.String("job_id", j.id), trace.String("kind", j.kind),
					trace.Int("recovery_attempt", j.attempt), trace.Bool("recovered", true)))
			j.traceID = j.span.TraceID()
			s.jobs.restore(j, true)
			s.metrics.countJournal(func(c *journalCounters) { c.recovered++ })
			s.log.Info("recovered journaled job", "job_id", j.id, "kind", j.kind,
				"recovery_attempt", j.attempt, "last_stage", js.LastStage, "trace_id", j.traceID)
			jobSpan.SetAttr("decision", "recovered")
		}
		jobSpan.End()
	}
	if n := len(rp.Order); n > 0 {
		s.log.Info("journal replay complete", "jobs", n,
			"records", rp.Records, "bad_lines", rp.BadLines, "truncated_bytes", rp.TruncatedBytes)
	}
}

// quarantine retires a replayed job as failed without re-running it, and
// journals that outcome so the next restart doesn't try again either. It
// counts as a quarantine, not as an organic job failure.
func (s *Server) quarantine(j *job, reason string) {
	j.state = JobFailed
	j.err = reason
	j.cancel()
	s.jobs.restore(j, false)
	s.metrics.countJournal(func(c *journalCounters) { c.quarantined++ })
	s.jobs.noteTerminalRecordOnly(j, JobFailed, reason)
	s.log.Warn("quarantined journaled job", "job_id", j.id, "kind", j.kind, "reason", reason)
}

// decodeJobPayload rebuilds the job's request from its journaled payload.
func decodeJobPayload(j *job, payload json.RawMessage) error {
	if len(payload) == 0 {
		return fmt.Errorf("no payload journaled")
	}
	switch j.kind {
	case JobKindPipeline:
		var req PipelineRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return err
		}
		j.pipeReq = &req
		return nil
	case JobKindRefine:
		var req RefineRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return err
		}
		if req.Name == "" {
			return fmt.Errorf("refine payload names no model")
		}
		j.refineReq = &req
		return nil
	default:
		return json.Unmarshal(payload, &j.req)
	}
}
