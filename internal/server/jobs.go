package server

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/mc"
)

// Job states.
const (
	JobPending = "pending"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// job is one queued fit request and its lifecycle record. The mutex-guarded
// fields are updated by the worker and read by status polls.
type job struct {
	id  string
	req FitRequest

	mu        sync.Mutex
	state     string
	submitted time.Time
	started   time.Time
	finished  time.Time
	err       string
	result    *FitResult
}

// status snapshots the job as an API JobStatus.
func (j *job) status() *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := &JobStatus{ID: j.id, State: j.state, Submitted: j.submitted, Error: j.err, Result: j.result}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	return s
}

// jobQueue is a bounded FIFO of fit jobs drained by a fixed worker pool.
type jobQueue struct {
	mu     sync.Mutex
	byID   map[string]*job
	nextID int
	closed bool

	queue chan *job
	wg    sync.WaitGroup
}

func newJobQueue(depth int) *jobQueue {
	if depth < 1 {
		depth = 1
	}
	return &jobQueue{byID: make(map[string]*job), queue: make(chan *job, depth)}
}

// submit enqueues a job, failing when the queue is full or closed.
func (q *jobQueue) submit(req FitRequest) (*job, error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, fmt.Errorf("server: shutting down")
	}
	q.nextID++
	j := &job{id: fmt.Sprintf("job-%06d", q.nextID), req: req, state: JobPending, submitted: time.Now()}
	select {
	case q.queue <- j:
		q.byID[j.id] = j
		q.mu.Unlock()
		return j, nil
	default:
		q.nextID--
		q.mu.Unlock()
		return nil, fmt.Errorf("server: fit queue full (%d pending)", cap(q.queue))
	}
}

// get looks a job up by id.
func (q *jobQueue) get(id string) (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.byID[id]
	return j, ok
}

// close stops accepting jobs and waits for in-flight ones to finish.
func (q *jobQueue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.mu.Unlock()
	close(q.queue)
	q.wg.Wait()
}

// startWorkers launches n goroutines running fn per dequeued job.
func (q *jobQueue) startWorkers(n int, fn func(*job)) {
	for i := 0; i < n; i++ {
		q.wg.Add(1)
		go func() {
			defer q.wg.Done()
			for j := range q.queue {
				fn(j)
			}
		}()
	}
}

// fitDataset resolves a FitRequest's dataset into points and a response
// vector, from either inline CSV or explicit arrays.
func fitDataset(req *FitRequest) (points [][]float64, f []float64, metric string, err error) {
	switch {
	case req.CSV != "" && req.Points != nil:
		return nil, nil, "", fmt.Errorf("csv and points are mutually exclusive")
	case req.CSV != "":
		ds, err := mc.ReadCSV(strings.NewReader(req.CSV))
		if err != nil {
			return nil, nil, "", err
		}
		if ds.Len() == 0 {
			return nil, nil, "", fmt.Errorf("empty dataset")
		}
		if len(ds.Metrics) == 0 {
			return nil, nil, "", fmt.Errorf("dataset has no metric columns")
		}
		metric = req.Metric
		if metric == "" {
			metric = ds.Metrics[0]
		}
		f, err := ds.Metric(metric)
		if err != nil {
			return nil, nil, "", err
		}
		return ds.Points, f, metric, nil
	case len(req.Points) > 0:
		if len(req.Values) != len(req.Points) {
			return nil, nil, "", fmt.Errorf("%d points but %d values", len(req.Points), len(req.Values))
		}
		dim := len(req.Points[0])
		if dim == 0 {
			return nil, nil, "", fmt.Errorf("zero-dimensional points")
		}
		for i, p := range req.Points {
			if len(p) != dim {
				return nil, nil, "", fmt.Errorf("point %d has dimension %d, want %d", i, len(p), dim)
			}
		}
		metric = req.Metric
		if metric == "" {
			metric = "f"
		}
		return req.Points, req.Values, metric, nil
	default:
		return nil, nil, "", fmt.Errorf("no dataset: provide csv or points+values")
	}
}

// fitBasis builds the request's Hermite dictionary over dim variables.
func fitBasis(degree, dim int) (*basis.Basis, error) {
	switch {
	case degree == 1:
		return basis.Linear(dim), nil
	case degree == 2:
		return basis.Quadratic(dim), nil
	case degree >= 3 && degree <= 6:
		d := basis.Descriptor{Kind: basis.KindTotalDegree, Dim: dim, Degree: degree}
		if sz := d.Size(); sz < 0 || sz > 1<<26 {
			return nil, fmt.Errorf("degree-%d dictionary over %d variables is too large", degree, dim)
		}
		return d.Build()
	default:
		return nil, fmt.Errorf("unsupported degree %d (want 1..6)", degree)
	}
}

// runFit executes one fit job end to end: dataset → cross-validated sparse
// fit → registry publication.
func (s *Server) runFit(j *job) {
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()

	fail := func(err error) {
		j.mu.Lock()
		j.state = JobFailed
		j.err = err.Error()
		j.finished = time.Now()
		j.mu.Unlock()
		s.metrics.countJob(0, 0, 1)
	}

	req := j.req
	points, f, metric, err := fitDataset(&req)
	if err != nil {
		fail(fmt.Errorf("dataset: %w", err))
		return
	}
	b, err := fitBasis(req.Degree, len(points[0]))
	if err != nil {
		fail(err)
		return
	}
	fitter, err := core.SolverByName(req.Solver)
	if err != nil {
		fail(err)
		return
	}
	start := time.Now()
	cv, err := core.CrossValidate(fitter, basis.AutoDesign(b, points), f, req.Folds, req.MaxLambda)
	if err != nil {
		fail(fmt.Errorf("fit: %w", err))
		return
	}
	env := &core.Envelope{
		Model: cv.Model,
		Basis: b.Desc,
		Prov: core.Provenance{
			Solver:  fitter.Name(),
			Lambda:  cv.BestLambda,
			CVError: cv.ErrCurve[cv.BestLambda-1],
			Folds:   req.Folds,
			Samples: len(points),
			Metric:  metric,
		},
	}
	entry, err := s.registry.Put(req.Name, env)
	if err != nil {
		fail(err)
		return
	}
	j.mu.Lock()
	j.state = JobDone
	j.finished = time.Now()
	j.result = &FitResult{
		Model:      modelInfo(entry),
		Lambda:     cv.BestLambda,
		CVError:    cv.ErrCurve[cv.BestLambda-1],
		FitSeconds: time.Since(start).Seconds(),
	}
	j.mu.Unlock()
	s.metrics.countJob(0, 1, 0)
}
