package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/mc"
	"repro/internal/obs/trace"
)

// jobEventBuffer bounds the live-event channel handed to each subscriber;
// a subscriber that lags this far behind loses events (the SSE handler
// reports the gap via sequence numbers).
const jobEventBuffer = 256

// maxJobEvents caps the per-job fit timeline so a pathological request
// (huge max_lambda × many folds) cannot grow a job record without bound.
// Later events are dropped; the cap comfortably covers the default
// max_lambda of 50 across any fold count.
const maxJobEvents = 4096

// Job states. Pending and running are live; the other four are terminal.
const (
	JobPending  = "pending"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"  // DELETE /v1/jobs/{id} or daemon drain
	JobTimedOut = "timed_out" // per-job deadline expired mid-fit
)

// terminalState reports whether a job state is final.
func terminalState(state string) bool {
	switch state {
	case JobDone, JobFailed, JobCanceled, JobTimedOut:
		return true
	}
	return false
}

// Job kinds.
const (
	JobKindFit      = "fit"
	JobKindPipeline = "pipeline"
	JobKindRefine   = "refine"
)

// job is one queued async request (a fit or a full pipeline) and its
// lifecycle record. The mutex-guarded fields are updated by the worker and
// read by status polls; ctx is canceled by DELETE /v1/jobs/{id} (or
// /v1/pipelines/{id}) and by queue shutdown, and the worker layers the
// per-job deadline on top of it.
type job struct {
	id        string
	kind      string // JobKindFit | JobKindPipeline | JobKindRefine
	requestID string // trace ID of the submitting request
	idemKey   string // Idempotency-Key of the submitting request ("" = none)
	attempt   int    // crash-recovery replays before this life (0 = first)
	req       FitRequest
	pipeReq   *PipelineRequest // set when kind is JobKindPipeline
	refineReq *RefineRequest   // set when kind is JobKindRefine (carries Name)
	q         *jobQueue        // owning queue, for terminal bookkeeping

	ctx    context.Context
	cancel context.CancelFunc

	// span is the job-lifetime trace span (a pinned holder under the
	// submitting request's trace, or a root of its own for recovered jobs);
	// nil when tracing is disabled. traceID is cached for status reports.
	span    *trace.Span
	traceID string

	// leftQueue marks that the job's pending-depth slot was released
	// (worker pickup or pending-cancel); guarded by q.mu via leaveQueue.
	leftQueue bool

	mu        sync.Mutex
	state     string
	submitted time.Time
	started   time.Time
	finished  time.Time
	err       string
	result    *FitResult
	presult   *PipelineResult
	rresult   *RefineResult
	events    []FitEventInfo      // solver telemetry timeline, capped at maxJobEvents
	stages    []PipelineStageInfo // pipeline stage timeline
	// timeline is the unified job event stream (state transitions, fit
	// telemetry, pipeline stages) served by GET /v1/jobs/{id}/events; subs
	// are the live SSE subscribers, closed on the terminal transition.
	timeline []JobEvent
	seq      int
	subs     map[int]chan JobEvent
	nextSub  int
	// noPersist suppresses the terminal journal record for drain/shutdown
	// cancellations: the job must be re-run after restart, so its journal
	// trail is deliberately left non-terminal.
	noPersist bool
}

// broadcastLocked stamps, records and fans one event out to the live
// subscribers. Caller holds j.mu. The timeline shares maxJobEvents with the
// fit-event cap (plus slack for state/stage entries, which are few); a
// lagging subscriber's full channel drops the event for that subscriber
// only — sequence numbers let it detect the gap.
func (j *job) broadcastLocked(ev JobEvent) {
	j.seq++
	ev.Seq = j.seq
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	if len(j.timeline) < maxJobEvents+128 {
		j.timeline = append(j.timeline, ev)
	}
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// stateEventLocked broadcasts a state-transition event. Caller holds j.mu.
func (j *job) stateEventLocked() {
	j.broadcastLocked(JobEvent{Type: JobEventState, State: j.state, Error: j.err})
}

// closeSubsLocked ends every live subscription — the job reached a
// terminal state and no further events can come. Caller holds j.mu.
func (j *job) closeSubsLocked() {
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
}

// subscribe returns the job's event timeline so far plus, for a live job,
// a channel of subsequent events and a cancel func. A terminal job returns
// a nil channel: the snapshot is the whole story.
func (j *job) subscribe() (snapshot []JobEvent, ch chan JobEvent, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	snapshot = append([]JobEvent(nil), j.timeline...)
	if terminalState(j.state) {
		return snapshot, nil, func() {}
	}
	c := make(chan JobEvent, jobEventBuffer)
	if j.subs == nil {
		j.subs = make(map[int]chan JobEvent)
	}
	id := j.nextSub
	j.nextSub++
	j.subs[id] = c
	return snapshot, c, func() {
		j.mu.Lock()
		if sub, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(sub)
		}
		j.mu.Unlock()
	}
}

// status snapshots the job as an API JobStatus.
func (j *job) status() *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := &JobStatus{
		ID: j.id, Kind: j.kind, RequestID: j.requestID, TraceID: j.traceID, State: j.state,
		Submitted: j.submitted, Error: j.err, Result: j.result, Pipeline: j.presult,
		Refine:          j.rresult,
		RecoveryAttempt: j.attempt,
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	if len(j.events) > 0 {
		s.Events = append([]FitEventInfo(nil), j.events...)
	}
	if len(j.stages) > 0 {
		s.Stages = append([]PipelineStageInfo(nil), j.stages...)
	}
	return s
}

// addStage appends one pipeline stage record to the job timeline.
func (j *job) addStage(info PipelineStageInfo) {
	j.mu.Lock()
	j.stages = append(j.stages, info)
	stage := info
	j.broadcastLocked(JobEvent{Type: JobEventStage, Stage: &stage})
	j.mu.Unlock()
}

// addEvent appends one solver telemetry event to the job timeline. It is
// the core.FitObserver for this job's fit, called from the worker goroutine
// while status polls read concurrently.
func (j *job) addEvent(ev core.FitEvent) {
	info := FitEventInfo{
		Stage:           ev.Stage,
		Iter:            ev.Iter,
		Basis:           ev.Basis,
		Active:          ev.Active,
		Residual:        ev.Residual,
		ElapsedSeconds:  ev.Elapsed.Seconds(),
		ParallelWorkers: ev.Workers,
	}
	j.mu.Lock()
	if len(j.events) < maxJobEvents {
		j.events = append(j.events, info)
		fit := info
		j.broadcastLocked(JobEvent{Type: JobEventFit, Fit: &fit})
	}
	j.mu.Unlock()
}

// begin transitions pending → running; it fails when the job was canceled
// while queued, in which case the worker must skip it.
func (j *job) begin() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobPending {
		return false
	}
	j.state = JobRunning
	j.started = time.Now()
	j.stateEventLocked()
	return true
}

// finish records a terminal state and runs the queue's terminal
// bookkeeping (metrics + journal); later transitions are ignored.
func (j *job) finish(state, errMsg string, result *FitResult) bool {
	j.mu.Lock()
	if terminalState(j.state) {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.err = errMsg
	j.result = result
	j.finished = time.Now()
	persist := !j.noPersist
	j.stateEventLocked()
	j.closeSubsLocked()
	j.mu.Unlock()
	j.q.noteTerminal(j, state, errMsg, persist)
	return true
}

// finishRefine is finish for refine jobs.
func (j *job) finishRefine(state, errMsg string, result *RefineResult) bool {
	j.mu.Lock()
	if terminalState(j.state) {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.err = errMsg
	j.rresult = result
	j.finished = time.Now()
	persist := !j.noPersist
	j.stateEventLocked()
	j.closeSubsLocked()
	j.mu.Unlock()
	j.q.noteTerminal(j, state, errMsg, persist)
	return true
}

// finishPipeline is finish for pipeline jobs.
func (j *job) finishPipeline(state, errMsg string, result *PipelineResult) bool {
	j.mu.Lock()
	if terminalState(j.state) {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.err = errMsg
	j.presult = result
	j.finished = time.Now()
	persist := !j.noPersist
	j.stateEventLocked()
	j.closeSubsLocked()
	j.mu.Unlock()
	j.q.noteTerminal(j, state, errMsg, persist)
	return true
}

// requestCancel asks the job to stop. A pending job transitions to canceled
// immediately (the worker will skip it); a running job is interrupted
// through its context and reaches a terminal state when the solver notices.
// Canceling a terminal job is a no-op. Reports whether the job went straight
// from pending to canceled.
//
// persist distinguishes a client cancellation (true: the canceled state is
// journaled and survives restarts) from a drain/shutdown cancellation
// (false: the journal trail stays non-terminal so the next boot re-runs
// the job — the whole point of the durable queue).
func (j *job) requestCancel(reason string, persist bool) bool {
	j.mu.Lock()
	wasPending := j.state == JobPending
	if wasPending {
		j.state = JobCanceled
		j.err = reason
		j.finished = time.Now()
		j.stateEventLocked()
		j.closeSubsLocked()
	}
	if !persist {
		// Mark before cancel() so the worker's finish() sees it when the
		// context death lands the running job in canceled.
		j.noPersist = true
	}
	j.mu.Unlock()
	j.cancel()
	if wasPending {
		// The job never reached a worker: release its pending-depth slot
		// here (the worker's own release at pickup is an idempotent no-op).
		j.q.leaveQueue(j)
		j.q.noteTerminal(j, JobCanceled, reason, persist)
	}
	return wasPending
}

// jobQueue is a bounded FIFO of fit jobs drained by a fixed worker pool.
// When a journal is attached, every admission writes (and fsyncs) a
// submitted record before the job becomes visible, and every terminal
// transition appends a terminal record — the durable-queue contract.
type jobQueue struct {
	mu     sync.Mutex
	byID   map[string]*job
	idem   map[string]*job // Idempotency-Key → original job
	nextID int
	closed bool
	// idPrefix namespaces job IDs with the minting node's cluster member
	// name ("s1." → "s1.job-000042") so any node can route a poll back to
	// the shard running the job. Empty on unclustered nodes.
	idPrefix string
	// pending counts jobs admitted but not yet released by leaveQueue
	// (worker pickup or pending-cancel) — the rsmd_job_queue_depth gauge.
	// Tracked explicitly rather than as len(queue) because a job canceled
	// while queued still occupies a channel slot until a worker skips it,
	// and that slot must not read as backlog.
	pending int

	queue      chan *job
	wg         sync.WaitGroup
	onTerminal func(kind, state string) // metrics hook for queue-side transitions
	jnl        *journal.Journal         // nil = durability disabled
	log        *slog.Logger
}

func newJobQueue(depth int, onTerminal func(kind, state string), jnl *journal.Journal, log *slog.Logger) *jobQueue {
	if depth < 1 {
		depth = 1
	}
	if log == nil {
		log = slog.Default()
	}
	return &jobQueue{
		byID: make(map[string]*job), idem: make(map[string]*job),
		queue: make(chan *job, depth), onTerminal: onTerminal, jnl: jnl, log: log,
	}
}

// submit enqueues a fit job, failing when the queue is full or closed. The
// requestID of the submitting HTTP request is stamped on the job so its
// whole lifecycle — submission log line, worker log lines, status polls —
// correlates back to one trace. existing reports an Idempotency-Key dedup
// hit: the returned job is the original, and nothing new was enqueued.
func (q *jobQueue) submit(ctx context.Context, req FitRequest, requestID, idemKey string) (j *job, existing bool, err error) {
	return q.enqueue(ctx, &job{kind: JobKindFit, requestID: requestID, idemKey: idemKey, req: req})
}

// submitPipeline enqueues a pipeline job into the same bounded queue and
// worker pool fit jobs use, so one saturation/load-shedding policy governs
// both.
func (q *jobQueue) submitPipeline(ctx context.Context, req PipelineRequest, requestID, idemKey string) (j *job, existing bool, err error) {
	return q.enqueue(ctx, &job{kind: JobKindPipeline, requestID: requestID, idemKey: idemKey, pipeReq: &req})
}

// submitRefine enqueues an incremental-refit job. req.Name must already be
// populated (from the URL path) so the journaled payload identifies the
// model across crash recovery.
func (q *jobQueue) submitRefine(ctx context.Context, req RefineRequest, requestID, idemKey string) (j *job, existing bool, err error) {
	return q.enqueue(ctx, &job{kind: JobKindRefine, requestID: requestID, idemKey: idemKey, refineReq: &req})
}

// enqueue assigns the job its ID and context and admits it to the queue,
// after the journal (when attached) durably recorded the submission. The
// fsync happens under the queue lock — submissions serialize on it, which
// is the price of never acknowledging a job the disk hasn't seen. The
// submitting request's ctx supplies the trace: the job gets a pinned
// holding span under it, created before the channel send so a worker can
// never pick the job up span-less.
func (q *jobQueue) enqueue(ctx context.Context, j *job) (*job, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, false, fmt.Errorf("server: shutting down")
	}
	if j.idemKey != "" {
		if prev, ok := q.idem[j.idemKey]; ok {
			return prev, true, nil
		}
	}
	if len(q.queue) == cap(q.queue) {
		return nil, false, fmt.Errorf("server: fit queue full (%d pending)", cap(q.queue))
	}
	id := fmt.Sprintf("%sjob-%06d", q.idPrefix, q.nextID+1)
	if q.jnl != nil {
		var payload json.RawMessage
		var err error
		switch j.kind {
		case JobKindPipeline:
			payload, err = json.Marshal(j.pipeReq)
		case JobKindRefine:
			payload, err = json.Marshal(j.refineReq)
		default:
			payload, err = json.Marshal(&j.req)
		}
		if err != nil {
			return nil, false, fmt.Errorf("server: encode job payload: %w", err)
		}
		_, jspan := trace.Start(ctx, "journal.append",
			trace.WithAttrs(trace.String("record", journal.TypeSubmitted)))
		err = q.jnl.Append(journal.Record{
			Type: journal.TypeSubmitted, JobID: id, Kind: j.kind,
			RequestID: j.requestID, IdemKey: j.idemKey, Payload: payload,
		})
		jspan.EndErr(err)
		if err != nil {
			return nil, false, fmt.Errorf("server: job journal degraded, async submits disabled: %w", err)
		}
	}
	q.nextID++
	j.id = id
	j.ctx, j.cancel = context.WithCancel(context.Background())
	j.state = JobPending
	j.submitted = time.Now()
	j.q = q
	_, j.span = trace.Start(ctx, "job", trace.WithHold(), trace.WithPin(),
		trace.WithAttrs(trace.String("job_id", id), trace.String("kind", j.kind)))
	j.traceID = j.span.TraceID()
	j.stateEventLocked() // seed the event timeline with "pending"
	q.pending++
	// Cannot block: capacity was checked under the lock and only workers
	// drain the channel.
	q.queue <- j
	q.byID[id] = j
	if j.idemKey != "" {
		q.idem[j.idemKey] = j
	}
	return j, false, nil
}

// restore re-inserts a journal-replayed job at boot, before the workers
// start: terminal and quarantined jobs become queryable without touching
// the queue; live jobs are re-enqueued for another run. The ID sequence
// and idempotency map pick up where the previous life left off.
func (q *jobQueue) restore(j *job, enqueue bool) {
	q.mu.Lock()
	j.q = q
	q.byID[j.id] = j
	if j.idemKey != "" {
		if _, taken := q.idem[j.idemKey]; !taken {
			q.idem[j.idemKey] = j
		}
	}
	if n, ok := jobIDNum(j.id); ok && n > q.nextID {
		q.nextID = n
	}
	if enqueue {
		q.pending++
		j.mu.Lock()
		j.stateEventLocked()
		j.mu.Unlock()
	}
	q.mu.Unlock()
	if enqueue {
		q.queue <- j
	}
}

// jobIDNum parses the numeric suffix of a job-%06d ID, with or without a
// node prefix ("s1.job-000042"): the journal replays IDs minted under
// either naming, and the sequence must advance past both.
func jobIDNum(id string) (int, bool) {
	if i := strings.LastIndex(id, "job-"); i > 0 {
		id = id[i:]
	}
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// noteTerminal is the single terminal-transition sink: it feeds the
// terminal-state metrics and, when persist is set, appends the terminal
// journal record. Callers must not hold j.mu.
func (q *jobQueue) noteTerminal(j *job, state, errMsg string, persist bool) {
	// End the job's trace span here — the single terminal sink — so every
	// terminal path (worker finish, pending-cancel, drain) seals the trace.
	j.span.SetAttr("state", state)
	if state == JobFailed || state == JobTimedOut {
		j.span.SetStatus(trace.StatusError, errMsg)
	}
	j.span.End()
	if q.onTerminal != nil {
		q.onTerminal(j.kind, state)
	}
	if persist && q.jnl != nil {
		if err := q.jnl.Append(journal.Record{
			Type: journal.TypeTerminal, JobID: j.id, Kind: j.kind, State: state, Error: errMsg,
		}); err != nil {
			q.log.Warn("journal: terminal record append failed (job outcome may repeat after restart)",
				"job_id", j.id, "state", state, "error", err)
		}
	}
}

// noteTerminalRecordOnly appends a terminal journal record without feeding
// the terminal-state metrics — the quarantine path, where the "failure"
// is a replay decision, not an organic job outcome.
func (q *jobQueue) noteTerminalRecordOnly(j *job, state, errMsg string) {
	if q.jnl == nil {
		return
	}
	if err := q.jnl.Append(journal.Record{
		Type: journal.TypeTerminal, JobID: j.id, Kind: j.kind, State: state, Error: errMsg,
	}); err != nil {
		q.log.Warn("journal: quarantine record append failed", "job_id", j.id, "error", err)
	}
}

// noteStarted journals a worker pickup. Attempt counts total starts across
// lives, so replay can tell how many times the job already crashed the
// daemon.
func (q *jobQueue) noteStarted(j *job) {
	if q.jnl == nil {
		return
	}
	if err := q.jnl.Append(journal.Record{
		Type: journal.TypeStarted, JobID: j.id, Kind: j.kind, Attempt: j.attempt + 1,
	}); err != nil {
		q.log.Warn("journal: started record append failed", "job_id", j.id, "error", err)
	}
}

// noteStage journals a completed pipeline stage — a progress breadcrumb
// that survives restarts (the stage timeline itself is rebuilt by the
// re-run).
func (q *jobQueue) noteStage(j *job, stage string) {
	if q.jnl == nil {
		return
	}
	if err := q.jnl.Append(journal.Record{
		Type: journal.TypeStage, JobID: j.id, Kind: j.kind, Stage: stage,
	}); err != nil {
		q.log.Warn("journal: stage record append failed", "job_id", j.id, "stage", stage, "error", err)
	}
}

// get looks a job up by id.
func (q *jobQueue) get(id string) (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.byID[id]
	return j, ok
}

// saturated reports whether the pending-job channel is full — the signal the
// server's load shedding keys off. It deliberately reads the channel, not
// the pending counter: a canceled-but-unskipped job still occupies a
// channel slot, so admission capacity really is exhausted until a worker
// drains it.
func (q *jobQueue) saturated() bool { return len(q.queue) == cap(q.queue) }

// depth reports the number of jobs admitted and still awaiting a worker —
// the rsmd_job_queue_depth gauge. Jobs canceled while pending leave the
// count immediately even though they sit in the channel until skipped.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pending
}

// leaveQueue releases the job's pending-depth slot, exactly once across
// the two release paths (worker pickup, pending-cancel).
func (q *jobQueue) leaveQueue(j *job) {
	q.mu.Lock()
	if !j.leftQueue {
		j.leftQueue = true
		q.pending--
	}
	q.mu.Unlock()
}

// cancelJob requests client cancellation of the job with the given id; the
// canceled outcome is journaled so it sticks across restarts (a canceled
// job is never resurrected by replay).
func (q *jobQueue) cancelJob(id, reason string) (*job, bool) {
	j, ok := q.get(id)
	if !ok {
		return nil, false
	}
	j.requestCancel(reason, true)
	return j, true
}

// cancelAll requests cancellation of every live job (drain path). The
// cancellations are deliberately not journaled: a drained-away job's trail
// stays non-terminal, so the next boot replays and re-runs it.
func (q *jobQueue) cancelAll(reason string) {
	q.mu.Lock()
	jobs := make([]*job, 0, len(q.byID))
	for _, j := range q.byID {
		jobs = append(jobs, j)
	}
	q.mu.Unlock()
	for _, j := range jobs {
		j.requestCancel(reason, false)
	}
}

// close stops accepting jobs and waits for in-flight ones to finish, however
// long they take. Shutdown is the bounded variant.
func (q *jobQueue) close() { _ = q.shutdown(context.Background()) }

// shutdown stops accepting jobs and drains the workers. Jobs still live when
// ctx expires are canceled (the solvers' cooperative checks make the workers
// return promptly) and the workers are then awaited unconditionally.
func (q *jobQueue) shutdown(ctx context.Context) error {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.queue)
	}
	q.mu.Unlock()
	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	q.cancelAll("canceled: daemon shutting down")
	<-done
	return ctx.Err()
}

// startWorkers launches n goroutines running fn per dequeued job.
func (q *jobQueue) startWorkers(n int, fn func(*job)) {
	for i := 0; i < n; i++ {
		q.wg.Add(1)
		go func() {
			defer q.wg.Done()
			for j := range q.queue {
				q.leaveQueue(j)
				fn(j)
			}
		}()
	}
}

// fitDataset resolves a FitRequest's dataset into points and a response
// vector, from either inline CSV or explicit arrays.
func fitDataset(req *FitRequest) (points [][]float64, f []float64, metric string, err error) {
	switch {
	case req.CSV != "" && req.Points != nil:
		return nil, nil, "", fmt.Errorf("csv and points are mutually exclusive")
	case req.CSV != "":
		ds, err := mc.ReadCSV(strings.NewReader(req.CSV))
		if err != nil {
			return nil, nil, "", err
		}
		if ds.Len() == 0 {
			return nil, nil, "", fmt.Errorf("empty dataset")
		}
		if len(ds.Metrics) == 0 {
			return nil, nil, "", fmt.Errorf("dataset has no metric columns")
		}
		metric = req.Metric
		if metric == "" {
			metric = ds.Metrics[0]
		}
		f, err := ds.Metric(metric)
		if err != nil {
			return nil, nil, "", err
		}
		return ds.Points, f, metric, nil
	case len(req.Points) > 0:
		if len(req.Values) != len(req.Points) {
			return nil, nil, "", fmt.Errorf("%d points but %d values", len(req.Points), len(req.Values))
		}
		dim := len(req.Points[0])
		if dim == 0 {
			return nil, nil, "", fmt.Errorf("zero-dimensional points")
		}
		for i, p := range req.Points {
			if len(p) != dim {
				return nil, nil, "", fmt.Errorf("point %d has dimension %d, want %d", i, len(p), dim)
			}
		}
		metric = req.Metric
		if metric == "" {
			metric = "f"
		}
		return req.Points, req.Values, metric, nil
	default:
		return nil, nil, "", fmt.Errorf("no dataset: provide csv or points+values")
	}
}

// fitBasis builds the request's Hermite dictionary over dim variables.
func fitBasis(degree, dim int) (*basis.Basis, error) {
	switch {
	case degree == 1:
		return basis.Linear(dim), nil
	case degree == 2:
		return basis.Quadratic(dim), nil
	case degree >= 3 && degree <= 6:
		d := basis.Descriptor{Kind: basis.KindTotalDegree, Dim: dim, Degree: degree}
		if sz := d.Size(); sz < 0 || sz > 1<<26 {
			return nil, fmt.Errorf("degree-%d dictionary over %d variables is too large", degree, dim)
		}
		return d.Build()
	default:
		return nil, fmt.Errorf("unsupported degree %d (want 1..6)", degree)
	}
}

// jobDeadline resolves the effective fit deadline: the server-wide cap,
// tightened by the request's own timeout_seconds when smaller.
func (s *Server) jobDeadline(req *FitRequest) time.Duration {
	d := s.cfg.FitTimeout
	if req.TimeoutSeconds > 0 {
		if r := time.Duration(req.TimeoutSeconds * float64(time.Second)); r < d {
			d = r
		}
	}
	return d
}

// runFit executes one fit job end to end: dataset → cross-validated sparse
// fit → registry publication. It is the worker's unit of work and must never
// let a failure escape: solver panics are contained here (the incident is
// counted and the job fails, the worker survives), cancellation and deadline
// expiry land the job in canceled/timed_out, and everything else in failed.
func (s *Server) runFit(j *job) {
	if !j.begin() {
		return // canceled while queued
	}
	s.jobs.noteStarted(j)
	queueWait := j.started.Sub(j.submitted)
	s.metrics.observeQueueWait(queueWait)
	logger := s.log.With("job_id", j.id, "request_id", j.requestID)
	logger.Info("fit job started",
		"solver", j.req.Solver, "degree", j.req.Degree, "folds", j.req.Folds,
		"max_lambda", j.req.MaxLambda, "recovery_attempt", j.attempt,
		"queue_wait_ms", float64(queueWait.Microseconds())/1000.0)
	ctx, cancelCtx := context.WithTimeout(j.ctx, s.jobDeadline(&j.req))
	defer cancelCtx()
	// Re-attach the job span: j.ctx is rooted in Background (the job
	// outlives its submitting request), so the trace rides on the job
	// struct, not the context chain.
	ctx = trace.ContextWithSpan(ctx, j.span)
	_, qwSpan := trace.Start(ctx, "queue.wait", trace.WithStart(j.submitted))
	qwSpan.End()
	ctx, fitSpan := trace.Start(ctx, "fit", trace.WithAttrs(
		trace.String("solver", j.req.Solver), trace.Int("folds", j.req.Folds),
		trace.Int("max_lambda", j.req.MaxLambda)))
	spans := trace.NewSpanSet(ctx)
	ctx = core.WithFitObserver(ctx, func(ev core.FitEvent) {
		j.addEvent(ev)
		// Each CV fold and the final refit becomes a child span of the fit
		// span, its attrs left at the last iteration's values.
		spans.Observe(ev.Stage, trace.Int("iter", ev.Iter),
			trace.Int("active", ev.Active), trace.Float("residual", ev.Residual))
	})
	ctx = core.WithFitWorkers(ctx, s.cfg.FitParallel)

	finish := func(state, errMsg string, result *FitResult) {
		spans.Close()
		if state != JobDone {
			fitSpan.SetStatus(trace.StatusError, errMsg)
		}
		fitSpan.End()
		// Terminal metrics and the journal record ride on job.finish via
		// the queue's noteTerminal.
		if !j.finish(state, errMsg, result) {
			return
		}
		dur := j.finished.Sub(j.started)
		if state == JobDone {
			logger.Info("fit job done", "state", state, "duration_ms", float64(dur.Microseconds())/1000.0)
		} else {
			logger.Warn("fit job ended", "state", state, "error", errMsg,
				"duration_ms", float64(dur.Microseconds())/1000.0)
		}
	}
	fail := func(err error) {
		switch {
		case errors.Is(err, context.Canceled):
			finish(JobCanceled, err.Error(), nil)
		case errors.Is(err, context.DeadlineExceeded):
			finish(JobTimedOut, fmt.Sprintf("deadline %s exceeded: %v", s.jobDeadline(&j.req), err), nil)
		default:
			finish(JobFailed, err.Error(), nil)
		}
	}
	defer func() {
		if rec := recover(); rec != nil {
			s.metrics.countPanic()
			logger.Error("fit panicked", "panic", rec, "stack", string(debug.Stack()))
			finish(JobFailed, fmt.Sprintf("internal: fit panicked: %v (incident logged)", rec), nil)
		}
	}()

	// Chaos hook: injected panics exercise the recovery above, injected
	// delays stall the job against its deadline.
	if err := faultinject.FireCtx(ctx, "server.fit"); err != nil {
		fail(err)
		return
	}
	if err := ctx.Err(); err != nil {
		fail(err)
		return
	}

	req := j.req
	points, f, metric, err := fitDataset(&req)
	if err != nil {
		fail(fmt.Errorf("dataset: %w", err))
		return
	}
	b, err := fitBasis(req.Degree, len(points[0]))
	if err != nil {
		fail(err)
		return
	}
	fitter, err := core.SolverByName(req.Solver)
	if err != nil {
		fail(err)
		return
	}
	start := time.Now()
	// Arm a natural-end checkpoint capture: the final refit's engine state is
	// persisted beside the published version so POST /v1/models/{name}/refine
	// can later continue this fit instead of restarting cold.
	plan := &core.CheckpointPlan{}
	cv, err := core.CrossValidateCtx(core.WithCheckpointPlan(ctx, plan), fitter, basis.AutoDesign(b, points), f, req.Folds, req.MaxLambda)
	if err != nil {
		fail(fmt.Errorf("fit: %w", err))
		return
	}
	env := &core.Envelope{
		Model: cv.Model,
		Basis: b.Desc,
		Prov: core.Provenance{
			Solver:  fitter.Name(),
			Lambda:  cv.BestLambda,
			CVError: cv.ErrCurve[cv.BestLambda-1],
			Folds:   req.Folds,
			Samples: len(points),
			Metric:  metric,
		},
	}
	entry, err := s.registry.Put(req.Name, env)
	if err != nil {
		fail(err)
		return
	}
	s.persistCheckpoint(logger, entry, plan.CK, req.Solver, req.Folds, req.MaxLambda, metric, points, f)
	fitDur := time.Since(start)
	s.metrics.observeFit(fitDur, finalIterations(j), j.traceID)
	finish(JobDone, "", &FitResult{
		Model:      modelInfo(entry),
		Lambda:     cv.BestLambda,
		CVError:    cv.ErrCurve[cv.BestLambda-1],
		FitSeconds: fitDur.Seconds(),
	})
}

// finalIterations counts the final-refit path steps in the job's timeline —
// the per-job sample for the rsmd_fit_iterations histogram. Pipeline jobs
// prefix stages with the solver name ("lar/final"), so the suffix match
// covers both job kinds.
func finalIterations(j *job) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, ev := range j.events {
		if ev.Stage == "final" || strings.HasSuffix(ev.Stage, "/final") {
			n++
		}
	}
	return n
}
