package server

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/obs/trace"
	"repro/internal/registry"
)

// predictorCache is a size-bounded LRU of compiled predictors keyed by
// "name@vN". Compiled predictors are immutable, so the cache never hands
// out stale values — a new model version gets a new key — but entries for a
// name are still dropped eagerly when the registry publishes a new version
// (see Server wiring of registry.OnPut), since traffic moves to the latest
// version and the old predictor would otherwise squat in the LRU until
// evicted. All methods are safe for concurrent use.
type predictorCache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used; values are *cacheEntry
	byKey     map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

// cacheEntry is one cached compiled predictor.
type cacheEntry struct {
	key  string // "name@vN"
	name string // model name, for per-name invalidation
	cp   *core.CompiledPredictor
}

// cacheStats is a point-in-time view of the cache counters for /metrics.
type cacheStats struct {
	hits, misses, evictions int64
	entries, capacity       int
}

// predictorKey renders the cache key of one model version.
func predictorKey(name string, version int) string {
	return fmt.Sprintf("%s@v%d", name, version)
}

func newPredictorCache(capacity int) *predictorCache {
	return &predictorCache{
		capacity: capacity,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element, capacity),
	}
}

// get returns the cached predictor for key, promoting it to most recently
// used. Every call counts as a hit or a miss.
func (c *predictorCache) get(key string) (*core.CompiledPredictor, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).cp, true
}

// put inserts (or refreshes) the predictor under key, evicting from the LRU
// tail while over capacity.
func (c *predictorCache) put(key, name string, cp *core.CompiledPredictor) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		// Concurrent misses can compile the same version twice; keep the
		// first and just refresh recency.
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, name: name, cp: cp})
	for c.ll.Len() > c.capacity {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		c.removeLocked(tail)
		c.evictions++
	}
}

// invalidate drops every cached version of name, returning how many entries
// were removed. Dropped entries do not count as evictions — they were
// removed for correctness hygiene, not capacity pressure.
func (c *predictorCache) invalidate(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*cacheEntry).name == name {
			c.removeLocked(el)
			n++
		}
		el = next
	}
	return n
}

func (c *predictorCache) removeLocked(el *list.Element) {
	delete(c.byKey, el.Value.(*cacheEntry).key)
	c.ll.Remove(el)
}

// stats snapshots the counters.
func (c *predictorCache) stats() cacheStats {
	if c == nil {
		return cacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		hits: c.hits, misses: c.misses, evictions: c.evictions,
		entries: c.ll.Len(), capacity: c.capacity,
	}
}

// compileEntry builds a fresh compiled predictor for one stored model
// version: the entry's (lazily cached) basis plus the support lowering.
func compileEntry(e *registry.Entry) (*core.CompiledPredictor, error) {
	b, err := e.Basis()
	if err != nil {
		return nil, fmt.Errorf("rebuild basis: %w", err)
	}
	cp, err := e.Model().Compile(b)
	if err != nil {
		return nil, fmt.Errorf("compile predictor: %w", err)
	}
	return cp, nil
}

// compiled resolves the serving predictor for one model version: an LRU hit
// when caching is enabled, a fresh compilation otherwise. Concurrent misses
// on the same version may compile it more than once; the cache keeps one.
func (s *Server) compiled(ctx context.Context, e *registry.Entry) (*core.CompiledPredictor, error) {
	_, span := trace.Start(ctx, "predcache.lookup",
		trace.WithAttrs(trace.String("model", e.Name), trace.Int("version", e.Version)))
	if s.predCache == nil {
		span.SetAttr("hit", false)
		cp, err := compileEntry(e)
		span.EndErr(err)
		return cp, err
	}
	key := predictorKey(e.Name, e.Version)
	if cp, ok := s.predCache.get(key); ok {
		span.SetAttr("hit", true)
		span.End()
		return cp, nil
	}
	span.SetAttr("hit", false)
	cp, err := compileEntry(e)
	if err != nil {
		span.EndErr(err)
		return nil, err
	}
	s.predCache.put(key, e.Name, cp)
	span.End()
	return cp, nil
}
