package server

import (
	"bufio"
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// generatedIDRE is the shape of a server-assigned request ID.
var generatedIDRE = regexp.MustCompile(`^[0-9a-f]{16}$`)

// TestRequestIDAssigned: a request without X-Request-Id gets one assigned
// and echoed on the response.
func TestRequestIDAssigned(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get(obs.RequestIDHeader)
	if !generatedIDRE.MatchString(id) {
		t.Fatalf("assigned request ID %q, want 16 hex chars", id)
	}
}

// TestRequestIDHonored: a client-supplied ID is kept and echoed verbatim;
// a malformed one (header-injection shaped) is replaced, not echoed.
func TestRequestIDHonored(t *testing.T) {
	_, hs := newTestServer(t, Config{})

	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/healthz", nil)
	req.Header.Set(obs.RequestIDHeader, "trace-abc.123:7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "trace-abc.123:7" {
		t.Fatalf("client ID not echoed: got %q", got)
	}

	req, _ = http.NewRequest(http.MethodGet, hs.URL+"/healthz", nil)
	req.Header.Set(obs.RequestIDHeader, "bad id/with)chars")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); !generatedIDRE.MatchString(got) {
		t.Fatalf("malformed client ID %q must be replaced by a generated one, got %q", "bad id/with)chars", got)
	}
}

// TestLogsCarryRequestID: with a debug logger installed, every log line a
// request produces carries its request ID — including error paths.
func TestLogsCarryRequestID(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	_, hs := newTestServer(t, Config{Logger: logger})

	const id = "trace-logline-1"
	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/models/nope", nil)
	req.Header.Set(obs.RequestIDHeader, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		if !strings.Contains(line, "request_id="+id) {
			t.Errorf("log line missing request_id=%s: %s", id, line)
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("request produced no log lines at debug level")
	}
}

// TestJobCarriesRequestIDAndTimeline: a fit job inherits the submitting
// request's ID and reports a non-empty per-iteration solver timeline with
// fold and final-refit stages.
func TestJobCarriesRequestIDAndTimeline(t *testing.T) {
	_, hs := newTestServer(t, Config{FitWorkers: 1})

	const id = "trace-fitjob-1"
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/fit", strings.NewReader(chaosFitBody("obsjob")))
	req.Header.Set(obs.RequestIDHeader, id)
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	jobID := decode[FitResponse](t, resp).JobID

	st := waitTerminal(t, hs.URL, jobID, 30*time.Second)
	if st.State != JobDone {
		t.Fatalf("job state %s (%s), want done", st.State, st.Error)
	}
	if st.RequestID != id {
		t.Fatalf("job request_id %q, want %q", st.RequestID, id)
	}
	if len(st.Events) == 0 {
		t.Fatal("completed job has an empty event timeline")
	}
	stages := map[string]bool{}
	for i, ev := range st.Events {
		stages[ev.Stage] = true
		if ev.Iter < 1 {
			t.Errorf("event %d has iter %d, want ≥ 1", i, ev.Iter)
		}
		if ev.Active < 1 {
			t.Errorf("event %d has active %d, want ≥ 1", i, ev.Active)
		}
		if ev.Residual < 0 {
			t.Errorf("event %d has negative residual %g", i, ev.Residual)
		}
		if ev.ElapsedSeconds < 0 {
			t.Errorf("event %d has negative elapsed %g", i, ev.ElapsedSeconds)
		}
	}
	if !stages["final"] {
		t.Fatalf("timeline has no final-refit events (stages: %v)", stages)
	}
	if !stages["cv-fold-0"] {
		t.Fatalf("timeline has no fold-0 events (stages: %v)", stages)
	}
}

// TestMetricsPrometheusExposition: the Prometheus view must be selected by
// both the format parameter and Accept negotiation, carry the exposition
// content type, validate cleanly, and include the serving metric families.
func TestMetricsPrometheusExposition(t *testing.T) {
	_, hs := newTestServer(t, Config{FitWorkers: 1})
	uploadModel(t, hs.URL, "lin", 3)
	post(t, hs.URL+"/v1/models/lin/predict", `{"points":[[1,0,0]]}`).Body.Close()
	jobID := submitChaosFit(t, hs.URL, "obsprom")
	if st := waitTerminal(t, hs.URL, jobID, 30*time.Second); st.State != JobDone {
		t.Fatalf("fit state %s (%s), want done", st.State, st.Error)
	}

	fetch := func(url string, accept string) (string, string) {
		req, _ := http.NewRequest(http.MethodGet, url, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := fetch(hs.URL+"/metrics?format=prometheus", "")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q, want text exposition 0.0.4", ctype)
	}
	if err := obs.ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, family := range []string{
		"rsmd_http_requests_total", "rsmd_http_request_duration_seconds_bucket",
		"rsmd_predictions_total", "rsmd_jobs_total", "rsmd_fit_duration_seconds_bucket",
		"rsmd_fit_iterations_bucket", "rsmd_job_queue_depth", "rsmd_job_queue_wait_seconds_bucket",
		"rsmd_goroutines", "rsmd_heap_alloc_bytes", "rsmd_gc_pause_seconds_total",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("exposition missing %s", family)
		}
	}
	// The completed fit must have produced samples in the fit histograms.
	if !regexp.MustCompile(`rsmd_fit_duration_seconds_count [1-9]`).MatchString(body) {
		t.Error("rsmd_fit_duration_seconds_count is zero after a completed fit")
	}
	if !regexp.MustCompile(`rsmd_job_queue_wait_seconds_count [1-9]`).MatchString(body) {
		t.Error("rsmd_job_queue_wait_seconds_count is zero after a completed fit")
	}

	// Accept negotiation: a Prometheus scraper's text/plain preference picks
	// the exposition, an explicit JSON preference keeps the JSON tree.
	body, _ = fetch(hs.URL+"/metrics", "text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	if err := obs.ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("Accept-negotiated exposition invalid: %v", err)
	}
	body, ctype = fetch(hs.URL+"/metrics", "application/json")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("JSON view content type %q", ctype)
	}
	if !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Fatalf("JSON view body does not look like JSON: %.80s", body)
	}
}

// TestMetricsJSONBucketsCumulative is the regression test for the
// non-cumulative le_* bucket bug: the JSON view must render each latency
// bucket as the count of observations ≤ its bound, with le_inf equal to the
// route's total count.
func TestMetricsJSONBucketsCumulative(t *testing.T) {
	m := newMetrics()
	// Straddle several bounds: 0.0005 (≤0.001), 0.003 (≤0.005), 0.05 (≤0.1),
	// 20 (+Inf only).
	for _, sec := range []float64{0.0005, 0.003, 0.05, 20} {
		m.observe("GET /x", 200, time.Duration(sec*float64(time.Second)), "")
	}
	snap := m.Snapshot(0, 0, cacheStats{}, journalStatus{}, trace.Stats{}, nil)
	route := snap["requests"].(map[string]any)["GET /x"].(map[string]any)
	buckets := route["latency_buckets"].(map[string]int64)
	if buckets["le_0.001"] != 1 || buckets["le_0.005"] != 2 || buckets["le_0.1"] != 3 {
		t.Fatalf("buckets not cumulative: %v", buckets)
	}
	if last := buckets["le_inf"]; last != 4 {
		t.Fatalf("le_inf = %d, want total count 4", last)
	}
	prev := int64(0)
	for _, bound := range []string{"le_0.001", "le_0.005", "le_0.025", "le_0.1", "le_0.5", "le_2.5", "le_10", "le_inf"} {
		v, ok := buckets[bound]
		if !ok {
			t.Fatalf("missing bucket %s in %v", bound, buckets)
		}
		if v < prev {
			t.Fatalf("bucket %s = %d shrank below %d", bound, v, prev)
		}
		prev = v
	}
}

// TestMetricsJSONQueueAndRuntimeSections: the JSON tree must expose the
// queue depth/wait and runtime gauges alongside the original counters.
func TestMetricsJSONQueueAndRuntimeSections(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	snap := decode[map[string]any](t, resp)
	queue, ok := snap["queue"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing queue section: %v", snap["queue"])
	}
	if _, ok := queue["depth"].(float64); !ok {
		t.Fatalf("queue.depth missing: %v", queue)
	}
	if _, ok := queue["wait_seconds"].(map[string]any); !ok {
		t.Fatalf("queue.wait_seconds missing: %v", queue)
	}
	rt, ok := snap["runtime"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing runtime section: %v", snap["runtime"])
	}
	if g, ok := rt["goroutines"].(float64); !ok || g < 1 {
		t.Fatalf("runtime.goroutines = %v, want ≥ 1", rt["goroutines"])
	}
	if _, ok := snap["fit"].(map[string]any); !ok {
		t.Fatalf("metrics missing fit section: %v", snap["fit"])
	}
}

// flushProbe is a ResponseWriter that records Flush calls.
type flushProbe struct {
	http.ResponseWriter
	flushed bool
}

func (f *flushProbe) Flush() { f.flushed = true }

// TestStatusRecorderFlusherPassthrough: the middleware's statusRecorder must
// forward Flush to a flushable underlying writer — both via the http.Flusher
// assertion handlers use and via http.ResponseController's Unwrap walk — and
// stay a silent no-op over a non-flushable one.
func TestStatusRecorderFlusherPassthrough(t *testing.T) {
	probe := &flushProbe{ResponseWriter: httptest.NewRecorder()}
	rec := &statusRecorder{ResponseWriter: probe, status: http.StatusOK}

	var w http.ResponseWriter = rec
	f, ok := w.(http.Flusher)
	if !ok {
		t.Fatal("statusRecorder does not expose http.Flusher")
	}
	f.Flush()
	if !probe.flushed {
		t.Fatal("Flush not forwarded to the underlying writer")
	}

	probe.flushed = false
	rc := http.NewResponseController(rec)
	if err := rc.Flush(); err != nil {
		t.Fatalf("ResponseController.Flush: %v", err)
	}
	if !probe.flushed {
		t.Fatal("ResponseController did not reach the underlying Flusher through Unwrap")
	}

	// A non-flushable underlying writer: Flush must be a no-op, not a panic.
	bare := &statusRecorder{ResponseWriter: nonFlushableWriter{httptest.NewRecorder()}}
	bare.Flush()
}

// nonFlushableWriter hides httptest.ResponseRecorder's Flush method: only
// the embedded interface's three methods are promoted.
type nonFlushableWriter struct{ http.ResponseWriter }

// TestFlushReachesHTTPClient drives a real streaming response through the
// full middleware chain: if trace's statusRecorder swallowed http.Flusher,
// the two chunks would arrive only at request end.
func TestFlushReachesHTTPClient(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.trace("GET /stream", func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Error("handler behind trace middleware cannot flush")
			return
		}
		io.WriteString(w, "chunk-1\n")
		f.Flush()
		io.WriteString(w, "chunk-2\n")
	})
	hs := httptest.NewServer(h)
	defer hs.Close()
	resp, err := http.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil || line != "chunk-1\n" {
		t.Fatalf("first chunk %q (%v)", line, err)
	}
	if len(resp.TransferEncoding) == 0 || resp.TransferEncoding[0] != "chunked" {
		t.Fatalf("transfer encoding %v, want chunked (flush mid-body)", resp.TransferEncoding)
	}
}
