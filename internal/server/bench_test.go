package server

import (
	"context"
	"io"
	"log/slog"
	"testing"
	"time"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/rng"
)

// The serving reference model mirrors the fit-path benchmark scale: a
// quadratic Hermite dictionary over 99 variables (M = 5050) with a
// 20-term support, the kind of model the K = 500 Monte Carlo fit produces.
// BenchmarkPredictServed measures a single-point predict request through
// the serving engine in its three regimes:
//
//	cold      — no predictor cache: every request re-lowers the model
//	            (basis lookup + support compilation) before evaluating
//	cached    — LRU hit: the compiled predictor is reused as-is
//	coalesced — micro-batching on: concurrent single-point requests for
//	            the same model version share one evaluation
//
// The acceptance bar for the cache is cached ≥ 2x cold at batch = 1.
const (
	servedBenchDim = 99 // quadratic dictionary: M = 5050
	servedBenchNNZ = 20
)

func servedBenchRegistry(b *testing.B) (*registry.Registry, *registry.Entry) {
	b.Helper()
	dict := basis.Quadratic(servedBenchDim)
	src := rng.New(41)
	support := src.Perm(dict.Size())[:servedBenchNNZ]
	env := &core.Envelope{
		Model: &core.Model{M: dict.Size(), Support: support, Coef: src.NormVec(nil, servedBenchNNZ)},
		Basis: dict.Desc,
		Prov:  core.Provenance{Solver: "LAR", Lambda: servedBenchNNZ, Samples: 500},
	}
	reg := registry.New()
	if _, err := reg.Put("ref", env); err != nil {
		b.Fatal(err)
	}
	e, ok := reg.Get("ref")
	if !ok {
		b.Fatal("reference model missing after Put")
	}
	return reg, e
}

func servedBenchServer(b *testing.B, reg *registry.Registry, cfg Config) *Server {
	b.Helper()
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	s, err := New(reg, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	return s
}

func BenchmarkPredictServed(b *testing.B) {
	reg, e := servedBenchRegistry(b)
	point := [][]float64{rng.New(7).NormVec(nil, servedBenchDim)}

	b.Run("cold", func(b *testing.B) {
		s := servedBenchServer(b, reg, Config{PredictCacheSize: -1, PredictWorkers: 1})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cp, err := s.compiled(context.Background(), e)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cp.Predict(nil, point, s.cfg.PredictWorkers); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("cached", func(b *testing.B) {
		s := servedBenchServer(b, reg, Config{PredictWorkers: 1})
		if _, err := s.compiled(context.Background(), e); err != nil { // warm the LRU
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cp, err := s.compiled(context.Background(), e)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cp.Predict(nil, point, s.cfg.PredictWorkers); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("coalesced", func(b *testing.B) {
		s := servedBenchServer(b, reg, Config{
			PredictWorkers: 1,
			BatchWindow:    100 * time.Microsecond,
			BatchMaxPoints: 256,
		})
		cp, err := s.compiled(context.Background(), e)
		if err != nil {
			b.Fatal(err)
		}
		key := predictorKey(e.Name, e.Version)
		// Micro-batching only pays under concurrency: model the busy-server
		// regime with many single-point callers per core so each window
		// flush amortizes across a real coalesced batch.
		b.SetParallelism(32)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			ctx := b.Context()
			for pb.Next() {
				if _, _, err := s.batcher.predict(ctx, key, cp, point); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}
