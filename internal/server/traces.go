package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs/trace"
)

// This file serves the tracing read side: the tail-sampled trace store
// (GET /v1/traces, GET /v1/traces/{id}), the per-job trace tree
// (GET /v1/jobs/{id}/trace) and the live job event stream
// (GET /v1/jobs/{id}/events, SSE with ?stream=1).

// sseKeepalive is the comment-ping interval of the SSE stream, keeping
// intermediaries from idling out a quiet tail (a long sampling stage can
// legitimately go this long without an event).
const sseKeepalive = 15 * time.Second

// traceSummary renders one trace's header for the list endpoint.
func traceSummary(d *trace.Data) TraceSummary {
	return TraceSummary{
		TraceID:         d.TraceID,
		Name:            d.Name,
		Status:          d.Status,
		Start:           d.Start,
		DurationSeconds: d.Duration.Seconds(),
		Spans:           len(d.Spans),
		Dropped:         d.Dropped,
		Complete:        d.Complete,
	}
}

// spanNode converts an assembled trace tree into the wire shape.
func spanNode(n *trace.Node) *SpanNode {
	if n == nil {
		return nil
	}
	out := &SpanNode{
		SpanID:          n.SpanID,
		ParentID:        n.ParentID,
		Name:            n.Name,
		Start:           n.Start,
		DurationSeconds: n.Duration.Seconds(),
		Status:          n.Status,
		Error:           n.Error,
		Attrs:           n.Attrs,
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, spanNode(c))
	}
	return out
}

// traceResponse assembles one trace's span tree for the detail endpoints.
func traceResponse(d *trace.Data) TraceResponse {
	root := trace.BuildTree(d.Spans)
	return TraceResponse{
		TraceID:         d.TraceID,
		Name:            d.Name,
		Status:          d.Status,
		Start:           d.Start,
		DurationSeconds: d.Duration.Seconds(),
		Complete:        d.Complete,
		Dropped:         d.Dropped,
		Spans:           trace.CountNodes(root),
		Depth:           trace.Depth(root),
		Root:            spanNode(root),
	}
}

// tracingEnabled 404s the trace endpoints when the store is disabled
// (-trace-store 0), mirroring how other opt-out subsystems surface.
func (s *Server) tracingEnabled(w http.ResponseWriter) bool {
	if s.traces == nil {
		writeErr(w, http.StatusNotFound, "tracing disabled (-trace-store 0)")
		return false
	}
	return true
}

// parseDurationParam accepts a Go duration string ("250ms") or a bare
// float in seconds ("0.25").
func parseDurationParam(raw string) (time.Duration, error) {
	if d, err := time.ParseDuration(raw); err == nil {
		return d, nil
	}
	sec, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q (want Go duration or seconds)", raw)
	}
	return time.Duration(sec * float64(time.Second)), nil
}

// handleTraceList lists sealed traces newest-first, filterable by
// route/name substring, status, and minimum duration.
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	if !s.tracingEnabled(w) {
		return
	}
	q := r.URL.Query()
	f := trace.Filter{
		Name:   q.Get("route"),
		Status: q.Get("status"),
	}
	if f.Name == "" {
		f.Name = q.Get("name")
	}
	if raw := q.Get("min_duration"); raw != "" {
		d, err := parseDurationParam(raw)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "min_duration: %v", err)
			return
		}
		f.MinDuration = d
	}
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, "limit=%q, need a positive integer", raw)
			return
		}
		f.Limit = n
	}
	list := s.traces.List(f)
	resp := TraceListResponse{Traces: make([]TraceSummary, len(list))}
	for i, d := range list {
		resp.Traces[i] = traceSummary(d)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTraceGet returns one trace's assembled span tree — sealed from the
// ring, or a live snapshot of a still-open trace.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if !s.tracingEnabled(w) {
		return
	}
	id := r.PathValue("id")
	d, ok := s.traces.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown trace %q (sampled out or evicted?)", id)
		return
	}
	writeJSON(w, http.StatusOK, traceResponse(d))
}

// handleJobTrace resolves a job (fit or pipeline) to its trace tree:
// "my fit is slow" starts at the job ID, not the trace ID.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	if !s.tracingEnabled(w) {
		return
	}
	id := r.PathValue("id")
	if s.redirectJob(w, r, id) {
		return
	}
	j, ok := s.jobs.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if j.traceID == "" {
		writeErr(w, http.StatusNotFound, "job %q has no trace (submitted before tracing was enabled?)", id)
		return
	}
	d, ok := s.traces.Get(j.traceID)
	if !ok {
		writeErr(w, http.StatusNotFound, "trace %q for job %q no longer stored (evicted)", j.traceID, id)
		return
	}
	writeJSON(w, http.StatusOK, traceResponse(d))
}

// handleJobEvents serves a job's unified event timeline. The default is a
// JSON snapshot; ?stream=1 upgrades to Server-Sent Events and tails the
// live job until it reaches a terminal state or the client disconnects.
// Fit jobs and pipeline jobs share the endpoint — the event types differ,
// the wire shape does not.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.redirectJob(w, r, id) {
		return
	}
	j, ok := s.jobs.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if !wantsStream(r) {
		snapshot, _, cancel := j.subscribe()
		cancel()
		writeJSON(w, http.StatusOK, JobEventList{
			JobID:  j.id,
			State:  j.status().State,
			Events: snapshot,
		})
		return
	}

	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusNotImplemented, "streaming unsupported by this connection")
		return
	}
	snapshot, ch, cancel := j.subscribe()
	defer cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	send := func(ev JobEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	for _, ev := range snapshot {
		if !send(ev) {
			return
		}
	}
	if ch == nil {
		return // job already terminal: the snapshot was the whole story
	}
	keepalive := time.NewTicker(sseKeepalive)
	defer keepalive.Stop()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return // terminal transition closed the subscription
			}
			if !send(ev) {
				return
			}
		case <-keepalive.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// wantsStream reports whether the events request asked for SSE, via
// ?stream=1 or an Accept header preferring text/event-stream.
func wantsStream(r *http.Request) bool {
	switch r.URL.Query().Get("stream") {
	case "1", "true":
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}
