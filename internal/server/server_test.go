package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/obs/trace"
	"repro/internal/registry"
	"repro/internal/rng"
)

// newTestServer spins up a server over an in-memory registry. Logs are
// discarded unless the config brings its own logger (tests asserting on log
// output do).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s, err := New(registry.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

// envelopeJSON serializes a small linear model over dim variables.
func envelopeJSONBytes(t *testing.T, dim int) []byte {
	t.Helper()
	b := basis.Linear(dim)
	env := &core.Envelope{
		Model: &core.Model{M: b.Size(), Support: []int{1, 2}, Coef: []float64{2, -3}},
		Basis: b.Desc,
		Prov:  core.Provenance{Solver: "OMP", Lambda: 2, Metric: "f"},
	}
	var buf bytes.Buffer
	if err := core.WriteEnvelope(&buf, env); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// post sends a JSON body and returns the response.
func post(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func uploadModel(t *testing.T, baseURL, name string, dim int) {
	t.Helper()
	req, _ := json.Marshal(UploadRequest{Name: name, Model: envelopeJSONBytes(t, dim)})
	resp := post(t, baseURL+"/v1/models", string(req))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHandlerErrors(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxBatch: 10})
	uploadModel(t, hs.URL, "lin", 3)

	legacyUpload, _ := json.Marshal(UploadRequest{
		Name:  "legacy",
		Model: json.RawMessage(`{"m":4,"support":[1],"coef":[2]}`),
	})
	bigBatch := `{"points":[` + strings.Repeat(`[0,0,0],`, 10) + `[0,0,0]]}`

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"predict ok", "POST", "/v1/models/lin/predict", `{"points":[[1,0,0],[0,1,0]]}`, 200},
		{"predict bad json", "POST", "/v1/models/lin/predict", `{"points":[[1,`, 400},
		{"predict unknown field", "POST", "/v1/models/lin/predict", `{"pts":[[1,0,0]]}`, 400},
		{"predict unknown model", "POST", "/v1/models/nope/predict", `{"points":[[1,0,0]]}`, 404},
		{"predict dim mismatch", "POST", "/v1/models/lin/predict", `{"points":[[1,0]]}`, 400},
		{"predict empty", "POST", "/v1/models/lin/predict", `{"points":[]}`, 400},
		{"predict oversized batch", "POST", "/v1/models/lin/predict", bigBatch, 413},
		{"upload bad json", "POST", "/v1/models", `nope`, 400},
		{"upload bad name", "POST", "/v1/models", `{"name":"../x","model":{"m":1,"support":[],"coef":[]}}`, 400},
		{"upload legacy no basis", "POST", "/v1/models", string(legacyUpload), 400},
		{"upload missing model", "POST", "/v1/models", `{"name":"x"}`, 400},
		{"model info ok", "GET", "/v1/models/lin", "", 200},
		{"model info unknown", "GET", "/v1/models/nope", "", 404},
		{"yield unknown model", "POST", "/v1/models/nope/yield", `{}`, 404},
		{"yield bad quantile", "POST", "/v1/models/lin/yield", `{"quantiles":[1.5]}`, 400},
		{"yield bad n", "POST", "/v1/models/lin/yield", `{"n":-5}`, 400},
		{"fit bad solver", "POST", "/v1/fit", `{"name":"m","solver":"newton","points":[[1]],"values":[1]}`, 400},
		{"fit bad name", "POST", "/v1/fit", `{"name":"!!","points":[[1]],"values":[1]}`, 400},
		{"fit no dataset", "POST", "/v1/fit", `{"name":"m"}`, 400},
		{"fit bad folds", "POST", "/v1/fit", `{"name":"m","folds":1,"points":[[1]],"values":[1]}`, 400},
		{"fit bad degree", "POST", "/v1/fit", `{"name":"m","degree":9,"points":[[1]],"values":[1]}`, 400},
		{"job unknown", "GET", "/v1/jobs/job-999999", "", 404},
		{"healthz", "GET", "/healthz", "", 200},
		{"metrics", "GET", "/metrics", "", 200},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var err error
			if tc.method == "GET" {
				resp, err = http.Get(hs.URL + tc.path)
			} else {
				resp, err = http.Post(hs.URL+tc.path, "application/json", strings.NewReader(tc.body))
			}
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				body := new(bytes.Buffer)
				_, _ = body.ReadFrom(resp.Body)
				t.Fatalf("HTTP %d, want %d (body: %s)", resp.StatusCode, tc.want, body.String())
			}
			// Error responses must carry the uniform JSON error body, not a
			// bare 5xx.
			if tc.want >= 400 {
				e := decode[ErrorResponse](t, resp)
				if e.Error == "" {
					t.Fatal("error response has empty error message")
				}
			}
		})
	}
}

func TestPredictValuesAndMetrics(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	uploadModel(t, hs.URL, "lin", 3) // f(y) = 2·y0 − 3·y1

	resp := post(t, hs.URL+"/v1/models/lin/predict", `{"points":[[1,0,0],[0,1,0],[0.5,-2,9]]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	pr := decode[PredictResponse](t, resp)
	want := []float64{2, -3, 7}
	for i, v := range want {
		if diff := pr.Values[i] - v; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("value %d = %g, want %g", i, pr.Values[i], v)
		}
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := decode[map[string]any](t, resp)
	preds := m["predictions"].(map[string]any)
	if got := preds["lin"].(float64); got != 3 {
		t.Fatalf("prediction counter = %v, want 3", got)
	}
	requests := m["requests"].(map[string]any)
	route := requests["POST /v1/models/{name}/predict"].(map[string]any)
	if route["count"].(float64) != 1 || route["errors"].(float64) != 0 {
		t.Fatalf("route stats %v", route)
	}
}

func TestYieldEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	uploadModel(t, hs.URL, "lin", 3) // N(0, 2²+3²) → std = √13

	resp := post(t, hs.URL+"/v1/models/lin/yield",
		`{"low":0,"n":200000,"quantiles":[0.5]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	yr := decode[YieldResponse](t, resp)
	if yr.Mean != 0 {
		t.Errorf("mean %g, want 0", yr.Mean)
	}
	if d := yr.Std - 3.605551; d > 1e-5 || d < -1e-5 {
		t.Errorf("std %g, want √13", yr.Std)
	}
	if yr.Yield == nil || *yr.Yield < 0.48 || *yr.Yield > 0.52 {
		t.Errorf("yield %v, want ≈ 0.5", yr.Yield)
	}
	if len(yr.Quantiles) != 1 || yr.Quantiles[0] < -0.1 || yr.Quantiles[0] > 0.1 {
		t.Errorf("median %v, want ≈ 0", yr.Quantiles)
	}
}

func TestFitJobLifecycle(t *testing.T) {
	_, hs := newTestServer(t, Config{FitWorkers: 1})

	// Synthetic linear ground truth f = 1 + 2·y0 − 3·y2 over 3 variables.
	src := rng.New(5)
	const n = 80
	points := make([][]float64, n)
	values := make([]float64, n)
	for k := range points {
		y := src.NormVec(nil, 3)
		points[k] = y
		values[k] = 1 + 2*y[0] - 3*y[2]
	}
	req, _ := json.Marshal(FitRequest{Name: "truth", Points: points, Values: values, MaxLambda: 5})
	resp := post(t, hs.URL+"/v1/fit", string(req))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	fr := decode[FitResponse](t, resp)
	if fr.JobID == "" {
		t.Fatal("no job id")
	}

	var st JobStatus
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(hs.URL + "/v1/jobs/" + fr.JobID)
		if err != nil {
			t.Fatal(err)
		}
		st = decode[JobStatus](t, r)
		if st.State == JobDone || st.State == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != JobDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	if st.Result == nil || st.Result.Model.Name != "truth" || st.Result.Model.Version != 1 {
		t.Fatalf("result %+v", st.Result)
	}
	if st.Result.Lambda != 3 {
		t.Errorf("selected λ = %d, want 3 (constant + 2 linear terms)", st.Result.Lambda)
	}
	if st.Result.Model.Provenance.Solver != "OMP" || st.Result.Model.Provenance.Samples != n {
		t.Errorf("provenance %+v", st.Result.Model.Provenance)
	}

	// The fitted model must serve exact predictions of the ground truth.
	resp = post(t, hs.URL+"/v1/models/truth/predict", `{"points":[[1,9,2]]}`)
	pr := decode[PredictResponse](t, resp)
	if d := pr.Values[0] - (1 + 2 - 6); d > 1e-9 || d < -1e-9 {
		t.Fatalf("prediction %g, want -3", pr.Values[0])
	}
}

func TestFitJobFailureIsReported(t *testing.T) {
	_, hs := newTestServer(t, Config{FitWorkers: 1})
	// 3 points cannot sustain 4-fold CV → worker-side failure.
	req, _ := json.Marshal(FitRequest{
		Name:   "tiny",
		Points: [][]float64{{1}, {2}, {3}},
		Values: []float64{1, 2, 3},
	})
	resp := post(t, hs.URL+"/v1/fit", string(req))
	fr := decode[FitResponse](t, resp)
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(hs.URL + "/v1/jobs/" + fr.JobID)
		if err != nil {
			t.Fatal(err)
		}
		st := decode[JobStatus](t, r)
		if st.State == JobFailed {
			if st.Error == "" {
				t.Fatal("failed job has no error message")
			}
			return
		}
		if st.State == JobDone {
			t.Fatal("job should have failed")
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestJobQueueBackpressure(t *testing.T) {
	q := newJobQueue(2, nil, nil, nil) // no workers draining
	if _, _, err := q.submit(context.Background(), FitRequest{Name: "a"}, "", ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.submit(context.Background(), FitRequest{Name: "b"}, "", ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.submit(context.Background(), FitRequest{Name: "c"}, "", ""); err == nil {
		t.Fatal("third submit should hit the queue bound")
	}
	q.startWorkers(1, func(j *job) {
		j.mu.Lock()
		j.state = JobDone
		j.mu.Unlock()
	})
	q.close()
	for _, id := range []string{"job-000001", "job-000002"} {
		j, ok := q.get(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		if j.status().State != JobDone {
			t.Fatalf("%s state %s", id, j.status().State)
		}
	}
	if _, _, err := q.submit(context.Background(), FitRequest{Name: "d"}, "", ""); err == nil {
		t.Fatal("submit after close should fail")
	}
}

func TestUploadVersionBump(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	for v := 1; v <= 2; v++ {
		req, _ := json.Marshal(UploadRequest{Name: "lin", Model: envelopeJSONBytes(t, 3)})
		resp := post(t, hs.URL+"/v1/models", string(req))
		info := decode[ModelInfo](t, resp)
		if info.Version != v {
			t.Fatalf("version %d, want %d", info.Version, v)
		}
	}
	resp, err := http.Get(hs.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	lr := decode[ListResponse](t, resp)
	if len(lr.Models) != 1 || lr.Models[0].Version != 2 || lr.Models[0].NNZ != 2 {
		t.Fatalf("listing %+v", lr.Models)
	}
	if lr.Models[0].Basis != (basis.Descriptor{Kind: basis.KindLinear, Dim: 3}) {
		t.Fatalf("listing descriptor %+v", lr.Models[0].Basis)
	}
}

func TestConcurrentPredicts(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	uploadModel(t, hs.URL, "lin", 3)
	const clients = 8
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			body := fmt.Sprintf(`{"points":[[%d,1,0],[0,2,1]]}`, c)
			for i := 0; i < 20; i++ {
				resp, err := http.Post(hs.URL+"/v1/models/lin/predict", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("HTTP %d", resp.StatusCode)
					return
				}
			}
			errs <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	snap := s.metrics.Snapshot(1, 0, s.predCache.stats(), journalStatus{}, trace.Stats{}, nil)
	preds := snap["predictions"].(map[string]int64)
	if preds["lin"] != clients*20*2 {
		t.Fatalf("prediction counter %d, want %d", preds["lin"], clients*20*2)
	}
}
