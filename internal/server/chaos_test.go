package server

// Chaos suite (make chaos): each test arms a fault through the
// internal/faultinject harness, drives the daemon into it over real HTTP,
// and verifies the blast radius stayed contained — the daemon keeps
// answering /healthz, keeps predicting, and the incident shows up in
// /metrics. These tests are the executable form of the package's
// robustness contract and run under -race in CI.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/registry"
)

// armFaults resets the harness, arms spec, and schedules cleanup so no
// fault leaks into another test.
func armFaults(t *testing.T, spec string) {
	t.Helper()
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	if err := faultinject.Configure(spec); err != nil {
		t.Fatalf("arm %q: %v", spec, err)
	}
}

// chaosFitBody is a small well-posed fit request over 2 variables.
func chaosFitBody(name string) string {
	return fmt.Sprintf(`{"name":%q,"folds":2,"max_lambda":3,
		"points":[[0.1,0.2],[0.3,-0.4],[-0.5,0.6],[0.7,0.8],[0.2,-0.6],[-0.3,0.5]],
		"values":[1,2,3,4,5,6]}`, name)
}

// submitChaosFit enqueues a fit and returns the job id.
func submitChaosFit(t *testing.T, baseURL, name string) string {
	t.Helper()
	resp := post(t, baseURL+"/v1/fit", chaosFitBody(name))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	return decode[FitResponse](t, resp).JobID
}

// getJobStatus polls one job over HTTP.
func getJobStatus(t *testing.T, baseURL, id string) *JobStatus {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job %s: HTTP %d", id, resp.StatusCode)
	}
	st := decode[JobStatus](t, resp)
	return &st
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, baseURL, id string, budget time.Duration) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(budget)
	for {
		st := getJobStatus(t, baseURL, id)
		if terminalState(st.State) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitRunning polls until the worker has picked the job up.
func waitRunning(t *testing.T, baseURL, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := getJobStatus(t, baseURL, id)
		if st.State != JobPending {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never left pending", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertHealthy fails unless /healthz answers 200 — the post-incident
// liveness check every chaos test ends with.
func assertHealthy(t *testing.T, baseURL string) {
	t.Helper()
	resp, err := http.Get(baseURL + "/healthz")
	if err != nil {
		t.Fatalf("daemon unreachable after fault: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz HTTP %d after fault, want 200", resp.StatusCode)
	}
}

// assertPredicts fails unless the named uploaded model (dim 3, f = 2y0−3y1)
// still evaluates correctly.
func assertPredicts(t *testing.T, baseURL, name string) {
	t.Helper()
	resp := post(t, baseURL+"/v1/models/"+name+"/predict", `{"points":[[1,1,0]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after fault: HTTP %d", resp.StatusCode)
	}
	pr := decode[PredictResponse](t, resp)
	if len(pr.Values) != 1 || pr.Values[0] != -1 {
		t.Fatalf("predict after fault: values %v, want [-1]", pr.Values)
	}
}

// metricInt digs an integer counter out of the /metrics tree.
func metricInt(t *testing.T, baseURL string, path ...string) int64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	node := any(decode[map[string]any](t, resp))
	for _, key := range path {
		m, ok := node.(map[string]any)
		if !ok {
			t.Fatalf("metrics path %v: %T is not an object", path, node)
		}
		if node, ok = m[key]; !ok {
			t.Fatalf("metrics path %v: missing %q", path, key)
		}
	}
	f, ok := node.(float64)
	if !ok {
		t.Fatalf("metrics path %v: %T is not a number", path, node)
	}
	return int64(f)
}

// cancelJob drives DELETE /v1/jobs/{id} and returns the response.
func cancelJob(t *testing.T, baseURL, id string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, baseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestChaosFitPanicIsolated injects a panic into the fit worker: the job
// must fail with the incident recorded while the daemon keeps serving, and
// the next fit (fault exhausted) must succeed.
func TestChaosFitPanicIsolated(t *testing.T) {
	armFaults(t, "server.fit=panic#1")
	_, hs := newTestServer(t, Config{FitWorkers: 1})
	uploadModel(t, hs.URL, "lin", 3)

	id := submitChaosFit(t, hs.URL, "chaosfit")
	st := waitTerminal(t, hs.URL, id, 10*time.Second)
	if st.State != JobFailed || !strings.Contains(st.Error, "panicked") {
		t.Fatalf("state %s error %q, want failed with panic message", st.State, st.Error)
	}

	assertHealthy(t, hs.URL)
	assertPredicts(t, hs.URL, "lin")
	if n := metricInt(t, hs.URL, "incidents", "panics_recovered"); n < 1 {
		t.Fatalf("panics_recovered = %d, want ≥ 1", n)
	}

	// The worker survived the panic: it must pick up and complete this one.
	id2 := submitChaosFit(t, hs.URL, "chaosfit")
	if st2 := waitTerminal(t, hs.URL, id2, 30*time.Second); st2.State != JobDone {
		t.Fatalf("post-panic fit state %s (%s), want done", st2.State, st2.Error)
	}
}

// TestChaosPredictPanicIsolated injects a panic into the predict handler:
// the request gets a 500 (counted against the route), not a dead daemon.
func TestChaosPredictPanicIsolated(t *testing.T) {
	armFaults(t, "server.predict=panic#1")
	_, hs := newTestServer(t, Config{})
	uploadModel(t, hs.URL, "lin", 3)

	resp := post(t, hs.URL+"/v1/models/lin/predict", `{"points":[[1,1,0]]}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("HTTP %d, want 500 from injected panic", resp.StatusCode)
	}
	if e := decode[ErrorResponse](t, resp); !strings.Contains(e.Error, "panicked") {
		t.Fatalf("error body %q, want panic incident message", e.Error)
	}

	assertHealthy(t, hs.URL)
	assertPredicts(t, hs.URL, "lin")
	if n := metricInt(t, hs.URL, "incidents", "panics_recovered"); n != 1 {
		t.Fatalf("panics_recovered = %d, want 1", n)
	}
	if n := metricInt(t, hs.URL, "requests", "POST /v1/models/{name}/predict", "errors"); n < 1 {
		t.Fatalf("predict route errors = %d, want the recovered 500 counted", n)
	}
}

// TestChaosRegistryWriteFailure makes the first persistence attempt die
// between temp write and rename (a simulated crash): that job fails, the
// store stays clean, and the next fit persists and serves normally.
func TestChaosRegistryWriteFailure(t *testing.T) {
	armFaults(t, "registry.write=error#1")
	dir := t.TempDir()
	reg, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(reg, Config{FitWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(func() { hs.Close(); s.Close() })

	id := submitChaosFit(t, hs.URL, "chaoswr")
	st := waitTerminal(t, hs.URL, id, 10*time.Second)
	if st.State != JobFailed || !strings.Contains(st.Error, "injected") {
		t.Fatalf("state %s error %q, want failed with injected write error", st.State, st.Error)
	}
	assertHealthy(t, hs.URL)

	// The fault is exhausted: the same fit must now persist and serve.
	id2 := submitChaosFit(t, hs.URL, "chaoswr")
	if st2 := waitTerminal(t, hs.URL, id2, 30*time.Second); st2.State != JobDone {
		t.Fatalf("post-crash fit state %s (%s), want done", st2.State, st2.Error)
	}
	resp, err := http.Get(hs.URL + "/v1/models/chaoswr")
	if err != nil {
		t.Fatal(err)
	}
	info := decode[ModelInfo](t, resp)
	if info.Version != 1 {
		t.Fatalf("version %d, want 1 (failed write must not burn a version)", info.Version)
	}

	// A fresh registry over the same store must load cleanly: no torn file.
	reg2, err := registry.Open(dir)
	if err != nil {
		t.Fatalf("reopen store after simulated crash: %v", err)
	}
	if _, ok := reg2.Get("chaoswr"); !ok {
		t.Fatal("model missing after store reopen")
	}
}

// TestChaosStalledJobTimesOut stalls the fit worker far past the per-job
// deadline: the job must land in timed_out, not wedge the worker.
func TestChaosStalledJobTimesOut(t *testing.T) {
	armFaults(t, "server.fit=delay:60s")
	_, hs := newTestServer(t, Config{FitWorkers: 1, FitTimeout: 300 * time.Millisecond})

	id := submitChaosFit(t, hs.URL, "chaosstall")
	st := waitTerminal(t, hs.URL, id, 10*time.Second)
	if st.State != JobTimedOut {
		t.Fatalf("state %s (%s), want timed_out", st.State, st.Error)
	}
	assertHealthy(t, hs.URL)
	if n := metricInt(t, hs.URL, "jobs", "timed_out"); n != 1 {
		t.Fatalf("jobs.timed_out = %d, want 1", n)
	}
	// Worker survived the timeout: with the stall disarmed it must pick up
	// and complete the next job.
	faultinject.Reset()
	id2 := submitChaosFit(t, hs.URL, "chaosstall")
	if st2 := waitTerminal(t, hs.URL, id2, 30*time.Second); st2.State != JobDone {
		t.Fatalf("post-stall fit state %s (%s), want done", st2.State, st2.Error)
	}
}

// TestChaosStalledJobCanceledViaDelete cancels a stalled running job through
// the API: cancellation must cut the 60s stall short.
func TestChaosStalledJobCanceledViaDelete(t *testing.T) {
	armFaults(t, "server.fit=delay:60s")
	_, hs := newTestServer(t, Config{FitWorkers: 1})

	id := submitChaosFit(t, hs.URL, "chaoscancel")
	waitRunning(t, hs.URL, id)

	resp := cancelJob(t, hs.URL, id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()
	start := time.Now()
	st := waitTerminal(t, hs.URL, id, 10*time.Second)
	if st.State != JobCanceled {
		t.Fatalf("state %s (%s), want canceled", st.State, st.Error)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v against a 60s stall", elapsed)
	}
	assertHealthy(t, hs.URL)
	if n := metricInt(t, hs.URL, "jobs", "canceled"); n != 1 {
		t.Fatalf("jobs.canceled = %d, want 1", n)
	}

	if resp := cancelJob(t, hs.URL, "job-424242"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown job: HTTP %d, want 404", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// TestChaosLoadSheddingWithRetryAfter saturates the fit queue behind a
// stalled worker: further fits and interactive predict traffic must be shed
// with 503 + Retry-After instead of queuing unboundedly, and service must
// resume once the backlog clears.
func TestChaosLoadSheddingWithRetryAfter(t *testing.T) {
	armFaults(t, "server.fit=delay:60s")
	_, hs := newTestServer(t, Config{FitWorkers: 1, QueueDepth: 1})
	uploadModel(t, hs.URL, "lin", 3)

	// Job 1 occupies the lone worker (stalled); job 2 fills the queue.
	id1 := submitChaosFit(t, hs.URL, "chaosshed")
	waitRunning(t, hs.URL, id1)
	id2 := submitChaosFit(t, hs.URL, "chaosshed")

	// Queue saturated: fit submissions bounce with Retry-After...
	resp := post(t, hs.URL+"/v1/fit", chaosFitBody("chaosshed"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fit on full queue: HTTP %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("fit 503 carries no Retry-After header")
	}
	resp.Body.Close()

	// ...and so does predict traffic, which must fail fast, not slow.
	resp = post(t, hs.URL+"/v1/models/lin/predict", `{"points":[[1,1,0]]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict while saturated: HTTP %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed predict carries no Retry-After header")
	}
	if e := decode[ErrorResponse](t, resp); !strings.Contains(e.Error, "overloaded") {
		t.Fatalf("shed body %q", e.Error)
	}
	if n := metricInt(t, hs.URL, "incidents", "requests_shed"); n < 1 {
		t.Fatalf("requests_shed = %d, want ≥ 1", n)
	}

	// Clear the backlog; predicts must flow again.
	for _, id := range []string{id2, id1} {
		resp := cancelJob(t, hs.URL, id)
		resp.Body.Close()
	}
	waitTerminal(t, hs.URL, id1, 10*time.Second)
	waitTerminal(t, hs.URL, id2, 10*time.Second)
	assertPredicts(t, hs.URL, "lin")
	assertHealthy(t, hs.URL)
}

// TestChaosPredictDeadline stalls the predict handler past the per-request
// deadline: the caller gets a 504, not an indefinite hang.
func TestChaosPredictDeadline(t *testing.T) {
	armFaults(t, "server.predict=delay:60s")
	_, hs := newTestServer(t, Config{RequestTimeout: 200 * time.Millisecond})
	uploadModel(t, hs.URL, "lin", 3)

	start := time.Now()
	resp := post(t, hs.URL+"/v1/models/lin/predict", `{"points":[[1,1,0]]}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("HTTP %d, want 504", resp.StatusCode)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline response took %v against a 60s stall", elapsed)
	}
	faultinject.Reset()
	assertPredicts(t, hs.URL, "lin")
	assertHealthy(t, hs.URL)
}

// TestDrainingHealthz checks the readiness flip: a draining daemon answers
// 503/"draining" so load balancers rotate it out while work finishes.
func TestDrainingHealthz(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	assertHealthy(t, hs.URL)
	s.BeginDrain()
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: HTTP %d, want 503", resp.StatusCode)
	}
	if h := decode[HealthResponse](t, resp); h.Status != "draining" {
		t.Fatalf("draining healthz status %q", h.Status)
	}
}

// TestPredictRejectsNonFinitePoints is the input-validation check: NaN/Inf
// coordinates are rejected with the offending row and column named. Strict
// JSON cannot express NaN, so the validator is exercised directly; the HTTP
// layer is checked with an out-of-range literal, which must also 400.
func TestPredictRejectsNonFinitePoints(t *testing.T) {
	err := validatePoints([][]float64{{1, 1, 0}, {0, math.NaN(), 0}}, 3)
	if err == nil || !strings.Contains(err.Error(), "point 1 coordinate 1") {
		t.Fatalf("NaN point: %v, want error naming row 1 col 1", err)
	}
	if err := validatePoints([][]float64{{math.Inf(1), 0}}, 2); err == nil {
		t.Fatal("Inf point should be rejected")
	}
	if err := validatePoints([][]float64{{1, 0}, {1}}, 2); err == nil || !strings.Contains(err.Error(), "point 1") {
		t.Fatalf("short point: %v, want error naming row 1", err)
	}
	if err := validatePoints([][]float64{{0.5, -0.5}}, 2); err != nil {
		t.Fatalf("finite well-shaped points rejected: %v", err)
	}

	_, hs := newTestServer(t, Config{})
	uploadModel(t, hs.URL, "lin", 3)
	resp := post(t, hs.URL+"/v1/models/lin/predict", `{"points":[[1,1e999,0]]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range literal: HTTP %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestChaosMetricsScrapeUnderFire hammers /metrics in both representations
// from concurrent scrapers while fit jobs run, predict traffic flows, and
// injected panics fire — the regime where a torn snapshot or data race in
// the metrics path would surface. Every Prometheus body must validate and
// every JSON body must parse, throughout. Runs under -race in make chaos.
func TestChaosMetricsScrapeUnderFire(t *testing.T) {
	armFaults(t, "server.predict=panic#5")
	_, hs := newTestServer(t, Config{FitWorkers: 2})
	uploadModel(t, hs.URL, "lin", 3)

	const (
		scrapers   = 4
		scrapeN    = 25
		predictors = 4
		predictN   = 25
	)
	var wg sync.WaitGroup
	errCh := make(chan error, scrapers*2+predictors+1)

	scrapeProm := func() error {
		resp, err := http.Get(hs.URL + "/metrics?format=prometheus")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("prometheus scrape: HTTP %d", resp.StatusCode)
		}
		if err := obs.ValidateExposition(resp.Body); err != nil {
			return fmt.Errorf("mid-fire exposition invalid: %w", err)
		}
		return nil
	}
	scrapeJSON := func() error {
		resp, err := http.Get(hs.URL + "/metrics")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			return fmt.Errorf("mid-fire JSON snapshot invalid: %w", err)
		}
		return nil
	}

	for i := 0; i < scrapers; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for n := 0; n < scrapeN; n++ {
				if err := scrapeProm(); err != nil {
					errCh <- err
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for n := 0; n < scrapeN; n++ {
				if err := scrapeJSON(); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	for i := 0; i < predictors; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < predictN; n++ {
				// Panics injected into some of these land as 500s; both
				// outcomes are legitimate traffic for the scrape.
				resp := post(t, hs.URL+"/v1/models/lin/predict", `{"points":[[1,1,0]]}`)
				resp.Body.Close()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ids := []string{
			submitChaosFit(t, hs.URL, "chaosscrape"),
			submitChaosFit(t, hs.URL, "chaosscrape"),
		}
		for _, id := range ids {
			waitTerminal(t, hs.URL, id, 30*time.Second)
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	assertHealthy(t, hs.URL)
	if n := metricInt(t, hs.URL, "incidents", "panics_recovered"); n < 1 {
		t.Fatalf("panics_recovered = %d, want ≥ 1 (faults never fired)", n)
	}
	if err := scrapeProm(); err != nil {
		t.Fatalf("post-fire scrape: %v", err)
	}
}

// TestChaosPipelineSimFault injects a simulator failure mid-sampling: the
// pipeline job must land in failed — not hang — with the failed sample
// stage on record, nothing published, and the daemon healthy.
func TestChaosPipelineSimFault(t *testing.T) {
	armFaults(t, "pipeline.sim=error:injected simulator fault")
	_, hs := newTestServer(t, Config{})

	id := submitPipeline(t, hs.URL, pipelineBody(t, "chaospipe", "rc_lowpass.cir", "rc_lowpass_pipeline.json"))
	st := waitTerminal(t, hs.URL, id, 30*time.Second)
	if st.State != JobFailed || !strings.Contains(st.Error, "injected simulator fault") {
		t.Fatalf("state %s (%q), want failed with injected fault", st.State, st.Error)
	}
	if n := len(st.Stages); n == 0 || st.Stages[n-1].Stage != pipeline.StageSample || st.Stages[n-1].Error == "" {
		t.Fatalf("stage timeline %+v, want trailing failed sample stage", st.Stages)
	}
	if n := metricInt(t, hs.URL, "models"); n != 0 {
		t.Fatalf("registry holds %d models after failed pipeline, want 0", n)
	}
	if n := metricInt(t, hs.URL, "pipelines", "failed"); n != 1 {
		t.Fatalf("pipelines.failed = %d, want 1", n)
	}
	assertHealthy(t, hs.URL)
}

// TestChaosPipelineCancelMidSampling cancels a pipeline whose simulator
// workers are stalled inside a 10s-per-sample delay: DELETE
// /v1/pipelines/{id} must cut the stall short — armed delays abort on
// context cancellation and the sampling pool checks the job context
// between samples — and must publish nothing.
func TestChaosPipelineCancelMidSampling(t *testing.T) {
	armFaults(t, "pipeline.sim=delay:10s")
	_, hs := newTestServer(t, Config{})

	id := submitPipeline(t, hs.URL, pipelineBody(t, "chaospipecancel", "rc_lowpass.cir", "rc_lowpass_pipeline.json"))
	waitRunning(t, hs.URL, id)

	resp := cancelPipeline(t, hs.URL, id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel pipeline: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()
	start := time.Now()
	st := waitTerminal(t, hs.URL, id, 10*time.Second)
	if st.State != JobCanceled {
		t.Fatalf("state %s (%q), want canceled", st.State, st.Error)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v against a 10s-per-sample stall", elapsed)
	}
	if n := metricInt(t, hs.URL, "models"); n != 0 {
		t.Fatalf("registry holds %d models after canceled pipeline, want 0", n)
	}
	if n := metricInt(t, hs.URL, "pipelines", "canceled"); n != 1 {
		t.Fatalf("pipelines.canceled = %d, want 1", n)
	}
	assertHealthy(t, hs.URL)

	if resp := cancelPipeline(t, hs.URL, "job-424242"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown pipeline: HTTP %d, want 404", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// --- Crash / recovery suite (make crash-smoke) ------------------------------
//
// Each TestCrash* test simulates an unclean daemon death around the durable
// job journal: jobs in flight at "crash" time must be re-run to completion
// by the next boot, terminal outcomes must stick, poison jobs must be
// quarantined, and disk pressure must degrade submits without taking down
// the read paths.

// newJournaledServer builds a Server journaling into dir over a fresh
// in-memory registry, plus an httptest front end. Restart tests own the
// shutdown ordering, so no cleanup is registered for the "crashing" life.
func newJournaledServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.JournalDir = dir
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s, err := New(registry.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, httptest.NewServer(s)
}

// crashServer simulates an unclean daemon death: the listener stops and the
// drain budget is already nearly expired, so live jobs are canceled through
// the drain path — which deliberately journals no terminal records, leaving
// the on-disk trail exactly as a SIGKILL would: submitted/started but not
// finished.
func crashServer(t *testing.T, s *Server, hs *httptest.Server) {
	t.Helper()
	hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_ = s.Shutdown(ctx)
}

// waitPipelineTerminal polls GET /v1/pipelines/{id} until terminal.
func waitPipelineTerminal(t *testing.T, baseURL, id string, budget time.Duration) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(budget)
	for {
		st := getPipelineStatus(t, baseURL, id)
		if terminalState(st.State) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline %s stuck in state %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCrashRecoveryResumesInFlightJobs is the durability acceptance test: a
// fit job and a pipeline job both running when the daemon dies are replayed
// from the journal on the next boot, re-run to done under their original
// IDs, and marked as recovery attempt 1 — in the job status and, for the
// pipeline, in the published model's provenance.
func TestCrashRecoveryResumesInFlightJobs(t *testing.T) {
	armFaults(t, "server.fit=delay:60s;pipeline.sim=delay:60s")
	dir := t.TempDir()
	s1, hs1 := newJournaledServer(t, dir, Config{FitWorkers: 2})

	fitID := submitChaosFit(t, hs1.URL, "crashfit")
	pipeID := submitPipeline(t, hs1.URL, pipelineBody(t, "crashpipe", "rc_lowpass.cir", "rc_lowpass_pipeline.json"))
	waitRunning(t, hs1.URL, fitID)
	deadline := time.Now().Add(10 * time.Second)
	for getPipelineStatus(t, hs1.URL, pipeID).State == JobPending {
		if time.Now().After(deadline) {
			t.Fatalf("pipeline %s never left pending", pipeID)
		}
		time.Sleep(5 * time.Millisecond)
	}
	crashServer(t, s1, hs1)

	// The next boot comes up without the stall and replays the journal.
	faultinject.Reset()
	s2, hs2 := newJournaledServer(t, dir, Config{FitWorkers: 2})
	t.Cleanup(func() { hs2.Close(); s2.Close() })

	st := waitTerminal(t, hs2.URL, fitID, 30*time.Second)
	if st.State != JobDone {
		t.Fatalf("recovered fit %s state %s (%q), want done", fitID, st.State, st.Error)
	}
	if st.RecoveryAttempt != 1 {
		t.Fatalf("recovered fit recovery_attempt = %d, want 1", st.RecoveryAttempt)
	}
	pst := waitPipelineTerminal(t, hs2.URL, pipeID, 60*time.Second)
	if pst.State != JobDone {
		t.Fatalf("recovered pipeline %s state %s (%q), want done", pipeID, pst.State, pst.Error)
	}
	if pst.RecoveryAttempt != 1 {
		t.Fatalf("recovered pipeline recovery_attempt = %d, want 1", pst.RecoveryAttempt)
	}
	prov := pst.Pipeline.Model.Provenance
	if prov.Pipeline == nil || prov.Pipeline.RecoveryAttempt != 1 {
		t.Fatalf("pipeline provenance %+v, want recovery_attempt 1", prov.Pipeline)
	}
	if n := metricInt(t, hs2.URL, "journal", "jobs_recovered"); n != 2 {
		t.Fatalf("journal.jobs_recovered = %d, want 2", n)
	}
	assertHealthy(t, hs2.URL)
}

// TestCrashRecoveryIdempotentResubmit: an Idempotency-Key submit answered
// before a restart is deduplicated after it — the retry gets the original
// job ID back with the replay marker header, and reusing the key for the
// other job kind is a 409.
func TestCrashRecoveryIdempotentResubmit(t *testing.T) {
	faultinject.Reset()
	dir := t.TempDir()
	s1, hs1 := newJournaledServer(t, dir, Config{FitWorkers: 1})

	submitIdem := func(baseURL, key string) (*http.Response, FitResponse) {
		req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/fit", strings.NewReader(chaosFitBody("idemfit")))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Idempotency-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("idempotent submit: HTTP %d", resp.StatusCode)
		}
		return resp, decode[FitResponse](t, resp)
	}

	const key = "retry-key-0001"
	_, first := submitIdem(hs1.URL, key)
	waitTerminal(t, hs1.URL, first.JobID, 30*time.Second)

	// Same key within one daemon life: the original job comes back.
	resp, dup := submitIdem(hs1.URL, key)
	if dup.JobID != first.JobID {
		t.Fatalf("same-life duplicate got job %s, want %s", dup.JobID, first.JobID)
	}
	if resp.Header.Get("Idempotency-Replayed") != "true" {
		t.Fatal("duplicate submit missing Idempotency-Replayed header")
	}

	// Graceful restart: the dedup map is journal-backed, so the key still
	// resolves to the original job in the next life.
	hs1.Close()
	s1.Close()
	s2, hs2 := newJournaledServer(t, dir, Config{FitWorkers: 1})
	t.Cleanup(func() { hs2.Close(); s2.Close() })
	resp2, dup2 := submitIdem(hs2.URL, key)
	if dup2.JobID != first.JobID {
		t.Fatalf("post-restart duplicate got job %s, want %s", dup2.JobID, first.JobID)
	}
	if resp2.Header.Get("Idempotency-Replayed") != "true" {
		t.Fatal("post-restart duplicate missing Idempotency-Replayed header")
	}
	if st := getJobStatus(t, hs2.URL, first.JobID); st.State != JobDone {
		t.Fatalf("recovered terminal job state %s, want done (queryable across restart)", st.State)
	} else if st.RecoveryAttempt != 0 {
		t.Fatalf("job done in its first life shows recovery_attempt %d after restart, want 0", st.RecoveryAttempt)
	}
	// Terminal metrics must not double-count the replayed terminal job.
	if n := metricInt(t, hs2.URL, "jobs", "completed"); n != 0 {
		t.Fatalf("jobs.completed = %d after replay-only boot, want 0", n)
	}

	// The key is pinned to a fit job: reusing it on the pipeline route is a
	// conflict, not a silent cross-kind replay.
	preq, err := http.NewRequest(http.MethodPost, hs2.URL+"/v1/pipelines",
		strings.NewReader(pipelineBody(t, "idempipe", "rc_lowpass.cir", "rc_lowpass_pipeline.json")))
	if err != nil {
		t.Fatal(err)
	}
	preq.Header.Set("Idempotency-Key", key)
	presp, err := http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	if presp.StatusCode != http.StatusConflict {
		t.Fatalf("cross-kind key reuse: HTTP %d, want 409", presp.StatusCode)
	}
}

// TestCrashRecoveryQuarantinesPoisonJob: a job that was running at every
// crash reaches the recovery-attempt limit and is quarantined as failed
// instead of crash-looping the daemon — and the quarantine is journaled, so
// yet another restart leaves it failed rather than trying again.
func TestCrashRecoveryQuarantinesPoisonJob(t *testing.T) {
	armFaults(t, "server.fit=delay:60s")
	dir := t.TempDir()
	s1, hs1 := newJournaledServer(t, dir, Config{FitWorkers: 1, RecoveryMaxAttempts: 1})
	id := submitChaosFit(t, hs1.URL, "poison")
	waitRunning(t, hs1.URL, id)
	crashServer(t, s1, hs1)
	faultinject.Reset()

	// One prior start ≥ limit 1: quarantined at boot, before any worker
	// touches it.
	s2, hs2 := newJournaledServer(t, dir, Config{FitWorkers: 1, RecoveryMaxAttempts: 1})
	st := getJobStatus(t, hs2.URL, id)
	if st.State != JobFailed || !strings.Contains(st.Error, "quarantined") {
		t.Fatalf("poison job state %s (%q), want failed with quarantine message", st.State, st.Error)
	}
	if n := metricInt(t, hs2.URL, "journal", "jobs_quarantined"); n != 1 {
		t.Fatalf("journal.jobs_quarantined = %d, want 1", n)
	}
	if n := metricInt(t, hs2.URL, "journal", "jobs_recovered"); n != 0 {
		t.Fatalf("journal.jobs_recovered = %d, want 0", n)
	}
	hs2.Close()
	s2.Close()

	// The quarantine is a journaled terminal record: the third life replays
	// it as plain terminal state, no re-quarantine, no re-run.
	s3, hs3 := newJournaledServer(t, dir, Config{FitWorkers: 1, RecoveryMaxAttempts: 1})
	t.Cleanup(func() { hs3.Close(); s3.Close() })
	st3 := getJobStatus(t, hs3.URL, id)
	if st3.State != JobFailed || !strings.Contains(st3.Error, "quarantined") {
		t.Fatalf("third-life state %s (%q), want the journaled quarantine", st3.State, st3.Error)
	}
	if n := metricInt(t, hs3.URL, "journal", "jobs_quarantined"); n != 0 {
		t.Fatalf("third-life jobs_quarantined = %d, want 0 (outcome already terminal)", n)
	}
}

// TestCrashRecoveryCanceledStaysCanceled: a client cancellation journals a
// terminal record, so a job canceled before the crash is not resurrected by
// replay — while its still-live sibling is.
func TestCrashRecoveryCanceledStaysCanceled(t *testing.T) {
	armFaults(t, "server.fit=delay:60s")
	dir := t.TempDir()
	s1, hs1 := newJournaledServer(t, dir, Config{FitWorkers: 1})
	runningID := submitChaosFit(t, hs1.URL, "keepme")
	waitRunning(t, hs1.URL, runningID)
	pendingID := submitChaosFit(t, hs1.URL, "cancelme")
	if resp := cancelJob(t, hs1.URL, pendingID); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if st := getJobStatus(t, hs1.URL, pendingID); st.State != JobCanceled {
		t.Fatalf("canceled job state %s before crash", st.State)
	}
	crashServer(t, s1, hs1)
	faultinject.Reset()

	s2, hs2 := newJournaledServer(t, dir, Config{FitWorkers: 1})
	t.Cleanup(func() { hs2.Close(); s2.Close() })
	if st := getJobStatus(t, hs2.URL, pendingID); st.State != JobCanceled {
		t.Fatalf("canceled job resurrected as %s", st.State)
	}
	if st := waitTerminal(t, hs2.URL, runningID, 30*time.Second); st.State != JobDone {
		t.Fatalf("live sibling state %s (%q), want done", st.State, st.Error)
	}
	if n := metricInt(t, hs2.URL, "journal", "jobs_recovered"); n != 1 {
		t.Fatalf("journal.jobs_recovered = %d, want 1 (only the live job)", n)
	}
}

// TestChaosJournalDiskFullDegrades: when journal appends fail (disk full),
// async submits shed with 503 + Retry-After while predict and job reads
// keep serving; /healthz and /metrics surface the degraded journal, and the
// first successful append restores submits.
func TestChaosJournalDiskFullDegrades(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	s, hs := newJournaledServer(t, dir, Config{FitWorkers: 1})
	t.Cleanup(func() { hs.Close(); s.Close() })
	uploadModel(t, hs.URL, "lin", 3)
	okID := submitChaosFit(t, hs.URL, "prefull")
	waitTerminal(t, hs.URL, okID, 30*time.Second)

	if err := faultinject.Configure("journal.append=error:no space left on device"); err != nil {
		t.Fatal(err)
	}
	resp := post(t, hs.URL+"/v1/fit", chaosFitBody("duringfull"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit under disk pressure: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded submit carries no Retry-After")
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "journal degraded") {
		t.Fatalf("degraded submit error %q (%v)", e.Error, err)
	}
	resp.Body.Close()

	// Read paths ride through: predictions and job status still serve.
	assertPredicts(t, hs.URL, "lin")
	if st := getJobStatus(t, hs.URL, okID); st.State != JobDone {
		t.Fatalf("job read under disk pressure: state %s", st.State)
	}
	hresp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health := decode[HealthResponse](t, hresp)
	if hresp.StatusCode != http.StatusOK || health.Journal != "degraded" {
		t.Fatalf("healthz %d journal %q, want 200 + degraded", hresp.StatusCode, health.Journal)
	}
	if n := metricInt(t, hs.URL, "journal", "append_errors"); n < 1 {
		t.Fatalf("journal.append_errors = %d, want ≥ 1", n)
	}

	// Disk pressure clears: the next submit journals and runs normally.
	faultinject.Reset()
	recoveredID := submitChaosFit(t, hs.URL, "postfull")
	if st := waitTerminal(t, hs.URL, recoveredID, 30*time.Second); st.State != JobDone {
		t.Fatalf("post-recovery fit state %s (%q)", st.State, st.Error)
	}
	hresp2, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if health2 := decode[HealthResponse](t, hresp2); health2.Journal != "ok" {
		t.Fatalf("healthz journal %q after recovery, want ok", health2.Journal)
	}
}

// TestCrashRecoveryCancelReplayedJob: a job replayed from the journal but
// not yet picked up by a worker in the new life can be canceled like any
// pending job — the cancel is journaled, so a further restart keeps it
// canceled instead of re-running it.
func TestCrashRecoveryCancelReplayedJob(t *testing.T) {
	armFaults(t, "server.fit=delay:60s")
	dir := t.TempDir()
	s1, hs1 := newJournaledServer(t, dir, Config{FitWorkers: 1})
	stuckID := submitChaosFit(t, hs1.URL, "stuck")
	waitRunning(t, hs1.URL, stuckID)
	replayedID := submitChaosFit(t, hs1.URL, "replayed")
	crashServer(t, s1, hs1)

	// Second life with the stall still armed: the single worker jams on the
	// first replayed job, so the second sits replayed-but-not-restarted.
	s2, hs2 := newJournaledServer(t, dir, Config{FitWorkers: 1})
	if st := getJobStatus(t, hs2.URL, replayedID); st.State != JobPending && st.State != JobRunning {
		t.Fatalf("replayed job state %s, want pending/running", st.State)
	}
	if resp := cancelJob(t, hs2.URL, replayedID); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel replayed job: HTTP %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if st := waitTerminal(t, hs2.URL, replayedID, 10*time.Second); st.State != JobCanceled {
		t.Fatalf("replayed job state %s after DELETE, want canceled", st.State)
	}
	crashServer(t, s2, hs2)
	faultinject.Reset()

	// Third life: the cancel was journaled terminally, so only the stuck job
	// is recovered; the canceled one stays canceled.
	s3, hs3 := newJournaledServer(t, dir, Config{FitWorkers: 1})
	t.Cleanup(func() { hs3.Close(); s3.Close() })
	if st := getJobStatus(t, hs3.URL, replayedID); st.State != JobCanceled {
		t.Fatalf("canceled replayed job resurrected as %s", st.State)
	}
	if st := waitTerminal(t, hs3.URL, stuckID, 30*time.Second); st.State != JobDone {
		t.Fatalf("stuck job state %s (%q) in third life, want done", st.State, st.Error)
	}
	if st := getJobStatus(t, hs3.URL, stuckID); st.RecoveryAttempt != 2 {
		t.Fatalf("stuck job recovery_attempt = %d, want 2", st.RecoveryAttempt)
	}
}

// TestCrashRecoveryQueueDepthDrainsToZero is the queue-depth gauge
// regression test: across every release path — worker pickup, cancellation
// of a pending job, a crash with jobs queued, and journal replay on the
// next boot — rsmd_job_queue_depth must end at exactly zero, in the JSON
// tree and in the Prometheus exposition. The gauge counts jobs admitted
// but not yet released by leaveQueue, so a double-release or a missed
// release on any of those paths shows up here as a nonzero residue.
func TestCrashRecoveryQueueDepthDrainsToZero(t *testing.T) {
	armFaults(t, "server.fit=delay:60s")
	dir := t.TempDir()
	s1, hs1 := newJournaledServer(t, dir, Config{FitWorkers: 1, QueueDepth: 8})

	runningID := submitChaosFit(t, hs1.URL, "depth-running")
	waitRunning(t, hs1.URL, runningID)
	queuedID := submitChaosFit(t, hs1.URL, "depth-queued")
	doomedID := submitChaosFit(t, hs1.URL, "depth-doomed")
	if n := metricInt(t, hs1.URL, "queue", "depth"); n != 2 {
		t.Fatalf("depth with 1 running + 2 pending = %d, want 2", n)
	}
	// Pending-cancel is one of the two release paths; it must decrement
	// exactly once.
	if resp := cancelJob(t, hs1.URL, doomedID); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel pending: HTTP %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if n := metricInt(t, hs1.URL, "queue", "depth"); n != 1 {
		t.Fatalf("depth after pending-cancel = %d, want 1", n)
	}
	crashServer(t, s1, hs1)

	// Reboot without the stall: the journal replays the running and queued
	// jobs, both run to done, and the gauge must return to zero — replayed
	// jobs occupy depth slots too and must release them on pickup.
	faultinject.Reset()
	s2, hs2 := newJournaledServer(t, dir, Config{FitWorkers: 1, QueueDepth: 8})
	t.Cleanup(func() { hs2.Close(); s2.Close() })
	for _, id := range []string{runningID, queuedID} {
		if st := waitTerminal(t, hs2.URL, id, 30*time.Second); st.State != JobDone {
			t.Fatalf("replayed job %s state %s (%q), want done", id, st.State, st.Error)
		}
	}
	if st := getJobStatus(t, hs2.URL, doomedID); st.State != JobCanceled {
		t.Fatalf("canceled job resurrected as %s", st.State)
	}
	if n := metricInt(t, hs2.URL, "queue", "depth"); n != 0 {
		t.Fatalf("depth after recovery drained = %d, want 0", n)
	}
	body := scrapeText(t, hs2.URL)
	if !regexp.MustCompile(`(?m)^rsmd_job_queue_depth 0$`).MatchString(body) {
		t.Fatalf("gauge not zero in exposition:\n%s", grepLines(body, "rsmd_job_queue_depth"))
	}
	assertHealthy(t, hs2.URL)
}
