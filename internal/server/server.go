// Package server implements the rsmd HTTP serving layer: a JSON API over a
// model registry that turns fitted sparse response-surface models into a
// long-lived, concurrent service. Fits run as asynchronous jobs on a
// bounded worker pool; predictions are batched and fanned across workers
// that reuse per-worker basis-evaluation scratch; yield queries reuse the
// internal/yield virtual Monte Carlo machinery. Everything is stdlib-only.
//
// Endpoints:
//
//	POST /v1/models                  upload a serialized model envelope
//	GET  /v1/models                  list stored models
//	GET  /v1/models/{name}           describe the latest version
//	POST /v1/models/{name}/predict   batched f(ΔY) evaluation
//	POST /v1/models/{name}/yield     parametric yield + quantiles
//	POST /v1/models/{name}/refine    incremental refit on appended samples
//	POST   /v1/fit                     submit an async fit job
//	GET    /v1/jobs/{id}               poll a fit job
//	DELETE /v1/jobs/{id}               cancel a fit job
//	POST   /v1/pipelines               submit a netlist-in, model-out pipeline
//	GET    /v1/pipelines/{id}          poll a pipeline job (stage timeline)
//	DELETE /v1/pipelines/{id}          cancel a pipeline job
//	GET    /metrics                    counters: JSON, or Prometheus text
//	                                   exposition via ?format=prometheus or
//	                                   Accept: text/plain
//	GET    /healthz                    liveness (503 while draining)
//
// Robustness: every route runs under a request deadline with panic
// isolation (recovered panics become 500s and count as incidents in
// /metrics), fit jobs carry per-job deadlines and cooperative cancellation
// down into the solver inner loops, and predict/yield traffic is shed with
// Retry-After when the fit queue saturates.
//
// Observability: every request is assigned (or keeps) an X-Request-Id,
// echoed on the response and stamped on every log line; fit jobs inherit
// the submitting request's ID and expose a per-iteration solver telemetry
// timeline through GET /v1/jobs/{id}.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/registry"
	"repro/internal/rng"
	"repro/internal/yield"
)

// Config tunes the server; zero values select the documented defaults.
type Config struct {
	// FitWorkers is the async fit worker-pool size — how many fit jobs run
	// concurrently (default 2).
	FitWorkers int
	// FitParallel is the goroutine count of the solver engine's parallel
	// correlation sweep within each fit (0 = GOMAXPROCS). It threads to
	// core.WithFitWorkers on every job context.
	FitParallel int
	// QueueDepth bounds pending fit jobs; submissions beyond it get 503
	// (default 16).
	QueueDepth int
	// PredictWorkers is the per-request prediction fan-out (default
	// GOMAXPROCS via core.PredictBatch).
	PredictWorkers int
	// MaxBatch bounds points per predict request (default 100000).
	MaxBatch int
	// PredictCacheSize bounds the compiled-predictor LRU in entries (one
	// entry per served model version). 0 selects the default 64; negative
	// disables caching, so every predict request recompiles its predictor —
	// the pre-cache behavior, kept reachable for benchmarking.
	PredictCacheSize int
	// BatchWindow enables predict micro-batching when positive: concurrent
	// predict requests for the same model version are held for up to this
	// long and evaluated as one coalesced batch. 0 (the default) disables
	// coalescing — every request evaluates immediately.
	BatchWindow time.Duration
	// BatchMaxPoints caps the points coalesced into one micro-batch flush
	// (default 4096); reaching it flushes the window early, and a single
	// request already this large bypasses coalescing. Ignored when
	// BatchWindow is 0.
	BatchMaxPoints int
	// MaxYieldSamples bounds virtual MC samples per yield request
	// (default 2000000).
	MaxYieldSamples int
	// MaxBodyBytes bounds request bodies (default 64 MiB).
	MaxBodyBytes int64
	// RequestTimeout is the per-request handler deadline (default 30s;
	// negative disables). Fit jobs are bounded by FitTimeout instead — the
	// request only enqueues them.
	RequestTimeout time.Duration
	// FitTimeout caps each fit job's run time (default 5m; negative
	// disables). Requests may tighten it per job via timeout_seconds.
	FitTimeout time.Duration
	// PipelineTimeout caps each pipeline job end to end — parse through
	// publish, simulation included (default 10m; negative disables).
	// Requests may tighten it per job via timeout_seconds.
	PipelineTimeout time.Duration
	// SimWorkers is the simulator worker-pool size per pipeline sampling
	// stage (0 = GOMAXPROCS).
	SimWorkers int
	// JournalDir enables the durable job journal: every fit/pipeline job
	// lifecycle event is fsync'd to an append-only log under this directory
	// before it is acknowledged, and on boot the journal is replayed —
	// terminal jobs stay queryable, live jobs are re-enqueued. Empty (the
	// default) keeps the queue in-memory only.
	JournalDir string
	// RecoveryMaxAttempts is the crash-loop guard: a replayed job that has
	// already been started this many times without reaching a terminal
	// state is quarantined as failed instead of being re-run (default 3).
	RecoveryMaxAttempts int
	// TraceStoreSize bounds the completed-trace ring served by /v1/traces.
	// 0 selects the default 256; negative disables tracing entirely (spans
	// become no-ops and the trace endpoints answer 404).
	TraceStoreSize int
	// TraceSlow is the slow-trace threshold: traces at or over it are
	// always kept by tail sampling, and requests over it escalate their
	// access-log line to Warn (default 1s).
	TraceSlow time.Duration
	// TraceSample is the keep probability for fast, successful HTTP traces
	// (error, slow and job traces are always kept). 0 selects the default
	// 1.0 (keep everything); negative keeps only error/slow/job traces.
	TraceSample float64
	// Logger receives the server's structured logs (default slog.Default()).
	// Request-scoped loggers derived from it carry request_id and route.
	Logger *slog.Logger
	// Cluster wires this node into a shard ring: model-keyed routes are
	// forwarded to their owning shard, job IDs are minted with this node's
	// member name so polls through any node redirect home, the GET /v1/sync
	// protocol serves peers, and the background replicator pulls missing
	// versions. nil (the default) serves everything locally. The server owns
	// the cluster's lifecycle: New starts its replicator, Close/Shutdown stop
	// it.
	Cluster *cluster.Cluster
}

func (c Config) withDefaults() Config {
	if c.FitWorkers <= 0 {
		c.FitWorkers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 100000
	}
	if c.MaxYieldSamples <= 0 {
		c.MaxYieldSamples = 2000000
	}
	switch {
	case c.PredictCacheSize == 0:
		c.PredictCacheSize = 64
	case c.PredictCacheSize < 0:
		c.PredictCacheSize = 0 // explicit opt-out
	}
	if c.BatchMaxPoints <= 0 {
		c.BatchMaxPoints = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	switch {
	case c.RequestTimeout == 0:
		c.RequestTimeout = 30 * time.Second
	case c.RequestTimeout < 0:
		c.RequestTimeout = 0 // explicit opt-out
	}
	switch {
	case c.FitTimeout == 0:
		c.FitTimeout = 5 * time.Minute
	case c.FitTimeout < 0:
		c.FitTimeout = 1000 * time.Hour // effectively unbounded
	}
	switch {
	case c.PipelineTimeout == 0:
		c.PipelineTimeout = 10 * time.Minute
	case c.PipelineTimeout < 0:
		c.PipelineTimeout = 1000 * time.Hour // effectively unbounded
	}
	if c.RecoveryMaxAttempts <= 0 {
		c.RecoveryMaxAttempts = 3
	}
	return c
}

// Server wires the registry, job queue and metrics behind an http.Handler.
type Server struct {
	cfg       Config
	registry  *registry.Registry
	jobs      *jobQueue
	jnl       *journal.Journal // nil when JournalDir is empty
	metrics   *metrics
	predCache *predictorCache  // nil when caching is disabled
	batcher   *microBatcher    // nil when micro-batching is disabled
	traces    *trace.Store     // nil when tracing is disabled
	cluster   *cluster.Cluster // nil when unclustered
	proxyHTTP *http.Client     // client for forwarded proxy hops
	log       *slog.Logger
	mux       *http.ServeMux
	draining  atomic.Bool
}

// New builds a server over the given registry and starts its fit workers.
// When Config.JournalDir is set it first opens the durable job journal and
// replays it — recovered live jobs are already queued when New returns.
// Call Close (or the bounded Shutdown) to drain the workers and close the
// journal.
func New(reg *registry.Registry, cfg Config) (*Server, error) {
	s := &Server{
		cfg:      cfg.withDefaults(),
		registry: reg,
		metrics:  newMetrics(),
		cluster:  cfg.Cluster,
		// Forwarded hops never follow redirects themselves: a 307 minted by
		// the owning shard (job-poll affinity) belongs to the client.
		proxyHTTP: &http.Client{
			CheckRedirect: func(*http.Request, []*http.Request) error {
				return http.ErrUseLastResponse
			},
		},
	}
	s.log = s.cfg.Logger
	if s.log == nil {
		s.log = slog.Default()
	}
	s.metrics.fitParallel = core.ResolveFitWorkers(s.cfg.FitParallel)
	s.traces = trace.NewStore(trace.Config{
		Capacity:      s.cfg.TraceStoreSize,
		SlowThreshold: s.cfg.TraceSlow,
		SampleRate:    s.cfg.TraceSample,
	})

	var replay *journal.Replay
	if s.cfg.JournalDir != "" {
		var err error
		s.jnl, replay, err = journal.Open(s.cfg.JournalDir, journal.Options{
			Logger:   s.log,
			OnAppend: s.metrics.observeJournalAppend,
		})
		if err != nil {
			return nil, fmt.Errorf("server: open job journal: %w", err)
		}
	}
	// Size the queue so the recovered backlog rides on top of the
	// configured admission capacity: live replayed jobs never consume the
	// headroom new submissions were promised.
	depth := s.cfg.QueueDepth
	if replay != nil {
		depth += len(replay.Live())
	}
	s.jobs = newJobQueue(depth, s.metrics.countJobEnd, s.jnl, s.log)
	if s.cluster != nil && s.cluster.SelfName() != "" {
		// Node-prefixed job IDs ("s1.job-000042") let any node in the ring
		// route a poll back to the shard that runs the job.
		s.jobs.idPrefix = s.cluster.SelfName() + "."
	}
	if replay != nil {
		s.recoverJournal(replay)
	}
	s.jobs.startWorkers(s.cfg.FitWorkers, s.runJob)
	if s.cfg.PredictCacheSize > 0 {
		s.predCache = newPredictorCache(s.cfg.PredictCacheSize)
		// Publishing a new version moves traffic off the old ones; drop the
		// name's cached predictors so they don't squat in the LRU. The hook
		// runs under the registry lock, before any Get can see the version.
		reg.OnPut(func(name string, version int) {
			s.predCache.invalidate(name)
		})
	}
	s.batcher = newMicroBatcher(s.cfg.BatchWindow, s.cfg.BatchMaxPoints,
		s.cfg.PredictWorkers, s.metrics.observeCoalesced)

	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		// protect sits inside trace so that panics recovered into 500s still
		// show up in the per-route error counters and panic log lines carry
		// the request ID.
		mux.HandleFunc(pattern, s.trace(pattern, s.protect(pattern, h)))
	}
	route("POST /v1/models", s.handleUpload)
	route("GET /v1/models", s.handleList)
	route("GET /v1/models/{name}", s.handleModelInfo)
	route("DELETE /v1/models/{name}", s.handleModelDelete)
	route("POST /v1/models/{name}/predict", s.handlePredict)
	route("POST /v1/models/{name}/yield", s.handleYield)
	route("POST /v1/models/{name}/refine", s.handleRefine)
	route("POST /v1/fit", s.handleFit)
	route("GET /v1/jobs/{id}", s.handleJob)
	route("DELETE /v1/jobs/{id}", s.handleJobCancel)
	route("POST /v1/pipelines", s.handlePipelineSubmit)
	route("GET /v1/pipelines/{id}", s.handlePipelineStatus)
	route("DELETE /v1/pipelines/{id}", s.handlePipelineCancel)
	route("GET /v1/traces", s.handleTraceList)
	route("GET /v1/traces/{id}", s.handleTraceGet)
	route("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	// The events route streams SSE when asked to; it runs without the
	// request deadline so a tail can outlive RequestTimeout.
	mux.HandleFunc("GET /v1/jobs/{id}/events",
		s.trace("GET /v1/jobs/{id}/events", s.protectStreaming("GET /v1/jobs/{id}/events", s.handleJobEvents)))
	// The sync protocol serves peers' replicators; it answers on
	// unclustered nodes too, so a single-node registry can be drained into
	// a cluster.
	route("GET /v1/sync", s.handleSyncManifest)
	route("GET /v1/sync/models/{name}/{version}", s.handleSyncEntry)
	route("GET /metrics", s.handleMetrics)
	route("GET /healthz", s.handleHealth)
	s.mux = mux
	if s.cluster != nil {
		s.cluster.Start()
	}
	return s, nil
}

// Close stops accepting fit jobs and waits for running ones, however long
// they take. Shutdown is the bounded variant.
func (s *Server) Close() {
	s.draining.Store(true)
	if s.cluster != nil {
		s.cluster.Close()
	}
	s.jobs.close()
	s.closeJournal()
}

// closeJournal closes the journal after the workers drained, so no append
// can race the close.
func (s *Server) closeJournal() {
	if s.jnl == nil {
		return
	}
	if err := s.jnl.Close(); err != nil {
		s.log.Warn("closing job journal failed", "error", err)
	}
}

// BeginDrain flips /healthz to 503 so load balancers stop routing here,
// without yet refusing work. Call it at the start of a graceful shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Shutdown drains the daemon within ctx's budget: new fit submissions are
// refused, in-flight jobs get until ctx expires to finish, and stragglers
// are then canceled (landing in state canceled) and awaited. It returns
// ctx.Err() when the budget ran out, nil when everything drained in time.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.cluster != nil {
		s.cluster.Close()
	}
	err := s.jobs.shutdown(ctx)
	s.closeJournal()
	return err
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// writeJSON emits a JSON response body with the given status. The returned
// error reports an encode/write failure (typically a vanished client);
// handlers that maintain served-work counters must check it so a failed
// write is not counted as served.
func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(v)
}

// writeErr emits the uniform error body.
func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeBody strictly parses the request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// decodeBodyRaw is decodeBody for handlers whose routing key lives in the
// body: it buffers the raw bytes so the request can still be forwarded
// verbatim to the owning shard after the name was decoded locally.
func decodeBodyRaw(w http.ResponseWriter, r *http.Request, v any) ([]byte, bool) {
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read request body: %v", err)
		return nil, false
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil, false
	}
	return raw, true
}

// modelInfo summarizes a registry entry for API responses.
func modelInfo(e *registry.Entry) ModelInfo {
	return ModelInfo{
		Name:       e.Name,
		Version:    e.Version,
		M:          e.Model().M,
		NNZ:        e.Model().NNZ(),
		Basis:      e.Envelope.Basis,
		Provenance: e.Envelope.Prov,
		CreatedAt:  e.CreatedAt,
	}
}

// validatePoints checks a predict batch against the basis dimension and
// rejects non-finite coordinates, naming the offending row (and column) so
// the caller can fix the exact input. NaN/Inf cannot arrive through strict
// JSON today, but the check keeps the hot path safe against any future
// ingestion format.
func validatePoints(points [][]float64, dim int) error {
	for i, p := range points {
		if len(p) != dim {
			return fmt.Errorf("point %d has dimension %d, want %d", i, len(p), dim)
		}
		for j, x := range p {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("point %d coordinate %d is %v (must be finite)", i, j, x)
			}
		}
	}
	return nil
}

// lookupModel resolves the {name} path segment against the registry.
func (s *Server) lookupModel(w http.ResponseWriter, r *http.Request) (*registry.Entry, bool) {
	name := r.PathValue("name")
	e, ok := s.registry.Get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown model %q", name)
		return nil, false
	}
	return e, true
}

// handleUpload stores a pre-fitted serialized model under a name.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	var req UploadRequest
	raw, ok := decodeBodyRaw(w, r, &req)
	if !ok {
		return
	}
	if err := registry.ValidateName(req.Name); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.forwardOwned(w, r, "upload", req.Name, raw) {
		return
	}
	if len(req.Model) == 0 {
		writeErr(w, http.StatusBadRequest, "missing model envelope")
		return
	}
	env, err := core.ReadEnvelope(bytes.NewReader(req.Model))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if env.Basis.IsZero() {
		writeErr(w, http.StatusBadRequest, "model envelope has no basis descriptor; re-serialize it with the versioned format (rsmfit -out)")
		return
	}
	entry, err := s.registry.Put(req.Name, env)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, modelInfo(entry))
}

// handleList returns the latest version of every stored model.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	entries := s.registry.List()
	resp := ListResponse{Models: make([]ModelInfo, len(entries))}
	for i, e := range entries {
		resp.Models[i] = modelInfo(e)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleModelInfo describes the latest version of one model.
func (s *Server) handleModelInfo(w http.ResponseWriter, r *http.Request) {
	if s.routeRead(w, r, "info", r.PathValue("name")) {
		return
	}
	e, ok := s.lookupModel(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, modelInfo(e))
}

// handlePredict evaluates the model at a batch of points through the
// serving prediction engine: the compiled predictor for this model version
// (LRU-cached across requests) evaluates the batch, optionally after the
// micro-batcher coalesced it with concurrent requests for the same version.
// It is the latency-sensitive path: it sheds load when the fit queue is
// saturated and rejects malformed batches (wrong dimension, NaN/Inf
// coordinates) with the offending row index before any evaluation work
// happens.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	// Routing comes before shedding: this node's fit-queue pressure is no
	// reason to reject a request another shard will serve.
	if s.routeRead(w, r, "predict", r.PathValue("name")) {
		return
	}
	if s.shed(w) {
		return
	}
	e, ok := s.lookupModel(w, r)
	if !ok {
		return
	}
	var req PredictRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Points) == 0 {
		writeErr(w, http.StatusBadRequest, "no points")
		return
	}
	if len(req.Points) > s.cfg.MaxBatch {
		writeErr(w, http.StatusRequestEntityTooLarge, "batch of %d points exceeds limit %d", len(req.Points), s.cfg.MaxBatch)
		return
	}
	cp, err := s.compiled(r.Context(), e)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if err := validatePoints(req.Points, cp.Dim()); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Chaos hook: injected delays exercise the request deadline below,
	// injected panics exercise the recovery middleware.
	if err := faultinject.FireCtx(r.Context(), "server.predict"); err != nil {
		writeErr(w, http.StatusInternalServerError, "injected fault: %v", err)
		return
	}
	if err := r.Context().Err(); err != nil {
		writeErr(w, http.StatusGatewayTimeout, "request deadline exceeded: %v", err)
		return
	}
	values, coalesced, err := s.predictValues(r.Context(), e, cp, req.Points)
	if err != nil {
		// Only this caller's context death lands here; the other row groups
		// of a coalesced batch are unaffected.
		writeErr(w, http.StatusGatewayTimeout, "request deadline exceeded: %v", err)
		return
	}
	resp := PredictResponse{Model: e.Name, Version: e.Version, Values: values, Coalesced: coalesced}
	// Count served points only after the response body actually went out:
	// a failed encode (client gone mid-write) must not inflate the
	// served-prediction counters.
	if writeJSON(w, http.StatusOK, resp) == nil {
		s.metrics.countPredictions(e.Name, len(req.Points))
	}
}

// predictValues evaluates one request's row group, through the
// micro-batcher when enabled and directly otherwise. coalesced reports how
// many requests shared the evaluation (1 = evaluated alone).
func (s *Server) predictValues(ctx context.Context, e *registry.Entry, cp *core.CompiledPredictor, points [][]float64) (values []float64, coalesced int, err error) {
	if s.batcher == nil {
		values, err = cp.Predict(nil, points, s.cfg.PredictWorkers)
		return values, 1, err
	}
	return s.batcher.predict(ctx, predictorKey(e.Name, e.Version), cp, points)
}

// handleYield estimates parametric yield, moments and quantiles for one
// model via virtual Monte Carlo.
func (s *Server) handleYield(w http.ResponseWriter, r *http.Request) {
	if s.routeRead(w, r, "yield", r.PathValue("name")) {
		return
	}
	if s.shed(w) {
		return
	}
	e, ok := s.lookupModel(w, r)
	if !ok {
		return
	}
	var req YieldRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.N == 0 {
		req.N = 100000
	}
	if req.N < 0 || req.N > s.cfg.MaxYieldSamples {
		writeErr(w, http.StatusBadRequest, "n=%d outside (0, %d]", req.N, s.cfg.MaxYieldSamples)
		return
	}
	for _, p := range req.Quantiles {
		if p <= 0 || p >= 1 {
			writeErr(w, http.StatusBadRequest, "quantile %g outside (0, 1)", p)
			return
		}
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	b, err := e.Basis()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "rebuild basis: %v", err)
		return
	}
	an, err := yield.NewAnalyzer(b, map[string]*core.Model{e.Name: e.Model()})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := YieldResponse{
		Model:   e.Name,
		Version: e.Version,
		Mean:    yield.ModelMean(e.Model(), b),
		Std:     yield.ModelStd(e.Model(), b),
		N:       req.N,
	}
	if req.Low != nil || req.High != nil {
		spec := yield.Spec{Low: math.Inf(-1), High: math.Inf(1)}
		if req.Low != nil {
			spec.Low = *req.Low
		}
		if req.High != nil {
			spec.High = *req.High
		}
		res, err := an.Yield(rng.New(req.Seed), req.N, map[string]yield.Spec{e.Name: spec})
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		resp.Yield = &res.Yield
	}
	if len(req.Quantiles) > 0 {
		qs, err := an.Quantiles(rng.New(req.Seed), req.N, e.Name, req.Quantiles)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		resp.Quantiles = qs
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleFit validates and enqueues an async fit job.
func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	var req FitRequest
	raw, ok := decodeBodyRaw(w, r, &req)
	if !ok {
		return
	}
	if err := registry.ValidateName(req.Name); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.forwardOwned(w, r, "fit", req.Name, raw) {
		return
	}
	// Normalize defaults and reject cheaply detectable bad requests
	// synchronously; dataset-dependent validation happens in the worker.
	if req.Solver == "" {
		req.Solver = "omp"
	}
	if _, err := core.SolverByName(req.Solver); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Degree == 0 {
		req.Degree = 1
	}
	if req.Degree < 1 || req.Degree > 6 {
		writeErr(w, http.StatusBadRequest, "unsupported degree %d (want 1..6)", req.Degree)
		return
	}
	if req.Folds == 0 {
		req.Folds = 4
	}
	if req.Folds < 2 {
		writeErr(w, http.StatusBadRequest, "folds=%d, need ≥ 2", req.Folds)
		return
	}
	if req.MaxLambda == 0 {
		req.MaxLambda = 50
	}
	if req.MaxLambda < 1 {
		writeErr(w, http.StatusBadRequest, "max_lambda=%d, need ≥ 1", req.MaxLambda)
		return
	}
	if req.TimeoutSeconds < 0 {
		writeErr(w, http.StatusBadRequest, "timeout_seconds=%g, need ≥ 0", req.TimeoutSeconds)
		return
	}
	if req.CSV == "" && len(req.Points) == 0 {
		writeErr(w, http.StatusBadRequest, "no dataset: provide csv or points+values")
		return
	}
	idemKey, ok := idempotencyKey(w, r)
	if !ok {
		return
	}
	j, existing, err := s.jobs.submit(r.Context(), req, obs.RequestID(r.Context()), idemKey)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if existing {
		// Idempotency-Key dedup hit: a retried submit (same key) gets the
		// original job back instead of enqueuing a duplicate fit.
		if j.kind != JobKindFit {
			writeErr(w, http.StatusConflict,
				"idempotency key %q was used by %s job %s", idemKey, j.kind, j.id)
			return
		}
		w.Header().Set(idemReplayedHeader, "true")
		writeJSON(w, http.StatusAccepted, FitResponse{JobID: j.id, State: j.status().State})
		return
	}
	s.metrics.countJobSubmitted()
	obs.Log(r.Context()).Info("fit job submitted",
		"job_id", j.id, "solver", req.Solver, "name", req.Name, "queue_depth", s.jobs.depth())
	writeJSON(w, http.StatusAccepted, FitResponse{JobID: j.id, State: JobPending})
}

// handleJob reports a fit job's status.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.redirectJob(w, r, id) {
		return
	}
	j, ok := s.jobs.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleJobCancel cancels a fit job. A pending job is canceled immediately;
// a running one is interrupted through its context and reaches state
// canceled when the solver's next cooperative check fires. Canceling a job
// that already finished is a no-op that returns its terminal status.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.redirectJob(w, r, id) {
		return
	}
	j, ok := s.jobs.cancelJob(id, "canceled by client request")
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleMetrics serves the daemon's counters. The default body is the
// expvar-style JSON tree; Prometheus text exposition (format 0.0.4, with
// cumulative le buckets) is selected by ?format=prometheus or an Accept
// header preferring text/plain — what a Prometheus scraper sends.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.metrics.writePrometheus(w, s.registry.Len(), s.jobs.depth(), s.predCache.stats(), s.journalStatus(), s.traces.Stats(), s.clusterStats()); err != nil {
			obs.Log(r.Context()).Error("metrics exposition write failed", "error", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, s.metrics.Snapshot(s.registry.Len(), s.jobs.depth(), s.predCache.stats(), s.journalStatus(), s.traces.Stats(), s.clusterStats()))
}

// journalStatus reads the live durable-journal state for the exposition
// and health endpoints.
func (s *Server) journalStatus() journalStatus {
	if s.jnl == nil {
		return journalStatus{}
	}
	return journalStatus{enabled: true, degraded: s.jnl.Degraded()}
}

// wantsPrometheus decides the /metrics representation: the explicit
// format=prometheus query parameter wins; otherwise an Accept header that
// mentions text/plain (or the OpenMetrics type) without asking for JSON
// selects the exposition format.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	if strings.Contains(accept, "application/json") {
		return false
	}
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "application/openmetrics-text")
}

// handleHealth is the liveness/readiness probe. A draining daemon answers
// 503 with status "draining" so load balancers rotate it out while
// in-flight jobs finish.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{
		Status:        "ok",
		Version:       obs.Version,
		UptimeSeconds: time.Since(s.metrics.start).Seconds(),
		Models:        s.registry.Len(),
	}
	// The journal field reports durability, not liveness: a degraded
	// journal sheds async submits but predict/read traffic still serves,
	// so the daemon stays "ok" and load balancers keep routing here.
	switch js := s.journalStatus(); {
	case !js.enabled:
		resp.Journal = "disabled"
	case js.degraded:
		resp.Journal = "degraded"
	default:
		resp.Journal = "ok"
	}
	if s.draining.Load() {
		resp.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
