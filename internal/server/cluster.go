package server

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// Proxy-layer headers. forwardedHeader marks a request that already made
// one proxy hop — the receiving shard serves it locally, so a stale ring
// can never bounce a request in a loop. minVersionHeader carries the
// client's read-your-writes floor: a non-owner serves the read from its
// local replica iff it already holds at least that version, and forwards
// to the owner otherwise.
const (
	forwardedHeader  = "X-RSM-Forwarded"
	minVersionHeader = "X-RSM-Min-Version"
)

// forwardKinds enumerates the model-keyed route families the proxy can
// forward, so the rsmd_cluster_forwards_total series exist from first
// scrape.
var forwardKinds = []string{"delete", "fit", "info", "pipeline", "predict", "refine", "upload", "yield"}

// proxyRequestHeaders are carried hop-to-hop on a forwarded request.
var proxyRequestHeaders = []string{
	"Content-Type", "Accept", idemKeyHeader, obs.RequestIDHeader, minVersionHeader,
}

// proxyResponseHeaders are copied back from the owning shard's response.
var proxyResponseHeaders = []string{
	"Content-Type", "Retry-After", "Location", idemReplayedHeader,
}

// nodeLabel identifies this node in the forwarded-hop header and the
// metrics exposition: its ring member name, or "proxy" for a stateless
// proxy-only node.
func (s *Server) nodeLabel() string {
	if s.cluster == nil || s.cluster.SelfName() == "" {
		return "proxy"
	}
	return s.cluster.SelfName()
}

// forwardOwned routes a model-keyed write to its owning shard. It reports
// true when it handled (forwarded or fail-fasted) the request; false means
// the caller owns the model — or the node is unclustered, or the request
// already made its one proxy hop — and must serve it locally. raw, when
// non-nil, replaces the already-consumed request body on the forwarded hop.
func (s *Server) forwardOwned(w http.ResponseWriter, r *http.Request, kind, model string, raw []byte) bool {
	if s.cluster == nil || r.Header.Get(forwardedHeader) != "" {
		return false
	}
	node, base, local := s.cluster.Owner(model)
	if local {
		return false
	}
	s.forward(w, r, kind, node, base, raw)
	return true
}

// routeRead is forwardOwned for read paths, honoring the min-version
// replica-read contract: when the client pins a version floor this node
// already holds, the read is served from the local replica — which keeps
// reads flowing while the owner is down — and forwarded to the owner
// otherwise.
func (s *Server) routeRead(w http.ResponseWriter, r *http.Request, kind, model string) bool {
	if s.cluster == nil || r.Header.Get(forwardedHeader) != "" {
		return false
	}
	node, base, local := s.cluster.Owner(model)
	if local {
		return false
	}
	if min, err := strconv.Atoi(r.Header.Get(minVersionHeader)); err == nil && min >= 1 {
		if e, ok := s.registry.Get(model); ok && e.Version >= min {
			s.metrics.countReplicaRead()
			return false
		}
	}
	s.forward(w, r, kind, node, base, nil)
	return true
}

// forward proxies the request to the owning shard. A shard in backoff is
// failed fast with 503 + Retry-After — the chaos contract: a dead shard
// costs its own models availability, not the proxy's connection pool.
// Transport failures mark the peer down; HTTP error statuses prove the
// peer alive and are passed through verbatim.
func (s *Server) forward(w http.ResponseWriter, r *http.Request, kind, node, base string, raw []byte) {
	p := s.cluster.Peer(node)
	if p != nil && !p.Healthy() {
		s.metrics.countForwardError()
		w.Header().Set("Retry-After", retryAfterSeconds(p.RetryAfter()))
		writeErr(w, http.StatusServiceUnavailable, "shard %s owning this model is unavailable (backing off)", node)
		return
	}
	var body io.Reader = r.Body
	if raw != nil {
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.RequestURI(), body)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "build forwarded request: %v", err)
		return
	}
	for _, h := range proxyRequestHeaders {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	req.Header.Set(forwardedHeader, s.nodeLabel())
	resp, err := s.proxyHTTP.Do(req)
	if err != nil {
		if r.Context().Err() != nil {
			// The client's deadline died, not the peer.
			writeErr(w, http.StatusGatewayTimeout, "request deadline exceeded: %v", r.Context().Err())
			return
		}
		if p != nil {
			p.MarkFailure()
		}
		s.metrics.countForwardError()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "shard %s unreachable: %v", node, err)
		return
	}
	defer resp.Body.Close()
	if p != nil {
		p.MarkSuccess()
	}
	s.metrics.countForward(kind)
	for _, h := range proxyResponseHeaders {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // client gone mid-copy is its own problem
}

// retryAfterSeconds renders a backoff as a Retry-After value, at least 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// jobNode extracts the minting node from a node-prefixed job ID
// ("s1.job-000042" → "s1"); ok is false for unprefixed single-node IDs.
func jobNode(id string) (node string, ok bool) {
	i := strings.IndexByte(id, '.')
	if i <= 0 {
		return "", false
	}
	return id[:i], true
}

// redirectJob answers a poll for a job another shard minted with a 307 to
// that shard, preserving method and path — jobs live only on the node that
// runs them, so polls through any proxy still reach the one authoritative
// status. Unknown prefixes fall through to the local (404) lookup.
func (s *Server) redirectJob(w http.ResponseWriter, r *http.Request, id string) bool {
	if s.cluster == nil {
		return false
	}
	node, ok := jobNode(id)
	if !ok || node == s.cluster.SelfName() {
		return false
	}
	base, known := s.cluster.NodeURL(node)
	if !known {
		return false
	}
	s.metrics.countRedirect()
	w.Header().Set("Location", base+r.URL.RequestURI())
	writeJSON(w, http.StatusTemporaryRedirect,
		ErrorResponse{Error: fmt.Sprintf("job %s lives on shard %s", id, node)})
	return true
}

// handleSyncManifest serves GET /v1/sync: everything this node stores, by
// reference, plus its delete tombstones. It answers on unclustered nodes
// too (node ""), so a single-node registry can be drained into a cluster.
func (s *Server) handleSyncManifest(w http.ResponseWriter, _ *http.Request) {
	node := ""
	if s.cluster != nil {
		node = s.cluster.SelfName()
	}
	writeJSON(w, http.StatusOK, cluster.BuildManifest(s.registry, node))
}

// handleSyncEntry serves GET /v1/sync/models/{name}/{version}: one
// immutable version with its optional checkpoint, as the exact bytes the
// replica should store.
func (s *Server) handleSyncEntry(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	version, err := strconv.Atoi(r.PathValue("version"))
	if err != nil || version < 1 {
		writeErr(w, http.StatusBadRequest, "bad version %q", r.PathValue("version"))
		return
	}
	entry, ok := cluster.BuildEntry(s.registry, name, version)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown version %s@v%d", name, version)
		return
	}
	writeJSON(w, http.StatusOK, entry)
}

// handleModelDelete removes every stored version of a model. The delete is
// recorded as a tombstone first, so replicas converge to the removal (and
// a later re-publish resumes past the dead version numbers) instead of
// resurrecting the model on the next sync round.
func (s *Server) handleModelDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.forwardOwned(w, r, "delete", name, nil) {
		return
	}
	if err := s.registry.Delete(name); err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	if s.predCache != nil {
		s.predCache.invalidate(name)
	}
	writeJSON(w, http.StatusOK, DeleteResponse{Name: name, Deleted: true})
}

// clusterExposition threads the cluster view into the /metrics render at
// scrape time; nil means the node is unclustered.
type clusterExposition struct {
	node  string
	stats cluster.Stats
}

func (s *Server) clusterStats() *clusterExposition {
	if s.cluster == nil {
		return nil
	}
	return &clusterExposition{node: s.nodeLabel(), stats: s.cluster.Stats()}
}
