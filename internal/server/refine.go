package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/registry"
)

// Refine outcomes: whether the refit beat the parent's cross-validation
// error and was published as a new registry version.
const (
	RefineImproved = "improved"
	RefineRejected = "rejected"
)

// handleRefine validates and enqueues an incremental-refit job
// (POST /v1/models/{name}/refine). The model must exist and its latest
// version must carry a persisted fit checkpoint — the solver state plus the
// training set the refine appends to. Everything dataset-dependent happens
// in the worker.
func (s *Server) handleRefine(w http.ResponseWriter, r *http.Request) {
	// Refine mutates the model, so it always runs on the owning shard —
	// the body streams through before it is decoded here.
	if s.forwardOwned(w, r, "refine", r.PathValue("name"), nil) {
		return
	}
	e, ok := s.lookupModel(w, r)
	if !ok {
		return
	}
	var req RefineRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// The URL path names the model; a body name is overwritten so the
	// journaled payload can never disagree with the submitted route.
	req.Name = e.Name
	if req.CSV == "" && len(req.Points) == 0 {
		writeErr(w, http.StatusBadRequest, "no new samples: provide csv or points+values")
		return
	}
	if req.CSV != "" && req.Points != nil {
		writeErr(w, http.StatusBadRequest, "csv and points are mutually exclusive")
		return
	}
	if req.Folds != 0 && req.Folds < 2 {
		writeErr(w, http.StatusBadRequest, "folds=%d, need ≥ 2 (0 inherits the parent fit's)", req.Folds)
		return
	}
	if req.MaxLambda < 0 {
		writeErr(w, http.StatusBadRequest, "max_lambda=%d, need ≥ 0 (0 inherits the parent fit's)", req.MaxLambda)
		return
	}
	if req.TimeoutSeconds < 0 {
		writeErr(w, http.StatusBadRequest, "timeout_seconds=%g, need ≥ 0", req.TimeoutSeconds)
		return
	}
	// Fast feedback on the common operator error: models that were uploaded
	// pre-fitted or built by a pipeline have no checkpoint to continue from.
	if _, ok := s.registry.Checkpoint(e.Name, e.Version); !ok {
		writeErr(w, http.StatusConflict,
			"model %s@v%d has no fit checkpoint to continue from (uploaded and pipeline-built models cannot be refined); submit a fresh fit", e.Name, e.Version)
		return
	}
	idemKey, ok := idempotencyKey(w, r)
	if !ok {
		return
	}
	j, existing, err := s.jobs.submitRefine(r.Context(), req, obs.RequestID(r.Context()), idemKey)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if existing {
		if j.kind != JobKindRefine {
			writeErr(w, http.StatusConflict,
				"idempotency key %q was used by %s job %s", idemKey, j.kind, j.id)
			return
		}
		w.Header().Set(idemReplayedHeader, "true")
		writeJSON(w, http.StatusAccepted, RefineResponse{JobID: j.id, State: j.status().State})
		return
	}
	s.metrics.countRefineSubmitted()
	obs.Log(r.Context()).Info("refine job submitted",
		"job_id", j.id, "name", e.Name, "parent_version", e.Version, "queue_depth", s.jobs.depth())
	writeJSON(w, http.StatusAccepted, RefineResponse{JobID: j.id, State: JobPending})
}

// refineDeadline resolves the effective refit deadline: the server-wide fit
// cap, tightened by the request's own timeout when smaller.
func (s *Server) refineDeadline(req *RefineRequest) time.Duration {
	d := s.cfg.FitTimeout
	if req.TimeoutSeconds > 0 {
		if r := time.Duration(req.TimeoutSeconds * float64(time.Second)); r < d {
			d = r
		}
	}
	return d
}

// warmContinuable reports whether the checkpointed engine state supports
// warm continuation on grown data: Gram-maintaining solvers replay the
// parent support sweep-free inside CV folds and fold appended rows into the
// factor as rank-one updates on the final refit. The others (LAR normalizes
// per-fold, STAR keeps no factor, CD's grid resume needs identical data)
// refit cold on the combined set — correctness over speed.
func warmContinuable(engineSolver string) bool {
	switch engineSolver {
	case "OMP", "StOMP":
		return true
	}
	return false
}

// runRefine executes one incremental-refit job end to end: load the parent
// version and its checkpoint, splice the new samples onto the checkpointed
// training set (refit.append), continue the cross-validated fit warm where
// the solver supports it (refit.resume), and publish a new registry version
// only when the refit's CV error strictly improves on the parent's. Like
// runFit it must never let a failure escape the worker.
func (s *Server) runRefine(j *job) {
	if !j.begin() {
		return // canceled while queued
	}
	s.jobs.noteStarted(j)
	queueWait := j.started.Sub(j.submitted)
	s.metrics.observeQueueWait(queueWait)
	req := j.refineReq
	logger := s.log.With("job_id", j.id, "request_id", j.requestID)
	logger.Info("refine job started",
		"model", req.Name, "recovery_attempt", j.attempt,
		"queue_wait_ms", float64(queueWait.Microseconds())/1000.0)
	ctx, cancelCtx := context.WithTimeout(j.ctx, s.refineDeadline(req))
	defer cancelCtx()
	// Re-attach the job span: j.ctx is rooted in Background (the job
	// outlives its submitting request).
	ctx = trace.ContextWithSpan(ctx, j.span)
	_, qwSpan := trace.Start(ctx, "queue.wait", trace.WithStart(j.submitted))
	qwSpan.End()
	ctx, refineSpan := trace.Start(ctx, "refine",
		trace.WithAttrs(trace.String("model", req.Name)))
	spans := trace.NewSpanSet(ctx)
	ctx = core.WithFitObserver(ctx, func(ev core.FitEvent) {
		j.addEvent(ev)
		spans.Observe(ev.Stage, trace.Int("iter", ev.Iter),
			trace.Int("active", ev.Active), trace.Float("residual", ev.Residual))
	})
	ctx = core.WithFitWorkers(ctx, s.cfg.FitParallel)

	finish := func(state, errMsg string, result *RefineResult) {
		spans.Close()
		if state != JobDone {
			refineSpan.SetStatus(trace.StatusError, errMsg)
		}
		refineSpan.End()
		if !j.finishRefine(state, errMsg, result) {
			return
		}
		dur := j.finished.Sub(j.started)
		if state == JobDone {
			logger.Info("refine job done", "outcome", result.Outcome,
				"duration_ms", float64(dur.Microseconds())/1000.0)
		} else {
			logger.Warn("refine job ended", "state", state, "error", errMsg,
				"duration_ms", float64(dur.Microseconds())/1000.0)
		}
	}
	fail := func(err error) {
		switch {
		case errors.Is(err, context.Canceled):
			finish(JobCanceled, err.Error(), nil)
		case errors.Is(err, context.DeadlineExceeded):
			finish(JobTimedOut, fmt.Sprintf("deadline %s exceeded: %v", s.refineDeadline(req), err), nil)
		default:
			finish(JobFailed, err.Error(), nil)
		}
	}
	defer func() {
		if rec := recover(); rec != nil {
			s.metrics.countPanic()
			logger.Error("refine panicked", "panic", rec, "stack", string(debug.Stack()))
			finish(JobFailed, fmt.Sprintf("internal: refine panicked: %v (incident logged)", rec), nil)
		}
	}()

	// Chaos hook: injected panics exercise the recovery above, injected
	// delays stall the job against its deadline — and a crash here leaves a
	// non-terminal journal trail for replay to re-run.
	if err := faultinject.FireCtx(ctx, "server.refine"); err != nil {
		fail(err)
		return
	}
	if err := ctx.Err(); err != nil {
		fail(err)
		return
	}

	// The parent is re-resolved in the worker (not captured at submit): a
	// journal-replayed refine continues from whatever the latest version is
	// when it finally runs.
	entry, ok := s.registry.Get(req.Name)
	if !ok {
		fail(fmt.Errorf("unknown model %q", req.Name))
		return
	}
	parentCK, ok := s.registry.Checkpoint(entry.Name, entry.Version)
	if !ok {
		fail(fmt.Errorf("model %s@v%d has no fit checkpoint to continue from; submit a fresh fit instead", entry.Name, entry.Version))
		return
	}

	newPts, newVals, _, err := fitDataset(&FitRequest{
		CSV: req.CSV, Points: req.Points, Values: req.Values, Metric: parentCK.Metric,
	})
	if err != nil {
		fail(fmt.Errorf("dataset: %w", err))
		return
	}
	if dim := len(parentCK.Points[0]); len(newPts[0]) != dim {
		fail(fmt.Errorf("new samples have dimension %d, parent fit used %d", len(newPts[0]), dim))
		return
	}

	// refit.append: splice the new rows onto the checkpointed training set.
	_, appendSpan := trace.Start(ctx, "refit.append", trace.WithAttrs(
		trace.Int("parent_samples", len(parentCK.Points)), trace.Int("appended", len(newPts))))
	points := make([][]float64, 0, len(parentCK.Points)+len(newPts))
	points = append(points, parentCK.Points...)
	points = append(points, newPts...)
	values := make([]float64, 0, len(parentCK.Values)+len(newVals))
	values = append(values, parentCK.Values...)
	values = append(values, newVals...)
	appendSpan.End()

	b, err := entry.Basis()
	if err != nil {
		fail(fmt.Errorf("rebuild basis: %w", err))
		return
	}
	fitterName := parentCK.Fitter
	if fitterName == "" {
		fitterName = parentCK.Solver
	}
	fitter, err := core.SolverByName(fitterName)
	if err != nil {
		fail(err)
		return
	}
	folds := req.Folds
	if folds == 0 {
		folds = parentCK.Folds
	}
	if folds < 2 {
		folds = 4
	}
	maxLambda := req.MaxLambda
	if maxLambda == 0 {
		maxLambda = parentCK.MaxLambda
	}

	warm := warmContinuable(parentCK.State.Solver)
	fitCtx := ctx
	if warm {
		// CV folds replay the parent support without correlation sweeps; the
		// final refit exact-resumes the checkpoint, folding the appended rows
		// into the Gram factor as rank-one updates (CrossValidateCtx scrubs
		// the resume state from fold contexts, where the rows differ). A
		// request that shrinks the sparsity budget below the checkpointed
		// support keeps the warm replay but skips the exact resume.
		fitCtx = core.WithWarmStart(fitCtx, entry.Model())
		if maxLambda >= len(parentCK.State.Support) {
			fitCtx = core.WithResumeCheckpoint(fitCtx, parentCK.State)
		}
	}
	// Capture the continued fit's natural-end state so the refined version
	// gets a checkpoint of its own and stays refinable.
	plan := &core.CheckpointPlan{}
	fitCtx = core.WithCheckpointPlan(fitCtx, plan)

	rctx, resumeSpan := trace.Start(fitCtx, "refit.resume", trace.WithAttrs(
		trace.Bool("warm", warm), trace.Int("parent_version", entry.Version),
		trace.String("solver", parentCK.Solver)))
	start := time.Now()
	cv, err := core.CrossValidateCtx(rctx, fitter, basis.AutoDesign(b, points), values, folds, maxLambda)
	fitDur := time.Since(start)
	resumeSpan.EndErr(err)
	if err != nil {
		fail(fmt.Errorf("refit: %w", err))
		return
	}
	s.metrics.observeRefineFit(fitDur, warm)
	s.metrics.observeFit(fitDur, finalIterations(j), j.traceID)

	parentErr := entry.Envelope.Prov.CVError
	newErr := cv.ErrCurve[cv.BestLambda-1]
	refineSpan.SetAttr("cv_error", newErr)
	refineSpan.SetAttr("parent_cv_error", parentErr)
	result := &RefineResult{
		ParentVersion: entry.Version, ParentCVError: parentErr,
		CVError: newErr, Lambda: cv.BestLambda,
		Samples: len(points), AppendedSamples: len(newPts),
		Warm: warm, FitSeconds: fitDur.Seconds(),
	}

	// Publish gate: a refined version must strictly improve the parent's
	// cross-validation error. Written so a NaN refit error also rejects.
	if !(newErr < parentErr) {
		s.metrics.countRefit(RefineRejected)
		refineSpan.SetAttr("outcome", RefineRejected)
		result.Outcome = RefineRejected
		result.Model = modelInfo(entry)
		logger.Info("refine rejected: no CV improvement", "model", entry.Name,
			"parent_version", entry.Version, "parent_cv_error", parentErr, "cv_error", newErr)
		finish(JobDone, "", result)
		return
	}

	env := &core.Envelope{
		Model: cv.Model,
		Basis: entry.Envelope.Basis,
		Prov: core.Provenance{
			Solver:  fitter.Name(),
			Lambda:  cv.BestLambda,
			CVError: newErr,
			Folds:   folds,
			Samples: len(points),
			Metric:  parentCK.Metric,
			Refine: &core.RefineProvenance{
				ParentVersion: entry.Version, ParentCVError: parentErr,
				AppendedSamples: len(newPts), Warm: warm,
			},
		},
	}
	newEntry, err := s.registry.Put(entry.Name, env)
	if err != nil {
		fail(err)
		return
	}
	s.metrics.countRefit(RefineImproved)
	refineSpan.SetAttr("outcome", RefineImproved)
	result.Outcome = RefineImproved
	result.Model = modelInfo(newEntry)
	result.CheckpointBytes = s.persistCheckpoint(logger, newEntry, plan.CK,
		fitterName, folds, maxLambda, parentCK.Metric, points, values)
	finish(JobDone, "", result)
}

// persistCheckpoint stores the captured engine state beside a just-published
// model version so POST /v1/models/{name}/refine can continue the fit later.
// Failure is deliberately non-fatal — the model itself published; a missing
// checkpoint only means the next refine fits cold — but it is logged and the
// checkpoint size gauge stays unset. Returns the persisted size in bytes.
func (s *Server) persistCheckpoint(logger *slog.Logger, entry *registry.Entry, state *core.FitCheckpoint,
	fitterName string, folds, maxLambda int, metric string, points [][]float64, values []float64) int {
	if state == nil {
		return 0
	}
	ck := &registry.Checkpoint{
		Version:      registry.CheckpointFormatVersion,
		Name:         entry.Name,
		ModelVersion: entry.Version,
		Solver:       state.Solver,
		Fitter:       fitterName,
		Folds:        folds,
		MaxLambda:    maxLambda,
		Metric:       metric,
		Points:       points,
		Values:       values,
		State:        state,
		CreatedAt:    time.Now().UTC(),
	}
	if err := s.registry.PutCheckpoint(ck); err != nil {
		logger.Warn("fit checkpoint not persisted (the next refine of this model fits cold)",
			"model", entry.Name, "version", entry.Version, "error", err)
		return 0
	}
	n := s.registry.CheckpointBytes(entry.Name, entry.Version)
	s.metrics.setCheckpointBytes(entry.Name, n)
	return n
}
