package server

import (
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// latencyBounds are the histogram bucket upper bounds in seconds; an
// implicit +Inf bucket catches the rest. Chosen to straddle the expected
// range from in-memory predict calls to multi-second fits.
var latencyBounds = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// routeStats accumulates per-endpoint request counts and latencies.
type routeStats struct {
	count   int64
	errors  int64 // responses with status ≥ 400
	sumSec  float64
	buckets []int64 // len(latencyBounds)+1, last is +Inf
}

// metrics is the daemon's stdlib-only observability state, exported as
// expvar-style JSON by GET /metrics. All methods are safe for concurrent
// use.
type metrics struct {
	start time.Time

	mu          sync.Mutex
	routes      map[string]*routeStats
	predictions map[string]int64 // model name → points predicted
	jobs        struct{ submitted, completed, failed, canceled, timedOut int64 }
	panics      int64 // recovered panics (handlers + fit workers)
	shed        int64 // requests rejected by load shedding
}

func newMetrics() *metrics {
	return &metrics{
		start:       time.Now(),
		routes:      make(map[string]*routeStats),
		predictions: make(map[string]int64),
	}
}

// observe records one request against the labeled route.
func (m *metrics) observe(route string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs := m.routes[route]
	if rs == nil {
		rs = &routeStats{buckets: make([]int64, len(latencyBounds)+1)}
		m.routes[route] = rs
	}
	rs.count++
	if status >= 400 {
		rs.errors++
	}
	sec := d.Seconds()
	rs.sumSec += sec
	i := sort.SearchFloat64s(latencyBounds, sec)
	rs.buckets[i]++
}

// countPredictions adds n served points to the model's counter.
func (m *metrics) countPredictions(model string, n int) {
	m.mu.Lock()
	m.predictions[model] += int64(n)
	m.mu.Unlock()
}

// countJobSubmitted tracks one accepted fit job.
func (m *metrics) countJobSubmitted() {
	m.mu.Lock()
	m.jobs.submitted++
	m.mu.Unlock()
}

// countJobEnd tracks one job reaching the given terminal state.
func (m *metrics) countJobEnd(state string) {
	m.mu.Lock()
	switch state {
	case JobDone:
		m.jobs.completed++
	case JobFailed:
		m.jobs.failed++
	case JobCanceled:
		m.jobs.canceled++
	case JobTimedOut:
		m.jobs.timedOut++
	}
	m.mu.Unlock()
}

// countPanic tracks one recovered panic — an incident that would have
// crashed the daemon before panic isolation existed.
func (m *metrics) countPanic() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

// countShed tracks one request rejected because the daemon was saturated.
func (m *metrics) countShed() {
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

// Snapshot renders the current state as a JSON-encodable tree.
func (m *metrics) Snapshot(models int) map[string]any {
	m.mu.Lock()
	defer m.mu.Unlock()
	routes := make(map[string]any, len(m.routes))
	for route, rs := range m.routes {
		buckets := make(map[string]int64, len(rs.buckets))
		for i, b := range latencyBounds {
			buckets["le_"+strconv.FormatFloat(b, 'g', -1, 64)] = rs.buckets[i]
		}
		buckets["le_inf"] = rs.buckets[len(latencyBounds)]
		routes[route] = map[string]any{
			"count":               rs.count,
			"errors":              rs.errors,
			"latency_seconds_sum": rs.sumSec,
			"latency_buckets":     buckets,
		}
	}
	predictions := make(map[string]int64, len(m.predictions))
	for name, n := range m.predictions {
		predictions[name] = n
	}
	return map[string]any{
		"uptime_seconds": time.Since(m.start).Seconds(),
		"models":         models,
		"requests":       routes,
		"predictions":    predictions,
		"jobs": map[string]int64{
			"submitted": m.jobs.submitted,
			"completed": m.jobs.completed,
			"failed":    m.jobs.failed,
			"canceled":  m.jobs.canceled,
			"timed_out": m.jobs.timedOut,
		},
		"incidents": map[string]int64{
			"panics_recovered": m.panics,
			"requests_shed":    m.shed,
		},
	}
}

// statusRecorder captures the response status code for instrumentation.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with latency and status accounting under the
// given route label.
func (m *metrics) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, req)
		m.observe(route, rec.status, time.Since(start))
	}
}
