package server

import (
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/pipeline"
)

// latencyBounds are the histogram bucket upper bounds in seconds; an
// implicit +Inf bucket catches the rest. Chosen to straddle the expected
// range from in-memory predict calls to multi-second fits.
var latencyBounds = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// fitDurationBounds cover fit jobs: sub-second toy fits through the 5m
// default deadline.
var fitDurationBounds = []float64{0.01, 0.05, 0.25, 1, 5, 30, 120, 600}

// fitIterationBounds cover path lengths: λ is rarely above the default
// max_lambda of 50, but operators can raise it.
var fitIterationBounds = []float64{1, 2, 5, 10, 25, 50, 100, 250}

// queueWaitBounds cover the pending-job wait: instant pickup through the
// multi-minute backlog a saturated daemon accumulates.
var queueWaitBounds = []float64{0.001, 0.01, 0.1, 1, 10, 60, 300}

// coalescedCallBounds cover requests-per-flush of the predict
// micro-batcher: 1 (a request that rode alone) through heavy fan-in.
var coalescedCallBounds = []float64{1, 2, 4, 8, 16, 32, 64}

// coalescedPointBounds cover total points per coalesced flush, up to the
// default BatchMaxPoints of 4096 and beyond.
var coalescedPointBounds = []float64{1, 8, 32, 128, 512, 2048, 8192}

// pipelineStageBounds cover pipeline stage durations: instant parse/space
// stages through multi-minute sampling campaigns.
var pipelineStageBounds = []float64{0.001, 0.01, 0.1, 1, 10, 60, 300}

// journalFsyncBounds cover the per-record append+fsync latency of the job
// journal: tens of microseconds on a warm NVMe page cache through the
// hundreds of milliseconds a contended spinning disk can take.
var journalFsyncBounds = []float64{0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5}

// routeStats accumulates per-endpoint request counts and latencies. The
// buckets hold per-interval counts; both exposition formats render them
// cumulatively (Prometheus `le` semantics).
type routeStats struct {
	count   int64
	errors  int64 // responses with status ≥ 400
	sumSec  float64
	buckets []int64 // len(latencyBounds)+1, last is +Inf
	// exemplars holds the most recent traced request per bucket interval
	// (lazily allocated; zero entries mean none), rendered as OpenMetrics
	// exemplar suffixes on the latency bucket lines.
	exemplars []obs.Exemplar
}

// metrics is the daemon's stdlib-only observability state, exported as
// expvar-style JSON and Prometheus text exposition by GET /metrics. All
// methods are safe for concurrent use.
type metrics struct {
	start time.Time
	// fitParallel is the effective engine sweep worker count per fit job
	// (core.ResolveFitWorkers of Config.FitParallel). Set once at server
	// construction, read-only afterwards.
	fitParallel int

	mu          sync.Mutex
	routes      map[string]*routeStats
	predictions map[string]int64 // model name → points predicted
	jobs        struct{ submitted, completed, failed, canceled, timedOut int64 }
	pipelines   struct{ submitted, completed, failed, canceled, timedOut int64 }
	refines     struct{ submitted, completed, failed, canceled, timedOut int64 }
	// refits tallies completed refine jobs by publish-gate outcome — the
	// rsmd_refits_total{outcome} counter.
	refits struct{ improved, rejected int64 }
	// checkpointBytes is the serialized size of the latest persisted fit
	// checkpoint per model name — the rsmd_checkpoint_bytes gauge.
	checkpointBytes map[string]int64
	// activePipelines counts pipeline jobs currently running (between
	// worker pickup and terminal state) — the rsmd_pipelines_active gauge.
	activePipelines int64
	// samplesSimulated counts circuit simulations executed by pipeline
	// sampling stages.
	samplesSimulated int64
	panics           int64 // recovered panics (handlers + fit workers)
	shed             int64 // requests rejected by load shedding
	// journal tracks the durable job journal: append outcomes plus the
	// boot-time replay/recovery/quarantine tallies.
	journal journalCounters
	// proxy tallies this node's cluster proxy layer; the replicator's own
	// counters live in cluster.Stats and are read at scrape time.
	proxy proxyCounters

	// Self-locking histograms for the fit pipeline; kept outside mu so the
	// fit workers never contend with request accounting.
	fitDuration   *obs.Histogram
	fitIterations *obs.Histogram
	queueWait     *obs.Histogram

	// refineFitWarm/refineFitCold split refine fit times by whether the
	// solver continued warm from the parent's state or refit cold — the
	// observable half of the "warm ≤ 50% of cold" contract.
	refineFitWarm *obs.Histogram
	refineFitCold *obs.Histogram

	// Micro-batcher coalescing histograms, observed once per executed
	// flush; self-locking for the same reason.
	coalescedCalls  *obs.Histogram
	coalescedPoints *obs.Histogram

	// stageDuration holds one self-locking histogram per pipeline stage,
	// keyed by stage name. The map is built once at construction and never
	// mutated, so lookups need no lock.
	stageDuration map[string]*obs.Histogram

	// journalFsync samples the append+fsync latency of successful journal
	// writes; self-locking so the submit path never contends with request
	// accounting.
	journalFsync *obs.Histogram
}

// proxyCounters are the mu-guarded cluster proxy-layer tallies.
type proxyCounters struct {
	forwards      map[string]int64 // requests proxied to their owning shard, by route kind
	forwardErrors int64            // forwards that failed (peer down or unreachable)
	redirects     int64            // job polls answered with a 307 to the minting shard
	replicaReads  int64            // reads served from a local replica under a satisfied min-version
}

// countForward tallies one request proxied to its owning shard.
func (m *metrics) countForward(kind string) {
	m.mu.Lock()
	m.proxy.forwards[kind]++
	m.mu.Unlock()
}

// countForwardError tallies one forward that failed because the owning
// shard was down, unreachable, or backing off.
func (m *metrics) countForwardError() {
	m.mu.Lock()
	m.proxy.forwardErrors++
	m.mu.Unlock()
}

// countRedirect tallies one job poll redirected to the minting shard.
func (m *metrics) countRedirect() {
	m.mu.Lock()
	m.proxy.redirects++
	m.mu.Unlock()
}

// countReplicaRead tallies one read served locally from a synced replica.
func (m *metrics) countReplicaRead() {
	m.mu.Lock()
	m.proxy.replicaReads++
	m.mu.Unlock()
}

// journalCounters are the mu-guarded durable-journal tallies.
type journalCounters struct {
	appends      int64 // records durably appended (write + fsync succeeded)
	appendErrors int64 // append attempts that failed (disk pressure)
	replayed     int64 // jobs reconstructed from the journal at boot
	recovered    int64 // replayed live jobs re-enqueued to run again
	quarantined  int64 // replayed jobs retired by the crash-loop guard
}

func newMetrics() *metrics {
	m := &metrics{
		start:           time.Now(),
		routes:          make(map[string]*routeStats),
		predictions:     make(map[string]int64),
		checkpointBytes: make(map[string]int64),
		fitDuration:     obs.NewHistogram(fitDurationBounds...),
		fitIterations:   obs.NewHistogram(fitIterationBounds...),
		queueWait:       obs.NewHistogram(queueWaitBounds...),
		refineFitWarm:   obs.NewHistogram(fitDurationBounds...),
		refineFitCold:   obs.NewHistogram(fitDurationBounds...),
		coalescedCalls:  obs.NewHistogram(coalescedCallBounds...),
		coalescedPoints: obs.NewHistogram(coalescedPointBounds...),
		stageDuration:   make(map[string]*obs.Histogram, len(pipeline.Stages)),
		journalFsync:    obs.NewHistogram(journalFsyncBounds...),
	}
	m.proxy.forwards = make(map[string]int64)
	for _, stage := range pipeline.Stages {
		m.stageDuration[stage] = obs.NewHistogram(pipelineStageBounds...)
	}
	return m
}

// countJournal applies one update to the journal counters under the lock.
func (m *metrics) countJournal(fn func(*journalCounters)) {
	m.mu.Lock()
	fn(&m.journal)
	m.mu.Unlock()
}

// observeJournalAppend is the journal's OnAppend hook: it tallies the
// outcome and samples the fsync-inclusive latency of successful appends.
func (m *metrics) observeJournalAppend(d time.Duration, err error) {
	m.mu.Lock()
	if err != nil {
		m.journal.appendErrors++
	} else {
		m.journal.appends++
	}
	m.mu.Unlock()
	if err == nil {
		m.journalFsync.Observe(d.Seconds())
	}
}

// countPipelineSubmitted tracks one accepted pipeline job.
func (m *metrics) countPipelineSubmitted() {
	m.mu.Lock()
	m.pipelines.submitted++
	m.mu.Unlock()
}

// countRefineSubmitted tracks one accepted refine job.
func (m *metrics) countRefineSubmitted() {
	m.mu.Lock()
	m.refines.submitted++
	m.mu.Unlock()
}

// countRefit tallies one completed refine by publish-gate outcome
// (RefineImproved / RefineRejected).
func (m *metrics) countRefit(outcome string) {
	m.mu.Lock()
	switch outcome {
	case RefineImproved:
		m.refits.improved++
	case RefineRejected:
		m.refits.rejected++
	}
	m.mu.Unlock()
}

// observeRefineFit records one refine's fit time into the warm or cold
// histogram per how the solver actually continued.
func (m *metrics) observeRefineFit(d time.Duration, warm bool) {
	if warm {
		m.refineFitWarm.Observe(d.Seconds())
		return
	}
	m.refineFitCold.Observe(d.Seconds())
}

// setCheckpointBytes updates the per-model checkpoint size gauge after a
// checkpoint was persisted.
func (m *metrics) setCheckpointBytes(model string, n int) {
	m.mu.Lock()
	m.checkpointBytes[model] = int64(n)
	m.mu.Unlock()
}

// pipelineActive moves the running-pipelines gauge by delta (±1).
func (m *metrics) pipelineActive(delta int64) {
	m.mu.Lock()
	m.activePipelines += delta
	m.mu.Unlock()
}

// observePipelineStage records one completed pipeline stage: its duration
// into the per-stage histogram, and — for the sampling stage — the
// simulated sample count into the samples counter.
func (m *metrics) observePipelineStage(stage string, seconds float64, samples int) {
	if h, ok := m.stageDuration[stage]; ok {
		h.Observe(seconds)
	}
	if stage == pipeline.StageSample && samples > 0 {
		m.mu.Lock()
		m.samplesSimulated += int64(samples)
		m.mu.Unlock()
	}
}

// observeCoalesced records one executed micro-batch flush: how many
// requests it coalesced and how many points they totaled.
func (m *metrics) observeCoalesced(calls, points int) {
	m.coalescedCalls.Observe(float64(calls))
	m.coalescedPoints.Observe(float64(points))
}

// observe records one request against the labeled route. A non-empty
// traceID stamps the request's latency bucket with an exemplar pointing at
// its trace (last traced request wins).
func (m *metrics) observe(route string, status int, d time.Duration, traceID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs := m.routes[route]
	if rs == nil {
		rs = &routeStats{buckets: make([]int64, len(latencyBounds)+1)}
		m.routes[route] = rs
	}
	rs.count++
	if status >= 400 {
		rs.errors++
	}
	sec := d.Seconds()
	rs.sumSec += sec
	i := sort.SearchFloat64s(latencyBounds, sec)
	rs.buckets[i]++
	if traceID != "" {
		if rs.exemplars == nil {
			rs.exemplars = make([]obs.Exemplar, len(rs.buckets))
		}
		rs.exemplars[i] = obs.Exemplar{TraceID: traceID, Value: sec, Time: time.Now()}
	}
}

// countPredictions adds n served points to the model's counter.
func (m *metrics) countPredictions(model string, n int) {
	m.mu.Lock()
	m.predictions[model] += int64(n)
	m.mu.Unlock()
}

// countJobSubmitted tracks one accepted fit job.
func (m *metrics) countJobSubmitted() {
	m.mu.Lock()
	m.jobs.submitted++
	m.mu.Unlock()
}

// countJobEnd tracks one job of the given kind reaching the given terminal
// state.
func (m *metrics) countJobEnd(kind, state string) {
	m.mu.Lock()
	c := &m.jobs
	switch kind {
	case JobKindPipeline:
		c = &m.pipelines
	case JobKindRefine:
		c = &m.refines
	}
	switch state {
	case JobDone:
		c.completed++
	case JobFailed:
		c.failed++
	case JobCanceled:
		c.canceled++
	case JobTimedOut:
		c.timedOut++
	}
	m.mu.Unlock()
}

// countPanic tracks one recovered panic — an incident that would have
// crashed the daemon before panic isolation existed.
func (m *metrics) countPanic() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

// countShed tracks one request rejected because the daemon was saturated.
func (m *metrics) countShed() {
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

// observeQueueWait records how long a job sat pending before a worker
// picked it up.
func (m *metrics) observeQueueWait(d time.Duration) {
	m.queueWait.Observe(d.Seconds())
}

// observeFit records one completed fit job: wall-clock duration and the
// number of final-refit path iterations. A non-empty traceID attaches an
// exemplar to the fit-duration bucket the job landed in.
func (m *metrics) observeFit(d time.Duration, iterations int, traceID string) {
	m.fitDuration.ObserveExemplar(d.Seconds(), traceID)
	m.fitIterations.Observe(float64(iterations))
}

// journalStatus is the live durable-journal state threaded into the
// exposition: whether a journal is attached at all, and whether its last
// append failed (disk pressure — async submits are being 503'd).
type journalStatus struct {
	enabled  bool
	degraded bool
}

// Snapshot renders the current state as a JSON-encodable tree. Histogram
// buckets are cumulative, matching their Prometheus-style `le` naming.
func (m *metrics) Snapshot(models, queueDepth int, cache cacheStats, jnl journalStatus, traces trace.Stats, cl *clusterExposition) map[string]any {
	m.mu.Lock()
	routes := make(map[string]any, len(m.routes))
	for route, rs := range m.routes {
		snap := obs.CumulativeSnapshot(latencyBounds, rs.buckets, rs.sumSec)
		routes[route] = map[string]any{
			"count":               rs.count,
			"errors":              rs.errors,
			"latency_seconds_sum": rs.sumSec,
			"latency_buckets":     snap.JSONBuckets(),
		}
	}
	predictions := make(map[string]int64, len(m.predictions))
	for name, n := range m.predictions {
		predictions[name] = n
	}
	jobs := map[string]int64{
		"submitted": m.jobs.submitted,
		"completed": m.jobs.completed,
		"failed":    m.jobs.failed,
		"canceled":  m.jobs.canceled,
		"timed_out": m.jobs.timedOut,
	}
	pipelines := map[string]any{
		"submitted":         m.pipelines.submitted,
		"completed":         m.pipelines.completed,
		"failed":            m.pipelines.failed,
		"canceled":          m.pipelines.canceled,
		"timed_out":         m.pipelines.timedOut,
		"active":            m.activePipelines,
		"samples_simulated": m.samplesSimulated,
	}
	refines := map[string]any{
		"submitted": m.refines.submitted,
		"completed": m.refines.completed,
		"failed":    m.refines.failed,
		"canceled":  m.refines.canceled,
		"timed_out": m.refines.timedOut,
		"outcomes": map[string]int64{
			RefineImproved: m.refits.improved,
			RefineRejected: m.refits.rejected,
		},
	}
	ckBytes := make(map[string]int64, len(m.checkpointBytes))
	for name, n := range m.checkpointBytes {
		ckBytes[name] = n
	}
	incidents := map[string]int64{
		"panics_recovered": m.panics,
		"requests_shed":    m.shed,
	}
	jc := m.journal
	forwards := make(map[string]int64, len(m.proxy.forwards))
	for kind, n := range m.proxy.forwards {
		forwards[kind] = n
	}
	px := m.proxy
	m.mu.Unlock()
	refines["fit_seconds_warm"] = m.refineFitWarm.Snapshot().JSON()
	refines["fit_seconds_cold"] = m.refineFitCold.Snapshot().JSON()
	stageDur := make(map[string]any, len(m.stageDuration))
	for _, stage := range pipeline.Stages {
		stageDur[stage] = m.stageDuration[stage].Snapshot().JSON()
	}
	pipelines["stage_duration_seconds"] = stageDur
	clusterJSON := map[string]any{
		"enabled":        cl != nil,
		"forwards":       forwards,
		"forward_errors": px.forwardErrors,
		"redirects":      px.redirects,
		"replica_reads":  px.replicaReads,
	}
	if cl != nil {
		clusterJSON["node"] = cl.node
		clusterJSON["replication"] = cl.stats
	}

	return map[string]any{
		"uptime_seconds": time.Since(m.start).Seconds(),
		"build": map[string]any{
			"version":    obs.Version,
			"go_version": runtime.Version(),
		},
		"traces": map[string]any{
			"enabled":           traces.Enabled,
			"stored":            traces.Stored,
			"open":              traces.Open,
			"capacity":          traces.Capacity,
			"slow_seconds":      traces.SlowThresholdSeconds,
			"sample_rate":       traces.SampleRate,
			"kept_total":        traces.Kept,
			"sampled_out_total": traces.SampledOut,
			"evicted_total":     traces.Evicted,
		},
		"models":      models,
		"requests":    routes,
		"predictions": predictions,
		"predictor_cache": map[string]int64{
			"hits":      cache.hits,
			"misses":    cache.misses,
			"evictions": cache.evictions,
			"entries":   int64(cache.entries),
			"capacity":  int64(cache.capacity),
		},
		"predict_coalescing": map[string]any{
			"requests_per_batch": m.coalescedCalls.Snapshot().JSON(),
			"points_per_batch":   m.coalescedPoints.Snapshot().JSON(),
		},
		"jobs":      jobs,
		"pipelines": pipelines,
		"refines":   refines,
		"checkpoints": map[string]any{
			"bytes": ckBytes,
		},
		"incidents": incidents,
		"cluster":   clusterJSON,
		"journal": map[string]any{
			"enabled":          jnl.enabled,
			"degraded":         jnl.degraded,
			"appends":          jc.appends,
			"append_errors":    jc.appendErrors,
			"jobs_replayed":    jc.replayed,
			"jobs_recovered":   jc.recovered,
			"jobs_quarantined": jc.quarantined,
			"fsync_seconds":    m.journalFsync.Snapshot().JSON(),
		},
		"fit": map[string]any{
			"duration_seconds": m.fitDuration.Snapshot().JSON(),
			"iterations":       m.fitIterations.Snapshot().JSON(),
			"parallel_workers": m.fitParallel,
		},
		"queue": map[string]any{
			"depth":        queueDepth,
			"wait_seconds": m.queueWait.Snapshot().JSON(),
		},
		"runtime": obs.ReadRuntimeStats().JSON(),
	}
}

// writePrometheus renders the same state as Prometheus text exposition
// (format version 0.0.4) with cumulative le buckets.
func (m *metrics) writePrometheus(w io.Writer, models, queueDepth int, cache cacheStats, jnl journalStatus, traces trace.Stats, cl *clusterExposition) error {
	pw := obs.NewPromWriter(w)

	pw.Meta("rsmd_build_info", "gauge", "Build identity; always 1, labeled with version and Go toolchain.")
	pw.Sample("rsmd_build_info", obs.Labels("version", obs.Version, "go_version", runtime.Version()), 1)
	pw.Meta("rsmd_uptime_seconds", "gauge", "Seconds since the daemon started.")
	pw.Sample("rsmd_uptime_seconds", "", time.Since(m.start).Seconds())
	pw.Meta("rsmd_models", "gauge", "Distinct model names in the registry.")
	pw.Sample("rsmd_models", "", float64(models))

	m.mu.Lock()
	routeNames := make([]string, 0, len(m.routes))
	for route := range m.routes {
		routeNames = append(routeNames, route)
	}
	sort.Strings(routeNames)
	type routeSnap struct {
		route string
		rs    routeStats
		hist  obs.HistogramSnapshot
	}
	routes := make([]routeSnap, 0, len(routeNames))
	for _, route := range routeNames {
		rs := m.routes[route]
		hist := obs.CumulativeSnapshot(latencyBounds, rs.buckets, rs.sumSec)
		if rs.exemplars != nil {
			hist.Exemplars = append([]obs.Exemplar(nil), rs.exemplars...)
		}
		routes = append(routes, routeSnap{
			route: route,
			rs:    routeStats{count: rs.count, errors: rs.errors, sumSec: rs.sumSec},
			hist:  hist,
		})
	}
	modelNames := make([]string, 0, len(m.predictions))
	for name := range m.predictions {
		modelNames = append(modelNames, name)
	}
	sort.Strings(modelNames)
	predictions := make([]int64, len(modelNames))
	for i, name := range modelNames {
		predictions[i] = m.predictions[name]
	}
	jobs := m.jobs
	pipelines := m.pipelines
	refines := m.refines
	refits := m.refits
	ckModels := make([]string, 0, len(m.checkpointBytes))
	for name := range m.checkpointBytes {
		ckModels = append(ckModels, name)
	}
	sort.Strings(ckModels)
	ckBytes := make([]int64, len(ckModels))
	for i, name := range ckModels {
		ckBytes[i] = m.checkpointBytes[name]
	}
	activePipelines, samplesSimulated := m.activePipelines, m.samplesSimulated
	panics, shed := m.panics, m.shed
	jc := m.journal
	forwards := make([]int64, len(forwardKinds))
	for i, kind := range forwardKinds {
		forwards[i] = m.proxy.forwards[kind]
	}
	px := m.proxy
	m.mu.Unlock()

	pw.Meta("rsmd_http_requests_total", "counter", "Requests served, by route.")
	for _, r := range routes {
		pw.Sample("rsmd_http_requests_total", obs.Label("route", r.route), float64(r.rs.count))
	}
	pw.Meta("rsmd_http_request_errors_total", "counter", "Responses with status >= 400, by route.")
	for _, r := range routes {
		pw.Sample("rsmd_http_request_errors_total", obs.Label("route", r.route), float64(r.rs.errors))
	}
	pw.Meta("rsmd_http_request_duration_seconds", "histogram", "Request latency, by route.")
	for _, r := range routes {
		pw.Histogram("rsmd_http_request_duration_seconds", obs.Label("route", r.route), r.hist)
	}

	pw.Meta("rsmd_predictions_total", "counter", "Points predicted, by model.")
	for i, name := range modelNames {
		pw.Sample("rsmd_predictions_total", obs.Label("model", name), float64(predictions[i]))
	}

	pw.Meta("rsmd_predictor_cache_hits_total", "counter", "Compiled-predictor cache hits.")
	pw.Sample("rsmd_predictor_cache_hits_total", "", float64(cache.hits))
	pw.Meta("rsmd_predictor_cache_misses_total", "counter", "Compiled-predictor cache misses (each one compiled a predictor).")
	pw.Sample("rsmd_predictor_cache_misses_total", "", float64(cache.misses))
	pw.Meta("rsmd_predictor_cache_evictions_total", "counter", "Compiled predictors evicted by LRU capacity pressure.")
	pw.Sample("rsmd_predictor_cache_evictions_total", "", float64(cache.evictions))
	pw.Meta("rsmd_predictor_cache_entries", "gauge", "Compiled predictors currently cached.")
	pw.Sample("rsmd_predictor_cache_entries", "", float64(cache.entries))
	pw.Meta("rsmd_predictor_cache_capacity", "gauge", "Compiled-predictor cache capacity (0 = caching disabled).")
	pw.Sample("rsmd_predictor_cache_capacity", "", float64(cache.capacity))

	pw.Meta("rsmd_predict_coalesced_requests", "histogram", "Requests coalesced per executed micro-batch flush.")
	pw.Histogram("rsmd_predict_coalesced_requests", "", m.coalescedCalls.Snapshot())
	pw.Meta("rsmd_predict_coalesced_points", "histogram", "Total points per executed micro-batch flush.")
	pw.Histogram("rsmd_predict_coalesced_points", "", m.coalescedPoints.Snapshot())

	pw.Meta("rsmd_jobs_submitted_total", "counter", "Fit jobs accepted into the queue.")
	pw.Sample("rsmd_jobs_submitted_total", "", float64(jobs.submitted))
	pw.Meta("rsmd_jobs_total", "counter", "Fit jobs reaching a terminal state, by state.")
	pw.Sample("rsmd_jobs_total", obs.Label("state", JobDone), float64(jobs.completed))
	pw.Sample("rsmd_jobs_total", obs.Label("state", JobFailed), float64(jobs.failed))
	pw.Sample("rsmd_jobs_total", obs.Label("state", JobCanceled), float64(jobs.canceled))
	pw.Sample("rsmd_jobs_total", obs.Label("state", JobTimedOut), float64(jobs.timedOut))

	pw.Meta("rsmd_pipelines_submitted_total", "counter", "Pipeline jobs accepted into the queue.")
	pw.Sample("rsmd_pipelines_submitted_total", "", float64(pipelines.submitted))
	pw.Meta("rsmd_pipelines_total", "counter", "Pipeline jobs reaching a terminal state, by state.")
	pw.Sample("rsmd_pipelines_total", obs.Label("state", JobDone), float64(pipelines.completed))
	pw.Sample("rsmd_pipelines_total", obs.Label("state", JobFailed), float64(pipelines.failed))
	pw.Sample("rsmd_pipelines_total", obs.Label("state", JobCanceled), float64(pipelines.canceled))
	pw.Sample("rsmd_pipelines_total", obs.Label("state", JobTimedOut), float64(pipelines.timedOut))
	pw.Meta("rsmd_pipelines_active", "gauge", "Pipeline jobs currently running.")
	pw.Sample("rsmd_pipelines_active", "", float64(activePipelines))
	pw.Meta("rsmd_pipeline_samples_total", "counter", "Circuit simulations executed by pipeline sampling stages.")
	pw.Sample("rsmd_pipeline_samples_total", "", float64(samplesSimulated))
	pw.Meta("rsmd_pipeline_stage_duration_seconds", "histogram", "Pipeline stage wall-clock time, by stage.")
	for _, stage := range pipeline.Stages {
		pw.Histogram("rsmd_pipeline_stage_duration_seconds", obs.Label("stage", stage), m.stageDuration[stage].Snapshot())
	}

	pw.Meta("rsmd_refines_submitted_total", "counter", "Refine jobs accepted into the queue.")
	pw.Sample("rsmd_refines_submitted_total", "", float64(refines.submitted))
	pw.Meta("rsmd_refine_jobs_total", "counter", "Refine jobs reaching a terminal state, by state.")
	pw.Sample("rsmd_refine_jobs_total", obs.Label("state", JobDone), float64(refines.completed))
	pw.Sample("rsmd_refine_jobs_total", obs.Label("state", JobFailed), float64(refines.failed))
	pw.Sample("rsmd_refine_jobs_total", obs.Label("state", JobCanceled), float64(refines.canceled))
	pw.Sample("rsmd_refine_jobs_total", obs.Label("state", JobTimedOut), float64(refines.timedOut))
	pw.Meta("rsmd_refits_total", "counter", "Completed refines by publish-gate outcome: improved published a new version, rejected kept the parent.")
	pw.Sample("rsmd_refits_total", obs.Label("outcome", RefineImproved), float64(refits.improved))
	pw.Sample("rsmd_refits_total", obs.Label("outcome", RefineRejected), float64(refits.rejected))
	pw.Meta("rsmd_refine_fit_seconds", "histogram", "Refine fit wall-clock time, split by warm continuation vs cold refit.")
	pw.Histogram("rsmd_refine_fit_seconds", obs.Label("mode", "warm"), m.refineFitWarm.Snapshot())
	pw.Histogram("rsmd_refine_fit_seconds", obs.Label("mode", "cold"), m.refineFitCold.Snapshot())
	pw.Meta("rsmd_checkpoint_bytes", "gauge", "Serialized size of the latest persisted fit checkpoint, by model.")
	for i, name := range ckModels {
		pw.Sample("rsmd_checkpoint_bytes", obs.Label("model", name), float64(ckBytes[i]))
	}

	pw.Meta("rsmd_journal_enabled", "gauge", "1 when a durable job journal is attached.")
	pw.Sample("rsmd_journal_enabled", "", boolGauge(jnl.enabled))
	pw.Meta("rsmd_journal_degraded", "gauge", "1 while journal appends are failing (async submits shed with 503).")
	pw.Sample("rsmd_journal_degraded", "", boolGauge(jnl.degraded))
	pw.Meta("rsmd_journal_appends_total", "counter", "Job lifecycle records durably appended to the journal.")
	pw.Sample("rsmd_journal_appends_total", "", float64(jc.appends))
	pw.Meta("rsmd_journal_append_errors_total", "counter", "Journal append attempts that failed (disk pressure).")
	pw.Sample("rsmd_journal_append_errors_total", "", float64(jc.appendErrors))
	pw.Meta("rsmd_journal_fsync_seconds", "histogram", "Append+fsync latency of successful journal writes.")
	pw.Histogram("rsmd_journal_fsync_seconds", "", m.journalFsync.Snapshot())
	pw.Meta("rsmd_journal_jobs_replayed_total", "counter", "Jobs reconstructed from the journal at boot.")
	pw.Sample("rsmd_journal_jobs_replayed_total", "", float64(jc.replayed))
	pw.Meta("rsmd_journal_jobs_recovered_total", "counter", "Replayed live jobs re-enqueued to run again.")
	pw.Sample("rsmd_journal_jobs_recovered_total", "", float64(jc.recovered))
	pw.Meta("rsmd_journal_jobs_quarantined_total", "counter", "Replayed jobs retired by the crash-loop guard.")
	pw.Sample("rsmd_journal_jobs_quarantined_total", "", float64(jc.quarantined))

	pw.Meta("rsmd_cluster_enabled", "gauge", "1 when this node is part of a shard ring.")
	pw.Sample("rsmd_cluster_enabled", "", boolGauge(cl != nil))
	pw.Meta("rsmd_cluster_forwards_total", "counter", "Requests proxied to their owning shard, by route kind.")
	for i, kind := range forwardKinds {
		pw.Sample("rsmd_cluster_forwards_total", obs.Label("kind", kind), float64(forwards[i]))
	}
	pw.Meta("rsmd_cluster_forward_errors_total", "counter", "Forwards that failed because the owning shard was down or unreachable.")
	pw.Sample("rsmd_cluster_forward_errors_total", "", float64(px.forwardErrors))
	pw.Meta("rsmd_cluster_redirects_total", "counter", "Job polls redirected to the shard that minted the job ID.")
	pw.Sample("rsmd_cluster_redirects_total", "", float64(px.redirects))
	pw.Meta("rsmd_cluster_replica_reads_total", "counter", "Reads served from a local replica under a satisfied min-version floor.")
	pw.Sample("rsmd_cluster_replica_reads_total", "", float64(px.replicaReads))
	if cl != nil {
		pw.Meta("rsmd_cluster_node_info", "gauge", "Ring identity of this node; always 1.")
		pw.Sample("rsmd_cluster_node_info", obs.Label("node", cl.node), 1)
		pw.Meta("rsmd_cluster_syncs_total", "counter", "Replicator pull rounds completed.")
		pw.Sample("rsmd_cluster_syncs_total", "", float64(cl.stats.Syncs))
		pw.Meta("rsmd_cluster_sync_errors_total", "counter", "Replicator pull rounds that failed against a peer.")
		pw.Sample("rsmd_cluster_sync_errors_total", "", float64(cl.stats.SyncErrors))
		pw.Meta("rsmd_cluster_versions_pulled_total", "counter", "Model versions replicated in from peers.")
		pw.Sample("rsmd_cluster_versions_pulled_total", "", float64(cl.stats.VersionsPulled))
		pw.Meta("rsmd_cluster_checkpoints_pulled_total", "counter", "Fit checkpoints replicated in alongside their model versions.")
		pw.Sample("rsmd_cluster_checkpoints_pulled_total", "", float64(cl.stats.CheckpointsPulled))
		pw.Meta("rsmd_cluster_tombstones_applied_total", "counter", "Peer delete tombstones applied to the local replica set.")
		pw.Sample("rsmd_cluster_tombstones_applied_total", "", float64(cl.stats.TombstonesApplied))
		pw.Meta("rsmd_cluster_peer_up", "gauge", "1 while the peer is dialable (not in failure backoff), by peer.")
		for _, p := range cl.stats.Peers {
			pw.Sample("rsmd_cluster_peer_up", obs.Label("peer", p.Name), boolGauge(p.Healthy))
		}
		pw.Meta("rsmd_cluster_peer_lag_versions", "gauge", "Versions the peer advertises that are still missing locally, by peer.")
		for _, p := range cl.stats.Peers {
			pw.Sample("rsmd_cluster_peer_lag_versions", obs.Label("peer", p.Name), float64(p.LagVersions))
		}
	}

	pw.Meta("rsmd_panics_recovered_total", "counter", "Recovered panics (handlers and fit workers).")
	pw.Sample("rsmd_panics_recovered_total", "", float64(panics))
	pw.Meta("rsmd_requests_shed_total", "counter", "Requests rejected by load shedding.")
	pw.Sample("rsmd_requests_shed_total", "", float64(shed))

	pw.Meta("rsmd_fit_parallel_workers", "gauge", "Effective engine correlation-sweep goroutines per fit job.")
	pw.Sample("rsmd_fit_parallel_workers", "", float64(m.fitParallel))
	pw.Meta("rsmd_fit_duration_seconds", "histogram", "Completed fit job wall-clock time.")
	pw.Histogram("rsmd_fit_duration_seconds", "", m.fitDuration.Snapshot())
	pw.Meta("rsmd_fit_iterations", "histogram", "Final-refit path iterations per completed fit job.")
	pw.Histogram("rsmd_fit_iterations", "", m.fitIterations.Snapshot())

	pw.Meta("rsmd_traces_enabled", "gauge", "1 when the in-memory trace store is active.")
	pw.Sample("rsmd_traces_enabled", "", boolGauge(traces.Enabled))
	pw.Meta("rsmd_traces_stored", "gauge", "Sealed traces currently held in the ring.")
	pw.Sample("rsmd_traces_stored", "", float64(traces.Stored))
	pw.Meta("rsmd_traces_open", "gauge", "Traces currently open (root or holder spans still live).")
	pw.Sample("rsmd_traces_open", "", float64(traces.Open))
	pw.Meta("rsmd_traces_capacity", "gauge", "Trace ring capacity.")
	pw.Sample("rsmd_traces_capacity", "", float64(traces.Capacity))
	pw.Meta("rsmd_traces_kept_total", "counter", "Sealed traces kept by the tail-sampling policy.")
	pw.Sample("rsmd_traces_kept_total", "", float64(traces.Kept))
	pw.Meta("rsmd_traces_sampled_out_total", "counter", "Sealed traces dropped by the sampling coin flip.")
	pw.Sample("rsmd_traces_sampled_out_total", "", float64(traces.SampledOut))
	pw.Meta("rsmd_traces_evicted_total", "counter", "Kept traces later pushed out of the ring by capacity pressure.")
	pw.Sample("rsmd_traces_evicted_total", "", float64(traces.Evicted))

	pw.Meta("rsmd_job_queue_depth", "gauge", "Fit jobs currently pending in the queue.")
	pw.Sample("rsmd_job_queue_depth", "", float64(queueDepth))
	pw.Meta("rsmd_job_queue_wait_seconds", "histogram", "Time jobs sat queued before a worker picked them up.")
	pw.Histogram("rsmd_job_queue_wait_seconds", "", m.queueWait.Snapshot())

	rt := obs.ReadRuntimeStats()
	pw.Meta("rsmd_goroutines", "gauge", "Live goroutines.")
	pw.Sample("rsmd_goroutines", "", float64(rt.Goroutines))
	pw.Meta("rsmd_heap_alloc_bytes", "gauge", "Live heap bytes.")
	pw.Sample("rsmd_heap_alloc_bytes", "", float64(rt.HeapAllocBytes))
	pw.Meta("rsmd_heap_sys_bytes", "gauge", "Heap bytes obtained from the OS.")
	pw.Sample("rsmd_heap_sys_bytes", "", float64(rt.HeapSysBytes))
	pw.Meta("rsmd_gc_pause_seconds_total", "counter", "Cumulative GC stop-the-world pause time.")
	pw.Sample("rsmd_gc_pause_seconds_total", "", rt.GCPauseTotalSeconds)
	pw.Meta("rsmd_gc_cycles_total", "counter", "Completed GC cycles.")
	pw.Sample("rsmd_gc_cycles_total", "", float64(rt.GCCycles))

	return pw.Flush()
}

// boolGauge renders a boolean as a 0/1 Prometheus gauge value.
func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// statusRecorder captures the response status code for instrumentation
// while passing the optional http.Flusher capability through, so streaming
// handlers are not silently broken by the middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer when it supports flushing; a
// no-op otherwise. Embedding alone would swallow the interface entirely.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController, which
// discovers capabilities (flush, deadlines, hijack) through it.
func (r *statusRecorder) Unwrap() http.ResponseWriter {
	return r.ResponseWriter
}
