package server

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// pipelineBody builds a POST /v1/pipelines body from the committed example
// deck and spec.
func pipelineBody(t *testing.T, name, deck, specFile string) string {
	t.Helper()
	netlist, err := os.ReadFile("../../examples/netlists/" + deck)
	if err != nil {
		t.Fatal(err)
	}
	specJSON, err := os.ReadFile("../../examples/netlists/" + specFile)
	if err != nil {
		t.Fatal(err)
	}
	var spec pipeline.Spec
	if err := json.Unmarshal(specJSON, &spec); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(PipelineRequest{Name: name, Netlist: string(netlist), Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// submitPipeline posts a pipeline job and returns its ID.
func submitPipeline(t *testing.T, baseURL, body string) string {
	t.Helper()
	resp := post(t, baseURL+"/v1/pipelines", body)
	if resp.StatusCode != http.StatusAccepted {
		defer resp.Body.Close()
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit pipeline: HTTP %d: %s", resp.StatusCode, msg)
	}
	return decode[PipelineResponse](t, resp).JobID
}

// getPipelineStatus polls GET /v1/pipelines/{id}.
func getPipelineStatus(t *testing.T, baseURL, id string) *JobStatus {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/pipelines/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pipeline %s: HTTP %d", id, resp.StatusCode)
	}
	st := decode[JobStatus](t, resp)
	return &st
}

// cancelPipeline drives DELETE /v1/pipelines/{id} and returns the response.
func cancelPipeline(t *testing.T, baseURL, id string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, baseURL+"/v1/pipelines/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestPipelineEndToEnd is the acceptance loop: the committed rc_lowpass
// deck plus variation spec goes in, a published versioned model comes out
// and serves predictions, with per-stage cost accounting in the job
// timeline and stage histograms in both /metrics representations.
func TestPipelineEndToEnd(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	id := submitPipeline(t, hs.URL, pipelineBody(t, "rc-gain", "rc_lowpass.cir", "rc_lowpass_pipeline.json"))

	st := waitTerminal(t, hs.URL, id, 2*time.Minute)
	if st.State != JobDone {
		t.Fatalf("pipeline state %s (error %q)", st.State, st.Error)
	}
	if st.Kind != JobKindPipeline {
		t.Errorf("kind = %q", st.Kind)
	}
	res := st.Pipeline
	if res == nil {
		t.Fatal("done pipeline has no result")
	}
	if res.Model.Name != "rc-gain" || res.Model.Version != 1 {
		t.Errorf("model = %s@v%d, want rc-gain@v1", res.Model.Name, res.Model.Version)
	}
	if res.Samples != 128 || res.Dim != 4 || len(res.Trials) != 2 {
		t.Errorf("samples=%d dim=%d trials=%d", res.Samples, res.Dim, len(res.Trials))
	}
	if res.SimSeconds <= 0 {
		t.Errorf("SimSeconds = %g, want > 0", res.SimSeconds)
	}
	if res.Model.Provenance.Source != "pipeline" || res.Model.Provenance.Pipeline == nil {
		t.Errorf("provenance lacks pipeline record: %+v", res.Model.Provenance)
	}

	// Per-stage cost accounting in the job timeline.
	if len(st.Stages) != len(pipeline.Stages) {
		t.Fatalf("stage timeline %v, want %v", st.Stages, pipeline.Stages)
	}
	for i, info := range st.Stages {
		if info.Stage != pipeline.Stages[i] {
			t.Errorf("stage[%d] = %s, want %s", i, info.Stage, pipeline.Stages[i])
		}
		if info.Error != "" {
			t.Errorf("stage %s error %q", info.Stage, info.Error)
		}
	}
	if sample := st.Stages[2]; sample.SimSeconds <= 0 || sample.Samples != 128 {
		t.Errorf("sample stage accounting: %+v", sample)
	}
	if fit := st.Stages[3]; fit.FitSeconds <= 0 {
		t.Errorf("fit stage accounting: %+v", fit)
	}

	// The published model serves predictions; at the origin it reproduces
	// the nominal −3.01 dB corner gain.
	resp := post(t, hs.URL+"/v1/models/rc-gain/predict", `{"points":[[0,0,0,0]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: HTTP %d", resp.StatusCode)
	}
	pr := decode[PredictResponse](t, resp)
	if len(pr.Values) != 1 || math.Abs(pr.Values[0]-(-3.0103)) > 0.1 {
		t.Errorf("predict at origin = %v, want ≈ -3.01", pr.Values)
	}

	// Stage histograms and counters in the JSON metrics tree.
	if n := metricInt(t, hs.URL, "pipelines", "completed"); n != 1 {
		t.Errorf("pipelines.completed = %d", n)
	}
	if n := metricInt(t, hs.URL, "pipelines", "samples_simulated"); n != 128 {
		t.Errorf("pipelines.samples_simulated = %d", n)
	}
	if n := metricInt(t, hs.URL, "pipelines", "stage_duration_seconds", "sample", "count"); n != 1 {
		t.Errorf("sample stage histogram count = %d", n)
	}

	// And in the Prometheus exposition.
	promResp, err := http.Get(hs.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer promResp.Body.Close()
	prom, _ := io.ReadAll(promResp.Body)
	for _, want := range []string{
		`rsmd_pipelines_total{state="done"} 1`,
		`rsmd_pipelines_active 0`,
		`rsmd_pipeline_samples_total 128`,
		`rsmd_pipeline_stage_duration_seconds_count{stage="sample"} 1`,
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

// TestPipelineSubmitValidation exercises the synchronous 400 paths.
func TestPipelineSubmitValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	good := pipelineBody(t, "ok", "rc_lowpass.cir", "rc_lowpass_pipeline.json")
	cases := map[string]string{
		"bad name":     strings.Replace(good, `"name":"ok"`, `"name":"no/slash"`, 1),
		"no netlist":   strings.Replace(good, `"netlist":"`, `"netlist":"" ,"x_netlist":"`, 1),
		"bad solver":   strings.Replace(good, `"omp"`, `"sgd"`, 1),
		"bad kind":     strings.Replace(good, `"rwire"`, `"gamma"`, 1),
		"unknown json": strings.Replace(good, `"name"`, `"nom"`, 1),
	}
	for name, body := range cases {
		resp := post(t, hs.URL+"/v1/pipelines", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// Netlist-dependent failures surface asynchronously as a failed job.
	bad := strings.Replace(good, `"device":"R1"`, `"device":"R9"`, 1)
	id := submitPipeline(t, hs.URL, bad)
	st := waitTerminal(t, hs.URL, id, time.Minute)
	if st.State != JobFailed || !strings.Contains(st.Error, "R9") {
		t.Errorf("state=%s error=%q, want failed naming R9", st.State, st.Error)
	}
	// A fit-job ID is not a pipeline resource.
	resp, err := http.Get(hs.URL + "/v1/pipelines/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown pipeline id: HTTP %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}
