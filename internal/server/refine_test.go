package server

// Incremental-refit suite: POST /v1/models/{name}/refine continues a fit
// from its persisted checkpoint, appends new samples, and publishes a new
// version only when cross-validation error strictly improves. The crash
// test at the bottom runs with the TestCrash* suite (make crash-smoke).

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/rng"
)

// refineDataset draws n samples of the ground truth f = 1 + 2·y0 − 3·y2
// over 3 variables with additive Gaussian noise of the given scale. The
// stream position of src makes successive calls independent draws.
func refineDataset(src *rng.Source, n int, noise float64) ([][]float64, []float64) {
	points := make([][]float64, n)
	values := make([]float64, n)
	for k := range points {
		y := src.NormVec(nil, 3)
		points[k] = y
		values[k] = 1 + 2*y[0] - 3*y[2] + noise*src.NormVec(nil, 1)[0]
	}
	return points, values
}

// submitFitWait submits a fit over the given samples and waits for done.
func submitFitWait(t *testing.T, baseURL, name string, points [][]float64, values []float64) *JobStatus {
	t.Helper()
	req, _ := json.Marshal(FitRequest{Name: name, Points: points, Values: values, MaxLambda: 5})
	resp := post(t, baseURL+"/v1/fit", string(req))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fit submit: HTTP %d", resp.StatusCode)
	}
	id := decode[FitResponse](t, resp).JobID
	st := waitTerminal(t, baseURL, id, 30*time.Second)
	if st.State != JobDone {
		t.Fatalf("parent fit state %s (%q), want done", st.State, st.Error)
	}
	return st
}

// submitRefineReq posts a refine request for the named model and returns
// the accepted job ID.
func submitRefineReq(t *testing.T, baseURL, name string, points [][]float64, values []float64) string {
	t.Helper()
	req, _ := json.Marshal(RefineRequest{Points: points, Values: values})
	resp := post(t, baseURL+"/v1/models/"+name+"/refine", string(req))
	if resp.StatusCode != http.StatusAccepted {
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("refine submit: HTTP %d (%s)", resp.StatusCode, e.Error)
	}
	return decode[RefineResponse](t, resp).JobID
}

// TestRefineLifecycle drives the full streaming-refit story over HTTP: a
// noisy parent fit, a refine with cleaner samples that must publish v2 with
// refine provenance and a fresh checkpoint, then a refine with garbage
// samples that must be rejected by the publish gate and leave v2 serving.
func TestRefineLifecycle(t *testing.T) {
	faultinject.Reset()
	_, hs := newTestServer(t, Config{FitWorkers: 1})

	src := rng.New(11)
	pts, vals := refineDataset(src, 40, 0.5)
	parent := submitFitWait(t, hs.URL, "stream", pts, vals)
	if parent.Result.Model.Version != 1 {
		t.Fatalf("parent version %d, want 1", parent.Result.Model.Version)
	}

	// Refine with three times as many, much cleaner samples: the combined
	// CV error drops well below the parent's, so the gate must publish.
	newPts, newVals := refineDataset(src, 120, 0.01)
	id := submitRefineReq(t, hs.URL, "stream", newPts, newVals)
	st := waitTerminal(t, hs.URL, id, 30*time.Second)
	if st.State != JobDone {
		t.Fatalf("refine state %s (%q), want done", st.State, st.Error)
	}
	if st.Kind != JobKindRefine {
		t.Fatalf("job kind %q, want refine", st.Kind)
	}
	r := st.Refine
	if r == nil {
		t.Fatal("done refine job carries no refine result")
	}
	if r.Outcome != RefineImproved {
		t.Fatalf("outcome %q (cv %g vs parent %g), want improved", r.Outcome, r.CVError, r.ParentCVError)
	}
	if r.Model.Version != 2 || r.ParentVersion != 1 {
		t.Fatalf("published v%d from parent v%d, want v2 from v1", r.Model.Version, r.ParentVersion)
	}
	if !(r.CVError < r.ParentCVError) {
		t.Fatalf("published without improvement: cv %g, parent %g", r.CVError, r.ParentCVError)
	}
	if !r.Warm {
		t.Fatal("OMP parent refit cold, want warm continuation")
	}
	if r.AppendedSamples != 120 || r.Samples != 160 {
		t.Fatalf("samples %d appended %d, want 160/120", r.Samples, r.AppendedSamples)
	}
	if r.CheckpointBytes <= 0 {
		t.Fatalf("checkpoint_bytes = %d, want > 0 (refined version must stay refinable)", r.CheckpointBytes)
	}
	prov := r.Model.Provenance
	if prov.Refine == nil || prov.Refine.ParentVersion != 1 || !prov.Refine.Warm ||
		prov.Refine.AppendedSamples != 120 {
		t.Fatalf("refine provenance %+v, want parent v1, warm, 120 appended", prov.Refine)
	}
	// The refined model serves: close to the ground truth at a fresh point.
	resp := post(t, hs.URL+"/v1/models/stream/predict", `{"points":[[1,9,2]]}`)
	pr := decode[PredictResponse](t, resp)
	if d := pr.Values[0] - (1 + 2 - 6); d > 0.2 || d < -0.2 {
		t.Fatalf("refined prediction %g, want ≈ -3", pr.Values[0])
	}

	// Garbage samples: the combined refit cannot beat v2, so the gate must
	// reject, keep v2 serving, and still report the candidate's error.
	badPts, _ := refineDataset(src, 6, 0)
	badVals := make([]float64, len(badPts))
	for i := range badVals {
		badVals[i] = 1000
	}
	id2 := submitRefineReq(t, hs.URL, "stream", badPts, badVals)
	st2 := waitTerminal(t, hs.URL, id2, 30*time.Second)
	if st2.State != JobDone {
		t.Fatalf("rejected refine state %s (%q), want done", st2.State, st2.Error)
	}
	r2 := st2.Refine
	if r2 == nil || r2.Outcome != RefineRejected {
		t.Fatalf("refine result %+v, want rejected", r2)
	}
	if r2.Model.Version != 2 {
		t.Fatalf("rejected refine reports model v%d, want the surviving v2", r2.Model.Version)
	}
	if !(r2.CVError > r2.ParentCVError) {
		t.Fatalf("garbage refit cv %g not worse than parent %g", r2.CVError, r2.ParentCVError)
	}
	info := getJSON[ModelInfo](t, hs.URL+"/v1/models/stream", http.StatusOK)
	if info.Version != 2 {
		t.Fatalf("served version %d after rejected refine, want 2", info.Version)
	}

	// Both representations of the refine telemetry: JSON counters...
	if n := metricInt(t, hs.URL, "refines", "submitted"); n != 2 {
		t.Fatalf("refines.submitted = %d, want 2", n)
	}
	if n := metricInt(t, hs.URL, "refines", "completed"); n != 2 {
		t.Fatalf("refines.completed = %d, want 2", n)
	}
	if n := metricInt(t, hs.URL, "refines", "outcomes", RefineImproved); n != 1 {
		t.Fatalf("refits improved = %d, want 1", n)
	}
	if n := metricInt(t, hs.URL, "refines", "outcomes", RefineRejected); n != 1 {
		t.Fatalf("refits rejected = %d, want 1", n)
	}
	if n := metricInt(t, hs.URL, "checkpoints", "bytes", "stream"); n <= 0 {
		t.Fatalf("checkpoints.bytes.stream = %d, want > 0", n)
	}
	// ...and the Prometheus exposition, which must validate and carry the
	// new families.
	body := scrapeText(t, hs.URL)
	if err := obs.ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition invalid with refine families: %v", err)
	}
	for _, want := range []string{
		`rsmd_refines_submitted_total 2`,
		`rsmd_refits_total{outcome="improved"} 1`,
		`rsmd_refits_total{outcome="rejected"} 1`,
		`rsmd_refine_fit_seconds_count{mode="warm"} 2`,
		`rsmd_checkpoint_bytes{model="stream"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, grepLines(body, "rsmd_ref"))
		}
	}
}

// TestRefineValidation covers the synchronous rejections: requests that
// must fail at submit time with a useful status, before any job runs.
func TestRefineValidation(t *testing.T) {
	faultinject.Reset()
	_, hs := newTestServer(t, Config{FitWorkers: 1})
	uploadModel(t, hs.URL, "lin", 3)

	src := rng.New(3)
	pts, vals := refineDataset(src, 12, 0.1)
	submitFitWait(t, hs.URL, "fitted", pts, vals)

	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"unknown model", "/v1/models/nope/refine", `{"points":[[1,0,0]],"values":[1]}`, 404},
		{"no samples", "/v1/models/fitted/refine", `{}`, 400},
		{"csv and points", "/v1/models/fitted/refine", `{"csv":"x","points":[[1,0,0]],"values":[1]}`, 400},
		{"bad folds", "/v1/models/fitted/refine", `{"folds":1,"points":[[1,0,0]],"values":[1]}`, 400},
		{"bad max_lambda", "/v1/models/fitted/refine", `{"max_lambda":-1,"points":[[1,0,0]],"values":[1]}`, 400},
		{"bad timeout", "/v1/models/fitted/refine", `{"timeout_seconds":-1,"points":[[1,0,0]],"values":[1]}`, 400},
		// Uploaded pre-fitted models carry no checkpoint to continue from.
		{"uploaded model", "/v1/models/lin/refine", `{"points":[[1,0,0]],"values":[1]}`, 409},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(t, hs.URL+tc.path, tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("HTTP %d, want %d", resp.StatusCode, tc.want)
			}
			if e := decode[ErrorResponse](t, resp); e.Error == "" {
				t.Fatal("error response has empty error message")
			}
		})
	}

	// Dimension mismatch passes submit validation (dataset-dependent) and
	// fails in the worker with a named mismatch.
	id := submitRefineReq(t, hs.URL, "fitted", [][]float64{{1, 2}}, []float64{1})
	st := waitTerminal(t, hs.URL, id, 30*time.Second)
	if st.State != JobFailed || !strings.Contains(st.Error, "dimension") {
		t.Fatalf("dim-mismatch refine state %s (%q), want failed naming the dimension", st.State, st.Error)
	}
}

// TestRefineCSVSamples: new samples can arrive in mcgen CSV form (the
// rsmfit -refine transport); the metric column is pinned by the parent fit.
func TestRefineCSVSamples(t *testing.T) {
	faultinject.Reset()
	_, hs := newTestServer(t, Config{FitWorkers: 1})

	src := rng.New(11)
	pts, vals := refineDataset(src, 40, 0.5)
	submitFitWait(t, hs.URL, "csvref", pts, vals)

	newPts, newVals := refineDataset(src, 120, 0.01)
	var csv strings.Builder
	csv.WriteString("y0,y1,y2,f\n")
	for i, p := range newPts {
		fmt.Fprintf(&csv, "%g,%g,%g,%g\n", p[0], p[1], p[2], newVals[i])
	}
	req, _ := json.Marshal(RefineRequest{CSV: csv.String()})
	resp := post(t, hs.URL+"/v1/models/csvref/refine", string(req))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("CSV refine submit: HTTP %d", resp.StatusCode)
	}
	id := decode[RefineResponse](t, resp).JobID
	st := waitTerminal(t, hs.URL, id, 30*time.Second)
	if st.State != JobDone {
		t.Fatalf("CSV refine state %s (%q), want done", st.State, st.Error)
	}
	if st.Refine == nil || st.Refine.Outcome != RefineImproved || st.Refine.AppendedSamples != 120 {
		t.Fatalf("CSV refine result %+v, want improved with 120 appended", st.Refine)
	}
}

// newDurableServer builds a Server over a disk-backed registry plus the job
// journal, so models, checkpoints and jobs all survive a crash. Restart
// tests own the shutdown ordering of the "crashing" life.
func newDurableServer(t *testing.T, regDir, journalDir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.JournalDir = journalDir
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	reg, err := registry.Open(regDir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, httptest.NewServer(s)
}

// TestCrashRecoveryRefineReplay is the refine durability acceptance test: a
// refine job running when the daemon dies is replayed from the journal on
// the next boot under its original job ID, runs to completion against the
// disk-backed registry, and corrupts neither the parent model envelope nor
// the parent's fit checkpoint.
func TestCrashRecoveryRefineReplay(t *testing.T) {
	faultinject.Reset()
	regDir := t.TempDir()
	jDir := t.TempDir()
	s1, hs1 := newDurableServer(t, regDir, jDir, Config{FitWorkers: 1})

	src := rng.New(11)
	pts, vals := refineDataset(src, 40, 0.5)
	submitFitWait(t, hs1.URL, "crashrefine", pts, vals)

	// Stall the refine worker mid-job and crash the daemon on top of it.
	armFaults(t, "server.refine=delay:60s")
	newPts, newVals := refineDataset(src, 120, 0.01)
	refineID := submitRefineReq(t, hs1.URL, "crashrefine", newPts, newVals)
	waitRunning(t, hs1.URL, refineID)
	crashServer(t, s1, hs1)

	// Next boot: same journal, same registry store, stall disarmed. The
	// replayed refine must finish under its original ID as attempt 1.
	faultinject.Reset()
	s2, hs2 := newDurableServer(t, regDir, jDir, Config{FitWorkers: 1})
	t.Cleanup(func() { hs2.Close(); s2.Close() })

	st := waitTerminal(t, hs2.URL, refineID, 30*time.Second)
	if st.State != JobDone {
		t.Fatalf("replayed refine %s state %s (%q), want done", refineID, st.State, st.Error)
	}
	if st.RecoveryAttempt != 1 {
		t.Fatalf("replayed refine recovery_attempt = %d, want 1", st.RecoveryAttempt)
	}
	if st.Refine == nil || st.Refine.Outcome != RefineImproved {
		t.Fatalf("replayed refine result %+v, want improved", st.Refine)
	}
	if st.Refine.Model.Version != 2 || st.Refine.ParentVersion != 1 {
		t.Fatalf("replayed refine published v%d from v%d, want v2 from v1",
			st.Refine.Model.Version, st.Refine.ParentVersion)
	}
	if n := metricInt(t, hs2.URL, "journal", "jobs_recovered"); n != 1 {
		t.Fatalf("journal.jobs_recovered = %d, want 1 (only the refine was live)", n)
	}

	// The parent artifacts survived the crash + replay untouched: the v1
	// envelope on disk still parses and the v1 checkpoint still validates.
	raw, err := os.ReadFile(filepath.Join(regDir, "crashrefine@v1.json"))
	if err != nil {
		t.Fatalf("parent envelope unreadable after crash: %v", err)
	}
	if _, err := core.ReadEnvelope(strings.NewReader(string(raw))); err != nil {
		t.Fatalf("parent envelope corrupt after crash: %v", err)
	}
	ck, ok := s2.registry.Checkpoint("crashrefine", 1)
	if !ok {
		t.Fatal("parent checkpoint missing after crash + replay")
	}
	if err := ck.Validate(); err != nil {
		t.Fatalf("parent checkpoint corrupt after crash + replay: %v", err)
	}
	// And the refined version is itself refinable on the rebooted daemon.
	if _, ok := s2.registry.Checkpoint("crashrefine", 2); !ok {
		t.Fatal("refined version published without a checkpoint")
	}
	assertHealthy(t, hs2.URL)
}

// TestRefineIdempotentResubmit: retrying a refine submit with the same
// Idempotency-Key returns the original job, and reusing a fit job's key on
// the refine route is a conflict.
func TestRefineIdempotentResubmit(t *testing.T) {
	faultinject.Reset()
	_, hs := newTestServer(t, Config{FitWorkers: 1})

	src := rng.New(7)
	pts, vals := refineDataset(src, 12, 0.1)
	submitFitWait(t, hs.URL, "idemref", pts, vals)

	newPts, newVals := refineDataset(src, 12, 0.1)
	body, _ := json.Marshal(RefineRequest{Points: newPts, Values: newVals})
	submit := func(key string) (*http.Response, RefineResponse) {
		req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/models/idemref/refine", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(idemKeyHeader, key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("idempotent refine submit: HTTP %d", resp.StatusCode)
		}
		return resp, decode[RefineResponse](t, resp)
	}

	const key = "refine-retry-0001"
	_, first := submit(key)
	waitTerminal(t, hs.URL, first.JobID, 30*time.Second)
	resp, dup := submit(key)
	if dup.JobID != first.JobID {
		t.Fatalf("duplicate refine got job %s, want %s", dup.JobID, first.JobID)
	}
	if resp.Header.Get(idemReplayedHeader) != "true" {
		t.Fatal("duplicate refine submit missing Idempotency-Replayed header")
	}
	if n := metricInt(t, hs.URL, "refines", "submitted"); n != 1 {
		t.Fatalf("refines.submitted = %d after dedup, want 1", n)
	}

	// A key pinned to a fit job must not silently replay as a refine.
	freq, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/fit",
		strings.NewReader(`{"name":"idemref2","folds":2,"max_lambda":3,
			"points":[[0.1,0.2],[0.3,-0.4],[-0.5,0.6],[0.7,0.8]],"values":[1,2,3,4]}`))
	if err != nil {
		t.Fatal(err)
	}
	freq.Header.Set(idemKeyHeader, "cross-kind-0001")
	fresp, err := http.DefaultClient.Do(freq)
	if err != nil {
		t.Fatal(err)
	}
	fitID := decode[FitResponse](t, fresp).JobID
	waitTerminal(t, hs.URL, fitID, 30*time.Second)

	rreq, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/models/idemref/refine", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	rreq.Header.Set(idemKeyHeader, "cross-kind-0001")
	rresp, err := http.DefaultClient.Do(rreq)
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Fatalf("cross-kind key reuse: HTTP %d, want 409", rresp.StatusCode)
	}
}
