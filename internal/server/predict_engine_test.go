package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/obs/trace"
	"repro/internal/registry"
)

// constEnvelope builds a constant model f(y) = c over dim variables: the
// support is the dictionary's constant term, so every predicted value
// equals c regardless of the input point. The version-consistency tests use
// c to encode the version a response must have come from.
func constEnvelope(t *testing.T, dim int, c float64) *core.Envelope {
	t.Helper()
	b := basis.Linear(dim)
	return &core.Envelope{
		Model: &core.Model{M: b.Size(), Support: []int{0}, Coef: []float64{c}},
		Basis: b.Desc,
	}
}

// newEngineServer builds a server over a fresh in-memory registry with the
// prediction-engine knobs under test.
func newEngineServer(t *testing.T, cfg Config) (*registry.Registry, *Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	reg := registry.New()
	s, err := New(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return reg, s, hs
}

// TestPredictVersionConsistencyUnderPut hammers the predict endpoint while
// new versions of the same model are concurrently published. Every response
// must be self-consistent: the values must be the ones of exactly the
// version the response names — a cached predictor served under a newer
// version label (or vice versa) would show up as a mismatch. The suite runs
// under -race via make race.
func TestPredictVersionConsistencyUnderPut(t *testing.T) {
	reg, _, hs := newEngineServer(t, Config{
		PredictCacheSize: 4,
		BatchWindow:      500 * time.Microsecond,
		BatchMaxPoints:   64,
	})
	if _, err := reg.Put("hot", constEnvelope(t, 2, 1)); err != nil {
		t.Fatal(err)
	}

	const versions = 30
	stop := make(chan struct{})
	var putWG sync.WaitGroup
	putWG.Add(1)
	go func() {
		defer putWG.Done()
		defer close(stop)
		// Version v carries coefficient float64(v): Put assigns versions
		// sequentially, so the v-th publication is version v.
		for v := 2; v <= versions; v++ {
			if _, err := reg.Put("hot", constEnvelope(t, 2, float64(v))); err != nil {
				t.Errorf("put v%d: %v", v, err)
				return
			}
			time.Sleep(300 * time.Microsecond)
		}
	}()

	var reqWG sync.WaitGroup
	for g := 0; g < 8; g++ {
		reqWG.Add(1)
		go func() {
			defer reqWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(hs.URL+"/v1/models/hot/predict", "application/json",
					strings.NewReader(`{"points":[[0.25,-1.5],[3,0.125]]}`))
				if err != nil {
					t.Errorf("predict: %v", err)
					return
				}
				var pr PredictResponse
				err = json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("predict: HTTP %d, %v", resp.StatusCode, err)
					return
				}
				if pr.Version < 1 || pr.Version > versions {
					t.Errorf("impossible version %d", pr.Version)
					return
				}
				for k, v := range pr.Values {
					if v != float64(pr.Version) {
						t.Errorf("stale mix: response names version %d but value[%d] = %g", pr.Version, k, v)
						return
					}
				}
			}
		}()
	}
	putWG.Wait()
	reqWG.Wait()
}

// TestMicroBatchCoalescesAndDemuxes drives concurrent small requests into
// one window and checks each caller gets exactly its own rows back, with
// the coalescing visible in the response and in /metrics.
func TestMicroBatchCoalescesAndDemuxes(t *testing.T) {
	reg, s, hs := newEngineServer(t, Config{
		BatchWindow:    40 * time.Millisecond,
		BatchMaxPoints: 4096,
	})
	// f(y) = 2·y0 − 3·y1 distinguishes rows, so demux mistakes are visible.
	b := basis.Linear(2)
	env := &core.Envelope{
		Model: &core.Model{M: b.Size(), Support: []int{1, 2}, Coef: []float64{2, -3}},
		Basis: b.Desc,
	}
	if _, err := reg.Put("lin", env); err != nil {
		t.Fatal(err)
	}

	const callers = 5
	type result struct {
		pr  PredictResponse
		err error
	}
	results := make([]result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"points":[[%d,1],[%d,-2]]}`, i, i)
			resp, err := http.Post(hs.URL+"/v1/models/lin/predict", "application/json", strings.NewReader(body))
			if err != nil {
				results[i].err = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				results[i].err = fmt.Errorf("HTTP %d", resp.StatusCode)
				return
			}
			results[i].err = json.NewDecoder(resp.Body).Decode(&results[i].pr)
		}(i)
	}
	wg.Wait()

	coalesced := 0
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("caller %d: %v", i, r.err)
		}
		want := []float64{2*float64(i) - 3, 2*float64(i) + 6}
		if len(r.pr.Values) != 2 || r.pr.Values[0] != want[0] || r.pr.Values[1] != want[1] {
			t.Fatalf("caller %d: values %v, want %v (demux mixed rows between callers)", i, r.pr.Values, want)
		}
		if r.pr.Coalesced > coalesced {
			coalesced = r.pr.Coalesced
		}
	}
	// All callers launched inside one 40ms window; at least some of them
	// must have shared a flush.
	if coalesced < 2 {
		t.Fatalf("no coalescing observed (max coalesced = %d)", coalesced)
	}
	snap := s.metrics.Snapshot(reg.Len(), 0, s.predCache.stats(), journalStatus{}, trace.Stats{}, nil)
	hist := snap["predict_coalescing"].(map[string]any)["requests_per_batch"].(map[string]any)
	if hist["count"].(int64) < 1 {
		t.Fatalf("coalescing histogram recorded no flushes: %v", hist)
	}
}

// TestMicroBatchDeadlinePerCaller is the per-row-group deadline contract: a
// coalesced batch holding one short-deadline caller times out only that
// caller; the others in the same batch still get 200s with correct values.
func TestMicroBatchDeadlinePerCaller(t *testing.T) {
	reg, s, _ := newEngineServer(t, Config{
		BatchWindow:    80 * time.Millisecond,
		BatchMaxPoints: 4096,
		RequestTimeout: -1, // per-request deadlines come from the test contexts
	})
	if _, err := reg.Put("hot", constEnvelope(t, 1, 7)); err != nil {
		t.Fatal(err)
	}

	newReq := func(ctx context.Context) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/v1/models/hot/predict",
			strings.NewReader(`{"points":[[0.5]]}`))
		return r.WithContext(ctx)
	}
	shortCtx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()

	recs := make([]*httptest.ResponseRecorder, 3)
	ctxs := []context.Context{shortCtx, context.Background(), context.Background()}
	var wg sync.WaitGroup
	for i := range recs {
		recs[i] = httptest.NewRecorder()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.ServeHTTP(recs[i], newReq(ctxs[i]))
		}(i)
	}
	wg.Wait()

	if recs[0].Code != http.StatusGatewayTimeout {
		t.Fatalf("short-deadline caller: HTTP %d, want 504 (body: %s)", recs[0].Code, recs[0].Body)
	}
	for i := 1; i < 3; i++ {
		if recs[i].Code != http.StatusOK {
			t.Fatalf("caller %d: HTTP %d, want 200 — one caller's deadline must not fail the batch (body: %s)",
				i, recs[i].Code, recs[i].Body)
		}
		var pr PredictResponse
		if err := json.NewDecoder(recs[i].Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		if len(pr.Values) != 1 || pr.Values[0] != 7 {
			t.Fatalf("caller %d: values %v, want [7]", i, pr.Values)
		}
	}
}

// TestPredictorCacheHitsMissesEvictions exercises the LRU directly through
// the serving path and checks the counters end to end, including the
// Prometheus exposition.
func TestPredictorCacheHitsMissesEvictions(t *testing.T) {
	reg, s, hs := newEngineServer(t, Config{PredictCacheSize: 2})
	for _, name := range []string{"a", "b", "c"} {
		if _, err := reg.Put(name, constEnvelope(t, 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	predict := func(name string) {
		t.Helper()
		resp, err := http.Post(hs.URL+"/v1/models/"+name+"/predict", "application/json",
			strings.NewReader(`{"points":[[0]]}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %s: HTTP %d", name, resp.StatusCode)
		}
	}
	predict("a") // miss, cache {a}
	predict("a") // hit
	predict("b") // miss, cache {a b}
	predict("c") // miss, evicts a, cache {b c}
	predict("a") // miss again (was evicted), evicts b
	st := s.predCache.stats()
	if st.hits != 1 || st.misses != 4 || st.evictions != 2 || st.entries != 2 {
		t.Fatalf("cache stats = %+v, want hits=1 misses=4 evictions=2 entries=2", st)
	}

	// Publishing a new version invalidates the name's cached predictors.
	if _, err := reg.Put("a", constEnvelope(t, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if st := s.predCache.stats(); st.entries != 1 {
		t.Fatalf("entries after invalidation = %d, want 1", st.entries)
	}

	// Counters must be visible in both exposition formats.
	resp, err := http.Get(hs.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"rsmd_predictor_cache_hits_total 1",
		"rsmd_predictor_cache_misses_total 4",
		"rsmd_predictor_cache_evictions_total 2",
		"rsmd_predict_coalesced_requests_bucket",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("Prometheus exposition missing %q", want)
		}
	}
	var snap map[string]any
	resp, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	pc, ok := snap["predictor_cache"].(map[string]any)
	if !ok {
		t.Fatalf("JSON metrics missing predictor_cache: %v", snap)
	}
	if pc["hits"].(float64) != 1 || pc["misses"].(float64) != 4 || pc["evictions"].(float64) != 2 {
		t.Fatalf("JSON cache counters = %v, want hits=1 misses=4 evictions=2", pc)
	}
}

// failingWriter drops the response body on the floor, simulating a client
// that vanished between the handler's evaluation and the write.
type failingWriter struct {
	http.ResponseWriter
}

func (f *failingWriter) Write([]byte) (int, error) { return 0, errors.New("client gone") }

// TestPredictionCounterOnlyAfterWrite is the regression test for the
// countPredictions ordering fix: a predict whose response body fails to
// write must not inflate the served-point counters, while a successful one
// counts exactly its batch size.
func TestPredictionCounterOnlyAfterWrite(t *testing.T) {
	reg, s, _ := newEngineServer(t, Config{})
	if _, err := reg.Put("hot", constEnvelope(t, 1, 3)); err != nil {
		t.Fatal(err)
	}
	predictions := func() int64 {
		snap := s.metrics.Snapshot(reg.Len(), 0, s.predCache.stats(), journalStatus{}, trace.Stats{}, nil)
		return snap["predictions"].(map[string]int64)["hot"]
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/models/hot/predict",
		strings.NewReader(`{"points":[[0.5],[1.5]]}`))
	s.ServeHTTP(&failingWriter{httptest.NewRecorder()}, req)
	if n := predictions(); n != 0 {
		t.Fatalf("failed write counted %d served points, want 0", n)
	}

	req = httptest.NewRequest(http.MethodPost, "/v1/models/hot/predict",
		strings.NewReader(`{"points":[[0.5],[1.5]]}`))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body)
	}
	if n := predictions(); n != 2 {
		t.Fatalf("successful write counted %d served points, want 2", n)
	}
}

// TestPredictCacheDisabled pins the opt-out: a negative PredictCacheSize
// serves every request through a fresh compilation, with no cache attached.
func TestPredictCacheDisabled(t *testing.T) {
	reg, s, hs := newEngineServer(t, Config{PredictCacheSize: -1})
	if s.predCache != nil {
		t.Fatal("predictor cache built despite being disabled")
	}
	if _, err := reg.Put("hot", constEnvelope(t, 1, 5)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+"/v1/models/hot/predict", "application/json",
		strings.NewReader(`{"points":[[1]]}`))
	if err != nil {
		t.Fatal(err)
	}
	pr := decode[PredictResponse](t, resp)
	if len(pr.Values) != 1 || pr.Values[0] != 5 {
		t.Fatalf("values %v, want [5]", pr.Values)
	}
	var buf bytes.Buffer
	if err := s.metrics.writePrometheus(&buf, reg.Len(), 0, s.predCache.stats(), journalStatus{}, trace.Stats{}, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rsmd_predictor_cache_capacity 0") {
		t.Error("disabled cache should expose capacity 0")
	}
}
