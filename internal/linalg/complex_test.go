package linalg

import (
	"errors"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestSolveComplexKnownSystem(t *testing.T) {
	// (1+i)x = 2i → x = 2i/(1+i) = 1+i.
	a := NewCMatrix(1, 1)
	a.Set(0, 0, complex(1, 1))
	x, err := SolveComplex(a, []complex128{complex(0, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-complex(1, 1)) > 1e-14 {
		t.Errorf("x = %v, want 1+i", x[0])
	}
}

func TestSolveComplexRandomRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(60))
	const n = 12
	a := NewCMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, complex(r.NormFloat64(), r.NormFloat64()))
		}
	}
	xTrue := make([]complex128, n)
	for i := range xTrue {
		xTrue[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	// b = A·x.
	b := make([]complex128, n)
	for i := 0; i < n; i++ {
		s := complex(0, 0)
		for j := 0; j < n; j++ {
			s += a.At(i, j) * xTrue[j]
		}
		b[i] = s
	}
	x, err := SolveComplex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-xTrue[i]) > 1e-9*(1+cmplx.Abs(xTrue[i])) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
	// Inputs untouched.
	if b[0] == 0 {
		t.Error("rhs looks modified")
	}
}

func TestSolveComplexNeedsPivoting(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 1, 2) // zero diagonal pivot at (0,0)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	x, err := SolveComplex(a, []complex128{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-1) > 1e-14 || cmplx.Abs(x[1]-2) > 1e-14 {
		t.Errorf("x = %v, want [1 2]", x)
	}
}

func TestSolveComplexSingular(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveComplex(a, []complex128{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("got %v, want ErrSingular", err)
	}
}

func TestSolveComplexValidation(t *testing.T) {
	if _, err := SolveComplex(NewCMatrix(2, 3), make([]complex128, 2)); err == nil {
		t.Error("non-square must error")
	}
	if _, err := SolveComplex(NewCMatrix(2, 2), make([]complex128, 3)); err == nil {
		t.Error("rhs length mismatch must error")
	}
}

func TestCMatrixAccessors(t *testing.T) {
	m := NewCMatrix(2, 2)
	m.Add(0, 1, complex(1, 2))
	m.Add(0, 1, complex(1, -1))
	if m.At(0, 1) != complex(2, 1) {
		t.Errorf("Add accumulate wrong: %v", m.At(0, 1))
	}
	m.Reset()
	if m.At(0, 1) != 0 {
		t.Error("Reset did not zero")
	}
}

func TestCMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCMatrix(-1, 1)
}

func TestCholeskySolveLower(t *testing.T) {
	// L from a known SPD matrix; L·y = b must invert forward substitution.
	g := NewMatrixFrom([][]float64{{2, 0}, {1, 1}, {0, 2}})
	chol, err := CholeskyFactor(g.Gram())
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{3, -1}
	y, err := chol.SolveLower(b)
	if err != nil {
		t.Fatal(err)
	}
	// Verify L·y = b.
	l := chol.L()
	back := l.MulVec(nil, y)
	for i := range b {
		if !almostEq(back[i], b[i], 1e-12) {
			t.Errorf("L·y[%d] = %g, want %g", i, back[i], b[i])
		}
	}
	if _, err := chol.SolveLower([]float64{1}); err == nil {
		t.Error("length mismatch must error")
	}
}
