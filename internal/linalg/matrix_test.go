package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-10

func almostEq(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewMatrixFrom(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("got %dx%d, want 3x2", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %g, want 6", m.At(2, 1))
	}
}

func TestNewMatrixFromRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	NewMatrixFrom([][]float64{{1, 2}, {3}})
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative dimension")
		}
	}()
	NewMatrix(-1, 2)
}

func TestMatrixSetAtRoundTrip(t *testing.T) {
	m := NewMatrix(4, 3)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Errorf("At(1,2) = %g, want 7.5", m.At(1, 2))
	}
	if m.At(2, 1) != 0 {
		t.Errorf("At(2,1) = %g, want 0", m.At(2, 1))
	}
}

func TestColSetCol(t *testing.T) {
	m := NewMatrix(3, 2)
	m.SetCol(1, []float64{1, 2, 3})
	got := m.Col(nil, 1)
	for i, want := range []float64{1, 2, 3} {
		if got[i] != want {
			t.Errorf("Col[%d] = %g, want %g", i, got[i], want)
		}
	}
	if m.At(0, 0) != 0 {
		t.Error("SetCol touched a different column")
	}
}

func TestTranspose(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("T dims %dx%d, want 3x2", mt.Rows, mt.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVecAgainstHandComputed(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	got := m.MulVec(nil, []float64{1, -1})
	want := []float64{-1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MulVec[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestMulTransVecMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMatrix(rng, 7, 4)
	x := make([]float64, 7)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := m.MulTransVec(nil, x)
	want := m.T().MulVec(nil, x)
	for i := range want {
		if !almostEq(got[i], want[i], tol) {
			t.Errorf("MulTransVec[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestMulMatchesManual(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFrom([][]float64{{0, 1}, {1, 0}})
	c := a.Mul(b)
	want := NewMatrixFrom([][]float64{{2, 1}, {4, 3}})
	for i := range want.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("Mul = %v, want %v", c.Data, want.Data)
		}
	}
}

func TestGramMatchesTTimesM(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randMatrix(rng, 9, 5)
	g := m.Gram()
	want := m.T().Mul(m)
	for i := range want.Data {
		if !almostEq(g.Data[i], want.Data[i], tol) {
			t.Fatalf("Gram mismatch at flat index %d: %g vs %g", i, g.Data[i], want.Data[i])
		}
	}
}

func TestGramSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(rng, 3+rng.Intn(10), 2+rng.Intn(6))
		g := m.Gram()
		for i := 0; i < g.Rows; i++ {
			for j := 0; j < i; j++ {
				if !almostEq(g.At(i, j), g.At(j, i), tol) {
					return false
				}
			}
			if g.At(i, i) < -tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEye(t *testing.T) {
	e := Eye(3)
	v := []float64{3, -1, 2}
	got := e.MulVec(nil, v)
	for i := range v {
		if got[i] != v[i] {
			t.Errorf("Eye·v[%d] = %g, want %g", i, got[i], v[i])
		}
	}
}

func TestMaxAbs(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, -7}, {3, 4}})
	if m.MaxAbs() != 7 {
		t.Errorf("MaxAbs = %g, want 7", m.MaxAbs())
	}
	if NewMatrix(0, 0).MaxAbs() != 0 {
		t.Error("MaxAbs of empty matrix should be 0")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with the original")
	}
}
