package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization meets a
// non-positive pivot.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky is a growable lower-triangular Cholesky factor L of a symmetric
// positive definite matrix A = L·Lᵀ. It supports appending one row/column to
// A at a time, which is how the OMP and LAR solvers grow their active-set
// Gram matrices by one basis per iteration without refactorizing.
type Cholesky struct {
	n int
	l []float64 // packed lower triangle, row by row: row i has i+1 entries
}

// NewCholesky returns an empty (0×0) growable factor.
func NewCholesky() *Cholesky { return &Cholesky{} }

// CholeskyFactor factors the symmetric positive definite matrix a.
// Only the lower triangle of a is read.
func CholeskyFactor(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: CholeskyFactor needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	c := NewCholesky()
	row := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < i; j++ {
			row[j] = a.At(i, j)
		}
		if err := c.Append(row[:i], a.At(i, i)); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Size returns the current dimension of the factored matrix.
func (c *Cholesky) Size() int { return c.n }

// rowAt returns the packed slice for row i of L.
func (c *Cholesky) rowAt(i int) []float64 {
	start := i * (i + 1) / 2
	return c.l[start : start+i+1]
}

// Append grows A by one row/column whose off-diagonal part is cross
// (cross[j] = A[n][j] for j < n) and whose diagonal entry is diag. It returns
// ErrNotPositiveDefinite (leaving the factor unchanged) when the update would
// produce a non-positive pivot, which signals that the appended column is
// linearly dependent on the existing ones.
func (c *Cholesky) Append(cross []float64, diag float64) error {
	if len(cross) != c.n {
		return fmt.Errorf("linalg: Cholesky.Append cross length %d, want %d", len(cross), c.n)
	}
	// Solve L·w = cross by forward substitution.
	w := make([]float64, c.n+1)
	for i := 0; i < c.n; i++ {
		s := cross[i]
		ri := c.rowAt(i)
		for j := 0; j < i; j++ {
			s -= ri[j] * w[j]
		}
		w[i] = s / ri[i]
	}
	d := diag
	for i := 0; i < c.n; i++ {
		d -= w[i] * w[i]
	}
	// Guard against loss of positive definiteness from cancellation: d/diag
	// is the squared sine of the angle between the new column and the span
	// of the existing ones; treat near-zero angles as dependence.
	if d <= 0 || d <= 1e-10*math.Abs(diag) {
		return ErrNotPositiveDefinite
	}
	w[c.n] = math.Sqrt(d)
	c.l = append(c.l, w...)
	c.n++
	return nil
}

// Update applies the rank-one update A' = A + x·xᵀ to the factored matrix
// in place, using the Givens-style recurrence of Golub & Van Loan §12.5.
// Adding x·xᵀ keeps A positive definite, so the update never fails. x is
// consumed as scratch and left in an undefined state.
func (c *Cholesky) Update(x []float64) {
	if len(x) != c.n {
		panic(fmt.Sprintf("linalg: Cholesky.Update vector length %d, want %d", len(x), c.n))
	}
	c.updateFrom(x, 0)
}

// updateFrom applies A' = A + x·xᵀ restricted to the trailing square block
// that starts at row/column `start` (x has length n−start). The leading
// rows and the off-block rectangle are untouched, which is exactly the
// shape Drop needs: deleting row/column i perturbs only the trailing
// (n−1−i)×(n−1−i) block of the Gram matrix.
func (c *Cholesky) updateFrom(x []float64, start int) {
	for k := start; k < c.n; k++ {
		rk := c.rowAt(k)
		lkk := rk[k]
		xk := x[k-start]
		r := math.Sqrt(lkk*lkk + xk*xk)
		cs := r / lkk
		sn := xk / lkk
		rk[k] = r
		for j := k + 1; j < c.n; j++ {
			rj := c.rowAt(j)
			rj[k] = (rj[k] + sn*x[j-start]) / cs
			x[j-start] = cs*x[j-start] - sn*rj[k]
		}
	}
}

// Drop removes row/column i of the factored matrix — a true downdate, O((n−i)²)
// instead of the O(n³) refactorization. Writing A in block form around row i,
//
//	A = [A11  a1   A31ᵀ]        L = [L11            ]
//	    [a1ᵀ  aii  a3ᵀ ]            [l1ᵀ  lii       ]
//	    [A31  a3   A33 ]            [L31  l32   L33 ]
//
// the deleted factor keeps L11 and L31 unchanged, and the trailing block
// satisfies A33 = L31·L31ᵀ + l32·l32ᵀ + L33·L33ᵀ, so the new trailing factor
// is the rank-one *update* of L33 by the deleted column l32 — which, unlike
// a downdate, cannot lose positive definiteness.
func (c *Cholesky) Drop(i int) {
	if i < 0 || i >= c.n {
		panic(fmt.Sprintf("linalg: Cholesky.Drop(%d) on size %d", i, c.n))
	}
	// l32: the deleted column's sub-diagonal entries, saved before compaction.
	x := make([]float64, c.n-1-i)
	for j := i + 1; j < c.n; j++ {
		x[j-1-i] = c.rowAt(j)[i]
	}
	// Compact the packed triangle: rows < i keep their storage; row j > i
	// moves down one slot with its column-i entry removed.
	out := c.l[:i*(i+1)/2]
	for j := i + 1; j < c.n; j++ {
		rj := c.rowAt(j)
		out = append(out, rj[:i]...)
		out = append(out, rj[i+1:]...)
	}
	c.l = out
	c.n--
	c.updateFrom(x, i)
}

// Packed returns a copy of the factor's packed lower triangle (row by row,
// row i holding i+1 entries) — the serializable form consumed by
// CholeskyFromPacked. Together they give fit checkpoints an exact
// round-trip of the factor without refactorizing on resume.
func (c *Cholesky) Packed() []float64 {
	return append([]float64(nil), c.l...)
}

// CholeskyFromPacked rebuilds a factor of dimension n from a packed lower
// triangle as produced by Packed. It validates the shape and that every
// diagonal entry is positive and finite — the invariants Solve relies on —
// so corrupt checkpoint bytes surface as errors, never as NaN results.
func CholeskyFromPacked(n int, l []float64) (*Cholesky, error) {
	if n < 0 {
		return nil, fmt.Errorf("linalg: CholeskyFromPacked dimension %d", n)
	}
	if len(l) != n*(n+1)/2 {
		return nil, fmt.Errorf("linalg: CholeskyFromPacked has %d entries, want %d for n=%d", len(l), n*(n+1)/2, n)
	}
	c := &Cholesky{n: n, l: append([]float64(nil), l...)}
	for i := 0; i < n; i++ {
		d := c.rowAt(i)[i]
		if !(d > 0) || math.IsInf(d, 0) {
			return nil, fmt.Errorf("linalg: CholeskyFromPacked diagonal %d is %v: %w", i, d, ErrNotPositiveDefinite)
		}
	}
	return c, nil
}

// SolveLeading solves the leading j×j subsystem A[:j,:j]·x = b, which for a
// factor grown by Append is exactly the Gram system of the first j appended
// columns. Incremental refits use it to refresh the coefficients of every
// path-prefix model after new samples are folded into the factor.
func (c *Cholesky) SolveLeading(j int, b []float64) ([]float64, error) {
	if j < 0 || j > c.n {
		return nil, fmt.Errorf("linalg: Cholesky.SolveLeading(%d) on size %d", j, c.n)
	}
	sub := &Cholesky{n: j, l: c.l[:j*(j+1)/2]}
	return sub.Solve(b)
}

// Shrink drops the last k rows/columns of the factored matrix. This exactly
// undoes k Append calls.
func (c *Cholesky) Shrink(k int) {
	if k < 0 || k > c.n {
		panic(fmt.Sprintf("linalg: Cholesky.Shrink(%d) on size %d", k, c.n))
	}
	c.n -= k
	c.l = c.l[:c.n*(c.n+1)/2]
}

// Solve solves A·x = b given A = L·Lᵀ. b is not modified.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("linalg: Cholesky.Solve rhs length %d, want %d", len(b), c.n)
	}
	x := Clone(b)
	// Forward: L·y = b.
	for i := 0; i < c.n; i++ {
		ri := c.rowAt(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s / ri[i]
	}
	// Backward: Lᵀ·x = y.
	for i := c.n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < c.n; j++ {
			s -= c.rowAt(j)[i] * x[j]
		}
		x[i] = s / c.rowAt(i)[i]
	}
	return x, nil
}

// SolveLower solves L·y = b by forward substitution. b is not modified.
func (c *Cholesky) SolveLower(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("linalg: Cholesky.SolveLower rhs length %d, want %d", len(b), c.n)
	}
	y := Clone(b)
	for i := 0; i < c.n; i++ {
		ri := c.rowAt(i)
		s := y[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * y[j]
		}
		y[i] = s / ri[i]
	}
	return y, nil
}

// L returns the lower-triangular factor as a dense matrix.
func (c *Cholesky) L() *Matrix {
	m := NewMatrix(c.n, c.n)
	for i := 0; i < c.n; i++ {
		copy(m.Row(i)[:i+1], c.rowAt(i))
	}
	return m
}
