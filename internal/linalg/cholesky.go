package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization meets a
// non-positive pivot.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky is a growable lower-triangular Cholesky factor L of a symmetric
// positive definite matrix A = L·Lᵀ. It supports appending one row/column to
// A at a time, which is how the OMP and LAR solvers grow their active-set
// Gram matrices by one basis per iteration without refactorizing.
type Cholesky struct {
	n int
	l []float64 // packed lower triangle, row by row: row i has i+1 entries
}

// NewCholesky returns an empty (0×0) growable factor.
func NewCholesky() *Cholesky { return &Cholesky{} }

// CholeskyFactor factors the symmetric positive definite matrix a.
// Only the lower triangle of a is read.
func CholeskyFactor(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: CholeskyFactor needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	c := NewCholesky()
	row := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < i; j++ {
			row[j] = a.At(i, j)
		}
		if err := c.Append(row[:i], a.At(i, i)); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Size returns the current dimension of the factored matrix.
func (c *Cholesky) Size() int { return c.n }

// rowAt returns the packed slice for row i of L.
func (c *Cholesky) rowAt(i int) []float64 {
	start := i * (i + 1) / 2
	return c.l[start : start+i+1]
}

// Append grows A by one row/column whose off-diagonal part is cross
// (cross[j] = A[n][j] for j < n) and whose diagonal entry is diag. It returns
// ErrNotPositiveDefinite (leaving the factor unchanged) when the update would
// produce a non-positive pivot, which signals that the appended column is
// linearly dependent on the existing ones.
func (c *Cholesky) Append(cross []float64, diag float64) error {
	if len(cross) != c.n {
		return fmt.Errorf("linalg: Cholesky.Append cross length %d, want %d", len(cross), c.n)
	}
	// Solve L·w = cross by forward substitution.
	w := make([]float64, c.n+1)
	for i := 0; i < c.n; i++ {
		s := cross[i]
		ri := c.rowAt(i)
		for j := 0; j < i; j++ {
			s -= ri[j] * w[j]
		}
		w[i] = s / ri[i]
	}
	d := diag
	for i := 0; i < c.n; i++ {
		d -= w[i] * w[i]
	}
	// Guard against loss of positive definiteness from cancellation: d/diag
	// is the squared sine of the angle between the new column and the span
	// of the existing ones; treat near-zero angles as dependence.
	if d <= 0 || d <= 1e-10*math.Abs(diag) {
		return ErrNotPositiveDefinite
	}
	w[c.n] = math.Sqrt(d)
	c.l = append(c.l, w...)
	c.n++
	return nil
}

// Shrink drops the last k rows/columns of the factored matrix. This exactly
// undoes k Append calls.
func (c *Cholesky) Shrink(k int) {
	if k < 0 || k > c.n {
		panic(fmt.Sprintf("linalg: Cholesky.Shrink(%d) on size %d", k, c.n))
	}
	c.n -= k
	c.l = c.l[:c.n*(c.n+1)/2]
}

// Solve solves A·x = b given A = L·Lᵀ. b is not modified.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("linalg: Cholesky.Solve rhs length %d, want %d", len(b), c.n)
	}
	x := Clone(b)
	// Forward: L·y = b.
	for i := 0; i < c.n; i++ {
		ri := c.rowAt(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s / ri[i]
	}
	// Backward: Lᵀ·x = y.
	for i := c.n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < c.n; j++ {
			s -= c.rowAt(j)[i] * x[j]
		}
		x[i] = s / c.rowAt(i)[i]
	}
	return x, nil
}

// SolveLower solves L·y = b by forward substitution. b is not modified.
func (c *Cholesky) SolveLower(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("linalg: Cholesky.SolveLower rhs length %d, want %d", len(b), c.n)
	}
	y := Clone(b)
	for i := 0; i < c.n; i++ {
		ri := c.rowAt(i)
		s := y[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * y[j]
		}
		y[i] = s / ri[i]
	}
	return y, nil
}

// L returns the lower-triangular factor as a dense matrix.
func (c *Cholesky) L() *Matrix {
	m := NewMatrix(c.n, c.n)
	for i := 0; i < c.n; i++ {
		copy(m.Row(i)[:i+1], c.rowAt(i))
	}
	return m
}
