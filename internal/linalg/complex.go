package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
)

// CMatrix is a dense row-major complex matrix, used by the AC (small-signal
// frequency domain) analysis of the circuit simulator.
type CMatrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewCMatrix allocates a zero complex matrix.
func NewCMatrix(rows, cols int) *CMatrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative matrix dimension %dx%d", rows, cols))
	}
	return &CMatrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns element (i, j).
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Add accumulates into element (i, j).
func (m *CMatrix) Add(i, j int, v complex128) { m.Data[i*m.Cols+j] += v }

// Reset zeroes the matrix in place.
func (m *CMatrix) Reset() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// SolveComplex solves the square complex system A·x = b by LU factorization
// with partial pivoting. A and b are not modified.
func SolveComplex(a *CMatrix, b []complex128) ([]complex128, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: SolveComplex needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: SolveComplex rhs length %d, want %d", len(b), n)
	}
	f := make([]complex128, len(a.Data))
	copy(f, a.Data)
	x := make([]complex128, n)
	copy(x, b)
	at := func(i, j int) complex128 { return f[i*n+j] }
	set := func(i, j int, v complex128) { f[i*n+j] = v }
	for k := 0; k < n; k++ {
		// Partial pivot by magnitude.
		p, max := k, cmplx.Abs(at(k, k))
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(at(i, k)); v > max {
				p, max = i, v
			}
		}
		if max == 0 || math.IsNaN(max) {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				f[k*n+j], f[p*n+j] = f[p*n+j], f[k*n+j]
			}
			x[k], x[p] = x[p], x[k]
		}
		inv := 1 / at(k, k)
		for i := k + 1; i < n; i++ {
			lik := at(i, k) * inv
			if lik == 0 {
				continue
			}
			set(i, k, lik)
			for j := k + 1; j < n; j++ {
				set(i, j, at(i, j)-lik*at(k, j))
			}
			x[i] -= lik * x[k]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= at(i, j) * x[j]
		}
		x[i] = s / at(i, i)
	}
	return x, nil
}
