// Package linalg provides the dense linear algebra kernels used by the
// sparse regression solvers and the circuit simulator: row-major matrices,
// Householder QR, Cholesky and LU factorizations, triangular solves and the
// small vector kernels they are built from.
//
// The package is deliberately self-contained (stdlib only) and tuned for the
// shapes that appear in this repository: tall-thin least-squares systems with
// a few hundred columns, and small-to-medium square MNA systems.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, Data[i*Cols+j] is element (i,j)
}

// NewMatrix allocates a zero matrix with the given dimensions.
// It panics if either dimension is negative.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative matrix dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds a matrix from a slice of rows. All rows must have the
// same length. The data is copied.
func NewMatrixFrom(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged input row %d: got %d, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col copies column j into dst (allocated if nil) and returns it.
func (m *Matrix) Col(dst []float64, j int) []float64 {
	if dst == nil {
		dst = make([]float64, m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Data[i*m.Cols+j]
	}
	return dst
}

// SetCol assigns column j from src.
func (m *Matrix) SetCol(j int, src []float64) {
	if len(src) != m.Rows {
		panic(fmt.Sprintf("linalg: SetCol length %d, want %d", len(src), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] = src[i]
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Cols+i] = v
		}
	}
	return out
}

// MulVec computes dst = m · x. dst is allocated when nil; it must not alias x.
func (m *Matrix) MulVec(dst, x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec input length %d, want %d", len(x), m.Cols))
	}
	if dst == nil {
		dst = make([]float64, m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
	return dst
}

// MulTransVec computes dst = mᵀ · x. dst is allocated when nil; it must not
// alias x.
func (m *Matrix) MulTransVec(dst, x []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("linalg: MulTransVec input length %d, want %d", len(x), m.Rows))
	}
	if dst == nil {
		dst = make([]float64, m.Cols)
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			dst[j] += xi * v
		}
	}
	return dst
}

// Mul computes m · b as a new matrix.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Row(i)
		orow := out.Row(i)
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
	return out
}

// Gram computes mᵀ·m (the Gram matrix of the columns of m).
func (m *Matrix) Gram() *Matrix {
	out := NewMatrix(m.Cols, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for a, va := range row {
			if va == 0 {
				continue
			}
			orow := out.Row(a)
			for b, vb := range row {
				orow[b] += va * vb
			}
		}
	}
	return out
}

// MaxAbs returns the largest absolute entry of m (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}
