package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// residualOrthogonality checks the least-squares optimality condition
// Aᵀ(A·x − b) ≈ 0.
func residualOrthogonality(t *testing.T, a *Matrix, x, b []float64, eps float64) {
	t.Helper()
	r := Sub(nil, a.MulVec(nil, x), b)
	g := a.MulTransVec(nil, r)
	scale := Norm2(b) + 1
	if NormInf(g) > eps*scale {
		t.Errorf("normal-equation residual too large: %g (scale %g)", NormInf(g), scale)
	}
}

func TestQRSolveExactSquare(t *testing.T) {
	a := NewMatrixFrom([][]float64{{2, 1}, {1, 3}})
	b := []float64{3, 5}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Exact solution: x = [0.8, 1.4].
	if !almostEq(x[0], 0.8, tol) || !almostEq(x[1], 1.4, tol) {
		t.Errorf("x = %v, want [0.8 1.4]", x)
	}
}

func TestQRSolveOverdetermined(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 40, 7)
	xTrue := make([]float64, 7)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := a.MulVec(nil, xTrue)
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEq(x[i], xTrue[i], 1e-9) {
			t.Errorf("x[%d] = %g, want %g", i, x[i], xTrue[i])
		}
	}
}

func TestQRSolveNoisyOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMatrix(rng, 60, 9)
	b := make([]float64, 60)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	residualOrthogonality(t, a, x, b, 1e-10)
}

func TestQRFactorUnderdeterminedRejected(t *testing.T) {
	if _, err := QRFactor(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for rows < cols")
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Two identical columns.
	a := NewMatrixFrom([][]float64{{1, 1}, {2, 2}, {3, 3}})
	_, err := SolveLeastSquares(a, []float64{1, 2, 3})
	if err == nil {
		t.Fatal("expected rank-deficiency error")
	}
}

func TestQRRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMatrix(rng, 12, 5)
	qr, err := QRFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	// RᵀR must equal AᵀA.
	r := qr.R()
	rtr := r.T().Mul(r)
	ata := a.Gram()
	for i := range ata.Data {
		if !almostEq(rtr.Data[i], ata.Data[i], 1e-9) {
			t.Fatalf("RᵀR ≠ AᵀA at %d: %g vs %g", i, rtr.Data[i], ata.Data[i])
		}
	}
}

func TestCholeskySolveMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randMatrix(rng, 20, 6)
	a := g.Gram() // SPD with probability 1
	b := make([]float64, 6)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	chol, err := CholeskyFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := chol.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := SolveSquare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if !almostEq(x1[i], x2[i], 1e-8) {
			t.Errorf("x[%d]: chol %g vs lu %g", i, x1[i], x2[i])
		}
	}
}

func TestCholeskyAppendMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randMatrix(rng, 30, 8)
	a := g.Gram()
	batch, err := CholeskyFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	inc := NewCholesky()
	for i := 0; i < 8; i++ {
		cross := make([]float64, i)
		for j := 0; j < i; j++ {
			cross[j] = a.At(i, j)
		}
		if err := inc.Append(cross, a.At(i, i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	lb, li := batch.L(), inc.L()
	for i := range lb.Data {
		if !almostEq(lb.Data[i], li.Data[i], 1e-10) {
			t.Fatalf("incremental L differs at %d: %g vs %g", i, li.Data[i], lb.Data[i])
		}
	}
}

func TestCholeskyAppendRejectsDependentColumn(t *testing.T) {
	c := NewCholesky()
	if err := c.Append(nil, 1); err != nil {
		t.Fatal(err)
	}
	// Second column identical to the first: Gram [[1,1],[1,1]] is singular.
	if err := c.Append([]float64{1}, 1); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("got %v, want ErrNotPositiveDefinite", err)
	}
	if c.Size() != 1 {
		t.Errorf("failed Append changed size to %d", c.Size())
	}
}

func TestCholeskyShrinkUndoesAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randMatrix(rng, 25, 5)
	a := g.Gram()
	c := NewCholesky()
	appendRow := func(i int) {
		cross := make([]float64, i)
		for j := 0; j < i; j++ {
			cross[j] = a.At(i, j)
		}
		if err := c.Append(cross, a.At(i, i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		appendRow(i)
	}
	before := c.L()
	c.Shrink(2)
	if c.Size() != 3 {
		t.Fatalf("Size after Shrink = %d, want 3", c.Size())
	}
	appendRow(3)
	appendRow(4)
	after := c.L()
	for i := range before.Data {
		if !almostEq(before.Data[i], after.Data[i], 1e-12) {
			t.Fatal("Shrink+Append did not reproduce the factor")
		}
	}
}

func TestCholeskyNonSquareRejected(t *testing.T) {
	if _, err := CholeskyFactor(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestCholeskyIndefiniteRejected(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, −1
	if _, err := CholeskyFactor(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("got %v, want ErrNotPositiveDefinite", err)
	}
}

func TestLUSolveKnownSystem(t *testing.T) {
	a := NewMatrixFrom([][]float64{{0, 2}, {1, 1}}) // needs pivoting
	x, err := SolveSquare(a, []float64{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, tol) || !almostEq(x[1], 2, tol) {
		t.Errorf("x = %v, want [1 2]", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveSquare(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("got %v, want ErrSingular", err)
	}
}

func TestLURandomRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := randMatrix(rng, n, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(nil, xTrue)
		x, err := SolveSquare(a, b)
		if err != nil {
			// A random Gaussian matrix is almost surely nonsingular, but a
			// tiny pivot can still legitimately fail; treat as a pass only
			// if the matrix really is badly conditioned.
			return true
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-6*(1+math.Abs(xTrue[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// cholOfGram factors the Gram matrix of g through incremental Appends.
func cholOfGram(t *testing.T, a *Matrix) *Cholesky {
	t.Helper()
	c := NewCholesky()
	for i := 0; i < a.Rows; i++ {
		cross := make([]float64, i)
		for j := 0; j < i; j++ {
			cross[j] = a.At(i, j)
		}
		if err := c.Append(cross, a.At(i, i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	return c
}

func TestCholeskyUpdateMatchesRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randMatrix(rng, 30, 7)
	a := g.Gram()
	c := cholOfGram(t, a)
	x := make([]float64, 7)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// A + x·xᵀ refactored from scratch.
	ax := a.Clone()
	for i := 0; i < 7; i++ {
		for j := 0; j < 7; j++ {
			ax.Set(i, j, ax.At(i, j)+x[i]*x[j])
		}
	}
	want, err := CholeskyFactor(ax)
	if err != nil {
		t.Fatal(err)
	}
	c.Update(append([]float64(nil), x...))
	lw, lu := want.L(), c.L()
	for i := range lw.Data {
		if !almostEq(lw.Data[i], lu.Data[i], 1e-10) {
			t.Fatalf("updated L differs at %d: %g vs %g", i, lu.Data[i], lw.Data[i])
		}
	}
}

func TestCholeskyDropMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := randMatrix(rng, 40, 8)
	a := g.Gram()
	for drop := 0; drop < 8; drop++ {
		c := cholOfGram(t, a)
		c.Drop(drop)
		if c.Size() != 7 {
			t.Fatalf("Size after Drop = %d, want 7", c.Size())
		}
		// The Gram matrix with row/column `drop` deleted, refactored cold.
		sub := NewMatrix(7, 7)
		for i, si := 0, 0; i < 8; i++ {
			if i == drop {
				continue
			}
			for j, sj := 0, 0; j < 8; j++ {
				if j == drop {
					continue
				}
				sub.Set(si, sj, a.At(i, j))
				sj++
			}
			si++
		}
		want, err := CholeskyFactor(sub)
		if err != nil {
			t.Fatal(err)
		}
		lw, ld := want.L(), c.L()
		for i := range lw.Data {
			if !almostEq(lw.Data[i], ld.Data[i], 1e-10) {
				t.Fatalf("drop %d: downdated L differs at %d: %g vs %g", drop, i, ld.Data[i], lw.Data[i])
			}
		}
	}
}

func TestCholeskyDropSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := randMatrix(rng, n+12, n)
		a := g.Gram()
		c, err := CholeskyFactor(a)
		if err != nil {
			return true
		}
		drop := rng.Intn(n)
		c.Drop(drop)
		b := make([]float64, n-1)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got, err := c.Solve(b)
		if err != nil {
			return false
		}
		sub := NewMatrix(n-1, n-1)
		for i, si := 0, 0; i < n; i++ {
			if i == drop {
				continue
			}
			for j, sj := 0, 0; j < n; j++ {
				if j == drop {
					continue
				}
				sub.Set(si, sj, a.At(i, j))
				sj++
			}
			si++
		}
		want, err := SolveSquare(sub, b)
		if err != nil {
			return true
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyPackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randMatrix(rng, 20, 6)
	c := cholOfGram(t, g.Gram())
	rt, err := CholeskyFromPacked(c.Size(), c.Packed())
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, -2, 3, -4, 5, -6}
	x1, err := c.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := rt.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("packed round-trip changed solution: %g vs %g", x1[i], x2[i])
		}
	}
}

func TestCholeskyFromPackedRejectsCorrupt(t *testing.T) {
	if _, err := CholeskyFromPacked(3, []float64{1, 2}); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := CholeskyFromPacked(-1, nil); err == nil {
		t.Fatal("expected dimension error")
	}
	// Zero and NaN diagonals must be rejected — Solve divides by them.
	if _, err := CholeskyFromPacked(2, []float64{1, 0.5, 0}); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("zero diagonal: got %v", err)
	}
	if _, err := CholeskyFromPacked(1, []float64{math.NaN()}); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("NaN diagonal: got %v", err)
	}
}

func TestCholeskySolveLeadingMatchesSubfactor(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := randMatrix(rng, 30, 6)
	a := g.Gram()
	c := cholOfGram(t, a)
	for j := 1; j <= 6; j++ {
		b := make([]float64, j)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got, err := c.SolveLeading(j, b)
		if err != nil {
			t.Fatal(err)
		}
		sub := NewMatrix(j, j)
		for i := 0; i < j; i++ {
			for k := 0; k < j; k++ {
				sub.Set(i, k, a.At(i, k))
			}
		}
		wantC, err := CholeskyFactor(sub)
		if err != nil {
			t.Fatal(err)
		}
		want, err := wantC.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if !almostEq(got[i], want[i], 1e-10) {
				t.Fatalf("leading %d solve differs at %d: %g vs %g", j, i, got[i], want[i])
			}
		}
	}
}

// Property: for random SPD systems, Cholesky and QR least-squares agree.
func TestCholeskyQRConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		k := n + 5 + rng.Intn(20)
		g := randMatrix(rng, k, n)
		b := make([]float64, k)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xQR, err := SolveLeastSquares(g, b)
		if err != nil {
			return true
		}
		chol, err := CholeskyFactor(g.Gram())
		if err != nil {
			return true
		}
		xCh, err := chol.Solve(g.MulTransVec(nil, b))
		if err != nil {
			return true
		}
		for i := range xQR {
			if math.Abs(xQR[i]-xCh[i]) > 1e-6*(1+math.Abs(xQR[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
