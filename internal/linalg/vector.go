package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x, guarding against overflow.
func Norm2(x []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute entry of x (0 for empty x).
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Norm1 returns the sum of absolute entries of x.
func Norm1(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// Axpy computes y ← y + alpha·x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	if alpha == 0 {
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale computes x ← alpha·x in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Sub computes dst = x − y. dst is allocated when nil.
func Sub(dst, x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Sub length mismatch %d vs %d", len(x), len(y)))
	}
	if dst == nil {
		dst = make([]float64, len(x))
	}
	for i := range x {
		dst[i] = x[i] - y[i]
	}
	return dst
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}
