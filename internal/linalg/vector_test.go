package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !almostEq(got, 5, tol) {
		t.Errorf("Norm2 = %g, want 5", got)
	}
	if Norm2(nil) != 0 {
		t.Error("Norm2(nil) should be 0")
	}
}

func TestNorm2OverflowSafe(t *testing.T) {
	big := math.MaxFloat64 / 2
	got := Norm2([]float64{big, big})
	if math.IsInf(got, 1) || math.IsNaN(got) {
		t.Fatalf("Norm2 overflowed: %g", got)
	}
	want := big * math.Sqrt2
	if math.Abs(got-want)/want > 1e-14 {
		t.Errorf("Norm2 = %g, want %g", got, want)
	}
}

func TestNorm1NormInf(t *testing.T) {
	x := []float64{-1, 2, -3}
	if Norm1(x) != 6 {
		t.Errorf("Norm1 = %g, want 6", Norm1(x))
	}
	if NormInf(x) != 3 {
		t.Errorf("NormInf = %g, want 3", NormInf(x))
	}
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, -1}, y)
	if y[0] != 7 || y[1] != -1 {
		t.Errorf("Axpy = %v, want [7 -1]", y)
	}
}

func TestScaleSub(t *testing.T) {
	x := []float64{2, 4}
	Scale(0.5, x)
	if x[0] != 1 || x[1] != 2 {
		t.Errorf("Scale = %v", x)
	}
	d := Sub(nil, []float64{5, 5}, x)
	if d[0] != 4 || d[1] != 3 {
		t.Errorf("Sub = %v", d)
	}
}

// Property: Cauchy–Schwarz |x·y| ≤ ‖x‖‖y‖ and triangle inequality for Norm2.
func TestNormProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		if math.Abs(Dot(x, y)) > Norm2(x)*Norm2(y)*(1+1e-12) {
			return false
		}
		s := make([]float64, n)
		for i := range s {
			s[i] = x[i] + y[i]
		}
		return Norm2(s) <= Norm2(x)+Norm2(y)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
