package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when an LU factorization meets a zero pivot.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds an LU factorization with partial pivoting: P·A = L·U. It is the
// workhorse of the MNA circuit solver, where the system matrix is square and
// unsymmetric.
type LU struct {
	fact *Matrix
	piv  []int
}

// LUFactor computes the LU factorization of the square matrix a with partial
// pivoting. The input is not modified.
func LUFactor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: LUFactor needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	f := a.Clone()
	piv := make([]int, n)
	for k := 0; k < n; k++ {
		// Partial pivot: largest |entry| in column k at or below the diagonal.
		p, max := k, math.Abs(f.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(f.At(i, k)); v > max {
				p, max = i, v
			}
		}
		piv[k] = p
		if max == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := f.Row(k), f.Row(p)
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
		inv := 1.0 / f.At(k, k)
		for i := k + 1; i < n; i++ {
			lik := f.At(i, k) * inv
			f.Set(i, k, lik)
			if lik == 0 {
				continue
			}
			ri, rk := f.Row(i), f.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= lik * rk[j]
			}
		}
	}
	return &LU{fact: f, piv: piv}, nil
}

// Solve solves A·x = b. b is not modified.
func (lu *LU) Solve(b []float64) ([]float64, error) {
	n := lu.fact.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: LU.Solve rhs length %d, want %d", len(b), n)
	}
	x := Clone(b)
	// Apply the row permutation.
	for k := 0; k < n; k++ {
		if p := lu.piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward: L·y = P·b (unit diagonal).
	for i := 1; i < n; i++ {
		ri := lu.fact.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s
	}
	// Backward: U·x = y.
	for i := n - 1; i >= 0; i-- {
		ri := lu.fact.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s / ri[i]
	}
	return x, nil
}

// SolveSquare solves the square system A·x = b via LU with partial pivoting.
func SolveSquare(a *Matrix, b []float64) ([]float64, error) {
	lu, err := LUFactor(a)
	if err != nil {
		return nil, err
	}
	return lu.Solve(b)
}
