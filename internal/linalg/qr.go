package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrRankDeficient is returned when a factorization meets a (numerically)
// singular pivot.
var ErrRankDeficient = errors.New("linalg: matrix is rank deficient")

// QR holds a Householder QR factorization of an m×n matrix with m ≥ n.
// The factors are stored compactly: R in the upper triangle of fact, the
// Householder vectors below the diagonal, and the scalar factors in tau.
type QR struct {
	fact *Matrix
	tau  []float64
}

// QRFactor computes the Householder QR factorization of a. The input matrix
// is not modified. It requires a.Rows ≥ a.Cols.
func QRFactor(a *Matrix) (*QR, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("linalg: QRFactor needs rows ≥ cols, got %dx%d", m, n)
	}
	f := a.Clone()
	tau := make([]float64, n)
	col := make([]float64, m)
	for k := 0; k < n; k++ {
		// Build the Householder reflector for column k below row k.
		for i := k; i < m; i++ {
			col[i] = f.At(i, k)
		}
		norm := Norm2(col[k:m])
		if norm == 0 {
			tau[k] = 0
			continue
		}
		alpha := col[k]
		beta := -math.Copysign(norm, alpha)
		v0 := alpha - beta
		// v = [1, col[k+1:]/v0]; tau = v0/(-beta) in LAPACK convention.
		tau[k] = -v0 / beta
		inv := 1.0 / v0
		f.Set(k, k, beta)
		for i := k + 1; i < m; i++ {
			f.Set(i, k, col[i]*inv)
		}
		// Apply the reflector to the trailing columns: A ← (I − tau·v·vᵀ)·A.
		for j := k + 1; j < n; j++ {
			s := f.At(k, j)
			for i := k + 1; i < m; i++ {
				s += f.At(i, k) * f.At(i, j)
			}
			s *= tau[k]
			f.Set(k, j, f.At(k, j)-s)
			for i := k + 1; i < m; i++ {
				f.Set(i, j, f.At(i, j)-s*f.At(i, k))
			}
		}
	}
	return &QR{fact: f, tau: tau}, nil
}

// applyQT overwrites b with Qᵀ·b.
func (qr *QR) applyQT(b []float64) {
	m, n := qr.fact.Rows, qr.fact.Cols
	if len(b) != m {
		panic(fmt.Sprintf("linalg: applyQT length %d, want %d", len(b), m))
	}
	for k := 0; k < n; k++ {
		if qr.tau[k] == 0 {
			continue
		}
		s := b[k]
		for i := k + 1; i < m; i++ {
			s += qr.fact.At(i, k) * b[i]
		}
		s *= qr.tau[k]
		b[k] -= s
		for i := k + 1; i < m; i++ {
			b[i] -= s * qr.fact.At(i, k)
		}
	}
}

// Solve finds x minimizing ‖A·x − b‖₂ using the factorization. b is not
// modified. It returns ErrRankDeficient when R has a zero diagonal pivot.
func (qr *QR) Solve(b []float64) ([]float64, error) {
	m, n := qr.fact.Rows, qr.fact.Cols
	if len(b) != m {
		return nil, fmt.Errorf("linalg: QR.Solve rhs length %d, want %d", len(b), m)
	}
	work := Clone(b)
	qr.applyQT(work)
	x := work[:n]
	// A pivot far smaller than the largest diagonal of R means the column is
	// numerically dependent on earlier ones.
	maxDiag := 0.0
	for i := 0; i < n; i++ {
		if d := math.Abs(qr.fact.At(i, i)); d > maxDiag {
			maxDiag = d
		}
	}
	// Back substitution with R.
	for i := n - 1; i >= 0; i-- {
		d := qr.fact.At(i, i)
		if math.Abs(d) <= 1e-13*maxDiag {
			return nil, ErrRankDeficient
		}
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= qr.fact.At(i, j) * x[j]
		}
		x[i] = s / d
	}
	return Clone(x), nil
}

// R returns the upper-triangular factor as a dense n×n matrix.
func (qr *QR) R() *Matrix {
	n := qr.fact.Cols
	r := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, qr.fact.At(i, j))
		}
	}
	return r
}

// SolveLeastSquares solves min ‖A·x − b‖₂ by Householder QR.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	qr, err := QRFactor(a)
	if err != nil {
		return nil, err
	}
	return qr.Solve(b)
}
