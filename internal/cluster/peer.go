package cluster

import (
	"sync"
	"time"
)

// Backoff bounds for an unhealthy peer: the first failure backs off
// peerBackoffBase, doubling per consecutive failure up to peerBackoffMax.
const (
	peerBackoffBase = 250 * time.Millisecond
	peerBackoffMax  = 5 * time.Second
)

// Peer tracks one remote shard's health. The proxy path marks a failure on
// transport errors (connection refused, reset, timeout) — not on HTTP
// error statuses, which prove the peer is alive — and the replicator marks
// success/failure per sync round. While a peer is backing off, the proxy
// fails fast with 503 + Retry-After instead of re-dialing a dead node on
// every request.
type Peer struct {
	// Name is the peer's ring member name (s0, s1, ...).
	Name string
	// URL is the peer's base URL.
	URL string

	mu        sync.Mutex
	failures  int
	downUntil time.Time
	lastSync  time.Time
	lagLeft   int // versions the peer had that we lacked, after the last sync round
}

// Healthy reports whether the peer is currently dialable (not in backoff).
func (p *Peer) Healthy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return time.Now().After(p.downUntil)
}

// RetryAfter returns how long callers should wait before retrying the
// peer, at least one second (the proxy's Retry-After header granularity).
func (p *Peer) RetryAfter() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	d := time.Until(p.downUntil)
	if d < time.Second {
		d = time.Second
	}
	return d
}

// MarkFailure records a transport failure and extends the backoff window
// exponentially.
func (p *Peer) MarkFailure() {
	p.mu.Lock()
	defer p.mu.Unlock()
	backoff := peerBackoffBase << p.failures
	if backoff > peerBackoffMax || backoff <= 0 {
		backoff = peerBackoffMax
	}
	p.failures++
	p.downUntil = time.Now().Add(backoff)
}

// MarkSuccess clears the backoff state.
func (p *Peer) MarkSuccess() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failures = 0
	p.downUntil = time.Time{}
}

// markSynced records a completed sync round and the remaining version lag.
func (p *Peer) markSynced(lag int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lastSync = time.Now()
	p.lagLeft = lag
}

// Status is a point-in-time snapshot of a peer for /metrics.
type Status struct {
	Name        string    `json:"name"`
	URL         string    `json:"url"`
	Healthy     bool      `json:"healthy"`
	Failures    int       `json:"failures,omitempty"`
	LastSync    time.Time `json:"last_sync"`
	LagVersions int       `json:"lag_versions"`
}

// Status snapshots the peer.
func (p *Peer) Status() Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Status{
		Name:        p.Name,
		URL:         p.URL,
		Healthy:     time.Now().After(p.downUntil),
		Failures:    p.failures,
		LastSync:    p.lastSync,
		LagVersions: p.lagLeft,
	}
}
