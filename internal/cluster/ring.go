// Package cluster is rsmd's horizontal-serving layer: a consistent-hash
// ring that assigns every model name to exactly one owning shard, per-peer
// health tracking with exponential backoff, and a pull-based replicator
// that mirrors the versioned model registry between peers over the
// GET /v1/sync protocol.
//
// The ring carves the 64-bit FNV-1a hash space into a fixed table of equal
// partitions and assigns each partition to the member with the highest
// rendezvous weight (hash of member identity + partition index). Ownership
// of a key is the owner of its partition. The fixed partition count keeps
// both classic consistent-hashing guarantees exactly — a membership change
// moves only the partitions the joining member wins or the leaving member
// held (~1/N of the space, and nothing else), and every process handed the
// same member list computes the identical mapping with no coordination —
// while bounding load imbalance far tighter than raw virtual-node arc
// placement: random arc lengths at V points per member leave a ~1/sqrt(V)
// relative spread (~9% at 128 vnodes, with outliers past 20%), whereas
// equal partitions make each member's share a binomial over 64Ki
// independent assignments (~1% spread; see TestRingBalance).
package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the minimum virtual-arc count per member when
// Config.VNodes is zero. The fixed partition table guarantees each member
// at least this many arcs up to ringPartitions/DefaultVNodes members.
const DefaultVNodes = 128

// ringPartitions is the fixed size of the partition table. It must never
// change across releases: separately deployed rsmd versions hash keys to
// partition indices independently, and a different table size would make
// them disagree on ownership mid-upgrade.
const ringPartitions = 1 << 16

// Member is one ring participant. ID is the stable identity hashed for
// rendezvous weights (the node's base URL in rsmd); Name is the short
// label Owner returns (s0, s1, ... in rsmd).
type Member struct {
	Name string
	ID   string
}

// Ring is an immutable consistent-hash ring. Build one with NewRing;
// membership changes build a new ring.
type Ring struct {
	owners []string // partition index -> member name
	names  []string // member names, sorted
	vnodes int
	mask   uint64
}

// NewRing builds a ring over members at a granularity of vnodes virtual
// arcs per member (DefaultVNodes when vnodes <= 0). Member order does not
// matter; two processes handed the same set compute the same ring.
// Duplicate IDs or names are an error — they would silently double one
// member's share.
func NewRing(members []Member, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seenID := make(map[string]bool, len(members))
	seenName := make(map[string]bool, len(members))
	for _, m := range members {
		if m.ID == "" || m.Name == "" {
			return nil, fmt.Errorf("cluster: ring member with empty name or id")
		}
		if seenID[m.ID] || seenName[m.Name] {
			return nil, fmt.Errorf("cluster: duplicate ring member %s (%s)", m.Name, m.ID)
		}
		seenID[m.ID], seenName[m.Name] = true, true
	}
	if len(members)*vnodes > ringPartitions {
		return nil, fmt.Errorf("cluster: %d members at %d vnodes exceeds the %d-partition ring",
			len(members), vnodes, ringPartitions)
	}
	r := &Ring{
		owners: make([]string, ringPartitions),
		names:  make([]string, 0, len(members)),
		vnodes: vnodes,
		mask:   uint64(ringPartitions - 1),
	}
	// Per-member streaming-FNV prefix of "id#", so the inner loop hashes
	// only the partition digits.
	prefixes := make([]uint64, len(members))
	for i, m := range members {
		r.names = append(r.names, m.Name)
		prefixes[i] = fnvString(fnvOffset64, m.ID+"#")
	}
	sort.Strings(r.names)
	for p := range r.owners {
		digits := strconv.Itoa(p)
		var best uint64
		var owner string
		for i, m := range members {
			w := fmix64(fnvString(prefixes[i], digits))
			// Ties (vanishingly rare) break by name so the mapping stays
			// order-independent.
			if owner == "" || w > best || (w == best && m.Name < owner) {
				best, owner = w, m.Name
			}
		}
		r.owners[p] = owner
	}
	return r, nil
}

// Owner returns the member name owning key.
func (r *Ring) Owner(key string) string {
	return r.owners[hash64(key)&r.mask]
}

// Members returns the sorted member names.
func (r *Ring) Members() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// VNodes returns the configured granularity per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Partitions returns the partition count of the ring.
func (r *Ring) Partitions() int { return len(r.owners) }

// fnvOffset64 and fnvPrime64 are the 64-bit FNV-1a constants; the hash is
// hand-rolled (rather than hash/fnv) so member prefixes can be streamed
// once and extended per partition without allocating.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvString extends an FNV-1a state with s.
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// fmix64 is the murmur3 avalanche finalizer. Raw FNV output on short,
// similar strings is too correlated for rendezvous comparisons; the
// finalizer decorrelates it.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// hash64 hashes a key for partition lookup: FNV-1a + avalanche, stable
// across processes, architectures and Go releases — ownership must agree
// between separately started rsmd processes, which rules out maphash's
// per-process seed.
func hash64(s string) uint64 {
	return fmix64(fnvString(fnvOffset64, s))
}
