package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/registry"
)

// DefaultSyncInterval is the replicator's pull period when
// Config.SyncInterval is zero.
const DefaultSyncInterval = 2 * time.Second

// Config wires a node into a cluster.
type Config struct {
	// Self is this node's own base URL. It must appear in Peers when the
	// node is a shard. An empty Self makes the node a stateless proxy: it
	// joins no ring arc, stores no replicas, and forwards every model
	// operation to the owning shard.
	Self string
	// Peers is the full shard list (base URLs, including Self for shard
	// nodes). Every process must be handed the same set — member names and
	// ring ownership are derived from it deterministically.
	Peers []string
	// VNodes is the virtual-node count per member (DefaultVNodes when 0).
	VNodes int
	// SyncInterval is the replicator's pull period (DefaultSyncInterval
	// when 0, negative disables the background loop; SyncOnce still works).
	SyncInterval time.Duration
	// HTTP is the client used for sync pulls (http.DefaultClient when nil).
	HTTP *http.Client
	// Logger receives sync and health events (slog.Default when nil).
	Logger *slog.Logger
}

// Cluster is one node's view of the shard ring: ownership lookups, peer
// health, and the background registry replicator.
type Cluster struct {
	reg      Registry
	ring     *Ring
	selfName string // "" for a proxy-only node
	selfURL  string
	peers    map[string]*Peer // by member name; excludes self
	urls     map[string]string
	interval time.Duration
	httpc    *http.Client
	log      *slog.Logger

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup

	syncs             atomic.Uint64
	syncErrors        atomic.Uint64
	versionsPulled    atomic.Uint64
	checkpointsPulled atomic.Uint64
	tombstonesApplied atomic.Uint64
}

// Registry is the store surface the replicator needs; *registry.Registry
// implements it.
type Registry interface {
	GetVersion(name string, version int) (*registry.Entry, bool)
	PutReplica(name string, version int, env *core.Envelope, createdAt time.Time) error
	ApplyTombstone(name string, version int) error
	PutCheckpointBlob(data []byte) error
	HasCheckpoint(name string, version int) bool
	Tombstones() map[string]int
}

var _ Registry = (*registry.Registry)(nil)

// New builds a node's cluster view. reg may be nil for a proxy-only node
// (Self == ""); shard nodes must pass their serving registry.
func New(reg Registry, cfg Config) (*Cluster, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers configured")
	}
	urls := make([]string, 0, len(cfg.Peers))
	seen := make(map[string]bool, len(cfg.Peers))
	for _, raw := range cfg.Peers {
		u, err := normalizeURL(raw)
		if err != nil {
			return nil, err
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate peer %s", u)
		}
		seen[u] = true
		urls = append(urls, u)
	}
	// Deterministic member names: s<i> in sorted-URL order, so every
	// process handed the same peer set agrees on names without coordination.
	sort.Strings(urls)
	members := make([]Member, len(urls))
	urlByName := make(map[string]string, len(urls))
	for i, u := range urls {
		members[i] = Member{Name: fmt.Sprintf("s%d", i), ID: u}
		urlByName[members[i].Name] = u
	}
	ring, err := NewRing(members, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		reg:      reg,
		ring:     ring,
		urls:     urlByName,
		peers:    make(map[string]*Peer, len(urls)),
		interval: cfg.SyncInterval,
		httpc:    cfg.HTTP,
		log:      cfg.Logger,
		stop:     make(chan struct{}),
	}
	if c.interval == 0 {
		c.interval = DefaultSyncInterval
	}
	if c.httpc == nil {
		c.httpc = http.DefaultClient
	}
	if c.log == nil {
		c.log = slog.Default()
	}
	if cfg.Self != "" {
		selfURL, err := normalizeURL(cfg.Self)
		if err != nil {
			return nil, err
		}
		for _, m := range members {
			if m.ID == selfURL {
				c.selfName, c.selfURL = m.Name, selfURL
			}
		}
		if c.selfName == "" {
			return nil, fmt.Errorf("cluster: self %s not in peer list", selfURL)
		}
		if reg == nil {
			return nil, fmt.Errorf("cluster: shard node needs a registry")
		}
	}
	for _, m := range members {
		if m.Name == c.selfName {
			continue
		}
		c.peers[m.Name] = &Peer{Name: m.Name, URL: m.ID}
	}
	return c, nil
}

// normalizeURL validates and canonicalizes a peer base URL.
func normalizeURL(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return "", fmt.Errorf("cluster: peer %q is not an absolute URL", raw)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("cluster: peer %q: unsupported scheme %s", raw, u.Scheme)
	}
	return u.Scheme + "://" + u.Host + u.Path, nil
}

// SelfName returns this node's member name, or "" for a proxy-only node.
func (c *Cluster) SelfName() string { return c.selfName }

// Members returns the sorted member names of the ring.
func (c *Cluster) Members() []string { return c.ring.Members() }

// Owner resolves the shard owning model: its member name, base URL, and
// whether that shard is this very node.
func (c *Cluster) Owner(model string) (name, baseURL string, local bool) {
	name = c.ring.Owner(model)
	return name, c.urls[name], name == c.selfName
}

// NodeURL returns the base URL of a member name (ok=false for unknown
// names — e.g. a job ID minted by a node outside this cluster).
func (c *Cluster) NodeURL(name string) (string, bool) {
	u, ok := c.urls[name]
	return u, ok
}

// Peer returns the health tracker of a member name (nil for self or
// unknown names).
func (c *Cluster) Peer(name string) *Peer { return c.peers[name] }

// Peers returns every remote peer, sorted by member name.
func (c *Cluster) Peers() []*Peer {
	out := make([]*Peer, 0, len(c.peers))
	for _, p := range c.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Start launches the background replicator. Proxy-only nodes (no local
// store) and non-positive sync intervals skip it; Close is required either
// way.
func (c *Cluster) Start() {
	if c.selfName == "" || c.interval <= 0 {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), c.interval*5)
				if err := c.SyncOnce(ctx); err != nil {
					c.log.Debug("cluster: sync round incomplete", "error", err.Error())
				}
				cancel()
			}
		}
	}()
}

// Close stops the replicator and waits for an in-flight round to finish.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// SyncManifest is the body of GET /v1/sync: everything a peer holds, by
// reference. Versions are immutable and never reused, so the manifest is a
// complete, conflict-free description of the peer's store.
type SyncManifest struct {
	// Node is the serving node's member name ("" when unclustered).
	Node string `json:"node"`
	// Versions lists every stored (name, version) pair.
	Versions []registry.VersionRecord `json:"versions"`
	// Tombstones maps deleted names to the highest version the delete
	// covered.
	Tombstones map[string]int `json:"tombstones,omitempty"`
}

// SyncEntry is the body of GET /v1/sync/models/{name}/{version}: one
// immutable version with its optional refit checkpoint, as raw bytes so
// the replica stores exactly what the owner has.
type SyncEntry struct {
	Name       string          `json:"name"`
	Version    int             `json:"version"`
	CreatedAt  time.Time       `json:"created_at"`
	Envelope   json.RawMessage `json:"envelope"`
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
}

// SyncOnce runs one pull round against every healthy peer: fetch the
// manifest, apply tombstones, then fetch and store each version this node
// lacks. Errors against one peer don't stop the round; the first error is
// returned after all peers were attempted.
func (c *Cluster) SyncOnce(ctx context.Context) error {
	if c.selfName == "" {
		return fmt.Errorf("cluster: proxy-only node does not replicate")
	}
	var firstErr error
	for _, p := range c.Peers() {
		if !p.Healthy() {
			continue
		}
		pulled, lag, err := c.syncPeer(ctx, p)
		if err != nil {
			c.syncErrors.Add(1)
			p.MarkFailure()
			if firstErr == nil {
				firstErr = fmt.Errorf("peer %s: %w", p.Name, err)
			}
			continue
		}
		p.MarkSuccess()
		p.markSynced(lag)
		if pulled > 0 {
			c.log.Info("cluster: synced from peer",
				"peer", p.Name, "pulled", pulled, "lag", lag)
		}
	}
	c.syncs.Add(1)
	return firstErr
}

// syncPeer pulls one peer's manifest and the versions this node lacks.
// pulled counts versions stored this round; lag counts versions the peer
// advertises that are still missing locally afterwards (fetch failures).
func (c *Cluster) syncPeer(ctx context.Context, p *Peer) (pulled, lag int, err error) {
	var m SyncManifest
	if err := c.getJSON(ctx, p.URL+"/v1/sync", &m); err != nil {
		return 0, 0, err
	}
	for name, version := range m.Tombstones {
		if err := c.reg.ApplyTombstone(name, version); err != nil {
			c.log.Warn("cluster: tombstone rejected", "peer", p.Name,
				"model", name, "version", version, "error", err.Error())
			continue
		}
		c.tombstonesApplied.Add(1)
	}
	local := c.reg.Tombstones()
	for _, v := range m.Versions {
		if v.Version <= local[v.Name] {
			continue // deleted locally; the peer will learn via our manifest
		}
		_, have := c.reg.GetVersion(v.Name, v.Version)
		if have && (!v.HasCheckpoint || c.reg.HasCheckpoint(v.Name, v.Version)) {
			continue
		}
		if err := c.pullVersion(ctx, p, v.Name, v.Version); err != nil {
			lag++
			c.log.Warn("cluster: version pull failed", "peer", p.Name,
				"model", v.Name, "version", v.Version, "error", err.Error())
			continue
		}
		if !have {
			pulled++
		}
	}
	return pulled, lag, nil
}

// pullVersion fetches and stores one (name, version) from a peer. The
// envelope passes full validation inside PutReplica before it is persisted
// — a torn or malformed sync payload never lands on disk (the quarantine
// contract extends to replication).
func (c *Cluster) pullVersion(ctx context.Context, p *Peer, name string, version int) error {
	var e SyncEntry
	path := fmt.Sprintf("%s/v1/sync/models/%s/%d", p.URL, url.PathEscape(name), version)
	if err := c.getJSON(ctx, path, &e); err != nil {
		return err
	}
	if e.Name != name || e.Version != version {
		return fmt.Errorf("cluster: peer served %s@v%d for %s@v%d", e.Name, e.Version, name, version)
	}
	env, err := core.ReadEnvelope(bytes.NewReader(e.Envelope))
	if err != nil {
		return fmt.Errorf("cluster: envelope from peer: %w", err)
	}
	if err := c.reg.PutReplica(name, version, env, e.CreatedAt); err != nil {
		return err
	}
	c.versionsPulled.Add(1)
	if len(e.Checkpoint) > 0 && !c.reg.HasCheckpoint(name, version) {
		if err := c.reg.PutCheckpointBlob(e.Checkpoint); err != nil {
			// The model synced fine; a bad checkpoint only costs a warm
			// refine start on this replica.
			c.log.Warn("cluster: checkpoint from peer rejected",
				"peer", p.Name, "model", name, "version", version, "error", err.Error())
			return nil
		}
		c.checkpointsPulled.Add(1)
	}
	return nil
}

// getJSON fetches url and decodes its JSON body, bounding reads to 256 MiB.
func (c *Cluster) getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: HTTP %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 256<<20)).Decode(out)
}

// Stats is a snapshot of the replicator counters and peer health for the
// metrics endpoint.
type Stats struct {
	Syncs             uint64   `json:"syncs"`
	SyncErrors        uint64   `json:"sync_errors"`
	VersionsPulled    uint64   `json:"versions_pulled"`
	CheckpointsPulled uint64   `json:"checkpoints_pulled"`
	TombstonesApplied uint64   `json:"tombstones_applied"`
	Peers             []Status `json:"peers"`
}

// Stats snapshots the cluster.
func (c *Cluster) Stats() Stats {
	s := Stats{
		Syncs:             c.syncs.Load(),
		SyncErrors:        c.syncErrors.Load(),
		VersionsPulled:    c.versionsPulled.Load(),
		CheckpointsPulled: c.checkpointsPulled.Load(),
		TombstonesApplied: c.tombstonesApplied.Load(),
	}
	for _, p := range c.Peers() {
		s.Peers = append(s.Peers, p.Status())
	}
	return s
}

// BuildManifest renders a node's registry as a sync manifest — the server
// half of GET /v1/sync. It works for unclustered nodes too (node == "").
func BuildManifest(reg interface {
	VersionsAll() []registry.VersionRecord
	Tombstones() map[string]int
}, node string) SyncManifest {
	m := SyncManifest{Node: node, Versions: reg.VersionsAll(), Tombstones: reg.Tombstones()}
	if len(m.Tombstones) == 0 {
		m.Tombstones = nil
	}
	if m.Versions == nil {
		m.Versions = []registry.VersionRecord{}
	}
	return m
}

// BuildEntry renders one stored version as a sync entry — the server half
// of GET /v1/sync/models/{name}/{version}.
func BuildEntry(reg interface {
	GetVersion(name string, version int) (*registry.Entry, bool)
	EnvelopeBytes(name string, version int) ([]byte, bool)
	CheckpointBlob(name string, version int) ([]byte, bool)
}, name string, version int) (*SyncEntry, bool) {
	e, ok := reg.GetVersion(name, version)
	if !ok {
		return nil, false
	}
	blob, ok := reg.EnvelopeBytes(name, version)
	if !ok {
		return nil, false
	}
	entry := &SyncEntry{Name: name, Version: version, CreatedAt: e.CreatedAt, Envelope: blob}
	if ck, ok := reg.CheckpointBlob(name, version); ok {
		entry.Checkpoint = ck
	}
	return entry, true
}
