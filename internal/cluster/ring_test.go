package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// testMembers builds n members named s0..s(n-1) with URL-shaped IDs, the
// same way New derives them from a peer list.
func testMembers(n int) []Member {
	ms := make([]Member, n)
	for i := range ms {
		ms[i] = Member{Name: fmt.Sprintf("s%d", i), ID: fmt.Sprintf("http://10.0.0.%d:8080", i+1)}
	}
	return ms
}

// testKeys returns model-name-shaped keys drawn from a seeded RNG so the
// property tests are reproducible.
func testKeys(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("model-%d-%x", i, rng.Uint64())
	}
	return keys
}

// TestRingMinimalRemap is the consistent-hashing contract: when one of N
// members leaves (or joins), only the keys in its arcs move — about 1/N of
// the keyspace, never the wholesale reshuffle a modular hash would cause.
func TestRingMinimalRemap(t *testing.T) {
	const keys = 20000
	for _, n := range []int{2, 3, 5, 8, 16} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			members := testMembers(n)
			before, err := NewRing(members, 128)
			if err != nil {
				t.Fatal(err)
			}
			// Leave: drop the last member.
			after, err := NewRing(members[:n-1], 128)
			if err != nil {
				t.Fatal(err)
			}
			removed := members[n-1].Name
			moved := 0
			for _, k := range testKeys(keys, 42) {
				was, is := before.Owner(k), after.Owner(k)
				if was == removed {
					// Orphaned keys must land somewhere, anywhere, else.
					if is == removed {
						t.Fatalf("key %q still owned by removed member", k)
					}
					continue
				}
				if was != is {
					moved++
				}
			}
			// Keys not owned by the leaver must not move at all — that is
			// the whole point of consistent hashing.
			if moved != 0 {
				t.Errorf("%d/%d keys not owned by the leaver remapped on leave (want 0)", moved, keys)
			}

			// Join: the reverse direction. Only keys the joiner captures move.
			joined, err := NewRing(append(testMembers(n), Member{Name: "s-new", ID: "http://10.0.1.1:8080"}), 128)
			if err != nil {
				t.Fatal(err)
			}
			captured, movedElsewhere := 0, 0
			for _, k := range testKeys(keys, 42) {
				was, is := before.Owner(k), joined.Owner(k)
				if was == is {
					continue
				}
				if is == "s-new" {
					captured++
				} else {
					movedElsewhere++
				}
			}
			if movedElsewhere != 0 {
				t.Errorf("%d keys moved between surviving members on join (want 0)", movedElsewhere)
			}
			// The joiner's share should be about 1/(n+1); allow generous
			// slack for hash variance at small n.
			share := float64(captured) / keys
			ideal := 1.0 / float64(n+1)
			if share > 2*ideal {
				t.Errorf("joiner captured %.1f%% of keys, want about %.1f%%", 100*share, 100*ideal)
			}
			if captured == 0 {
				t.Error("joiner captured no keys")
			}
		})
	}
}

// TestRingBalance pins the advertised load-imbalance bound: at 128 vnodes
// the busiest shard stays within 15% of the mean across realistic cluster
// sizes.
func TestRingBalance(t *testing.T) {
	const keys = 100000
	for _, n := range []int{3, 5, 8} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			r, err := NewRing(testMembers(n), 128)
			if err != nil {
				t.Fatal(err)
			}
			counts := make(map[string]int, n)
			for _, k := range testKeys(keys, 7) {
				counts[r.Owner(k)]++
			}
			if len(counts) != n {
				t.Fatalf("only %d/%d members own keys", len(counts), n)
			}
			mean := float64(keys) / float64(n)
			for name, c := range counts {
				dev := (float64(c) - mean) / mean
				if dev > 0.15 || dev < -0.15 {
					t.Errorf("member %s holds %d keys, %.1f%% off the mean %.0f (bound 15%%)",
						name, c, 100*dev, mean)
				}
			}
		})
	}
}

// TestRingDeterministicAcrossProcesses: two rings built from the same
// member set — in different input orders, as two separately started
// processes would — agree on every owner. The hash must also be stable
// against the exact values pinned here, so a Go upgrade or refactor that
// changes the hash breaks this test, not a live cluster.
func TestRingDeterministic(t *testing.T) {
	members := testMembers(5)
	a, err := NewRing(members, 128)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := make([]Member, len(members))
	copy(shuffled, members)
	rng := rand.New(rand.NewSource(99))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	b, err := NewRing(shuffled, 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(5000, 3) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("input order changed ownership of %q: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
	// Pinned FNV-1a placements: if these move, separately deployed rsmd
	// versions would disagree on ownership mid-upgrade.
	for key, want := range map[string]string{
		"gain": "s3", "delay": "s3", "power.ring7": "s1", "sram-yield": "s1",
	} {
		if got := a.Owner(key); got != want {
			t.Errorf("Owner(%q) = %s, want pinned %s", key, got, want)
		}
	}
}

func TestRingRejectsBadMembers(t *testing.T) {
	if _, err := NewRing(nil, 128); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]Member{{Name: "a", ID: "x"}, {Name: "a", ID: "y"}}, 8); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := NewRing([]Member{{Name: "a", ID: "x"}, {Name: "b", ID: "x"}}, 8); err == nil {
		t.Error("duplicate id accepted")
	}
	if _, err := NewRing([]Member{{Name: "", ID: "x"}}, 8); err == nil {
		t.Error("empty name accepted")
	}
}
