package cluster

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/registry"
)

// clusterEnvelope builds a valid envelope with a marker coefficient.
func clusterEnvelope(dim int, mark float64) *core.Envelope {
	b := basis.Linear(dim)
	return &core.Envelope{
		Model: &core.Model{M: b.Size(), Support: []int{1}, Coef: []float64{mark}},
		Basis: b.Desc,
		Prov:  core.Provenance{Solver: "OMP", Lambda: 1, Samples: 100},
	}
}

// clusterCheckpoint builds a minimal valid refit checkpoint for name@version.
func clusterCheckpoint(name string, version int) *registry.Checkpoint {
	return &registry.Checkpoint{
		Version:      registry.CheckpointFormatVersion,
		Name:         name,
		ModelVersion: version,
		Solver:       "OMP",
		MaxLambda:    2,
		Points:       [][]float64{{0.5, -1.5}, {2, 0.25}},
		Values:       []float64{1.25, -0.75},
		State: &core.FitCheckpoint{
			Version:   core.CheckpointVersion,
			Solver:    "OMP",
			K:         2,
			M:         3,
			MaxLambda: 2,
			Support:   []int{1},
			Residual:  []float64{0.1, -0.2},
			GTF:       []float64{1},
			CholL:     []float64{1.5},
		},
		CreatedAt: time.Now().UTC(),
	}
}

// quietLog discards cluster log output in tests.
func quietLog() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// syncServer serves the wire half of the sync protocol straight off a
// registry — a stand-in for a peer rsmd node.
func syncServer(t *testing.T, reg *registry.Registry, node string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sync", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(BuildManifest(reg, node))
	})
	mux.HandleFunc("GET /v1/sync/models/{name}/{version}", func(w http.ResponseWriter, r *http.Request) {
		v, err := strconv.Atoi(r.PathValue("version"))
		if err != nil {
			http.Error(w, "bad version", http.StatusBadRequest)
			return
		}
		e, ok := BuildEntry(reg, r.PathValue("name"), v)
		if !ok {
			http.Error(w, "unknown version", http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(e)
	})
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	return hs
}

func TestClusterMembershipAndOwnership(t *testing.T) {
	urls := []string{"http://b.example:9", "http://a.example:9", "http://c.example:9"}
	c, err := New(registry.New(), Config{Self: "http://b.example:9/", Peers: urls})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Names follow sorted-URL order: a→s0, b→s1, c→s2.
	if got := c.SelfName(); got != "s1" {
		t.Fatalf("SelfName = %s, want s1 (sorted-URL order)", got)
	}
	if u, ok := c.NodeURL("s0"); !ok || u != "http://a.example:9" {
		t.Fatalf("NodeURL(s0) = %s, %t", u, ok)
	}
	if _, ok := c.NodeURL("s9"); ok {
		t.Fatal("NodeURL invented a member")
	}
	name, u, local := c.Owner("some-model")
	if u == "" || name == "" {
		t.Fatal("ownerless model")
	}
	if local != (name == "s1") {
		t.Fatalf("local flag inconsistent: %s local=%t", name, local)
	}
	if len(c.Peers()) != 2 {
		t.Fatalf("Peers() = %d, want 2 (self excluded)", len(c.Peers()))
	}

	// A second process handed the same peer set agrees on every owner.
	c2, err := New(registry.New(), Config{Self: "http://a.example:9", Peers: urls})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for _, k := range testKeys(500, 11) {
		n1, _, _ := c.Owner(k)
		n2, _, _ := c2.Owner(k)
		if n1 != n2 {
			t.Fatalf("processes disagree on owner of %q: %s vs %s", k, n1, n2)
		}
	}
}

func TestClusterConfigRejects(t *testing.T) {
	if _, err := New(registry.New(), Config{Peers: nil}); err == nil {
		t.Error("empty peer list accepted")
	}
	if _, err := New(registry.New(), Config{Self: "http://x:1", Peers: []string{"http://y:1"}}); err == nil {
		t.Error("self outside peer list accepted")
	}
	if _, err := New(registry.New(), Config{Peers: []string{"http://y:1", "http://y:1/"}}); err == nil {
		t.Error("duplicate peer accepted")
	}
	if _, err := New(registry.New(), Config{Peers: []string{"not-a-url"}}); err == nil {
		t.Error("relative peer URL accepted")
	}
	if _, err := New(nil, Config{Self: "http://y:1", Peers: []string{"http://y:1"}}); err == nil {
		t.Error("shard node without registry accepted")
	}
	// Proxy-only: no self, no registry needed.
	c, err := New(nil, Config{Peers: []string{"http://y:1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.SelfName() != "" {
		t.Fatalf("proxy-only SelfName = %q", c.SelfName())
	}
	if err := c.SyncOnce(context.Background()); err == nil {
		t.Error("proxy-only SyncOnce should refuse")
	}
}

func TestSyncPullsVersionsAndCheckpoints(t *testing.T) {
	src := registry.New()
	for v := 1; v <= 2; v++ {
		if _, err := src.Put("gain", clusterEnvelope(2, float64(v))); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.PutCheckpoint(clusterCheckpoint("gain", 2)); err != nil {
		t.Fatal(err)
	}
	peer := syncServer(t, src, "s0")

	dst := registry.New()
	c, err := New(dst, Config{
		Self:         "http://self.invalid:1",
		Peers:        []string{peer.URL, "http://self.invalid:1"},
		SyncInterval: -1, // no background loop; the test drives SyncOnce
		Logger:       quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 2; v++ {
		e, ok := dst.GetVersion("gain", v)
		if !ok {
			t.Fatalf("v%d not replicated", v)
		}
		if e.Model().Coef[0] != float64(v) {
			t.Fatalf("v%d coef = %v", v, e.Model().Coef[0])
		}
	}
	// The checkpoint rode along with its model version.
	if ck, ok := dst.Checkpoint("gain", 2); !ok || ck.State == nil {
		t.Fatal("checkpoint did not sync with its model")
	}
	st := c.Stats()
	if st.VersionsPulled != 2 || st.CheckpointsPulled != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// A second round is a no-op: versions are immutable.
	if err := c.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.VersionsPulled != 2 {
		t.Fatalf("idempotent re-sync pulled more versions: %+v", st)
	}
	// Peer health reflects the successful rounds.
	p := c.Peers()[0]
	if !p.Healthy() || p.Status().LagVersions != 0 {
		t.Fatalf("peer status = %+v", p.Status())
	}
}

func TestSyncPropagatesDelete(t *testing.T) {
	src := registry.New()
	if _, err := src.Put("gain", clusterEnvelope(2, 1)); err != nil {
		t.Fatal(err)
	}
	peer := syncServer(t, src, "s0")
	dst := registry.New()
	c, err := New(dst, Config{
		Self:         "http://self.invalid:1",
		Peers:        []string{peer.URL, "http://self.invalid:1"},
		SyncInterval: -1,
		Logger:       quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := dst.Get("gain"); !ok {
		t.Fatal("model not replicated")
	}
	// Delete on the source; the next round must remove the replica and the
	// round after must not resurrect it.
	if err := src.Delete("gain"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := c.SyncOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
		if _, ok := dst.Get("gain"); ok {
			t.Fatalf("replica still serves deleted model after round %d", i+1)
		}
	}
	if st := c.Stats(); st.TombstonesApplied == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSyncTornPayloadRejected covers the partial-sync-crash edge: a peer
// that serves a truncated or corrupt envelope must not leave a torn entry
// in the replica's store — the validating PutReplica path is the same
// quarantine contract the registry applies to local writes.
func TestSyncTornPayloadRejected(t *testing.T) {
	src := registry.New()
	if _, err := src.Put("gain", clusterEnvelope(2, 1)); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/sync", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(BuildManifest(src, "s0"))
	})
	mux.HandleFunc("GET /v1/sync/models/{name}/{version}", func(w http.ResponseWriter, r *http.Request) {
		e, _ := BuildEntry(src, r.PathValue("name"), 1)
		e.Envelope = e.Envelope[:len(e.Envelope)/2] // torn mid-transfer
		json.NewEncoder(w).Encode(e)
	})
	peer := httptest.NewServer(mux)
	defer peer.Close()

	dst := registry.New()
	c, err := New(dst, Config{
		Self:         "http://self.invalid:1",
		Peers:        []string{peer.URL, "http://self.invalid:1"},
		SyncInterval: -1,
		Logger:       quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SyncOnce(context.Background()); err != nil {
		t.Fatal(err) // per-version failures degrade to lag, not round errors
	}
	if _, ok := dst.Get("gain"); ok {
		t.Fatal("torn envelope landed in the replica store")
	}
	p := c.Peers()[0]
	if p.Status().LagVersions != 1 {
		t.Fatalf("torn pull not accounted as lag: %+v", p.Status())
	}
}

func TestSyncMarksDeadPeerDown(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from here on

	dst := registry.New()
	c, err := New(dst, Config{
		Self:         "http://self.invalid:1",
		Peers:        []string{deadURL, "http://self.invalid:1"},
		SyncInterval: -1,
		Logger:       quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SyncOnce(context.Background()); err == nil {
		t.Fatal("sync against a dead peer reported success")
	}
	p := c.Peers()[0]
	if p.Healthy() {
		t.Fatal("dead peer still marked healthy")
	}
	if p.RetryAfter() < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", p.RetryAfter())
	}
	// While backing off, the round skips the peer entirely (no error).
	if err := c.SyncOnce(context.Background()); err != nil {
		t.Fatalf("backoff round should skip the dead peer: %v", err)
	}
	p.MarkSuccess()
	if !p.Healthy() {
		t.Fatal("MarkSuccess did not clear backoff")
	}
}

func TestPeerBackoffGrowsAndCaps(t *testing.T) {
	p := &Peer{Name: "s1", URL: "http://x:1"}
	if !p.Healthy() {
		t.Fatal("fresh peer unhealthy")
	}
	var prev time.Duration
	for i := 0; i < 12; i++ {
		p.MarkFailure()
		d := p.RetryAfter()
		// Allow clock-read jitter between RetryAfter calls.
		if d < prev-50*time.Millisecond {
			t.Fatalf("backoff shrank: %v after %v", d, prev)
		}
		prev = d
	}
	if prev > peerBackoffMax+time.Second {
		t.Fatalf("backoff exceeded cap: %v", prev)
	}
}
