package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// mustOpen opens a journal in dir and fails the test on error.
func mustOpen(t *testing.T, dir string, opts Options) (*Journal, *Replay) {
	t.Helper()
	j, rp, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, rp
}

// appendAll appends records, failing the test on the first error.
func appendAll(t *testing.T, j *Journal, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

func submittedRec(id, kind, idem string) Record {
	return Record{Type: TypeSubmitted, JobID: id, Kind: kind, IdemKey: idem,
		Payload: json.RawMessage(`{"name":"m"}`)}
}

func TestJournalRoundtrip(t *testing.T) {
	dir := t.TempDir()
	j, rp := mustOpen(t, dir, Options{})
	if len(rp.Jobs) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(rp.Jobs))
	}
	appendAll(t, j,
		submittedRec("job-000001", "fit", "key-1"),
		Record{Type: TypeStarted, JobID: "job-000001", Attempt: 1},
		Record{Type: TypeTerminal, JobID: "job-000001", State: "done"},
		submittedRec("job-000002", "pipeline", "key-2"),
		Record{Type: TypeStarted, JobID: "job-000002", Attempt: 1},
		Record{Type: TypeStage, JobID: "job-000002", Stage: "sample"},
		submittedRec("job-000003", "fit", ""),
	)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, rp2 := mustOpen(t, dir, Options{})
	if got := len(rp2.Jobs); got != 3 {
		t.Fatalf("replayed %d jobs, want 3", got)
	}
	j1 := rp2.Jobs["job-000001"]
	if !j1.Terminal || j1.State != "done" || j1.Kind != "fit" {
		t.Fatalf("job-000001 state %+v", j1)
	}
	j2 := rp2.Jobs["job-000002"]
	if j2.Terminal || j2.State != "running" || j2.Attempts != 1 || j2.LastStage != "sample" {
		t.Fatalf("job-000002 state %+v", j2)
	}
	j3 := rp2.Jobs["job-000003"]
	if j3.State != "pending" || j3.Attempts != 0 {
		t.Fatalf("job-000003 state %+v", j3)
	}
	if len(j2.Payload) == 0 || len(j3.Payload) == 0 {
		t.Fatal("live jobs lost their payloads")
	}
	live := rp2.Live()
	if len(live) != 2 || live[0].ID != "job-000002" || live[1].ID != "job-000003" {
		t.Fatalf("live jobs %v", live)
	}
	if rp2.IdemKeys["key-1"] != "job-000001" || rp2.IdemKeys["key-2"] != "job-000002" {
		t.Fatalf("idem keys %v", rp2.IdemKeys)
	}
	if rp2.MaxJobNum != 3 {
		t.Fatalf("MaxJobNum %d, want 3", rp2.MaxJobNum)
	}
	if rp2.BadLines != 0 || rp2.TruncatedBytes != 0 {
		t.Fatalf("clean journal reported corruption: %+v", rp2)
	}
}

// TestJournalCompaction drives enough appends through a tiny segment bound
// to force rotation, and checks old segments are gone while the state
// survives reopen intact.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{MaxSegmentBytes: 512})
	for i := 1; i <= 40; i++ {
		id := fmt.Sprintf("job-%06d", i)
		appendAll(t, j,
			submittedRec(id, "fit", fmt.Sprintf("key-%d", i)),
			Record{Type: TypeStarted, JobID: id, Attempt: 1},
			Record{Type: TypeTerminal, JobID: id, State: "done"},
		)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("after compaction %d segments on disk (%v), want 1", len(segs), segs)
	}
	if segs[0] < 2 {
		t.Fatalf("compaction never rotated: active segment %d", segs[0])
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, rp := mustOpen(t, dir, Options{})
	if len(rp.Jobs) != 40 {
		t.Fatalf("replayed %d jobs after compaction, want 40", len(rp.Jobs))
	}
	for i := 1; i <= 40; i++ {
		js := rp.Jobs[fmt.Sprintf("job-%06d", i)]
		if js == nil || !js.Terminal || js.State != "done" {
			t.Fatalf("job %d corrupted by compaction: %+v", i, js)
		}
	}
}

// TestJournalTerminalPruning bounds terminal retention: beyond MaxTerminal
// the oldest terminal jobs are dropped, their idempotency keys freed, and a
// late duplicate record cannot resurrect them.
func TestJournalTerminalPruning(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{MaxTerminal: 2})
	for i := 1; i <= 5; i++ {
		id := fmt.Sprintf("job-%06d", i)
		appendAll(t, j,
			submittedRec(id, "fit", fmt.Sprintf("key-%d", i)),
			Record{Type: TypeTerminal, JobID: id, State: "done"},
		)
	}
	// A duplicate terminal record for a pruned job must not bring it back.
	appendAll(t, j, Record{Type: TypeTerminal, JobID: "job-000001", State: "failed"})
	j.mu.Lock()
	st := j.state
	if len(st.terminalOrder) != 2 {
		j.mu.Unlock()
		t.Fatalf("retained %d terminal jobs, want 2", len(st.terminalOrder))
	}
	if _, ok := st.Jobs["job-000001"]; ok {
		j.mu.Unlock()
		t.Fatal("pruned job resurrected by duplicate terminal record")
	}
	if _, ok := st.IdemKeys["key-1"]; ok {
		j.mu.Unlock()
		t.Fatal("pruned job's idempotency key not freed")
	}
	j.mu.Unlock()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rp := mustOpen(t, dir, Options{MaxTerminal: 2})
	if _, ok := rp.Jobs["job-000001"]; ok {
		t.Fatal("pruned job reappeared after reopen")
	}
	if js := rp.Jobs["job-000005"]; js == nil || !js.Terminal {
		t.Fatalf("newest terminal job lost: %+v", js)
	}
}

// TestJournalTruncatedTail simulates a torn write (power loss mid-append):
// the partial final line is truncated off at open and appends continue on
// the cleaned file.
func TestJournalTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	appendAll(t, j,
		submittedRec("job-000001", "fit", ""),
		Record{Type: TypeTerminal, JobID: "job-000001", State: "done"},
	)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"submitted","job":"job-0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, rp := mustOpen(t, dir, Options{})
	if rp.TruncatedBytes == 0 {
		t.Fatal("torn tail not detected")
	}
	if len(rp.Jobs) != 1 || !rp.Jobs["job-000001"].Terminal {
		t.Fatalf("state after truncation: %+v", rp.Jobs)
	}
	// The file is clean again: new appends must replay correctly.
	appendAll(t, j2, submittedRec("job-000002", "fit", ""))
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rp3 := mustOpen(t, dir, Options{})
	if rp3.TruncatedBytes != 0 || rp3.BadLines != 0 {
		t.Fatalf("corruption after clean append: %+v", rp3)
	}
	if len(rp3.Jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(rp3.Jobs))
	}
}

// TestJournalMidFileGarbage: corrupt lines with good records after them are
// skipped and counted, not fatal, and do not lose the good records.
func TestJournalMidFileGarbage(t *testing.T) {
	dir := t.TempDir()
	lines := []string{
		`{"type":"submitted","job":"job-000001","kind":"fit"}`,
		`NOT JSON AT ALL`,
		`{"type":"submitted","job":""}`, // parseable but invalid: no job ID
		`{"type":"started","job":"job-000001","attempt":1}`,
		`{"type":"terminal","job":"job-000001","state":"done"}`,
	}
	if err := os.WriteFile(filepath.Join(dir, segName(1)),
		[]byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rp := mustOpen(t, dir, Options{})
	if rp.BadLines != 2 {
		t.Fatalf("BadLines = %d, want 2", rp.BadLines)
	}
	js := rp.Jobs["job-000001"]
	if js == nil || !js.Terminal || js.State != "done" || js.Attempts != 1 {
		t.Fatalf("records after garbage lost: %+v", js)
	}
}

// TestJournalDuplicateTerminal: the first terminal record wins forever —
// later conflicting terminals and post-terminal lifecycle records are
// ignored.
func TestJournalDuplicateTerminal(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	appendAll(t, j,
		submittedRec("job-000001", "fit", ""),
		Record{Type: TypeTerminal, JobID: "job-000001", State: "canceled", Error: "client"},
		Record{Type: TypeTerminal, JobID: "job-000001", State: "done"},
		Record{Type: TypeStarted, JobID: "job-000001", Attempt: 7},
		Record{Type: TypeStage, JobID: "job-000001", Stage: "sample"},
	)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rp := mustOpen(t, dir, Options{})
	js := rp.Jobs["job-000001"]
	if js.State != "canceled" || js.Error != "client" {
		t.Fatalf("terminal not first-wins: %+v", js)
	}
	if js.LastStage != "" {
		t.Fatalf("post-terminal stage applied: %+v", js)
	}
	if len(rp.Live()) != 0 {
		t.Fatal("terminal job resurrected into the live set")
	}
}

// TestJournalDegradedRecovers: a failed append (disk full, injected) flips
// the degraded flag; the first successful append clears it and the failed
// record is not half-written.
func TestJournalDegradedRecovers(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	appendAll(t, j, submittedRec("job-000001", "fit", ""))

	if err := faultinject.Configure("journal.append=error:disk full#1"); err != nil {
		t.Fatal(err)
	}
	err := j.Append(submittedRec("job-000002", "fit", ""))
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("append under fault: %v", err)
	}
	if !j.Degraded() {
		t.Fatal("failed append did not degrade the journal")
	}
	// Fault exhausted: the next append succeeds and clears the flag.
	appendAll(t, j, submittedRec("job-000003", "fit", ""))
	if j.Degraded() {
		t.Fatal("successful append did not clear degraded")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rp := mustOpen(t, dir, Options{})
	if _, ok := rp.Jobs["job-000002"]; ok {
		t.Fatal("failed append left a record behind")
	}
	if len(rp.Jobs) != 2 || rp.BadLines != 0 || rp.TruncatedBytes != 0 {
		t.Fatalf("journal dirty after degraded episode: %+v", rp)
	}
}

// TestJournalAppendAfterClose: the contract is a clean error, not a panic
// or a write to a closed fd.
func TestJournalAppendAfterClose(t *testing.T) {
	j, _ := mustOpen(t, t.TempDir(), Options{})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(submittedRec("job-000001", "fit", "")); err == nil {
		t.Fatal("append after close succeeded")
	}
}

// FuzzReplayJournal hammers the replay parser with arbitrary segment bytes.
// Whatever the corruption — truncated tails, interleaved garbage, duplicate
// or conflicting terminal records — Open must not panic, and the invariants
// must hold: terminal jobs never appear in the live set, and reopening the
// journal after a clean append yields a state at least as terminal as the
// first replay (no terminal job resurrected).
func FuzzReplayJournal(f *testing.F) {
	good := `{"type":"submitted","job":"job-000001","kind":"fit","idem_key":"k1","payload":{"name":"m"}}
{"type":"started","job":"job-000001","attempt":1}
{"type":"terminal","job":"job-000001","state":"done"}
{"type":"submitted","job":"job-000002","kind":"pipeline"}
{"type":"stage","job":"job-000002","stage":"sample"}
`
	f.Add([]byte(good))
	f.Add([]byte(good[:len(good)-20])) // torn tail
	f.Add([]byte("garbage\n" + good + "{\"type\":\"terminal\",\"job\":\"job-000001\",\"state\":\"failed\"}\n"))
	f.Add([]byte(`{"type":"terminal","job":"job-000001","state":"done"}` + "\n" +
		`{"type":"submitted","job":"job-000001","kind":"fit"}` + "\n" +
		`{"type":"started","job":"job-000001","attempt":3}` + "\n"))
	f.Add([]byte("\x00\x01\x02\nnot json\n{\"type\":\"submitted\"}\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, rp, err := Open(dir, Options{MaxTerminal: 4})
		if err != nil {
			// I/O-level failure is acceptable; parser-level corruption is not
			// supposed to error out.
			t.Skipf("open: %v", err)
		}
		terminal := map[string]string{}
		for id, js := range rp.Jobs {
			if js.ID != id {
				t.Fatalf("job map key %q holds ID %q", id, js.ID)
			}
			if js.Terminal {
				terminal[id] = js.State
			}
		}
		for _, js := range rp.Live() {
			if js.Terminal {
				t.Fatalf("terminal job %s in live set", js.ID)
			}
		}
		// A clean append after corruption must work, and reopening must not
		// resurrect any terminal job.
		if err := j.Append(Record{Type: TypeSubmitted, JobID: "job-999999", Kind: "fit"}); err != nil {
			t.Fatalf("append after corrupt replay: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		_, rp2, err := Open(dir, Options{MaxTerminal: 4})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		for id, state := range terminal {
			js := rp2.Jobs[id]
			if js == nil {
				continue // pruned by the retention bound — allowed
			}
			if !js.Terminal || js.State != state {
				t.Fatalf("job %s was terminal %q, reopened as %q (terminal=%v)",
					id, state, js.State, js.Terminal)
			}
		}
		if js := rp2.Jobs["job-999999"]; js == nil && rp2.Jobs != nil {
			if _, pruned := rp2.pruned["job-999999"]; !pruned {
				t.Fatal("appended record lost across reopen")
			}
		}
	})
}
