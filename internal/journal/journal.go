// Package journal is rsmd's durable job journal: an append-only,
// fsync-on-record JSONL write-ahead log of job lifecycle events. Every
// submitted / started / stage-completed / terminal transition of an async
// fit or pipeline job is one JSON line in the current segment file, synced
// to disk before the caller proceeds, so a crash never loses an
// acknowledged job.
//
// On open the journal replays every segment in order and hands the caller
// a Replay: the merged per-job state (live jobs to re-enqueue, terminal
// jobs to keep queryable) plus the idempotency-key dedup map. The merge is
// idempotent and terminal-first-wins — duplicate records only fill gaps,
// and nothing ever resurrects a terminal job — which makes crash-mid-
// compaction safe and lets fuzzing hammer the parser with garbage.
//
// Segments rotate by compaction: when the current segment outgrows
// Options.MaxSegmentBytes, the in-memory state is snapshotted into a fresh
// segment (temp file → fsync → rename, the registry's crash-safe idiom)
// and older segments are deleted. Terminal jobs beyond Options.MaxTerminal
// are pruned oldest-first at that point, bounding disk and replay cost.
//
// A torn write at the tail of the newest segment (power loss mid-append)
// is detected at open and truncated away; corrupt lines in the middle of a
// segment are skipped and counted. Append failures (disk full — also
// reachable through the "journal.append" faultinject point) flip the
// journal into a degraded state the serving layer surfaces; the first
// successful append clears it.
package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
)

// Record types, in lifecycle order.
const (
	// TypeSubmitted carries the job's identity and full request payload.
	TypeSubmitted = "submitted"
	// TypeStarted marks a worker pickup; Attempt counts total starts, so a
	// replayed job's prior crash count is max(Attempt) across records.
	TypeStarted = "started"
	// TypeStage marks one completed pipeline stage (progress breadcrumb).
	TypeStage = "stage"
	// TypeTerminal is the final transition; State is done | failed |
	// canceled | timed_out. First terminal record wins, forever.
	TypeTerminal = "terminal"
)

// Record is one journal line. Only Type and Job are universal; the other
// fields are populated per type (see the type constants).
type Record struct {
	Type      string          `json:"type"`
	Time      time.Time       `json:"time,omitempty"`
	JobID     string          `json:"job"`
	Kind      string          `json:"kind,omitempty"`       // submitted: fit | pipeline
	RequestID string          `json:"request_id,omitempty"` // submitted: trace ID
	IdemKey   string          `json:"idem_key,omitempty"`   // submitted: Idempotency-Key
	Payload   json.RawMessage `json:"payload,omitempty"`    // submitted: the request body
	Attempt   int             `json:"attempt,omitempty"`    // started: cumulative start count
	Stage     string          `json:"stage,omitempty"`      // stage: pipeline stage name
	State     string          `json:"state,omitempty"`      // terminal: final job state
	Error     string          `json:"error,omitempty"`      // terminal: failure message
}

// valid reports whether a parsed line is a usable record; anything else is
// counted as corrupt and skipped.
func (r *Record) valid() bool {
	if r.JobID == "" {
		return false
	}
	switch r.Type {
	case TypeSubmitted, TypeStarted, TypeStage, TypeTerminal:
		return true
	}
	return false
}

// JobState is the merged replay state of one job.
type JobState struct {
	ID        string
	Kind      string
	RequestID string
	IdemKey   string
	Payload   json.RawMessage
	// State is the journaled lifecycle state: "pending" until a started
	// record, "running" until terminal, then the terminal state verbatim.
	State    string
	Terminal bool
	Error    string
	// Attempts is the number of times a worker started this job. A live job
	// with Attempts > 0 was running at crash time.
	Attempts  int
	LastStage string
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
}

// Replay is the journal's merged state: what Open recovered from disk, and
// what the journal keeps current in memory for compaction. The maps are
// owned by the journal once Open returns — callers must consume them
// before issuing the first Append.
type Replay struct {
	// Jobs maps job ID → merged state; Order preserves first-seen order
	// (IDs pruned by the terminal-retention bound stay in Order but are
	// absent from Jobs).
	Jobs  map[string]*JobState
	Order []string
	// IdemKeys maps Idempotency-Key → job ID for dedup across restarts.
	IdemKeys map[string]string
	// MaxJobNum is the highest numeric suffix seen across job-%06d IDs, so
	// the queue's ID sequence survives restarts without collisions.
	MaxJobNum int
	// Records counts successfully applied records; BadLines counts corrupt
	// lines skipped mid-segment; TruncatedBytes counts torn-tail bytes
	// dropped from the newest segment.
	Records        int
	BadLines       int
	TruncatedBytes int64

	// terminalOrder tracks terminal job IDs oldest-first for pruning;
	// pruned remembers retired IDs so late duplicates cannot resurrect them.
	terminalOrder []string
	pruned        map[string]struct{}
}

func newReplay() *Replay {
	return &Replay{
		Jobs:     make(map[string]*JobState),
		IdemKeys: make(map[string]string),
		pruned:   make(map[string]struct{}),
	}
}

// Live returns the replayed jobs that were pending or running at crash
// time, in submission order.
func (rp *Replay) Live() []*JobState {
	var live []*JobState
	for _, id := range rp.Order {
		if js, ok := rp.Jobs[id]; ok && !js.Terminal {
			live = append(live, js)
		}
	}
	return live
}

// apply merges one record into the replay state. It is the single merge
// rule for both disk replay and live appends, and must stay idempotent:
// duplicates only fill missing fields, terminal is first-wins, and no
// record ever takes a job out of a terminal state.
func (rp *Replay) apply(rec *Record, maxTerminal int) {
	js := rp.Jobs[rec.JobID]
	if js == nil {
		if _, retired := rp.pruned[rec.JobID]; retired {
			// The job was already retired by the terminal-retention bound;
			// late duplicates of its records must not resurrect it.
			return
		}
		js = &JobState{ID: rec.JobID, State: "pending", Submitted: rec.Time}
		rp.Jobs[rec.JobID] = js
		rp.Order = append(rp.Order, rec.JobID)
	}
	rp.Records++
	if n, ok := jobNum(rec.JobID); ok && n > rp.MaxJobNum {
		rp.MaxJobNum = n
	}
	switch rec.Type {
	case TypeSubmitted:
		if js.Kind == "" {
			js.Kind = rec.Kind
		}
		if js.RequestID == "" {
			js.RequestID = rec.RequestID
		}
		if js.IdemKey == "" {
			js.IdemKey = rec.IdemKey
		}
		if len(js.Payload) == 0 {
			js.Payload = rec.Payload
		}
		if js.Submitted.IsZero() {
			js.Submitted = rec.Time
		}
		if rec.IdemKey != "" {
			if _, taken := rp.IdemKeys[rec.IdemKey]; !taken {
				rp.IdemKeys[rec.IdemKey] = rec.JobID
			}
		}
	case TypeStarted:
		if !js.Terminal {
			js.State = "running"
		}
		if rec.Attempt > js.Attempts {
			js.Attempts = rec.Attempt
		}
		if js.Started.IsZero() {
			js.Started = rec.Time
		}
	case TypeStage:
		if !js.Terminal {
			js.LastStage = rec.Stage
		}
	case TypeTerminal:
		if js.Terminal {
			return // first terminal record wins
		}
		js.Terminal = true
		js.State = rec.State
		js.Error = rec.Error
		js.Finished = rec.Time
		rp.terminalOrder = append(rp.terminalOrder, rec.JobID)
		rp.pruneTerminal(maxTerminal)
	}
}

// pruneTerminal drops the oldest retained terminal jobs beyond the bound,
// freeing their idempotency keys with them.
func (rp *Replay) pruneTerminal(maxTerminal int) {
	if maxTerminal <= 0 {
		return
	}
	for len(rp.terminalOrder) > maxTerminal {
		id := rp.terminalOrder[0]
		rp.terminalOrder = rp.terminalOrder[1:]
		if js, ok := rp.Jobs[id]; ok {
			if js.IdemKey != "" && rp.IdemKeys[js.IdemKey] == id {
				delete(rp.IdemKeys, js.IdemKey)
			}
			delete(rp.Jobs, id)
		}
		rp.pruned[id] = struct{}{}
	}
}

// jobNum parses the numeric suffix of a job-%06d ID.
func jobNum(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Options tunes the journal; zero values select the documented defaults.
type Options struct {
	// MaxSegmentBytes triggers compaction when the current segment outgrows
	// it (default 4 MiB).
	MaxSegmentBytes int64
	// MaxTerminal bounds how many terminal jobs the journal retains for
	// post-restart queryability and idempotency dedup (default 512); older
	// ones are pruned at compaction time.
	MaxTerminal int
	// Logger receives replay/compaction diagnostics (default: discard).
	Logger *slog.Logger
	// OnAppend observes every append attempt with its fsync-inclusive
	// latency and outcome — the rsmd_journal_* metrics hook. Called with
	// the journal lock held; it must not call back into the journal.
	OnAppend func(d time.Duration, err error)
}

func (o Options) withDefaults() Options {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 4 << 20
	}
	if o.MaxTerminal <= 0 {
		o.MaxTerminal = 512
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return o
}

// Journal is the open write-ahead log. All methods are safe for concurrent
// use; Append serializes writers so records land whole.
type Journal struct {
	opts Options
	dir  string

	mu     sync.Mutex
	f      *os.File
	seg    int   // current segment number
	size   int64 // current segment size
	state  *Replay
	closed bool

	degraded atomic.Bool
}

const segPrefix = "seg-"

func segName(n int) string { return fmt.Sprintf("%s%06d.jsonl", segPrefix, n) }

// Open opens (or creates) the journal in dir, replays every segment and
// returns the merged state. The returned Replay shares storage with the
// journal's in-memory state: consume it before the first Append.
func Open(dir string, opts Options) (*Journal, *Replay, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{opts: opts, dir: dir, state: newReplay()}
	for i, n := range segs {
		if err := j.replaySegment(n, i == len(segs)-1); err != nil {
			return nil, nil, err
		}
	}
	if len(segs) == 0 {
		j.seg = 1
	} else {
		j.seg = segs[len(segs)-1]
	}
	path := filepath.Join(dir, segName(j.seg))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j.f, j.size = f, st.Size()
	if j.state.BadLines > 0 || j.state.TruncatedBytes > 0 {
		opts.Logger.Warn("journal: recovered past corruption",
			"bad_lines", j.state.BadLines, "truncated_bytes", j.state.TruncatedBytes)
	}
	return j, j.state, nil
}

// listSegments returns the segment numbers present in dir, ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var segs []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, ".jsonl") {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), ".jsonl")
		n, err := strconv.Atoi(num)
		if err != nil || n < 1 {
			continue
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	return segs, nil
}

// replaySegment merges one segment into the journal state. On the final
// (active) segment, a corrupt tail — a torn write from the crash — is
// truncated off so subsequent appends extend a clean file; corrupt lines
// with good records after them are skipped and counted but left on disk.
func (j *Journal) replaySegment(n int, final bool) error {
	path := filepath.Join(j.dir, segName(n))
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	lastGoodEnd := 0 // offset just past the last successfully applied line
	for off := 0; off < len(data); {
		nl := -1
		for i := off; i < len(data); i++ {
			if data[i] == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			break // unterminated tail: torn write
		}
		line := data[off:nl]
		off = nl + 1
		if len(line) == 0 {
			lastGoodEnd = off
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || !rec.valid() {
			j.state.BadLines++
			continue
		}
		j.state.apply(&rec, j.opts.MaxTerminal)
		lastGoodEnd = off
	}
	if final && lastGoodEnd < len(data) {
		j.state.TruncatedBytes += int64(len(data) - lastGoodEnd)
		if err := os.Truncate(path, int64(lastGoodEnd)); err != nil {
			return fmt.Errorf("journal: truncate corrupt tail: %w", err)
		}
		j.opts.Logger.Warn("journal: truncated corrupt segment tail",
			"segment", segName(n), "bytes", len(data)-lastGoodEnd)
		if err := syncDir(j.dir); err != nil {
			return err
		}
	}
	return nil
}

// Append durably logs one record: marshal, write, fsync — in that order,
// under the journal lock, before returning. A zero Time is stamped with
// the current time. On failure the journal flips degraded (and tries to
// trim the partial write so the segment stays parseable); the next
// successful append clears it.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	start := time.Now()
	err := j.appendLocked(&rec)
	if j.opts.OnAppend != nil {
		j.opts.OnAppend(time.Since(start), err)
	}
	if err != nil {
		j.degraded.Store(true)
		return err
	}
	j.degraded.Store(false)
	j.state.apply(&rec, j.opts.MaxTerminal)
	if j.size > j.opts.MaxSegmentBytes {
		if cerr := j.compactLocked(); cerr != nil {
			// Compaction is an optimization: appends continue on the old
			// segment, so log and move on.
			j.opts.Logger.Warn("journal: compaction failed", "error", cerr)
		}
	}
	return nil
}

func (j *Journal) appendLocked(rec *Record) error {
	if err := faultinject.Fire("journal.append"); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encode record: %w", err)
	}
	line = append(line, '\n')
	n, err := j.f.Write(line)
	if err != nil {
		// A short write (disk full) leaves a torn line; trim it so later
		// appends extend a parseable file rather than burying garbage
		// mid-segment. (The file is opened O_APPEND, so the next write lands
		// at the truncated end.)
		if n > 0 {
			if terr := j.f.Truncate(j.size); terr != nil {
				j.opts.Logger.Warn("journal: trim after short write failed", "error", terr)
			}
		}
		return fmt.Errorf("journal: write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.size += int64(n)
	return nil
}

// compactLocked rotates to a fresh segment holding a snapshot of the
// in-memory state, then deletes the older segments. The snapshot is
// written temp → fsync → rename, and the replay merge is idempotent, so a
// crash at any point leaves a recoverable journal.
func (j *Journal) compactLocked() error {
	next := j.seg + 1
	tmp, err := os.CreateTemp(j.dir, segPrefix+"compact-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	size, err := j.writeSnapshot(tmp)
	if err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	path := filepath.Join(j.dir, segName(next))
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if err := syncDir(j.dir); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f.Close()
	old := j.seg
	j.f, j.seg, j.size = f, next, size
	// Drop pruned IDs from Order now that the snapshot no longer carries
	// them, keeping replay state and disk in lockstep.
	live := j.state.Order[:0]
	for _, id := range j.state.Order {
		if _, ok := j.state.Jobs[id]; ok {
			live = append(live, id)
		}
	}
	j.state.Order = live
	for n := old; n >= 1; n-- {
		p := filepath.Join(j.dir, segName(n))
		if err := os.Remove(p); err != nil {
			if os.IsNotExist(err) {
				break
			}
			j.opts.Logger.Warn("journal: removing old segment failed", "segment", segName(n), "error", err)
		}
	}
	j.opts.Logger.Info("journal: compacted", "segment", segName(next),
		"jobs", len(j.state.Jobs), "bytes", size)
	return nil
}

// writeSnapshot serializes the in-memory state as a minimal record stream:
// live jobs keep their payload (they must be re-runnable), terminal jobs
// keep only identity + outcome.
func (j *Journal) writeSnapshot(f *os.File) (int64, error) {
	var size int64
	emit := func(rec Record) error {
		line, err := json.Marshal(&rec)
		if err != nil {
			return err
		}
		line = append(line, '\n')
		n, err := f.Write(line)
		size += int64(n)
		return err
	}
	for _, id := range j.state.Order {
		js, ok := j.state.Jobs[id]
		if !ok {
			continue // pruned
		}
		sub := Record{Type: TypeSubmitted, JobID: js.ID, Kind: js.Kind,
			RequestID: js.RequestID, IdemKey: js.IdemKey, Time: js.Submitted}
		if !js.Terminal {
			sub.Payload = js.Payload
		}
		if err := emit(sub); err != nil {
			return size, err
		}
		if js.Attempts > 0 {
			if err := emit(Record{Type: TypeStarted, JobID: js.ID, Attempt: js.Attempts, Time: js.Started}); err != nil {
				return size, err
			}
		}
		if js.LastStage != "" && !js.Terminal {
			if err := emit(Record{Type: TypeStage, JobID: js.ID, Stage: js.LastStage, Time: js.Started}); err != nil {
				return size, err
			}
		}
		if js.Terminal {
			if err := emit(Record{Type: TypeTerminal, JobID: js.ID, State: js.State, Error: js.Error, Time: js.Finished}); err != nil {
				return size, err
			}
		}
	}
	return size, nil
}

// Degraded reports whether the most recent append failed — the disk-
// pressure signal the serving layer keys 503s and the
// rsmd_journal_degraded gauge off.
func (j *Journal) Degraded() bool { return j.degraded.Load() }

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Close syncs and closes the active segment. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	return j.f.Close()
}

// syncDir fsyncs a directory so a rename/truncate inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	return nil
}
