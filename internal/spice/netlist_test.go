package spice

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestParseValue(t *testing.T) {
	cases := map[string]float64{
		"1k":    1e3,
		"2.2u":  2.2e-6,
		"10meg": 1e7,
		"5n":    5e-9,
		"0.1":   0.1,
		"1e-9":  1e-9,
		"3p":    3e-12,
		"4f":    4e-15,
		"2G":    2e9,
		"7m":    7e-3,
		"1T":    1e12,
	}
	for in, want := range cases {
		got, err := ParseValue(in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", in, err)
			continue
		}
		if math.Abs(got-want) > 1e-12*math.Abs(want) {
			t.Errorf("ParseValue(%q) = %g, want %g", in, got, want)
		}
	}
	for _, bad := range []string{"", "abc", "1kk"} {
		if _, err := ParseValue(bad); err == nil {
			t.Errorf("ParseValue(%q) should fail", bad)
		}
	}
}

func TestParseNetlistDivider(t *testing.T) {
	deck := `* voltage divider
V1 in 0 DC 10
R1 in mid 1k
R2 mid 0 3k
.dc
.print mid
.end
`
	nl, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := nl.Run(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "V(mid) = 7.5") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func TestParseNetlistContinuationAndComments(t *testing.T) {
	deck := `V1 in 0
+ DC 5
* a comment
R1 in 0 1k
.dc
`
	nl, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := nl.Circuit.DC()
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.Voltage(nl.Circuit.Node("in")); math.Abs(v-5) > 1e-6 {
		t.Errorf("V(in) = %g, want 5", v)
	}
}

func TestParseNetlistTran(t *testing.T) {
	deck := `V1 in 0 PULSE(0 1 0 1n 1n 1 0)
R1 in out 1k
C1 out 0 1u
.tran 5u 3m
.print out
`
	nl, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := nl.Run(&out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 100 {
		t.Fatalf("transient output too short: %d lines", len(lines))
	}
	// Final value ≈ 1 − e^{−3} ≈ 0.95.
	last := lines[len(lines)-1]
	parts := strings.Split(last, ",")
	var v float64
	if _, err := fmtSscan(parts[1], &v); err != nil {
		t.Fatalf("parse %q: %v", last, err)
	}
	if math.Abs(v-(1-math.Exp(-3))) > 0.01 {
		t.Errorf("v(3ms) = %g, want %g", v, 1-math.Exp(-3))
	}
}

func TestParseNetlistAC(t *testing.T) {
	deck := `V1 in 0 DC 0
R1 in out 1k
C1 out 0 159.155n
.ac V1 1 dec 10 100 10k
.print out
`
	nl, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := nl.Run(&out); err != nil {
		t.Fatal(err)
	}
	// The 1 kHz row must read ≈ −3.01 dB.
	found := false
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.HasPrefix(line, "1000,") || strings.HasPrefix(line, "1000.") {
			parts := strings.Split(line, ",")
			var db float64
			if _, err := fmtSscan(parts[1], &db); err != nil {
				t.Fatal(err)
			}
			if math.Abs(db+3.0103) > 0.05 {
				t.Errorf("|H(1kHz)| = %g dB, want −3.01", db)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("1 kHz row missing:\n%s", out.String())
	}
}

func TestParseNetlistMOSInverter(t *testing.T) {
	deck := `VDD vdd 0 DC 1.2
VIN in 0 DC 0
MP out in vdd PMOS VT=0.4 BETA=250u LAMBDA=0.05
MN out in 0 NMOS VT=0.4 BETA=250u LAMBDA=0.05
RL out 0 1G
.dc
.print out
`
	nl, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := nl.Circuit.DC()
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.Voltage(nl.Circuit.Node("out")); v < 1.1 {
		t.Errorf("inverter out = %g for low input, want ≈ 1.2", v)
	}
}

func TestParseNetlistNodeset(t *testing.T) {
	deck := `V1 a 0 DC 1
R1 a b 1k
R2 b 0 1k
.nodeset V(b)=0.5
.dc
`
	nl, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if nl.Circuit.nodesets == nil {
		t.Fatal("nodeset not recorded")
	}
	if v := nl.Circuit.nodesets[nl.Circuit.Node("b")]; v != 0.5 {
		t.Errorf("nodeset = %g, want 0.5", v)
	}
}

func TestParseNetlistErrors(t *testing.T) {
	cases := map[string]string{
		"unknown card":     "X1 a b c\n",
		"short resistor":   "R1 a b\n",
		"bad value":        "R1 a b xyz\n",
		"bad mos model":    "M1 d g s FOO VT=0.4 BETA=1m\n",
		"mos missing VT":   "M1 d g s NMOS BETA=1m\n",
		"bad tran":         "R1 a 0 1k\n.tran 1n\n",
		"bad ac":           "R1 a 0 1k\n.ac V1 1 oct 10 1 10\n",
		"bad directive":    "R1 a 0 1k\n.foo\n",
		"bad nodeset":      "R1 a 0 1k\n.nodeset b=1\n",
		"vccs wrong arity": "G1 a 0 b\n",
		"zero resistor":    "R1 a b 0\n",
		"negative cap":     "C1 a b -1n\n",
		"zero inductor":    "L1 a b 0\n",
		"zero mos beta":    "M1 d g s NMOS VT=0.4 BETA=0\n",
	}
	for name, deck := range cases {
		if _, err := ParseNetlist(strings.NewReader(deck)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

// TestParseNetlistErrorLineNumbers pins the parse-error contract: the
// reported line number is the card's 1-based position in the source deck,
// not its index after comment stripping and continuation merging.
func TestParseNetlistErrorLineNumbers(t *testing.T) {
	cases := []struct {
		name string
		deck string
		want string
	}{
		{
			name: "first line",
			deck: "R1 a b xyz\n",
			want: "line 1 (R1)",
		},
		{
			name: "comments and blanks do not shift the count",
			deck: "* header comment\n\nV1 in 0 DC 1\n* another comment\nR1 in out oops\n",
			want: "line 5 (R1)",
		},
		{
			name: "continuation errors report the base line",
			deck: "* c\nV1 in 0\n+ PULSE(0 1 0 1n 1n)\nR1 in 0 1k\n",
			want: "line 2 (V1)",
		},
		{
			name: "directive errors carry line numbers too",
			deck: "R1 a 0 1k\n* x\n.tran 1n\n",
			want: "line 3 (.tran)",
		},
		{
			name: "non-positive element values name the source line",
			deck: "* deck\nV1 in 0 DC 1\nR1 in out 0\n",
			want: "line 3 (R1)",
		},
	}
	for _, tc := range cases {
		_, err := ParseNetlist(strings.NewReader(tc.deck))
		if err == nil {
			t.Errorf("%s: expected parse error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestNetlistCardsRecorded(t *testing.T) {
	deck := `* divider with a transistor load
V1 in 0 DC 10
R1 in mid 1k
M1 mid g 0 NMOS VT=0.4 BETA=250u
.dc
`
	nl, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Cards) != 3 {
		t.Fatalf("got %d cards, want 3", len(nl.Cards))
	}
	r := nl.Cards[1]
	if r.Kind != 'R' || r.Name != "R1" || r.Value != 1000 || r.Line != 3 {
		t.Errorf("R1 card = %+v", r)
	}
	m := nl.Cards[2]
	if m.Kind != 'M' || m.MOS.VT != 0.4 || m.Line != 4 {
		t.Errorf("M1 card = %+v", m)
	}
}

func TestBuildCircuitPerturbed(t *testing.T) {
	deck := `V1 in 0 DC 10
R1 in mid 1k
R2 mid 0 1k
.dc
`
	nl, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	// Unperturbed rebuild matches the original circuit's solution.
	c0, err := nl.BuildCircuit(nil)
	if err != nil {
		t.Fatal(err)
	}
	sol0, err := c0.DC()
	if err != nil {
		t.Fatal(err)
	}
	if v := sol0.Voltage(c0.Node("mid")); math.Abs(v-5) > 1e-6 {
		t.Errorf("nominal V(mid) = %g, want 5", v)
	}
	// Scaling R2 by 3× moves the divider; the original netlist is untouched.
	c1, err := nl.BuildCircuit(func(_ int, card *DeviceCard) {
		if card.Name == "R2" {
			card.Value *= 3
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	sol1, err := c1.DC()
	if err != nil {
		t.Fatal(err)
	}
	if v := sol1.Voltage(c1.Node("mid")); math.Abs(v-7.5) > 1e-6 {
		t.Errorf("perturbed V(mid) = %g, want 7.5", v)
	}
	if nl.Cards[2].Value != 1000 {
		t.Errorf("BuildCircuit mutated the netlist: R2 = %g", nl.Cards[2].Value)
	}
	// A perturbation that drives an element non-positive errors, not panics.
	if _, err := nl.BuildCircuit(func(_ int, card *DeviceCard) {
		card.Value = -1
	}); err == nil {
		t.Error("non-positive perturbed value must error")
	}
}

func TestBuildCircuitKeepsNodesets(t *testing.T) {
	deck := "V1 a 0 DC 1\nR1 a b 1k\nR2 b 0 1k\n.nodeset V(b)=0.5\n.dc\n"
	nl, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	c, err := nl.BuildCircuit(nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := c.nodesets[c.Node("b")]; v != 0.5 {
		t.Errorf("rebuilt nodeset = %g, want 0.5", v)
	}
}

// fmtSscan is a tiny strconv wrapper so tests read naturally.
func fmtSscan(s string, v *float64) (int, error) {
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, err
	}
	*v = f
	return 1, nil
}

func TestParseWaveformPlainValue(t *testing.T) {
	deck := "V1 a 0 5\nR1 a 0 1k\n.dc\n"
	nl, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := nl.Circuit.DC()
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.Voltage(nl.Circuit.Node("a")); math.Abs(v-5) > 1e-6 {
		t.Errorf("V(a) = %g, want 5", v)
	}
}

func TestParseNetlistDiodeAndLCards(t *testing.T) {
	deck := `V1 in 0 DC 5
R1 in d 1k
D1 d 0 IS=1e-12
L1 in x 1m
R2 x 0 1k
.dc
`
	nl, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := nl.Circuit.DC()
	if err != nil {
		t.Fatal(err)
	}
	vd := sol.Voltage(nl.Circuit.Node("d"))
	if vd < 0.3 || vd > 0.8 {
		t.Errorf("diode drop %g outside [0.3, 0.8]", vd)
	}
	// Inductor is a DC short: V(x) = 5.
	if vx := sol.Voltage(nl.Circuit.Node("x")); math.Abs(vx-5) > 1e-6 {
		t.Errorf("V(x) = %g, want 5", vx)
	}
}

func TestParseNetlistTranTrapOption(t *testing.T) {
	deck := "V1 in 0 DC 1\nR1 in out 1k\nC1 out 0 1u\n.tran 10u 1m trap\n.print out\n"
	nl, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if nl.Analyses[0].Method != Trapezoidal {
		t.Error("trap option not parsed")
	}
	var out strings.Builder
	if err := nl.Run(&out); err != nil {
		t.Fatal(err)
	}
	deck = "V1 in 0 DC 1\nR1 in 0 1k\n.tran 10u 1m bogus\n"
	if _, err := ParseNetlist(strings.NewReader(deck)); err == nil {
		t.Error("bad .tran method must error")
	}
}

func TestParseNetlistVCCSCard(t *testing.T) {
	deck := `V1 in 0 DC 0.5
G1 out 0 in 0 2m
RL out 0 10k
.dc
.print out
`
	nl, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := nl.Circuit.DC()
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.Voltage(nl.Circuit.Node("out")); math.Abs(v+10) > 1e-6 {
		t.Errorf("V(out) = %g, want -10", v)
	}
}

func TestParseNetlistACRunThroughNetlist(t *testing.T) {
	// .ac driven by a current source through Run.
	deck := `I1 0 n DC 0
R1 n 0 100
.ac I1 1 dec 5 100 1k
.print n
`
	nl, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := nl.Run(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "40") { // 20·log10(100) = 40 dB
		t.Errorf("expected 40 dB transfer impedance:\n%s", out.String())
	}
}

func TestPWLWaveform(t *testing.T) {
	w := PWL{Times: []float64{0, 1, 3}, Values: []float64{0, 2, 1}}
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 1}, {1, 2}, {2, 1.5}, {3, 1}, {5, 1},
	}
	for _, c := range cases {
		if got := w.At(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PWL.At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	if (PWL{}).At(1) != 0 {
		t.Error("empty PWL should be 0")
	}
}

func TestParseNetlistPWLSource(t *testing.T) {
	deck := `V1 in 0 PWL(0 0 1m 1 2m 0.5)
R1 in out 1k
C1 out 0 1u
.tran 10u 2m
.print in
`
	nl, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := nl.Run(&out); err != nil {
		t.Fatal(err)
	}
	// At t=1ms the input is 1.
	found := false
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.HasPrefix(line, "0.001,") {
			parts := strings.Split(line, ",")
			var v float64
			if _, err := fmtSscan(parts[1], &v); err != nil {
				t.Fatal(err)
			}
			if math.Abs(v-1) > 1e-9 {
				t.Errorf("V(in) at 1ms = %g, want 1", v)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("1 ms row missing:\n%s", out.String())
	}
	if _, err := ParseNetlist(strings.NewReader("V1 a 0 PWL(1 0 0 1)\nR1 a 0 1k\n")); err == nil {
		t.Error("non-ascending PWL times must error")
	}
}

func TestParseNetlistOPDirective(t *testing.T) {
	deck := "VDD d 0 DC 1.2\nVG g 0 DC 1.0\nM1 d g 0 NMOS VT=0.4 BETA=200u\n.op\n"
	nl, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := nl.Run(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "M1") || !strings.Contains(out.String(), "saturation") {
		t.Errorf(".op output:\n%s", out.String())
	}
}
