package spice

import (
	"fmt"
	"math"
)

// resistor is a linear two-terminal resistance.
type resistor struct {
	id   string
	a, b NodeID
	g    float64 // conductance
}

func (r *resistor) name() string { return r.id }

func (r *resistor) stamp(ctx *stampCtx) {
	ctx.addA(r.a, r.a, r.g)
	ctx.addA(r.b, r.b, r.g)
	ctx.addA(r.a, r.b, -r.g)
	ctx.addA(r.b, r.a, -r.g)
}

// AddResistor connects a resistance of r ohms between nodes a and b.
func (c *Circuit) AddResistor(name string, a, b NodeID, r float64) {
	if r <= 0 {
		panic(fmt.Sprintf("spice: resistor %s has non-positive resistance %g", name, r))
	}
	c.devices = append(c.devices, &resistor{id: name, a: a, b: b, g: 1 / r})
}

// capacitor uses a backward-Euler or trapezoidal companion model in
// transient analysis and is an open circuit in DC. iPrev carries the
// capacitor current across trapezoidal steps.
type capacitor struct {
	id    string
	a, b  NodeID
	c     float64
	iPrev float64
}

func (cp *capacitor) name() string { return cp.id }

func (cp *capacitor) stamp(ctx *stampCtx) {
	if ctx.dt == 0 {
		return // open in DC
	}
	g := cp.c / ctx.dt
	ieq := 0.0
	vdPrev := ctx.vPrev(cp.a) - ctx.vPrev(cp.b)
	if ctx.trap {
		// Trapezoidal: i = (2C/h)·(vd − vdPrev) − iPrev.
		g *= 2
		ieq = g*vdPrev + cp.iPrev
	} else {
		// Backward Euler: i = (C/h)·(vd − vdPrev).
		ieq = g * vdPrev
	}
	ctx.addA(cp.a, cp.a, g)
	ctx.addA(cp.b, cp.b, g)
	ctx.addA(cp.a, cp.b, -g)
	ctx.addA(cp.b, cp.a, -g)
	ctx.addB(cp.a, ieq)
	ctx.addB(cp.b, -ieq)
}

// AddCapacitor connects a capacitance of f farads between nodes a and b.
func (c *Circuit) AddCapacitor(name string, a, b NodeID, f float64) {
	if f <= 0 {
		panic(fmt.Sprintf("spice: capacitor %s has non-positive capacitance %g", name, f))
	}
	c.devices = append(c.devices, &capacitor{id: name, a: a, b: b, c: f})
}

// currentSource pushes current from node a to node b.
type currentSource struct {
	id    string
	a, b  NodeID
	wave  Waveform
	acMag float64 // AC stimulus magnitude (0 = open in AC)
}

func (cs *currentSource) name() string { return cs.id }

func (cs *currentSource) stamp(ctx *stampCtx) {
	i := cs.wave.At(ctx.t)
	ctx.addB(cs.a, -i)
	ctx.addB(cs.b, i)
}

// AddCurrentSource connects a current source driving wave amps from a to b.
func (c *Circuit) AddCurrentSource(name string, a, b NodeID, wave Waveform) {
	c.devices = append(c.devices, &currentSource{id: name, a: a, b: b, wave: wave})
}

// voltageSource is an ideal source handled with an MNA branch current. The
// branch unknown's index is numNodes + ord, resolved at stamp time because
// nodes may still be created after the source is added.
type voltageSource struct {
	id    string
	p, m  NodeID
	wave  Waveform
	acMag float64 // AC stimulus magnitude (0 = short in AC)
	ord   int     // ordinal among voltage sources
}

func (vs *voltageSource) name() string { return vs.id }

func (vs *voltageSource) stamp(ctx *stampCtx) {
	bi := NodeID(ctx.nNodes + vs.ord)
	ctx.addA(vs.p, bi, 1)
	ctx.addA(vs.m, bi, -1)
	ctx.addA(bi, vs.p, 1)
	ctx.addA(bi, vs.m, -1)
	ctx.addB(bi, vs.wave.At(ctx.t))
}

// AddVoltageSource connects an ideal voltage source (plus, minus) following
// wave. The branch current becomes an internal MNA unknown.
func (c *Circuit) AddVoltageSource(name string, plus, minus NodeID, wave Waveform) {
	c.devices = append(c.devices, &voltageSource{id: name, p: plus, m: minus, wave: wave, ord: c.branchCount})
	c.vsrcBranches = append(c.vsrcBranches, c.branchCount)
	c.branchCount++
}

// vccs is a voltage-controlled current source: i(out) = gm·v(ctrl).
type vccs struct {
	id           string
	outP, outM   NodeID
	ctrlP, ctrlM NodeID
	gm           float64
}

func (v *vccs) name() string { return v.id }

func (v *vccs) stamp(ctx *stampCtx) {
	ctx.addA(v.outP, v.ctrlP, v.gm)
	ctx.addA(v.outP, v.ctrlM, -v.gm)
	ctx.addA(v.outM, v.ctrlP, -v.gm)
	ctx.addA(v.outM, v.ctrlM, v.gm)
}

// AddVCCS connects a transconductance element: a current gm·(v(ctrlP) −
// v(ctrlM)) flows through the device from outP to outM (i.e. it is drawn out
// of node outP and returned at outM).
func (c *Circuit) AddVCCS(name string, outP, outM, ctrlP, ctrlM NodeID, gm float64) {
	c.devices = append(c.devices, &vccs{id: name, outP: outP, outM: outM, ctrlP: ctrlP, ctrlM: ctrlM, gm: gm})
}

// diode is an exponential junction with Newton linearization.
type diode struct {
	id   string
	a, b NodeID // anode, cathode
	is   float64
	vt   float64
}

func (d *diode) name() string { return d.id }

func (d *diode) stamp(ctx *stampCtx) {
	vd := ctx.v(d.a) - ctx.v(d.b)
	// Limit the exponent for robustness.
	const vdMax = 0.9
	if vd > vdMax {
		vd = vdMax
	}
	e := math.Exp(vd / d.vt)
	i := d.is * (e - 1)
	g := d.is * e / d.vt
	if g < 1e-12 {
		g = 1e-12
	}
	ieq := i - g*vd
	ctx.addA(d.a, d.a, g)
	ctx.addA(d.b, d.b, g)
	ctx.addA(d.a, d.b, -g)
	ctx.addA(d.b, d.a, -g)
	ctx.addB(d.a, -ieq)
	ctx.addB(d.b, ieq)
}

// AddDiode connects a junction diode with saturation current is between
// anode a and cathode b.
func (c *Circuit) AddDiode(name string, a, b NodeID, is float64) {
	c.devices = append(c.devices, &diode{id: name, a: a, b: b, is: is, vt: 0.025852})
}

// MOSType selects the polarity of a MOSFET.
type MOSType int

// MOSFET polarities.
const (
	NMOS MOSType = iota
	PMOS
)

// MOSParams are square-law (SPICE level-1) model parameters.
type MOSParams struct {
	Type MOSType
	// VT is the threshold voltage (positive number for both polarities).
	VT float64
	// Beta is the transconductance factor µ·Cox·W/L in A/V².
	Beta float64
	// Lambda is the channel-length modulation in 1/V.
	Lambda float64
	// Cgs and Cgd are optional fixed gate capacitances (F). Non-zero values
	// add gate loading and the Miller feedthrough that dominates switching
	// delay in practice; zero (the default) omits them.
	Cgs, Cgd float64
}

// mosfet is a three-terminal square-law transistor (bulk tied to source).
type mosfet struct {
	id      string
	d, g, s NodeID
	p       MOSParams
}

func (m *mosfet) name() string { return m.id }

// ids computes the drain current and its partial derivatives for an NMOS
// with vgs, vds ≥ 0 conventions already applied.
func squareLawIDS(vgs, vds float64, p MOSParams) (i, gm, gds float64) {
	vov := vgs - p.VT
	if vov <= 0 {
		return 0, 0, 0
	}
	clm := 1 + p.Lambda*vds
	if vds < vov {
		// Triode.
		i = p.Beta * (vov*vds - vds*vds/2) * clm
		gm = p.Beta * vds * clm
		gds = p.Beta*(vov-vds)*clm + p.Beta*(vov*vds-vds*vds/2)*p.Lambda
	} else {
		// Saturation.
		i = p.Beta / 2 * vov * vov * clm
		gm = p.Beta * vov * clm
		gds = p.Beta / 2 * vov * vov * p.Lambda
	}
	return i, gm, gds
}

func (m *mosfet) stamp(ctx *stampCtx) {
	vd, vg, vs := ctx.v(m.d), ctx.v(m.g), ctx.v(m.s)
	if m.p.Type == PMOS {
		// Analyze the PMOS as an NMOS in a globally polarity-flipped frame.
		// Conductance stamps are invariant under the flip; equivalent
		// current sources change sign (handled below).
		vd, vg, vs = -vd, -vg, -vs
	}
	// Source/drain swap for vds < 0 (the square law is symmetric).
	d, s := m.d, m.s
	if vd < vs {
		vd, vs = vs, vd
		d, s = s, d
	}
	vgs, vds := vg-vs, vd-vs
	i, gm, gds := squareLawIDS(vgs, vds, m.p)
	// Minimum conductance keeps the matrix nonsingular in cutoff.
	const gmin = 1e-12
	gds += gmin

	// Linearized drain current in the analysis frame:
	// i(v) ≈ ieq + gm·vgs + gds·vds.
	ieq := i - gm*vgs - gds*vds
	addCurrent := func(n NodeID, v float64) {
		if m.p.Type == PMOS {
			v = -v // currents reverse in the flipped frame
		}
		ctx.addB(n, v)
	}
	// KCL at the analysis drain: +i leaves node d.
	ctx.addA(d, m.g, gm)
	ctx.addA(d, s, -gm-gds)
	ctx.addA(d, d, gds)
	addCurrent(d, -ieq)
	// KCL at the analysis source: −i.
	ctx.addA(s, m.g, -gm)
	ctx.addA(s, s, gm+gds)
	ctx.addA(s, d, -gds)
	addCurrent(s, ieq)
}

// AddMOSFET connects a square-law MOSFET with drain d, gate g, source s.
// Non-zero Cgs/Cgd parameters attach the corresponding gate capacitors.
func (c *Circuit) AddMOSFET(name string, d, g, s NodeID, p MOSParams) {
	if p.Beta <= 0 {
		panic(fmt.Sprintf("spice: MOSFET %s has non-positive beta %g", name, p.Beta))
	}
	c.devices = append(c.devices, &mosfet{id: name, d: d, g: g, s: s, p: p})
	if p.Cgs > 0 {
		c.AddCapacitor(name+".cgs", g, s, p.Cgs)
	}
	if p.Cgd > 0 {
		c.AddCapacitor(name+".cgd", g, d, p.Cgd)
	}
}
