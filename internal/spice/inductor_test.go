package spice

import (
	"math"
	"testing"
)

func TestInductorDCShort(t *testing.T) {
	// Divider with the lower leg shorted by an inductor: V(mid) = 0 in DC.
	c := New()
	in, mid := c.Node("in"), c.Node("mid")
	c.AddVoltageSource("V1", in, Ground, DC(5))
	c.AddResistor("R1", in, mid, 1e3)
	c.AddInductor("L1", mid, Ground, 1e-3)
	sol, err := c.DC()
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.Voltage(mid); math.Abs(v) > 1e-6 {
		t.Errorf("V(mid) = %g, want 0 (inductor is a DC short)", v)
	}
	// The 5mA divider current flows through the inductor.
	if i := sol.SourceCurrent(0); math.Abs(i+5e-3) > 1e-8 {
		t.Errorf("source current %g, want -5mA", i)
	}
}

func TestInductorACImpedance(t *testing.T) {
	// L divider: |V(mid)| = |jωL| / |R + jωL|.
	c := New()
	in, mid := c.Node("in"), c.Node("mid")
	c.AddVoltageSource("V1", in, Ground, DC(0))
	if err := c.SetACMagnitude("V1", 1); err != nil {
		t.Fatal(err)
	}
	c.AddResistor("R1", in, mid, 1e3)
	c.AddInductor("L1", mid, Ground, 1e-3)
	// At f = R/(2πL) ≈ 159 kHz: |H| = 1/√2, phase +45°.
	fc := 1e3 / (2 * math.Pi * 1e-3)
	res, err := c.AC([]float64{fc})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Mag(mid, 0); math.Abs(got-1/math.Sqrt2) > 1e-3 {
		t.Errorf("|H(fc)| = %g, want %g", got, 1/math.Sqrt2)
	}
	if got := res.PhaseDeg(mid, 0); math.Abs(got-45) > 0.2 {
		t.Errorf("∠H(fc) = %g°, want +45°", got)
	}
}

func TestRLTransient(t *testing.T) {
	// Series RL step: i(t) = (V/R)(1 − e^{−tR/L}); V(mid) = V·e^{−t/τ}.
	c := New()
	in, mid := c.Node("in"), c.Node("mid")
	c.AddVoltageSource("V1", in, Ground, Pulse{V0: 0, V1: 1, Delay: 0, Rise: 1e-9, Fall: 1e-9, Width: 1})
	c.AddResistor("R1", in, mid, 1e3)
	c.AddInductor("L1", mid, Ground, 1.0) // τ = L/R = 1 ms
	tr, err := c.Transient(3e-3, 2e-6)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []float64{0.5e-3, 1e-3, 2e-3} {
		idx := int(probe / 2e-6)
		got := tr.At(mid, idx)
		want := math.Exp(-tr.Times[idx] / 1e-3)
		if math.Abs(got-want) > 5e-3 {
			t.Errorf("v(%gms) = %g, want %g", probe*1e3, got, want)
		}
	}
}

func TestInductorFeedbackBench(t *testing.T) {
	// The classic open-loop measurement testbench: a VCCS "amplifier" with
	// unity feedback through a huge inductor. DC: follower (output ≈ input
	// bias within 1/A). AC: loop open, |V(out)| = open-loop gain.
	c := New()
	inp, inn, out := c.Node("inp"), c.Node("inn"), c.Node("out")
	c.AddVoltageSource("VIN", inp, Ground, DC(0.5))
	if err := c.SetACMagnitude("VIN", 1); err != nil {
		t.Fatal(err)
	}
	// Differential transconductance with resistor load: A0 = 1m·100k = 100.
	c.AddVCCS("G", out, Ground, inn, inp, 1e-3)
	c.AddResistor("RL", out, Ground, 100e3)
	// The inductor must dominate the inn-node impedance at the measurement
	// frequency for the loop to be AC-open: |jωL| ≫ RLK.
	c.AddInductor("LFB", out, inn, 1e12)
	c.AddResistor("RLK", inn, Ground, 1e8)

	sol, err := c.DC()
	if err != nil {
		t.Fatal(err)
	}
	// DC follower: out = inp·A/(1+A) ≈ 0.495.
	if v := sol.Voltage(out); math.Abs(v-0.5*100/101) > 1e-3 {
		t.Errorf("DC follower output %g, want %g", v, 0.5*100/101)
	}
	res, err := c.AC([]float64{100})
	if err != nil {
		t.Fatal(err)
	}
	// At 100 Hz the 1 MH inductor is |Z| = 628 MΩ — loop open: gain ≈ 100.
	if g := res.Mag(out, 0); math.Abs(g-100) > 1 {
		t.Errorf("open-loop gain %g, want ≈ 100", g)
	}
}

func TestInductorPanics(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.AddInductor("L", c.Node("a"), Ground, 0)
}
