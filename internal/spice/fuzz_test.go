package spice

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParseNetlist asserts the parser's error-never-panic contract: any
// byte stream either parses into a netlist whose cards can rebuild a
// circuit, or returns an error — it must never panic. Seeds combine the
// committed example decks with hand-picked edge cases (continuations,
// comments, directives, malformed values).
func FuzzParseNetlist(f *testing.F) {
	seeds := []string{
		"",
		"* comment only\n",
		"V1 in 0 DC 1\nR1 in out 1k\nC1 out 0 1n\n.tran 1n 10n\n.print out\n.end\n",
		"V1 in 0\n+ PULSE(0 1 0 1n 1n 5n 10n)\nR1 in 0 1k\n.end\n",
		"M1 d g 0 NMOS VT=0.4 BETA=200u LAMBDA=0.05\nVDD d 0 DC 1\nVG g 0 DC 1\n.dc\n",
		"R1 a b 0\n",
		"L1 a b -1m\n",
		".nodeset V(x)=0.5\nR1 x 0 1k\nV1 x 0 DC 1\n",
		".ac V1 1 dec 10 10 100k\n",
		"G1 out 0 in 0 1m\nR1 out 0 1k\nV1 in 0 DC 1\n",
		"D1 a 0 IS=1e-14\nV1 a 0 DC 0.7\n.dc\n",
		"R1 a b 1k extra tokens here\n",
		"+ leading continuation\n",
	}
	if decks, err := filepath.Glob("../../examples/netlists/*.cir"); err == nil {
		for _, p := range decks {
			if b, err := os.ReadFile(p); err == nil {
				seeds = append(seeds, string(b))
			}
		}
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, deck string) {
		nl, err := ParseNetlist(strings.NewReader(deck))
		if err != nil {
			return
		}
		// A successful parse must yield cards that can rebuild a circuit
		// (or fail cleanly) and that carry real source line numbers.
		for _, card := range nl.Cards {
			if card.Line <= 0 {
				t.Fatalf("card %s has non-positive line %d", card.Name, card.Line)
			}
		}
		if _, err := nl.BuildCircuit(nil); err != nil {
			t.Fatalf("parse accepted deck but BuildCircuit failed: %v", err)
		}
	})
}
