package spice

import (
	"math"
	"testing"
)

// rcBench builds the canonical RC step-response circuit (τ = 1 ms).
func rcBench() (*Circuit, NodeID) {
	c := New()
	in, out := c.Node("in"), c.Node("out")
	c.AddVoltageSource("V1", in, Ground, Pulse{V0: 0, V1: 1, Delay: 0, Rise: 1e-9, Fall: 1e-9, Width: 1})
	c.AddResistor("R1", in, out, 1e3)
	c.AddCapacitor("C1", out, Ground, 1e-6)
	return c, out
}

// maxRCError measures the worst-case deviation from the analytic step
// response over the window.
func maxRCError(tr *TranResult, out NodeID) float64 {
	worst := 0.0
	for i, t := range tr.Times {
		if t < 1e-6 {
			continue
		}
		want := 1 - math.Exp(-t/1e-3)
		if d := math.Abs(tr.At(out, i) - want); d > worst {
			worst = d
		}
	}
	return worst
}

func TestTrapezoidalMoreAccurateThanBE(t *testing.T) {
	// Deliberately coarse step (50 µs = τ/20): first-order BE shows visible
	// error, second-order TR should be at least 5× better.
	const step, stop = 50e-6, 5e-3
	cBE, outBE := rcBench()
	trBE, err := cBE.TransientMethod(stop, step, BackwardEuler)
	if err != nil {
		t.Fatal(err)
	}
	cTR, outTR := rcBench()
	trTR, err := cTR.TransientMethod(stop, step, Trapezoidal)
	if err != nil {
		t.Fatal(err)
	}
	eBE := maxRCError(trBE, outBE)
	eTR := maxRCError(trTR, outTR)
	if eTR >= eBE/5 {
		t.Errorf("trapezoidal error %g not ≪ backward-Euler error %g", eTR, eBE)
	}
	if eBE < 1e-6 {
		t.Errorf("BE error %g suspiciously small — step too fine to discriminate", eBE)
	}
}

func TestTrapezoidalConvergenceOrder(t *testing.T) {
	// Halving the step should cut the TR error ≈ 4× (second order) but the
	// BE error only ≈ 2× (first order).
	run := func(method Integrator, step float64) float64 {
		c, out := rcBench()
		tr, err := c.TransientMethod(5e-3, step, method)
		if err != nil {
			t.Fatal(err)
		}
		return maxRCError(tr, out)
	}
	beRatio := run(BackwardEuler, 100e-6) / run(BackwardEuler, 50e-6)
	trRatio := run(Trapezoidal, 100e-6) / run(Trapezoidal, 50e-6)
	if beRatio < 1.6 || beRatio > 2.6 {
		t.Errorf("BE error ratio %g, want ≈ 2 (first order)", beRatio)
	}
	if trRatio < 3.0 || trRatio > 5.5 {
		t.Errorf("TR error ratio %g, want ≈ 4 (second order)", trRatio)
	}
}

func TestTrapezoidalRLCircuit(t *testing.T) {
	// RL decay with TR at a coarse step: v(mid) = e^{−t/τ}, τ = 1 ms.
	c := New()
	in, mid := c.Node("in"), c.Node("mid")
	c.AddVoltageSource("V1", in, Ground, Pulse{V0: 0, V1: 1, Delay: 0, Rise: 1e-9, Fall: 1e-9, Width: 1})
	c.AddResistor("R1", in, mid, 1e3)
	c.AddInductor("L1", mid, Ground, 1.0)
	tr, err := c.TransientMethod(3e-3, 50e-6, Trapezoidal)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []float64{1e-3, 2e-3} {
		idx := int(probe / 50e-6)
		got := tr.At(mid, idx)
		want := math.Exp(-tr.Times[idx] / 1e-3)
		if math.Abs(got-want) > 2e-3 {
			t.Errorf("v(%gms) = %g, want %g", probe*1e3, got, want)
		}
	}
}

func TestTransientMethodValidation(t *testing.T) {
	c, _ := rcBench()
	if _, err := c.TransientMethod(1e-3, 1e-6, Integrator(9)); err == nil {
		t.Error("unknown integrator must error")
	}
	if _, err := c.TransientMethod(0, 1e-6, Trapezoidal); err == nil {
		t.Error("stop=0 must error")
	}
}

func TestIntegratorString(t *testing.T) {
	if BackwardEuler.String() != "backward-euler" || Trapezoidal.String() != "trapezoidal" {
		t.Error("integrator names wrong")
	}
	if Integrator(9).String() != "Integrator(9)" {
		t.Error("unknown integrator formatting wrong")
	}
}

func TestTransientStateResetBetweenRuns(t *testing.T) {
	// Running the same circuit twice must give identical waveforms: the
	// capacitor's trapezoidal state must not leak across runs.
	c, out := rcBench()
	a, err := c.TransientMethod(2e-3, 20e-6, Trapezoidal)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.TransientMethod(2e-3, 20e-6, Trapezoidal)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Times {
		if a.At(out, i) != b.At(out, i) {
			t.Fatalf("state leaked: run differs at index %d", i)
		}
	}
}
